package rmt

import "testing"

func TestBroadcastPublicAPI(t *testing.T) {
	g, err := ParseEdgeList("0-1 0-2 0-3 1-2 1-3 2-3")
	if err != nil {
		t.Fatal(err)
	}
	z := StructureOf([]int{1}, []int{2}, []int{3})
	in, err := NewBroadcast(g, z, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !SolvableBroadcast(in) {
		t.Fatal("K4 broadcast unsolvable")
	}
	ok, err := ResilientBroadcast(in)
	if err != nil || !ok {
		t.Fatalf("ResilientBroadcast = %v, %v", ok, err)
	}
	res, err := RunBroadcast(in, "m", SilentCorruption(NodeSet(2)), Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, 3} {
		if got, decided := res.DecisionOf(v); !decided || got != "m" {
			t.Fatalf("node %d: %q, %v", v, got, decided)
		}
	}
}

func TestBroadcastCutWitness(t *testing.T) {
	g, err := ParseEdgeList("0-1 1-2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewBroadcast(g, StructureOf([]int{1}), 0)
	if err != nil {
		t.Fatal(err)
	}
	cut, found := FindBroadcastCut(in)
	if !found || !cut.C1.Equal(NodeSet(1)) {
		t.Fatalf("cut = %v, found = %v", cut, found)
	}
}

func TestDiscoverTopologyPublicAPI(t *testing.T) {
	g, err := ParseEdgeList("0-1 1-2 2-3 3-0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverTopology(g, NoCorruption(), AdHocView(g), 0, nil, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed.Equal(g) {
		t.Fatalf("confirmed = %v", res.Confirmed)
	}
	if !res.Contested.IsEmpty() {
		t.Fatal("contested non-empty on an honest run")
	}
}

func TestHorizonPublicAPI(t *testing.T) {
	g, z := triple(t)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPKA(in, "x", nil, PKAOptions{Horizon: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("horizon run: %q, %v", got, ok)
	}
}
