# Convenience targets around the go toolchain — the source of truth for the
# tier-1 verification flow referenced by ROADMAP.md.

GO ?= go

.PHONY: tier1 test race bench benchjson vet

# tier1 is the gate every PR must keep green: build + full test suite +
# vet + race detector on the packages that spawn goroutines (the lockstep/
# goroutine network engines and the parallel experiment harness).
tier1:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/network/ ./internal/eval/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable protocol micro-benchmarks (ns/op, B/op, allocs/op).
benchjson:
	$(GO) run ./cmd/rmtbench -benchjson BENCH.json
