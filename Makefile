# Convenience targets around the go toolchain — the source of truth for the
# tier-1 verification flow referenced by ROADMAP.md.

GO ?= go

.PHONY: tier1 test race bench benchjson benchguard benchsnap allocguard vet attacksweep schedfuzz mafuzz churnfuzz smtfuzz fuzzsmoke cover loadtest daemonsmoke fleetsmoke watchsmoke

# tier1 is the gate every PR must keep green: build + full test suite +
# vet + race detector on the packages that spawn goroutines or share state
# across them (the lockstep/goroutine network engines, the parallel
# experiment harness, the protocol registry, the Byzantine strategy
# library, the attack sweep that fans trials out across workers, the wire
# engine's coordinator/child plumbing, and the sharded query daemon).
tier1:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/network/ ./internal/eval/ ./internal/protocol/ ./internal/byzantine/ ./internal/attack/ ./internal/server/ ./internal/wire/ ./internal/feasibility/ ./internal/mbrb/ ./internal/smt/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable protocol micro-benchmarks (ns/op, B/op, allocs/op).
benchjson:
	$(GO) run ./cmd/rmtbench -benchjson BENCH.json

# Opt-in perf regression guard: re-run the micro-benchmarks and fail when
# any is > 25% slower than the committed BENCH.json baseline. Not part of
# tier1 — benchmark numbers are too machine-sensitive to gate every PR.
benchguard:
	$(GO) run ./cmd/rmtbench -compare BENCH.json

# Allocation-only hot-path guard. Unlike wall-clock numbers, allocation
# counts are deterministic, so this one DOES gate every PR — it runs as an
# ordinary test inside `go test ./...` (and therefore inside tier1); the
# named target exists for running it alone.
allocguard:
	$(GO) test -run TestPKARunAllocBudget -count=1 .

# Per-PR benchmark snapshot: BENCH_<pr>.json next to the rolling BENCH.json
# baseline, so the perf trajectory accumulates one point per PR (CI archives
# the file as a build artifact). Usage: make benchsnap PR=5
PR ?= dev
benchsnap:
	$(GO) run ./cmd/rmtbench -benchjson BENCH_$(PR).json

# Randomized Theorem-4 safety fuzzer: 200 seeded trials across every
# registered protocol × every registered Byzantine strategy × both
# engines, with a gullible canary proving the oracle can fail. Attack
# traces stream as JSONL to attack-traces.jsonl.
attacksweep:
	$(GO) run ./cmd/rmtattack -trials 200 -seed 1 -out attack-traces.jsonl

# Seeded schedule fuzzer: the same Theorem-4 oracle crossed with every
# async delivery schedule (delay, reorder, FIFO, last-writer-first,
# partition-then-heal). Every (instance, protocol, strategy) cell runs once
# per schedule under a per-trial seeded scheduler, the zero-fault schedule
# must be transcript-identical to lockstep, and any violation replays from
# (seed, trial) alone. Traces stream to sched-traces.jsonl.
schedfuzz:
	$(GO) run ./cmd/rmtattack -trials 100 -seed 2 -engines lockstep -schedules all -out sched-traces.jsonl

# Message-adversary fuzzer: the Theorem-4 oracle crossed with seeded
# suppression. Every (instance, protocol, strategy) cell runs once per
# (budget × stock policy) under lockstep and once per (budget × schedule)
# under the async engine with the seeded random policy — safety must hold
# under message loss, Sent = Delivered + Lost must reconcile, and the
# gullible MBRB canary (no distinct-sender quorum counting) must be
# flagged. Any violation replays from (seed, trial) alone; traces stream
# to ma-traces.jsonl.
mafuzz:
	$(GO) run ./cmd/rmtattack -trials 60 -seed 4 -engines lockstep -schedules all -mabudgets 1,2 -out ma-traces.jsonl

# Load-test the rmtd query daemon in-process: 200 concurrent in-flight
# requests over a repeating workload must complete with zero dropped
# connections and zero 5xx, the canonical-instance cache must absorb the
# repetition (hit ratio > 0.5), and equal requests must get byte-identical
# bodies from 1-worker and 8-worker daemons.
loadtest:
	$(GO) run ./cmd/rmtload -concurrency 200 -requests 4000

# CI-sized daemon smoke: the same assertions at a few dozen requests.
daemonsmoke:
	$(GO) run ./cmd/rmtload -smoke

# Churn-schedule fuzzer: the incremental ≡ fresh differential across every
# feasibility fixture × CHURN_CHAINS seeded random delta chains of
# CHURN_STEPS single edits each. A scaled-up run of the tier-1 test —
# every revision's incremental RMT-cut and 𝒵-pp-cut verdicts (and verified
# witnesses) must match a from-scratch search.
CHURN_CHAINS ?= 400
CHURN_STEPS  ?= 8
churnfuzz:
	CHURN_CHAINS=$(CHURN_CHAINS) CHURN_STEPS=$(CHURN_STEPS) \
		$(GO) test ./internal/feasibility/ -run TestIncrementalMatchesFreshAcrossChurn -count=1 -v

# SMT fuzzer: the secure-transmission differential at scale. SMT_TRIALS
# seeded random (graph, 𝒵, ℒ) triples must agree between the Dowden-style
# feasibility predicate and the smt protocol's plan construction, and the
# privacy battery (honest smt clean, canary-smt-leaky flagged) re-runs on
# top — the predicate, the protocol and the oracle cross-check each other.
SMT_TRIALS ?= 4000
smtfuzz:
	SMT_TRIALS=$(SMT_TRIALS) \
		$(GO) test ./internal/smt/ -run TestNewPlanAgreesWithFeasible -count=1 -v
	$(GO) test ./internal/attack/ -run 'TestPrivacyBattery|TestPrivacyOracle' -count=1 -v

# CI-sized watch smoke: subscribe to POST /v1/watch on an in-process daemon,
# push a scripted 3-delta churn history, and require exactly the
# verdict-change events (rev 0, the flip to unsolvable, the flip back).
watchsmoke:
	$(GO) run ./cmd/rmtload -watch

# CI-sized fleet smoke: 3 in-process rmtd shards behind the consistent-hash
# router. Drives the workload through the router (0 drops, all 2xx), then
# hits every shard directly and requires the non-owners to serve the owning
# peer's cached bytes — cross-shard peer cache hits > 0, all replies
# byte-identical to the router's.
fleetsmoke:
	$(GO) run ./cmd/rmtload -fleet -smoke

# Short coverage-guided fuzz smoke on the instance-spec parser.
fuzzsmoke:
	$(GO) test ./internal/cliutil/ -run=^$$ -fuzz=FuzzParseInstanceSpec -fuzztime=10s

# Per-package coverage with a repo-level floor. The threshold gates total
# statement coverage across every package, example mains included — the
# floor is set with their 0% already priced in (the library total sits
# around 87%), so a drop below it means real coverage regressed.
COVER_THRESHOLD ?= 75.0
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 25
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (threshold $(COVER_THRESHOLD)%)"; \
	awk -v t="$$total" -v min="$(COVER_THRESHOLD)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% is below threshold $(COVER_THRESHOLD)%"; exit 1; }
