# Convenience targets around the go toolchain — the source of truth for the
# tier-1 verification flow referenced by ROADMAP.md.

GO ?= go

.PHONY: tier1 test race bench benchjson benchguard vet

# tier1 is the gate every PR must keep green: build + full test suite +
# vet + race detector on the packages that spawn goroutines or share state
# across them (the lockstep/goroutine network engines, the parallel
# experiment harness, and the protocol registry).
tier1:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/network/ ./internal/eval/ ./internal/protocol/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable protocol micro-benchmarks (ns/op, B/op, allocs/op).
benchjson:
	$(GO) run ./cmd/rmtbench -benchjson BENCH.json

# Opt-in perf regression guard: re-run the micro-benchmarks and fail when
# any is > 25% slower than the committed BENCH.json baseline. Not part of
# tier1 — benchmark numbers are too machine-sensitive to gate every PR.
benchguard:
	$(GO) run ./cmd/rmtbench -compare BENCH.json
