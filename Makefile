# Convenience targets around the go toolchain — the source of truth for the
# tier-1 verification flow referenced by ROADMAP.md.

GO ?= go

.PHONY: tier1 test race bench benchjson benchguard vet attacksweep fuzzsmoke

# tier1 is the gate every PR must keep green: build + full test suite +
# vet + race detector on the packages that spawn goroutines or share state
# across them (the lockstep/goroutine network engines, the parallel
# experiment harness, the protocol registry, the Byzantine strategy
# library, and the attack sweep that fans trials out across workers).
tier1:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/network/ ./internal/eval/ ./internal/protocol/ ./internal/byzantine/ ./internal/attack/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable protocol micro-benchmarks (ns/op, B/op, allocs/op).
benchjson:
	$(GO) run ./cmd/rmtbench -benchjson BENCH.json

# Opt-in perf regression guard: re-run the micro-benchmarks and fail when
# any is > 25% slower than the committed BENCH.json baseline. Not part of
# tier1 — benchmark numbers are too machine-sensitive to gate every PR.
benchguard:
	$(GO) run ./cmd/rmtbench -compare BENCH.json

# Randomized Theorem-4 safety fuzzer: 200 seeded trials across every
# registered protocol × every registered Byzantine strategy × both
# engines, with a gullible canary proving the oracle can fail. Attack
# traces stream as JSONL to attack-traces.jsonl.
attacksweep:
	$(GO) run ./cmd/rmtattack -trials 200 -seed 1 -out attack-traces.jsonl

# Short coverage-guided fuzz smoke on the instance-spec parser.
fuzzsmoke:
	$(GO) test ./internal/cliutil/ -run=^$$ -fuzz=FuzzParseInstanceSpec -fuzztime=10s
