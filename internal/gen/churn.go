package gen

import (
	"fmt"

	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/view"
)

// This file is the churn half of the generator package: applying topology
// deltas at a knowledge level, and drawing random-but-valid delta chains
// from a seeded stream for the differential and fuzz harnesses.

// ApplyDelta applies a topology delta to an instance whose views were
// built at knowledge level k, rebuilding γ from the edited graph at the
// same level. This is the delta application every caller with a knowledge
// level wants; instance.Apply is the level-free primitive.
func ApplyDelta(in *instance.Instance, d instance.Delta, k Knowledge) (*instance.Instance, error) {
	return instance.Apply(in, d, func(g *graph.Graph) view.Function { return k.View(g) })
}

// ApplyDeltaChain folds ApplyDelta over a delta sequence.
func ApplyDeltaChain(in *instance.Instance, deltas []instance.Delta, k Knowledge) (*instance.Instance, error) {
	return instance.ApplyChain(in, deltas, func(g *graph.Graph) view.Function { return k.View(g) })
}

// churnRand is the splitmix64 stream used by RandomDeltaChain — the same
// finalizer the seeded schedulers and eval.TrialSeed use, so churn
// schedules plug into the existing per-trial seed derivation: equal seeds
// give identical chains, distinct seeds decorrelated ones.
type churnRand struct{ x uint64 }

func (s *churnRand) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (s *churnRand) intn(n int) int { return int(s.next() % uint64(n)) }

// RandomDeltaChain draws `steps` single-edit deltas valid against the
// instance, applying each before drawing the next so the whole chain
// applies cleanly via ApplyDeltaChain. Edit mix (approximate): half edge
// removals, a third edge additions (chords between existing nodes), the
// rest node churn — attach a fresh node to a random survivor, or drop a
// non-terminal node. Terminals are never removed and the dealer/receiver
// pair never merges, so every prefix of the chain is a valid instance;
// feasibility is free to flip along the way, which is the point.
func RandomDeltaChain(in *instance.Instance, k Knowledge, steps int, seed int64) ([]instance.Delta, error) {
	rng := &churnRand{x: uint64(seed)}
	deltas := make([]instance.Delta, 0, steps)
	cur := in
	nextID := cur.G.MaxID() + 1
	for len(deltas) < steps {
		d, ok := drawDelta(cur, rng, &nextID)
		if !ok {
			return nil, fmt.Errorf("gen: no valid delta exists for %v", cur)
		}
		next, err := ApplyDelta(cur, d, k)
		if err != nil {
			// Drawing only proposes structurally valid edits, so a rebuild
			// failure is a bug in this generator, not bad luck.
			return nil, fmt.Errorf("gen: generated delta %v does not apply: %w", d, err)
		}
		deltas = append(deltas, d)
		cur = next
	}
	return deltas, nil
}

// drawDelta proposes one valid single-edit delta, retrying across edit
// kinds when the drawn kind has no legal move on the current graph.
func drawDelta(in *instance.Instance, rng *churnRand, nextID *int) (instance.Delta, bool) {
	for attempt := 0; attempt < 32; attempt++ {
		switch rng.intn(6) {
		case 0, 1, 2: // remove a random edge
			edges := in.G.Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.intn(len(edges))]
			return instance.Delta{RemoveEdges: [][2]int{e}}, true
		case 3, 4: // add a chord between existing non-adjacent nodes
			ids := in.G.SortedIDs()
			if len(ids) < 2 {
				continue
			}
			u := ids[rng.intn(len(ids))]
			v := ids[rng.intn(len(ids))]
			if u == v || in.G.HasEdge(u, v) {
				continue
			}
			// Never wire the dealer directly to the receiver: the fixtures'
			// interesting verdicts all live strictly between the terminals,
			// and a D–R edge makes every remaining step trivially solvable.
			if (u == in.Dealer && v == in.Receiver) || (u == in.Receiver && v == in.Dealer) {
				continue
			}
			return instance.Delta{AddEdges: [][2]int{{u, v}}}, true
		case 5: // node churn: attach a fresh relay, or drop one added earlier
			if rng.intn(2) == 0 {
				ids := in.G.SortedIDs()
				anchor := ids[rng.intn(len(ids))]
				id := *nextID
				*nextID++
				return instance.Delta{AddNodes: []int{id}, AddEdges: [][2]int{{anchor, id}}}, true
			}
			var victims []int
			in.G.Nodes().ForEach(func(v int) bool {
				if v != in.Dealer && v != in.Receiver {
					victims = append(victims, v)
				}
				return true
			})
			if len(victims) == 0 {
				continue
			}
			return instance.Delta{RemoveNodes: []int{victims[rng.intn(len(victims))]}}, true
		}
	}
	// Retries exhausted (tiny graphs can starve the edge moves): fall back
	// to the move that is always legal — attach a fresh relay.
	ids := in.G.SortedIDs()
	if len(ids) == 0 {
		return instance.Delta{}, false
	}
	anchor := ids[rng.intn(len(ids))]
	id := *nextID
	*nextID++
	return instance.Delta{AddNodes: []int{id}, AddEdges: [][2]int{{anchor, id}}}, true
}
