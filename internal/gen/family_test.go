package gen

import (
	"math/rand"
	"testing"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestBuildFamilyBuildsEveryFamily(t *testing.T) {
	cases := map[string]FamilyParams{
		"disjoint":  {Paths: 3, Hops: 2},
		"layered":   {Layers: 2, Width: 3},
		"chimera":   {K: 2},
		"line":      {N: 5},
		"ring":      {N: 6},
		"grid":      {N: 3, Cols: 3},
		"random":    {N: 7, P: 0.5, Rand: testRand()},
		"star":      {N: 6},
		"bipartite": {N: 2, Cols: 3},
		"butterfly": {K: 2},
		"regular":   {N: 8, Degree: 3, Rand: testRand()},
	}
	if len(cases) != len(FamilyNames()) {
		t.Fatalf("test covers %d families, registry has %v", len(cases), FamilyNames())
	}
	for family, p := range cases {
		g, _, d, r, err := BuildFamily(family, p)
		if err != nil {
			t.Errorf("%s: %v", family, err)
			continue
		}
		if g == nil || g.NumNodes() < 2 {
			t.Errorf("%s: degenerate graph %v", family, g)
		}
		if d == r {
			t.Errorf("%s: dealer == receiver == %d", family, d)
		}
		if !g.HasNode(d) || !g.HasNode(r) {
			t.Errorf("%s: terminals %d, %d not in graph", family, d, r)
		}
	}
}

// TestBuildFamilyRejectsBadParameters: every parameter combination that
// used to reach a constructor panic (stack-tracing the CLI) is a
// descriptive error at the BuildFamily boundary.
func TestBuildFamilyRejectsBadParameters(t *testing.T) {
	cases := []struct {
		family string
		p      FamilyParams
	}{
		{"disjoint", FamilyParams{Paths: 0, Hops: 1}},
		{"disjoint", FamilyParams{Paths: 1, Hops: 0}},
		{"layered", FamilyParams{Layers: 0, Width: 1}},
		{"layered", FamilyParams{Layers: 1, Width: 0}},
		{"chimera", FamilyParams{K: 1}},
		{"line", FamilyParams{N: 1}},
		{"ring", FamilyParams{N: 2}},
		{"grid", FamilyParams{N: 1, Cols: 1}},
		{"grid", FamilyParams{N: 0, Cols: 3}},
		{"random", FamilyParams{N: 1, Rand: testRand()}},
		{"random", FamilyParams{N: 5, P: 1.5, Rand: testRand()}},
		{"random", FamilyParams{N: 5, P: 0.5}},
		{"star", FamilyParams{N: 1}},
		{"bipartite", FamilyParams{N: 0, Cols: 3}},
		{"butterfly", FamilyParams{K: 0}},
		{"butterfly", FamilyParams{K: 7}},
		{"regular", FamilyParams{N: 5, Degree: 3, Rand: testRand()}}, // odd n·d
		{"regular", FamilyParams{N: 4, Degree: 4, Rand: testRand()}}, // d ≥ n
		{"regular", FamilyParams{N: 8, Degree: 3}},                   // no source
		{"mobius", FamilyParams{}},
	}
	for _, tc := range cases {
		if _, _, _, _, err := BuildFamily(tc.family, tc.p); err == nil {
			t.Errorf("%s %+v: no error", tc.family, tc.p)
		}
	}
}
