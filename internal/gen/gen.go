// Package gen generates the graph topologies, adversary structures and
// problem instances used by the examples, tests and the experiment harness:
// classic families (lines, rings, grids, layered networks, disjoint relay
// paths), the paper's Figure-1 basic instances, the chimera
// knowledge-separation family, and seeded random instances.
package gen

import (
	"fmt"
	"math/rand"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

// Line returns the path graph 0 − 1 − ... − (n−1).
func Line(n int) *graph.Graph {
	g := graph.New()
	if n == 1 {
		g.AddNode(0)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle graph on n ≥ 3 nodes.
func Ring(n int) *graph.Graph {
	if n < 3 {
		panic("gen: ring needs n ≥ 3")
	}
	g := Line(n)
	g.AddEdge(n-1, 0)
	return g
}

// Grid returns the rows×cols grid graph, nodes numbered row-major.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New()
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(id(r, c))
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New()
	for u := 0; u < n; u++ {
		g.AddNode(u)
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// DisjointPaths returns a graph with `paths` internally disjoint relay
// chains of `hops` intermediate nodes each, between dealer 0 and receiver
// (paths*hops + 1). With hops = 1 this is the classic parallel-relay star.
func DisjointPaths(paths, hops int) (g *graph.Graph, dealer, receiver int) {
	if paths < 1 || hops < 1 {
		panic("gen: DisjointPaths needs paths ≥ 1 and hops ≥ 1")
	}
	g = graph.New()
	dealer = 0
	receiver = paths*hops + 1
	id := 1
	for p := 0; p < paths; p++ {
		prev := dealer
		for h := 0; h < hops; h++ {
			g.AddEdge(prev, id)
			prev = id
			id++
		}
		g.AddEdge(prev, receiver)
	}
	return g, dealer, receiver
}

// DisjointPathsVar generalizes DisjointPaths to chains of varying lengths:
// one internally disjoint relay chain per entry of lens, with lens[p]
// intermediate nodes on chain p, between dealer 0 and receiver
// (sum(lens) + 1). Lopsided length mixes (e.g. two 1-hop chains plus one
// very long one) scale the node count without changing which chains carry
// the decision, which is what the large-instance benchmarks need.
func DisjointPathsVar(lens []int) (g *graph.Graph, dealer, receiver int) {
	if len(lens) == 0 {
		panic("gen: DisjointPathsVar needs at least one chain")
	}
	total := 0
	for _, h := range lens {
		if h < 1 {
			panic("gen: DisjointPathsVar needs every chain length ≥ 1")
		}
		total += h
	}
	g = graph.New()
	dealer = 0
	receiver = total + 1
	id := 1
	for _, hops := range lens {
		prev := dealer
		for h := 0; h < hops; h++ {
			g.AddEdge(prev, id)
			prev = id
			id++
		}
		g.AddEdge(prev, receiver)
	}
	return g, dealer, receiver
}

// Layered returns a layered network: dealer 0, `layers` layers of `width`
// relays with complete bipartite connections between consecutive layers,
// and the receiver behind the last layer.
func Layered(layers, width int) (g *graph.Graph, dealer, receiver int) {
	if layers < 1 || width < 1 {
		panic("gen: Layered needs layers ≥ 1 and width ≥ 1")
	}
	g = graph.New()
	dealer = 0
	receiver = layers*width + 1
	layerNode := func(l, i int) int { return 1 + l*width + i }
	for i := 0; i < width; i++ {
		g.AddEdge(dealer, layerNode(0, i))
		g.AddEdge(layerNode(layers-1, i), receiver)
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.AddEdge(layerNode(l, i), layerNode(l+1, j))
			}
		}
	}
	return g, dealer, receiver
}

// Chimera returns the knowledge-separation fixture of DESIGN.md: a graph
// and structure for which RMT is unsolvable in the ad hoc model (the joint
// structure of the receiver side admits the "chimera" set {2,3}) but
// solvable with radius-2 views. Dealer 0, receiver 6.
func Chimera() (g *graph.Graph, z adversary.Structure, dealer, receiver int) {
	g = graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 4)
	g.AddEdge(1, 5)
	g.AddEdge(3, 5)
	g.AddEdge(4, 6)
	g.AddEdge(5, 6)
	return g, adversary.FromSlices([]int{1}, []int{2}, []int{3}), 0, 6
}

// ChimeraScaled generalizes Chimera to k branches: the dealer feeds cut
// nodes 1..k+1; relay i (i = 1..k) hangs off cut nodes {1, i+1}; the
// receiver sits behind all relays. The structure corrupts any single cut
// node. Ad hoc solvability fails for k ≥ 2 (chimera sets {2..k+1} survive
// the ⊕), radius-2 succeeds.
func ChimeraScaled(k int) (g *graph.Graph, z adversary.Structure, dealer, receiver int) {
	if k < 2 {
		panic("gen: ChimeraScaled needs k ≥ 2")
	}
	g = graph.New()
	dealer = 0
	cut := func(i int) int { return 1 + i }       // i = 0..k
	relay := func(i int) int { return 2 + k + i } // i = 0..k-1
	receiver = 2 + 2*k
	sets := make([][]int, 0, k+1)
	for i := 0; i <= k; i++ {
		g.AddEdge(dealer, cut(i))
		sets = append(sets, []int{cut(i)})
	}
	for i := 0; i < k; i++ {
		g.AddEdge(cut(0), relay(i))
		g.AddEdge(cut(i+1), relay(i))
		g.AddEdge(relay(i), receiver)
	}
	return g, adversary.FromSlices(sets...), dealer, receiver
}

// RandomGNP returns a seeded Erdős–Rényi graph on n nodes with edge
// probability p.
func RandomGNP(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.NewWithNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Singletons returns the structure whose maximal sets are the singletons of
// the given nodes.
func Singletons(nodes nodeset.Set) adversary.Structure {
	sets := make([]nodeset.Set, 0, nodes.Len())
	nodes.ForEach(func(v int) bool {
		sets = append(sets, nodeset.Of(v))
		return true
	})
	return adversary.FromSets(sets...)
}

// Knowledge names a level of topology knowledge for instance construction.
type Knowledge int

// Knowledge levels, from the paper's two extremes through the radius
// interpolation.
const (
	AdHoc Knowledge = iota + 1
	Radius1
	Radius2
	Radius3
	FullKnowledge
)

func (k Knowledge) String() string {
	switch k {
	case AdHoc:
		return "adhoc"
	case Radius1:
		return "radius1"
	case Radius2:
		return "radius2"
	case Radius3:
		return "radius3"
	case FullKnowledge:
		return "full"
	default:
		return fmt.Sprintf("Knowledge(%d)", int(k))
	}
}

// View materializes the knowledge level as a view function on g.
func (k Knowledge) View(g *graph.Graph) view.Function {
	switch k {
	case AdHoc:
		return view.AdHoc(g)
	case Radius1:
		return view.Radius(g, 1)
	case Radius2:
		return view.Radius(g, 2)
	case Radius3:
		return view.Radius(g, 3)
	case FullKnowledge:
		return view.Full(g)
	default:
		panic("gen: unknown knowledge level")
	}
}

// Levels lists all knowledge levels in increasing order of information.
func Levels() []Knowledge {
	return []Knowledge{AdHoc, Radius1, Radius2, Radius3, FullKnowledge}
}

// Build assembles an instance from parts, with the given knowledge level.
func Build(g *graph.Graph, z adversary.Structure, k Knowledge, dealer, receiver int) (*instance.Instance, error) {
	return instance.New(g, z, k.View(g), dealer, receiver)
}

// RandomInstance draws a seeded random instance: a G(n,p) graph with a
// random structure over the non-terminal nodes. Returns nil if the drawn
// tuple is invalid (e.g. structure touching terminals — cannot happen — or
// view domain issues); callers typically loop.
func RandomInstance(r *rand.Rand, n int, p float64, numSets int, density float64, k Knowledge) (*instance.Instance, error) {
	g := RandomGNP(r, n, p)
	d, rcv := 0, n-1
	z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), numSets, density)
	return Build(g, z, k, d, rcv)
}
