package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"rmt/internal/adversary"
	"rmt/internal/graph"
)

// FamilyParams is the union of the tunable knobs of the named topology
// families — the flag set of cmd/rmtgen. Each family reads the fields it
// understands and ignores the rest.
type FamilyParams struct {
	Paths, Hops   int        // disjoint
	Layers, Width int        // layered
	K             int        // chimera branches, butterfly dimension
	N             int        // line/ring/random/star/regular nodes; grid rows; bipartite left side
	Cols          int        // grid columns; bipartite right side
	P             float64    // random: edge probability
	Degree        int        // regular: node degree
	Rand          *rand.Rand // random, regular: seeded source
}

// FamilyNames lists the known topology families, sorted.
func FamilyNames() []string {
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildFamily validates the parameters and builds the named family. It is
// the CLI boundary into this package: the raw constructors state their
// preconditions as panics (fine for code with literal arguments), while
// BuildFamily turns every bad parameter — including combinations that would
// make the dealer and receiver coincide — into a descriptive error.
//
// The returned structure has no maximal sets unless the family fixes one
// (chimera does); callers overlay their own structure in that case.
func BuildFamily(family string, p FamilyParams) (g *graph.Graph, z adversary.Structure, dealer, receiver int, err error) {
	build, ok := families[family]
	if !ok {
		return nil, z, 0, 0, fmt.Errorf("gen: unknown family %q (known: %v)", family, FamilyNames())
	}
	return build(p)
}

type familyBuilder func(FamilyParams) (*graph.Graph, adversary.Structure, int, int, error)

var families = map[string]familyBuilder{
	"disjoint": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.Paths < 1 || p.Hops < 1 {
			return fail("disjoint needs paths ≥ 1 and hops ≥ 1 (got paths=%d, hops=%d)", p.Paths, p.Hops)
		}
		g, d, r := DisjointPaths(p.Paths, p.Hops)
		return g, adversary.Structure{}, d, r, nil
	},
	"layered": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.Layers < 1 || p.Width < 1 {
			return fail("layered needs layers ≥ 1 and width ≥ 1 (got layers=%d, width=%d)", p.Layers, p.Width)
		}
		g, d, r := Layered(p.Layers, p.Width)
		return g, adversary.Structure{}, d, r, nil
	},
	"chimera": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.K < 2 {
			return fail("chimera needs k ≥ 2 (got k=%d)", p.K)
		}
		g, z, d, r := ChimeraScaled(p.K)
		return g, z, d, r, nil
	},
	"line": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.N < 2 {
			return fail("line needs n ≥ 2 so the dealer and receiver differ (got n=%d)", p.N)
		}
		return Line(p.N), adversary.Structure{}, 0, p.N - 1, nil
	},
	"ring": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.N < 3 {
			return fail("ring needs n ≥ 3 (got n=%d)", p.N)
		}
		return Ring(p.N), adversary.Structure{}, 0, p.N / 2, nil
	},
	"grid": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.N < 1 || p.Cols < 1 || p.N*p.Cols < 2 {
			return fail("grid needs rows ≥ 1, cols ≥ 1 and at least 2 nodes (got rows=%d, cols=%d)", p.N, p.Cols)
		}
		return Grid(p.N, p.Cols), adversary.Structure{}, 0, p.N*p.Cols - 1, nil
	},
	"random": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.N < 2 {
			return fail("random needs n ≥ 2 (got n=%d)", p.N)
		}
		if p.P < 0 || p.P > 1 {
			return fail("random needs 0 ≤ p ≤ 1 (got p=%g)", p.P)
		}
		if p.Rand == nil {
			return fail("random needs a seeded source")
		}
		return RandomGNP(p.Rand, p.N, p.P), adversary.Structure{}, 0, p.N - 1, nil
	},
	"star": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.N < 2 {
			return fail("star needs n ≥ 2 (got n=%d)", p.N)
		}
		return Star(p.N), adversary.Structure{}, 0, p.N - 1, nil
	},
	"bipartite": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.N < 1 || p.Cols < 1 {
			return fail("bipartite needs both sides ≥ 1 (got a=%d, b=%d)", p.N, p.Cols)
		}
		return CompleteBipartite(p.N, p.Cols), adversary.Structure{}, 0, p.N + p.Cols - 1, nil
	},
	"butterfly": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.K < 1 || p.K > 6 {
			return fail("butterfly needs 1 ≤ k ≤ 6 (got k=%d)", p.K)
		}
		g := Butterfly(p.K)
		return g, adversary.Structure{}, 0, g.MaxID(), nil
	},
	"regular": func(p FamilyParams) (*graph.Graph, adversary.Structure, int, int, error) {
		if p.Rand == nil {
			return fail("regular needs a seeded source")
		}
		g, err := RandomRegular(p.Rand, p.N, p.Degree)
		if err != nil {
			return nil, adversary.Structure{}, 0, 0, err
		}
		return g, adversary.Structure{}, 0, p.N - 1, nil
	},
}

func fail(format string, args ...any) (*graph.Graph, adversary.Structure, int, int, error) {
	return nil, adversary.Structure{}, 0, 0, fmt.Errorf("gen: "+format, args...)
}
