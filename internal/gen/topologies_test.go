package gen

import (
	"math/rand"
	"testing"
)

func TestStar(t *testing.T) {
	g := Star(5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("Star(5) = %v", g)
	}
	if g.Degree(0) != 4 || g.Degree(1) != 1 {
		t.Fatal("star degrees wrong")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(2, 3)
	if g.NumNodes() != 5 || g.NumEdges() != 6 {
		t.Fatalf("K_{2,3} = %v", g)
	}
	if g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Fatal("intra-side edge")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(1, 4) {
		t.Fatal("cross edge missing")
	}
}

func TestButterfly(t *testing.T) {
	g := Butterfly(2) // 4 columns × 3 rows
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Each of the 2 inner row-transitions contributes cols straight +
	// cols cross edges, minus merges when col == col^(1<<row) (never).
	if g.NumEdges() != 2*4*2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("butterfly disconnected")
	}
	// Rows 0..k have degree ≤ 4 (2 up + 2 down).
	g.Nodes().ForEach(func(v int) bool {
		if g.Degree(v) > 4 {
			t.Fatalf("degree %d at node %d", g.Degree(v), v)
		}
		return true
	})
}

func TestButterflyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Butterfly(0) did not panic")
		}
	}()
	Butterfly(0)
}

func TestRandomRegular(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ n, d int }{{6, 2}, {8, 3}, {10, 4}} {
		g, err := RandomRegular(r, tc.n, tc.d)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if g.NumNodes() != tc.n {
			t.Fatalf("n=%d d=%d: nodes = %d", tc.n, tc.d, g.NumNodes())
		}
		g.Nodes().ForEach(func(v int) bool {
			if g.Degree(v) != tc.d {
				t.Fatalf("n=%d d=%d: degree %d at %d", tc.n, tc.d, g.Degree(v), v)
			}
			return true
		})
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a, errA := RandomRegular(rand.New(rand.NewSource(5)), 8, 3)
	b, errB := RandomRegular(rand.New(rand.NewSource(5)), 8, 3)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !a.Equal(b) {
		t.Fatal("same seed, different graphs")
	}
}

func TestRandomRegularRejectsBadParameters(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{5, 3}, {4, 0}, {4, 4}, {1, 1}} {
		if _, err := RandomRegular(rand.New(rand.NewSource(1)), tc.n, tc.d); err == nil {
			t.Errorf("n=%d d=%d should be rejected", tc.n, tc.d)
		}
	}
}
