package gen

import (
	"fmt"
	"math/rand"

	"rmt/internal/graph"
)

// Star returns the star graph: center 0 with n-1 leaves.
func Star(n int) *graph.Graph {
	if n < 2 {
		panic("gen: star needs n ≥ 2")
	}
	g := graph.New()
	for leaf := 1; leaf < n; leaf++ {
		g.AddEdge(0, leaf)
	}
	return g
}

// CompleteBipartite returns K_{a,b}: left nodes 0..a-1, right a..a+b-1.
func CompleteBipartite(a, b int) *graph.Graph {
	if a < 1 || b < 1 {
		panic("gen: bipartite needs a, b ≥ 1")
	}
	g := graph.New()
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Butterfly returns the k-dimensional wrapped butterfly-style network used
// as a constant-degree relay fabric: 2^k columns × (k+1) rows, with the
// straight and cross edges of the classic FFT/butterfly diagram. Node IDs
// are row*2^k + column. Dealer-side row 0 and receiver-side row k make it
// a natural multi-hop RMT substrate with many partially-overlapping paths.
func Butterfly(k int) *graph.Graph {
	if k < 1 || k > 6 {
		panic("gen: butterfly needs 1 ≤ k ≤ 6")
	}
	cols := 1 << k
	id := func(row, col int) int { return row*cols + col }
	g := graph.New()
	for row := 0; row < k; row++ {
		for col := 0; col < cols; col++ {
			g.AddEdge(id(row, col), id(row+1, col))          // straight
			g.AddEdge(id(row, col), id(row+1, col^(1<<row))) // cross
		}
	}
	return g
}

// RandomRegular returns a seeded random d-regular graph on n nodes via the
// pairing model with restarts (n·d must be even, d < n). Useful for
// constant-degree scaling experiments. Unlike the fixed-topology
// constructors it returns errors instead of panicking: its parameter space
// comes straight from CLI flags, and even valid-looking parameters can make
// the pairing model fail to converge.
func RandomRegular(r *rand.Rand, n, d int) (*graph.Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("gen: regular graph needs 1 ≤ d < n (got n=%d, d=%d)", n, d)
	}
	if (n*d)%2 != 0 {
		return nil, fmt.Errorf("gen: regular graph needs n·d even (got n=%d, d=%d)", n, d)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		if g, ok := tryPairing(r, n, d); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: pairing model failed to converge for n=%d, d=%d", n, d)
}

func tryPairing(r *rand.Rand, n, d int) (*graph.Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.NewWithNodes(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		g.AddEdge(u, v)
	}
	return g, true
}
