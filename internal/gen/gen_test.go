package gen

import (
	"math/rand"
	"testing"

	"rmt/internal/core"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

func TestLine(t *testing.T) {
	g := Line(4)
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("Line(4) = %v", g)
	}
	if Line(1).NumNodes() != 1 || Line(1).NumEdges() != 0 {
		t.Fatal("Line(1) wrong")
	}
}

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Fatalf("Ring(5) = %v", g)
	}
	g.Nodes().ForEach(func(v int) bool {
		if g.Degree(v) != 2 {
			t.Fatalf("ring degree %d at %d", g.Degree(v), v)
		}
		return true
	})
}

func TestRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) did not panic")
		}
	}()
	Ring(2)
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("Grid nodes = %d", g.NumNodes())
	}
	// Edges: horizontal 3*3 + vertical 2*4 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("Grid edges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) || g.HasEdge(3, 4) {
		t.Fatal("grid adjacency wrong")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 10 {
		t.Fatalf("K5 edges = %d", g.NumEdges())
	}
}

func TestDisjointPaths(t *testing.T) {
	g, d, r := DisjointPaths(3, 2)
	if g.NumNodes() != 8 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.VertexConnectivity(d, r) != 3 {
		t.Fatalf("connectivity = %d, want 3", g.VertexConnectivity(d, r))
	}
	if got := g.CountPaths(d, r, nodeset.Empty(), 0); got != 3 {
		t.Fatalf("paths = %d, want 3", got)
	}
}

func TestLayered(t *testing.T) {
	g, d, r := Layered(2, 3)
	if g.NumNodes() != 8 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// D→layer0: 3 edges; bipartite 3x3 = 9; layer1→R: 3. Total 15.
	if g.NumEdges() != 15 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.VertexConnectivity(d, r) != 3 {
		t.Fatalf("connectivity = %d", g.VertexConnectivity(d, r))
	}
}

func TestChimeraSeparation(t *testing.T) {
	g, z, d, r := Chimera()
	adhoc, err := Build(g, z, AdHoc, d, r)
	if err != nil {
		t.Fatal(err)
	}
	if core.Solvable(adhoc) {
		t.Fatal("chimera solvable ad hoc")
	}
	r2, err := Build(g, z, Radius2, d, r)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Solvable(r2) {
		t.Fatal("chimera unsolvable at radius 2")
	}
}

func TestChimeraScaled(t *testing.T) {
	for k := 2; k <= 3; k++ {
		g, z, d, r := ChimeraScaled(k)
		adhoc, err := Build(g, z, AdHoc, d, r)
		if err != nil {
			t.Fatal(err)
		}
		if core.Solvable(adhoc) {
			t.Fatalf("k=%d: scaled chimera solvable ad hoc", k)
		}
		r2, err := Build(g, z, Radius2, d, r)
		if err != nil {
			t.Fatal(err)
		}
		if !core.Solvable(r2) {
			t.Fatalf("k=%d: scaled chimera unsolvable at radius 2", k)
		}
	}
}

func TestChimeraScaledMatchesChimera(t *testing.T) {
	// ChimeraScaled(2)'s shape must match the hand-built Chimera (up to
	// node numbering): same counts and same solvability profile.
	g1, _, _, _ := Chimera()
	g2, _, _, _ := ChimeraScaled(2)
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("shape mismatch: %v vs %v", g1, g2)
	}
}

func TestSingletons(t *testing.T) {
	z := Singletons(nodeset.Of(1, 2))
	if z.NumMaximal() != 2 || !z.Contains(nodeset.Of(1)) || z.Contains(nodeset.Of(1, 2)) {
		t.Fatalf("Singletons = %v", z)
	}
}

func TestKnowledgeLevels(t *testing.T) {
	g := Line(5)
	levels := Levels()
	if len(levels) != 5 {
		t.Fatalf("levels = %v", levels)
	}
	for i := 1; i < len(levels); i++ {
		if !levels[i].View(g).Refines(levels[i-1].View(g)) &&
			levels[i-1] != AdHoc { // Radius1 vs AdHoc both fine; others must refine
			t.Fatalf("%v does not refine %v", levels[i], levels[i-1])
		}
	}
	if AdHoc.String() != "adhoc" || FullKnowledge.String() != "full" {
		t.Fatal("Knowledge.String wrong")
	}
}

func TestRandomInstanceDeterministic(t *testing.T) {
	a, err := RandomInstance(rand.New(rand.NewSource(5)), 6, 0.5, 2, 0.4, AdHoc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomInstance(rand.New(rand.NewSource(5)), 6, 0.5, 2, 0.4, AdHoc)
	if err != nil {
		t.Fatal(err)
	}
	if !a.G.Equal(b.G) || !a.Z.Equal(b.Z) {
		t.Fatal("same seed produced different instances")
	}
}

func TestDisjointPathsSolvability(t *testing.T) {
	// paths=t+1 disjoint relays with global threshold t: solvable ad hoc;
	// with threshold t = paths: unsolvable.
	g, d, r := DisjointPaths(3, 1)
	relays := g.Nodes().Minus(nodeset.Of(d, r))
	z2 := Singletons(relays) // each relay individually corruptible
	in, err := Build(g, z2, AdHoc, d, r)
	if err != nil {
		t.Fatal(err)
	}
	if !zcpa.Solvable(in) {
		t.Fatal("3 disjoint paths with singleton corruption should be solvable")
	}
}
