package byzantine

import (
	"strings"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

// pathsInstance is the 3×1 disjoint-paths fixture: dealer 0, relays 1–3,
// receiver 4, singleton corruptions.
func pathsInstance(t *testing.T) *instance.Instance {
	t.Helper()
	g, d, r := gen.DisjointPaths(3, 1)
	in, err := instance.AdHoc(g, gen.Singletons(nodeset.Of(1, 2, 3)), d, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegistryRoundTrip(t *testing.T) {
	want := []string{
		SilentName, SpammerName, ReplayerName,
		EquivocatorName, PathForgerName, ViewLiarName, EclipserName,
		ValueFlipName, PathForgeryName, GhostNodeName, SplitBrainName, StructureLiarName,
		ReadyForgerName,
		ListenerName, ListenerQuietName,
	}
	names := Names()
	for _, w := range want {
		s, ok := Get(w)
		if !ok {
			t.Fatalf("strategy %q not registered (have %v)", w, names)
		}
		if s.Name() != w {
			t.Fatalf("Get(%q).Name() = %q", w, s.Name())
		}
		if s.Describe() == "" {
			t.Fatalf("strategy %q has no description", w)
		}
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d strategies, want %d: %v", len(names), len(want), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if len(All()) != len(names) {
		t.Fatalf("All() and Names() disagree")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get accepted an unknown name")
	}
	if msg := UnknownError("nope").Error(); !strings.Contains(msg, "nope") || !strings.Contains(msg, SilentName) {
		t.Fatalf("UnknownError lacks context: %s", msg)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(funcStrategy{name: SilentName})
}

func TestStrategiesBuildDeterministic(t *testing.T) {
	// Every registered strategy must produce a process per corrupted node
	// and (for per-index artifacts like ghost IDs) the same overlay shape on
	// repeated builds.
	in := pathsInstance(t)
	corrupt := nodeset.Of(1, 3)
	for _, s := range All() {
		a := s.Build(in, corrupt, "bad")
		b := s.Build(in, corrupt, "bad")
		if len(a) != 2 || len(b) != 2 {
			t.Fatalf("%s: overlay sizes %d/%d, want 2", s.Name(), len(a), len(b))
		}
		for _, c := range []int{1, 3} {
			if a[c] == nil || b[c] == nil {
				t.Fatalf("%s: node %d missing from overlay", s.Name(), c)
			}
		}
	}
}

// initSends collects what a process emits at Init, per destination.
func initSends(p network.Process) map[int][]network.Payload {
	got := make(map[int][]network.Payload)
	p.Init(func(to int, payload network.Payload) {
		got[to] = append(got[to], payload)
	})
	return got
}

func TestEquivocatorSendsDistinctVariants(t *testing.T) {
	in := pathsInstance(t)
	e := NewEquivocator(in, 1, "bad") // neighbors: dealer 0, receiver 4
	sends := initSends(e)
	values := make(map[int]network.Value)
	for to, payloads := range sends {
		for _, p := range payloads {
			if vm, ok := p.(core.ValueMsg); ok {
				values[to] = vm.X
				if vm.P.Tail() != 1 {
					t.Fatalf("forged trail does not end at the attacker: %v", vm.P)
				}
			}
		}
	}
	if len(values) != 2 || values[0] == values[4] {
		t.Fatalf("equivocator did not send distinct per-neighbor values: %v", values)
	}
	// The 𝒵-CPA channel equivocates the same way.
	zvals := make(map[int]network.Value)
	for to, payloads := range sends {
		for _, p := range payloads {
			if vp, ok := p.(zcpa.ValuePayload); ok {
				zvals[to] = vp.X
			}
		}
	}
	if len(zvals) != 2 || zvals[0] == zvals[4] {
		t.Fatalf("equivocator 𝒵-CPA values not distinct: %v", zvals)
	}
}

func TestEquivocatorRewritesRelayedValues(t *testing.T) {
	in := pathsInstance(t)
	e := NewEquivocator(in, 1, "bad")
	out := make(map[int][]network.Payload)
	honest := core.ValueMsg{X: "1", P: graph.Path{0}}
	e.Round(1, []network.Message{{From: 0, To: 1, Payload: honest}}, func(to int, p network.Payload) {
		out[to] = append(out[to], p)
	})
	for to, payloads := range out {
		for _, p := range payloads {
			vm, ok := p.(core.ValueMsg)
			if !ok {
				continue
			}
			if vm.X == "1" {
				t.Fatalf("relayed value to %d not rewritten", to)
			}
			if !vm.P.Equal(graph.Path{0, 1}) {
				t.Fatalf("trail %v, want [0 1]", vm.P)
			}
		}
	}
}

func TestTrailForgerCyclesMutations(t *testing.T) {
	in := pathsInstance(t)
	f := NewTrailForger(in, 1, "bad")
	msg := core.ValueMsg{X: "1", P: graph.Path{0, 2}} // fake a longer trail
	var got []core.ValueMsg
	for i := 0; i < 3; i++ {
		vm, ok := f.mutate(msg)
		if !ok {
			t.Fatalf("mutation %d skipped", i)
		}
		got = append(got, vm)
	}
	if got[0].X != "bad" || !got[0].P.Equal(graph.Path{0, 2, 1}) {
		t.Fatalf("mode 0 = %+v, want forged value on honest trail", got[0])
	}
	if got[1].X != "1" || !got[1].P.Equal(graph.Path{0, 1}) {
		t.Fatalf("mode 1 = %+v, want truncated trail", got[1])
	}
	if got[2].X != "1" || !got[2].P.Equal(graph.Path{0, 2, 1}) {
		t.Fatalf("mode 2 = %+v, want dealer splice", got[2])
	}
	// A splice that would duplicate the dealer is skipped, not emitted.
	f.n = 2
	if _, ok := f.mutate(core.ValueMsg{X: "1", P: graph.Path{0}}); ok {
		t.Fatal("degenerate splice was not skipped")
	}
}

func TestViewLiarAnnouncesContestedVersions(t *testing.T) {
	in := pathsInstance(t)
	l := NewViewLiar(in, 2)
	sends := initSends(l)
	self := make(map[string]bool)
	ghosts := 0
	for _, payloads := range sends {
		for _, p := range payloads {
			im, ok := p.(core.InfoMsg)
			if !ok {
				t.Fatalf("view liar sent a non-type-2 payload: %T", p)
			}
			if im.Info.Node == 2 {
				self[im.Info.VersionKey()] = true
			} else {
				ghosts++
				if in.G.HasNode(im.Info.Node) {
					t.Fatalf("ghost claim reuses real node %d", im.Info.Node)
				}
			}
		}
	}
	if len(self) != 2 {
		t.Fatalf("want 2 contested self versions, got %d", len(self))
	}
	if ghosts == 0 {
		t.Fatal("no fictitious-node claim announced")
	}
}

func TestEclipserRelaysOnlyAwayFromReceiver(t *testing.T) {
	// Line 0–1–2–3–4 with receiver 4: the eclipser at 2 may talk to 1
	// (farther from R) but not to 3 (closer).
	g := gen.Line(5)
	in, err := instance.AdHoc(g, gen.Singletons(nodeset.Of(2)), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEclipser(in, 2)
	if e.allowed.Contains(3) || !e.allowed.Contains(1) {
		t.Fatalf("allowed = %v, want {1}", e.allowed)
	}
	out := make(map[int]int)
	msg := core.ValueMsg{X: "1", P: graph.Path{0, 1}}
	e.Round(1, []network.Message{{From: 1, To: 2, Payload: msg}}, func(to int, _ network.Payload) {
		out[to]++
	})
	if out[3] != 0 || out[1] == 0 {
		t.Fatalf("eclipser sends = %v, want traffic to 1 only", out)
	}
	// 𝒵-CPA payloads are forwarded once per distinct key.
	vp := zcpa.ValuePayload{X: "1"}
	sent := 0
	for i := 0; i < 3; i++ {
		e.Round(2+i, []network.Message{{From: 1, To: 2, Payload: vp}}, func(int, network.Payload) {
			sent++
		})
	}
	if sent != 1 {
		t.Fatalf("𝒵-CPA payload forwarded %d times, want 1", sent)
	}
}

func TestReplayerBoundedOnRing(t *testing.T) {
	// Regression: two adjacent Replayers used to re-echo each other's echoes
	// forever, so a triangle with one initial message never quiesced. With
	// per-payload dedup the whole run is exactly 5 sends: the ping, plus
	// each Replayer echoing the distinct payload to its two neighbors once.
	g := gen.Ring(3)
	procs := map[int]network.Process{
		0: &pinger{to: 1, p: ping("x")},
		1: &Replayer{Neighbors: nodeset.Of(0, 2)},
		2: &Replayer{Neighbors: nodeset.Of(0, 1)},
	}
	res := run(t, g, procs, 12)
	if res.Metrics.MessagesSent != 5 {
		t.Fatalf("ring of replayers sent %d messages, want 5", res.Metrics.MessagesSent)
	}
}

func TestSpammerBitAccounting(t *testing.T) {
	// The payload's declared size must track its canonical encoding, not a
	// hard-coded constant: different field widths encode to different sizes.
	small := NoisePayload{From: 1, Round: 0, Seq: 0}
	big := NoisePayload{From: 123456, Round: 7890, Seq: 42}
	for _, p := range []NoisePayload{small, big} {
		if got, want := p.BitSize(), 8*len(p.Key()); got != want {
			t.Fatalf("BitSize(%s) = %d, want %d", p.Key(), got, want)
		}
	}
	if small.BitSize() == big.BitSize() {
		t.Fatal("distinct encodings report identical sizes; accounting is still hard-coded")
	}
}

func TestProtocolAwareStrategiesStayAdmissible(t *testing.T) {
	// Every trail a strategy emits must end at the corrupted node itself:
	// the engine's authenticated channels make any other tail undeliverable,
	// and Theorem 4's safety argument relies on it.
	in := pathsInstance(t)
	for _, name := range []string{EquivocatorName, PathForgerName, ViewLiarName, EclipserName} {
		s := MustGet(name)
		overlay := s.Build(in, nodeset.Of(2), "bad")
		p := overlay[2]
		check := func(to int, payload network.Payload) {
			var trail graph.Path
			switch m := payload.(type) {
			case core.ValueMsg:
				trail = m.P
			case core.InfoMsg:
				trail = m.P
			default:
				return
			}
			if len(trail) == 0 || trail.Tail() != 2 {
				t.Fatalf("%s emitted a trail not ending at the attacker: %v", name, trail)
			}
		}
		p.Init(check)
		p.Round(1, []network.Message{
			{From: 0, To: 2, Payload: core.ValueMsg{X: "1", P: graph.Path{0}}},
			{From: 0, To: 2, Payload: core.InfoMsg{Info: core.NodeInfo{Node: 0, View: in.Gamma.Of(0), Z: adversary.Restricted{Domain: nodeset.Of(0), Structure: adversary.Trivial()}}, P: graph.Path{0}}},
		}, check)
	}
}
