package byzantine

import (
	"testing"

	"rmt/internal/graph"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// collector counts messages it receives, per payload key.
type collector struct {
	byKey map[string]int
}

func newCollector() *collector { return &collector{byKey: map[string]int{}} }

func (c *collector) Init(network.Outbox) {}
func (c *collector) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	for _, m := range inbox {
		c.byKey[m.Payload.Key()]++
	}
	return true
}
func (c *collector) Decision() (network.Value, bool) { return "", false }

type ping string

func (p ping) BitSize() int { return 8 }
func (p ping) Key() string  { return string(p) }

// pinger sends one payload to a target each round.
type pinger struct {
	to int
	p  network.Payload
}

func (s *pinger) Init(out network.Outbox) { out(s.to, s.p) }
func (s *pinger) Round(_ int, _ []network.Message, out network.Outbox) bool {
	return false
}
func (s *pinger) Decision() (network.Value, bool) { return "", false }

func run(t *testing.T, g *graph.Graph, procs map[int]network.Process, rounds int) *network.Result {
	t.Helper()
	res, err := network.Run(network.Config{Graph: g, Processes: procs, MaxRounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func line(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestSilentSendsNothing(t *testing.T) {
	g := line(t, 3)
	c := newCollector()
	procs := map[int]network.Process{0: &pinger{to: 1, p: ping("x")}, 1: NewSilent(), 2: c}
	res := run(t, g, procs, 6)
	if len(c.byKey) != 0 {
		t.Fatalf("silent node leaked messages: %v", c.byKey)
	}
	// Only the pinger's single send counts.
	if res.Metrics.MessagesSent != 1 {
		t.Fatalf("messages = %d, want 1", res.Metrics.MessagesSent)
	}
}

func TestSilentStaysAlive(t *testing.T) {
	// Silent must keep consuming messages without halting, so the engine
	// never reports an artificial early quiescence from its side.
	s := NewSilent()
	for r := 1; r <= 3; r++ {
		if !s.Round(r, []network.Message{{From: 0, To: 1, Payload: ping("x")}}, nil) {
			t.Fatal("Silent halted")
		}
	}
	if _, ok := s.Decision(); ok {
		t.Fatal("Silent decided")
	}
}

func TestSpammerFloodsNeighborsOnly(t *testing.T) {
	g := line(t, 4) // spammer at 1, neighbors {0, 2}; node 3 unreachable
	c0, c2, c3 := newCollector(), newCollector(), newCollector()
	spam := &Spammer{ID: 1, Neighbors: nodeset.Of(0, 2), PerRound: 2}
	procs := map[int]network.Process{0: c0, 1: spam, 2: c2, 3: c3}
	run(t, g, procs, 3)
	if len(c3.byKey) != 0 {
		t.Fatal("spam reached a non-neighbor")
	}
	total0 := 0
	for _, n := range c0.byKey {
		total0 += n
	}
	// Bursts sent at init and rounds 1–2 are delivered within the 3-round
	// cap; the round-3 burst is in flight when the run ends. 3 bursts × 2.
	if total0 != 6 {
		t.Fatalf("node 0 received %d spam messages, want 6", total0)
	}
	// Distinct keys per burst round (noise payloads are distinguishable).
	if len(c0.byKey) != 6 {
		t.Fatalf("expected 6 distinct noise keys, got %d", len(c0.byKey))
	}
}

func TestSpammerDefaultPerRound(t *testing.T) {
	c := newCollector()
	g := line(t, 2)
	spam := &Spammer{ID: 0, Neighbors: nodeset.Of(1)} // PerRound unset → 1
	run(t, g, map[int]network.Process{0: spam, 1: c}, 2)
	total := 0
	for _, n := range c.byKey {
		total += n
	}
	if total != 2 { // init + round-1 bursts land within the 2-round cap
		t.Fatalf("received %d, want 2", total)
	}
}

func TestReplayerEchoesWithDelay(t *testing.T) {
	g := line(t, 3)
	c := newCollector()
	procs := map[int]network.Process{
		0: &pinger{to: 1, p: ping("hello")},
		1: &Replayer{Neighbors: nodeset.Of(0, 2)},
		2: c,
	}
	run(t, g, procs, 5)
	if c.byKey["hello"] != 1 {
		t.Fatalf("replayed payload count = %d, want 1", c.byKey["hello"])
	}
}

func TestSilentProcesses(t *testing.T) {
	m := SilentProcesses(nodeset.Of(1, 3, 5))
	if len(m) != 3 {
		t.Fatalf("len = %d", len(m))
	}
	for _, id := range []int{1, 3, 5} {
		if _, ok := m[id].(*Silent); !ok {
			t.Fatalf("node %d is not Silent", id)
		}
	}
	if len(SilentProcesses(nodeset.Empty())) != 0 {
		t.Fatal("empty set produced processes")
	}
}
