package byzantine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/smt"
)

// Registry keys of the passive listening strategies.
const (
	// ListenerName is the honest-but-curious eavesdropper: it records every
	// payload it sees and otherwise behaves exactly like an honest SMT relay.
	ListenerName = "listener"
	// ListenerQuietName records and drops: a listener that also silences its
	// node, composing the passive threat with the worst-case liveness one.
	ListenerQuietName = "listener-quiet"
)

// ListenLog is the recorded view of one listening coalition: every payload
// delivered to any of its members, in a canonical order. The privacy oracle
// compares logs across paired secret runs, so the rendering must be a pure
// function of what was heard. Safe for concurrent use (the goroutine engine
// delivers to members in parallel).
type ListenLog struct {
	mu     sync.Mutex
	keys   []string
	shares []smt.ShareMsg
}

func (l *ListenLog) record(at int, m network.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.keys = append(l.keys, fmt.Sprintf("%d->%d %s", m.From, at, m.Payload.Key()))
	if sh, ok := m.Payload.(smt.ShareMsg); ok {
		l.shares = append(l.shares, sh)
	}
}

// Keys returns every recorded "from->at key" entry, sorted.
func (l *ListenLog) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.keys))
	copy(out, l.keys)
	sort.Strings(out)
	return out
}

// View renders the whole recorded view as one canonical string — the unit
// the privacy oracle compares across paired runs.
func (l *ListenLog) View() string { return strings.Join(l.Keys(), "\n") }

// ShareIndices returns the set of SMT share indices the coalition heard.
func (l *ListenLog) ShareIndices() nodeset.Set {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := nodeset.Empty()
	for _, sh := range l.shares {
		idx = idx.Add(sh.Idx)
	}
	return idx
}

// Listener is the passive adversary process: it records every delivered
// payload into its log and forwards SMT shares exactly as an honest relay
// would — validated against the share's own path, from its exact
// predecessor, once — so a listening-only corruption never perturbs the run
// it is eavesdropping on. Everything else is read and dropped, which for
// non-share traffic makes it indistinguishable from Silent.
type Listener struct {
	id        int
	log       *ListenLog
	forward   bool
	forwarded map[string]bool
}

// NewListener corrupts node c with the recording relay. A nil log allocates
// a private one; the privacy battery passes one shared log per coalition.
func NewListener(c int, log *ListenLog, forward bool) *Listener {
	if log == nil {
		log = &ListenLog{}
	}
	return &Listener{id: c, log: log, forward: forward, forwarded: make(map[string]bool)}
}

// Init implements network.Process.
func (*Listener) Init(network.Outbox) {}

// Round implements network.Process.
func (l *Listener) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		l.log.record(l.id, m)
		if !l.forward {
			continue
		}
		sh, ok := m.Payload.(smt.ShareMsg)
		if !ok || l.forwarded[sh.Key()] {
			continue
		}
		pos := -1
		for i, u := range sh.P {
			if u == l.id {
				pos = i
				break
			}
		}
		if pos <= 0 || pos >= len(sh.P)-1 || m.From != sh.P[pos-1] {
			continue
		}
		l.forwarded[sh.Key()] = true
		out(sh.P[pos+1], sh)
	}
	return true
}

// Decision implements network.Process.
func (*Listener) Decision() (network.Value, bool) { return "", false }

// Log exposes the listener's recording, for callers that built it with a
// private log.
func (l *Listener) Log() *ListenLog { return l.log }

// NewListeners corrupts every node of t with a recording relay sharing one
// log — the process overlay for a listening coalition L. forward selects
// between the honest-but-curious relay and the record-and-drop variant.
func NewListeners(t nodeset.Set, log *ListenLog, forward bool) map[int]network.Process {
	if log == nil {
		log = &ListenLog{}
	}
	m := make(map[int]network.Process, t.Len())
	t.ForEach(func(c int) bool {
		m[c] = NewListener(c, log, forward)
		return true
	})
	return m
}

func init() {
	Register(funcStrategy{ListenerName,
		"record every delivered payload, forwarding SMT shares honestly (honest-but-curious)",
		func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
			return NewListener(c, nil, true)
		}})
	Register(funcStrategy{ListenerQuietName,
		"record every delivered payload and drop everything (listening + silent)",
		func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
			return NewListener(c, nil, false)
		}})
}
