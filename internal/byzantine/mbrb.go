package byzantine

import (
	"rmt/internal/instance"
	"rmt/internal/mbrb"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// ReadyForgerName is the registry key of the MBRB quorum-forging strategy.
const ReadyForgerName = "ready-forger"

// ReadyForger attacks MBRB's quorum discipline: at Init it floods every
// neighbor with a forged ECHO and READY for the attacker's value — plus a
// non-dealer INIT, which honest players must ignore — and on every round it
// re-echoes the dealer's real value with the forgery substituted, trying to
// smuggle the wrong value into both quorums at once.
//
// Safety intuition: each corrupted node contributes one sender to the forged
// echo and ready sets, so t corrupted nodes put at most t < t+1 = qA senders
// behind the forgery — below the amplification quorum, let alone the echo
// or delivery quorums. The conformance battery and the sweep canary pin
// this: a gullible variant that drops the distinct-sender count is caught.
type ReadyForger struct {
	id        int
	dealer    int
	neighbors nodeset.Set
	forged    network.Value

	flipped bool
}

// NewReadyForger corrupts node c of the instance with the MBRB quorum
// forgery, injecting the given value.
func NewReadyForger(in *instance.Instance, c int, forged network.Value) *ReadyForger {
	return &ReadyForger{id: c, dealer: in.Dealer, neighbors: in.G.Neighbors(c), forged: forged}
}

// Init implements network.Process.
func (f *ReadyForger) Init(out network.Outbox) {
	f.burst(out, f.forged)
}

// Round implements network.Process: upon seeing the dealer's INIT, re-run
// the forged burst once more (a corrupted node may send the same phase
// twice; honest counters dedup by sender, which is the point being tested).
func (f *ReadyForger) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	if f.flipped {
		return true
	}
	for _, m := range inbox {
		msg, ok := m.Payload.(mbrb.Msg)
		if !ok || msg.Phase != mbrb.PhaseInit || m.From != f.dealer {
			continue
		}
		f.flipped = true
		f.burst(out, f.forged)
		break
	}
	return true
}

func (f *ReadyForger) burst(out network.Outbox, x network.Value) {
	f.neighbors.ForEach(func(u int) bool {
		out(u, mbrb.Msg{Phase: mbrb.PhaseInit, X: x})
		out(u, mbrb.Msg{Phase: mbrb.PhaseEcho, X: x})
		out(u, mbrb.Msg{Phase: mbrb.PhaseReady, X: x})
		return true
	})
}

// Decision implements network.Process.
func (*ReadyForger) Decision() (network.Value, bool) { return "", false }

func init() {
	Register(funcStrategy{ReadyForgerName,
		"flood forged MBRB echo/ready quorum votes for the attacker's value",
		func(in *instance.Instance, c int, forged network.Value, _ int) network.Process {
			return NewReadyForger(in, c, forged)
		}})
}
