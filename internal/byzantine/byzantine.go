// Package byzantine is the adversary library: named attack strategies that
// corrupt players of any protocol run. A corrupted player is just a
// network.Process with arbitrary behavior, so strategies range from
// protocol-agnostic nuisances (Silent, Spammer, Replayer) to protocol-aware
// attacks built on the RMT message vocabularies (Equivocator, PathForger,
// ViewLiar, Eclipser), plus the legacy Forger constructions that stay in
// internal/core. All of them self-register in a strategy registry mirroring
// internal/protocol's, so the safety fuzzer, the CLI and the examples
// enumerate one shared zoo.
package byzantine

import (
	"fmt"

	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// Silent is the adversary that blocks everything: it never relays and never
// sends. For safe protocols this is the worst-case liveness adversary (see
// DESIGN.md §5), so the resilience checkers use it.
type Silent struct{}

// NewSilent returns a silent corrupted player.
func NewSilent() *Silent { return &Silent{} }

// Init implements network.Process.
func (*Silent) Init(network.Outbox) {}

// Round implements network.Process. It consumes the inbox and stays alive
// so the engine keeps delivering (and discarding) traffic to it.
func (*Silent) Round(int, []network.Message, network.Outbox) bool { return true }

// Decision implements network.Process.
func (*Silent) Decision() (network.Value, bool) { return "", false }

// NoisePayload is junk traffic sent by the Spammer. Its fields are exported
// so engines that marshal payloads across process boundaries (the wire
// engine's codec) can re-encode it; the canonical Key derives entirely from
// them, so a decoded copy is indistinguishable from the original.
type NoisePayload struct {
	From  int
	Round int
	Seq   int
}

// BitSize implements network.Payload. It is derived from the canonical
// encoding so the metrics stream charges the spammer for exactly the bits
// it puts on the wire, whatever the field widths happen to be.
func (p NoisePayload) BitSize() int { return 8 * len(p.Key()) }

// Key implements network.Payload.
func (p NoisePayload) Key() string { return fmt.Sprintf("noise(%d,%d,%d)", p.From, p.Round, p.Seq) }

// Spammer floods its neighbors with junk payloads every round, exercising
// protocol robustness to erroneous messages (the paper's "messages of
// different form, which we call erroneous").
type Spammer struct {
	ID        int
	Neighbors nodeset.Set
	PerRound  int // messages per neighbor per round; default 1
}

// Init implements network.Process.
func (s *Spammer) Init(out network.Outbox) { s.burst(0, out) }

// Round implements network.Process.
func (s *Spammer) Round(round int, _ []network.Message, out network.Outbox) bool {
	s.burst(round, out)
	return true
}

func (s *Spammer) burst(round int, out network.Outbox) {
	per := s.PerRound
	if per <= 0 {
		per = 1
	}
	s.Neighbors.ForEach(func(u int) bool {
		for i := 0; i < per; i++ {
			out(u, NoisePayload{From: s.ID, Round: round, Seq: i})
		}
		return true
	})
}

// Decision implements network.Process.
func (*Spammer) Decision() (network.Value, bool) { return "", false }

// Replayer echoes back to every neighbor each payload it receives, with one
// round of delay — a cheap "confusion" adversary that reuses well-formed
// protocol messages in wrong contexts. Each distinct payload (by Key) is
// replayed at most once: without the dedup, two adjacent Replayers re-echo
// each other's echoes forever and the run never quiesces.
type Replayer struct {
	Neighbors nodeset.Set

	seen map[string]bool
}

// Init implements network.Process.
func (*Replayer) Init(network.Outbox) {}

// Round implements network.Process.
func (r *Replayer) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		key := m.Payload.Key()
		if r.seen[key] {
			continue
		}
		if r.seen == nil {
			r.seen = make(map[string]bool)
		}
		r.seen[key] = true
		r.Neighbors.ForEach(func(u int) bool {
			out(u, m.Payload)
			return true
		})
	}
	return true
}

// Decision implements network.Process.
func (*Replayer) Decision() (network.Value, bool) { return "", false }

// SilentProcesses builds the corrupt-process map that silences every node
// of t.
func SilentProcesses(t nodeset.Set) map[int]network.Process {
	m := make(map[int]network.Process, t.Len())
	t.ForEach(func(v int) bool {
		m[v] = NewSilent()
		return true
	})
	return m
}
