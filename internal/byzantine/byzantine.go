// Package byzantine provides protocol-agnostic Byzantine player behaviors.
// A corrupted player is just a network.Process with arbitrary behavior, so
// strategies here can be dropped into any protocol run. Protocol-specific
// attacks (wrong values, fictitious topology, fake local structures) live
// next to their protocols in internal/zcpa and internal/core.
package byzantine

import (
	"fmt"

	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// Silent is the adversary that blocks everything: it never relays and never
// sends. For safe protocols this is the worst-case liveness adversary (see
// DESIGN.md §5), so the resilience checkers use it.
type Silent struct{}

// NewSilent returns a silent corrupted player.
func NewSilent() *Silent { return &Silent{} }

// Init implements network.Process.
func (*Silent) Init(network.Outbox) {}

// Round implements network.Process. It consumes the inbox and stays alive
// so the engine keeps delivering (and discarding) traffic to it.
func (*Silent) Round(int, []network.Message, network.Outbox) bool { return true }

// Decision implements network.Process.
func (*Silent) Decision() (network.Value, bool) { return "", false }

// noisePayload is junk traffic sent by the Spammer.
type noisePayload struct {
	from  int
	round int
	seq   int
}

func (p noisePayload) BitSize() int { return 64 }
func (p noisePayload) Key() string  { return fmt.Sprintf("noise(%d,%d,%d)", p.from, p.round, p.seq) }

// Spammer floods its neighbors with junk payloads every round, exercising
// protocol robustness to erroneous messages (the paper's "messages of
// different form, which we call erroneous").
type Spammer struct {
	ID        int
	Neighbors nodeset.Set
	PerRound  int // messages per neighbor per round; default 1
}

// Init implements network.Process.
func (s *Spammer) Init(out network.Outbox) { s.burst(0, out) }

// Round implements network.Process.
func (s *Spammer) Round(round int, _ []network.Message, out network.Outbox) bool {
	s.burst(round, out)
	return true
}

func (s *Spammer) burst(round int, out network.Outbox) {
	per := s.PerRound
	if per <= 0 {
		per = 1
	}
	s.Neighbors.ForEach(func(u int) bool {
		for i := 0; i < per; i++ {
			out(u, noisePayload{from: s.ID, round: round, seq: i})
		}
		return true
	})
}

// Decision implements network.Process.
func (*Spammer) Decision() (network.Value, bool) { return "", false }

// Replayer echoes back to every neighbor each payload it receives, with one
// round of delay — a cheap "confusion" adversary that reuses well-formed
// protocol messages in wrong contexts.
type Replayer struct {
	Neighbors nodeset.Set
}

// Init implements network.Process.
func (*Replayer) Init(network.Outbox) {}

// Round implements network.Process.
func (r *Replayer) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		r.Neighbors.ForEach(func(u int) bool {
			out(u, m.Payload)
			return true
		})
	}
	return true
}

// Decision implements network.Process.
func (*Replayer) Decision() (network.Value, bool) { return "", false }

// SilentProcesses builds the corrupt-process map that silences every node
// of t.
func SilentProcesses(t nodeset.Set) map[int]network.Process {
	m := make(map[int]network.Process, t.Len())
	t.ForEach(func(v int) bool {
		m[v] = NewSilent()
		return true
	})
	return m
}
