package byzantine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// Canonical registry names of the built-in strategies. As with the protocol
// registry, these constants are the only place strategy names are spelled.
const (
	// Protocol-agnostic behaviors.
	SilentName   = "silent"
	SpammerName  = "spammer"
	ReplayerName = "replayer"

	// Protocol-aware strategies built on the RMT message vocabularies.
	EquivocatorName = "equivocator"
	PathForgerName  = "path-forger"
	ViewLiarName    = "view-liar"
	EclipserName    = "eclipser"

	// Legacy zoo strategies (internal/core's Forger constructions), kept
	// under their historical names for rmtsim, examples and experiment E3.
	ValueFlipName     = "value-flip"
	PathForgeryName   = "path-forgery"
	GhostNodeName     = "ghost-node"
	SplitBrainName    = "split-brain"
	StructureLiarName = "structure-liar"
)

// Strategy is a named adversarial behavior: given an instance and a
// corruption set, it builds the Byzantine process overlay for the corrupted
// nodes. Strategies register themselves like protocols do, so the fuzzer,
// the CLI and the examples enumerate one shared zoo.
//
// The forged value is the attacker's preferred wrong value; strategies that
// never inject values ignore it. Build must be deterministic: the safety
// sweep compares transcripts across engines, so a strategy may not consult
// clocks or unseeded randomness.
type Strategy interface {
	// Name is the registry key.
	Name() string
	// Describe is a one-line human description for CLI help output.
	Describe() string
	// Build returns the corrupt-process overlay for the nodes of t.
	Build(in *instance.Instance, t nodeset.Set, forged network.Value) map[int]network.Process
}

var strategies = struct {
	sync.RWMutex
	m map[string]Strategy
}{m: make(map[string]Strategy)}

// Register adds a strategy under its Name. Called from init(); registering
// an empty name or a duplicate panics, as with database/sql drivers.
func Register(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("byzantine: Register with empty name")
	}
	strategies.Lock()
	defer strategies.Unlock()
	if _, dup := strategies.m[name]; dup {
		panic("byzantine: Register called twice for " + name)
	}
	strategies.m[name] = s
}

// Get returns the strategy registered under name.
func Get(name string) (Strategy, bool) {
	strategies.RLock()
	defer strategies.RUnlock()
	s, ok := strategies.m[name]
	return s, ok
}

// MustGet returns the strategy registered under name, panicking when
// absent. For static names known at compile time.
func MustGet(name string) Strategy {
	s, ok := Get(name)
	if !ok {
		panic("byzantine: no strategy registered as " + name)
	}
	return s
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	strategies.RLock()
	defer strategies.RUnlock()
	names := make([]string, 0, len(strategies.m))
	for name := range strategies.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered strategies in name order.
func All() []Strategy {
	names := Names()
	out := make([]Strategy, len(names))
	for i, name := range names {
		out[i] = MustGet(name)
	}
	return out
}

// UnknownError builds the not-registered error with the available names.
func UnknownError(name string) error {
	return fmt.Errorf("byzantine: unknown strategy %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}
