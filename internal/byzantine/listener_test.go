package byzantine

import (
	"strings"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/smt"
)

// TestListenerIsPassive: an honest-but-curious listener on a share path must
// not perturb the run — the receiver still reconstructs the secret — while
// the quiet variant kills the shares through it.
func TestListenerIsPassive(t *testing.T) {
	g, d, r := gen.DisjointPaths(3, 1)
	in, err := instance.AdHoc(g, gen.Singletons(nodeset.Of(1)), d, r)
	if err != nil {
		t.Fatal(err)
	}
	listen := adversary.FromSlices([]int{2}, []int{3})
	secret := network.Value("eavesdrop-me")

	log := &ListenLog{}
	res, err := smt.Run(in, secret, NewListeners(nodeset.Of(2), log, true),
		smt.Options{Listen: listen, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Decisions[r]; got != secret {
		t.Fatalf("receiver decided %q under a forwarding listener, want %q", got, secret)
	}
	if log.ShareIndices().IsEmpty() {
		t.Fatal("listener on a share path recorded no shares")
	}
	if idx := log.ShareIndices(); idx.Len() >= 2 {
		t.Fatalf("listener on one path heard %v share indices — the plan leaked", idx)
	}
	if !strings.Contains(log.View(), "smt:share:") {
		t.Fatalf("log view lacks share keys:\n%s", log.View())
	}

	quiet := &ListenLog{}
	res, err = smt.Run(in, secret, NewListeners(nodeset.Of(2), quiet, false),
		smt.Options{Listen: listen, Seed: 5, MaxRounds: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Decisions[r]; ok {
		t.Fatal("receiver decided even though the quiet listener dropped a share")
	}
	if quiet.ShareIndices().IsEmpty() {
		t.Fatal("quiet listener recorded nothing")
	}
}
