package byzantine_test

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/mbrb"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// TestReadyForgerCannotSubvertMBRB pins the quorum-safety argument: the
// forged echo/ready votes of t corrupted players stay below every quorum,
// so all honest players deliver the dealer's value — with and without the
// message adversary spending its budget on top.
func TestReadyForgerCannotSubvertMBRB(t *testing.T) {
	g := gen.Complete(6)
	in, err := instance.AdHoc(g, adversary.GlobalThreshold(nodeset.Of(1, 2, 3, 4), 1), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	strat := byzantine.MustGet(byzantine.ReadyForgerName)
	for _, withMA := range []bool{false, true} {
		opts := mbrb.Options{MABudget: 1, Corrupt: strat.Build(in, nodeset.Of(1), "evil")}
		victims := []int{}
		if withMA {
			opts.MsgAdversary = network.NewEclipse(2)
			victims = append(victims, 2)
		}
		res, err := mbrb.Run(in, "x", nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v, x := range res.Decisions {
			if x != "x" {
				t.Errorf("withMA=%v: player %d delivered %q, want \"x\"", withMA, v, x)
			}
		}
		want := 5 - len(victims) // all correct non-victims
		if len(res.Decisions) != want {
			t.Errorf("withMA=%v: %d players delivered, want %d", withMA, len(res.Decisions), want)
		}
	}
}
