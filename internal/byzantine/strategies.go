package byzantine

import (
	"strconv"

	"rmt/internal/adversary"
	"rmt/internal/core"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

// admissibleTrail is Protocol 1's admission check from the attacker's seat:
// a trail the honest code would have accepted from this channel. Strategies
// apply it before mutating a message so that every forgery they emit is one
// an honest relay could plausibly have produced — the strongest position
// Theorem 4 grants the adversary.
func admissibleTrail(trail graph.Path, self, from int) bool {
	return len(trail) > 0 && !trail.Contains(self) && trail.Tail() == from
}

// honestInfo reconstructs the truthful type-2 claim of a corrupted node, for
// strategies that stay plausible on the knowledge layer.
func honestInfo(in *instance.Instance, v int) core.NodeInfo {
	return core.NodeInfo{Node: v, View: in.Gamma.Of(v), Z: in.LocalStructure(v)}.Sealed()
}

// understatedInfo fabricates a claim for node v with the given view and a
// trivial local structure ("nobody I see can be corrupted") — the shape that
// makes a forged path look maximally trustworthy.
func understatedInfo(v int, fakeView *graph.Graph) core.NodeInfo {
	return core.NodeInfo{
		Node: v,
		View: fakeView,
		Z:    adversary.Restricted{Domain: fakeView.Nodes(), Structure: adversary.Trivial()},
	}.Sealed()
}

// Equivocator sends a different wrong value to every neighbor: at Init it
// claims per-neighbor dealer values on both the RMT-PKA type-1 channel and
// the 𝒵-CPA value channel, and while relaying it rewrites every admissible
// type-1 value into the destination's private variant. Type-2 traffic is
// relayed honestly so the attacker's knowledge layer stays above suspicion.
//
// Safety intuition: every equivocated trail ends at the Equivocator, so any
// valid message set containing one also contains a corrupted node — the
// receiver's cover check absorbs the attack. In 𝒵-CPA the per-neighbor
// variants fragment the reporter classes instead of concentrating them.
type Equivocator struct {
	id        int
	dealer    int
	neighbors nodeset.Set
	forged    network.Value
	info      core.NodeInfo
}

// NewEquivocator corrupts node c of the instance with the equivocation
// strategy, forging variants of the given base value.
func NewEquivocator(in *instance.Instance, c int, forged network.Value) *Equivocator {
	return &Equivocator{
		id:        c,
		dealer:    in.Dealer,
		neighbors: in.G.Neighbors(c),
		forged:    forged,
		info:      honestInfo(in, c),
	}
}

// variant is the neighbor-specific forged value.
func (e *Equivocator) variant(u int) network.Value {
	return e.forged + "@" + network.Value(strconv.Itoa(u))
}

// Init implements network.Process.
func (e *Equivocator) Init(out network.Outbox) {
	trail := graph.Path{e.id}
	forgedTrail := graph.Path{e.dealer, e.id}
	e.neighbors.ForEach(func(u int) bool {
		out(u, core.InfoMsg{Info: e.info, P: trail})
		out(u, core.ValueMsg{X: e.variant(u), P: forgedTrail})
		out(u, zcpa.ValuePayload{X: e.variant(u)})
		return true
	})
}

// Round implements network.Process.
func (e *Equivocator) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case core.ValueMsg:
			if !admissibleTrail(p.P, e.id, m.From) {
				continue
			}
			trail := p.P.Append(e.id)
			e.neighbors.ForEach(func(u int) bool {
				out(u, core.ValueMsg{X: e.variant(u), P: trail})
				return true
			})
		case core.InfoMsg:
			if !admissibleTrail(p.P, e.id, m.From) {
				continue
			}
			next := core.InfoMsg{Info: p.Info, P: p.P.Append(e.id)}
			e.neighbors.ForEach(func(u int) bool {
				out(u, next)
				return true
			})
		}
	}
	return true
}

// Decision implements network.Process.
func (*Equivocator) Decision() (network.Value, bool) { return "", false }

// PathForger attacks the trail discipline of type-1 messages: besides
// injecting a fabricated direct-from-dealer claim at Init (backed by a
// fictitious view containing the edge c–D), it mutates every admissible
// type-1 message it relays, cycling through three forgeries — forged value
// on the honest trail, truncated trail (erase the intermediate hops), and
// spliced trail (stitch the last hop directly onto the dealer).
//
// All three keep the trail's last element equal to the forger, which the
// authenticated channels force anyway; the attack tests that receivers never
// trust the *interior* of a trail that passes through a corrupted node.
type PathForger struct {
	id        int
	dealer    int
	neighbors nodeset.Set
	forged    network.Value
	info      core.NodeInfo
	n         int
	seen      map[string]bool
}

// NewTrailForger corrupts node c of the instance with the trail-mutation
// strategy. (The constructor avoids the name NewPathForger, which
// internal/core uses for the legacy injection-only attack.)
func NewTrailForger(in *instance.Instance, c int, forged network.Value) *PathForger {
	fakeView := in.Gamma.Of(c).Clone()
	fakeView.AddEdge(c, in.Dealer)
	return &PathForger{
		id:        c,
		dealer:    in.Dealer,
		neighbors: in.G.Neighbors(c),
		forged:    forged,
		info:      understatedInfo(c, fakeView),
		seen:      make(map[string]bool),
	}
}

// Init implements network.Process.
func (f *PathForger) Init(out network.Outbox) {
	trail := graph.Path{f.id}
	f.neighbors.ForEach(func(u int) bool {
		out(u, core.InfoMsg{Info: f.info, P: trail})
		out(u, core.ValueMsg{X: f.forged, P: graph.Path{f.dealer, f.id}})
		out(u, zcpa.ValuePayload{X: f.forged})
		return true
	})
}

// Round implements network.Process.
func (f *PathForger) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case core.ValueMsg:
			if !admissibleTrail(p.P, f.id, m.From) {
				continue
			}
			// Mutate each distinct inbound message once. Truncation and
			// splicing produce trails SHORTER than the input, so without
			// dedup a clique of adjacent PathForgers ping-pongs mutations
			// of mutations forever, amplifying the copy count every round
			// (the trail-extending strategies are bounded by trail
			// admissibility alone; this one is not).
			if f.seen[p.Key()] {
				continue
			}
			f.seen[p.Key()] = true
			next, ok := f.mutate(p)
			if !ok {
				continue
			}
			f.neighbors.ForEach(func(u int) bool {
				out(u, next)
				return true
			})
		case core.InfoMsg:
			if !admissibleTrail(p.P, f.id, m.From) {
				continue
			}
			next := core.InfoMsg{Info: p.Info, P: p.P.Append(f.id)}
			f.neighbors.ForEach(func(u int) bool {
				out(u, next)
				return true
			})
		}
	}
	return true
}

// mutate picks the next forgery in the cycle for an admissible type-1
// message. A mutation that would produce a non-simple trail is skipped.
func (f *PathForger) mutate(p core.ValueMsg) (core.ValueMsg, bool) {
	mode := f.n % 3
	f.n++
	switch mode {
	case 0: // forged value, honest trail
		return core.ValueMsg{X: f.forged, P: p.P.Append(f.id)}, true
	case 1: // truncated trail: pretend the head delivered it directly
		if p.P.Head() == f.id {
			return core.ValueMsg{}, false
		}
		return core.ValueMsg{X: p.X, P: graph.Path{p.P.Head(), f.id}}, true
	default: // spliced trail: stitch the last hop straight onto the dealer
		last := p.P.Tail()
		if last == f.dealer || last == f.id || f.dealer == f.id {
			return core.ValueMsg{}, false
		}
		return core.ValueMsg{X: p.X, P: graph.Path{f.dealer, last, f.id}}, true
	}
}

// Decision implements network.Process.
func (*PathForger) Decision() (network.Value, bool) { return "", false }

// ViewLiar attacks the knowledge layer only: it announces two contested
// versions of its own initial knowledge (an understated fake view containing
// direct edges to the dealer and the receiver, and an overstated version
// claiming everything it sees may be corrupted), plus a claim on behalf of a
// fictitious node that allegedly sits between the dealer and the liar. All
// traffic is relayed honestly, so any unsafe decision traces back purely to
// trusting fictitious γ/Z claims.
type ViewLiar struct {
	id        int
	neighbors nodeset.Set
	lies      []network.Payload
}

// NewViewLiar corrupts node c of the instance with the fictitious-knowledge
// strategy.
func NewViewLiar(in *instance.Instance, c int) *ViewLiar {
	ghost := in.G.MaxID() + 1
	fakeView := in.Gamma.Of(c).Clone()
	fakeView.AddEdge(c, in.Dealer)
	fakeView.AddEdge(c, in.Receiver)
	fakeView.AddEdge(c, ghost)

	dom := in.Gamma.NodesOf(c)
	overstated := core.NodeInfo{
		Node: c,
		View: in.Gamma.Of(c),
		Z: adversary.Restricted{
			Domain:    dom,
			Structure: adversary.FromSets(dom.Remove(in.Dealer).Remove(in.Receiver)),
		},
	}.Sealed()

	ghostView := graph.New()
	ghostView.AddEdge(in.Dealer, ghost)
	ghostView.AddEdge(ghost, c)

	return &ViewLiar{
		id:        c,
		neighbors: in.G.Neighbors(c),
		lies: []network.Payload{
			core.InfoMsg{Info: understatedInfo(c, fakeView), P: graph.Path{c}},
			core.InfoMsg{Info: overstated, P: graph.Path{c}},
			core.InfoMsg{Info: understatedInfo(ghost, ghostView), P: graph.Path{ghost, c}},
		},
	}
}

// Init implements network.Process.
func (l *ViewLiar) Init(out network.Outbox) {
	l.neighbors.ForEach(func(u int) bool {
		for _, p := range l.lies {
			out(u, p)
		}
		return true
	})
}

// Round implements network.Process: relay both message types honestly.
func (l *ViewLiar) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		var next network.Payload
		switch p := m.Payload.(type) {
		case core.ValueMsg:
			if !admissibleTrail(p.P, l.id, m.From) {
				continue
			}
			next = core.ValueMsg{X: p.X, P: p.P.Append(l.id)}
		case core.InfoMsg:
			if !admissibleTrail(p.P, l.id, m.From) {
				continue
			}
			next = core.InfoMsg{Info: p.Info, P: p.P.Append(l.id)}
		default:
			continue
		}
		l.neighbors.ForEach(func(u int) bool {
			out(u, next)
			return true
		})
	}
	return true
}

// Decision implements network.Process.
func (*ViewLiar) Decision() (network.Value, bool) { return "", false }

// Eclipser is a selective-relay adversary: it behaves like an honest player
// but forwards traffic only to neighbors that are no closer to the receiver
// than itself, steering information away from R. It forges nothing, so it is
// a pure liveness attack — safety must hold trivially, and the sweep's
// engine-agreement check gets a strategy whose damage is starvation rather
// than confusion.
type Eclipser struct {
	id      int
	allowed nodeset.Set
	info    core.NodeInfo
	seen    map[string]bool
}

// NewEclipser corrupts node c of the instance with the selective-relay
// strategy, suppressing every link that makes progress toward the receiver.
func NewEclipser(in *instance.Instance, c int) *Eclipser {
	dist := in.G.Distances(in.Receiver)
	allowed := nodeset.Empty()
	in.G.Neighbors(c).ForEach(func(u int) bool {
		if dist[u] < 0 || dist[c] < 0 || dist[u] >= dist[c] {
			allowed = allowed.Add(u)
		}
		return true
	})
	return &Eclipser{
		id:      c,
		allowed: allowed,
		info:    honestInfo(in, c),
		seen:    make(map[string]bool),
	}
}

// Init implements network.Process.
func (e *Eclipser) Init(out network.Outbox) {
	e.allowed.ForEach(func(u int) bool {
		out(u, core.InfoMsg{Info: e.info, P: graph.Path{e.id}})
		return true
	})
}

// Round implements network.Process.
func (e *Eclipser) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		var next network.Payload
		switch p := m.Payload.(type) {
		case core.ValueMsg:
			if !admissibleTrail(p.P, e.id, m.From) {
				continue
			}
			next = core.ValueMsg{X: p.X, P: p.P.Append(e.id)}
		case core.InfoMsg:
			if !admissibleTrail(p.P, e.id, m.From) {
				continue
			}
			next = core.InfoMsg{Info: p.Info, P: p.P.Append(e.id)}
		case zcpa.ValuePayload:
			// 𝒵-CPA payloads carry no trail; dedup by key so two adjacent
			// Eclipsers cannot ping-pong the same value forever.
			if e.seen[p.Key()] {
				continue
			}
			e.seen[p.Key()] = true
			next = p
		default:
			continue
		}
		e.allowed.ForEach(func(u int) bool {
			out(u, next)
			return true
		})
	}
	return true
}

// Decision implements network.Process.
func (*Eclipser) Decision() (network.Value, bool) { return "", false }

// funcStrategy adapts a build function into a registered Strategy.
type funcStrategy struct {
	name  string
	desc  string
	build func(in *instance.Instance, c int, forged network.Value, i int) network.Process
}

func (s funcStrategy) Name() string     { return s.name }
func (s funcStrategy) Describe() string { return s.desc }

// Build implements Strategy: every node of t is corrupted with the same
// behavior kind. ForEach iterates in increasing ID order, so the overlay —
// including per-index artifacts like ghost IDs — is deterministic.
func (s funcStrategy) Build(in *instance.Instance, t nodeset.Set, forged network.Value) map[int]network.Process {
	m := make(map[int]network.Process, t.Len())
	i := 0
	t.ForEach(func(c int) bool {
		m[c] = s.build(in, c, forged, i)
		i++
		return true
	})
	return m
}

func init() {
	for _, s := range []funcStrategy{
		{SilentName, "drop everything (worst case for liveness of safe protocols)",
			func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
				return NewSilent()
			}},
		{SpammerName, "flood neighbors with erroneous junk payloads every round",
			func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
				return &Spammer{ID: c, Neighbors: in.G.Neighbors(c)}
			}},
		{ReplayerName, "echo each distinct received payload back to all neighbors once",
			func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
				return &Replayer{Neighbors: in.G.Neighbors(c)}
			}},
		{EquivocatorName, "send a different forged value to every neighbor, on both value channels",
			func(in *instance.Instance, c int, forged network.Value, _ int) network.Process {
				return NewEquivocator(in, c, forged)
			}},
		{PathForgerName, "mutate relayed trails: forged value, truncation, dealer splice",
			func(in *instance.Instance, c int, forged network.Value, _ int) network.Process {
				return NewTrailForger(in, c, forged)
			}},
		{ViewLiarName, "announce contested fictitious views and local structures, relay honestly",
			func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
				return NewViewLiar(in, c)
			}},
		{EclipserName, "relay honestly but only away from the receiver (starvation)",
			func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
				return NewEclipser(in, c)
			}},
		{ValueFlipName, "relay type-1 messages with the forged value substituted",
			func(in *instance.Instance, c int, forged network.Value, _ int) network.Process {
				return core.NewValueFlipper(in, c, forged)
			}},
		{PathForgeryName, "inject a fabricated direct-from-dealer value backed by a fake view",
			func(in *instance.Instance, c int, forged network.Value, _ int) network.Process {
				return core.NewPathForger(in, c, forged)
			}},
		{GhostNodeName, "invent a fictitious node connecting the dealer to the attacker",
			func(in *instance.Instance, c int, forged network.Value, i int) network.Process {
				return core.NewGhostForger(in, c, in.G.MaxID()+1+i, forged)
			}},
		{SplitBrainName, "present two versions of own knowledge to two halves of the neighborhood",
			func(in *instance.Instance, c int, forged network.Value, _ int) network.Process {
				return core.NewSplitBrain(in, c, forged)
			}},
		{StructureLiarName, "relay faithfully but claim every visible subset may be corrupted",
			func(in *instance.Instance, c int, _ network.Value, _ int) network.Process {
				return core.NewStructureLiar(in, c)
			}},
	} {
		Register(s)
	}
}
