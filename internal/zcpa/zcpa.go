// Package zcpa implements the 𝒵-CPA protocol (Certified Propagation
// Algorithm for general adversary structures) adapted for Reliable Message
// Transmission in ad hoc networks, as in Section 4 of the paper, together
// with the RMT 𝒵-pp cut characterization (Definition 7, Theorems 7–8).
//
// Protocol (code for player v, dealer D, receiver R):
//
//  1. The dealer sends its value x_D to all neighbors and terminates.
//  2. If v ∈ N(D): upon reception of x_D from the dealer, decide x_D.
//  3. If v ∉ N(D): upon receiving the same value x from all neighbors in a
//     set N ⊆ N(v) with N ∉ Z_v, decide x.
//  4. Upon deciding: R outputs and terminates; others relay the decided
//     value to all neighbors once and terminate.
//
// The membership check "N ∉ Z_v" is a protocol-scheme subroutine
// (Definition 8): it is abstracted behind the Oracle interface so that the
// Section 5 self-reduction can plug in a simulated-Π implementation
// (internal/selfred) while normal runs use the direct antichain check.
package zcpa

import (
	"sort"

	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// Oracle answers the 𝒵-CPA membership check: whether a set of same-value
// reporting neighbors of v is an admissible corruption set in Z_v. Player v
// decides on x exactly when its set of x-reporters is NOT a member. It is
// the protocol runtime's MembershipOracle — the Definition 8 hook.
type Oracle = protocol.MembershipOracle

// DirectOracle answers membership checks straight from the instance's
// precomputed local structures — the "explicitly given structure" regime in
// which the paper notes 𝒵-CPA is trivially fully polynomial.
type DirectOracle struct {
	In *instance.Instance
}

// Member implements Oracle.
func (o DirectOracle) Member(v int, reporters nodeset.Set) bool {
	return o.In.LocalStructure(v).Contains(reporters)
}

// Decider generalizes the decision subroutine of 𝒵-CPA: given the partition
// of a player's same-value reporter classes, it returns the certified value,
// if any. This is the protocol-scheme hook of Section 5 — the Theorem 9
// construction (internal/selfred) implements it by simulating runs of a
// basic-instance protocol Π instead of checking membership directly.
type Decider = protocol.Decider

// WrapOracle adapts a membership Oracle into a Decider implementing the
// textbook rule: certify x iff the x-reporter class is not in Z_v. Values
// are scanned in sorted order for determinism.
func WrapOracle(o Oracle) Decider { return oracleDecider{o: o} }

type oracleDecider struct{ o Oracle }

func (d oracleDecider) Decide(v int, classes map[network.Value]nodeset.Set) (network.Value, bool) {
	vals := make([]network.Value, 0, len(classes))
	for x := range classes {
		vals = append(vals, x)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, x := range vals {
		if !d.o.Member(v, classes[x]) {
			return x, true
		}
	}
	return "", false
}

// ValuePayload is the single-value message exchanged by 𝒵-CPA (the paper's
// type: each player transmits one value x ∈ X once).
type ValuePayload struct {
	X network.Value
}

// BitSize implements network.Payload.
func (p ValuePayload) BitSize() int { return 8 * len(p.X) }

// Key implements network.Payload.
func (p ValuePayload) Key() string { return "v:" + string(p.X) }

// Dealer is the dealer's process: send x_D to all neighbors, terminate.
type Dealer struct {
	Value     network.Value
	neighbors nodeset.Set
}

// NewDealer builds a dealer process at an explicit graph position, for
// callers outside the instance machinery (e.g. internal/broadcast).
func NewDealer(neighbors nodeset.Set, xD network.Value) *Dealer {
	return &Dealer{Value: xD, neighbors: neighbors}
}

// Init implements network.Process.
func (d *Dealer) Init(out network.Outbox) {
	d.neighbors.ForEach(func(u int) bool {
		out(u, ValuePayload{X: d.Value})
		return true
	})
}

// Round implements network.Process: the dealer terminates immediately.
func (d *Dealer) Round(int, []network.Message, network.Outbox) bool { return false }

// Decision implements network.Process: the dealer trivially knows x_D.
func (d *Dealer) Decision() (network.Value, bool) { return d.Value, true }

// Player is an honest non-dealer player running 𝒵-CPA.
type Player struct {
	id         int
	dealer     int
	isReceiver bool
	neighbors  nodeset.Set
	decider    Decider

	reporters map[network.Value]nodeset.Set
	decided   bool
	value     network.Value
}

// NewPlayer builds the process for node id of the given instance, deciding
// through the membership oracle.
func NewPlayer(in *instance.Instance, id int, oracle Oracle) *Player {
	return NewPlayerWithDecider(in, id, WrapOracle(oracle))
}

// NewPlayerWithDecider builds the process for node id with a custom
// decision subroutine.
func NewPlayerWithDecider(in *instance.Instance, id int, decider Decider) *Player {
	p := NewRelayPlayer(id, in.Dealer, in.G.Neighbors(id), decider)
	p.isReceiver = id == in.Receiver
	return p
}

// NewRelayPlayer builds a relay-and-decide player without a designated
// receiver: upon deciding it always relays and terminates. This is the
// player shape of 𝒵-CPA in its original Reliable Broadcast role, used by
// internal/broadcast.
func NewRelayPlayer(id, dealer int, neighbors nodeset.Set, decider Decider) *Player {
	return &Player{
		id:        id,
		dealer:    dealer,
		neighbors: neighbors,
		decider:   decider,
		reporters: make(map[network.Value]nodeset.Set),
	}
}

// Init implements network.Process.
func (p *Player) Init(network.Outbox) {}

// Round implements network.Process.
func (p *Player) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	if p.decided {
		return false
	}
	for _, m := range inbox {
		vp, ok := m.Payload.(ValuePayload)
		if !ok {
			continue // erroneous message (recognized in poly time); discard
		}
		if m.From == p.dealer {
			// Dealer propagation rule: the dealer is honest by assumption.
			p.decide(vp.X, out)
			return false
		}
		set, exists := p.reporters[vp.X]
		if !exists {
			set = nodeset.Empty()
		}
		p.reporters[vp.X] = set.Add(m.From)
	}
	// Certification rule: decide on x iff the x-reporters form a set
	// outside Z_v. Checking the full reporter set suffices: if it is a
	// member, monotonicity puts every subset inside Z_v too. (At most one
	// value can ever certify for an honest player, by the safety argument
	// of Theorem 7.)
	if len(p.reporters) > 0 {
		if x, ok := p.decider.Decide(p.id, p.reporters); ok {
			p.decide(x, out)
			return false
		}
	}
	return true
}

func (p *Player) decide(x network.Value, out network.Outbox) {
	p.decided = true
	p.value = x
	if p.isReceiver {
		return // R outputs its decision and terminates without relaying
	}
	p.neighbors.ForEach(func(u int) bool {
		out(u, ValuePayload{X: x})
		return true
	})
}

// Decision implements network.Process.
func (p *Player) Decision() (network.Value, bool) { return p.value, p.decided }

// NewProcesses assembles the process map for a 𝒵-CPA run: the dealer, honest
// players, and the supplied corrupted processes (which take precedence for
// their nodes; the dealer and receiver cannot be corrupted). A nil oracle
// defaults to the DirectOracle.
func NewProcesses(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, oracle Oracle) map[int]network.Process {
	if oracle == nil {
		oracle = DirectOracle{In: in}
	}
	return NewProcessesWithDecider(in, xD, corrupt, WrapOracle(oracle))
}

// NewProcessesWithDecider assembles the process map with a custom decision
// subroutine for every honest player.
func NewProcessesWithDecider(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, decider Decider) map[int]network.Process {
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), corrupt, func(v int) network.Process {
		if v == in.Dealer {
			return &Dealer{Value: xD, neighbors: in.G.Neighbors(v)}
		}
		return NewPlayerWithDecider(in, v, decider)
	})
}

// Options tweaks a run. It is the unified option set of the protocol
// runtime; 𝒵-CPA reads Oracle and Decider (Decider overrides Oracle; both
// nil defaults to the DirectOracle) in addition to the engine fields.
type Options = protocol.Options

// resolveDecider picks the decision subroutine the options call for.
func resolveDecider(in *instance.Instance, opts Options) Decider {
	if opts.Decider != nil {
		return opts.Decider
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = DirectOracle{In: in}
	}
	return WrapOracle(oracle)
}

// Proto is 𝒵-CPA's registry entry; the package registers it under
// protocol.ZCPA at init.
type Proto struct{}

// Name implements protocol.Protocol.
func (Proto) Name() string { return protocol.ZCPA }

// Caps implements protocol.Protocol: 𝒵-CPA is the ad hoc protocol and only
// the receiver decides.
func (Proto) Caps() protocol.Caps { return protocol.Caps{} }

// Assemble implements protocol.Protocol.
func (Proto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	return NewProcessesWithDecider(in, xD, opts.Corrupt, resolveDecider(in, opts)), nil
}

// Solvable implements protocol.Feasibility: 𝒵-CPA is tight against the RMT
// 𝒵-pp cut condition (Theorems 7 & 8).
func (Proto) Solvable(in *instance.Instance) bool { return Solvable(in) }

func init() { protocol.Register(Proto{}) }

// Run executes 𝒵-CPA on the instance with dealer value xD and the given
// corrupted players, stopping as soon as the receiver decides. A non-nil
// corrupt map takes precedence over opts.Corrupt.
func Run(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, opts Options) (*network.Result, error) {
	if corrupt != nil {
		opts.Corrupt = corrupt
	}
	return protocol.Run(Proto{}, in, xD, opts)
}

// Resilient reports whether 𝒵-CPA achieves RMT on the instance for every
// admissible corruption set. It simulates the silent adversary on every
// maximal corruption set, which is the worst case for liveness because
// 𝒵-CPA is safe (DESIGN.md §5); monotonicity makes maximal sets sufficient.
func Resilient(in *instance.Instance) (bool, error) {
	for _, t := range in.MaximalCorruptions() {
		res, err := Run(in, "1", protocol.Silence(t), Options{})
		if err != nil {
			return false, err
		}
		if _, ok := res.DecisionOf(in.Receiver); !ok {
			return false, nil
		}
	}
	return true, nil
}
