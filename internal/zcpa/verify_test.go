package zcpa

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

func TestVerifyZppCutAcceptsFound(t *testing.T) {
	in := weakDiamond(t)
	cut, found := FindRMTZppCut(in)
	if !found {
		t.Fatal("no cut")
	}
	if err := VerifyZppCut(in, cut); err != nil {
		t.Fatalf("found witness rejected: %v", err)
	}
}

func TestVerifyZppCutRejectsForgeries(t *testing.T) {
	in := weakDiamond(t)
	good, _ := FindRMTZppCut(in)
	forgeries := []struct {
		name string
		cut  ZppCut
	}{
		{"overlap", ZppCut{C1: nodeset.Of(1), C2: nodeset.Of(1), B: good.B}},
		{"terminal in cut", ZppCut{C1: nodeset.Of(3), C2: nodeset.Of(1), B: good.B}},
		{"not separating", ZppCut{C1: nodeset.Of(1), C2: nodeset.Empty(), B: nodeset.Of(2, 3)}},
		{"wrong B", ZppCut{C1: good.C1, C2: good.C2, B: nodeset.Of(0, 3)}},
		{"inadmissible C1", ZppCut{C1: nodeset.Of(1, 2), C2: nodeset.Empty(), B: good.B}},
	}
	for _, f := range forgeries {
		if err := VerifyZppCut(in, f.cut); err == nil {
			t.Errorf("forgery %q accepted", f.name)
		}
	}
}

func TestVerifyZppCutLocalCondition(t *testing.T) {
	// Same orientation trick as the RMT-cut test: only {1} admissible.
	in := mustInstance(t, "0-1 0-2 1-3 2-3", adversary.FromSlices([]int{1}), 0, 3)
	bad := ZppCut{C1: nodeset.Of(1), C2: nodeset.Of(2), B: nodeset.Of(3)}
	if err := VerifyZppCut(in, bad); err == nil {
		t.Fatal("verifier accepted a cut violating the N(u)∩C2 condition")
	}
}

func TestVerifyZppCutAllFoundRandom(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	verified := 0
	for trial := 0; trial < 80; trial++ {
		n := 4 + r.Intn(3)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(0, n-1)), 1+r.Intn(2), 0.4)
		in, err := instance.AdHoc(g, z, 0, n-1)
		if err != nil {
			continue
		}
		cut, found := FindRMTZppCut(in)
		if !found {
			continue
		}
		if err := VerifyZppCut(in, cut); err != nil {
			t.Fatalf("trial %d: witness %v rejected: %v", trial, cut, err)
		}
		verified++
	}
	if verified < 10 {
		t.Fatalf("only %d witnesses verified", verified)
	}
}

func TestFindRMTZppCutBounded(t *testing.T) {
	in := weakDiamond(t)
	cut, found, complete := FindRMTZppCutBounded(in, 0)
	if !found || !complete {
		t.Fatalf("unbounded: found=%v complete=%v", found, complete)
	}
	if err := VerifyZppCut(in, cut); err != nil {
		t.Fatal(err)
	}
	// A line has multiple receiver-side candidates, so budget 1 must
	// report an incomplete search on a solvable line.
	solvable := mustInstance(t, "0-1 1-2 2-3 3-4", adversary.Trivial(), 0, 4)
	if _, found, complete := FindRMTZppCutBounded(solvable, 1); found || complete {
		t.Fatalf("budget 1 on solvable line: found=%v complete=%v", found, complete)
	}
	// The triple path has exactly one candidate: budget 1 is complete.
	if _, found, complete := FindRMTZppCutBounded(triplePath(t), 1); found || !complete {
		t.Fatalf("triple path budget 1: found=%v complete=%v", found, complete)
	}
}
