package zcpa_test

import (
	"context"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/zcpa"
)

// incrLine: the line with a corruptible middle relay — infeasible ad hoc
// (the relay is a one-node 𝒵-pp cut with C2 = ∅); see the core twin.
func incrLine(t testing.TB, n int) *instance.Instance {
	t.Helper()
	in, err := gen.Build(gen.Line(n), adversary.FromSlices([]int{n / 2}), gen.AdHoc, 0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestIncrementalZppCutRepairsInsteadOfEnumerating(t *testing.T) {
	in := incrLine(t, 12)
	ic := zcpa.NewIncrementalCut()
	w, found := ic.Check(in)
	if !found {
		t.Fatal("line with corruptible middle relay should be infeasible ad hoc")
	}
	if err := zcpa.VerifyZppCut(in, w); err != nil {
		t.Fatal(err)
	}
	cur := in
	for _, chord := range [][2]int{{0, 2}, {1, 3}, {0, 4}} {
		next, err := gen.ApplyDelta(cur, instance.Delta{AddEdges: [][2]int{chord}}, gen.AdHoc)
		if err != nil {
			t.Fatal(err)
		}
		w, found = ic.Check(next)
		if !found {
			t.Fatalf("chord %v flipped the verdict", chord)
		}
		if err := zcpa.VerifyZppCut(next, w); err != nil {
			t.Fatalf("repaired witness invalid after chord %v: %v", chord, err)
		}
		cur = next
	}
	if repaired, fresh := ic.Stats(); repaired != 3 || fresh != 1 {
		t.Fatalf("Stats() = (%d repaired, %d fresh), want (3, 1)", repaired, fresh)
	}
}

func TestIncrementalZppCutFallsBackWhenWitnessDies(t *testing.T) {
	in := incrLine(t, 6)
	ic := zcpa.NewIncrementalCut()
	if _, found := ic.Check(in); !found {
		t.Fatal("expected infeasible base")
	}
	next, err := gen.ApplyDelta(in, instance.Delta{AddEdges: [][2]int{{2, 4}}}, gen.AdHoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := ic.Check(next); found {
		t.Fatal("detour around the corruptible relay should make the instance solvable")
	}
	w, found := zcpa.FindRMTZppCut(next)
	if found {
		t.Fatalf("fresh search disagrees: found %v", w)
	}
}

func TestIncrementalZppCutSeedAndCtx(t *testing.T) {
	in := incrLine(t, 12)
	w, found := zcpa.FindRMTZppCut(in)
	if !found {
		t.Fatal("expected infeasible base")
	}
	ic := zcpa.NewIncrementalCut()
	ic.Seed(w, true)
	next, err := gen.ApplyDelta(in, instance.Delta{AddEdges: [][2]int{{0, 2}}}, gen.AdHoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := ic.Check(next); !found {
		t.Fatal("seeded checker lost the verdict")
	}
	if repaired, fresh := ic.Stats(); repaired != 1 || fresh != 0 {
		t.Fatalf("seeded checker should repair, not enumerate: (%d, %d)", repaired, fresh)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fresh := zcpa.NewIncrementalCut()
	if _, _, err := fresh.CheckCtx(ctx, in); err == nil {
		t.Fatal("cancelled context should abort the search")
	}
	if w2, found, err := fresh.CheckCtx(context.Background(), in); err != nil || !found {
		t.Fatalf("retry failed: %v found=%v", err, found)
	} else if err := zcpa.VerifyZppCut(in, w2); err != nil {
		t.Fatal(err)
	}
}
