package zcpa

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// junk is an erroneous payload — "a message of different form" in the
// paper's terms — that honest players must recognize and discard.
type junk struct{ seq int }

func (j junk) BitSize() int { return 8 }
func (j junk) Key() string  { return "junk:" + string(rune('a'+j.seq)) }

// noisemaker floods its neighbors with junk every round (a minimal local
// stand-in for the attack library's Spammer, which cannot be imported here
// without a test-only cycle).
type noisemaker struct{ neighbors nodeset.Set }

func (*noisemaker) Init(network.Outbox) {}
func (n *noisemaker) Round(round int, _ []network.Message, out network.Outbox) bool {
	n.neighbors.ForEach(func(u int) bool {
		for i := 0; i < 3; i++ {
			out(u, junk{seq: i})
		}
		return true
	})
	return true
}
func (*noisemaker) Decision() (network.Value, bool) { return "", false }

// echoer bounces each received payload back to all neighbors once (a local
// stand-in for the attack library's Replayer).
type echoer struct {
	neighbors nodeset.Set
	seen      map[string]bool
}

func (*echoer) Init(network.Outbox) {}
func (e *echoer) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		if e.seen == nil {
			e.seen = make(map[string]bool)
		}
		if e.seen[m.Payload.Key()] {
			continue
		}
		e.seen[m.Payload.Key()] = true
		e.neighbors.ForEach(func(u int) bool {
			out(u, m.Payload)
			return true
		})
	}
	return true
}
func (*echoer) Decision() (network.Value, bool) { return "", false }

func mustInstance(t *testing.T, edges string, z adversary.Structure, d, r int) *instance.Instance {
	t.Helper()
	g, err := graph.ParseEdgeList(edges)
	if err != nil {
		t.Fatal(err)
	}
	in, err := instance.AdHoc(g, z, d, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// triplePath: three disjoint relay paths 0→{1,2,3}→4; Z corrupts any single
// relay. Solvable: two honest relays always certify at R. The topology and
// verdicts live in internal/feasibility.
func triplePath(t *testing.T) *instance.Instance {
	t.Helper()
	return feasibility.MustByName(feasibility.TriplePath).MustBuild(gen.AdHoc)
}

// weakDiamond: two disjoint relay paths with Z corrupting either relay.
// Unsolvable in the ad hoc model: one honest relay is indistinguishable
// from one corrupted relay.
func weakDiamond(t *testing.T) *instance.Instance {
	t.Helper()
	return feasibility.MustByName(feasibility.WeakDiamond).MustBuild(gen.AdHoc)
}

func TestDealerNeighborDecides(t *testing.T) {
	in := mustInstance(t, "0-1", adversary.Trivial(), 0, 1)
	res, err := Run(in, "attack at dawn", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(1); !ok || got != "attack at dawn" {
		t.Fatalf("receiver decision = %q, %v", got, ok)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestMultiHopRelay(t *testing.T) {
	in := mustInstance(t, "0-1 1-2 2-3", adversary.Trivial(), 0, 3)
	res, err := Run(in, "m", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(3); !ok || got != "m" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
	// One decision per round after the first: 3 hops.
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
}

func TestTriplePathResilient(t *testing.T) {
	in := triplePath(t)
	for _, corrupted := range []int{1, 2, 3} {
		res, err := Run(in, "x", protocol.Silence(nodeset.Of(corrupted)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(4); !ok || got != "x" {
			t.Fatalf("corrupt=%d: decision = %q, %v", corrupted, got, ok)
		}
	}
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Resilient = false on the triple-path instance")
	}
}

func TestWeakDiamondNotResilient(t *testing.T) {
	in := weakDiamond(t)
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Resilient = true on the weak diamond")
	}
}

func TestZppCutOnWeakDiamond(t *testing.T) {
	in := weakDiamond(t)
	cut, found := FindRMTZppCut(in)
	if !found {
		t.Fatal("no RMT Z-pp cut found on the weak diamond")
	}
	if !cut.Cut().Equal(nodeset.Of(1, 2)) {
		t.Fatalf("cut = %v, want {1, 2}", cut.Cut())
	}
	if !in.Z.Contains(cut.C1) {
		t.Fatalf("C1 = %v not admissible", cut.C1)
	}
	if Solvable(in) {
		t.Fatal("Solvable = true despite a cut")
	}
}

func TestNoZppCutOnTriplePath(t *testing.T) {
	in := triplePath(t)
	if cut, found := FindRMTZppCut(in); found {
		t.Fatalf("unexpected cut %v", cut)
	}
	if !Solvable(in) {
		t.Fatal("Solvable = false without a cut")
	}
}

func TestDisconnectedIsTrivialCut(t *testing.T) {
	in := mustInstance(t, "0-1 2-3", adversary.Trivial(), 0, 3)
	cut, found := FindRMTZppCut(in)
	if !found {
		t.Fatal("disconnected instance has no cut?")
	}
	if !cut.Cut().IsEmpty() {
		t.Fatalf("cut = %v, want empty", cut.Cut())
	}
}

func TestAdjacentDealerReceiverAlwaysSolvable(t *testing.T) {
	// Even a structure corrupting all relays cannot cut an edge D-R.
	in := mustInstance(t, "0-3 0-1 1-3 0-2 2-3",
		adversary.FromSlices([]int{1, 2}), 0, 3)
	if _, found := FindRMTZppCut(in); found {
		t.Fatal("found a cut despite D-R edge")
	}
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("not resilient despite D-R edge")
	}
}

func TestSafetyUnderWrongValueAttack(t *testing.T) {
	in := triplePath(t)
	for _, corrupted := range []int{1, 2, 3} {
		procs := WrongValueProcesses(in, nodeset.Of(corrupted), "forged")
		res, err := Run(in, "real", procs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, ok := res.DecisionOf(4)
		if !ok {
			t.Fatalf("corrupt=%d: receiver undecided under wrong-value attack", corrupted)
		}
		if got != "real" {
			t.Fatalf("corrupt=%d: receiver decided %q — SAFETY VIOLATION", corrupted, got)
		}
	}
}

func TestSafetyOnUnsolvableInstance(t *testing.T) {
	// Safety must hold even where liveness cannot: on the weak diamond the
	// receiver may stay undecided but must never decide wrong.
	in := weakDiamond(t)
	for _, corrupted := range []int{1, 2} {
		procs := WrongValueProcesses(in, nodeset.Of(corrupted), "forged")
		res, err := Run(in, "real", procs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(3); ok && got != "real" {
			t.Fatalf("corrupt=%d: receiver decided %q — SAFETY VIOLATION", corrupted, got)
		}
	}
}

func TestTwoFacedAttackSafety(t *testing.T) {
	in := triplePath(t)
	attacker := &TwoFaced{
		TellTruth: nodeset.Of(0),
		TellLie:   nodeset.Of(4),
		Truth:     "real",
		Lie:       "forged",
	}
	res, err := Run(in, "real", map[int]network.Process{2: attacker}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "real" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestErroneousMessagesIgnored(t *testing.T) {
	in := triplePath(t)
	spammer := &noisemaker{neighbors: in.G.Neighbors(2)}
	res, err := Run(in, "x", map[int]network.Process{2: spammer}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("decision = %q, %v under spam", got, ok)
	}
}

func TestReplayerHarmless(t *testing.T) {
	in := triplePath(t)
	rep := &echoer{neighbors: in.G.Neighbors(3)}
	res, err := Run(in, "x", map[int]network.Process{3: rep}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("decision = %q, %v under replay", got, ok)
	}
}

func TestCorruptMapCannotTouchDealerReceiver(t *testing.T) {
	in := triplePath(t)
	procs := NewProcesses(in, "x", protocol.Silence(nodeset.Of(0, 4)), nil)
	if _, ok := procs[0].(*Dealer); !ok {
		t.Fatal("dealer was replaced by a corrupt process")
	}
	if _, ok := procs[4].(*Player); !ok {
		t.Fatal("receiver was replaced by a corrupt process")
	}
}

func TestGoroutineEngineAgrees(t *testing.T) {
	in := triplePath(t)
	for _, corrupted := range []int{1, 2, 3} {
		a, err := Run(in, "x", protocol.Silence(nodeset.Of(corrupted)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(in, "x", protocol.Silence(nodeset.Of(corrupted)), Options{Engine: network.Goroutine})
		if err != nil {
			t.Fatal(err)
		}
		if av, aok := a.DecisionOf(4); true {
			if bv, bok := b.DecisionOf(4); av != bv || aok != bok {
				t.Fatalf("engines disagree: %q/%v vs %q/%v", av, aok, bv, bok)
			}
		}
	}
}

// TestTightness is the package-local slice of experiment E4: on random
// small ad hoc instances, Z-pp-cut existence must match Z-CPA failure
// exactly (Theorems 7 and 8).
func TestTightness(t *testing.T) {
	r := rand.New(rand.NewSource(2016))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		n := 4 + r.Intn(4)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.45 {
					g.AddEdge(u, v)
				}
			}
		}
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 1+r.Intn(3), 0.4)
		in, err := instance.AdHoc(g, z, d, rcv)
		if err != nil {
			continue
		}
		solvable := Solvable(in)
		resilient, err := Resilient(in)
		if err != nil {
			t.Fatal(err)
		}
		if solvable != resilient {
			t.Fatalf("trial %d: cut condition says solvable=%v but simulation says %v\nG=%v\nZ=%v",
				trial, solvable, resilient, g, z)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestRoundComplexityLinear(t *testing.T) {
	// Z-CPA decides within n rounds: at least one player decides per round
	// (Theorem 9's complexity analysis).
	for n := 3; n <= 12; n++ {
		g := graph.New()
		for i := 0; i < n-1; i++ {
			g.AddEdge(i, i+1)
		}
		in, err := instance.AdHoc(g, adversary.Trivial(), 0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(in, "x", nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res.DecisionOf(n - 1); !ok {
			t.Fatalf("n=%d: undecided", n)
		}
		if res.Rounds > n {
			t.Fatalf("n=%d: %d rounds exceeds n", n, res.Rounds)
		}
	}
}

func TestValuePayload(t *testing.T) {
	p := ValuePayload{X: "ab"}
	if p.BitSize() != 16 {
		t.Fatalf("BitSize = %d", p.BitSize())
	}
	if p.Key() != "v:ab" {
		t.Fatalf("Key = %q", p.Key())
	}
}
