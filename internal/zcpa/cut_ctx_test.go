package zcpa

import (
	"context"
	"testing"
)

// TestFindRMTZppCutCtxAgreesWhenLive: under a live context the ctx-aware
// search is the plain search — same verdict on both a solvable and an
// unsolvable fixture, and a verified witness when one exists.
func TestFindRMTZppCutCtxAgreesWhenLive(t *testing.T) {
	if _, found, err := FindRMTZppCutCtx(context.Background(), triplePath(t)); err != nil || found {
		t.Fatalf("triplePath: found=%v err=%v, want no cut", found, err)
	}
	unsolvable := weakDiamond(t)
	cut, found, err := FindRMTZppCutCtx(context.Background(), unsolvable)
	if err != nil || !found {
		t.Fatalf("weakDiamond: found=%v err=%v, want a cut", found, err)
	}
	if verr := VerifyZppCut(unsolvable, cut); verr != nil {
		t.Fatalf("witness does not verify: %v", verr)
	}
}

// TestFindRMTZppCutCtxCanceled: a canceled context aborts the enumeration
// with the context's error instead of running the search to completion —
// the property rmtd relies on to free a worker slot after a 504.
func TestFindRMTZppCutCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, found, err := FindRMTZppCutCtx(ctx, weakDiamond(t))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if found {
		t.Fatal("canceled search reported a witness")
	}
}
