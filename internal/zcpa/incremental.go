package zcpa

import (
	"context"

	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// IncrementalCut maintains an RMT 𝒵-pp cut verdict across a sequence of
// instance revisions — the ad hoc counterpart of core.IncrementalCut,
// with the same contract: while the instance stays infeasible, each
// revision re-verifies the previous witness (one BFS plus one candidate
// evaluation with the ∀u ∈ B local check) and only falls back to the full
// FindRMTZppCut enumeration when repair fails or no certificate exists.
// Verdicts always equal a fresh search's; witnesses may differ.
//
// The zero value is ready to use. Not safe for concurrent use.
type IncrementalCut struct {
	witness ZppCut
	found   bool
	primed  bool

	repaired, fresh int
}

// NewIncrementalCut returns an empty checker; the first Check runs fresh.
func NewIncrementalCut() *IncrementalCut { return &IncrementalCut{} }

// Seed primes the checker with a known verdict for the *current* revision.
// A seeded witness is trusted; callers holding untrusted bytes should
// VerifyZppCut first.
func (ic *IncrementalCut) Seed(witness ZppCut, found bool) {
	ic.witness, ic.found, ic.primed = witness, found, true
}

// Check evaluates the next revision, preferring witness repair over fresh
// enumeration, and remembers the result for the revision after.
func (ic *IncrementalCut) Check(in *instance.Instance) (ZppCut, bool) {
	w, f, _ := ic.CheckCtx(context.Background(), in)
	return w, f
}

// CheckCtx is Check under a context. On a context error the checker's
// state is left untouched and the caller may retry.
func (ic *IncrementalCut) CheckCtx(ctx context.Context, in *instance.Instance) (ZppCut, bool, error) {
	if ic.primed && ic.found {
		if w, ok := repairZppCut(in, ic.witness); ok {
			ic.repaired++
			ic.witness = w
			return w, true, nil
		}
	}
	w, f, err := FindRMTZppCutCtx(ctx, in)
	if err != nil {
		return ZppCut{}, false, err
	}
	ic.fresh++
	ic.witness, ic.found, ic.primed = w, f, true
	return w, f, nil
}

// Stats returns how many revisions were answered by witness repair and how
// many needed the full enumeration.
func (ic *IncrementalCut) Stats() (repaired, fresh int) { return ic.repaired, ic.fresh }

// repairZppCut tries to turn a witness for the previous revision into one
// for in; see core.repairRMTCut for the shape argument. The candidate
// predicate here is Definition 7's: ∀u ∈ B, N(u) ∩ C2 ∈ Z_u.
func repairZppCut(in *instance.Instance, old ZppCut) (ZppCut, bool) {
	if !in.G.Connected(in.Dealer, in.Receiver) {
		return ZppCut{
			C1: nodeset.Empty(),
			C2: nodeset.Empty(),
			B:  in.G.ComponentOf(in.Receiver),
		}, true
	}
	c := old.Cut().Intersect(in.G.Nodes())
	if c.Contains(in.Dealer) || c.Contains(in.Receiver) {
		return ZppCut{}, false
	}
	b := in.G.ComponentAvoiding(in.Receiver, c)
	if b.Contains(in.Dealer) {
		return ZppCut{}, false
	}
	cut := in.G.Boundary(b)
	memo := make(map[int]map[string]bool)
	for _, m := range in.Z.Maximal() {
		c2 := cut.Minus(m)
		if holdsForAll(in, b, c2, memo) {
			return ZppCut{C1: cut.Intersect(m), C2: c2, B: b}, true
		}
	}
	return ZppCut{}, false
}
