package zcpa

import (
	"fmt"

	"rmt/internal/instance"
)

// VerifyZppCut checks that a claimed RMT 𝒵-pp cut witness satisfies
// Definition 7 on the instance — the independent verification counterpart
// of FindRMTZppCut's exponential search:
//
//  1. C1 and C2 are disjoint from each other and from {D, R};
//  2. C = C1 ∪ C2 separates D from R (or they were never connected);
//  3. B is the receiver's connected component of G − C;
//  4. C1 ∈ 𝒵;
//  5. ∀u ∈ B: N(u) ∩ C2 ∈ Z_u.
func VerifyZppCut(in *instance.Instance, cut ZppCut) error {
	c := cut.Cut()
	if cut.C1.Intersects(cut.C2) {
		return fmt.Errorf("zcpa: C1 %v and C2 %v overlap", cut.C1, cut.C2)
	}
	if c.Contains(in.Dealer) || c.Contains(in.Receiver) {
		return fmt.Errorf("zcpa: cut %v contains a terminal", c)
	}
	if !c.SubsetOf(in.G.Nodes()) {
		return fmt.Errorf("zcpa: cut %v contains non-nodes", c)
	}
	if !in.G.Separates(c, in.Dealer, in.Receiver) &&
		in.G.Connected(in.Dealer, in.Receiver) {
		return fmt.Errorf("zcpa: %v does not separate %d from %d", c, in.Dealer, in.Receiver)
	}
	comp := in.G.RemoveNodes(c).ComponentOf(in.Receiver)
	if !comp.Equal(cut.B) {
		return fmt.Errorf("zcpa: B %v is not the receiver component %v", cut.B, comp)
	}
	if !in.Z.Contains(cut.C1) {
		return fmt.Errorf("zcpa: C1 %v is not admissible", cut.C1)
	}
	if !holdsForAll(in, cut.B, cut.C2, make(map[int]map[string]bool)) {
		return fmt.Errorf("zcpa: some u ∈ B has N(u) ∩ C2 ∉ Z_u")
	}
	return nil
}
