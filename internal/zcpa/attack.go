package zcpa

import (
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// WrongValue is a Byzantine player that runs the 𝒵-CPA message format but
// relays a chosen false value to all its neighbors, posing as a decided
// player from round one.
type WrongValue struct {
	Neighbors nodeset.Set
	Value     network.Value
	sent      bool
}

// Init implements network.Process.
func (w *WrongValue) Init(network.Outbox) {}

// Round implements network.Process.
func (w *WrongValue) Round(_ int, _ []network.Message, out network.Outbox) bool {
	if w.sent {
		return true
	}
	w.sent = true
	w.Neighbors.ForEach(func(u int) bool {
		out(u, ValuePayload{X: w.Value})
		return true
	})
	return true
}

// Decision implements network.Process.
func (*WrongValue) Decision() (network.Value, bool) { return "", false }

// WrongValueProcesses corrupts every node of t with a WrongValue attacker
// pushing the given false value.
func WrongValueProcesses(in *instance.Instance, t nodeset.Set, false_ network.Value) map[int]network.Process {
	m := make(map[int]network.Process, t.Len())
	t.ForEach(func(v int) bool {
		m[v] = &WrongValue{Neighbors: in.G.Neighbors(v), Value: false_}
		return true
	})
	return m
}

// TwoFaced relays the true value to some neighbors and a false value to the
// others, splitting the network's perception — the strongest simple attack
// against certification-style protocols.
type TwoFaced struct {
	TellTruth nodeset.Set // neighbors that get the true value
	TellLie   nodeset.Set // neighbors that get the false value
	Truth     network.Value
	Lie       network.Value
	sent      bool
}

// Init implements network.Process.
func (a *TwoFaced) Init(network.Outbox) {}

// Round implements network.Process.
func (a *TwoFaced) Round(_ int, _ []network.Message, out network.Outbox) bool {
	if a.sent {
		return true
	}
	a.sent = true
	a.TellTruth.ForEach(func(u int) bool {
		out(u, ValuePayload{X: a.Truth})
		return true
	})
	a.TellLie.ForEach(func(u int) bool {
		out(u, ValuePayload{X: a.Lie})
		return true
	})
	return true
}

// Decision implements network.Process.
func (*TwoFaced) Decision() (network.Value, bool) { return "", false }
