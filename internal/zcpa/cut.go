package zcpa

import (
	"context"
	"fmt"

	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// ZppCut is a witness for Definition 7: an RMT 𝒵-pp cut C = C1 ∪ C2
// separating D from R where C1 ∈ 𝒵 and every node u on the receiver side B
// has N(u) ∩ C2 ∈ Z_u. Its existence is exactly the impossibility condition
// for ad hoc RMT (Theorems 7 and 8).
type ZppCut struct {
	C1, C2 nodeset.Set
	B      nodeset.Set // the receiver-side component used as witness
}

// Cut returns C1 ∪ C2.
func (c ZppCut) Cut() nodeset.Set { return c.C1.Union(c.C2) }

func (c ZppCut) String() string {
	return fmt.Sprintf("ZppCut(C1=%v, C2=%v, B=%v)", c.C1, c.C2, c.B)
}

// FindRMTZppCut searches for an RMT 𝒵-pp cut in the instance, returning a
// witness if one exists.
//
// The search enumerates connected receiver-side candidates B (with
// C = N(B), the least cut realizing that side; the cut predicate is
// monotone-decreasing in C2, and shrinking B only drops ∀u∈B constraints,
// so restricting to component-shaped B with minimal boundary is complete —
// see DESIGN.md §4). For each candidate, C1 is best chosen as C ∩ M for a
// maximal M ∈ 𝒵.
//
// The enumeration is exponential in |V| in the worst case, as expected for
// a tight characterization of an NP-hard-style cut condition; instances in
// this repository keep it small.
func FindRMTZppCut(in *instance.Instance) (ZppCut, bool) {
	cut, found, _ := FindRMTZppCutBounded(in, 0)
	return cut, found
}

// FindRMTZppCutBounded is FindRMTZppCut with a search budget: at most
// maxCandidates receiver-side candidates are inspected (0 = unlimited).
// complete reports full coverage of the search space; a found witness is
// always genuine (VerifyZppCut accepts it).
func FindRMTZppCutBounded(in *instance.Instance, maxCandidates int) (witness ZppCut, found, complete bool) {
	witness, found, complete, _ = findRMTZppCut(context.Background(), in, maxCandidates)
	return witness, found, complete
}

// FindRMTZppCutCtx is FindRMTZppCut under a context: the enumeration polls
// ctx.Err() once per receiver-side candidate and aborts with the context's
// error, so a caller-imposed deadline or cancellation stops the
// (worst-case exponential) search promptly instead of letting it run to
// completion. A found witness is always genuine.
func FindRMTZppCutCtx(ctx context.Context, in *instance.Instance) (ZppCut, bool, error) {
	witness, found, _, err := findRMTZppCut(ctx, in, 0)
	return witness, found, err
}

func findRMTZppCut(ctx context.Context, in *instance.Instance, maxCandidates int) (witness ZppCut, found, complete bool, err error) {
	// Disconnected dealer/receiver: the empty cut is an RMT 𝒵-pp cut.
	if !in.G.Connected(in.Dealer, in.Receiver) {
		return ZppCut{
			C1: nodeset.Empty(),
			C2: nodeset.Empty(),
			B:  in.G.ComponentOf(in.Receiver),
		}, true, true, nil
	}
	inspected := 0
	complete = true
	memo := make(map[int]map[string]bool)
	in.G.ReceiverSideCandidates(in.Dealer, in.Receiver, func(b, cut nodeset.Set) bool {
		if err = ctx.Err(); err != nil {
			complete = false
			return false
		}
		if maxCandidates > 0 && inspected >= maxCandidates {
			complete = false
			return false
		}
		inspected++
		for _, m := range in.Z.Maximal() {
			c2 := cut.Minus(m)
			if holdsForAll(in, b, c2, memo) {
				witness = ZppCut{C1: cut.Intersect(m), C2: c2, B: b}
				found = true
				return false
			}
		}
		return true
	})
	return witness, found, complete, err
}

// holdsForAll checks ∀u ∈ B: N(u) ∩ C2 ∈ Z_u. Candidates share most of
// their (u, N(u) ∩ C2) pairs with their parents in the enumeration, so the
// per-node membership verdicts are memoized for the duration of one search,
// keyed by node and intersection.
func holdsForAll(in *instance.Instance, b, c2 nodeset.Set, memo map[int]map[string]bool) bool {
	ok := true
	b.ForEach(func(u int) bool {
		part := in.G.Neighbors(u).Intersect(c2)
		byPart := memo[u]
		if byPart == nil {
			byPart = make(map[string]bool)
			memo[u] = byPart
		}
		k := part.Key()
		res, seen := byPart[k]
		if !seen {
			res = in.LocalStructure(u).Contains(part)
			byPart[k] = res
		}
		if !res {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Solvable reports whether ad hoc RMT is solvable on the instance, by the
// tight condition of Theorems 7–8 (no RMT 𝒵-pp cut). By Theorem 7 this is
// exactly when 𝒵-CPA succeeds, which Resilient verifies operationally; the
// two must always agree, and the test suite asserts they do.
func Solvable(in *instance.Instance) bool {
	_, found := FindRMTZppCut(in)
	return !found
}
