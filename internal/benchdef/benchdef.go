// Package benchdef declares the protocol hot-path benchmark table shared
// by the repo-root bench_test.go and cmd/rmtbench. Both suites iterate the
// same slice, so a new entry — a protocol variant or a new instance family
// — appears in `go test -bench` and in BENCH.json automatically, and the
// two cannot drift apart. The package deliberately depends only on
// internal packages: bench_test.go lives in package rmt, so importing the
// root package here would cycle.
package benchdef

import (
	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// ProtoBench declares one registry-resolved protocol run benchmark.
type ProtoBench struct {
	// Name is the stable benchmark name used in BENCH.json; renaming an
	// entry breaks comparability with committed baselines.
	Name string
	// Protocol is the registry name passed to protocol.RunByName.
	Protocol string
	// Instance builds the benchmark instance. Called once per suite run,
	// outside the timed loop.
	Instance func() (*instance.Instance, error)
	// Opts are the run options (engine, memo escape hatch, ...).
	Opts protocol.Options
	// MustDecide asserts the receiver decided after every run: a bench
	// that silently stopped deciding would be measuring a useless run.
	MustDecide bool
}

// ChainInstance builds `paths` disjoint relay chains of `hops`
// intermediate nodes each with singleton corruption on every relay — the
// classic RMT benchmark topology. With hops = 1 the instance is solvable
// even ad hoc; with hops = 2 it needs radius-2 knowledge (chimera sets
// survive the neighborhood-only join).
func ChainInstance(paths, hops int, level gen.Knowledge) (*instance.Instance, error) {
	g, d, r := gen.DisjointPaths(paths, hops)
	z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
	return gen.Build(g, z, level, d, r)
}

// LopsidedChainInstance builds disjoint relay chains with per-chain
// lengths and singleton corruption. A length mix like {1, 1, 196} scales
// the node count into the hundreds while the two short chains still carry
// the decision, exercising the receiver's packed bookkeeping at size
// without exploding the search space.
func LopsidedChainInstance(lens []int, level gen.Knowledge) (*instance.Instance, error) {
	g, d, r := gen.DisjointPathsVar(lens)
	z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
	return gen.Build(g, z, level, d, r)
}

// SMTInstance builds `paths` disjoint one-hop relay chains with corruption
// on relay 1 only — the remaining relays stay honest to carry shares. Pair
// with SMTListen for a plan of one share per honest relay.
func SMTInstance(paths int, level gen.Knowledge) (*instance.Instance, error) {
	g, d, r := gen.DisjointPaths(paths, 1)
	return gen.Build(g, gen.Singletons(nodeset.Of(1)), level, d, r)
}

// SMTListen builds the listening structure forcing a (paths-1)-share plan on
// SMTInstance(paths): one maximal set per honest relay, listening on every
// other honest relay, so the only witness path for that set runs through the
// spared relay — the share fan-out is what the smt benchmarks measure.
func SMTListen(paths int) adversary.Structure {
	sets := make([]nodeset.Set, 0, paths-1)
	for spared := 2; spared <= paths; spared++ {
		s := nodeset.Empty()
		for relay := 2; relay <= paths; relay++ {
			if relay != spared {
				s = s.Add(relay)
			}
		}
		sets = append(sets, s)
	}
	return adversary.FromSets(sets...)
}

// CompleteInstance builds the complete graph K_n with singleton corruption
// on every interior node (t = 1), dealer 0, receiver n-1 — the MBRB
// benchmark topology, where message count grows quadratically in n.
func CompleteInstance(n int, level gen.Knowledge) (*instance.Instance, error) {
	g := gen.Complete(n)
	z := gen.Singletons(g.Nodes().Minus(nodeset.Of(0, n-1)))
	return gen.Build(g, z, level, 0, n-1)
}

// ProtoBenches is the protocol hot-path benchmark table. Every entry runs
// through the registry, so a new protocol variant becomes a table row, not
// a new code path. The PKARun/PKARunNoMemo/ZCPARun names predate the
// registry and stay stable for BENCH.json comparability. The *Large
// entries are the ≥200-node family: they separate asymptotic wins from
// constant-factor ones.
var ProtoBenches = []ProtoBench{
	{Name: "PKARun", Protocol: protocol.PKA,
		Instance:   func() (*instance.Instance, error) { return ChainInstance(3, 2, gen.Radius2) },
		MustDecide: true},
	{Name: "PKARunNoMemo", Protocol: protocol.PKA,
		Instance:   func() (*instance.Instance, error) { return ChainInstance(3, 2, gen.Radius2) },
		Opts:       protocol.Options{DisableMemo: true},
		MustDecide: true},
	{Name: "PKARunLarge", Protocol: protocol.PKA,
		Instance: func() (*instance.Instance, error) {
			return LopsidedChainInstance([]int{1, 1, 196}, gen.AdHoc)
		},
		MustDecide: true},
	{Name: "ZCPARun", Protocol: protocol.ZCPA,
		Instance: func() (*instance.Instance, error) { return ChainInstance(3, 1, gen.AdHoc) }},
	{Name: "ZCPARunLarge", Protocol: protocol.ZCPA,
		Instance: func() (*instance.Instance, error) { return ChainInstance(198, 1, gen.AdHoc) }},
	{Name: "PPARun", Protocol: protocol.PPA,
		Instance: func() (*instance.Instance, error) { return ChainInstance(3, 2, gen.FullKnowledge) }},
	{Name: "BroadcastRun", Protocol: protocol.Broadcast,
		Instance: func() (*instance.Instance, error) { return ChainInstance(3, 1, gen.AdHoc) }},
	// The MBRB family provisions its quorums for a budget-1 message
	// adversary (n > 3t + 2d with t = 1, d = 1 needs n ≥ 6) but runs with
	// no actual suppression: the hot path under measure is the
	// distinct-sender quorum bookkeeping over K_n's quadratic message load.
	{Name: "MBRBRun", Protocol: protocol.MBRB,
		Instance:   func() (*instance.Instance, error) { return CompleteInstance(6, gen.AdHoc) },
		Opts:       protocol.Options{MABudget: 1},
		MustDecide: true},
	{Name: "MBRBRunLarge", Protocol: protocol.MBRB,
		Instance:   func() (*instance.Instance, error) { return CompleteInstance(48, gen.AdHoc) },
		Opts:       protocol.Options{MABudget: 1},
		MustDecide: true},
	// The SMT family measures the share fan-out hot path: plan construction
	// per maximal listening set, one XOR share stream per path, and the
	// receiver's exact-path validation and reconstruction.
	{Name: "SMTRun", Protocol: protocol.SMT,
		Instance:   func() (*instance.Instance, error) { return SMTInstance(4, gen.AdHoc) },
		Opts:       protocol.Options{Listen: SMTListen(4), Seed: 2016},
		MustDecide: true},
	{Name: "SMTRunLarge", Protocol: protocol.SMT,
		Instance:   func() (*instance.Instance, error) { return SMTInstance(24, gen.AdHoc) },
		Opts:       protocol.Options{Listen: SMTListen(24), Seed: 2016},
		MustDecide: true},
}
