// Package smt implements one-shot perfectly secure message transmission
// under Dowden's fully generalised adversary (see PAPERS.md): the dealer
// XOR-shares the secret over a family of dealer–receiver paths that avoid
// every corruptible node, routing each share so that every admissible
// listening set misses at least one of them.
//
// The share-routing plan is derived from the instance and the listening
// structure ℒ alone, before any message flows: for each maximal L ∈ ℒ the
// plan picks the canonical (shortest, first in BFS order) D–R path avoiding
// ∪𝒵 ∪ L, and the deduplicated witness paths become the family, one share
// per path. Reliability is unconditional — no share ever touches a node the
// adversary could corrupt, and relays accept a share only from its exact
// path predecessor, so under authenticated channels shares can be neither
// altered nor injected. Privacy is information-theoretic: all shares but
// the last are pads drawn from a seeded SHA-256 counter-mode stream, the
// last is the secret XOR-folded with every pad, and any view missing at
// least one share index is a function of pads alone (or uniform in the
// secret), independent of it.
//
// Assemble succeeds exactly when adversary.Generalised{Z, ℒ}.Feasible holds
// for the instance — the disruption and secrecy cut conditions — and
// returns a protocol.CapsError otherwise; internal/feasibility's boundary
// fixtures pin the agreement on both sides.
package smt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// ShareMsg carries XOR share Idx along its fixed routing path P. Fields are
// exported so the wire engine's codec can re-encode it; the canonical Key
// derives entirely from them, so a decoded copy is indistinguishable from
// the original.
type ShareMsg struct {
	// Idx is the share's index in the plan's path family.
	Idx int
	// P is the full routing path, dealer to receiver. Relays and the
	// receiver validate it against their own plan and accept the share only
	// from its exact predecessor on P.
	P graph.Path
	// X is the hex-encoded share bytes.
	X string
}

// Key implements network.Payload.
func (m ShareMsg) Key() string {
	hops := make([]string, len(m.P))
	for i, v := range m.P {
		hops[i] = strconv.Itoa(v)
	}
	return "smt:share:" + strconv.Itoa(m.Idx) + ":" + strings.Join(hops, "-") + ":" + m.X
}

// BitSize implements network.Payload. As with the other wire-codable
// payloads it is derived from the canonical encoding, so metrics charge for
// exactly what crosses the wire.
func (m ShareMsg) BitSize() int { return 8 * len(m.Key()) }

// Plan is the dealer's share-routing plan: the canonical witness-path
// family, one XOR share per path, plus the per-listening-set witness
// indices the privacy oracle audits against.
type Plan struct {
	// Paths is the deduplicated witness family in canonical order. Share i
	// travels Paths[i]; the last index is the dependent share (secret XOR
	// pads), all others are pure pads.
	Paths []graph.Path
	// Witness maps each maximal listening set of ℒ (in antichain order) to
	// the index of the path it cannot hear: Paths[Witness[j]] avoids the
	// j-th maximal set entirely.
	Witness []int
}

// Dependent returns the index of the secret-dependent share: the last one.
func (p Plan) Dependent() int { return len(p.Paths) - 1 }

// NewPlan computes the share-routing plan for the instance under the given
// listening structure, or a protocol.CapsError when the disruption or
// secrecy cut conditions make the pairing infeasible. The plan is a pure
// function of (instance, ℒ): every player recomputes it and gets the same
// family, which is what makes exact-path validation possible.
func NewPlan(in *instance.Instance, listen adversary.Structure) (Plan, error) {
	ground := in.Z.Ground()
	if ground.Contains(in.Dealer) || ground.Contains(in.Receiver) {
		return Plan{}, protocol.Capsf(protocol.SMT,
			"corruption structure %v may corrupt the dealer or receiver", in.Z)
	}
	var plan Plan
	index := map[string]int{}
	for _, l := range listen.Maximal() {
		avoid := ground.Union(l)
		var p graph.Path
		if !avoid.Contains(in.Dealer) && !avoid.Contains(in.Receiver) {
			p = in.G.ShortestPath(in.Dealer, in.Receiver, avoid)
		}
		if p == nil {
			return Plan{}, protocol.Capsf(protocol.SMT,
				"no D–R path escapes corruption ground %v plus listening set %v (secrecy cut)", ground, l)
		}
		key := p.Set().Key()
		idx, ok := index[key]
		if !ok {
			idx = len(plan.Paths)
			index[key] = idx
			plan.Paths = append(plan.Paths, p)
		}
		plan.Witness = append(plan.Witness, idx)
	}
	return plan, nil
}

// pad derives share pad idx as a SHA-256 counter-mode stream keyed by
// (seed, idx) — deterministic under the repo's seeded-determinism contract,
// uniform-looking to any observer who does not hold the missing shares.
func pad(seed int64, idx, n int) []byte {
	out := make([]byte, 0, (n+sha256.Size-1)/sha256.Size*sha256.Size)
	var msg [20]byte
	binary.BigEndian.PutUint64(msg[0:8], uint64(seed))
	binary.BigEndian.PutUint32(msg[8:12], uint32(idx))
	for ctr := uint64(0); len(out) < n; ctr++ {
		binary.BigEndian.PutUint64(msg[12:20], ctr)
		block := sha256.Sum256(msg[:])
		out = append(out, block[:]...)
	}
	return out[:n]
}

// Shares splits secret into k XOR shares: shares 0..k-2 are seeded pads,
// share k-1 folds the secret with every pad. With k = 1 the single share is
// the secret itself — privacy then rests entirely on the path avoiding
// every listening set.
func Shares(secret []byte, k int, seed int64) [][]byte {
	shares := make([][]byte, k)
	last := make([]byte, len(secret))
	copy(last, secret)
	for i := 0; i < k-1; i++ {
		p := pad(seed, i, len(secret))
		shares[i] = p
		for j := range last {
			last[j] ^= p[j]
		}
	}
	shares[k-1] = last
	return shares
}

// Reconstruct XORs the shares back into the secret. All k shares of equal
// length are required; it is the inverse of Shares by construction.
func Reconstruct(shares [][]byte) []byte {
	if len(shares) == 0 {
		return nil
	}
	out := make([]byte, len(shares[0]))
	for _, s := range shares {
		for j := range out {
			out[j] ^= s[j]
		}
	}
	return out
}

// Dealer sends each share down its path's first hop at init, then halts.
type Dealer struct {
	msgs []ShareMsg
}

// NewDealer builds the dealer for a plan: share i of the secret, addressed
// along Paths[i].
func NewDealer(plan Plan, xD network.Value, seed int64) *Dealer {
	shares := Shares([]byte(xD), len(plan.Paths), seed)
	msgs := make([]ShareMsg, len(plan.Paths))
	for i, p := range plan.Paths {
		msgs[i] = ShareMsg{Idx: i, P: p, X: hex.EncodeToString(shares[i])}
	}
	return &Dealer{msgs: msgs}
}

// Init implements network.Process: the whole protocol is one volley.
func (d *Dealer) Init(out network.Outbox) {
	for _, m := range d.msgs {
		out(m.P[1], m)
	}
}

// Round implements network.Process.
func (d *Dealer) Round(int, []network.Message, network.Outbox) bool { return false }

// Decision implements network.Process.
func (d *Dealer) Decision() (network.Value, bool) { return "", false }

// Relay forwards each share one hop along its exact planned path, once.
// Anything else — unknown payloads, shares with a foreign path, shares not
// arriving from the path predecessor — is dropped on the floor.
type Relay struct {
	id        int
	plan      Plan
	forwarded []bool
}

// NewRelay builds the relay process for node id.
func NewRelay(plan Plan, id int) *Relay {
	return &Relay{id: id, plan: plan, forwarded: make([]bool, len(plan.Paths))}
}

// Init implements network.Process.
func (r *Relay) Init(network.Outbox) {}

// Round implements network.Process.
func (r *Relay) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		sh, ok := m.Payload.(ShareMsg)
		if !ok || sh.Idx < 0 || sh.Idx >= len(r.plan.Paths) || r.forwarded[sh.Idx] {
			continue
		}
		p := r.plan.Paths[sh.Idx]
		pos := hopIndex(p, r.id)
		if pos <= 0 || pos >= len(p)-1 || !p.Equal(sh.P) || m.From != p[pos-1] {
			continue
		}
		r.forwarded[sh.Idx] = true
		out(p[pos+1], sh)
	}
	return true
}

// Decision implements network.Process.
func (r *Relay) Decision() (network.Value, bool) { return "", false }

// hopIndex returns v's position on p, or -1.
func hopIndex(p graph.Path, v int) int {
	for i, u := range p {
		if u == v {
			return i
		}
	}
	return -1
}

// Receiver collects one valid share per path and decides the XOR of all of
// them. Shares are validated exactly like at relays: correct path, correct
// predecessor, first arrival wins (under the avoidance routing the first
// arrival is the only one).
type Receiver struct {
	id      int
	plan    Plan
	shares  [][]byte
	have    int
	decided bool
	value   network.Value
}

// NewReceiver builds the receiver process for node id.
func NewReceiver(plan Plan, id int) *Receiver {
	return &Receiver{id: id, plan: plan, shares: make([][]byte, len(plan.Paths))}
}

// Init implements network.Process.
func (r *Receiver) Init(network.Outbox) {}

// Round implements network.Process.
func (r *Receiver) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	if r.decided {
		return false
	}
	for _, m := range inbox {
		sh, ok := m.Payload.(ShareMsg)
		if !ok || sh.Idx < 0 || sh.Idx >= len(r.plan.Paths) || r.shares[sh.Idx] != nil {
			continue
		}
		p := r.plan.Paths[sh.Idx]
		if p.Tail() != r.id || !p.Equal(sh.P) || m.From != p[len(p)-2] {
			continue
		}
		raw, err := hex.DecodeString(sh.X)
		if err != nil {
			continue
		}
		r.shares[sh.Idx] = raw
		r.have++
	}
	if r.have == len(r.plan.Paths) {
		r.decided = true
		r.value = network.Value(Reconstruct(r.shares))
		return false
	}
	return true
}

// Decision implements network.Process.
func (r *Receiver) Decision() (network.Value, bool) { return r.value, r.decided }

// NewProcesses assembles the full process map for a planned run: the SMT
// dealer and receiver, plan-aware relays everywhere else, with the corrupt
// overlay applied to unprotected nodes.
func NewProcesses(in *instance.Instance, plan Plan, xD network.Value, seed int64, corrupt map[int]network.Process) map[int]network.Process {
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), corrupt, func(v int) network.Process {
		switch v {
		case in.Dealer:
			return NewDealer(plan, xD, seed)
		case in.Receiver:
			return NewReceiver(plan, v)
		default:
			return NewRelay(plan, v)
		}
	})
}

// Options is this protocol's view of the unified option set: Listen is the
// adversary's listening structure, Seed keys the pad stream.
type Options = protocol.Options

// Proto is the registry entry for the SMT protocol.
type Proto struct{}

// Name implements protocol.Protocol.
func (Proto) Name() string { return protocol.SMT }

// Caps implements protocol.Protocol: SMT routes exclusively over
// corruption-free paths, so generic harnesses must leave part of the
// interior honest.
func (Proto) Caps() protocol.Caps { return protocol.Caps{HonestPaths: true} }

// Assemble implements protocol.Protocol. It fails with a
// protocol.CapsError exactly when the Dowden cut conditions make the
// (instance, listening structure) pairing infeasible.
//
// Proto deliberately does not implement protocol.Feasibility: solvability
// depends on the listening structure, which the registry-level Solvable
// hook cannot see, so generic harnesses would evaluate the wrong predicate.
// The parameterized predicate lives in internal/feasibility.
func (Proto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	plan, err := NewPlan(in, opts.Listen)
	if err != nil {
		return nil, err
	}
	return NewProcesses(in, plan, xD, opts.Seed, opts.Corrupt), nil
}

func init() { protocol.Register(Proto{}) }

// Run executes SMT on the instance with dealer value (secret) xD. A non-nil
// corrupt map takes precedence over opts.Corrupt.
func Run(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, opts Options) (*network.Result, error) {
	if corrupt != nil {
		opts.Corrupt = corrupt
	}
	return protocol.Run(Proto{}, in, xD, opts)
}
