package smt

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// TestSharesReconstructRoundTrip is the differential share test: for random
// secrets, every share count and several seeds, Reconstruct inverts Shares,
// the split is deterministic under its seed, and changing the seed changes
// every pad.
func TestSharesReconstructRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(40)
		secret := make([]byte, n)
		r.Read(secret)
		k := 1 + r.Intn(5)
		seed := r.Int63()

		shares := Shares(secret, k, seed)
		if len(shares) != k {
			t.Fatalf("Shares returned %d shares, want %d", len(shares), k)
		}
		if got := Reconstruct(shares); !bytes.Equal(got, secret) {
			t.Fatalf("k=%d seed=%d: Reconstruct = %x, want %x", k, seed, got, secret)
		}
		again := Shares(secret, k, seed)
		for i := range shares {
			if !bytes.Equal(shares[i], again[i]) {
				t.Fatalf("k=%d seed=%d: share %d not deterministic", k, seed, i)
			}
		}
		if k > 1 && n > 4 {
			other := Shares(secret, k, seed+1)
			for i := 0; i < k-1; i++ {
				if bytes.Equal(shares[i], other[i]) {
					t.Fatalf("k=%d: pad %d identical across seeds %d and %d", k, i, seed, seed+1)
				}
			}
		}
	}
}

// TestSharesPadsIndependentOfSecret pins the privacy mechanism itself: all
// shares except the dependent last one are pure pads, byte-identical across
// different secrets of the same length under the same seed.
func TestSharesPadsIndependentOfSecret(t *testing.T) {
	const seed = 99
	a := Shares([]byte("attack-at-dawn!!"), 4, seed)
	b := Shares([]byte("retreat-at-dusk!"), 4, seed)
	for i := 0; i < 3; i++ {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("pad share %d depends on the secret", i)
		}
	}
	if bytes.Equal(a[3], b[3]) {
		t.Errorf("dependent shares identical for different secrets")
	}
}

func mustInstance(t *testing.T, g *graph.Graph, z adversary.Structure, d, r int) *instance.Instance {
	t.Helper()
	in, err := instance.AdHoc(g, z, d, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestNewPlanWitnesses checks the plan construction on the four-path fixture:
// every path avoids the corruption ground, and for each maximal listening set
// its witness path avoids it too.
func TestNewPlanWitnesses(t *testing.T) {
	g, d, r := gen.DisjointPaths(4, 1)
	in := mustInstance(t, g, gen.Singletons(nodeset.Of(1, 2)), d, r)
	listen := adversary.FromSlices([]int{3}, []int{4})

	plan, err := NewPlan(in, listen)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Paths) != 2 {
		t.Fatalf("plan has %d paths, want 2 (one per surviving relay): %v", len(plan.Paths), plan.Paths)
	}
	ground := in.Z.Ground()
	for i, p := range plan.Paths {
		if !p.ValidIn(g) || p.Head() != d || p.Tail() != r {
			t.Errorf("path %d = %v is not a D–R path", i, p)
		}
		if ground.Intersects(p.Set()) {
			t.Errorf("path %d = %v touches corruption ground %v", i, p, ground)
		}
	}
	maximal := listen.Maximal()
	if len(plan.Witness) != len(maximal) {
		t.Fatalf("plan has %d witnesses, want %d", len(plan.Witness), len(maximal))
	}
	for j, l := range maximal {
		w := plan.Paths[plan.Witness[j]]
		if l.Intersects(w.Set()) {
			t.Errorf("witness path %v for listening set %v does not avoid it", w, l)
		}
	}
}

// TestNewPlanTrivialListen: with no listening structure the plan degenerates
// to a single honest path and the single share is the secret.
func TestNewPlanTrivialListen(t *testing.T) {
	g, d, r := gen.DisjointPaths(3, 1)
	in := mustInstance(t, g, gen.Singletons(nodeset.Of(1)), d, r)
	plan, err := NewPlan(in, adversary.Structure{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Paths) != 1 || plan.Dependent() != 0 {
		t.Fatalf("trivial-listen plan = %+v, want exactly one path", plan)
	}
}

// TestNewPlanAgreesWithFeasible is the predicate⇔protocol differential: over
// random graphs and random corruption/listening structures, NewPlan succeeds
// exactly when adversary.Generalised.Feasible holds. `make smtfuzz` scales
// the sweep up via SMT_TRIALS.
func TestNewPlanAgreesWithFeasible(t *testing.T) {
	trials := 400
	if s := os.Getenv("SMT_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("SMT_TRIALS=%q: want a positive integer", s)
		}
		trials = n
	}
	r := rand.New(rand.NewSource(41))
	randomStructure := func(n, sets, size int) adversary.Structure {
		var members [][]int
		for i := 0; i < sets; i++ {
			s := nodeset.Empty()
			for j := 0; j < 1+r.Intn(size); j++ {
				s = s.Add(r.Intn(n))
			}
			members = append(members, s.Members())
		}
		return adversary.FromSlices(members...)
	}
	agree, disagree := 0, map[bool]int{}
	for trial := 0; trial < trials; trial++ {
		n := 4 + r.Intn(4)
		g := gen.RandomGNP(r, n, 0.5)
		d, rcv := 0, n-1
		z := randomStructure(n, 1+r.Intn(2), 2)
		l := randomStructure(n, 1+r.Intn(3), 2)
		in, err := instance.AdHoc(g, z, d, rcv)
		if err != nil {
			continue // structure touches dealer/receiver in a way AdHoc rejects
		}
		want := adversary.NewGeneralised(z, l).Feasible(g, d, rcv)
		_, planErr := NewPlan(in, l)
		if got := planErr == nil; got != want {
			t.Errorf("trial %d: NewPlan feasible=%v, predicate=%v (g=%v z=%v l=%v)", trial, got, want, g, z, l)
			disagree[want]++
			continue
		}
		if planErr != nil && !protocol.IsCapsError(planErr) {
			t.Errorf("trial %d: infeasible plan error is not a CapsError: %v", trial, planErr)
		}
		agree++
	}
	if agree < trials/4 {
		t.Fatalf("only %d informative trials of %d; fixture generator too narrow", agree, trials)
	}
}

// TestRunDeliversSecret runs the full protocol end-to-end on the four-path
// fixture across engines, with an admissible corruption silenced, and checks
// the receiver reconstructs the exact secret.
func TestRunDeliversSecret(t *testing.T) {
	g, d, r := gen.DisjointPaths(4, 1)
	in := mustInstance(t, g, gen.Singletons(nodeset.Of(1, 2)), d, r)
	listen := adversary.FromSlices([]int{1, 3}, []int{4})
	secret := network.Value("the-secret-payload")

	for _, engine := range []network.Engine{network.Lockstep, network.Goroutine, network.Async} {
		for _, corrupt := range []nodeset.Set{nodeset.Empty(), nodeset.Of(1)} {
			opts := Options{Engine: engine, Listen: listen, Seed: 1234}
			if !corrupt.IsEmpty() {
				opts.Corrupt = protocol.Silence(corrupt)
			}
			res, err := Run(in, secret, nil, opts)
			if err != nil {
				t.Fatalf("engine=%v corrupt=%v: %v", engine, corrupt, err)
			}
			got, ok := res.Decisions[r]
			if !ok {
				t.Fatalf("engine=%v corrupt=%v: receiver did not decide", engine, corrupt)
			}
			if got != secret {
				t.Errorf("engine=%v corrupt=%v: decided %q, want %q", engine, corrupt, got, secret)
			}
		}
	}
}

// TestRunRejectsInfeasiblePairing: assembling against a listening structure
// that covers every honest path is a usage error, reported as a CapsError
// before any message flows.
func TestRunRejectsInfeasiblePairing(t *testing.T) {
	g, d, r := gen.DisjointPaths(3, 1)
	in := mustInstance(t, g, gen.Singletons(nodeset.Of(1)), d, r)
	// Ground {1}; listening set {2, 3} covers both surviving relays.
	_, err := Run(in, "x", nil, Options{Listen: adversary.FromSlices([]int{2, 3})})
	if err == nil {
		t.Fatal("Run succeeded on a secrecy-cut pairing")
	}
	if !protocol.IsCapsError(err) {
		t.Fatalf("infeasible pairing error is not a CapsError: %v", err)
	}
}

// TestReceiverRejectsInjectedShares: a share arriving off-plan — wrong path,
// wrong predecessor, or a forged index — must never reach reconstruction.
func TestReceiverRejectsInjectedShares(t *testing.T) {
	g, d, r := gen.DisjointPaths(4, 1)
	in := mustInstance(t, g, gen.Singletons(nodeset.Of(1, 2)), d, r)
	listen := adversary.FromSlices([]int{3}, []int{4})
	plan, err := NewPlan(in, listen)
	if err != nil {
		t.Fatal(err)
	}
	rcv := NewReceiver(plan, r)
	forged := ShareMsg{Idx: 0, P: graph.Path{d, 1, r}, X: "00"}
	rcv.Round(1, []network.Message{{From: 1, To: r, Payload: forged}}, nil)
	if rcv.have != 0 {
		t.Fatal("receiver accepted a share with a foreign path")
	}
	real := plan.Paths[0]
	wrongFrom := ShareMsg{Idx: 0, P: real, X: "00"}
	rcv.Round(2, []network.Message{{From: 1, To: r, Payload: wrongFrom}}, nil)
	if rcv.have != 0 {
		t.Fatal("receiver accepted a share from a non-predecessor")
	}
	badIdx := ShareMsg{Idx: len(plan.Paths), P: real, X: "00"}
	rcv.Round(3, []network.Message{{From: real[len(real)-2], To: r, Payload: badIdx}}, nil)
	if rcv.have != 0 {
		t.Fatal("receiver accepted an out-of-range share index")
	}
}
