// Package view implements the Partial Knowledge Model's view functions γ.
//
// A view function assigns to each player v a subgraph γ(v) of the actual
// network that includes v: the part of the topology v knows. The joint view
// of a set S of players is the union graph γ(S) = (∪V_v, ∪E_v). Together
// with the adversary package's ⊕ operation this captures the paper's full
// partial-knowledge machinery: player v knows (γ(v), Z_v) where
// Z_v = Z^{V(γ(v))}.
//
// The two extremes of the model are provided as constructors: AdHoc (each
// player knows only the star of edges to its neighbors) and Full (each
// player knows the whole graph). Radius(k) interpolates between them with
// induced balls of hop radius k.
package view

import (
	"fmt"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/nodeset"
)

// Function is a view function γ: node → known subgraph. Entries exist for
// every node of the underlying graph. Functions are immutable after
// construction.
type Function struct {
	views map[int]*graph.Graph
}

// FromMap builds a view function from an explicit node→subgraph map,
// validating that every view contains its owner.
func FromMap(views map[int]*graph.Graph) (Function, error) {
	for v, sub := range views {
		if !sub.HasNode(v) {
			return Function{}, fmt.Errorf("view: γ(%d) does not include node %d", v, v)
		}
	}
	cp := make(map[int]*graph.Graph, len(views))
	for v, sub := range views {
		cp[v] = sub
	}
	return Function{views: cp}, nil
}

// AdHoc returns the ad hoc view function on g: γ(v) is the star consisting
// of v, its neighbors, and the edges from v to them. This is the paper's
// "knowledge of the local neighborhood only" model.
func AdHoc(g *graph.Graph) Function {
	views := make(map[int]*graph.Graph, g.NumNodes())
	g.Nodes().ForEach(func(v int) bool {
		star := graph.New()
		star.AddNode(v)
		g.Neighbors(v).ForEach(func(u int) bool {
			star.AddEdge(v, u)
			return true
		})
		views[v] = star
		return true
	})
	return Function{views: views}
}

// Radius returns the view function where γ(v) is the subgraph of g induced
// by the ball of hop radius k around v. Radius(g, 0) gives isolated
// self-knowledge; large k converges to Full(g). Note Radius(g, 1) is
// slightly stronger than AdHoc(g): it also contains edges between
// neighbors.
func Radius(g *graph.Graph, k int) Function {
	views := make(map[int]*graph.Graph, g.NumNodes())
	g.Nodes().ForEach(func(v int) bool {
		views[v] = g.InducedSubgraph(g.Ball(v, k))
		return true
	})
	return Function{views: views}
}

// Full returns the full-knowledge view function: γ(v) = g for every v.
func Full(g *graph.Graph) Function {
	views := make(map[int]*graph.Graph, g.NumNodes())
	g.Nodes().ForEach(func(v int) bool {
		views[v] = g
		return true
	})
	return Function{views: views}
}

// Of returns γ(v). Unknown nodes get an empty graph.
func (f Function) Of(v int) *graph.Graph {
	if sub, ok := f.views[v]; ok {
		return sub
	}
	return graph.New()
}

// NodesOf returns V(γ(v)).
func (f Function) NodesOf(v int) nodeset.Set { return f.Of(v).Nodes() }

// Joint returns the joint view γ(S) = union of the views of the nodes of S.
func (f Function) Joint(s nodeset.Set) *graph.Graph {
	out := graph.New()
	s.ForEach(func(v int) bool {
		if sub, ok := f.views[v]; ok {
			out = out.Union(sub)
		}
		return true
	})
	return out
}

// Domain returns the set of nodes that have views.
func (f Function) Domain() nodeset.Set {
	s := nodeset.Empty()
	for v := range f.views {
		s = s.Add(v)
	}
	return s
}

// LocalStructure returns Z_v = Z^{V(γ(v))}: the restriction of the real
// structure to the nodes of v's view, paired with that domain.
func (f Function) LocalStructure(z adversary.Structure, v int) adversary.Restricted {
	return z.RestrictTo(f.NodesOf(v))
}

// AllLocalStructures precomputes Z_v for every node.
func (f Function) AllLocalStructures(z adversary.Structure) adversary.LocalKnowledge {
	lk := make(adversary.LocalKnowledge, len(f.views))
	for v := range f.views {
		lk[v] = f.LocalStructure(z, v)
	}
	return lk
}

// Refines reports whether f ≥ g in the paper's partial order: for every
// node, g's view is a subgraph of f's view (f knows at least as much).
func (f Function) Refines(g Function) bool {
	for v, sub := range g.views {
		mine := f.Of(v)
		if !sub.Nodes().SubsetOf(mine.Nodes()) {
			return false
		}
		for _, e := range sub.Edges() {
			if !mine.HasEdge(e[0], e[1]) {
				return false
			}
		}
	}
	return true
}

// ConsistentWith reports whether every view is a genuine subgraph of g that
// contains its owner — the well-formedness condition of the model.
func (f Function) ConsistentWith(g *graph.Graph) error {
	for v, sub := range f.views {
		if !sub.HasNode(v) {
			return fmt.Errorf("view: γ(%d) omits its owner", v)
		}
		if !sub.Nodes().SubsetOf(g.Nodes()) {
			return fmt.Errorf("view: γ(%d) contains nodes outside G", v)
		}
		for _, e := range sub.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				return fmt.Errorf("view: γ(%d) contains non-edge %d-%d", v, e[0], e[1])
			}
		}
	}
	return nil
}
