package view

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/nodeset"
)

func line(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAdHoc(t *testing.T) {
	g := line(t, 4) // 0-1-2-3
	f := AdHoc(g)
	v1 := f.Of(1)
	if !v1.Nodes().Equal(nodeset.Of(0, 1, 2)) {
		t.Fatalf("γ(1) nodes = %v", v1.Nodes())
	}
	if !v1.HasEdge(0, 1) || !v1.HasEdge(1, 2) {
		t.Fatal("γ(1) misses star edges")
	}
	if v1.HasEdge(0, 2) {
		t.Fatal("γ(1) invented an edge")
	}
	// Triangle: ad hoc star must NOT include the opposite edge.
	tri := graph.New()
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	fa := AdHoc(tri)
	if fa.Of(0).HasEdge(1, 2) {
		t.Fatal("ad hoc view of 0 contains edge 1-2")
	}
}

func TestRadius(t *testing.T) {
	g := line(t, 5)
	f := Radius(g, 2)
	if !f.NodesOf(2).Equal(nodeset.Of(0, 1, 2, 3, 4)) {
		t.Fatalf("radius-2 ball of 2 = %v", f.NodesOf(2))
	}
	if !f.NodesOf(0).Equal(nodeset.Of(0, 1, 2)) {
		t.Fatalf("radius-2 ball of 0 = %v", f.NodesOf(0))
	}
	f0 := Radius(g, 0)
	if !f0.NodesOf(3).Equal(nodeset.Of(3)) {
		t.Fatal("radius-0 should be self only")
	}
	// Radius 1 on a triangle includes the far edge (induced).
	tri := graph.New()
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if !Radius(tri, 1).Of(0).HasEdge(1, 2) {
		t.Fatal("radius-1 induced view should contain edge 1-2")
	}
}

func TestFull(t *testing.T) {
	g := line(t, 4)
	f := Full(g)
	if !f.Of(3).Equal(g) {
		t.Fatal("full view is not G")
	}
}

func TestOfUnknownNode(t *testing.T) {
	f := AdHoc(line(t, 3))
	if f.Of(99).NumNodes() != 0 {
		t.Fatal("unknown node has non-empty view")
	}
}

func TestJoint(t *testing.T) {
	g := line(t, 5)
	f := AdHoc(g)
	j := f.Joint(nodeset.Of(1, 3))
	if !j.Nodes().Equal(nodeset.Of(0, 1, 2, 3, 4)) {
		t.Fatalf("joint nodes = %v", j.Nodes())
	}
	if !j.HasEdge(0, 1) || !j.HasEdge(2, 3) || !j.HasEdge(3, 4) {
		t.Fatal("joint view missing edges")
	}
	if j.HasEdge(1, 3) {
		t.Fatal("joint view invented an edge")
	}
}

func TestDomain(t *testing.T) {
	g := line(t, 3)
	if !AdHoc(g).Domain().Equal(g.Nodes()) {
		t.Fatal("domain != node set")
	}
}

func TestFromMapValidation(t *testing.T) {
	sub := graph.New()
	sub.AddNode(1)
	if _, err := FromMap(map[int]*graph.Graph{2: sub}); err == nil {
		t.Fatal("FromMap accepted a view missing its owner")
	}
	if _, err := FromMap(map[int]*graph.Graph{1: sub}); err != nil {
		t.Fatalf("FromMap rejected valid input: %v", err)
	}
}

func TestLocalStructure(t *testing.T) {
	g := line(t, 4)
	z := adversary.FromSlices([]int{1, 3}, []int{2})
	f := AdHoc(g)
	r := f.LocalStructure(z, 0) // V(γ(0)) = {0,1}
	if !r.Domain.Equal(nodeset.Of(0, 1)) {
		t.Fatalf("domain = %v", r.Domain)
	}
	if !r.Structure.Equal(adversary.FromSlices([]int{1})) {
		t.Fatalf("Z_0 = %v", r.Structure)
	}
	lk := f.AllLocalStructures(z)
	if len(lk) != 4 {
		t.Fatalf("AllLocalStructures has %d entries", len(lk))
	}
	if !lk[0].Equal(r) {
		t.Fatal("AllLocalStructures disagrees with LocalStructure")
	}
}

func TestRefines(t *testing.T) {
	g := line(t, 4)
	full := Full(g)
	adhoc := AdHoc(g)
	r1 := Radius(g, 1)
	if !full.Refines(adhoc) || !full.Refines(r1) || !full.Refines(full) {
		t.Fatal("full should refine everything")
	}
	if adhoc.Refines(full) {
		t.Fatal("ad hoc refines full?")
	}
	if !r1.Refines(adhoc) {
		t.Fatal("radius-1 should refine ad hoc")
	}
}

func TestConsistentWith(t *testing.T) {
	g := line(t, 4)
	if err := AdHoc(g).ConsistentWith(g); err != nil {
		t.Fatalf("AdHoc inconsistent: %v", err)
	}
	if err := Radius(g, 2).ConsistentWith(g); err != nil {
		t.Fatalf("Radius inconsistent: %v", err)
	}
	// A fabricated view with a non-edge must be rejected.
	bad := graph.New()
	bad.AddEdge(0, 3)
	f, err := FromMap(map[int]*graph.Graph{0: bad})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ConsistentWith(g); err == nil {
		t.Fatal("ConsistentWith accepted a fictitious edge")
	}
	// A view with a fictitious node must be rejected.
	ghost := graph.New()
	ghost.AddNode(0)
	ghost.AddNode(77)
	f2, err := FromMap(map[int]*graph.Graph{0: ghost})
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.ConsistentWith(g); err == nil {
		t.Fatal("ConsistentWith accepted a fictitious node")
	}
}

func TestRadiusConvergesToFull(t *testing.T) {
	g := line(t, 6)
	k := g.Diameter()
	if !Radius(g, k).Refines(Full(g)) {
		t.Fatal("radius=diameter should equal full knowledge")
	}
}
