package wire

import (
	"fmt"

	"rmt/internal/byzantine"
	"rmt/internal/cliutil"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"

	// The child rebuilds the run from registry names alone, so every
	// protocol package must have registered by the time NodeMain runs —
	// regardless of what else the host binary imports. core and zcpa are
	// already imported by the payload codec.
	_ "rmt/internal/broadcast"
	_ "rmt/internal/ppa"
)

// buildProcesses deterministically reconstructs the run's full process map
// from the pure-data blueprint: parse the instance spec, resolve the
// protocol and attack strategy by registry name, assemble. Every child
// executes this same construction (strategies are deterministic by
// contract), so the cluster-wide process map is consistent even though each
// child animates only its own node.
func buildProcesses(bp blueprintBody) (map[int]network.Process, *instance.Instance, error) {
	if bp.Instance == "" {
		return nil, nil, fmt.Errorf("wire: blueprint has no instance spec")
	}
	spec, err := cliutil.ParseInstanceSpec(bp.Instance)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: blueprint instance: %w", err)
	}
	in, err := spec.Instance()
	if err != nil {
		return nil, nil, fmt.Errorf("wire: blueprint instance: %w", err)
	}
	p, ok := protocol.Get(bp.Protocol)
	if !ok {
		return nil, nil, fmt.Errorf("wire: blueprint protocol %q not registered", bp.Protocol)
	}
	var opts protocol.Options
	opts.Seed = bp.Seed
	if bp.Listen != "" {
		listen, err := cliutil.ParseStructure(bp.Listen)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: blueprint listening structure: %w", err)
		}
		opts.Listen = listen
	}
	if len(bp.Corrupt) > 0 {
		name := bp.Attack
		if name == "" {
			name = "silent"
		}
		strat, ok := byzantine.Get(name)
		if !ok {
			return nil, nil, fmt.Errorf("wire: blueprint attack %q not registered", name)
		}
		opts.Corrupt = strat.Build(in, nodeset.Of(bp.Corrupt...), network.Value(bp.Forged))
	}
	procs, err := p.Assemble(in, network.Value(bp.Value), opts)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: assemble %s: %w", bp.Protocol, err)
	}
	return procs, in, nil
}

// blueprintToBody converts the engine-facing network.Blueprint into its
// wire form.
func blueprintToBody(bp network.Blueprint) blueprintBody {
	return blueprintBody{
		Instance: bp.Instance,
		Protocol: bp.Protocol,
		Value:    bp.Value,
		Corrupt:  bp.Corrupt,
		Attack:   bp.Attack,
		Forged:   bp.Forged,
		Listen:   bp.Listen,
		Seed:     bp.Seed,
	}
}
