package wire

import (
	"encoding/json"
	"fmt"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/cliutil"
	"rmt/internal/core"
	"rmt/internal/graph"
	"rmt/internal/mbrb"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/smt"
	"rmt/internal/zcpa"
)

// payloadEnvelope is one payload in transit: a type tag, the type-specific
// JSON body, and the canonical key and bit size computed by the sending
// child. The coordinator never decodes Data — it routes envelopes opaquely
// and exposes Key/Bits to the engine (wirePayload), which is what makes the
// parent-side transcript byte-identical to an in-process run: the payload
// keys entering sort order, dedup and the event stream are the very strings
// the real payloads render.
type payloadEnvelope struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
	Key  string          `json:"key"`
	Bits int             `json:"bits"`
}

// Payload kind tags. One per payload type that may cross the wire; adding a
// payload type to a protocol means adding its codec arm here.
const (
	kindCoreValue = "core/value"
	kindCoreInfo  = "core/info"
	kindZCPAValue = "zcpa/value"
	kindNoise     = "byzantine/noise"
	kindMBRB      = "mbrb/msg"
	kindSMTShare  = "smt/share"
)

type coreValueBody struct {
	X string `json:"x"`
	P []int  `json:"p,omitempty"`
}

// coreInfoBody flattens a type-2 claim: the view graph as an edge list (the
// cliutil format round-trips isolated nodes) and the restricted structure as
// its domain plus maximal corruption sets.
type coreInfoBody struct {
	Node   int     `json:"node"`
	View   string  `json:"view"`
	Domain []int   `json:"domain,omitempty"`
	Sets   [][]int `json:"sets,omitempty"`
	P      []int   `json:"p,omitempty"`
}

type zcpaValueBody struct {
	X string `json:"x"`
}

type noiseBody struct {
	From  int `json:"from"`
	Round int `json:"round"`
	Seq   int `json:"seq"`
}

type mbrbBody struct {
	Phase string `json:"phase"`
	X     string `json:"x"`
}

type smtShareBody struct {
	Idx int    `json:"idx"`
	P   []int  `json:"p"`
	X   string `json:"x"`
}

// encodePayload wraps one outgoing payload in its envelope. Payload types
// without a codec arm are a hard error: silently passing them through would
// desynchronize the two sides' transcripts.
func encodePayload(p network.Payload) (payloadEnvelope, error) {
	var (
		kind string
		body any
	)
	switch m := p.(type) {
	case core.ValueMsg:
		kind, body = kindCoreValue, coreValueBody{X: string(m.X), P: m.P}
	case core.InfoMsg:
		if m.Info.View == nil {
			return payloadEnvelope{}, fmt.Errorf("wire: type-2 claim about node %d has nil view", m.Info.Node)
		}
		sets := m.Info.Z.Structure.Maximal()
		b := coreInfoBody{
			Node:   m.Info.Node,
			View:   cliutil.FormatEdgeList(m.Info.View),
			Domain: m.Info.Z.Domain.Members(),
			Sets:   make([][]int, len(sets)),
			P:      m.P,
		}
		for i, s := range sets {
			b.Sets[i] = s.Members()
		}
		kind, body = kindCoreInfo, b
	case zcpa.ValuePayload:
		kind, body = kindZCPAValue, zcpaValueBody{X: string(m.X)}
	case byzantine.NoisePayload:
		kind, body = kindNoise, noiseBody{From: m.From, Round: m.Round, Seq: m.Seq}
	case mbrb.Msg:
		kind, body = kindMBRB, mbrbBody{Phase: string(m.Phase), X: string(m.X)}
	case smt.ShareMsg:
		kind, body = kindSMTShare, smtShareBody{Idx: m.Idx, P: m.P, X: m.X}
	default:
		return payloadEnvelope{}, fmt.Errorf("wire: payload type %T has no wire encoding", p)
	}
	data, err := json.Marshal(body)
	if err != nil {
		return payloadEnvelope{}, fmt.Errorf("wire: marshal %s payload: %w", kind, err)
	}
	return payloadEnvelope{Kind: kind, Data: data, Key: p.Key(), Bits: p.BitSize()}, nil
}

// decodePayload rebuilds the real payload value from its envelope. The
// decoded payload must re-render the shipped canonical key — every payload
// kind derives its key purely from encoded content — so codec drift is
// detected instead of silently changing protocol behavior.
func decodePayload(env payloadEnvelope) (network.Payload, error) {
	var p network.Payload
	switch env.Kind {
	case kindCoreValue:
		var b coreValueBody
		if err := json.Unmarshal(env.Data, &b); err != nil {
			return nil, fmt.Errorf("wire: decode %s payload: %w", env.Kind, err)
		}
		p = core.NewValueMsg(network.Value(b.X), graph.Path(b.P))
	case kindCoreInfo:
		var b coreInfoBody
		if err := json.Unmarshal(env.Data, &b); err != nil {
			return nil, fmt.Errorf("wire: decode %s payload: %w", env.Kind, err)
		}
		view, err := graph.ParseEdgeList(b.View)
		if err != nil {
			return nil, fmt.Errorf("wire: decode %s view: %w", env.Kind, err)
		}
		sets := make([][]int, len(b.Sets))
		copy(sets, b.Sets)
		z, err := adversary.NewRestricted(nodeset.Of(b.Domain...), adversary.FromSlices(sets...))
		if err != nil {
			return nil, fmt.Errorf("wire: decode %s structure: %w", env.Kind, err)
		}
		info := core.NodeInfo{Node: b.Node, View: view, Z: z}.Sealed()
		p = core.NewInfoMsg(info, graph.Path(b.P))
	case kindZCPAValue:
		var b zcpaValueBody
		if err := json.Unmarshal(env.Data, &b); err != nil {
			return nil, fmt.Errorf("wire: decode %s payload: %w", env.Kind, err)
		}
		p = zcpa.ValuePayload{X: network.Value(b.X)}
	case kindNoise:
		var b noiseBody
		if err := json.Unmarshal(env.Data, &b); err != nil {
			return nil, fmt.Errorf("wire: decode %s payload: %w", env.Kind, err)
		}
		p = byzantine.NoisePayload{From: b.From, Round: b.Round, Seq: b.Seq}
	case kindMBRB:
		var b mbrbBody
		if err := json.Unmarshal(env.Data, &b); err != nil {
			return nil, fmt.Errorf("wire: decode %s payload: %w", env.Kind, err)
		}
		p = mbrb.Msg{Phase: mbrb.Phase(b.Phase), X: network.Value(b.X)}
	case kindSMTShare:
		var b smtShareBody
		if err := json.Unmarshal(env.Data, &b); err != nil {
			return nil, fmt.Errorf("wire: decode %s payload: %w", env.Kind, err)
		}
		p = smt.ShareMsg{Idx: b.Idx, P: graph.Path(b.P), X: b.X}
	default:
		return nil, fmt.Errorf("wire: unknown payload kind %q", env.Kind)
	}
	if got := p.Key(); got != env.Key {
		return nil, fmt.Errorf("wire: %s payload key drift: decoded %q, shipped %q", env.Kind, got, env.Key)
	}
	return p, nil
}

// wirePayload is the coordinator-side view of a payload in transit: the
// envelope itself, satisfying network.Payload with the child-computed key
// and bit size. The engine's edge checks, delivery ordering, dedup and
// metrics all operate on these values exactly as they would on the real
// payloads.
type wirePayload struct {
	env payloadEnvelope
}

// BitSize implements network.Payload.
func (p wirePayload) BitSize() int { return p.env.Bits }

// Key implements network.Payload.
func (p wirePayload) Key() string { return p.env.Key }
