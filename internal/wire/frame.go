// Package wire is the real-socket execution engine: every player of a run
// is a separate OS process (a re-exec of the current binary) speaking
// length-prefixed versioned frames over TCP, driven round-by-round by a
// coordinator in the parent process.
//
// The engine registers itself as "wire" in the network engine registry on
// import. The coordinator reuses the lockstep round loop verbatim by
// substituting a proxy Process per node that round-trips Init/Round calls to
// its child over the socket, so the full Tracer event stream — sends, drops,
// deliveries, decisions, metrics reconciliation — is emitted by the same
// code path as the in-process engines and transcripts agree byte-for-byte
// with the sync schedule.
//
// Processes cannot be serialized, so the child rebuilds the run from the
// pure-data network.Blueprint (instance spec text, protocol name, corruption
// set, attack strategy): every child assembles the same deterministic
// process map and animates only its own node. Payloads cross the socket as
// {kind, data, key, bits} envelopes: the sending child computes the
// canonical key and bit size, the coordinator routes envelopes opaquely, and
// the receiving child decodes them back into real payload values.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// frameVersion is the codec version; bumped on any incompatible change to
// the frame layout or body schemas. Both sides reject other versions.
const frameVersion = 1

// maxFrameSize bounds one frame's body so a corrupt length prefix cannot
// make a reader allocate unbounded memory.
const maxFrameSize = 16 << 20

// frameType discriminates the frame bodies of the coordinator protocol.
type frameType byte

const (
	// frameHello (child → coordinator) identifies the connecting node.
	frameHello frameType = iota + 1
	// frameSpec (coordinator → child) carries the run Blueprint.
	frameSpec
	// frameReady (child → coordinator) acknowledges the rebuilt run.
	frameReady
	// frameInit (coordinator → child) asks for the node's Init sends.
	frameInit
	// frameRound (coordinator → child) delivers one round's inbox.
	frameRound
	// frameActed (child → coordinator) returns sends, halt and decision
	// state after an Init or Round step.
	frameActed
	// frameBye (coordinator → child) ends the session.
	frameBye
	// frameError (either direction) reports a fatal error and ends the
	// session.
	frameError
)

func (t frameType) String() string {
	switch t {
	case frameHello:
		return "hello"
	case frameSpec:
		return "spec"
	case frameReady:
		return "ready"
	case frameInit:
		return "init"
	case frameRound:
		return "round"
	case frameActed:
		return "acted"
	case frameBye:
		return "bye"
	case frameError:
		return "error"
	default:
		return fmt.Sprintf("frame(%d)", byte(t))
	}
}

// writeFrame sends one frame: a 4-byte big-endian length covering the
// version byte, the type byte and the JSON body, followed by those bytes.
func writeFrame(w io.Writer, t frameType, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("wire: marshal %v frame: %w", t, err)
	}
	if len(data)+2 > maxFrameSize {
		return fmt.Errorf("wire: %v frame of %d bytes exceeds the %d-byte frame cap", t, len(data), maxFrameSize)
	}
	buf := make([]byte, 4+2+len(data))
	binary.BigEndian.PutUint32(buf, uint32(2+len(data)))
	buf[4] = frameVersion
	buf[5] = byte(t)
	copy(buf[6:], data)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write %v frame: %w", t, err)
	}
	return nil
}

// readFrame reads one frame and returns its type and JSON body.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size < 2 || size > maxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame size %d outside [2, %d]", size, maxFrameSize)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	if buf[0] != frameVersion {
		return 0, nil, fmt.Errorf("wire: frame version %d, want %d", buf[0], frameVersion)
	}
	return frameType(buf[1]), buf[2:], nil
}

// Frame bodies. Node-addressed bodies repeat the node ID so both sides can
// cross-check routing.

type helloBody struct {
	Node  int    `json:"node"`
	Token string `json:"token"`
}

type specBody struct {
	Blueprint blueprintBody `json:"blueprint"`
}

// blueprintBody is network.Blueprint in wire form (stable field names,
// independent of the Go struct).
type blueprintBody struct {
	Instance string `json:"instance"`
	Protocol string `json:"protocol"`
	Value    string `json:"value"`
	Corrupt  []int  `json:"corrupt,omitempty"`
	Attack   string `json:"attack,omitempty"`
	Forged   string `json:"forged,omitempty"`
	Listen   string `json:"listen,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

type readyBody struct {
	Node int `json:"node"`
}

type initBody struct{}

// wireMessage is one delivered message of a round inbox.
type wireMessage struct {
	From    int             `json:"from"`
	Payload payloadEnvelope `json:"payload"`
}

type roundBody struct {
	Round int           `json:"round"`
	Inbox []wireMessage `json:"inbox,omitempty"`
}

// wireSend is one outbox emission of an Init or Round step, in emission
// order.
type wireSend struct {
	To      int             `json:"to"`
	Payload payloadEnvelope `json:"payload"`
}

type actedBody struct {
	Round    int        `json:"round"`
	Sends    []wireSend `json:"sends,omitempty"`
	Halted   bool       `json:"halted,omitempty"`
	Decided  bool       `json:"decided,omitempty"`
	Decision string     `json:"decision,omitempty"`
}

type errorBody struct {
	Msg string `json:"msg"`
}
