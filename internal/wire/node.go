package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"

	"rmt/internal/network"
)

// Environment variables the coordinator sets on spawned children. The
// "-node" argument the coordinator also passes is cosmetic (it labels the
// child in process listings); re-exec detection keys on the environment so
// test binaries can divert to NodeMain before any flag parsing happens.
const (
	envAddr  = "RMT_WIRE_ADDR"
	envNode  = "RMT_WIRE_NODE"
	envToken = "RMT_WIRE_TOKEN"
)

// IsNode reports whether this process was spawned as a wire-engine node
// child. Host binaries (rmtsim, test binaries via TestMain) must check it
// first thing and hand control to NodeMain before parsing flags.
func IsNode() bool { return os.Getenv(envNode) != "" }

// NodeMain runs the node-child protocol to completion and returns the
// process exit code. It must only be called when IsNode reports true.
func NodeMain() int {
	if err := nodeMain(); err != nil {
		fmt.Fprintln(os.Stderr, "wire node:", err)
		return 1
	}
	return 0
}

func nodeMain() error {
	node, err := strconv.Atoi(os.Getenv(envNode))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envNode, err)
	}
	addr := os.Getenv(envAddr)
	if addr == "" {
		return fmt.Errorf("%s not set", envAddr)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial coordinator: %w", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameHello, helloBody{Node: node, Token: os.Getenv(envToken)}); err != nil {
		return err
	}
	proc, err := nodeHandshake(conn, node)
	if err != nil {
		// Report the failure over the socket too, so the coordinator can
		// surface one precise error instead of a broken pipe.
		_ = writeFrame(conn, frameError, errorBody{Msg: err.Error()})
		return err
	}
	return nodeLoop(conn, node, proc)
}

// nodeHandshake receives the blueprint, rebuilds the run and acknowledges.
func nodeHandshake(conn net.Conn, node int) (network.Process, error) {
	t, body, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	if t == frameError {
		return nil, coordinatorError(body)
	}
	if t != frameSpec {
		return nil, fmt.Errorf("expected spec frame, got %v", t)
	}
	var spec specBody
	if err := json.Unmarshal(body, &spec); err != nil {
		return nil, fmt.Errorf("decode spec: %w", err)
	}
	procs, _, err := buildProcesses(spec.Blueprint)
	if err != nil {
		return nil, err
	}
	proc, ok := procs[node]
	if !ok {
		return nil, fmt.Errorf("blueprint instance has no node %d", node)
	}
	if err := writeFrame(conn, frameReady, readyBody{Node: node}); err != nil {
		return nil, err
	}
	return proc, nil
}

// nodeLoop animates the node's Process against coordinator-driven rounds.
func nodeLoop(conn net.Conn, node int, proc network.Process) error {
	out := &sendCollector{}
	for {
		t, body, err := readFrame(conn)
		if err != nil {
			return err
		}
		switch t {
		case frameInit:
			out.reset()
			proc.Init(out.outbox())
			if err := reply(conn, proc, out, 0); err != nil {
				return err
			}
		case frameRound:
			var rb roundBody
			if err := json.Unmarshal(body, &rb); err != nil {
				return fmt.Errorf("decode round: %w", err)
			}
			inbox := make([]network.Message, len(rb.Inbox))
			for i, wm := range rb.Inbox {
				p, err := decodePayload(wm.Payload)
				if err != nil {
					_ = writeFrame(conn, frameError, errorBody{Msg: err.Error()})
					return err
				}
				inbox[i] = network.Message{From: wm.From, To: node, Payload: p}
			}
			out.reset()
			cont := proc.Round(rb.Round, inbox, out.outbox())
			if err := reply(conn, proc, out, rb.Round, !cont); err != nil {
				return err
			}
		case frameBye:
			return nil
		case frameError:
			return coordinatorError(body)
		default:
			return fmt.Errorf("unexpected %v frame", t)
		}
	}
}

// reply sends the acted frame for one step, or the collector's encoding
// error if any outgoing payload had no wire form.
func reply(conn net.Conn, proc network.Process, out *sendCollector, round int, halted ...bool) error {
	if out.err != nil {
		_ = writeFrame(conn, frameError, errorBody{Msg: out.err.Error()})
		return out.err
	}
	acted := actedBody{Round: round, Sends: out.sends}
	if len(halted) > 0 {
		acted.Halted = halted[0]
	}
	if x, ok := proc.Decision(); ok {
		acted.Decided = true
		acted.Decision = string(x)
	}
	return writeFrame(conn, frameActed, acted)
}

// sendCollector buffers one step's outbox emissions in order, encoding each
// payload (and computing its canonical key and bit size) on the sending
// side.
type sendCollector struct {
	sends []wireSend
	err   error
}

func (c *sendCollector) reset() { c.sends, c.err = nil, nil }

func (c *sendCollector) outbox() network.Outbox {
	return func(to int, p network.Payload) {
		if c.err != nil {
			return
		}
		env, err := encodePayload(p)
		if err != nil {
			c.err = err
			return
		}
		c.sends = append(c.sends, wireSend{To: to, Payload: env})
	}
}

func coordinatorError(body []byte) error {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		return fmt.Errorf("coordinator error (undecodable: %v)", err)
	}
	return fmt.Errorf("coordinator: %s", eb.Msg)
}
