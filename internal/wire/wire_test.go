package wire

import (
	"bytes"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/cliutil"
	"rmt/internal/core"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/zcpa"
)

// TestMain diverts node-child re-execs of this test binary into the node
// main loop before the testing framework parses flags. Every binary hosting
// the wire engine needs this hook.
func TestMain(m *testing.M) {
	if IsNode() {
		os.Exit(NodeMain())
	}
	os.Exit(m.Run())
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := actedBody{Round: 3, Sends: []wireSend{{To: 1, Payload: payloadEnvelope{Kind: "k", Data: []byte(`{"a":1}`), Key: "x", Bits: 8}}}, Decided: true, Decision: "v"}
	if err := writeFrame(&buf, frameActed, want); err != nil {
		t.Fatal(err)
	}
	ft, body, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != frameActed {
		t.Fatalf("frame type = %v, want acted", ft)
	}
	if !strings.Contains(string(body), `"decision":"v"`) {
		t.Fatalf("body %s missing decision", body)
	}
}

func TestFrameRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameBye, struct{}{}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt the version byte
	if _, _, err := readFrame(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version mismatch", err)
	}
}

func TestPayloadCodecRoundTrip(t *testing.T) {
	g, err := graph.ParseEdgeList("0-1 1-2 0-2")
	if err != nil {
		t.Fatal(err)
	}
	z, err := adversary.NewRestricted(nodeset.Of(0, 1, 2), adversary.FromSlices([]int{1}, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	info := core.NodeInfo{Node: 1, View: g, Z: z}.Sealed()
	payloads := []network.Payload{
		core.NewValueMsg("hello", graph.Path{0, 1, 2}),
		core.NewValueMsg("", nil),
		core.NewInfoMsg(info, graph.Path{1, 2}),
		zcpa.ValuePayload{X: "v"},
		byzantine.NoisePayload{From: 3, Round: 2, Seq: 7},
	}
	for _, p := range payloads {
		env, err := encodePayload(p)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		if env.Key != p.Key() || env.Bits != p.BitSize() {
			t.Fatalf("%T envelope key/bits (%q, %d) != payload (%q, %d)", p, env.Key, env.Bits, p.Key(), p.BitSize())
		}
		got, err := decodePayload(env)
		if err != nil {
			t.Fatalf("decode %T: %v", p, err)
		}
		if got.Key() != p.Key() {
			t.Fatalf("%T round-trip key %q != %q", p, got.Key(), p.Key())
		}
		if got.BitSize() != p.BitSize() {
			t.Fatalf("%T round-trip bits %d != %d", p, got.BitSize(), p.BitSize())
		}
	}
}

func TestPayloadCodecDetectsDrift(t *testing.T) {
	env, err := encodePayload(zcpa.ValuePayload{X: "v"})
	if err != nil {
		t.Fatal(err)
	}
	env.Key = "tampered"
	if _, err := decodePayload(env); err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("err = %v, want key drift", err)
	}
}

func TestPayloadCodecRejectsUnknown(t *testing.T) {
	if _, err := encodePayload(opaquePayload{}); err == nil {
		t.Fatal("expected encode error for unknown payload type")
	}
	if _, err := decodePayload(payloadEnvelope{Kind: "no/such"}); err == nil {
		t.Fatal("expected decode error for unknown kind")
	}
}

type opaquePayload struct{}

func (opaquePayload) BitSize() int { return 1 }
func (opaquePayload) Key() string  { return "opaque" }

func TestEngineRegistered(t *testing.T) {
	eng, err := network.EngineByName(EngineWire)
	if err != nil {
		t.Fatal(err)
	}
	if eng != Engine {
		t.Fatalf("registry returned %v, want the wire engine", eng)
	}
	if Engine.Name() != "wire" {
		t.Fatalf("Name() = %q", Engine.Name())
	}
}

func TestWireRequiresBlueprint(t *testing.T) {
	in := mustFixture(t, feasibility.TriplePath, gen.AdHoc)
	if _, err := protocol.RunByName("pka", in, "x", protocol.Options{Engine: Engine}); err == nil || !strings.Contains(err.Error(), "Blueprint") {
		t.Fatalf("err = %v, want blueprint requirement", err)
	}
}

func TestWireRejectsScheduler(t *testing.T) {
	in := mustFixture(t, feasibility.TriplePath, gen.AdHoc)
	opts := protocol.Options{
		Engine:    Engine,
		Scheduler: network.SyncScheduler{},
		Blueprint: &network.Blueprint{Instance: specText(in, gen.AdHoc)},
	}
	if _, err := protocol.RunByName("pka", in, "x", opts); err == nil || !strings.Contains(err.Error(), "scheduler") {
		t.Fatalf("err = %v, want scheduler rejection", err)
	}
}

func TestWireRejectsChurn(t *testing.T) {
	in := mustFixture(t, feasibility.TriplePath, gen.AdHoc)
	opts := protocol.Options{
		Engine:    Engine,
		Churn:     []network.ChurnEvent{{Round: 2, RemoveEdges: [][2]int{{0, 1}}}},
		Blueprint: &network.Blueprint{Instance: specText(in, gen.AdHoc)},
	}
	if _, err := protocol.RunByName("pka", in, "x", opts); err == nil || !strings.Contains(err.Error(), "churn") {
		t.Fatalf("err = %v, want churn rejection", err)
	}
}

func TestEngineOptionsDefaults(t *testing.T) {
	o := EngineOptions{}.withDefaults()
	if o.HandshakeTimeout != 30*time.Second || o.StepTimeout != 60*time.Second ||
		o.ByeTimeout != 2*time.Second || o.KillGrace != 5*time.Second {
		t.Fatalf("defaults = %+v", o)
	}
	// Partial overrides keep the rest at defaults.
	o = EngineOptions{StepTimeout: time.Second}.withDefaults()
	if o.StepTimeout != time.Second || o.HandshakeTimeout != 30*time.Second {
		t.Fatalf("partial override = %+v", o)
	}
}

// TestWireReapsChildrenOnMidRunDeath: when a child dies mid-run the
// coordinator must surface the failure as an error AND wait on every spawned
// child — a crashed run must not leave orphaned or zombie node processes.
func TestWireReapsChildrenOnMidRunDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	in := mustFixture(t, feasibility.TriplePath, gen.AdHoc)
	var pids []int
	testHookClusterReady = func(cl *cluster) {
		for _, nd := range cl.nodes {
			pids = append(pids, nd.cmd.Process.Pid)
		}
		// Kill the receiver's child; the next step with it must fail.
		_ = cl.nodes[in.Receiver].cmd.Process.Kill()
	}
	defer func() { testHookClusterReady = nil }()

	eng := NewEngine(EngineOptions{StepTimeout: 10 * time.Second, KillGrace: 2 * time.Second})
	opts := protocol.Options{
		Engine:    eng,
		Blueprint: &network.Blueprint{Instance: specText(in, gen.AdHoc)},
	}
	if _, err := protocol.RunByName("pka", in, "x", opts); err == nil {
		t.Fatal("run with a dead child reported success")
	}
	if len(pids) == 0 {
		t.Fatal("cluster-ready hook never fired")
	}
	// Every child has exited and been reaped: signal 0 must fail for each
	// pid. A zombie (exited but never waited on) still receives signal 0, so
	// this catches both orphans and missing Wait calls.
	for _, pid := range pids {
		if err := syscall.Kill(pid, 0); err == nil {
			t.Errorf("child pid %d still exists after the run (orphan or zombie)", pid)
		}
	}
}

// TestWireMatchesLockstep is the engine's core guarantee: for every covered
// protocol and attack, the wire run over real sockets produces the same
// decisions, the same transcript and reconciled metrics, byte-identical to
// the in-process lockstep run.
func TestWireMatchesLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	in := mustFixture(t, feasibility.TriplePath, gen.AdHoc)
	cases := []struct {
		name     string
		protocol string
		corrupt  []int
		attack   string
		forged   string
	}{
		{name: "pka-honest", protocol: "pka"},
		{name: "pka-silent", protocol: "pka", corrupt: []int{2}, attack: "silent"},
		{name: "pka-equivocator", protocol: "pka", corrupt: []int{1}, attack: "equivocator", forged: "bad"},
		{name: "pka-spammer", protocol: "pka", corrupt: []int{3}, attack: "spammer", forged: "bad"},
		{name: "zcpa-honest", protocol: "zcpa"},
		{name: "zcpa-silent", protocol: "zcpa", corrupt: []int{2}, attack: "silent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := runEngine(t, in, network.Lockstep, tc.protocol, tc.corrupt, tc.attack, tc.forged)
			b := runEngine(t, in, Engine, tc.protocol, tc.corrupt, tc.attack, tc.forged)
			av, aok := a.DecisionOf(in.Receiver)
			bv, bok := b.DecisionOf(in.Receiver)
			if av != bv || aok != bok {
				t.Errorf("receiver decision: lockstep %q/%v, wire %q/%v", av, aok, bv, bok)
			}
			if ak, bk := a.Transcript.Key(), b.Transcript.Key(); ak != bk {
				t.Errorf("transcripts differ:\nlockstep: %s\nwire:     %s", ak, bk)
			}
			if err := b.Metrics.Reconcile(); err != nil {
				t.Errorf("wire metrics: %v", err)
			}
			if a.Rounds != b.Rounds {
				t.Errorf("rounds: lockstep %d, wire %d", a.Rounds, b.Rounds)
			}
		})
	}
}

func runEngine(t *testing.T, in *instance.Instance, eng network.Engine, protoName string, corrupt []int, attack, forged string) *network.Result {
	t.Helper()
	opts := protocol.Options{
		Engine:           eng,
		RecordTranscript: true,
		Blueprint: &network.Blueprint{
			Instance: specText(in, gen.AdHoc),
			Corrupt:  corrupt,
			Attack:   attack,
			Forged:   forged,
		},
	}
	if len(corrupt) > 0 {
		opts.Corrupt = byzantine.MustGet(attack).Build(in, nodeset.Of(corrupt...), network.Value(forged))
	}
	res, err := protocol.RunByName(protoName, in, "x", opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustFixture(t *testing.T, name string, level gen.Knowledge) *instance.Instance {
	t.Helper()
	for _, f := range feasibility.All() {
		if f.Name == name {
			return f.MustBuild(level)
		}
	}
	t.Fatalf("no fixture %q", name)
	return nil
}

func specText(in *instance.Instance, level gen.Knowledge) string {
	return cliutil.InstanceSpec{
		Graph:     in.G,
		Z:         in.Z,
		Knowledge: level,
		Dealer:    in.Dealer,
		Receiver:  in.Receiver,
	}.Format()
}
