package wire

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"rmt/internal/network"
)

// EngineWire is the wire engine's registry name.
const EngineWire = "wire"

// Engine is the wire execution engine with default timeouts: one OS process
// per player over TCP. It is also resolvable as "wire" via
// network.EngineByName once this package is imported; NewEngine builds one
// with custom deadlines.
var Engine network.Engine = wireEngine{opts: EngineOptions{}.withDefaults()}

func init() { network.RegisterEngine(Engine) }

// EngineOptions are the wire engine's lifecycle deadlines. The zero value of
// every field means its default; NewEngine applies them.
type EngineOptions struct {
	// HandshakeTimeout bounds cluster boot: spawning every child, accepting
	// their connections and completing the hello/spec/ready exchange.
	// Default 30s.
	HandshakeTimeout time.Duration
	// StepTimeout bounds one Init/Round round-trip with a single child.
	// Default 60s.
	StepTimeout time.Duration
	// ByeTimeout bounds the polite bye frame to each child at shutdown.
	// Default 2s.
	ByeTimeout time.Duration
	// KillGrace is how long shutdown waits for a child to exit after bye
	// before killing it. Every child is reaped (cmd.Wait) either way — a
	// failed handshake or a mid-run child death must never leave zombies.
	// Default 5s.
	KillGrace time.Duration
}

func (o EngineOptions) withDefaults() EngineOptions {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 30 * time.Second
	}
	if o.StepTimeout <= 0 {
		o.StepTimeout = 60 * time.Second
	}
	if o.ByeTimeout <= 0 {
		o.ByeTimeout = 2 * time.Second
	}
	if o.KillGrace <= 0 {
		o.KillGrace = 5 * time.Second
	}
	return o
}

// NewEngine returns a wire engine with the given deadlines. The package-level
// Engine uses the defaults; tests and latency-sensitive embedders shorten
// them.
func NewEngine(opts EngineOptions) network.Engine {
	return wireEngine{opts: opts.withDefaults()}
}

type wireEngine struct{ opts EngineOptions }

// Name implements network.Engine.
func (wireEngine) Name() string { return EngineWire }

// Run implements network.Engine. The coordinator rebuilds the run from the
// Blueprint (ignoring any caller-supplied process map — children can only be
// configured with pure data, and using the same construction on both sides
// guarantees they agree), spawns one child process per player, substitutes a
// proxy Process per node and then reuses the lockstep round loop verbatim.
// The proxies round-trip Init/Round over TCP, so the Tracer event stream,
// metrics and transcripts come from the same code path as the in-process
// engines.
func (e wireEngine) Run(cfg Config) (*network.Result, error) { return runWire(cfg, e.opts) }

// Config is network.Config; aliased so the Engine method set reads naturally.
type Config = network.Config

func runWire(cfg Config, opts EngineOptions) (*network.Result, error) {
	if cfg.Blueprint == nil {
		return nil, fmt.Errorf("wire: config has no Blueprint (the wire engine rebuilds the run from pure data; use protocol.Run with Options.Blueprint set, or fill Config.Blueprint)")
	}
	if cfg.Scheduler != nil {
		return nil, fmt.Errorf("wire: schedulers are not supported (wire delivery is strictly synchronous)")
	}
	if len(cfg.Churn) > 0 {
		return nil, fmt.Errorf("wire: topology churn is not supported (children hold a private graph copy fixed at handshake)")
	}
	if cfg.MsgAdversary != nil {
		return nil, fmt.Errorf("wire: message adversaries are not supported (the blueprint carries no suppression policy, so children could not agree on quorum parameters)")
	}
	bp := blueprintToBody(*cfg.Blueprint)
	localProcs, in, err := buildProcesses(bp)
	if err != nil {
		return nil, err
	}
	// The blueprint is the source of truth for the topology too: a caller
	// graph that disagrees with the spec would desynchronize the children.
	cfg.Graph = in.G

	cl, err := newCluster(bp, localProcs, opts)
	if err != nil {
		return nil, err
	}
	defer cl.shutdown()

	cfg.Processes = make(map[int]network.Process, len(cl.nodes))
	for v, nd := range cl.nodes {
		cfg.Processes[v] = &remoteProc{cl: cl, node: nd}
	}
	if cfg.Engine == nil {
		cfg.Engine = Engine
	}
	res, err := network.Lockstep.Run(cfg)
	if err != nil {
		return nil, err
	}
	if cerr := cl.firstErr(); cerr != nil {
		return nil, cerr
	}
	return res, nil
}

// cluster owns the child processes and their connections for one run.
type cluster struct {
	ln    net.Listener
	nodes map[int]*nodeConn
	opts  EngineOptions

	mu  sync.Mutex
	err error // first fatal error anywhere in the cluster
}

// testHookClusterReady, when non-nil, runs after the handshake completes and
// before the first step — tests use it to sabotage a live cluster (e.g. kill
// a child) and then assert the coordinator reaps everything.
var testHookClusterReady func(*cluster)

// nodeConn is the coordinator's handle on one child.
type nodeConn struct {
	id   int
	cmd  *exec.Cmd
	conn net.Conn
}

// newCluster listens on an ephemeral loopback port, re-execs the current
// binary once per player with the node identity in the environment, and
// completes the hello/spec/ready handshake with every child.
func newCluster(bp blueprintBody, procs map[int]network.Process, opts EngineOptions) (*cluster, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	cl := &cluster{ln: ln, nodes: make(map[int]*nodeConn, len(procs)), opts: opts}

	exe, err := os.Executable()
	if err != nil {
		cl.shutdown()
		return nil, fmt.Errorf("wire: locate executable: %w", err)
	}
	tok := make([]byte, 16)
	if _, err := rand.Read(tok); err != nil {
		cl.shutdown()
		return nil, fmt.Errorf("wire: token: %w", err)
	}
	token := hex.EncodeToString(tok)

	for v := range procs {
		// The "-node" argument only labels the child in process listings;
		// IsNode keys on the environment.
		cmd := exec.Command(exe, "-node")
		cmd.Env = append(os.Environ(),
			envAddr+"="+ln.Addr().String(),
			fmt.Sprintf("%s=%d", envNode, v),
			envToken+"="+token,
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			cl.shutdown()
			return nil, fmt.Errorf("wire: spawn node %d: %w", v, err)
		}
		cl.nodes[v] = &nodeConn{id: v, cmd: cmd}
	}

	// Children connect in arbitrary order; the hello frame tells us which
	// node each connection is.
	deadline := time.Now().Add(opts.HandshakeTimeout)
	if dl, ok := ln.(*net.TCPListener); ok {
		_ = dl.SetDeadline(deadline)
	}
	for range procs {
		conn, err := ln.Accept()
		if err != nil {
			cl.shutdown()
			return nil, fmt.Errorf("wire: accept: %w", err)
		}
		_ = conn.SetDeadline(deadline)
		t, body, err := readFrame(conn)
		if err != nil {
			conn.Close()
			cl.shutdown()
			return nil, fmt.Errorf("wire: handshake: %w", err)
		}
		if t != frameHello {
			conn.Close()
			cl.shutdown()
			return nil, fmt.Errorf("wire: handshake: expected hello, got %v", t)
		}
		var hello helloBody
		if err := json.Unmarshal(body, &hello); err != nil {
			conn.Close()
			cl.shutdown()
			return nil, fmt.Errorf("wire: handshake: decode hello: %w", err)
		}
		if hello.Token != token {
			_ = writeFrame(conn, frameError, errorBody{Msg: "bad token"})
			conn.Close()
			cl.shutdown()
			return nil, fmt.Errorf("wire: handshake: node %d presented a bad token", hello.Node)
		}
		nd, ok := cl.nodes[hello.Node]
		if !ok || nd.conn != nil {
			conn.Close()
			cl.shutdown()
			return nil, fmt.Errorf("wire: handshake: unexpected node %d", hello.Node)
		}
		nd.conn = conn
	}

	// All children connected: ship the blueprint, collect readiness.
	for _, nd := range cl.nodes {
		if err := writeFrame(nd.conn, frameSpec, specBody{Blueprint: bp}); err != nil {
			cl.shutdown()
			return nil, err
		}
	}
	for v, nd := range cl.nodes {
		t, body, err := readFrame(nd.conn)
		if err != nil {
			cl.shutdown()
			return nil, fmt.Errorf("wire: node %d: %w", v, err)
		}
		switch t {
		case frameReady:
		case frameError:
			err := coordinatorError(body)
			cl.shutdown()
			return nil, fmt.Errorf("wire: node %d: %w", v, err)
		default:
			cl.shutdown()
			return nil, fmt.Errorf("wire: node %d: expected ready, got %v", v, t)
		}
		_ = nd.conn.SetDeadline(time.Time{})
	}
	if testHookClusterReady != nil {
		testHookClusterReady(cl)
	}
	return cl, nil
}

// fail records the cluster's first fatal error. Later proxy steps observe it
// and halt immediately, winding the engine down.
func (cl *cluster) fail(err error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.err == nil {
		cl.err = err
	}
}

func (cl *cluster) firstErr() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// shutdown ends every child: polite bye frames, then closed connections,
// then a bounded wait with a kill fallback. It runs on every exit path —
// clean completion, handshake failure, mid-run child death — and always
// reaps (cmd.Wait) every spawned child, so no path leaves zombies behind.
func (cl *cluster) shutdown() {
	for _, nd := range cl.nodes {
		if nd.conn != nil {
			_ = nd.conn.SetDeadline(time.Now().Add(cl.opts.ByeTimeout))
			_ = writeFrame(nd.conn, frameBye, struct{}{})
			nd.conn.Close()
		}
	}
	if cl.ln != nil {
		cl.ln.Close()
	}
	for _, nd := range cl.nodes {
		if nd.cmd == nil || nd.cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(c *exec.Cmd) { _ = c.Wait(); close(done) }(nd.cmd)
		select {
		case <-done:
		case <-time.After(cl.opts.KillGrace):
			_ = nd.cmd.Process.Kill()
			<-done
		}
	}
}

// step performs one Init/Round exchange with a child and returns its acted
// frame.
func (cl *cluster) step(nd *nodeConn, t frameType, body any) (actedBody, error) {
	_ = nd.conn.SetDeadline(time.Now().Add(cl.opts.StepTimeout))
	if err := writeFrame(nd.conn, t, body); err != nil {
		return actedBody{}, fmt.Errorf("wire: node %d: %w", nd.id, err)
	}
	rt, rbody, err := readFrame(nd.conn)
	if err != nil {
		return actedBody{}, fmt.Errorf("wire: node %d: %w", nd.id, err)
	}
	switch rt {
	case frameActed:
		var acted actedBody
		if err := json.Unmarshal(rbody, &acted); err != nil {
			return actedBody{}, fmt.Errorf("wire: node %d: decode acted: %w", nd.id, err)
		}
		return acted, nil
	case frameError:
		return actedBody{}, fmt.Errorf("wire: node %d: %w", nd.id, coordinatorError(rbody))
	default:
		return actedBody{}, fmt.Errorf("wire: node %d: expected acted, got %v", nd.id, rt)
	}
}

// remoteProc is the coordinator-side proxy for one child: a network.Process
// whose Init/Round calls round-trip over the socket. The engine drives it
// exactly like a local process, which is what keeps the transcript identical.
type remoteProc struct {
	cl   *cluster
	node *nodeConn

	decided  bool
	decision network.Value
}

// Init implements network.Process.
func (p *remoteProc) Init(out network.Outbox) {
	if p.cl.firstErr() != nil {
		return
	}
	acted, err := p.cl.step(p.node, frameInit, initBody{})
	if err != nil {
		p.cl.fail(err)
		return
	}
	p.apply(acted, out)
}

// Round implements network.Process. Process methods cannot return errors, so
// a failed exchange records the cluster error and halts the proxy; the
// engine then winds down and runWire surfaces the recorded error.
func (p *remoteProc) Round(round int, inbox []network.Message, out network.Outbox) bool {
	if p.cl.firstErr() != nil {
		return false
	}
	rb := roundBody{Round: round, Inbox: make([]wireMessage, len(inbox))}
	for i, m := range inbox {
		wp, ok := m.Payload.(wirePayload)
		if !ok {
			p.cl.fail(fmt.Errorf("wire: node %d inbox holds non-wire payload %T", p.node.id, m.Payload))
			return false
		}
		rb.Inbox[i] = wireMessage{From: m.From, Payload: wp.env}
	}
	acted, err := p.cl.step(p.node, frameRound, rb)
	if err != nil {
		p.cl.fail(err)
		return false
	}
	p.apply(acted, out)
	return !acted.Halted
}

// Decision implements network.Process.
func (p *remoteProc) Decision() (network.Value, bool) { return p.decision, p.decided }

// apply replays one acted frame into the engine: sends in emission order
// (wrapped as opaque wirePayloads carrying the child-computed key and bits)
// and the write-once decision.
func (p *remoteProc) apply(acted actedBody, out network.Outbox) {
	for _, s := range acted.Sends {
		out(s.To, wirePayload{env: s.Payload})
	}
	if acted.Decided && !p.decided {
		p.decided = true
		p.decision = network.Value(acted.Decision)
	}
}
