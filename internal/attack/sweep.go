// Package attack is the randomized Theorem-4 safety fuzzer: it samples
// instances and admissible corruption sets, corrupts them with every
// registered byzantine strategy, runs every registered protocol on both
// engines, and asserts the paper's safety guarantee — no honest player ever
// decides a value other than x_D while the corruption set is in 𝒵 — plus
// transcript-level engine agreement.
//
// Two guard rails keep the oracle honest:
//
//   - control runs corrupt a minimal NON-admissible superset (a maximal set
//     of 𝒵 plus one honest node); their outcomes are counted but not
//     asserted, documenting that the guarantee being fuzzed is exactly the
//     t ∈ 𝒵 boundary;
//   - a canary battery runs a deliberately unsafe decision rule
//     (internal/attack's gullible receiver) through the same oracle and the
//     sweep FAILS unless the oracle flags it — a safety fuzzer that cannot
//     catch a gullible receiver has no teeth.
package attack

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/eval"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/view"
)

// ForgedValue is the default wrong value injected by value-forging
// strategies. It sorts before the honest dealer value "1", so a decision
// rule that is gullible toward lexicographically small candidates (the
// canary) is reliably fooled.
const ForgedValue = "0!forged"

// xD is the honest dealer value used by every sweep run.
const xD network.Value = "1"

// Config parameterizes a sweep.
type Config struct {
	// Seed is the master seed; per-trial RNGs derive from it via
	// eval.TrialSeed, so a sweep is reproducible at any worker count.
	Seed int64
	// Trials is the number of sampled (instance, corruption) trials.
	Trials int
	// Workers bounds the worker pool (≤ 0 = one per logical CPU).
	Workers int
	// Protocols to exercise (nil = every registered protocol).
	Protocols []string
	// Strategies to exercise (nil = every registered strategy).
	Strategies []string
	// Engines to exercise (nil = lockstep and goroutine).
	Engines []network.Engine
	// Schedules are async delivery schedules to cross with every
	// (instance, protocol, strategy) cell: each named schedule adds one run
	// under the async engine with a per-trial seeded scheduler, asserting
	// the same Theorem-4 oracle. The "sync" schedule additionally asserts
	// transcript- and decision-agreement with the synchronous engines (the
	// zero-fault schedule must be indistinguishable from lockstep). Nil
	// means no schedule runs.
	Schedules []string
	// MABudgets are message-adversary suppression budgets to cross with
	// every (instance, protocol, strategy) cell: for each budget d, every
	// stock suppression policy runs once under lockstep, and every
	// configured schedule runs once more with the seeded random policy on
	// top — the Theorem-4 oracle is safety-only, so it holds under message
	// loss for every protocol. Adversary seeds derive from (Seed, trial),
	// so any violation replays exactly. Nil means no suppression runs.
	MABudgets []int
	// MaxRounds bounds each run (0 = 16, ample for the sampled instances
	// and necessary because nuisance strategies never quiesce).
	MaxRounds int
	// Out, when non-nil, receives one JSONL record per run, in trial
	// order, plus full message-level event traces (network.JSONLTracer)
	// for every violating run and for the canary battery.
	Out io.Writer
}

func (c Config) protocols() []string {
	if len(c.Protocols) > 0 {
		return c.Protocols
	}
	return protocol.Names()
}

func (c Config) strategies() []string {
	if len(c.Strategies) > 0 {
		return c.Strategies
	}
	return byzantine.Names()
}

func (c Config) engines() []network.Engine {
	if len(c.Engines) > 0 {
		return c.Engines
	}
	return []network.Engine{network.Lockstep, network.Goroutine}
}

func (c Config) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 16
}

// Violation is one observed breach of the Theorem-4 safety guarantee: an
// honest player decided a value other than x_D under an admissible
// corruption set.
type Violation struct {
	Trial    int           `json:"trial"`
	Instance string        `json:"instance"`
	Protocol string        `json:"protocol"`
	Strategy string        `json:"strategy"`
	Engine   string        `json:"engine"`
	Corrupt  []int         `json:"corrupt"`
	Node     int           `json:"node"`
	Got      network.Value `json:"got"`
}

func (v Violation) String() string {
	return fmt.Sprintf("trial %d %s: %s under %s/%s, corrupt %v: node %d decided %q ≠ %q",
		v.Trial, v.Instance, v.Protocol, v.Strategy, v.Engine, v.Corrupt, v.Node, v.Got, xD)
}

// Mismatch is a transcript- or decision-level disagreement between engines
// on the same deterministic run.
type Mismatch struct {
	Trial    int    `json:"trial"`
	Instance string `json:"instance"`
	Protocol string `json:"protocol"`
	Strategy string `json:"strategy"`
	Detail   string `json:"detail"`
}

// Report aggregates a sweep.
type Report struct {
	Trials int
	Runs   int

	Violations []Violation
	Mismatches []Mismatch

	// ControlRuns / ControlViolations count the non-admissible-superset
	// control runs and how many of them breached safety. Controls are
	// documentation, not assertions: outside 𝒵 the theorem promises
	// nothing.
	ControlRuns       int
	ControlViolations int

	// CanaryRuns / CanaryFlagged count the unsafe-decision-rule battery;
	// the sweep fails unless at least one canary run is flagged.
	CanaryRuns    int
	CanaryFlagged int

	// MBRBCanaryRuns / MBRBCanaryFlagged count the MBRB battery's own
	// teeth check — a receiver that ignores distinct-sender quorums; the
	// sweep fails unless the oracle flags at least one of its runs.
	MBRBCanaryRuns    int
	MBRBCanaryFlagged int

	// Skipped counts (protocol, fixture) cells the matrix left out because
	// the protocol's Assemble rejected the pairing as a capability mismatch
	// (protocol.CapsError) — e.g. SMT on a sample whose corruptible ground
	// covers every D–R path. Skips are expected; aborting on them would let
	// one infeasible pairing kill a whole sweep.
	Skipped int

	// PrivacyRuns / PrivacyViolations count the SMT listening-adversary
	// battery: paired-secret runs whose recorded coalition views must be
	// independent of the secret.
	PrivacyRuns       int
	PrivacyViolations []PrivacyViolation

	// SMTCanaryRuns / SMTCanaryFlagged count the privacy oracle's own teeth
	// check — the plaintext-leaking SMT variant; the sweep fails unless the
	// oracle flags at least one of its runs.
	SMTCanaryRuns    int
	SMTCanaryFlagged int
}

// Err reports whether the sweep establishes what it claims: zero safety
// violations, zero engine disagreements, and a safety oracle with teeth.
func (r *Report) Err() error {
	if len(r.Violations) > 0 {
		return fmt.Errorf("attack: %d Theorem-4 safety violations (first: %s)",
			len(r.Violations), r.Violations[0])
	}
	if len(r.Mismatches) > 0 {
		m := r.Mismatches[0]
		return fmt.Errorf("attack: %d engine disagreements (first: trial %d %s/%s: %s)",
			len(r.Mismatches), m.Trial, m.Protocol, m.Strategy, m.Detail)
	}
	if r.CanaryRuns > 0 && r.CanaryFlagged == 0 {
		return fmt.Errorf("attack: canary decision rule survived %d runs undetected — the safety oracle has no teeth", r.CanaryRuns)
	}
	if r.MBRBCanaryRuns > 0 && r.MBRBCanaryFlagged == 0 {
		return fmt.Errorf("attack: mbrb canary decision rule survived %d runs undetected — the suppression oracle has no teeth", r.MBRBCanaryRuns)
	}
	if len(r.PrivacyViolations) > 0 {
		return fmt.Errorf("attack: %d SMT privacy violations (first: %s)",
			len(r.PrivacyViolations), r.PrivacyViolations[0])
	}
	if r.SMTCanaryRuns > 0 && r.SMTCanaryFlagged == 0 {
		return fmt.Errorf("attack: leaky SMT canary survived %d runs undetected — the privacy oracle has no teeth", r.SMTCanaryRuns)
	}
	return nil
}

// Summary renders a one-paragraph human summary.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"attack sweep: %d trials, %d runs (%d cells skipped on capability mismatch): "+
			"%d violations, %d engine mismatches; "+
			"%d control runs (%d unsafe, expected outside 𝒵); canary flagged in %d/%d runs; "+
			"mbrb canary flagged in %d/%d runs; "+
			"%d privacy runs, %d violations; leaky smt canary flagged in %d/%d runs",
		r.Trials, r.Runs, r.Skipped, len(r.Violations), len(r.Mismatches),
		r.ControlRuns, r.ControlViolations, r.CanaryFlagged, r.CanaryRuns,
		r.MBRBCanaryFlagged, r.MBRBCanaryRuns,
		r.PrivacyRuns, len(r.PrivacyViolations), r.SMTCanaryFlagged, r.SMTCanaryRuns)
}

// sample is one drawn (instance, corruption, control) trial.
type sample struct {
	desc     string
	in       *instance.Instance
	full     *instance.Instance // full-knowledge clone for NeedsFullKnowledge protocols
	complete *instance.Instance // complete-graph clone for CompleteGraph protocols
	corrupt  nodeset.Set        // admissible: a random maximal set of 𝒵
	control  nodeset.Set        // minimal non-admissible superset, empty if none exists
}

// forProtocol picks the instance clone matching the protocol's capability
// requirements: all three clones share the node set, adversary structure and
// terminals, so the trial's corruption and control sets stay admissible.
func (s *sample) forProtocol(p protocol.Protocol) *instance.Instance {
	switch {
	case p.Caps().NeedsFullKnowledge:
		return s.full
	case p.Caps().CompleteGraph:
		return s.complete
	default:
		return s.in
	}
}

// drawSample derives a deterministic trial fixture from the trial's RNG.
func drawSample(rng *rand.Rand) (*sample, error) {
	var (
		g    *graph.Graph
		z    adversary.Structure
		d, r int
		desc string
	)
	level := gen.Levels()[rng.Intn(len(gen.Levels()))]
	switch rng.Intn(4) {
	case 0:
		paths, hops := 2+rng.Intn(2), 1+rng.Intn(2)
		g, d, r = gen.DisjointPaths(paths, hops)
		z = gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
		desc = fmt.Sprintf("paths(%d,%d)/%s", paths, hops, level)
	case 1:
		k := 2 + rng.Intn(2)
		g, z, d, r = gen.ChimeraScaled(k)
		desc = fmt.Sprintf("chimera(%d)/%s", k, level)
	case 2:
		width := 2 + rng.Intn(2)
		g, d, r = gen.Layered(2, width)
		z = gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
		desc = fmt.Sprintf("layered(2,%d)/%s", width, level)
	default:
		n := 5 + rng.Intn(4)
		in, err := gen.RandomInstance(rng, n, 0.4, 2+rng.Intn(2), 0.3, level)
		if err == nil && hasCorruptibleSet(in) {
			return finishSample(in, fmt.Sprintf("gnp(%d)/%s", n, level), rng)
		}
		// Rare degenerate draw — unbuildable, or an adversary structure whose
		// only admissible set is ∅ (nothing to corrupt). Fall back to a fixed
		// family so the trial still contributes coverage.
		g, d, r = gen.DisjointPaths(3, 1)
		z = gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
		desc = fmt.Sprintf("paths(3,1)/%s", level)
	}
	in, err := gen.Build(g, z, level, d, r)
	if err != nil {
		return nil, fmt.Errorf("attack: building %s: %w", desc, err)
	}
	return finishSample(in, desc, rng)
}

// hasCorruptibleSet reports whether the instance admits any non-empty
// corruption set — the precondition for a meaningful attack trial.
func hasCorruptibleSet(in *instance.Instance) bool {
	for _, t := range in.MaximalCorruptions() {
		if t.Len() > 0 {
			return true
		}
	}
	return false
}

// finishSample picks the trial's corruption set and control superset and
// materializes the full-knowledge clone.
func finishSample(in *instance.Instance, desc string, rng *rand.Rand) (*sample, error) {
	maximal := in.MaximalCorruptions()
	nonEmpty := maximal[:0:0]
	for _, t := range maximal {
		if t.Len() > 0 {
			nonEmpty = append(nonEmpty, t)
		}
	}
	if len(nonEmpty) == 0 {
		return nil, fmt.Errorf("attack: %s has no non-empty corruption set", desc)
	}
	corrupt := nonEmpty[rng.Intn(len(nonEmpty))]

	// Control: the chosen maximal set plus the smallest honest non-terminal
	// that pushes it outside 𝒵.
	control := nodeset.Empty()
	in.HonestNodes(corrupt).ForEach(func(v int) bool {
		if v == in.Dealer || v == in.Receiver {
			return true
		}
		if super := corrupt.Add(v); !in.Admissible(super) {
			control = super
			return false
		}
		return true
	})

	full, err := instance.New(in.G, in.Z, view.Full(in.G), in.Dealer, in.Receiver)
	if err != nil {
		return nil, fmt.Errorf("attack: full-knowledge clone of %s: %w", desc, err)
	}
	cg := graph.New()
	nodes := in.G.Nodes().Members()
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			cg.AddEdge(u, v)
		}
	}
	complete, err := instance.AdHoc(cg, in.Z, in.Dealer, in.Receiver)
	if err != nil {
		return nil, fmt.Errorf("attack: complete-graph clone of %s: %w", desc, err)
	}
	return &sample{desc: desc, in: in, full: full, complete: complete, corrupt: corrupt, control: control}, nil
}

// runRecord is the per-run JSONL summary record.
type runRecord struct {
	Type     string        `json:"type"` // "run"
	Trial    int           `json:"trial"`
	Instance string        `json:"instance"`
	Protocol string        `json:"protocol"`
	Strategy string        `json:"strategy"`
	Engine   string        `json:"engine"`
	Corrupt  []int         `json:"corrupt"`
	InZ      bool          `json:"in_z"`
	Rounds   int           `json:"rounds"`
	Messages int           `json:"messages"`
	Decided  bool          `json:"decided"`
	Value    network.Value `json:"value,omitempty"`
	Safe     bool          `json:"safe"`
	// Message-adversary runs only: the suppression policy, its budget, and
	// how many copies it actually dropped.
	MAPolicy   string `json:"ma_policy,omitempty"`
	MABudget   int    `json:"ma_budget,omitempty"`
	Suppressed int    `json:"suppressed,omitempty"`
}

// trialResult is everything one trial reports back to the aggregator.
type trialResult struct {
	err        error
	runs       int
	skipped    int
	violations []Violation
	mismatches []Mismatch
	ctrlRuns   int
	ctrlViol   int
	records    []runRecord
	// violating runs to re-trace for the JSONL stream
	traces []traceRequest
}

type traceRequest struct {
	sample   *sample
	protocol string
	strategy string
	corrupt  nodeset.Set
	// schedule and schedSeed identify the async schedule of a violating
	// schedule run; schedule == "" re-traces under lockstep.
	schedule  string
	schedSeed int64
	// maPolicy, maBudget and maSeed rebuild the message adversary of a
	// violating suppression run; maPolicy == "" re-traces without one.
	maPolicy string
	maBudget int
	maSeed   int64
}

// Sweep runs the fuzzer and aggregates its report. The per-trial work is
// fanned across eval.ParallelMap; records and traces are emitted serially
// in trial order after the pool drains, so output is deterministic.
func Sweep(cfg Config) (*Report, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	results := eval.ParallelMap(cfg.Trials, cfg.Workers, func(trial int) trialResult {
		rng := rand.New(rand.NewSource(eval.TrialSeed(cfg.Seed, 0, trial)))
		return runTrial(cfg, trial, rng)
	})

	rep := &Report{Trials: cfg.Trials}
	for _, tr := range results {
		if tr.err != nil {
			return nil, tr.err
		}
		rep.Runs += tr.runs
		rep.Skipped += tr.skipped
		rep.Violations = append(rep.Violations, tr.violations...)
		rep.Mismatches = append(rep.Mismatches, tr.mismatches...)
		rep.ControlRuns += tr.ctrlRuns
		rep.ControlViolations += tr.ctrlViol
	}

	if cfg.Out != nil {
		enc := json.NewEncoder(cfg.Out)
		for _, tr := range results {
			for _, rec := range tr.records {
				if err := enc.Encode(rec); err != nil {
					return nil, fmt.Errorf("attack: writing records: %w", err)
				}
			}
			for _, req := range tr.traces {
				if err := traceRun(cfg, req); err != nil {
					return nil, err
				}
			}
		}
	}

	if err := runCanaryBattery(cfg, rep); err != nil {
		return nil, err
	}
	if err := runPrivacyBattery(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// runTrial executes the full protocol × strategy × engine matrix on one
// sampled fixture.
func runTrial(cfg Config, trial int, rng *rand.Rand) trialResult {
	var tr trialResult
	smp, err := drawSample(rng)
	if err != nil {
		tr.err = err
		return tr
	}

	for _, protoName := range cfg.protocols() {
		proto, ok := protocol.Get(protoName)
		if !ok {
			tr.err = fmt.Errorf("attack: unknown protocol %q", protoName)
			return tr
		}
		in := smp.forProtocol(proto)
		// Pre-flight: a protocol may reject the sampled fixture outright as
		// a capability mismatch (SMT when the corruptible ground covers
		// every D–R path). That is a property of the pairing, not an error
		// of the sweep — skip the cell instead of aborting the trial; such
		// protocols get their dedicated coverage from their own batteries.
		if _, err := proto.Assemble(in, xD, protocol.Options{}); err != nil && protocol.IsCapsError(err) {
			tr.skipped++
			continue
		}
		for _, stratName := range cfg.strategies() {
			strat, ok := byzantine.Get(stratName)
			if !ok {
				tr.err = byzantine.UnknownError(stratName)
				return tr
			}

			// Admissible corruption: assert safety and engine agreement.
			var runs []*network.Result
			for _, engine := range cfg.engines() {
				res, err := runOnce(cfg, proto, strat, in, smp.corrupt, engine)
				if err != nil {
					tr.err = fmt.Errorf("attack: trial %d %s %s/%s: %w",
						trial, smp.desc, protoName, stratName, err)
					return tr
				}
				tr.runs++
				runs = append(runs, res)
				viols := unsafeDecisions(in, smp.corrupt, res)
				for _, v := range viols {
					tr.violations = append(tr.violations, Violation{
						Trial: trial, Instance: smp.desc,
						Protocol: protoName, Strategy: stratName,
						Engine: engine.Name(), Corrupt: members(smp.corrupt),
						Node: v.node, Got: v.got,
					})
				}
				if len(viols) > 0 {
					tr.traces = append(tr.traces, traceRequest{
						sample: smp, protocol: protoName, strategy: stratName,
						corrupt: smp.corrupt,
					})
				}
				tr.records = append(tr.records, record(trial, smp.desc, protoName, stratName,
					engine.Name(), smp.corrupt, true, in, res, len(viols) == 0))
			}
			if d := disagreement(cfg.engines(), runs); d != "" {
				tr.mismatches = append(tr.mismatches, Mismatch{
					Trial: trial, Instance: smp.desc,
					Protocol: protoName, Strategy: stratName, Detail: d,
				})
			}

			// Schedule runs: the async engine under every configured
			// delivery schedule, seeded per (trial, schedule) so any
			// violation replays from (Seed, trial) alone.
			for schedIdx, schedName := range cfg.Schedules {
				schedSeed := eval.TrialSeed(cfg.Seed, 1000+schedIdx, trial)
				sched, err := network.NewScheduler(schedName, schedSeed)
				if err != nil {
					tr.err = fmt.Errorf("attack: trial %d: %w", trial, err)
					return tr
				}
				res, err := runSchedule(cfg, proto, strat, in, smp.corrupt, sched)
				if err != nil {
					tr.err = fmt.Errorf("attack: trial %d %s %s/%s sched %s: %w",
						trial, smp.desc, protoName, stratName, schedName, err)
					return tr
				}
				tr.runs++
				engName := "async/" + schedName
				viols := unsafeDecisions(in, smp.corrupt, res)
				for _, v := range viols {
					tr.violations = append(tr.violations, Violation{
						Trial: trial, Instance: smp.desc,
						Protocol: protoName, Strategy: stratName,
						Engine: engName, Corrupt: members(smp.corrupt),
						Node: v.node, Got: v.got,
					})
				}
				if len(viols) > 0 {
					tr.traces = append(tr.traces, traceRequest{
						sample: smp, protocol: protoName, strategy: stratName,
						corrupt: smp.corrupt, schedule: schedName, schedSeed: schedSeed,
					})
				}
				tr.records = append(tr.records, record(trial, smp.desc, protoName,
					stratName, engName, smp.corrupt, true, in, res, len(viols) == 0))
				// The zero-fault schedule must be indistinguishable from the
				// synchronous engines: same transcript, same decisions.
				if schedName == network.SchedSync && len(runs) > 0 {
					if d := disagreement([]network.Engine{cfg.engines()[0], network.Async},
						[]*network.Result{runs[0], res}); d != "" {
						tr.mismatches = append(tr.mismatches, Mismatch{
							Trial: trial, Instance: smp.desc,
							Protocol: protoName, Strategy: stratName,
							Detail: "sync schedule: " + d,
						})
					}
				}
			}

			// Message-adversary runs: for each suppression budget, every
			// stock policy under lockstep plus every configured schedule
			// with the seeded random policy layered on top. Safety-only
			// oracle — dropped copies can starve liveness but must never
			// produce a wrong decision.
			for bIdx, budget := range cfg.MABudgets {
				for pIdx, maName := range network.MessageAdversaryNames() {
					maSeed := eval.TrialSeed(cfg.Seed, 2000+bIdx*maStreams+pIdx, trial)
					madv, err := network.NewMessageAdversary(maName, budget, maSeed)
					if err != nil {
						tr.err = fmt.Errorf("attack: trial %d: %w", trial, err)
						return tr
					}
					res, err := runSuppressed(cfg, proto, strat, in, smp.corrupt, madv, budget, nil)
					if err != nil {
						tr.err = fmt.Errorf("attack: trial %d %s %s/%s ma %s(d=%d): %w",
							trial, smp.desc, protoName, stratName, maName, budget, err)
						return tr
					}
					tr.runs++
					engName := fmt.Sprintf("lockstep+ma/%s(d=%d)", maName, budget)
					viols := unsafeDecisions(in, smp.corrupt, res)
					for _, v := range viols {
						tr.violations = append(tr.violations, Violation{
							Trial: trial, Instance: smp.desc,
							Protocol: protoName, Strategy: stratName,
							Engine: engName, Corrupt: members(smp.corrupt),
							Node: v.node, Got: v.got,
						})
					}
					if len(viols) > 0 {
						tr.traces = append(tr.traces, traceRequest{
							sample: smp, protocol: protoName, strategy: stratName,
							corrupt: smp.corrupt,
							maPolicy: maName, maBudget: budget, maSeed: maSeed,
						})
					}
					rec := record(trial, smp.desc, protoName, stratName,
						engName, smp.corrupt, true, in, res, len(viols) == 0)
					rec.MAPolicy, rec.MABudget, rec.Suppressed = maName, budget, madv.Suppressed()
					tr.records = append(tr.records, rec)
				}
				for schedIdx, schedName := range cfg.Schedules {
					schedSeed := eval.TrialSeed(cfg.Seed, 3000+bIdx*maStreams+schedIdx, trial)
					sched, err := network.NewScheduler(schedName, schedSeed)
					if err != nil {
						tr.err = fmt.Errorf("attack: trial %d: %w", trial, err)
						return tr
					}
					maSeed := eval.TrialSeed(cfg.Seed, 4000+bIdx*maStreams+schedIdx, trial)
					madv := network.MustMessageAdversary(network.MARandom, budget, maSeed)
					res, err := runSuppressed(cfg, proto, strat, in, smp.corrupt, madv, budget, sched)
					if err != nil {
						tr.err = fmt.Errorf("attack: trial %d %s %s/%s sched %s + ma random(d=%d): %w",
							trial, smp.desc, protoName, stratName, schedName, budget, err)
						return tr
					}
					tr.runs++
					engName := fmt.Sprintf("async/%s+ma/random(d=%d)", schedName, budget)
					viols := unsafeDecisions(in, smp.corrupt, res)
					for _, v := range viols {
						tr.violations = append(tr.violations, Violation{
							Trial: trial, Instance: smp.desc,
							Protocol: protoName, Strategy: stratName,
							Engine: engName, Corrupt: members(smp.corrupt),
							Node: v.node, Got: v.got,
						})
					}
					if len(viols) > 0 {
						tr.traces = append(tr.traces, traceRequest{
							sample: smp, protocol: protoName, strategy: stratName,
							corrupt: smp.corrupt, schedule: schedName, schedSeed: schedSeed,
							maPolicy: network.MARandom, maBudget: budget, maSeed: maSeed,
						})
					}
					rec := record(trial, smp.desc, protoName, stratName,
						engName, smp.corrupt, true, in, res, len(viols) == 0)
					rec.MAPolicy, rec.MABudget, rec.Suppressed = network.MARandom, budget, madv.Suppressed()
					tr.records = append(tr.records, rec)
				}
			}

			// Control: minimal non-admissible superset, lockstep only.
			// Outcomes are recorded, not asserted.
			if smp.control.Len() > 0 {
				res, err := runOnce(cfg, proto, strat, in, smp.control, network.Lockstep)
				if err != nil {
					tr.err = fmt.Errorf("attack: trial %d control %s %s/%s: %w",
						trial, smp.desc, protoName, stratName, err)
					return tr
				}
				tr.ctrlRuns++
				unsafe := len(unsafeDecisions(in, smp.control, res)) > 0
				if unsafe {
					tr.ctrlViol++
				}
				tr.records = append(tr.records, record(trial, smp.desc, protoName, stratName,
					network.Lockstep.Name(), smp.control, false, in, res, !unsafe))
			}
		}
	}
	return tr
}

// runOnce builds a fresh corruption overlay (strategy processes are
// stateful and single-use) and executes one run.
func runOnce(cfg Config, proto protocol.Protocol, strat byzantine.Strategy,
	in *instance.Instance, corrupt nodeset.Set, engine network.Engine) (*network.Result, error) {
	return protocol.Run(proto, in, xD, protocol.Options{
		Engine:           engine,
		MaxRounds:        cfg.maxRounds(),
		RecordTranscript: true,
		Corrupt:          strat.Build(in, corrupt, ForgedValue),
	})
}

// maStreams spaces the per-budget seed streams of the message-adversary
// runs; it only needs to exceed the number of stock policies and schedules.
const maStreams = 16

// runSuppressed is runOnce with a (single-use) message adversary attached:
// lockstep when sched is nil, async under sched otherwise. The budget is
// passed through Options so budget-aware protocols (mbrb) provision their
// quorums for it.
func runSuppressed(cfg Config, proto protocol.Protocol, strat byzantine.Strategy,
	in *instance.Instance, corrupt nodeset.Set, madv network.MessageAdversary,
	budget int, sched network.Scheduler) (*network.Result, error) {
	opts := protocol.Options{
		Engine:           network.Lockstep,
		MaxRounds:        cfg.maxRounds(),
		RecordTranscript: true,
		Corrupt:          strat.Build(in, corrupt, ForgedValue),
		MsgAdversary:     madv,
		MABudget:         budget,
	}
	if sched != nil {
		opts.Engine = network.Async
		opts.Scheduler = sched
	}
	return protocol.Run(proto, in, xD, opts)
}

// runSchedule is runOnce under the async engine with the given (single-use)
// scheduler.
func runSchedule(cfg Config, proto protocol.Protocol, strat byzantine.Strategy,
	in *instance.Instance, corrupt nodeset.Set, sched network.Scheduler) (*network.Result, error) {
	return protocol.Run(proto, in, xD, protocol.Options{
		Engine:           network.Async,
		Scheduler:        sched,
		MaxRounds:        cfg.maxRounds(),
		RecordTranscript: true,
		Corrupt:          strat.Build(in, corrupt, ForgedValue),
	})
}

type unsafeDecision struct {
	node int
	got  network.Value
}

// unsafeDecisions applies the Theorem-4 safety oracle: every decision by a
// node outside the corruption set must equal x_D. Deciding ⊥ (not at all)
// is always acceptable — safety, not liveness, is on trial.
func unsafeDecisions(in *instance.Instance, corrupt nodeset.Set, res *network.Result) []unsafeDecision {
	var out []unsafeDecision
	for node, got := range res.Decisions {
		if corrupt.Contains(node) || got == xD {
			continue
		}
		out = append(out, unsafeDecision{node: node, got: got})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node < out[j].node })
	return out
}

// disagreement compares the recorded transcripts and decisions of the
// per-engine runs of one deterministic configuration.
func disagreement(engines []network.Engine, runs []*network.Result) string {
	if len(runs) < 2 {
		return ""
	}
	ref := runs[0]
	for i, res := range runs[1:] {
		if res.Transcript.Key() != ref.Transcript.Key() {
			return fmt.Sprintf("transcript of %s differs from %s", engines[i+1], engines[0])
		}
		if !decisionsEqual(ref.Decisions, res.Decisions) {
			return fmt.Sprintf("decisions of %s differ from %s: %v vs %v",
				engines[i+1], engines[0], res.Decisions, ref.Decisions)
		}
	}
	return ""
}

func decisionsEqual(a, b map[int]network.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func record(trial int, desc, protoName, stratName, engine string,
	corrupt nodeset.Set, inZ bool, in *instance.Instance, res *network.Result, safe bool) runRecord {
	val, decided := res.DecisionOf(in.Receiver)
	return runRecord{
		Type: "run", Trial: trial, Instance: desc,
		Protocol: protoName, Strategy: stratName, Engine: engine,
		Corrupt: members(corrupt), InZ: inZ,
		Rounds: res.Rounds, Messages: res.Metrics.MessagesSent,
		Decided: decided, Value: val, Safe: safe,
	}
}

func members(s nodeset.Set) []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// traceRun re-executes a violating run with a message-level JSONL tracer
// attached, so the attack trace lands in the output stream right after the
// violating run's summary record. Schedule violations replay under the same
// (schedule, seed) pair, reproducing the violating delivery order exactly.
func traceRun(cfg Config, req traceRequest) error {
	proto := protocol.MustGet(req.protocol)
	in := req.sample.forProtocol(proto)
	strat := byzantine.MustGet(req.strategy)
	tracer := network.NewJSONLTracer(cfg.Out)
	opts := protocol.Options{
		Engine:    network.Lockstep,
		MaxRounds: cfg.maxRounds(),
		Corrupt:   strat.Build(in, req.corrupt, ForgedValue),
		Tracers:   []network.Tracer{tracer},
	}
	if req.schedule != "" {
		sched, err := network.NewScheduler(req.schedule, req.schedSeed)
		if err != nil {
			return err
		}
		opts.Engine = network.Async
		opts.Scheduler = sched
	}
	if req.maPolicy != "" {
		madv, err := network.NewMessageAdversary(req.maPolicy, req.maBudget, req.maSeed)
		if err != nil {
			return err
		}
		opts.MsgAdversary = madv
		opts.MABudget = req.maBudget
	}
	_, err := protocol.Run(proto, in, xD, opts)
	if err != nil {
		return fmt.Errorf("attack: tracing %s/%s: %w", req.protocol, req.strategy, err)
	}
	return tracer.Err()
}

// ParseEngines parses a comma-separated engine list
// ("lockstep,goroutine,async"). A bare "async" engine runs under the
// zero-fault schedule; use Config.Schedules for adversarial schedules.
func ParseEngines(s string) ([]network.Engine, error) {
	if s == "" {
		return nil, nil
	}
	var out []network.Engine
	for _, name := range strings.Split(s, ",") {
		e, err := network.ParseEngine(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("attack: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// ParseBudgets parses a comma-separated list of message-adversary
// suppression budgets for Config.MABudgets.
func ParseBudgets(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, field := range strings.Split(s, ",") {
		var d int
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &d); err != nil {
			return nil, fmt.Errorf("attack: bad suppression budget %q", field)
		}
		if d < 0 {
			return nil, fmt.Errorf("attack: negative suppression budget %d", d)
		}
		out = append(out, d)
	}
	return out, nil
}

// ParseSchedules parses a comma-separated schedule list for
// Config.Schedules; "all" expands to every stock schedule.
func ParseSchedules(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		return network.SchedulerNames(), nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if _, err := network.NewScheduler(name, 0); err != nil {
			return nil, fmt.Errorf("attack: %w", err)
		}
		out = append(out, name)
	}
	return out, nil
}
