package attack

import (
	"strings"
	"testing"
)

// TestPrivacyBatteryHonestAndCanary runs the battery standalone across
// schedules and suppression budgets: the honest protocol must come out
// clean, and the leaky canary must be flagged — in every configuration
// class, or the oracle's coverage is narrower than it claims.
func TestPrivacyBatteryHonestAndCanary(t *testing.T) {
	rep := &Report{}
	cfg := Config{Seed: 3, Schedules: []string{"sync", "random"}, MABudgets: []int{1}}
	if err := runPrivacyBattery(cfg, rep); err != nil {
		t.Fatal(err)
	}
	if rep.PrivacyRuns == 0 {
		t.Fatal("privacy battery ran nothing")
	}
	for _, v := range rep.PrivacyViolations {
		t.Errorf("honest smt flagged: %s", v)
	}
	if rep.SMTCanaryRuns == 0 || rep.SMTCanaryFlagged == 0 {
		t.Fatalf("leaky canary: %d/%d flagged — the privacy oracle has no teeth",
			rep.SMTCanaryFlagged, rep.SMTCanaryRuns)
	}
	// Every cell pairs one honest run set with one canary run set, so equal
	// counts mean the canary rode through the full configuration matrix.
	if rep.SMTCanaryRuns != rep.PrivacyRuns {
		t.Fatalf("canary runs %d != privacy runs %d: batteries diverged", rep.SMTCanaryRuns, rep.PrivacyRuns)
	}
}

// TestPrivacyOracleInSummary: the sweep-level report surfaces the privacy
// counts and fails loudly when the canary goes unflagged.
func TestPrivacyOracleInSummary(t *testing.T) {
	rep := &Report{SMTCanaryRuns: 4}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "privacy oracle has no teeth") {
		t.Fatalf("unflagged canary not fatal: %v", err)
	}
	rep = &Report{PrivacyViolations: []PrivacyViolation{{Protocol: "smt", Detail: "x"}}}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "privacy violations") {
		t.Fatalf("privacy violations not fatal: %v", err)
	}
	rep = &Report{}
	if !strings.Contains(rep.Summary(), "privacy") {
		t.Fatal("summary omits the privacy battery")
	}
}
