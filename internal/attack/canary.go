package attack

import (
	"fmt"
	"sort"

	"rmt/internal/byzantine"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/zcpa"
)

// This file is the sweep's teeth check: a deliberately UNSAFE decision rule
// run through the exact same safety oracle as the real protocols. The
// gullible receiver decides the lexicographically smallest candidate value
// it has seen as soon as any candidate exists — no cover check, no
// certification — so a single value-forging corrupted relay fools it. If
// the oracle does not flag it, the sweep's zero-violation claim about the
// real protocols is vacuous and Report.Err fails.

// CanaryName names the unsafe decision rule in reports and traces. The
// protocol is deliberately NOT registered in internal/protocol's registry:
// it must never leak into conformance batteries or the CLI.
const CanaryName = "canary-gullible"

// gullibleReceiver accepts any type-1 message with a plausibly admissible
// trail, or any bare 𝒵-CPA value, as a candidate — and decides the smallest
// candidate at the end of the first round that produced one.
type gullibleReceiver struct {
	id      int
	decided bool
	value   network.Value
}

func (r *gullibleReceiver) Init(network.Outbox) {}

func (r *gullibleReceiver) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	if r.decided {
		return false
	}
	var candidates []network.Value
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case core.ValueMsg:
			if len(p.P) == 0 || p.P.Contains(r.id) || p.P.Tail() != m.From {
				continue
			}
			candidates = append(candidates, p.X)
		case zcpa.ValuePayload:
			candidates = append(candidates, p.X)
		}
	}
	if len(candidates) == 0 {
		return true
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	r.decided, r.value = true, candidates[0]
	return false
}

func (r *gullibleReceiver) Decision() (network.Value, bool) { return r.value, r.decided }

// canaryProto wires the gullible receiver into an otherwise honest RMT-PKA
// player set. It implements protocol.Protocol so it runs through the very
// same protocol.Run path as the audited protocols, but is never registered.
type canaryProto struct{}

func (canaryProto) Name() string        { return CanaryName }
func (canaryProto) Caps() protocol.Caps { return protocol.Caps{} }

func (canaryProto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), opts.Corrupt, func(v int) network.Process {
		switch v {
		case in.Dealer:
			return core.NewDealer(in, xD)
		case in.Receiver:
			return &gullibleReceiver{id: v}
		default:
			return core.NewRelay(in, v)
		}
	}), nil
}

// canaryFixture is the deterministic teeth fixture: three disjoint one-hop
// relays between D=0 and R=4 with singleton corruptions. Corrupting relay 1
// with any value-forging strategy puts a forged candidate in front of the
// gullible receiver no later than the honest value, and ForgedValue sorts
// below x_D, so the receiver reliably decides wrong.
func canaryFixture() (*instance.Instance, nodeset.Set, error) {
	g, d, r := gen.DisjointPaths(3, 1)
	in, err := instance.AdHoc(g, gen.Singletons(nodeset.Of(1, 2, 3)), d, r)
	if err != nil {
		return nil, nodeset.Empty(), err
	}
	return in, nodeset.Of(1), nil
}

// runCanaryBattery runs every configured strategy against the gullible
// receiver on the fixture and counts how many runs the safety oracle flags.
// The battery's event traces go to cfg.Out so the JSONL stream always
// contains at least one fully traced attack.
func runCanaryBattery(cfg Config, rep *Report) error {
	in, corrupt, err := canaryFixture()
	if err != nil {
		return fmt.Errorf("attack: canary fixture: %w", err)
	}
	for _, stratName := range cfg.strategies() {
		strat, ok := byzantine.Get(stratName)
		if !ok {
			return byzantine.UnknownError(stratName)
		}
		var tracers []network.Tracer
		var jsonl *network.JSONLTracer
		if cfg.Out != nil {
			jsonl = network.NewJSONLTracer(cfg.Out)
			tracers = append(tracers, jsonl)
		}
		res, err := protocol.Run(canaryProto{}, in, xD, protocol.Options{
			Engine:    network.Lockstep,
			MaxRounds: cfg.maxRounds(),
			Corrupt:   strat.Build(in, corrupt, ForgedValue),
			Tracers:   tracers,
		})
		if err != nil {
			return fmt.Errorf("attack: canary under %s: %w", stratName, err)
		}
		if jsonl != nil {
			if err := jsonl.Err(); err != nil {
				return fmt.Errorf("attack: canary trace under %s: %w", stratName, err)
			}
		}
		rep.CanaryRuns++
		if len(unsafeDecisions(in, corrupt, res)) > 0 {
			rep.CanaryFlagged++
		}
	}
	return nil
}
