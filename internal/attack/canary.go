package attack

import (
	"fmt"
	"sort"

	"rmt/internal/byzantine"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/mbrb"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/zcpa"
)

// This file is the sweep's teeth check: a deliberately UNSAFE decision rule
// run through the exact same safety oracle as the real protocols. The
// gullible receiver decides the lexicographically smallest candidate value
// it has seen as soon as any candidate exists — no cover check, no
// certification — so a single value-forging corrupted relay fools it. If
// the oracle does not flag it, the sweep's zero-violation claim about the
// real protocols is vacuous and Report.Err fails.

// CanaryName names the unsafe decision rule in reports and traces. The
// protocol is deliberately NOT registered in internal/protocol's registry:
// it must never leak into conformance batteries or the CLI.
const CanaryName = "canary-gullible"

// gullibleReceiver accepts any type-1 message with a plausibly admissible
// trail, or any bare 𝒵-CPA value, as a candidate — and decides the smallest
// candidate at the end of the first round that produced one.
type gullibleReceiver struct {
	id      int
	decided bool
	value   network.Value
}

func (r *gullibleReceiver) Init(network.Outbox) {}

func (r *gullibleReceiver) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	if r.decided {
		return false
	}
	var candidates []network.Value
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case core.ValueMsg:
			if len(p.P) == 0 || p.P.Contains(r.id) || p.P.Tail() != m.From {
				continue
			}
			candidates = append(candidates, p.X)
		case zcpa.ValuePayload:
			candidates = append(candidates, p.X)
		}
	}
	if len(candidates) == 0 {
		return true
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	r.decided, r.value = true, candidates[0]
	return false
}

func (r *gullibleReceiver) Decision() (network.Value, bool) { return r.value, r.decided }

// canaryProto wires the gullible receiver into an otherwise honest RMT-PKA
// player set. It implements protocol.Protocol so it runs through the very
// same protocol.Run path as the audited protocols, but is never registered.
type canaryProto struct{}

func (canaryProto) Name() string        { return CanaryName }
func (canaryProto) Caps() protocol.Caps { return protocol.Caps{} }

func (canaryProto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), opts.Corrupt, func(v int) network.Process {
		switch v {
		case in.Dealer:
			return core.NewDealer(in, xD)
		case in.Receiver:
			return &gullibleReceiver{id: v}
		default:
			return core.NewRelay(in, v)
		}
	}), nil
}

// canaryFixture is the deterministic teeth fixture: three disjoint one-hop
// relays between D=0 and R=4 with singleton corruptions. Corrupting relay 1
// with any value-forging strategy puts a forged candidate in front of the
// gullible receiver no later than the honest value, and ForgedValue sorts
// below x_D, so the receiver reliably decides wrong.
func canaryFixture() (*instance.Instance, nodeset.Set, error) {
	g, d, r := gen.DisjointPaths(3, 1)
	in, err := instance.AdHoc(g, gen.Singletons(nodeset.Of(1, 2, 3)), d, r)
	if err != nil {
		return nil, nodeset.Empty(), err
	}
	return in, nodeset.Of(1), nil
}

// MBRBCanaryName names the unsafe MBRB decision rule in reports and traces.
// Like the gullible receiver, it is deliberately NOT registered.
const MBRBCanaryName = "canary-mbrb-gullible"

// gullibleMBRBReceiver drops MBRB's one real safeguard — counting READY
// votes from DISTINCT senders against the 2t+d+1 delivery quorum — and
// delivers the lexicographically smallest value it has seen in any single
// READY (or forged dealer INIT impersonation is not even needed: one
// corrupted player's ready suffices). The ready-forger strategy fools it on
// every run; honest runs still decide x_D, so only forging strategies flag.
type gullibleMBRBReceiver struct {
	id      int
	dealer  int
	decided bool
	value   network.Value
}

func (r *gullibleMBRBReceiver) Init(network.Outbox) {}

func (r *gullibleMBRBReceiver) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	if r.decided {
		return false
	}
	var candidates []network.Value
	for _, m := range inbox {
		p, ok := m.Payload.(mbrb.Msg)
		if !ok || p.Phase != mbrb.PhaseReady {
			continue
		}
		candidates = append(candidates, p.X)
	}
	if len(candidates) == 0 {
		return true
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	r.decided, r.value = true, candidates[0]
	return false
}

func (r *gullibleMBRBReceiver) Decision() (network.Value, bool) { return r.value, r.decided }

// mbrbCanaryProto wires the gullible MBRB receiver into an otherwise honest
// mbrb player set (honest players echo and ready normally, so the receiver
// sees real readys too — the forged one just sorts first).
type mbrbCanaryProto struct{}

func (mbrbCanaryProto) Name() string        { return MBRBCanaryName }
func (mbrbCanaryProto) Caps() protocol.Caps { return protocol.Caps{CompleteGraph: true} }

func (mbrbCanaryProto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	q := mbrb.NewQuorums(in.N(), mbrb.Threshold(in), opts.MABudget)
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), opts.Corrupt, func(v int) network.Process {
		if v == in.Receiver {
			return &gullibleMBRBReceiver{id: v, dealer: in.Dealer}
		}
		return mbrb.NewPlayer(in, v, xD, q)
	}), nil
}

// mbrbCanaryFixture is the MBRB teeth fixture: K5 with singleton
// corruptions over the interior, D=0, R=4, corrupting player 1. n=5, t=1,
// d=0 satisfies n > 3t+2d, so the honest players reach their quorums; the
// gullible receiver decides off the first ready it sees — the corrupted
// player's forged one.
func mbrbCanaryFixture() (*instance.Instance, nodeset.Set, error) {
	g := gen.Complete(5)
	in, err := instance.AdHoc(g, gen.Singletons(nodeset.Of(1, 2, 3)), 0, 4)
	if err != nil {
		return nil, nodeset.Empty(), err
	}
	return in, nodeset.Of(1), nil
}

// runCanaryBattery runs every configured strategy against the gullible
// receiver on the fixture and counts how many runs the safety oracle flags.
// The battery's event traces go to cfg.Out so the JSONL stream always
// contains at least one fully traced attack.
func runCanaryBattery(cfg Config, rep *Report) error {
	in, corrupt, err := canaryFixture()
	if err != nil {
		return fmt.Errorf("attack: canary fixture: %w", err)
	}
	for _, stratName := range cfg.strategies() {
		strat, ok := byzantine.Get(stratName)
		if !ok {
			return byzantine.UnknownError(stratName)
		}
		var tracers []network.Tracer
		var jsonl *network.JSONLTracer
		if cfg.Out != nil {
			jsonl = network.NewJSONLTracer(cfg.Out)
			tracers = append(tracers, jsonl)
		}
		res, err := protocol.Run(canaryProto{}, in, xD, protocol.Options{
			Engine:    network.Lockstep,
			MaxRounds: cfg.maxRounds(),
			Corrupt:   strat.Build(in, corrupt, ForgedValue),
			Tracers:   tracers,
		})
		if err != nil {
			return fmt.Errorf("attack: canary under %s: %w", stratName, err)
		}
		if jsonl != nil {
			if err := jsonl.Err(); err != nil {
				return fmt.Errorf("attack: canary trace under %s: %w", stratName, err)
			}
		}
		rep.CanaryRuns++
		if len(unsafeDecisions(in, corrupt, res)) > 0 {
			rep.CanaryFlagged++
		}
	}
	return runMBRBCanaryBattery(cfg, rep)
}

// runMBRBCanaryBattery is the message-adversary battery's teeth check: the
// gullible MBRB receiver under every configured strategy, once clean and —
// when suppression budgets are configured — once per budget under the
// targeted policy. A safety oracle that cannot catch a receiver ignoring
// MBRB's distinct-sender quorums, with or without message loss, proves
// nothing about the real mbrb protocol. The ready-forger always joins the
// battery even when the sweep is restricted to other strategies: it is the
// one stock strategy that speaks MBRB's message type, so without it a
// narrowed sweep would fail the teeth check vacuously.
func runMBRBCanaryBattery(cfg Config, rep *Report) error {
	in, corrupt, err := mbrbCanaryFixture()
	if err != nil {
		return fmt.Errorf("attack: mbrb canary fixture: %w", err)
	}
	names := cfg.strategies()
	hasForger := false
	for _, n := range names {
		hasForger = hasForger || n == byzantine.ReadyForgerName
	}
	if !hasForger {
		names = append(append([]string(nil), names...), byzantine.ReadyForgerName)
	}
	for _, stratName := range names {
		strat, ok := byzantine.Get(stratName)
		if !ok {
			return byzantine.UnknownError(stratName)
		}
		budgets := []int{0}
		budgets = append(budgets, cfg.MABudgets...)
		for _, budget := range budgets {
			opts := protocol.Options{
				Engine:    network.Lockstep,
				MaxRounds: cfg.maxRounds(),
				Corrupt:   strat.Build(in, corrupt, ForgedValue),
				MABudget:  budget,
			}
			if budget > 0 {
				// Deterministic policy: the targeted adversary needs no seed,
				// so every flagged run replays without bookkeeping.
				opts.MsgAdversary = network.MustMessageAdversary(network.MATargeted, budget, 0)
			}
			var jsonl *network.JSONLTracer
			if cfg.Out != nil {
				jsonl = network.NewJSONLTracer(cfg.Out)
				opts.Tracers = []network.Tracer{jsonl}
			}
			res, err := protocol.Run(mbrbCanaryProto{}, in, xD, opts)
			if err != nil {
				return fmt.Errorf("attack: mbrb canary under %s (d=%d): %w", stratName, budget, err)
			}
			if jsonl != nil {
				if err := jsonl.Err(); err != nil {
					return fmt.Errorf("attack: mbrb canary trace under %s: %w", stratName, err)
				}
			}
			rep.MBRBCanaryRuns++
			if len(unsafeDecisions(in, corrupt, res)) > 0 {
				rep.MBRBCanaryFlagged++
			}
		}
	}
	return nil
}
