package attack

import (
	"bytes"
	"strings"
	"testing"

	"rmt/internal/byzantine"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

func TestSweepHoldsTheoremFourSafety(t *testing.T) {
	var out bytes.Buffer
	rep, err := Sweep(Config{Seed: 7, Trials: 12, Workers: 2, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatal("no cells skipped: smt should reject samples whose ground covers every path")
	}
	wantRuns := (12*len(protocol.Names()) - rep.Skipped) * len(byzantine.Names()) * 2
	if rep.Runs != wantRuns {
		t.Fatalf("runs = %d, want %d (unskipped cells × strategies × engines)", rep.Runs, wantRuns)
	}
	if rep.CanaryRuns != len(byzantine.Names()) {
		t.Fatalf("canary runs = %d, want one per strategy", rep.CanaryRuns)
	}
	if rep.CanaryFlagged == 0 {
		t.Fatal("canary was never flagged")
	}
	if rep.ControlRuns == 0 {
		t.Fatal("no control runs: the non-𝒵 boundary went unexercised")
	}
	text := out.String()
	if !strings.Contains(text, `"type":"run"`) {
		t.Fatal("JSONL stream has no run records")
	}
	// The canary battery always traces through the JSONL tracer, so the
	// stream must contain message-level events too.
	if !strings.Contains(text, `"send"`) && !strings.Contains(text, `"begin_run"`) {
		t.Fatalf("JSONL stream has no tracer events:\n%.400s", text)
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Sweep(Config{Seed: 11, Trials: 6, Workers: 1, Out: &a}); err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(Config{Seed: 11, Trials: 6, Workers: 4, Out: &b}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("sweep output depends on worker count")
	}
}

func TestSweepFlagsCanaryViolation(t *testing.T) {
	// Run ONLY the canary battery path with a value-forging strategy and
	// check the oracle flags the gullible receiver directly.
	in, corrupt, err := canaryFixture()
	if err != nil {
		t.Fatal(err)
	}
	strat := byzantine.MustGet(byzantine.ValueFlipName)
	res, err := protocol.Run(canaryProto{}, in, xD, protocol.Options{
		MaxRounds: 16,
		Corrupt:   strat.Build(in, corrupt, ForgedValue),
	})
	if err != nil {
		t.Fatal(err)
	}
	viols := unsafeDecisions(in, corrupt, res)
	if len(viols) == 0 {
		t.Fatal("gullible receiver survived a value flipper")
	}
	if viols[0].node != in.Receiver || viols[0].got == xD {
		t.Fatalf("unexpected violation shape: %+v", viols[0])
	}
	// Under the silent adversary the gullible receiver decides the honest
	// value — the oracle must not false-positive.
	silent := byzantine.MustGet(byzantine.SilentName)
	res, err = protocol.Run(canaryProto{}, in, xD, protocol.Options{
		MaxRounds: 16,
		Corrupt:   silent.Build(in, corrupt, ForgedValue),
	})
	if err != nil {
		t.Fatal(err)
	}
	if viols := unsafeDecisions(in, corrupt, res); len(viols) != 0 {
		t.Fatalf("oracle false-positived on a safe run: %+v", viols)
	}
}

func TestReportErrRequiresTeeth(t *testing.T) {
	rep := &Report{CanaryRuns: 5}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "teeth") {
		t.Fatalf("toothless report did not fail: %v", err)
	}
	rep.CanaryFlagged = 1
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	rep.MBRBCanaryRuns = 3
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "suppression oracle") {
		t.Fatalf("toothless mbrb canary did not fail: %v", err)
	}
	rep.MBRBCanaryFlagged = 1
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	rep.Violations = []Violation{{Protocol: "pka"}}
	if rep.Err() == nil {
		t.Fatal("violations did not fail the report")
	}
	rep = &Report{CanaryRuns: 1, CanaryFlagged: 1, Mismatches: []Mismatch{{Detail: "x"}}}
	if rep.Err() == nil {
		t.Fatal("engine mismatches did not fail the report")
	}
}

func TestParseEngines(t *testing.T) {
	got, err := ParseEngines("lockstep,goroutine,async")
	if err != nil || len(got) != 3 || got[0] != network.Lockstep || got[1] != network.Goroutine || got[2] != network.Async {
		t.Fatalf("ParseEngines = %v, %v", got, err)
	}
	if _, err := ParseEngines("warp"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if got, err := ParseEngines(""); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v", got, err)
	}
}

func TestParseSchedules(t *testing.T) {
	got, err := ParseSchedules("sync,random")
	if err != nil || len(got) != 2 || got[0] != "sync" || got[1] != "random" {
		t.Fatalf("ParseSchedules = %v, %v", got, err)
	}
	all, err := ParseSchedules("all")
	if err != nil || len(all) != len(network.SchedulerNames()) {
		t.Fatalf(`ParseSchedules("all") = %v, %v`, all, err)
	}
	if _, err := ParseSchedules("bogus"); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	if got, err := ParseSchedules(""); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v", got, err)
	}
}

// TestSweepMessageAdversaryCrossProduct runs the suppression-crossing sweep:
// every cell gains one lockstep run per (budget, stock policy) and one async
// run per (budget, schedule) under the seeded random policy, the Theorem-4
// oracle holds on all of them, and the MBRB canary battery proves the oracle
// keeps its teeth under message loss.
func TestSweepMessageAdversaryCrossProduct(t *testing.T) {
	var out bytes.Buffer
	budgets := []int{1, 2}
	scheds := []string{"sync", "random"}
	rep, err := Sweep(Config{
		Seed:      9,
		Trials:    4,
		Workers:   2,
		Engines:   []network.Engine{network.Lockstep},
		Schedules: scheds,
		MABudgets: budgets,
		Out:       &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	perCell := 1 + len(scheds) + len(budgets)*(len(network.MessageAdversaryNames())+len(scheds))
	wantRuns := (4*len(protocol.Names()) - rep.Skipped) * len(byzantine.Names()) * perCell
	if rep.Runs != wantRuns {
		t.Fatalf("runs = %d, want %d (unskipped cells × strategies × (engines + schedules + ma cells))",
			rep.Runs, wantRuns)
	}
	wantMBRB := len(byzantine.Names()) * (1 + len(budgets))
	if rep.MBRBCanaryRuns != wantMBRB {
		t.Fatalf("mbrb canary runs = %d, want %d", rep.MBRBCanaryRuns, wantMBRB)
	}
	if rep.MBRBCanaryFlagged == 0 {
		t.Fatal("mbrb canary was never flagged")
	}
	text := out.String()
	if !strings.Contains(text, `"ma_policy":"targeted"`) || !strings.Contains(text, `"ma_policy":"random"`) {
		t.Fatal("JSONL stream has no message-adversary run records")
	}
	if !strings.Contains(text, "+ma/") {
		t.Fatal("JSONL stream has no suppression engine labels")
	}
}

// TestSweepMessageAdversaryDeterministic re-runs the suppression sweep at
// different worker counts and requires byte-identical JSONL output — the
// adversary seeds must derive from (Seed, trial) alone.
func TestSweepMessageAdversaryDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	cfg := Config{
		Seed:      17,
		Trials:    3,
		Engines:   []network.Engine{network.Lockstep},
		Schedules: []string{"random"},
		MABudgets: []int{1},
	}
	cfg.Workers, cfg.Out = 1, &a
	if _, err := Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Workers, cfg.Out = 4, &b
	if _, err := Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("suppression sweep output depends on worker count")
	}
}

func TestParseBudgets(t *testing.T) {
	got, err := ParseBudgets("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ParseBudgets = %v, %v", got, err)
	}
	if _, err := ParseBudgets("-1"); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := ParseBudgets("x"); err == nil {
		t.Fatal("non-numeric budget accepted")
	}
	if got, err := ParseBudgets(""); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v", got, err)
	}
}

// TestMBRBCanaryFlagsReadyForger pins the mechanism: the gullible MBRB
// receiver decides the forged value off a single unverified READY, with and
// without a suppression budget in play.
func TestMBRBCanaryFlagsReadyForger(t *testing.T) {
	in, corrupt, err := mbrbCanaryFixture()
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1} {
		strat := byzantine.MustGet(byzantine.ReadyForgerName)
		opts := protocol.Options{
			MaxRounds: 16,
			Corrupt:   strat.Build(in, corrupt, ForgedValue),
			MABudget:  budget,
		}
		if budget > 0 {
			opts.MsgAdversary = network.MustMessageAdversary(network.MATargeted, budget, 0)
		}
		res, err := protocol.Run(mbrbCanaryProto{}, in, xD, opts)
		if err != nil {
			t.Fatal(err)
		}
		viols := unsafeDecisions(in, corrupt, res)
		if len(viols) == 0 {
			t.Fatalf("d=%d: gullible mbrb receiver survived the ready forger", budget)
		}
		if viols[0].node != in.Receiver || viols[0].got == xD {
			t.Fatalf("d=%d: unexpected violation shape: %+v", budget, viols[0])
		}
	}
	// Under the silent adversary every ready the gullible receiver sees is
	// honest, so the oracle must not false-positive.
	silent := byzantine.MustGet(byzantine.SilentName)
	res, err := protocol.Run(mbrbCanaryProto{}, in, xD, protocol.Options{
		MaxRounds: 16,
		Corrupt:   silent.Build(in, corrupt, ForgedValue),
	})
	if err != nil {
		t.Fatal(err)
	}
	if viols := unsafeDecisions(in, corrupt, res); viols != nil {
		t.Fatalf("oracle false-positived on a safe mbrb canary run: %+v", viols)
	}
}

// TestSweepSchedulesCrossProduct runs the schedule-crossing sweep: every
// cell gains one async run per schedule, the zero-fault schedule must agree
// with lockstep, and the Theorem-4 oracle must hold on every delivery order.
func TestSweepSchedulesCrossProduct(t *testing.T) {
	scheds := network.SchedulerNames()
	rep, err := Sweep(Config{
		Seed:      5,
		Trials:    6,
		Workers:   2,
		Engines:   []network.Engine{network.Lockstep},
		Schedules: scheds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	wantRuns := (6*len(protocol.Names()) - rep.Skipped) * len(byzantine.Names()) * (1 + len(scheds))
	if rep.Runs != wantRuns {
		t.Fatalf("runs = %d, want %d (unskipped cells × strategies × (engines + schedules))",
			rep.Runs, wantRuns)
	}
}

// TestSweepSchedulesDeterministic re-runs the schedule sweep at different
// worker counts and requires byte-identical JSONL output — the determinism
// claim the seeded schedulers exist to provide.
func TestSweepSchedulesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	cfg := Config{
		Seed:      13,
		Trials:    4,
		Engines:   []network.Engine{network.Lockstep},
		Schedules: []string{"random", "partition"},
	}
	cfg.Workers, cfg.Out = 1, &a
	if _, err := Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Workers, cfg.Out = 4, &b
	if _, err := Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("schedule sweep output depends on worker count")
	}
	if !strings.Contains(a.String(), `"engine":"async/random"`) {
		t.Fatal("JSONL stream has no async schedule records")
	}
}

// TestSweepGoroutineEngineUnderRace exercises the goroutine engine through
// the full attack matrix with a parallel worker pool; `go test -race` on
// this package makes it a data-race detector for the strategies, which
// must not share state across runs.
func TestSweepGoroutineEngineUnderRace(t *testing.T) {
	rep, err := Sweep(Config{
		Seed:    3,
		Trials:  4,
		Workers: 4,
		Engines: []network.Engine{network.Goroutine},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestUnsafeDecisionsOracle(t *testing.T) {
	in, corrupt, err := canaryFixture()
	if err != nil {
		t.Fatal(err)
	}
	res := &network.Result{Decisions: map[int]network.Value{
		0: xD,         // dealer: honest, correct
		1: "0!forged", // corrupted node: its decisions are ignored
		4: "0!forged", // honest receiver deciding wrong: violation
		2: xD,         // honest, correct
	}}
	viols := unsafeDecisions(in, corrupt, res)
	if len(viols) != 1 || viols[0].node != 4 {
		t.Fatalf("oracle = %+v, want exactly node 4", viols)
	}
	_ = nodeset.Empty() // keep import if fixture changes
}
