// The privacy battery: the listening-adversary counterpart of the Theorem-4
// safety oracle. It runs the SMT protocol on a fixed feasible fixture with a
// listening coalition corrupted by the recording strategies, twice per cell —
// once per secret of a same-length pair — and asserts that the coalition's
// recorded view is independent of which secret was transmitted:
//
//   - the coalition never observes every share index (a full view would XOR
//     back to the secret);
//   - when the secret-dependent share stayed out of earshot, the two paired
//     views are byte-identical — the heard shares are pure pads;
//   - no recorded payload contains the secret, raw or hex-encoded.
//
// The oracle's teeth are checked the same way as the safety canaries: a
// deliberately leaky SMT variant (the dealer ships the plaintext secret as
// every "share") runs through the same battery and the sweep fails unless it
// is flagged.
package attack

import (
	"encoding/hex"
	"fmt"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/eval"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/smt"
)

// The paired secrets. Same length by construction — the pads are
// length-keyed, so paired views are only comparable for equal-length secrets.
const (
	privacyX0 = "privacy-secret-alpha"
	privacyX1 = "privacy-secret-omega"
)

// PrivacyViolation is one observed breach of SMT's secrecy guarantee: a
// listening coalition's recorded view depended on (or contained) the secret.
type PrivacyViolation struct {
	Protocol string `json:"protocol"`
	Listen   []int  `json:"listen"`
	Variant  string `json:"variant"`
	Engine   string `json:"engine"`
	Detail   string `json:"detail"`
}

func (v PrivacyViolation) String() string {
	return fmt.Sprintf("%s under %s on %v (%s): %s", v.Protocol, v.Variant, v.Listen, v.Engine, v.Detail)
}

// privacyCell is one engine/schedule/suppression configuration of the
// battery. Paired runs share the cell, including every seed, so the only
// difference between the two runs is the secret itself.
type privacyCell struct {
	name     string
	schedule string
	seed     int64
	maBudget int
	maSeed   int64
	ma       bool
}

// runPrivacyBattery executes the battery and folds its counts into rep.
func runPrivacyBattery(cfg Config, rep *Report) error {
	g, d, r := gen.DisjointPaths(3, 1)
	in, err := instance.AdHoc(g, gen.Singletons(nodeset.Of(1)), d, r)
	if err != nil {
		return fmt.Errorf("attack: privacy fixture: %w", err)
	}
	listen := adversary.FromSlices([]int{2}, []int{3})
	plan, err := smt.NewPlan(in, listen)
	if err != nil {
		return fmt.Errorf("attack: privacy fixture is not SMT-feasible: %w", err)
	}
	full := nodeset.Empty()
	for i := range plan.Paths {
		full = full.Add(i)
	}

	cells := []privacyCell{{name: "lockstep"}}
	for i, schedName := range cfg.Schedules {
		cells = append(cells, privacyCell{
			name:     "async/" + schedName,
			schedule: schedName,
			seed:     eval.TrialSeed(cfg.Seed, 5000+i, 0),
		})
	}
	for i, budget := range cfg.MABudgets {
		cells = append(cells, privacyCell{
			name:     fmt.Sprintf("lockstep+ma/random(d=%d)", budget),
			maBudget: budget,
			maSeed:   eval.TrialSeed(cfg.Seed, 5500+i, 0),
			ma:       true,
		})
	}

	protos := []protocol.Protocol{smt.Proto{}, leakySMTProto{}}
	variants := []struct {
		name    string
		forward bool
	}{
		{byzantine.ListenerName, true},
		{byzantine.ListenerQuietName, false},
	}
	secrets := []network.Value{privacyX0, privacyX1}

	for _, coalition := range listen.Maximal() {
		if coalition.IsEmpty() {
			continue
		}
		for _, variant := range variants {
			for _, cell := range cells {
				for _, proto := range protos {
					var (
						views   [2]string
						indices [2]nodeset.Set
					)
					for s, secret := range secrets {
						log := &byzantine.ListenLog{}
						opts := protocol.Options{
							Engine:    network.Lockstep,
							MaxRounds: 32,
							Listen:    listen,
							Seed:      42,
							Corrupt:   byzantine.NewListeners(coalition, log, variant.forward),
						}
						if cell.schedule != "" {
							sched, err := network.NewScheduler(cell.schedule, cell.seed)
							if err != nil {
								return fmt.Errorf("attack: privacy battery: %w", err)
							}
							opts.Engine = network.Async
							opts.Scheduler = sched
						}
						if cell.ma {
							opts.MsgAdversary = network.MustMessageAdversary(network.MARandom, cell.maBudget, cell.maSeed)
							opts.MABudget = cell.maBudget
						}
						if _, err := protocol.Run(proto, in, secret, opts); err != nil {
							return fmt.Errorf("attack: privacy battery %s/%s/%s: %w",
								proto.Name(), variant.name, cell.name, err)
						}
						views[s], indices[s] = log.View(), log.ShareIndices()
					}

					var details []string
					for s := range secrets {
						if indices[s].Equal(full) {
							details = append(details,
								fmt.Sprintf("coalition observed every share index %v — the view XORs back to the secret", full))
							break
						}
					}
					// Suppression is payload-keyed, so under a message
					// adversary the paired delivered sets may legitimately
					// differ; the view-equality oracle applies to loss-free
					// cells only.
					dep := plan.Dependent()
					if !cell.ma && !indices[0].Contains(dep) && !indices[1].Contains(dep) && views[0] != views[1] {
						details = append(details,
							"paired views differ though the secret-dependent share was never heard")
					}
					for s, secret := range secrets {
						raw := string(secret)
						if strings.Contains(views[s], raw) || strings.Contains(views[s], hex.EncodeToString([]byte(raw))) {
							details = append(details, fmt.Sprintf("recorded view of run %d contains the secret", s))
							break
						}
					}

					if proto.Name() == leakyCanaryName {
						rep.SMTCanaryRuns += len(secrets)
						if len(details) > 0 {
							rep.SMTCanaryFlagged++
						}
						continue
					}
					rep.PrivacyRuns += len(secrets)
					for _, detail := range details {
						rep.PrivacyViolations = append(rep.PrivacyViolations, PrivacyViolation{
							Protocol: proto.Name(),
							Listen:   members(coalition),
							Variant:  variant.name,
							Engine:   cell.name,
							Detail:   detail,
						})
					}
				}
			}
		}
	}
	return nil
}

// leakyCanaryName is the privacy battery's unsafe-protocol name. Like the
// other canaries it is deliberately NOT in the protocol registry: it exists
// only to prove the privacy oracle has teeth.
const leakyCanaryName = "canary-smt-leaky"

// leakySMTProto is the honest SMT assembly with the dealer swapped for one
// that ships the plaintext secret as every "share" — reliability intact,
// privacy absent. Every listening coalition on any share path records a
// secret-dependent view, which the battery must flag.
type leakySMTProto struct{}

func (leakySMTProto) Name() string        { return leakyCanaryName }
func (leakySMTProto) Caps() protocol.Caps { return protocol.Caps{HonestPaths: true} }

func (leakySMTProto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	plan, err := smt.NewPlan(in, opts.Listen)
	if err != nil {
		return nil, err
	}
	procs := smt.NewProcesses(in, plan, xD, opts.Seed, opts.Corrupt)
	procs[in.Dealer] = &leakyDealer{plan: plan, x: xD}
	return procs, nil
}

// leakyDealer sends hex(secret) down every path instead of XOR shares.
type leakyDealer struct {
	plan smt.Plan
	x    network.Value
}

// Init implements network.Process.
func (d *leakyDealer) Init(out network.Outbox) {
	leak := hex.EncodeToString([]byte(d.x))
	for i, p := range d.plan.Paths {
		out(p[1], smt.ShareMsg{Idx: i, P: p, X: leak})
	}
}

// Round implements network.Process.
func (*leakyDealer) Round(int, []network.Message, network.Outbox) bool { return false }

// Decision implements network.Process.
func (*leakyDealer) Decision() (network.Value, bool) { return "", false }
