package adversary

import "rmt/internal/nodeset"

// Classic Hirt–Maurer solvability predicates. Q2(P, 𝒵) holds when no two
// admissible sets cover P; Q3 when no three do. These quantify protocol
// feasibility thresholds throughout the MPC/broadcast literature (e.g.
// perfectly secure MPC requires Q3; broadcast with signatures Q2), and the
// paper's cut conditions are their graph-localized descendants: a 𝒵-pair
// cut is exactly a cut set on which Q2 fails.

// Q2 reports whether no two sets of the structure cover the player set:
// ∀ Z1, Z2 ∈ 𝒵: Z1 ∪ Z2 ≠ P (as a superset check: P ⊄ Z1 ∪ Z2).
func (z Structure) Q2(players nodeset.Set) bool {
	max := z.Maximal()
	for _, m1 := range max {
		rest := players.Minus(m1)
		for _, m2 := range max {
			if rest.SubsetOf(m2) {
				return false
			}
		}
	}
	return true
}

// Q3 reports whether no three sets of the structure cover the player set.
func (z Structure) Q3(players nodeset.Set) bool {
	max := z.Maximal()
	for _, m1 := range max {
		rest1 := players.Minus(m1)
		for _, m2 := range max {
			rest2 := rest1.Minus(m2)
			for _, m3 := range max {
				if rest2.SubsetOf(m3) {
					return false
				}
			}
		}
	}
	return true
}

// CoversWith returns admissible sets Z1, Z2 whose union contains the given
// set, if any exist — the witness form of ¬Q2.
func (z Structure) CoversWith(target nodeset.Set) (z1, z2 nodeset.Set, ok bool) {
	max := z.Maximal()
	for _, m1 := range max {
		rest := target.Minus(m1)
		for _, m2 := range max {
			if rest.SubsetOf(m2) {
				return target.Intersect(m1), rest, true
			}
		}
	}
	return nodeset.Set{}, nodeset.Set{}, false
}
