package adversary

import (
	"rmt/internal/graph"
	"rmt/internal/nodeset"
)

// This file adds the second monotone family of Dowden's fully generalised
// adversary ("Secure Message Transmission in the Presence of a Fully
// Generalised Adversary", see PAPERS.md): alongside the corruption
// (disruption) structure 𝒵, a *listening* structure ℒ whose members are the
// node sets the adversary may eavesdrop on without otherwise interfering.
// Both families are ordinary Structures — monotone, antichain-stored,
// always containing ∅ — so ℒ = Trivial() means "no listening".
//
// Feasibility of secure (private + reliable) transmission splits into two
// cut conditions over the communication graph, checked separately so each
// failure carries its own witness:
//
//   - disruption tolerance: the corruptible ground ∪𝒵 must not separate D
//     from R — otherwise every D–R path can be disrupted and no share
//     routing survives;
//   - secrecy: for every admissible listening set L ∈ ℒ, the combined set
//     ∪𝒵 ∪ L must not separate D from R — otherwise the adversary can
//     listen on every surviving path at once and no share escapes it.
//
// The disruption condition is the L = ∅ instance of the secrecy condition,
// so with ℒ = {∅} the pair degenerates to plain reliability. The conditions
// quantify the disruption family by its ground because a one-shot protocol
// fixes its share routing before the adversary commits to a corruption set:
// any share path touching a corruptible node can be disrupted in some
// admissible execution.

// Generalised is Dowden's fully generalised adversary: a disruption family
// Z (the sets it may corrupt) paired with a listening family L (the sets it
// may eavesdrop on). Either family may be Trivial(), recovering the pure
// listening-only or corruption-only adversary.
type Generalised struct {
	Z Structure
	L Structure
}

// NewGeneralised pairs a corruption structure with a listening structure.
func NewGeneralised(z, l Structure) Generalised { return Generalised{Z: z, L: l} }

// String renders the pair, e.g. "Z=⟨{1}⟩ L=⟨{2}, {3}⟩".
func (a Generalised) String() string { return "Z=" + a.Z.String() + " L=" + a.L.String() }

// DisruptionCut checks the disruption-tolerance condition: it returns the
// corruptible ground and true when that ground separates d from r in g —
// the witness that reliable transmission over corruption-free paths is
// impossible. A trivial Z has ground ∅, which never separates two
// connected nodes.
func (a Generalised) DisruptionCut(g *graph.Graph, d, r int) (nodeset.Set, bool) {
	ground := a.Z.Ground()
	if ground.Contains(d) || ground.Contains(r) {
		// The model assumes an honest dealer and receiver; a family allowed
		// to corrupt either trivially disrupts every path.
		return ground, true
	}
	if g.HasHonestPath(d, r, ground) {
		return nodeset.Empty(), false
	}
	return ground, true
}

// SecrecyCut checks the secrecy condition: it returns the first maximal
// listening set L (in canonical antichain order) such that ∪Z ∪ L separates
// d from r, together with the combined cut, or found = false when every
// admissible listening set leaves some corruption-free path unheard. The
// trivial listening structure {∅} only reproduces the disruption condition
// — it never adds a cut of its own, so "no listening" can never make a
// feasible instance infeasible.
func (a Generalised) SecrecyCut(g *graph.Graph, d, r int) (cut, listen nodeset.Set, found bool) {
	ground := a.Z.Ground()
	for _, l := range a.L.Maximal() {
		combined := ground.Union(l)
		if combined.Contains(d) || combined.Contains(r) || !g.HasHonestPath(d, r, combined) {
			return combined, l, true
		}
	}
	return nodeset.Empty(), nodeset.Empty(), false
}

// Feasible reports whether secure message transmission from d to r is
// possible under the pair: neither the disruption cut nor any secrecy cut
// exists. Since ∅ ∈ ℒ always, the secrecy scan subsumes the disruption
// check whenever ℒ is trivial; both are run so each condition stays
// independently testable.
func (a Generalised) Feasible(g *graph.Graph, d, r int) bool {
	if _, cut := a.DisruptionCut(g, d, r); cut {
		return false
	}
	_, _, cut := a.SecrecyCut(g, d, r)
	return !cut
}

// CoversViews reports whether a single member of the family intersects
// every one of the given views — for a listening structure and the
// interiors of a share-routing path family, whether one admissible
// listening set hears every share. The witness set is returned when one
// exists. The ground cases are exact, never vacuous: an empty view
// collection has nothing to cover, and a view that is itself empty (a
// direct D–R edge has no interior) cannot be listened on, so in both cases
// no witness exists. In particular Trivial() = {∅} covers nothing: ∅
// intersects no non-empty view.
func (z Structure) CoversViews(views []nodeset.Set) (nodeset.Set, bool) {
	if len(views) == 0 {
		return nodeset.Empty(), false
	}
	for _, m := range z.antichain() {
		all := true
		for _, v := range views {
			if v.Intersect(m).IsEmpty() {
				all = false
				break
			}
		}
		if all {
			return m, true
		}
	}
	return nodeset.Empty(), false
}
