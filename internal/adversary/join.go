package adversary

import (
	"fmt"

	"rmt/internal/nodeset"
)

// Restricted is an adversary structure restricted to a domain of nodes:
// the pair (𝓔^A, A) from the paper's semilattice (Theorem 15). Player v's
// local knowledge Z_v is Restricted{Domain: V(γ(v)), Structure: Z^{V(γ(v))}}.
//
// Invariant: every maximal set of Structure is a subset of Domain.
type Restricted struct {
	Domain    nodeset.Set
	Structure Structure
}

// NewRestricted validates and builds a Restricted value.
func NewRestricted(domain nodeset.Set, z Structure) (Restricted, error) {
	for _, m := range z.Maximal() {
		if !m.SubsetOf(domain) {
			return Restricted{}, fmt.Errorf("adversary: maximal set %v outside domain %v", m, domain)
		}
	}
	return Restricted{Domain: domain, Structure: z}, nil
}

// Identity returns the ⊕-identity: the structure {∅} over the empty domain.
// Join(Identity(), r) == r for every r.
func Identity() Restricted {
	return Restricted{Domain: nodeset.Empty(), Structure: Trivial()}
}

// Contains reports membership in the restricted family.
func (r Restricted) Contains(s nodeset.Set) bool { return r.Structure.Contains(s) }

// Equal reports whether two restricted structures have the same domain and
// family.
func (r Restricted) Equal(other Restricted) bool {
	return r.Domain.Equal(other.Domain) && r.Structure.Equal(other.Structure)
}

// String renders the restricted structure with its domain.
func (r Restricted) String() string {
	return fmt.Sprintf("%v on %v", r.Structure, r.Domain)
}

// Join computes the paper's ⊕ operation (Definition 2):
//
//	𝓔^A ⊕ 𝓕^B = { Z1 ∪ Z2 | Z1 ∈ 𝓔^A, Z2 ∈ 𝓕^B, Z1 ∩ B = Z2 ∩ A }
//
// over the domain A ∪ B. The result is the maximal structure on A ∪ B that
// restricts to 𝓔^A on A and is consistent with 𝓕^B on B (Theorem 1): the
// worst-case joint adversary knowledge of two players.
//
// Implementation: on antichains, it suffices to combine maximal sets. For
// maximal M1 ∈ 𝓔^A, M2 ∈ 𝓕^B, the ⊆-largest admissible union with Z1 ⊆ M1,
// Z2 ⊆ M2 is obtained by agreeing on S = M1 ∩ M2 (any element of Z1 inside
// B must also lie in Z2 ⊆ M2 and vice versa), giving the candidate
// (M1 \ B) ∪ (M2 \ A) ∪ (M1 ∩ M2). Every member of the ⊕-family is a subset
// of such a candidate, so the result's maximal sets are the maximal
// candidates. This is O(|𝓔|·|𝓕|) set operations instead of exponential
// member enumeration; JoinBruteForce in the tests cross-checks it.
func Join(e, f Restricted) Restricted {
	a, b := e.Domain, f.Domain
	me, mf := e.Structure.Maximal(), f.Structure.Maximal()
	candidates := make([]nodeset.Set, 0, len(me)*len(mf))
	// The candidate (M1\B) ∪ (M2\A) ∪ (M1∩M2) equals M1\(B\M2) ∪ (M2\A),
	// since M1\(B\M2) = (M1\B) ∪ (M1∩M2). Hoisting the per-M2 pieces out of
	// the pair loop leaves two set operations (one allocation) per pair.
	m2NotA := make([]nodeset.Set, len(mf))
	bNotM2 := make([]nodeset.Set, len(mf))
	for j, m2 := range mf {
		m2NotA[j] = m2.Minus(a)
		bNotM2[j] = b.Minus(m2)
	}
	for _, m1 := range me {
		for j := range mf {
			cand := m1.Minus(bNotM2[j])
			cand.MutateUnion(m2NotA[j])
			candidates = append(candidates, cand)
		}
	}
	return Restricted{
		Domain:    a.Union(b),
		Structure: Structure{maximal: reduceToAntichainOwned(candidates)},
	}
}

// JoinAll folds ⊕ over the given restricted structures; the fold of nothing
// is Identity(). Since ⊕ is associative and commutative (Theorems 11, 13)
// the order does not matter.
func JoinAll(rs ...Restricted) Restricted {
	acc := Identity()
	for _, r := range rs {
		acc = Join(acc, r)
	}
	return acc
}

// LocalKnowledge maps each node to its restricted local structure Z_v.
type LocalKnowledge map[int]Restricted

// JointOf computes Z_B = ⊕_{v ∈ B} Z_v for a node set B. Nodes of B without
// an entry in the map contribute the identity (no knowledge).
func (lk LocalKnowledge) JointOf(b nodeset.Set) Restricted {
	acc := Identity()
	b.ForEach(func(v int) bool {
		if r, ok := lk[v]; ok {
			acc = Join(acc, r)
		}
		return true
	})
	return acc
}
