package adversary

import (
	"math/rand"
	"sync"
	"testing"

	"rmt/internal/nodeset"
)

func randomLocalKnowledge(r *rand.Rand, n int) LocalKnowledge {
	lk := LocalKnowledge{}
	for v := 0; v < n; v++ {
		if r.Intn(4) == 0 {
			continue // some nodes contribute nothing (identity)
		}
		dom := nodeset.Of(v)
		for u := 0; u < n; u++ {
			if r.Intn(2) == 0 {
				dom = dom.Add(u)
			}
		}
		lk[v] = Restricted{Domain: dom, Structure: Random(r, dom, 1+r.Intn(3), 0.4)}
	}
	return lk
}

func randomSubsetUpTo(r *rand.Rand, n int) nodeset.Set {
	b := nodeset.Empty()
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			b = b.Add(v)
		}
	}
	return b
}

// TestJoinCacheMatchesDirectFold is the memoization soundness property: the
// incrementally cached fold must agree with LocalKnowledge.JointOf on every
// query, including repeat and prefix-sharing queries where the cache serves
// partial folds it computed earlier. Soundness rests on ⊕ being associative,
// commutative and idempotent (Theorems 11, 13–15).
func TestJoinCacheMatchesDirectFold(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(5)
		lk := randomLocalKnowledge(r, n)
		cache := NewJoinCache(lk)
		queries := make([]nodeset.Set, 40)
		for i := range queries {
			if i > 0 && r.Intn(3) == 0 {
				queries[i] = queries[r.Intn(i)] // repeat an earlier query
			} else {
				queries[i] = randomSubsetUpTo(r, n)
			}
		}
		for i, b := range queries {
			got := cache.JointOf(b)
			want := lk.JointOf(b)
			if !got.Equal(want) {
				t.Fatalf("trial %d query %d: JoinCache(%v) = %v, want %v", trial, i, b, got, want)
			}
		}
		if cache.Len() == 0 {
			t.Fatalf("trial %d: cache stayed empty after %d queries", trial, len(queries))
		}
	}
}

// TestJoinCacheConcurrent hammers one cache from many goroutines; run under
// -race this is the concurrency-safety smoke test for the shared memo.
func TestJoinCacheConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 6
	lk := randomLocalKnowledge(r, n)
	cache := NewJoinCache(lk)
	queries := make([]nodeset.Set, 32)
	for i := range queries {
		queries[i] = randomSubsetUpTo(r, n)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range queries {
				if got, want := cache.JointOf(b), lk.JointOf(b); !got.Equal(want) {
					errs <- got.String() + " != " + want.String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
