package adversary

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rmt/internal/nodeset"
)

func TestTrivial(t *testing.T) {
	z := Trivial()
	if !z.Contains(nodeset.Empty()) {
		t.Fatal("Trivial misses ∅")
	}
	if z.Contains(nodeset.Of(0)) {
		t.Fatal("Trivial contains {0}")
	}
	if z.NumMaximal() != 1 || z.NumMembers() != 1 {
		t.Fatal("Trivial wrong size")
	}
}

func TestFromSetsAntichain(t *testing.T) {
	z := FromSets(
		nodeset.Of(1, 2),
		nodeset.Of(1),    // dominated
		nodeset.Of(3),    //
		nodeset.Of(1, 2), // duplicate
		nodeset.Empty())  // dominated
	max := z.Maximal()
	if len(max) != 2 {
		t.Fatalf("maximal = %v", max)
	}
	if !max[0].Equal(nodeset.Of(3)) || !max[1].Equal(nodeset.Of(1, 2)) {
		t.Fatalf("maximal order = %v", max)
	}
}

func TestContainsMonotone(t *testing.T) {
	z := FromSlices([]int{1, 2, 3}, []int{4, 5})
	tests := []struct {
		s    nodeset.Set
		want bool
	}{
		{nodeset.Empty(), true},
		{nodeset.Of(1), true},
		{nodeset.Of(1, 3), true},
		{nodeset.Of(1, 2, 3), true},
		{nodeset.Of(4, 5), true},
		{nodeset.Of(1, 4), false}, // straddles two maximal sets
		{nodeset.Of(6), false},
	}
	for _, tt := range tests {
		if got := z.Contains(tt.s); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestGround(t *testing.T) {
	z := FromSlices([]int{1, 2}, []int{4})
	if !z.Ground().Equal(nodeset.Of(1, 2, 4)) {
		t.Fatalf("Ground = %v", z.Ground())
	}
	if !Trivial().Ground().IsEmpty() {
		t.Fatal("Trivial ground not empty")
	}
}

func TestEqualAndSubfamily(t *testing.T) {
	a := FromSlices([]int{1, 2}, []int{3})
	b := FromSlices([]int{3}, []int{1, 2}, []int{1})
	if !a.Equal(b) {
		t.Fatal("canonicalization failed: a != b")
	}
	c := FromSlices([]int{1, 2, 3})
	if a.Equal(c) {
		t.Fatal("different families Equal")
	}
	if !a.SubfamilyOf(c) {
		t.Fatal("a should be a subfamily of c")
	}
	if c.SubfamilyOf(a) {
		t.Fatal("c is not a subfamily of a")
	}
}

func TestUnionWithSet(t *testing.T) {
	a := FromSlices([]int{1})
	b := FromSlices([]int{2, 3})
	u := a.Union(b)
	if !u.Contains(nodeset.Of(1)) || !u.Contains(nodeset.Of(2, 3)) {
		t.Fatal("Union lost members")
	}
	if u.Contains(nodeset.Of(1, 2)) {
		t.Fatal("Union invented members")
	}
	w := a.WithSet(nodeset.Of(5, 6))
	if !w.Contains(nodeset.Of(5, 6)) || !w.Contains(nodeset.Of(6)) {
		t.Fatal("WithSet missing monotone closure")
	}
}

func TestRestrict(t *testing.T) {
	z := FromSlices([]int{1, 2, 3}, []int{4})
	r := z.Restrict(nodeset.Of(2, 3, 4))
	// {1,2,3}∩A = {2,3}; {4}∩A = {4}.
	if !r.Equal(FromSlices([]int{2, 3}, []int{4})) {
		t.Fatalf("Restrict = %v", r)
	}
	// Restriction to a disjoint set collapses to {∅}.
	if !z.Restrict(nodeset.Of(9)).Equal(Trivial()) {
		t.Fatal("disjoint restrict not trivial")
	}
}

func TestRestrictToDomainInvariant(t *testing.T) {
	z := FromSlices([]int{1, 2, 3})
	r := z.RestrictTo(nodeset.Of(2, 3))
	if !r.Domain.Equal(nodeset.Of(2, 3)) {
		t.Fatal("domain wrong")
	}
	for _, m := range r.Structure.Maximal() {
		if !m.SubsetOf(r.Domain) {
			t.Fatalf("maximal %v outside domain", m)
		}
	}
}

func TestNewRestrictedValidation(t *testing.T) {
	if _, err := NewRestricted(nodeset.Of(1), FromSlices([]int{1, 2})); err == nil {
		t.Fatal("NewRestricted accepted out-of-domain structure")
	}
	if _, err := NewRestricted(nodeset.Of(1, 2), FromSlices([]int{1})); err != nil {
		t.Fatalf("NewRestricted rejected valid input: %v", err)
	}
}

func TestMembersEnumeration(t *testing.T) {
	z := FromSlices([]int{1, 2}, []int{2, 3})
	// Members: ∅,{1},{2},{1,2},{3},{2,3} = 6.
	if got := z.NumMembers(); got != 6 {
		t.Fatalf("NumMembers = %d, want 6", got)
	}
	seen := map[string]bool{}
	z.Members(func(s nodeset.Set) bool {
		if seen[s.Key()] {
			t.Fatalf("duplicate member %v", s)
		}
		seen[s.Key()] = true
		if !z.Contains(s) {
			t.Fatalf("enumerated non-member %v", s)
		}
		return true
	})
}

func TestMembersEarlyStop(t *testing.T) {
	z := FromSlices([]int{1, 2, 3})
	n := 0
	z.Members(func(nodeset.Set) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop after %d", n)
	}
}

func TestString(t *testing.T) {
	z := FromSlices([]int{2, 3}, []int{1})
	if got := z.String(); got != "⟨{1}, {2, 3}⟩" {
		t.Fatalf("String = %q", got)
	}
}

func TestGlobalThreshold(t *testing.T) {
	u := nodeset.Of(1, 2, 3, 4)
	z := GlobalThreshold(u, 2)
	if z.NumMaximal() != 6 { // C(4,2)
		t.Fatalf("NumMaximal = %d, want 6", z.NumMaximal())
	}
	if !z.Contains(nodeset.Of(1, 4)) || z.Contains(nodeset.Of(1, 2, 3)) {
		t.Fatal("threshold membership wrong")
	}
	if !GlobalThreshold(u, 0).Equal(Trivial()) {
		t.Fatal("t=0 not trivial")
	}
	if !GlobalThreshold(u, 4).Equal(FromSets(u)) {
		t.Fatal("t=n not full")
	}
	if !GlobalThreshold(u, 9).Equal(FromSets(u)) {
		t.Fatal("t>n not full")
	}
}

func TestTLocal(t *testing.T) {
	// Star: center 0, leaves 1..4. 1-local ⇒ at most one corrupted node in
	// N(0) = {1,2,3,4}, at most one in each N(leaf) = {0}.
	nbrs := func(v int) nodeset.Set {
		if v == 0 {
			return nodeset.Of(1, 2, 3, 4)
		}
		return nodeset.Of(0)
	}
	u := nodeset.Of(0, 1, 2, 3, 4)
	z := TLocal(u, nbrs, 1)
	if !z.Contains(nodeset.Of(0, 1)) {
		t.Fatal("t-local rejects {0,1}")
	}
	if z.Contains(nodeset.Of(1, 2)) {
		t.Fatal("t-local accepts two leaves (violates N(0) bound)")
	}
}

func TestFromPredicateMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(4)
		u := nodeset.Universe(n)
		bound := 1 + r.Intn(3)
		pred := func(s nodeset.Set) bool { return s.Len() <= bound }
		z := FromPredicate(u, pred)
		want := GlobalThreshold(u, bound)
		if !z.Equal(want) {
			t.Fatalf("trial %d: FromPredicate = %v, want %v", trial, z, want)
		}
	}
}

func TestRandomStructureWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	u := nodeset.Universe(8)
	z := Random(r, u, 5, 0.3)
	if !z.Ground().SubsetOf(u) {
		t.Fatal("Random escaped universe")
	}
	// Antichain property.
	max := z.Maximal()
	for i := range max {
		for j := range max {
			if i != j && max[i].SubsetOf(max[j]) {
				t.Fatalf("not an antichain: %v ⊆ %v", max[i], max[j])
			}
		}
	}
}

type genStructure struct {
	Z Structure
	U nodeset.Set
}

func (genStructure) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(7)
	u := nodeset.Universe(n)
	return reflect.ValueOf(genStructure{Z: Random(r, u, 1+r.Intn(5), 0.2+r.Float64()*0.5), U: u})
}

func TestQuickRestrictIdempotent(t *testing.T) {
	f := func(g genStructure) bool {
		r := g.Z.Restrict(g.U)
		return r.Equal(g.Z) // restricting to the universe is the identity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRestrictComposes(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	f := func(g genStructure) bool {
		a := randomSubset(rnd, g.U)
		b := randomSubset(rnd, g.U)
		// (Z^A)^{A∩B} == Z^{A∩B}
		lhs := g.Z.Restrict(a).Restrict(a.Intersect(b))
		rhs := g.Z.Restrict(a.Intersect(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(a, b genStructure) bool {
		u := a.Z.Union(b.Z)
		return a.Z.SubfamilyOf(u) && b.Z.SubfamilyOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomSubset(r *rand.Rand, u nodeset.Set) nodeset.Set {
	s := nodeset.Empty()
	u.ForEach(func(v int) bool {
		if r.Intn(2) == 0 {
			s = s.Add(v)
		}
		return true
	})
	return s
}
