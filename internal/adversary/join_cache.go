package adversary

import (
	"sync"

	"rmt/internal/nodeset"
)

// JoinCache memoizes the ⊕-fold Z_B = ⊕_{v ∈ B} Z_v across calls, keyed by
// nodeset.Set.Key(). Because ⊕ is commutative, associative and idempotent
// (Theorems 11 and 13–15 make restricted structures a semilattice), the fold
// can be computed incrementally as Z_B = Z_{B \ {max B}} ⊕ Z_{max B}, and
// every sub-fold is shared between overlapping arguments. Candidate
// enumerations that grow a component one node at a time (FindRMTCut,
// receiver-side cover checks, FindZppCut) hit the cache on all but the last
// node of each candidate.
//
// The local-knowledge function must be pure: each node's Restricted is
// fetched at most once and retained. A JoinCache is safe for concurrent use.
type JoinCache struct {
	mu    sync.Mutex
	local func(v int) (Restricted, bool)
	memo  map[string]Restricted
	kbuf  []byte // scratch for allocation-free memo probes (guarded by mu)
}

// NewJoinCache returns a cache over a LocalKnowledge map. Nodes without an
// entry contribute the identity, matching LocalKnowledge.JointOf.
func NewJoinCache(lk LocalKnowledge) *JoinCache {
	return NewJoinCacheFunc(func(v int) (Restricted, bool) {
		r, ok := lk[v]
		return r, ok
	})
}

// NewJoinCacheFunc returns a cache over an arbitrary per-node knowledge
// function; ok=false means the node contributes the identity.
func NewJoinCacheFunc(local func(v int) (Restricted, bool)) *JoinCache {
	return &JoinCache{local: local, memo: make(map[string]Restricted)}
}

// JointOf returns ⊕_{v ∈ b} Z_v, reusing every previously computed
// sub-fold. The fold order (increasing node ID) differs from a left fold
// over arbitrary orders only up to the semilattice laws, so the result
// equals LocalKnowledge.JointOf exactly (canonical antichains are unique).
func (c *JoinCache) JointOf(b nodeset.Set) Restricted {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jointOf(b)
}

func (c *JoinCache) jointOf(b nodeset.Set) Restricted {
	if b.IsEmpty() {
		return Identity()
	}
	// Probe with a reused byte buffer: map lookups with string(bytes) do not
	// allocate, so cache hits — the common case for candidate enumerations —
	// cost one hash and no garbage. The key string is materialized only when
	// a new fold is inserted.
	c.kbuf = b.AppendKey(c.kbuf[:0])
	if r, ok := c.memo[string(c.kbuf)]; ok {
		return r
	}
	v := b.Max()
	acc := c.jointOf(b.Remove(v))
	if r, ok := c.local(v); ok {
		acc = Join(acc, r)
	}
	// jointOf invalidated kbuf; rebuild the key for the insert.
	c.memo[b.Key()] = acc
	return acc
}

// Len returns the number of memoized folds (for tests and diagnostics).
func (c *JoinCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.memo)
}
