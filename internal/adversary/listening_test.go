package adversary

import (
	"testing"

	"rmt/internal/graph"
	"rmt/internal/nodeset"
)

// TestZeroValueStructureIsTrivial pins the ground-case bugfix: a zero
// Structure{} — an unset Options or request field — must behave exactly
// like Trivial(), upholding the package invariant that every family
// contains ∅. Before the fix Contains(∅) was false, Maximal() was empty and
// Equal(Trivial()) failed, so predicates iterating the antichain drew
// vacuous conclusions on default-valued fields.
func TestZeroValueStructureIsTrivial(t *testing.T) {
	var zero Structure
	triv := Trivial()
	if !zero.Contains(nodeset.Empty()) {
		t.Error("zero Structure does not contain ∅")
	}
	if got := zero.NumMaximal(); got != 1 {
		t.Errorf("zero Structure has %d maximal sets, want 1", got)
	}
	if len(zero.Maximal()) != 1 || !zero.Maximal()[0].IsEmpty() {
		t.Errorf("zero Structure maximal sets = %v, want [∅]", zero.Maximal())
	}
	if !zero.Equal(triv) || !triv.Equal(zero) {
		t.Error("zero Structure != Trivial()")
	}
	if !zero.Ground().IsEmpty() {
		t.Errorf("zero Structure ground = %v, want ∅", zero.Ground())
	}
	if !zero.SubfamilyOf(triv) || !triv.SubfamilyOf(zero) {
		t.Error("zero Structure and Trivial() are not mutual subfamilies")
	}
	if got := zero.Union(FromSlices([]int{1})); !got.Equal(FromSlices([]int{1})) {
		t.Errorf("zero ∪ ⟨{1}⟩ = %v, want ⟨{1}⟩", got)
	}
	if got := zero.NumMembers(); got != 1 {
		t.Errorf("zero Structure has %d members, want 1 (just ∅)", got)
	}
	if got := zero.String(); got != triv.String() {
		t.Errorf("zero Structure renders %q, want %q", got, triv.String())
	}
}

// TestRestrictGroundCases tables the Restrict/RestrictTo edge cases around
// empty sets and trivial/full-ground families.
func TestRestrictGroundCases(t *testing.T) {
	full := FromSlices([]int{1, 2}, []int{3})
	cases := []struct {
		name string
		z    Structure
		a    nodeset.Set
		want Structure
	}{
		{"zero value to empty domain", Structure{}, nodeset.Empty(), Trivial()},
		{"zero value to full domain", Structure{}, nodeset.Of(1, 2, 3), Trivial()},
		{"trivial to empty domain", Trivial(), nodeset.Empty(), Trivial()},
		{"trivial to full domain", Trivial(), nodeset.Of(1, 2, 3), Trivial()},
		{"full ground to empty domain", full, nodeset.Empty(), Trivial()},
		{"full ground to disjoint domain", full, nodeset.Of(7, 8), Trivial()},
		{"full ground to own ground", full, nodeset.Of(1, 2, 3), full},
		{"full ground to partial domain", full, nodeset.Of(2, 3), FromSlices([]int{2}, []int{3})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.z.Restrict(tc.a)
			if !got.Equal(tc.want) {
				t.Errorf("Restrict(%v, %v) = %v, want %v", tc.z, tc.a, got, tc.want)
			}
			if !got.Contains(nodeset.Empty()) {
				t.Error("restriction lost ∅ membership")
			}
			r := tc.z.RestrictTo(tc.a)
			if !r.Structure.Equal(tc.want) || !r.Domain.Equal(tc.a) {
				t.Errorf("RestrictTo(%v, %v) = (%v over %v)", tc.z, tc.a, r.Structure, r.Domain)
			}
		})
	}
}

// TestCoversViewsGroundCases pins that covering is never vacuous: L = {∅}
// ("no listening") covers nothing, no family covers an empty view
// collection, and an interior-free view (a direct D–R edge) is unhearable.
func TestCoversViewsGroundCases(t *testing.T) {
	cases := []struct {
		name    string
		l       Structure
		views   []nodeset.Set
		covered bool
		witness nodeset.Set
	}{
		{"trivial family never covers", Trivial(), []nodeset.Set{nodeset.Of(1)}, false, nodeset.Empty()},
		{"zero-value family never covers", Structure{}, []nodeset.Set{nodeset.Of(1)}, false, nodeset.Empty()},
		{"no views, nothing to cover", FromSlices([]int{1, 2}), nil, false, nodeset.Empty()},
		{"empty view is unhearable", FromSlices([]int{1, 2}), []nodeset.Set{nodeset.Of(1), nodeset.Empty()}, false, nodeset.Empty()},
		{"single covering set", FromSlices([]int{1, 2}), []nodeset.Set{nodeset.Of(1), nodeset.Of(2, 3)}, true, nodeset.Of(1, 2)},
		{"split family misses one view", FromSlices([]int{1}, []int{2}), []nodeset.Set{nodeset.Of(1), nodeset.Of(2)}, false, nodeset.Empty()},
		{"second maximal set covers", FromSlices([]int{1}, []int{2, 3}), []nodeset.Set{nodeset.Of(2), nodeset.Of(3, 4)}, true, nodeset.Of(2, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, ok := tc.l.CoversViews(tc.views)
			if ok != tc.covered {
				t.Fatalf("CoversViews = %v, want %v", ok, tc.covered)
			}
			if ok && !w.Equal(tc.witness) {
				t.Errorf("witness = %v, want %v", w, tc.witness)
			}
		})
	}
}

// TestGeneralisedCuts checks the two cut conditions on the three-relay
// graph 0–{1,2,3}–4: each failure mode produces its own witness, and the
// trivial families never cut.
func TestGeneralisedCuts(t *testing.T) {
	g, err := graph.ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		adv        Generalised
		disrupted  bool
		secrecyCut bool
		feasible   bool
	}{
		{"all trivial", NewGeneralised(Trivial(), Trivial()), false, false, true},
		{"zero-value pair", Generalised{}, false, false, true},
		{"corruption only, tolerable", NewGeneralised(FromSlices([]int{1}), Trivial()), false, false, true},
		{"corruption ground separates", NewGeneralised(FromSlices([]int{1}, []int{2}, []int{3}), Trivial()), true, true, false},
		{"listening only, escapable", NewGeneralised(Trivial(), FromSlices([]int{1, 2})), false, false, true},
		{"listening covers all paths", NewGeneralised(Trivial(), FromSlices([]int{1, 2, 3})), false, true, false},
		{"split listening, each escapable", NewGeneralised(Trivial(), FromSlices([]int{1, 2}, []int{2, 3})), false, false, true},
		{"combined cut only", NewGeneralised(FromSlices([]int{1}), FromSlices([]int{2, 3})), false, true, false},
		{"corruptible receiver", NewGeneralised(FromSlices([]int{4}), Trivial()), true, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, disrupted := tc.adv.DisruptionCut(g, 0, 4)
			if disrupted != tc.disrupted {
				t.Errorf("DisruptionCut found = %v, want %v", disrupted, tc.disrupted)
			}
			cut, listen, found := tc.adv.SecrecyCut(g, 0, 4)
			if found != tc.secrecyCut {
				t.Errorf("SecrecyCut found = %v, want %v", found, tc.secrecyCut)
			}
			if found {
				if !listen.SubsetOf(tc.adv.L.Ground()) {
					t.Errorf("secrecy witness %v is not an admissible listening set", listen)
				}
				if !tc.adv.Z.Ground().Union(listen).Equal(cut) {
					t.Errorf("secrecy cut %v != ground ∪ %v", cut, listen)
				}
			}
			if got := tc.adv.Feasible(g, 0, 4); got != tc.feasible {
				t.Errorf("Feasible = %v, want %v", got, tc.feasible)
			}
		})
	}
}
