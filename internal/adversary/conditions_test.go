package adversary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rmt/internal/nodeset"
)

func TestQ2(t *testing.T) {
	p := nodeset.Of(1, 2, 3)
	tests := []struct {
		name string
		z    Structure
		want bool
	}{
		{"trivial", Trivial(), true},
		{"threshold-1 of 3", GlobalThreshold(p, 1), true},
		{"threshold-2 of 3", GlobalThreshold(p, 2), false}, // {1,2} ∪ {3} covers... {1,2} ∪ {2,3}
		{"two covering halves", FromSlices([]int{1, 2}, []int{3}), false},
		{"one big set", FromSlices([]int{1, 2, 3}), false},
		{"non-covering pair", FromSlices([]int{1}, []int{2}), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.z.Q2(p); got != tt.want {
				t.Errorf("Q2 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestQ3(t *testing.T) {
	p := nodeset.Of(1, 2, 3)
	if !GlobalThreshold(p, 0).Q3(p) {
		t.Error("t=0 fails Q3")
	}
	if GlobalThreshold(p, 1).Q3(p) {
		t.Error("t=1 of n=3 satisfies Q3 (three singletons cover)")
	}
	// n = 4, t = 1: three singletons cannot cover 4 players.
	p4 := nodeset.Of(1, 2, 3, 4)
	if !GlobalThreshold(p4, 1).Q3(p4) {
		t.Error("t=1 of n=4 fails Q3")
	}
}

func TestThresholdQConditions(t *testing.T) {
	// Classic: Q2 ⟺ n > 2t, Q3 ⟺ n > 3t for threshold structures.
	for n := 2; n <= 7; n++ {
		p := nodeset.Universe(n)
		for thr := 0; thr <= 3; thr++ {
			z := GlobalThreshold(p, thr)
			if got, want := z.Q2(p), n > 2*thr; got != want {
				t.Errorf("n=%d t=%d: Q2 = %v, want %v", n, thr, got, want)
			}
			if got, want := z.Q3(p), n > 3*thr; got != want {
				t.Errorf("n=%d t=%d: Q3 = %v, want %v", n, thr, got, want)
			}
		}
	}
}

func TestCoversWith(t *testing.T) {
	z := FromSlices([]int{1, 2}, []int{3})
	target := nodeset.Of(1, 2, 3)
	z1, z2, ok := z.CoversWith(target)
	if !ok {
		t.Fatal("no cover found")
	}
	if !z1.Union(z2).Equal(target) {
		t.Fatalf("cover %v ∪ %v != %v", z1, z2, target)
	}
	if !z.Contains(z1) || !z.Contains(z2) {
		t.Fatal("cover parts not admissible")
	}
	if _, _, ok := FromSlices([]int{1}).CoversWith(target); ok {
		t.Fatal("phantom cover")
	}
}

func TestQuickQ2MatchesCoversWith(t *testing.T) {
	rnd := rand.New(rand.NewSource(44))
	f := func(g genStructure) bool {
		target := randomSubset(rnd, g.U)
		_, _, covered := g.Z.CoversWith(target)
		return g.Z.Q2(target) == !covered
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQ3ImpliesQ2(t *testing.T) {
	// Q3 ⇒ Q2 whenever ∅ ∈ 𝒵 (always true here): a 2-cover extends to a
	// 3-cover with ∅.
	rnd := rand.New(rand.NewSource(45))
	f := func(g genStructure) bool {
		target := randomSubset(rnd, g.U)
		if g.Z.Q3(target) && !g.Z.Q2(target) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
