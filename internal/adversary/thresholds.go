package adversary

import (
	"math/rand"

	"rmt/internal/nodeset"
)

// GlobalThreshold returns the global threshold structure: every subset of
// the universe with at most t members. Its maximal sets are the t-subsets
// (or the whole universe when t ≥ |universe|). This is the classic
// Lamport–Shostak–Pease adversary as a special case of the general model.
func GlobalThreshold(universe nodeset.Set, t int) Structure {
	if t <= 0 {
		return Trivial()
	}
	members := universe.Members()
	if t >= len(members) {
		return FromSets(universe)
	}
	var maximal []nodeset.Set
	// Enumerate all t-subsets of the universe.
	idx := make([]int, t)
	for i := range idx {
		idx[i] = i
	}
	for {
		s := nodeset.Empty()
		for _, i := range idx {
			s = s.Add(members[i])
		}
		maximal = append(maximal, s)
		// Next combination.
		i := t - 1
		for i >= 0 && idx[i] == len(members)-t+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < t; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return FromSets(maximal...)
}

// NeighborhoodFn abstracts the neighborhood oracle needed by the t-local
// model, avoiding a dependency on the graph package.
type NeighborhoodFn func(v int) nodeset.Set

// TLocal returns the t-locally bounded structure on the given universe:
// all sets T ⊆ universe with |T ∩ N(v)| ≤ t for every node v. This is
// Koo's adversary model, under which CPA was introduced. The construction
// enumerates subsets of the corruptible ground set and is exponential; it
// is meant for the small instances used in tests and experiments, and
// panics if the universe exceeds 24 nodes.
func TLocal(universe nodeset.Set, neighbors NeighborhoodFn, t int) Structure {
	pred := func(s nodeset.Set) bool {
		ok := true
		universe.ForEach(func(v int) bool {
			if s.Intersect(neighbors(v)).Len() > t {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	return FromPredicate(universe, pred)
}

// FromPredicate returns the structure containing every subset of the
// universe satisfying pred. pred must be downward closed (if pred(S) then
// pred(S') for S' ⊆ S); the function does not verify this. Exponential in
// |universe|; panics above 24 nodes.
func FromPredicate(universe nodeset.Set, pred func(nodeset.Set) bool) Structure {
	if universe.Len() > 24 {
		panic("adversary: FromPredicate universe too large")
	}
	// Collect satisfying sets that are locally maximal: S satisfies pred
	// but S+v does not, for every v ∈ universe \ S. For a downward-closed
	// predicate these are exactly the maximal members.
	var maximal []nodeset.Set
	var rec func(s nodeset.Set, candidates []int)
	rec = func(s nodeset.Set, candidates []int) {
		extended := false
		for i, v := range candidates {
			grown := s.Add(v)
			if pred(grown) {
				extended = true
				rec(grown, candidates[i+1:])
			}
		}
		if !extended && isMaximalUnder(s, universe, pred) {
			maximal = append(maximal, s)
		}
	}
	if !pred(nodeset.Empty()) {
		return Trivial()
	}
	rec(nodeset.Empty(), universe.Members())
	if len(maximal) == 0 {
		return Trivial()
	}
	return FromSets(maximal...)
}

func isMaximalUnder(s, universe nodeset.Set, pred func(nodeset.Set) bool) bool {
	ok := true
	universe.Minus(s).ForEach(func(v int) bool {
		if pred(s.Add(v)) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Random returns a random structure over the universe with the given number
// of maximal-set candidates, each drawn by including every universe node
// with probability density. Used by generators and property tests.
func Random(r *rand.Rand, universe nodeset.Set, numSets int, density float64) Structure {
	members := universe.Members()
	sets := make([]nodeset.Set, 0, numSets)
	for i := 0; i < numSets; i++ {
		s := nodeset.Empty()
		for _, v := range members {
			if r.Float64() < density {
				s = s.Add(v)
			}
		}
		sets = append(sets, s)
	}
	return FromSets(sets...)
}
