// Package adversary implements general (Hirt–Maurer) adversary structures
// and the paper's joint-view operation ⊕ on restricted structures.
//
// An adversary structure Z is a monotone family of subsets of the player
// set: if Z ∈ 𝒵 and Z' ⊆ Z then Z' ∈ 𝒵. A Structure stores only the maximal
// sets of the family (an antichain); monotonicity is implicit, so membership
// is "subset of some maximal set". Every Structure contains the empty set —
// the adversary may always corrupt nobody — so the antichain is never empty
// (the weakest structure is {∅}, represented by the single maximal set ∅).
//
// A Restricted value pairs a structure with the node set it is restricted
// to. Restricted structures are what players exchange: node v's local
// knowledge is Z_v = Z^{V(γ(v))}, a structure over the nodes of its view.
// The ⊕ operation (Definition 2 of the paper) combines two restricted
// structures into the maximal structure over the union of their domains
// that is consistent with both — the joint view.
package adversary

import (
	"sort"
	"strings"

	"rmt/internal/nodeset"
)

// Structure is a monotone family of node sets, stored as the antichain of
// its maximal sets in canonical order. The zero value behaves as Trivial()
// — the family {∅} — so an unset Structure field means "no corruption"
// ("no listening" for listening structures), never an invalid family.
// Structures are immutable.
type Structure struct {
	maximal []nodeset.Set
}

// trivialAntichain is the canonical antichain of Trivial(), shared by every
// normalized zero value. Callers only ever read antichains, so sharing is
// safe.
var trivialAntichain = []nodeset.Set{nodeset.Empty()}

// antichain returns the maximal sets, normalizing the zero value to {∅}.
// A zero Structure{} (an unset Options or request field) used to violate
// the package invariant that every family contains ∅: Contains(∅) returned
// false and Maximal() was empty, so the ground-case predicates — exactly
// the ones the secrecy conditions exercise with L = {∅} — drew vacuous
// conclusions. Every method goes through this accessor instead of touching
// z.maximal directly.
func (z Structure) antichain() []nodeset.Set {
	if len(z.maximal) == 0 {
		return trivialAntichain
	}
	return z.maximal
}

// Trivial returns the structure {∅}: the adversary can corrupt no one.
func Trivial() Structure {
	return Structure{maximal: []nodeset.Set{nodeset.Empty()}}
}

// FromSets returns the monotone closure of the given sets (plus ∅).
// Duplicates and dominated sets are dropped; the result is canonical.
func FromSets(sets ...nodeset.Set) Structure {
	return Structure{maximal: reduceToAntichain(sets)}
}

// FromSlices is FromSets with each set given as a slice of node IDs.
func FromSlices(sets ...[]int) Structure {
	ns := make([]nodeset.Set, len(sets))
	for i, s := range sets {
		ns[i] = nodeset.FromSlice(s)
	}
	return FromSets(ns...)
}

// reduceToAntichain sorts, dedups and removes dominated sets. An empty
// input yields the antichain {∅} so the family always contains ∅.
func reduceToAntichain(sets []nodeset.Set) []nodeset.Set {
	cp := make([]nodeset.Set, len(sets))
	copy(cp, sets)
	return reduceToAntichainOwned(cp)
}

// reduceToAntichainOwned is reduceToAntichain taking ownership of its
// argument: the slice is sorted and filtered in place, so callers must pass
// a slice they will not use again. It sits under Union, Restrict and every
// ⊕, so the domination scan is allocation-free: Compare orders by
// cardinality first, hence after the descending sort duplicates are
// adjacent and only the strictly-larger prefix of kept sets can dominate a
// distinct candidate.
func reduceToAntichainOwned(sets []nodeset.Set) []nodeset.Set {
	if len(sets) == 0 {
		return []nodeset.Set{nodeset.Empty()}
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Compare(sets[j]) > 0 })
	max := sets[:0]
	for _, s := range sets {
		if len(max) > 0 && s.Equal(max[len(max)-1]) {
			continue
		}
		dominated := false
		sLen := s.Len()
		for _, m := range max {
			if m.Len() <= sLen {
				// Kept sets are in descending order; once they are no larger
				// than s, none of the remaining ones can strictly contain it.
				break
			}
			if s.SubsetOf(m) {
				dominated = true
				break
			}
		}
		if !dominated {
			max = append(max, s)
		}
	}
	// The kept sets are strictly descending; reverse in place for the
	// canonical ascending order instead of sorting again.
	for i, j := 0, len(max)-1; i < j; i, j = i+1, j-1 {
		max[i], max[j] = max[j], max[i]
	}
	return max
}

// Contains reports whether the set is a member of the family, i.e. a subset
// of some maximal set. The empty set is always a member.
func (z Structure) Contains(s nodeset.Set) bool {
	for _, m := range z.antichain() {
		if s.SubsetOf(m) {
			return true
		}
	}
	return false
}

// Maximal returns the maximal sets in canonical order. The caller must not
// modify the returned slice.
func (z Structure) Maximal() []nodeset.Set { return z.antichain() }

// NumMaximal returns the number of maximal sets.
func (z Structure) NumMaximal() int { return len(z.antichain()) }

// Ground returns the union of all maximal sets: every node that appears in
// some corruption set.
func (z Structure) Ground() nodeset.Set {
	var g nodeset.Set
	for _, m := range z.antichain() {
		g.MutateUnion(m)
	}
	return g
}

// Equal reports whether two structures are the same family.
func (z Structure) Equal(other Structure) bool {
	zm, om := z.antichain(), other.antichain()
	if len(zm) != len(om) {
		return false
	}
	for i, m := range zm {
		if !m.Equal(om[i]) {
			return false
		}
	}
	return true
}

// SubfamilyOf reports whether every member of z is a member of other.
func (z Structure) SubfamilyOf(other Structure) bool {
	for _, m := range z.antichain() {
		if !other.Contains(m) {
			return false
		}
	}
	return true
}

// Union returns the family union z ∪ other (monotone closure of the merged
// antichains). Used e.g. in the Theorem 8 lower-bound construction, where
// the adversary pretends the structure is 𝒵' = 𝒵|_B ∪ {C2}.
func (z Structure) Union(other Structure) Structure {
	zm, om := z.antichain(), other.antichain()
	merged := make([]nodeset.Set, 0, len(zm)+len(om))
	merged = append(merged, zm...)
	merged = append(merged, om...)
	return Structure{maximal: reduceToAntichainOwned(merged)}
}

// WithSet returns z ∪ {s and all its subsets}.
func (z Structure) WithSet(s nodeset.Set) Structure {
	return z.Union(FromSets(s))
}

// Restrict returns the restriction Z^A = { Z ∩ A : Z ∈ 𝒵 } as a structure.
func (z Structure) Restrict(a nodeset.Set) Structure {
	zm := z.antichain()
	restricted := make([]nodeset.Set, len(zm))
	for i, m := range zm {
		restricted[i] = m.Intersect(a)
	}
	return Structure{maximal: reduceToAntichainOwned(restricted)}
}

// RestrictTo returns the restriction as a Restricted value carrying its
// domain, ready for the ⊕ operation.
func (z Structure) RestrictTo(a nodeset.Set) Restricted {
	return Restricted{Domain: a, Structure: z.Restrict(a)}
}

// Members enumerates every member of the family exactly once, in an
// unspecified order, stopping early if fn returns false. It is exponential
// in the maximal-set sizes and intended for tests and tiny instances; it
// panics if any maximal set has more than 30 members.
func (z Structure) Members(fn func(s nodeset.Set) bool) {
	seen := map[string]bool{}
	for _, m := range z.antichain() {
		stop := false
		m.Subsets(func(sub nodeset.Set) bool {
			k := sub.Key()
			if seen[k] {
				return true
			}
			seen[k] = true
			if !fn(sub) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// NumMembers returns the total number of member sets (exponential walk;
// tests/tiny instances only).
func (z Structure) NumMembers() int {
	n := 0
	z.Members(func(nodeset.Set) bool { n++; return true })
	return n
}

// String renders the antichain, e.g. "⟨{1}, {2, 3}⟩".
func (z Structure) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, m := range z.antichain() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(m.String())
	}
	b.WriteString("⟩")
	return b.String()
}
