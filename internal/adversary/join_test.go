package adversary

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rmt/internal/nodeset"
)

// joinBruteForce implements Definition 2 literally, by enumerating every
// member Z1 ∈ 𝓔^A, Z2 ∈ 𝓕^B and keeping Z1 ∪ Z2 whenever Z1∩B == Z2∩A.
// It is the ground truth the antichain implementation must match.
func joinBruteForce(e, f Restricted) Restricted {
	var result []nodeset.Set
	e.Structure.Members(func(z1 nodeset.Set) bool {
		f.Structure.Members(func(z2 nodeset.Set) bool {
			if z1.Intersect(f.Domain).Equal(z2.Intersect(e.Domain)) {
				result = append(result, z1.Union(z2))
			}
			return true
		})
		return true
	})
	return Restricted{Domain: e.Domain.Union(f.Domain), Structure: FromSets(result...)}
}

func restrictedFixture() (Restricted, Restricted) {
	// A = {1,2,3}, E^A maximal {1,2},{3}; B = {2,3,4}, F^B maximal {2,4}.
	e := Restricted{Domain: nodeset.Of(1, 2, 3), Structure: FromSlices([]int{1, 2}, []int{3})}
	f := Restricted{Domain: nodeset.Of(2, 3, 4), Structure: FromSlices([]int{2, 4})}
	return e, f
}

func TestJoinSimple(t *testing.T) {
	e, f := restrictedFixture()
	j := Join(e, f)
	if !j.Domain.Equal(nodeset.Of(1, 2, 3, 4)) {
		t.Fatalf("domain = %v", j.Domain)
	}
	// Candidates: (M1\B)∪(M2\A)∪(M1∩M2):
	//  M1={1,2}, M2={2,4}: {1}∪{4}∪{2} = {1,2,4}
	//  M1={3},  M2={2,4}: {}∪{4}∪{}  = {4} (dominated)
	want := FromSlices([]int{1, 2, 4}, []int{4})
	if !j.Structure.Equal(want) {
		t.Fatalf("Join = %v, want %v", j.Structure, want)
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	e, f := restrictedFixture()
	fast := Join(e, f)
	slow := joinBruteForce(e, f)
	if !fast.Equal(slow) {
		t.Fatalf("fast %v != brute force %v", fast, slow)
	}
}

func TestJoinIdentity(t *testing.T) {
	e, _ := restrictedFixture()
	if !Join(Identity(), e).Equal(e) || !Join(e, Identity()).Equal(e) {
		t.Fatal("Identity() is not a ⊕-identity")
	}
}

func TestJoinDisjointDomains(t *testing.T) {
	// With disjoint domains the agreement condition is vacuous: the result
	// is all unions.
	e := Restricted{Domain: nodeset.Of(1), Structure: FromSlices([]int{1})}
	f := Restricted{Domain: nodeset.Of(2), Structure: FromSlices([]int{2})}
	j := Join(e, f)
	if !j.Structure.Equal(FromSlices([]int{1, 2})) {
		t.Fatalf("disjoint Join = %v", j.Structure)
	}
}

func TestJoinConflictingKnowledge(t *testing.T) {
	// E^A says node 2 may be corrupted; F^B (same domain) says it may not.
	// Members must agree on A∩B = {2}, so no member may contain 2.
	a := nodeset.Of(2)
	e := Restricted{Domain: a, Structure: FromSlices([]int{2})}
	f := Restricted{Domain: a, Structure: Trivial()}
	j := Join(e, f)
	if j.Structure.Contains(nodeset.Of(2)) {
		t.Fatal("join kept a corruption both sides don't agree on")
	}
	if !j.Structure.Equal(Trivial()) {
		t.Fatalf("join = %v, want trivial", j.Structure)
	}
}

type genRestricted struct{ R Restricted }

func (genRestricted) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(5)
	u := nodeset.Universe(n + 2)
	dom := nodeset.Empty()
	u.ForEach(func(v int) bool {
		if r.Intn(2) == 0 {
			dom = dom.Add(v)
		}
		return true
	})
	z := Random(r, dom, 1+r.Intn(4), 0.3+r.Float64()*0.4)
	return reflect.ValueOf(genRestricted{R: Restricted{Domain: dom, Structure: z}})
}

func TestQuickJoinMatchesBruteForce(t *testing.T) {
	f := func(a, b genRestricted) bool {
		return Join(a.R, b.R).Equal(joinBruteForce(a.R, b.R))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Theorem 11: ⊕ is commutative.
func TestQuickJoinCommutative(t *testing.T) {
	f := func(a, b genRestricted) bool {
		return Join(a.R, b.R).Equal(Join(b.R, a.R))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Theorem 13: ⊕ is associative.
func TestQuickJoinAssociative(t *testing.T) {
	f := func(a, b, c genRestricted) bool {
		lhs := Join(Join(a.R, b.R), c.R)
		rhs := Join(a.R, Join(b.R, c.R))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Theorem 14: ⊕ is idempotent.
func TestQuickJoinIdempotent(t *testing.T) {
	f := func(a genRestricted) bool {
		return Join(a.R, a.R).Equal(a.R)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Corollary 2: Z^{A∪B} ⊆ Z^A ⊕ Z^B for restrictions of a common structure.
func TestQuickJoinContainsCommonRestriction(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	f := func(g genStructure) bool {
		a := randomSubset(rnd, g.U)
		b := randomSubset(rnd, g.U)
		j := Join(g.Z.RestrictTo(a), g.Z.RestrictTo(b))
		return g.Z.Restrict(a.Union(b)).SubfamilyOf(j.Structure)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Theorem 1: the join is maximal among structures consistent with both
// restrictions. We verify the two restriction identities hold for the join
// itself when the operands come from one real structure: (Z^A ⊕ Z^B)^A ⊇ Z^A
// and equality of restriction on A for the brute-force semantics.
func TestQuickJoinRestrictsBack(t *testing.T) {
	rnd := rand.New(rand.NewSource(29))
	f := func(g genStructure) bool {
		a := randomSubset(rnd, g.U)
		b := randomSubset(rnd, g.U)
		j := Join(g.Z.RestrictTo(a), g.Z.RestrictTo(b))
		// Restricting the join back to A must give exactly Z^A: members of
		// the join agree with some Z1 ∈ Z^A on A, and every Z1 ∈ Z^A
		// appears (paired with its own restriction on B... via Cor 2 ⊇).
		return j.Structure.Restrict(a).Equal(g.Z.Restrict(a)) &&
			j.Structure.Restrict(b).Equal(g.Z.Restrict(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestJoinAllFoldOrderIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		var rs []Restricted
		for i := 0; i < 4; i++ {
			rs = append(rs, genRestricted{}.Generate(r, 5).Interface().(genRestricted).R)
		}
		fwd := JoinAll(rs...)
		rev := JoinAll(rs[3], rs[2], rs[1], rs[0])
		if !fwd.Equal(rev) {
			t.Fatalf("trial %d: fold order changed result", trial)
		}
	}
}

func TestJoinAllEmpty(t *testing.T) {
	if !JoinAll().Equal(Identity()) {
		t.Fatal("JoinAll() != Identity()")
	}
}

func TestLocalKnowledgeJointOf(t *testing.T) {
	z := FromSlices([]int{1, 2}, []int{3})
	lk := LocalKnowledge{
		1: z.RestrictTo(nodeset.Of(1, 2)),
		2: z.RestrictTo(nodeset.Of(2, 3)),
	}
	j := lk.JointOf(nodeset.Of(1, 2))
	want := Join(lk[1], lk[2])
	if !j.Equal(want) {
		t.Fatalf("JointOf = %v, want %v", j, want)
	}
	// Unknown nodes contribute nothing.
	j2 := lk.JointOf(nodeset.Of(1, 9))
	if !j2.Equal(lk[1]) {
		t.Fatalf("JointOf with unknown node = %v", j2)
	}
	// Corollary 2 instance: real restriction is contained in the joint view.
	full := z.Restrict(nodeset.Of(1, 2, 3))
	if !full.SubfamilyOf(j.Structure.Union(FromSets(nodeset.Of(3)))) {
		// weak sanity; the strong version is TestQuickJoinContainsCommonRestriction
		t.Log("note: containment checked probabilistically elsewhere")
	}
}

func BenchmarkJoinViewPair(b *testing.B) {
	r := rand.New(rand.NewSource(41))
	u := nodeset.Universe(24)
	a := nodeset.Range(0, 16)
	c := nodeset.Range(8, 24)
	z := Random(r, u, 12, 0.3)
	e, f := z.RestrictTo(a), z.RestrictTo(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Join(e, f)
	}
}

func BenchmarkJoinViewFold(b *testing.B) {
	r := rand.New(rand.NewSource(43))
	u := nodeset.Universe(20)
	z := Random(r, u, 8, 0.25)
	var rs []Restricted
	for v := 0; v < 10; v++ {
		dom := nodeset.Of(v, (v+1)%20, (v+2)%20, (v+7)%20)
		rs = append(rs, z.RestrictTo(dom))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = JoinAll(rs...)
	}
}
