package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RouterOptions configures a fleet Router. The zero value of every field but
// Shards is usable.
type RouterOptions struct {
	// Shards lists the shard base URLs ("http://host:port"). Every shard must
	// be configured with the same list as its Peers for the fleet-wide
	// ownership ring to agree.
	Shards []string
	// MaxBodyBytes bounds request bodies. Default 1 MiB (the shard default).
	MaxBodyBytes int64
	// LogWriter receives one JSON object per routed request. Default
	// os.Stderr; use io.Discard to silence.
	LogWriter io.Writer
	// ShardTimeout bounds one routed query end to end. It must exceed the
	// shards' compute deadline (Options.RequestTimeout, default 30s) so
	// the shard's own 504 arrives first and the router's timeout only
	// fires for a shard that is stalled, not merely slow. Default 35s.
	// Watch streams are exempt: they are long-lived by design and are
	// forwarded on a client without an overall deadline.
	ShardTimeout time.Duration
}

// Router is the fleet front door: a stateless HTTP handler that forwards
// each query to the shard owning its instance (consistent hash over
// instance.CanonicalKey, the same ring every shard builds from its Peers
// list). Routing by canonical key — not by raw request bytes — means every
// spelling of the same (G, 𝒵, γ, D, R) tuple lands on the same shard's LRU,
// so the fleet caches each distinct instance exactly once.
//
// The router holds no cache and no worker pool; shard replies are relayed
// verbatim, preserving the shards' byte-identity guarantee end to end.
type Router struct {
	opts RouterOptions
	ring *hashRing
	// client answers the unary query endpoints under ShardTimeout;
	// streamClient forwards long-lived watch subscriptions and has no
	// overall deadline (both share one transport and its pool).
	client       *http.Client
	streamClient *http.Client
	mux          *http.ServeMux
	start        time.Time

	mu       sync.Mutex
	forwards map[string]*atomic.Int64 // shard → requests forwarded

	badRequests atomic.Int64 // rejected before routing (bad body/instance)
	shardErrors atomic.Int64 // transport failures talking to a shard
	timeouts    atomic.Int64 // 504s: shard exceeded ShardTimeout

	logMu sync.Mutex
}

// NewRouter builds a Router over the given shards.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("router: at least one shard is required")
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.LogWriter == nil {
		opts.LogWriter = os.Stderr
	}
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = 35 * time.Second
	}
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	rt := &Router{
		opts:         opts,
		ring:         newHashRing(opts.Shards),
		client:       &http.Client{Transport: transport, Timeout: opts.ShardTimeout},
		streamClient: &http.Client{Transport: transport},
		mux:          http.NewServeMux(),
		start:        time.Now(),
		forwards:     make(map[string]*atomic.Int64, len(opts.Shards)),
	}
	for _, s := range opts.Shards {
		rt.forwards[s] = &atomic.Int64{}
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /v1/protocols", rt.handleProtocols)
	rt.mux.HandleFunc("POST /v1/feasibility", rt.handleQuery)
	rt.mux.HandleFunc("POST /v1/run", rt.handleQuery)
	rt.mux.HandleFunc("POST /v1/watch", rt.handleWatch)
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Forwards returns per-shard forwarded-request counts (tests and the fleet
// load driver use it to check the ring actually spreads the keyspace).
func (rt *Router) Forwards() map[string]int64 {
	out := make(map[string]int64, len(rt.forwards))
	for s, c := range rt.forwards {
		out[s] = c.Load()
	}
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, []byte("{\"status\":\"ok\",\"role\":\"router\"}\n"))
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE rmtd_router_uptime_seconds gauge\nrmtd_router_uptime_seconds %.3f\n", time.Since(rt.start).Seconds())
	fmt.Fprintf(w, "# TYPE rmtd_router_shards gauge\nrmtd_router_shards %d\n", len(rt.opts.Shards))
	fmt.Fprintf(w, "# TYPE rmtd_router_bad_requests_total counter\nrmtd_router_bad_requests_total %d\n", rt.badRequests.Load())
	fmt.Fprintf(w, "# TYPE rmtd_router_shard_errors_total counter\nrmtd_router_shard_errors_total %d\n", rt.shardErrors.Load())
	fmt.Fprintf(w, "# TYPE rmtd_router_timeouts_total counter\nrmtd_router_timeouts_total %d\n", rt.timeouts.Load())
	shards := append([]string(nil), rt.opts.Shards...)
	sort.Strings(shards)
	fmt.Fprintf(w, "# TYPE rmtd_router_forwards_total counter\n")
	for _, s := range shards {
		fmt.Fprintf(w, "rmtd_router_forwards_total{shard=%q} %d\n", s, rt.forwards[s].Load())
	}
}

// handleProtocols serves the registry inventory from a fixed shard — every
// shard runs the same binary, so any one's answer is the fleet's answer.
func (rt *Router) handleProtocols(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, rt.ring.owner("/v1/protocols"), nil)
}

// handleQuery routes POST /v1/feasibility and /v1/run: it decodes just the
// instance tuple from the body (leniently — run-specific fields pass
// through untouched for the shard to validate), computes the canonical key,
// and relays the original bytes to the owning shard.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	var req InstanceRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	in, _, err := req.build()
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "instance: %v", err)
		return
	}
	rt.forward(w, r, rt.ring.owner(in.CanonicalKey()), body)
}

// forward relays the request to shard and the shard's reply to the client,
// verbatim. A nil body forwards a GET.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, shard string, body []byte) {
	start := time.Now()
	var req *http.Request
	var err error
	if body == nil {
		req, err = http.NewRequestWithContext(r.Context(), http.MethodGet, shard+r.URL.Path, nil)
	} else {
		req, err = http.NewRequestWithContext(r.Context(), http.MethodPost, shard+r.URL.Path, bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		rt.shardErrors.Add(1)
		writeError(w, http.StatusBadGateway, "shard %s: %v", shard, err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			rt.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "shard %s: timed out after %s", shard, rt.opts.ShardTimeout)
			rt.logRequest(r.Method, r.URL.Path, shard, http.StatusGatewayTimeout, time.Since(start))
			return
		}
		rt.shardErrors.Add(1)
		writeError(w, http.StatusBadGateway, "shard %s: %v", shard, err)
		return
	}
	defer resp.Body.Close()
	rt.forwards[shard].Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	rt.logRequest(r.Method, r.URL.Path, shard, resp.StatusCode, time.Since(start))
}

// handleWatch routes POST /v1/watch. Unlike handleQuery it cannot slurp the
// body — the body IS the subscription, a possibly-unbounded delta stream —
// so it reads exactly the first line (the base instance), computes the
// canonical key, and splices the consumed bytes back in front of the
// remainder for the shard. The whole stream goes to the *base* key's owner,
// which is what keeps every chain revision's cache entry on one shard.
// Streams ride streamClient (no overall deadline) and each shard chunk is
// flushed through as it arrives.
func (rt *Router) handleWatch(w http.ResponseWriter, r *http.Request) {
	// The client may interleave deltas with our streamed verdicts; allow
	// reading the request body after response bytes have been written.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()

	br := bufio.NewReader(r.Body)
	line, err := readLimitedLine(br, rt.opts.MaxBodyBytes)
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "watch: instance line: %v", err)
		return
	}
	var req InstanceRequest
	if err := json.Unmarshal(line, &req); err != nil {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "instance line: %v", err)
		return
	}
	in, _, err := req.build()
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "instance: %v", err)
		return
	}
	shard := rt.ring.owner(in.CanonicalKey())

	start := time.Now()
	body := io.MultiReader(bytes.NewReader(line), br)
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, shard+r.URL.Path, body)
	if err != nil {
		rt.shardErrors.Add(1)
		writeError(w, http.StatusBadGateway, "shard %s: %v", shard, err)
		return
	}
	preq.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := rt.streamClient.Do(preq)
	if err != nil {
		rt.shardErrors.Add(1)
		writeError(w, http.StatusBadGateway, "shard %s: %v", shard, err)
		return
	}
	defer resp.Body.Close()
	rt.forwards[shard].Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				break
			}
			rc.Flush()
		}
		if rerr != nil {
			break
		}
	}
	rt.logRequest(r.Method, r.URL.Path, shard, resp.StatusCode, time.Since(start))
}

// readLimitedLine reads one newline-terminated line (newline included, so
// the bytes splice back verbatim), erroring past limit instead of buffering
// an unbounded first line.
func readLimitedLine(br *bufio.Reader, limit int64) ([]byte, error) {
	line := make([]byte, 0, 256)
	for int64(len(line)) < limit {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(line) > 0 {
				return line, nil
			}
			return nil, err
		}
		line = append(line, b)
		if b == '\n' {
			return line, nil
		}
	}
	return nil, fmt.Errorf("line exceeds %d bytes", limit)
}

func (rt *Router) logRequest(method, path, shard string, status int, d time.Duration) {
	entry := struct {
		Time   string  `json:"time"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Shard  string  `json:"shard"`
		Status int     `json:"status"`
		Ms     float64 `json:"ms"`
	}{time.Now().UTC().Format(time.RFC3339Nano), method, path, shard, status, float64(d.Microseconds()) / 1000}
	b, err := json.Marshal(entry)
	if err != nil {
		return
	}
	rt.logMu.Lock()
	defer rt.logMu.Unlock()
	rt.opts.LogWriter.Write(append(b, '\n'))
}
