package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// smtInstance leaves relays 2 and 3 honest, so the SMT verdict genuinely
// depends on the listening structure: feasible with no listening, infeasible
// once an ear covers both honest relays.
const smtInstance = `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1","dealer":0,"receiver":4}`

// TestFeasibilityCacheKeyCarriesListen is the regression test for the
// cache-poisoning bug the v3 key bump fixes: the v2-era key did not include
// the listening structure, so a cached no-listening body would have been
// served byte-identically for a listening-structure request of the same
// instance — reporting an eavesdroppable pairing as SMT-feasible. Under the
// fixed key, requests differing only in "listen" are distinct entries with
// different verdicts, and a v2-formatted entry planted in the cache is never
// consulted.
func TestFeasibilityCacheKeyCarriesListen(t *testing.T) {
	srv, ts := newTestServer(t, Options{})

	// Plant a v2-era body under the exact key the previous daemon version
	// would have used for this instance. If any request below returns this
	// sentinel, the handler consulted a v2-era entry.
	var q InstanceRequest
	if err := json.Unmarshal([]byte(smtInstance), &q); err != nil {
		t.Fatal(err)
	}
	in, level, err := q.build()
	if err != nil {
		t.Fatal(err)
	}
	stale := []byte(`{"sentinel":"v2-era cached body"}`)
	v2key := fmt.Sprintf("feasibility-v2\n%s\nd=%d\n%s", level, 0, in.CanonicalKey())
	srv.cache.put(v2key, stale)

	// No listening: SMT-feasible (a share family over the honest relays).
	code, body := post(t, ts, "/v1/feasibility", smtInstance)
	if code != http.StatusOK {
		t.Fatalf("no-listen request: %d %s", code, body)
	}
	var noListen FeasibilityResponse
	if err := json.Unmarshal(body, &noListen); err != nil {
		t.Fatalf("no-listen request returned unparseable (stale?) body %s: %v", body, err)
	}
	if noListen.SMT == nil || !noListen.SMT.Feasible {
		t.Fatalf("no-listen verdict: %+v, want SMT-feasible", noListen.SMT)
	}

	// Same instance, listening structure covering both honest relays: the
	// secrecy cut must flip the verdict — a served v2-era or no-listen body
	// would wrongly say feasible.
	listening := `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1","dealer":0,"receiver":4,"listen":"2,3"}`
	code, body = post(t, ts, "/v1/feasibility", listening)
	if code != http.StatusOK {
		t.Fatalf("listen request: %d %s", code, body)
	}
	var withListen FeasibilityResponse
	if err := json.Unmarshal(body, &withListen); err != nil {
		t.Fatalf("listen request returned unparseable (stale?) body %s: %v", body, err)
	}
	if withListen.SMT == nil || withListen.SMT.Feasible {
		t.Fatalf("listen verdict: %+v, want SMT-infeasible (cached no-listen body served?)", withListen.SMT)
	}
	if len(withListen.SMT.SecrecyCut) == 0 || len(withListen.SMT.SecrecyListen) == 0 {
		t.Fatalf("listen verdict lacks a secrecy-cut witness: %+v", withListen.SMT)
	}

	// Both requests computed fresh entries; the planted v2 body must still
	// be sitting untouched in the cache, never having been served.
	if got, ok := srv.cache.get(v2key); !ok || string(got) != string(stale) {
		t.Fatal("v2-era entry was evicted or rewritten by the handler")
	}

	// And the listening request is itself cached — repeat and compare.
	code, again := post(t, ts, "/v1/feasibility", listening)
	if code != http.StatusOK || string(again) != string(body) {
		t.Fatalf("listening request not served byte-identically from cache")
	}
}
