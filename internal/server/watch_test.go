package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The watch tests drive the butterfly through a scripted churn history:
//
//	rev 0  base butterfly                       solvable      (event)
//	rev 1  +edge 1-2 (a chord)                  solvable      (silent)
//	rev 2  -node 3 (kills the third path)       unsolvable    (event)
//	rev 3  +node 3 re-wired 0-3, 3-4            solvable      (event)
//
// Removing node 3 leaves only the paths through nodes 1 and 2, and the
// classes {1} and {2} jointly cut them — an RMT-cut, so both PKA and ZCPA
// flip to unsolvable. Re-adding node 3 restores a third path whose relay is
// no longer in the (restricted) structure, so both flip back.
var watchDeltas = []string{
	`{"add_edges":[[1,2]]}`,
	`{"remove_nodes":[3]}`,
	`{"add_nodes":[3],"add_edges":[[0,3],[3,4]]}`,
}

func watchBody(instanceJSON string, deltas ...string) string {
	return instanceJSON + "\n" + strings.Join(deltas, "\n") + "\n"
}

// postWatch uploads a complete subscription (instance line plus all deltas)
// and returns the status code and the response split into ndjson lines.
func postWatch(t *testing.T, ts *httptest.Server, body string) (int, [][]byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/watch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) > 0 {
			lines = append(lines, line)
		}
	}
	return resp.StatusCode, lines
}

func decodeEvents(t *testing.T, lines [][]byte) []WatchEvent {
	t.Helper()
	events := make([]WatchEvent, len(lines))
	for i, line := range lines {
		if err := json.Unmarshal(line, &events[i]); err != nil {
			t.Fatalf("line %d %s: %v", i, line, err)
		}
	}
	return events
}

// TestWatchStreamsVerdictChanges: the subscription reports rev 0 and then
// exactly the revisions whose solvability verdict flipped — the silent
// chord addition at rev 1 must not produce a line.
func TestWatchStreamsVerdictChanges(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, lines := postWatch(t, ts, watchBody(solvableButterfly, watchDeltas...))
	if code != http.StatusOK {
		t.Fatalf("watch: %d %s", code, bytes.Join(lines, []byte("\n")))
	}
	events := decodeEvents(t, lines)
	if len(events) != 3 {
		t.Fatalf("want 3 verdict-change events (rev 0, 2, 3), got %d:\n%s", len(events), bytes.Join(lines, []byte("\n")))
	}
	type want struct {
		rev      int
		solvable bool
	}
	for i, w := range []want{{0, true}, {2, false}, {3, true}} {
		ev := events[i]
		if ev.Rev != w.rev {
			t.Errorf("event %d: rev %d, want %d", i, ev.Rev, w.rev)
		}
		if ev.PKA.Solvable != w.solvable {
			t.Errorf("rev %d: pka solvable = %v, want %v", ev.Rev, ev.PKA.Solvable, w.solvable)
		}
		if ev.ZCPA == nil || ev.ZCPA.Solvable != w.solvable {
			t.Errorf("rev %d: zcpa verdict = %+v, want solvable %v", ev.Rev, ev.ZCPA, w.solvable)
		}
		if ev.Knowledge != "adhoc" {
			t.Errorf("rev %d: knowledge %q", ev.Rev, ev.Knowledge)
		}
		if len(ev.Key) != 64 {
			t.Errorf("rev %d: key %q is not a sha256 hex digest", ev.Rev, ev.Key)
		}
	}
	// Rev 0 is keyed by the base canonical hash; later revisions by chain
	// keys, all distinct from the base and from each other.
	keys := map[string]bool{}
	for _, ev := range events {
		keys[ev.Key] = true
	}
	if len(keys) != 3 {
		t.Fatalf("revision keys collide: %v", keys)
	}
	if !events[1].PKA.Solvable && events[1].PKA.Witness == nil {
		t.Fatal("unsolvable revision carries no cut witness")
	}
}

// TestWatchFullKnowledgeOmitsZCPA: the ad hoc characterization doesn't apply
// at full knowledge, so watch events mirror the feasibility body shape.
func TestWatchFullKnowledgeOmitsZCPA(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	base := `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","knowledge":"full","dealer":0,"receiver":4}`
	code, lines := postWatch(t, ts, watchBody(base, `{"remove_nodes":[3]}`))
	if code != http.StatusOK {
		t.Fatalf("watch: %d", code)
	}
	events := decodeEvents(t, lines)
	if len(events) != 2 {
		t.Fatalf("want events at rev 0 and 1, got %d", len(events))
	}
	for _, ev := range events {
		if ev.ZCPA != nil {
			t.Fatalf("full-knowledge event carries a zcpa verdict: %+v", ev)
		}
		if ev.Knowledge != "full" {
			t.Fatalf("knowledge = %q", ev.Knowledge)
		}
	}
}

// TestWatchInteractive drives the subscription as a genuine full-duplex
// conversation: each verdict line is read back before the next delta is
// written, which only works if the handler flushes every event through the
// instrumentation wrapper (statusRecorder must expose Unwrap).
func TestWatchInteractive(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/watch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	if _, err := io.WriteString(pw, solvableButterfly+"\n"); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("no response header before any delta was sent")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	readEvent := func() WatchEvent {
		t.Helper()
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read event: %v", err)
		}
		var ev WatchEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("event %s: %v", line, err)
		}
		return ev
	}
	if ev := readEvent(); ev.Rev != 0 || !ev.PKA.Solvable {
		t.Fatalf("rev 0 event: %+v", ev)
	}
	// The rev 0 line arrived while the request body is still open — now push
	// a flipping delta and expect its event on the same response.
	if _, err := io.WriteString(pw, `{"remove_nodes":[3]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if ev := readEvent(); ev.Rev != 1 || ev.PKA.Solvable {
		t.Fatalf("rev 1 event: %+v", ev)
	}
	pw.Close()
	if _, err := br.ReadBytes('\n'); err != io.EOF {
		t.Fatalf("stream after client close: %v, want EOF", err)
	}
}

// TestWatchByteIdentityAcrossSubscriptions: replaying the same subscription
// serves every revision out of the result cache with byte-identical lines —
// the first-body-wins rule extended to chains.
func TestWatchByteIdentityAcrossSubscriptions(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := watchBody(solvableButterfly, watchDeltas...)
	_, first := postWatch(t, ts, body)
	missesAfterFirst := s.metrics.cacheMisses.Load()
	_, second := postWatch(t, ts, body)
	if !bytes.Equal(bytes.Join(first, []byte("\n")), bytes.Join(second, []byte("\n"))) {
		t.Fatalf("replayed subscription differs:\n%s\nvs\n%s", bytes.Join(first, []byte("\n")), bytes.Join(second, []byte("\n")))
	}
	if got := s.metrics.cacheMisses.Load(); got != missesAfterFirst {
		t.Fatalf("replay missed the cache: %d misses, want %d", got, missesAfterFirst)
	}
	if s.metrics.cacheHits.Load() == 0 {
		t.Fatal("replay recorded no cache hits")
	}
}

// TestWatchChainKeysNeverServeBaseBytes pins the cache-identity guarantee
// the watch API is built on: a revision's chain key is never the base
// instance's canonical key, and fetching a chain revision through the peer
// protocol (POST /internal/cache) returns that revision's bytes — never the
// base instance's.
func TestWatchChainKeysNeverServeBaseBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, lines := postWatch(t, ts, watchBody(solvableButterfly, `{"remove_nodes":[3]}`))
	if code != http.StatusOK || len(lines) != 2 {
		t.Fatalf("watch: %d, %d lines", code, len(lines))
	}
	events := decodeEvents(t, lines)
	base, chain := events[0], events[1]
	if base.Key == chain.Key {
		t.Fatalf("chain key equals base key: %s", base.Key)
	}

	fetch := func(key string) (int, []byte) {
		t.Helper()
		return post(t, ts, "/internal/cache", "watch-v1\nadhoc\n"+key)
	}
	code, got := fetch(chain.Key)
	if code != http.StatusOK {
		t.Fatalf("chain revision not in cache: %d", code)
	}
	if !bytes.Equal(bytes.TrimSpace(got), lines[1]) {
		t.Fatalf("peer fetch for chain key served different bytes:\n%s\nvs\n%s", got, lines[1])
	}
	if bytes.Equal(bytes.TrimSpace(got), lines[0]) {
		t.Fatal("peer fetch for chain key served the base instance's bytes")
	}
	var fetched WatchEvent
	if err := json.Unmarshal(got, &fetched); err != nil {
		t.Fatal(err)
	}
	if fetched.Rev != 1 || fetched.PKA.Solvable {
		t.Fatalf("chain key resolved to %+v, want the rev-1 unsolvable verdict", fetched)
	}

	// The base revision lives under its own watch cache line, disjoint from
	// the feasibility endpoint's entry for the same instance.
	code, got = fetch(base.Key)
	if code != http.StatusOK {
		t.Fatalf("base revision not in cache: %d", code)
	}
	if !bytes.Equal(bytes.TrimSpace(got), lines[0]) {
		t.Fatalf("peer fetch for base watch key served:\n%s\nwant\n%s", got, lines[0])
	}
}

// TestWatchValidation: pre-stream failures are plain HTTP errors; failures
// after the first verdict line travel in-band as a terminal error object.
func TestWatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWatchDeltas: 2})

	for name, body := range map[string]string{
		"empty stream":      "",
		"bad instance json": "{\n",
		"unknown field":     `{"graph":"0-1","dealer":0,"receiver":1,"bogus":1}` + "\n",
		"bad instance":      `{"graph":"0-1","dealer":0,"receiver":9}` + "\n",
	} {
		if code, _ := postWatch(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, code)
		}
	}

	// A delta that does not apply: the stream opens 200, reports rev 0, then
	// terminates with an in-band error naming the bad revision.
	code, lines := postWatch(t, ts, watchBody(solvableButterfly, `{"remove_edges":[[1,3]]}`))
	if code != http.StatusOK || len(lines) != 2 {
		t.Fatalf("bad delta: %d, %d lines", code, len(lines))
	}
	var we watchError
	if err := json.Unmarshal(lines[1], &we); err != nil {
		t.Fatal(err)
	}
	if we.Rev != 1 || !strings.Contains(we.Error, "absent edge") {
		t.Fatalf("terminal error = %+v", we)
	}

	// More deltas than MaxWatchDeltas: the limit is reported in-band.
	code, lines = postWatch(t, ts, watchBody(solvableButterfly, watchDeltas...))
	if code != http.StatusOK {
		t.Fatalf("over limit: %d", code)
	}
	if err := json.Unmarshal(lines[len(lines)-1], &we); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(we.Error, "delta limit") {
		t.Fatalf("terminal line = %s, want delta-limit error", lines[len(lines)-1])
	}
}

// ------------------------------------------------------------ fleet routing

// TestRouterForwardsWatchByBaseKey: a watch subscription through the router
// produces the same event stream as a direct shard subscription, and the
// whole stream lands on the shard owning the *base* instance's canonical
// key — chain revisions never scatter across the ring.
func TestRouterForwardsWatchByBaseKey(t *testing.T) {
	_, urls, rt := newFleet(t, 3)
	ts := httptest.NewServer(rt)
	defer ts.Close()

	body := watchBody(solvableButterfly, watchDeltas...)
	code, lines := postWatch(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("watch via router: %d", code)
	}
	events := decodeEvents(t, lines)
	if len(events) != 3 {
		t.Fatalf("want 3 events via router, got %d:\n%s", len(events), bytes.Join(lines, []byte("\n")))
	}

	var q InstanceRequest
	if err := json.Unmarshal([]byte(solvableButterfly), &q); err != nil {
		t.Fatal(err)
	}
	in, _, err := q.build()
	if err != nil {
		t.Fatal(err)
	}
	owner := newHashRing(urls).owner(in.CanonicalKey())
	for shard, n := range rt.Forwards() {
		want := int64(0)
		if shard == owner {
			want = 1
		}
		if n != want {
			t.Fatalf("forwards[%s] = %d, want %d (owner %s): %v", shard, n, want, owner, rt.Forwards())
		}
	}

	// Direct shard subscription serves byte-identical lines (router relays
	// verbatim; the shard serves the cached chain).
	resp, err := http.Post(owner+"/v1/watch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	direct := readAll(t, resp)
	if !bytes.Equal(bytes.TrimSpace(direct), bytes.Join(lines, []byte("\n"))) {
		t.Fatalf("router stream differs from direct shard stream:\n%s\nvs\n%s", bytes.Join(lines, []byte("\n")), direct)
	}
}

func TestRouterRejectsBadWatchInstanceLine(t *testing.T) {
	_, _, rt := newFleet(t, 2)
	ts := httptest.NewServer(rt)
	defer ts.Close()
	for name, body := range map[string]string{
		"empty":        "",
		"bad json":     "{\n",
		"bad instance": `{"graph":"0-1","dealer":0,"receiver":9}` + "\n",
	} {
		if code, _ := postWatch(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, code)
		}
	}
}

// ------------------------------------------------------------ shard timeout

// TestRouterTimesOutStalledShard: a shard that accepts the connection and
// then hangs must not wedge the router's client forever — the query is
// answered 504 under ShardTimeout and counted in rmtd_router_timeouts_total,
// distinct from the transport-failure 502 path.
func TestRouterTimesOutStalledShard(t *testing.T) {
	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server detects the router hanging up, then
		// stall until it does (or the test ends).
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer stalled.Close()
	defer close(release)
	rt, err := NewRouter(RouterOptions{Shards: []string{stalled.URL}, LogWriter: io.Discard, ShardTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	start := time.Now()
	code, body := post(t, ts, "/v1/feasibility", solvableButterfly)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("stalled shard answered %d %s, want 504", code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s, ShardTimeout is 100ms", elapsed)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Fatalf("504 body %s does not name the timeout", body)
	}
	if got := rt.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
	if got := rt.shardErrors.Load(); got != 0 {
		t.Fatalf("shardErrors = %d — a shard timeout is not a transport failure", got)
	}
	if _, m := get(t, ts, "/metrics"); !strings.Contains(string(m), "rmtd_router_timeouts_total 1") {
		t.Fatalf("metrics missing rmtd_router_timeouts_total:\n%s", m)
	}
}

// TestRouterShardTimeoutDefaultExceedsShardDeadline: the router must give
// shards room to answer their own 504 first.
func TestRouterShardTimeoutDefaultExceedsShardDeadline(t *testing.T) {
	rt, err := NewRouter(RouterOptions{Shards: []string{"http://unused"}, LogWriter: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	shardDefault := New(Options{LogWriter: io.Discard})
	defer shardDefault.Close()
	if rt.opts.ShardTimeout <= shardDefault.opts.RequestTimeout {
		t.Fatalf("router default %s must exceed shard compute deadline %s", rt.opts.ShardTimeout, shardDefault.opts.RequestTimeout)
	}
}
