package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// serverMetrics accumulates the daemon's observability counters: request
// totals per endpoint and status, cache hits/misses, queue depth, and
// per-endpoint latency histograms. Everything is atomic or mutex-guarded;
// render writes the Prometheus text exposition format so any scraper (or
// the loadtest driver, or `curl /metrics | grep`) can consume it.
type serverMetrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[requestKey]*atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	peerHits    atomic.Int64 // bodies served from a fleet peer's cache
	peerMisses  atomic.Int64 // peer asked, answered 404 (or was unreachable)
	rejected    atomic.Int64 // 429s: queue-full backpressure
	timeouts    atomic.Int64 // 504s: compute-deadline expiries
	cancels     atomic.Int64 // 499s: client disconnected mid-compute
	watchEvents atomic.Int64 // verdict-change lines streamed by /v1/watch

	latency map[string]*histogram // endpoint → latency histogram
}

type requestKey struct {
	endpoint string
	code     int
}

// numBuckets is the number of finite histogram bounds.
const numBuckets = 9

// latencyBuckets are the histogram upper bounds in seconds. The protocols
// here run in microseconds to low milliseconds; the tail buckets catch
// queueing under load.
var latencyBuckets = [numBuckets]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

type histogram struct {
	buckets [numBuckets + 1]atomic.Int64 // one per bound, plus +Inf
	sum     atomic.Int64                 // nanoseconds
	count   atomic.Int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		start:    time.Now(),
		requests: make(map[requestKey]*atomic.Int64),
		latency:  make(map[string]*histogram),
	}
}

// observe records one finished request.
func (m *serverMetrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	counter, ok := m.requests[requestKey{endpoint, code}]
	if !ok {
		counter = &atomic.Int64{}
		m.requests[requestKey{endpoint, code}] = counter
	}
	h, ok := m.latency[endpoint]
	if !ok {
		h = &histogram{}
		m.latency[endpoint] = h
	}
	m.mu.Unlock()
	counter.Add(1)
	secs := d.Seconds()
	for i, bound := range latencyBuckets {
		if secs <= bound {
			h.buckets[i].Add(1)
		}
	}
	h.buckets[numBuckets].Add(1) // +Inf
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// hitRatio returns hits/(hits+misses), 0 when no cacheable request was seen.
func (m *serverMetrics) hitRatio() float64 {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// render writes the Prometheus text format. queueDepth, workers and
// cacheEntries are sampled by the caller (they live on the server).
func (m *serverMetrics) render(w io.Writer, queueDepth, workers, cacheEntries int) {
	fmt.Fprintf(w, "# TYPE rmtd_uptime_seconds gauge\nrmtd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "# TYPE rmtd_workers gauge\nrmtd_workers %d\n", workers)
	fmt.Fprintf(w, "# TYPE rmtd_queue_depth gauge\nrmtd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# TYPE rmtd_cache_entries gauge\nrmtd_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(w, "# TYPE rmtd_cache_hits_total counter\nrmtd_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "# TYPE rmtd_cache_misses_total counter\nrmtd_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "# TYPE rmtd_cache_hit_ratio gauge\nrmtd_cache_hit_ratio %.6f\n", m.hitRatio())
	fmt.Fprintf(w, "# TYPE rmtd_peer_cache_hits_total counter\nrmtd_peer_cache_hits_total %d\n", m.peerHits.Load())
	fmt.Fprintf(w, "# TYPE rmtd_peer_cache_misses_total counter\nrmtd_peer_cache_misses_total %d\n", m.peerMisses.Load())
	fmt.Fprintf(w, "# TYPE rmtd_rejected_total counter\nrmtd_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# TYPE rmtd_timeouts_total counter\nrmtd_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "# TYPE rmtd_client_cancels_total counter\nrmtd_client_cancels_total %d\n", m.cancels.Load())
	fmt.Fprintf(w, "# TYPE rmtd_watch_events_total counter\nrmtd_watch_events_total %d\n", m.watchEvents.Load())

	// Counter cells are never removed, so a snapshot of the pointers under
	// the lock is enough; the atomic loads happen outside it.
	m.mu.Lock()
	reqs := make(map[requestKey]*atomic.Int64, len(m.requests))
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k, v := range m.requests {
		reqs[k] = v
		reqKeys = append(reqKeys, k)
	}
	lats := make(map[string]*histogram, len(m.latency))
	endpoints := make([]string, 0, len(m.latency))
	for e, h := range m.latency {
		lats[e] = h
		endpoints = append(endpoints, e)
	}
	m.mu.Unlock()
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	sort.Strings(endpoints)

	fmt.Fprintf(w, "# TYPE rmtd_requests_total counter\n")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "rmtd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, reqs[k].Load())
	}
	fmt.Fprintf(w, "# TYPE rmtd_request_seconds histogram\n")
	for _, e := range endpoints {
		h := lats[e]
		for i, bound := range latencyBuckets {
			fmt.Fprintf(w, "rmtd_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", e, bound, h.buckets[i].Load())
		}
		fmt.Fprintf(w, "rmtd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e, h.buckets[numBuckets].Load())
		fmt.Fprintf(w, "rmtd_request_seconds_sum{endpoint=%q} %.6f\n", e, time.Duration(h.sum.Load()).Seconds())
		fmt.Fprintf(w, "rmtd_request_seconds_count{endpoint=%q} %d\n", e, h.count.Load())
	}
}
