package server

import (
	"container/list"
	"sync"
)

// resultCache is a size-bounded LRU over marshaled response bodies, keyed
// by the request's canonical key (the instance's canonical content hash
// plus the normalized query parameters — see cacheKey). Storing the exact
// bytes that were first served, rather than re-marshaling per request,
// gives the daemon its byte-identical-replies guarantee: two requests with
// the same canonical key receive the same body regardless of worker count
// or arrival order.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → element whose Value is *cacheEntry
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds an LRU bounded to max entries (max ≥ 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached body for key, marking it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// the bound is exceeded. The first body stored for a key wins: concurrent
// computations of the same key are deterministic and byte-identical, so
// keeping the incumbent preserves the byte-identity guarantee trivially.
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
