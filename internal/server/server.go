// Package server implements rmtd's long-lived HTTP/JSON query service:
// feasibility verdicts (RMT-cut / 𝒵-pp-cut) and protocol executions for any
// registered protocol × engine × schedule × seed, over the same internal
// packages the CLI tools use.
//
// Two pieces make it a daemon rather than a CGI script:
//
//   - results are cached in a size-bounded LRU keyed by the instance's
//     canonical content hash (instance.CanonicalKey) plus the normalized
//     request parameters, so repeated queries — the common shape when a
//     notebook or script sweeps seeds around one topology — are served from
//     memory, byte-identically;
//   - heavy work runs on a bounded worker pool (eval.Pool) with queue-depth
//     backpressure: when the queue is full the daemon answers 429 instead of
//     accumulating goroutines. The per-request deadline context is plumbed
//     into the compute itself — the cut searches poll it once per candidate
//     and multi-trial runs poll it between trials — so a timed-out request
//     answers 504 *and* frees its worker slot promptly rather than leaking
//     it to a stuck exponential search. A client that disconnects early
//     cancels its compute the same way, logged as 499 and counted
//     separately from deadline expiries.
//
// Endpoints: POST /v1/feasibility, POST /v1/run, GET /v1/protocols,
// GET /healthz, GET /metrics (Prometheus text format).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/cliutil"
	"rmt/internal/core"
	"rmt/internal/eval"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/zcpa"
)

// Options configures a Server. The zero value is usable: every field has a
// production default.
type Options struct {
	// Workers is the compute pool size (≤ 0 = one per logical CPU).
	Workers int
	// QueueDepth bounds admitted-but-unstarted requests; beyond it the
	// daemon sheds load with 429. Default 256.
	QueueDepth int
	// CacheSize bounds the result LRU in entries. Default 1024.
	CacheSize int
	// RequestTimeout is the per-request compute deadline. Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// MaxTrials bounds RunRequest.Trials. Default 1024.
	MaxTrials int
	// MaxWatchDeltas bounds the revisions of one /v1/watch subscription.
	// Default 4096.
	MaxWatchDeltas int
	// LogWriter receives one JSON object per request (structured access
	// log). Default os.Stderr; use io.Discard to silence.
	LogWriter io.Writer

	// Peers lists every shard's base URL ("http://host:port") when this
	// server runs as one shard of a fleet, Self included. Before computing a
	// cache miss, the shard asks the instance's owning peer (consistent hash
	// over instance.CanonicalKey — the same ring the Router uses) for its
	// cached body, so requests that leak past the router, or arrive directly,
	// still reuse the fleet's work and stay byte-identical with it.
	Peers []string
	// Self is this shard's own entry in Peers; keys it owns are computed
	// locally without a peer round-trip.
	Self string
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = 1024
	}
	if o.MaxWatchDeltas <= 0 {
		o.MaxWatchDeltas = 4096
	}
	if o.LogWriter == nil {
		o.LogWriter = os.Stderr
	}
	return o
}

// Server is the rmtd HTTP handler. Create with New, serve with any
// http.Server, release the worker pool with Close.
type Server struct {
	opts    Options
	pool    *eval.Pool
	cache   *resultCache
	metrics *serverMetrics
	mux     *http.ServeMux

	// ring maps canonical instance keys to owning peers; nil when the server
	// runs standalone (no Peers configured).
	ring       *hashRing
	peerClient *http.Client

	logMu sync.Mutex
}

// New builds a Server with started workers.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		pool:    eval.NewPool(opts.Workers, opts.QueueDepth),
		cache:   newResultCache(opts.CacheSize),
		metrics: newServerMetrics(),
		mux:     http.NewServeMux(),
	}
	if len(opts.Peers) > 0 {
		s.ring = newHashRing(opts.Peers)
		s.peerClient = &http.Client{Timeout: 2 * time.Second}
	}
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/protocols", s.instrument("/v1/protocols", s.handleProtocols))
	s.mux.HandleFunc("POST /v1/feasibility", s.instrument("/v1/feasibility", s.handleFeasibility))
	s.mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	s.mux.HandleFunc("POST /v1/watch", s.instrument("/v1/watch", s.handleWatch))
	s.mux.HandleFunc("POST /internal/cache", s.instrument("/internal/cache", s.handleInternalCache))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops admission and drains in-flight work — the SIGTERM half of
// graceful shutdown (the HTTP listener is shut down by the caller first).
func (s *Server) Close() { s.pool.Close() }

// CacheHitRatio exposes hits/(hits+misses) for tests and the load driver.
func (s *Server) CacheHitRatio() float64 { return s.metrics.hitRatio() }

// PeerCacheHits exposes the number of bodies this shard served out of a
// peer's cache instead of recomputing (tests and the fleet load driver).
func (s *Server) PeerCacheHits() int64 { return s.metrics.peerHits.Load() }

// instrument wraps a handler with latency/status accounting and the
// structured access log.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		s.metrics.observe(endpoint, rec.code, d)
		s.logRequest(r.Method, endpoint, rec.code, d, rec.cache)
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code  int
	cache string // "hit", "miss" or "" for uncacheable endpoints
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's Flush
// and EnableFullDuplex — the watch stream needs both.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) logRequest(method, path string, status int, d time.Duration, cache string) {
	entry := struct {
		Time   string  `json:"time"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		Ms     float64 `json:"ms"`
		Cache  string  `json:"cache,omitempty"`
	}{time.Now().UTC().Format(time.RFC3339Nano), method, path, status, float64(d.Microseconds()) / 1000, cache}
	b, err := json.Marshal(entry)
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.opts.LogWriter.Write(append(b, '\n'))
}

// ---------------------------------------------------------------- responses

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
	writeJSON(w, status, append(b, '\n'))
}

func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ----------------------------------------------------------- plain handlers

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, []byte("{\"status\":\"ok\"}\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.pool.Depth(), s.pool.Workers(), s.cache.len())
}

// ProtocolInfo describes one registered protocol to clients.
type ProtocolInfo struct {
	Name               string `json:"name"`
	NeedsFullKnowledge bool   `json:"needs_full_knowledge,omitempty"`
	AllDecide          bool   `json:"all_decide,omitempty"`
}

// ProtocolsResponse is the GET /v1/protocols body: everything a client can
// name in a RunRequest.
type ProtocolsResponse struct {
	Protocols []ProtocolInfo `json:"protocols"`
	Engines   []string       `json:"engines"`
	Schedules []string       `json:"schedules"`
	Attacks   []string       `json:"attacks"`
	Knowledge []string       `json:"knowledge"`
}

func (s *Server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	resp := ProtocolsResponse{
		Engines:   network.EngineNames(),
		Schedules: network.SchedulerNames(),
		Attacks:   byzantine.Names(),
	}
	for _, name := range protocol.Names() {
		p, _ := protocol.Get(name)
		caps := p.Caps()
		resp.Protocols = append(resp.Protocols, ProtocolInfo{
			Name:               name,
			NeedsFullKnowledge: caps.NeedsFullKnowledge,
			AllDecide:          caps.AllDecide,
		})
	}
	for _, k := range gen.Levels() {
		resp.Knowledge = append(resp.Knowledge, k.String())
	}
	body, err := marshalBody(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// --------------------------------------------------------- instance parsing

// InstanceRequest is the textual instance tuple shared by both POST
// endpoints — the same formats the CLI flags accept.
type InstanceRequest struct {
	// Graph is an edge list, e.g. "0-1 0-2 1-3 2-3".
	Graph string `json:"graph"`
	// Structure is the adversary structure, e.g. "1;2" ({1},{2}).
	// Empty means no corruption.
	Structure string `json:"structure,omitempty"`
	// Knowledge is adhoc (default), radius1..radius3, or full.
	Knowledge string `json:"knowledge,omitempty"`
	Dealer    int    `json:"dealer"`
	Receiver  int    `json:"receiver"`
}

func (q InstanceRequest) build() (*instance.Instance, gen.Knowledge, error) {
	if strings.TrimSpace(q.Graph) == "" {
		return nil, 0, fmt.Errorf("graph is required")
	}
	g, err := graph.ParseEdgeList(q.Graph)
	if err != nil {
		return nil, 0, err
	}
	z, err := cliutil.ParseStructure(q.Structure)
	if err != nil {
		return nil, 0, err
	}
	level := gen.AdHoc
	if q.Knowledge != "" {
		if level, err = cliutil.ParseKnowledge(q.Knowledge); err != nil {
			return nil, 0, err
		}
	}
	in, err := gen.Build(g, z, level, q.Dealer, q.Receiver)
	if err != nil {
		return nil, 0, err
	}
	return in, level, nil
}

// ------------------------------------------------------- pooled computation

// statusClientClosedRequest is nginx's convention for "the client went away
// before we could answer" — there is no official HTTP code for it.
const statusClientClosedRequest = 499

// compute runs fn on the worker pool under the request deadline and returns
// the response body. fn receives the deadline context, which is also
// canceled when the client disconnects; fn must poll it during long work so
// an abandoned request frees its worker slot. compute maps overload to 429,
// deadline expiry to 504 and client disconnect to 499, recording each
// outcome in the metrics; a nil body means the reply was already sent.
func (s *Server) compute(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context) ([]byte, error)) []byte {
	type outcome struct {
		body []byte
		err  error
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	done := make(chan outcome, 1)
	job := func() {
		defer func() {
			// A panicking query must not take the daemon down with it:
			// protocol and search code trusts its inputs more than a
			// network service should.
			if p := recover(); p != nil {
				done <- outcome{nil, fmt.Errorf("panic: %v", p)}
			}
		}()
		body, err := fn(ctx)
		done <- outcome{body, err}
	}
	if !s.pool.TrySubmit(job) {
		s.metrics.rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "overloaded: %d requests in flight", s.pool.Depth())
		return nil
	}
	select {
	case out := <-done:
		if out.err != nil {
			if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
				s.interrupted(w, r)
				return nil
			}
			writeError(w, http.StatusInternalServerError, "%v", out.err)
			return nil
		}
		return out.body
	case <-ctx.Done():
		s.interrupted(w, r)
		return nil
	}
}

// interrupted answers a request whose compute context ended before a result:
// a client disconnect (the parent request context is done) is logged as 499
// and counted in rmtd_client_cancels_total — it is not a compute timeout and
// must not skew that metric — while a genuine deadline expiry is a 504
// counted in rmtd_timeouts_total.
func (s *Server) interrupted(w http.ResponseWriter, r *http.Request) {
	if r.Context().Err() != nil {
		s.metrics.cancels.Add(1)
		writeError(w, statusClientClosedRequest, "client closed the request")
		return
	}
	s.metrics.timeouts.Add(1)
	writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %v", s.opts.RequestTimeout)
}

// serveCached answers from the result cache or computes, caches and serves.
// The incumbent body always wins (see resultCache.put), so equal cache keys
// get byte-identical replies regardless of worker count or arrival order.
//
// ownerKey is the instance's canonical content hash, the unit of fleet
// ownership: in a sharded fleet, a local miss on a key another shard owns
// first asks that peer's cache (see fetchFromPeer) before computing.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key, ownerKey string, fn func(ctx context.Context) ([]byte, error)) {
	rec, _ := w.(*statusRecorder)
	if body, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		if rec != nil {
			rec.cache = "hit"
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	s.metrics.cacheMisses.Add(1)
	if rec != nil {
		rec.cache = "miss"
	}
	if body, ok := s.fetchFromPeer(r.Context(), key, ownerKey); ok {
		if rec != nil {
			rec.cache = "peer"
		}
		s.cache.put(key, body)
		writeJSON(w, http.StatusOK, body)
		return
	}
	body := s.compute(w, r, fn)
	if body == nil {
		return
	}
	s.cache.put(key, body)
	if cached, ok := s.cache.get(key); ok {
		body = cached
	}
	writeJSON(w, http.StatusOK, body)
}

// fetchFromPeer asks the owning peer's cache for key when this server is a
// fleet shard that does not own ownerKey. A hit returns the owner's exact
// bytes (preserving fleet-wide byte-identity); any miss or transport error
// falls back to local compute — the peer protocol is an optimization, never
// a dependency.
func (s *Server) fetchFromPeer(ctx context.Context, key, ownerKey string) ([]byte, bool) {
	if s.ring == nil {
		return nil, false
	}
	owner := s.ring.owner(ownerKey)
	if owner == "" || owner == s.opts.Self {
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/internal/cache", strings.NewReader(key))
	if err != nil {
		return nil, false
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := s.peerClient.Do(req)
	if err != nil {
		s.metrics.peerMisses.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		s.metrics.peerMisses.Add(1)
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.opts.MaxBodyBytes*64))
	if err != nil {
		s.metrics.peerMisses.Add(1)
		return nil, false
	}
	s.metrics.peerHits.Add(1)
	return body, true
}

// handleInternalCache is the shard-to-shard cache protocol: the request body
// is a full result-cache key, the response is the cached body verbatim (200)
// or 404 on a miss. It never computes — peers fall back to their own pool —
// so a fetch storm cannot amplify load across the fleet.
func (s *Server) handleInternalCache(w http.ResponseWriter, r *http.Request) {
	key, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read key: %v", err)
		return
	}
	body, ok := s.cache.get(string(key))
	if !ok {
		writeError(w, http.StatusNotFound, "not cached")
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "body: %v", err)
		return false
	}
	return true
}

// -------------------------------------------------------------- feasibility

// CutWitness is an impossibility witness (C1, C2, B) in JSON form.
type CutWitness struct {
	C1 []int `json:"c1"`
	C2 []int `json:"c2"`
	B  []int `json:"b"`
}

// Verdict is one model's feasibility answer: solvable, or a cut witness.
type Verdict struct {
	Solvable bool        `json:"solvable"`
	Witness  *CutWitness `json:"witness,omitempty"`
}

// FeasibilityRequest is the POST /v1/feasibility body: the instance tuple
// plus the message-adversary suppression budget d for the MBRB verdict.
type FeasibilityRequest struct {
	InstanceRequest
	// MABudget is the message adversary's per-broadcast suppression budget
	// d for the MBRB bound n > 3t + 2d; default 0 (no suppression). The
	// MBRB verdict is only present for complete-graph instances, where the
	// bound is tight.
	MABudget int `json:"ma_budget,omitempty"`
	// Listen is the adversary's listening structure ℒ for the SMT verdict,
	// in the CLI structure syntax ("2;3" or "2,3;4"); empty means no
	// listening (the SMT verdict then degenerates to the disruption
	// condition alone).
	Listen string `json:"listen,omitempty"`
}

// MBRBVerdict is the signature-free reliable-broadcast answer: the bound
// n > 3t + 2d evaluated on the instance's (n, t) and the requested d.
type MBRBVerdict struct {
	N        int  `json:"n"`
	T        int  `json:"t"`
	D        int  `json:"d"`
	Feasible bool `json:"feasible"`
}

// SMTVerdict is the secure-message-transmission answer under the fully
// generalised adversary (𝒵, ℒ): Dowden's disruption and secrecy cut
// conditions, with the witness on whichever side holds — the share-routing
// path family when feasible, the violated cut when not.
type SMTVerdict struct {
	Feasible bool `json:"feasible"`
	// Listen echoes the listening structure's maximal sets as normalized.
	Listen [][]int `json:"listen"`
	// Paths is the canonical witness family the smt protocol would route
	// shares over; present exactly when feasible.
	Paths [][]int `json:"paths,omitempty"`
	// DisruptionCut is the corruption ground when it alone disconnects the
	// dealer from the receiver.
	DisruptionCut []int `json:"disruption_cut,omitempty"`
	// SecrecyCut and SecrecyListen witness a failed secrecy condition: the
	// ground ∪ listening-set union that separates the terminals, and the
	// maximal listening set responsible.
	SecrecyCut    []int `json:"secrecy_cut,omitempty"`
	SecrecyListen []int `json:"secrecy_listen,omitempty"`
}

// FeasibilityResponse is the POST /v1/feasibility body. PKA is the partial
// knowledge characterization (Definition 3 RMT-cut); ZCPA is the ad hoc one
// (Definition 7 𝒵-pp cut), present only for adhoc-knowledge instances; MBRB
// is the message-adversary broadcast bound n > 3t + 2d, present only for
// complete-graph instances.
type FeasibilityResponse struct {
	// Key is the instance's canonical content hash — equal keys mean equal
	// (G, 𝒵, γ, D, R) tuples, however the request spelled them.
	Key       string       `json:"key"`
	Knowledge string       `json:"knowledge"`
	PKA       Verdict      `json:"pka"`
	ZCPA      *Verdict     `json:"zcpa,omitempty"`
	MBRB      *MBRBVerdict `json:"mbrb,omitempty"`
	SMT       *SMTVerdict  `json:"smt,omitempty"`
}

func (s *Server) handleFeasibility(w http.ResponseWriter, r *http.Request) {
	var req FeasibilityRequest
	if !s.decode(w, r, &req) {
		return
	}
	in, level, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "instance: %v", err)
		return
	}
	if req.MABudget < 0 {
		writeError(w, http.StatusBadRequest, "ma_budget: must be >= 0")
		return
	}
	listen, err := cliutil.ParseStructure(req.Listen)
	if err != nil {
		writeError(w, http.StatusBadRequest, "listen: %v", err)
		return
	}
	// The key carries the knowledge level alongside the canonical hash:
	// the response depends on both (the "knowledge" field, and the
	// adhoc-only ZCPA verdict), and distinct levels can share a canonical
	// hash — on triangle-free graphs the radius-1 view γ coincides with the
	// ad hoc one, so radius1 and adhoc requests describe the same instance
	// tuple yet need different bodies. v2 added the suppression budget,
	// which parameterizes the MBRB verdict; v3 added the normalized
	// listening structure, which parameterizes the SMT verdict — the bump
	// retires every v2-era entry, so a cached no-listening body can never
	// answer a listening-structure request.
	key := fmt.Sprintf("feasibility-v3\n%s\nd=%d\nlisten=%s\n%s",
		level, req.MABudget, cliutil.FormatStructure(listen), in.CanonicalKey())
	s.serveCached(w, r, key, in.CanonicalKey(), func(ctx context.Context) ([]byte, error) {
		resp := FeasibilityResponse{Key: in.CanonicalKey(), Knowledge: level.String()}
		if mv, err := feasibility.MBRBVerdictFor(in, req.MABudget); err == nil {
			resp.MBRB = &MBRBVerdict{N: mv.N, T: mv.T, D: mv.D, Feasible: mv.Feasible}
		}
		resp.SMT = smtVerdictOf(in, listen)
		cut, found, err := core.FindRMTCutCtx(ctx, in)
		if err != nil {
			return nil, err
		}
		if found {
			resp.PKA.Witness = witnessOf(cut.C1, cut.C2, cut.B)
		} else {
			resp.PKA.Solvable = true
		}
		if level == gen.AdHoc {
			v := &Verdict{}
			zcut, zfound, err := zcpa.FindRMTZppCutCtx(ctx, in)
			if err != nil {
				return nil, err
			}
			if zfound {
				v.Witness = witnessOf(zcut.C1, zcut.C2, zcut.B)
			} else {
				v.Solvable = true
			}
			resp.ZCPA = v
		}
		return marshalBody(resp)
	})
}

func witnessOf(c1, c2, b nodeset.Set) *CutWitness {
	return &CutWitness{C1: members(c1), C2: members(c2), B: members(b)}
}

// smtVerdictOf evaluates the Dowden cut conditions under the requested
// listening structure and flattens the witnesses for JSON.
func smtVerdictOf(in *instance.Instance, listen adversary.Structure) *SMTVerdict {
	fv := feasibility.SMTVerdictFor(in, listen)
	v := &SMTVerdict{Feasible: fv.Feasible, Listen: make([][]int, 0, listen.NumMaximal())}
	for _, l := range listen.Maximal() {
		v.Listen = append(v.Listen, members(l))
	}
	for _, p := range fv.Paths {
		v.Paths = append(v.Paths, []int(p))
	}
	if fv.DisruptionFound {
		v.DisruptionCut = members(fv.DisruptionCut)
	}
	if fv.SecrecyFound {
		v.SecrecyCut = members(fv.SecrecyCut)
		v.SecrecyListen = members(fv.SecrecyListen)
	}
	return v
}

// members is Members() with a non-nil result, so JSON renders [] not null.
func members(s nodeset.Set) []int {
	m := s.Members()
	if m == nil {
		m = []int{}
	}
	return m
}

// --------------------------------------------------------------------- runs

// RunRequest asks for Trials executions of a registered protocol on the
// instance, each with a deterministically derived schedule seed.
type RunRequest struct {
	InstanceRequest
	// Protocol is a registry name (GET /v1/protocols); default "pka".
	Protocol string `json:"protocol,omitempty"`
	// Value is the dealer value x_D; default "1".
	Value string `json:"value,omitempty"`
	// Engine is lockstep (default), goroutine or async.
	Engine string `json:"engine,omitempty"`
	// Schedule names the async delivery policy; default "sync". Requires
	// the async engine for any other value.
	Schedule string `json:"schedule,omitempty"`
	// Seed is the master seed; trial i runs with
	// eval.TrialSeed(Seed, 0, i), reported per trial for reproduction.
	Seed int64 `json:"seed,omitempty"`
	// Trials is the number of executions; default 1.
	Trials int `json:"trials,omitempty"`
	// Corrupt lists the corrupted nodes (must be admissible under the
	// structure); empty means an all-honest run.
	Corrupt []int `json:"corrupt,omitempty"`
	// Attack is the Byzantine strategy for the corrupted nodes; default
	// "silent".
	Attack string `json:"attack,omitempty"`
	// Forged is the attacker's preferred wrong value; default
	// "forged-by-<attack>".
	Forged string `json:"forged,omitempty"`
	// MaxRounds bounds each execution; 0 = engine default (2·|V|+2).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Transcript embeds each trial's event stream (JSONL tracer events) in
	// the response.
	Transcript bool `json:"transcript,omitempty"`
}

// TrialResult is one execution's outcome.
type TrialResult struct {
	// Seed is the derived schedule seed; rmtsim -seed reproduces the trial.
	Seed     int64  `json:"seed"`
	Decided  bool   `json:"decided"`
	Decision string `json:"decision,omitempty"`
	// Correct reports Decision == the dealer value (safety).
	Correct bool            `json:"correct"`
	Rounds  int             `json:"rounds"`
	Metrics network.Metrics `json:"metrics"`
	// Transcript holds the run's event stream when requested.
	Transcript []json.RawMessage `json:"transcript,omitempty"`
}

// RunResponse is the POST /v1/run body.
type RunResponse struct {
	Key      string        `json:"key"`
	Protocol string        `json:"protocol"`
	Engine   string        `json:"engine"`
	Schedule string        `json:"schedule"`
	Seed     int64         `json:"seed"`
	Trials   []TrialResult `json:"trials"`
}

func (r *RunRequest) normalize() {
	if r.Protocol == "" {
		r.Protocol = protocol.PKA
	}
	if r.Value == "" {
		r.Value = "1"
	}
	if r.Engine == "" {
		r.Engine = "lockstep"
	}
	if r.Schedule == "" {
		r.Schedule = "sync"
	}
	if r.Trials <= 0 {
		r.Trials = 1
	}
	if r.Attack == "" {
		r.Attack = "silent"
	}
	if r.Forged == "" {
		r.Forged = "forged-by-" + r.Attack
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	req.normalize()
	in, level, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "instance: %v", err)
		return
	}

	// Validate everything on the request goroutine so bad requests are
	// rejected in microseconds without consuming a pool slot.
	p, ok := protocol.Get(req.Protocol)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown protocol %q (see /v1/protocols)", req.Protocol)
		return
	}
	if p.Caps().NeedsFullKnowledge && level != gen.FullKnowledge {
		writeError(w, http.StatusBadRequest, "protocol %q requires \"knowledge\": \"full\"", req.Protocol)
		return
	}
	eng, err := network.ParseEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := network.NewScheduler(req.Schedule, 0); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if eng != network.Async && req.Schedule != "sync" {
		writeError(w, http.StatusBadRequest, "schedule %q requires \"engine\": \"async\"", req.Schedule)
		return
	}
	if req.Trials > s.opts.MaxTrials {
		writeError(w, http.StatusBadRequest, "trials %d exceeds the limit %d", req.Trials, s.opts.MaxTrials)
		return
	}
	if req.MaxRounds < 0 {
		writeError(w, http.StatusBadRequest, "max_rounds must be ≥ 0")
		return
	}
	corrupt := nodeset.Of(req.Corrupt...)
	if !in.Admissible(corrupt) {
		writeError(w, http.StatusBadRequest, "corruption set %v is not admissible under %v", corrupt, in.Z)
		return
	}
	strategy, ok := byzantine.Get(req.Attack)
	if !ok {
		writeError(w, http.StatusBadRequest, "%v", byzantine.UnknownError(req.Attack))
		return
	}

	key := runCacheKey(in, &req)
	s.serveCached(w, r, key, in.CanonicalKey(), func(ctx context.Context) ([]byte, error) {
		resp, err := s.runTrials(ctx, in, &req, eng, corrupt, strategy)
		if err != nil {
			return nil, err
		}
		return marshalBody(resp)
	})
}

// runCacheKey derives the result-cache key from the canonical instance hash
// and the normalized run parameters — everything the response depends on.
func runCacheKey(in *instance.Instance, req *RunRequest) string {
	var b strings.Builder
	b.WriteString("run-v1\n")
	b.WriteString(in.CanonicalKey())
	fmt.Fprintf(&b, "\nprotocol: %s\nvalue: %s\nengine: %s\nschedule: %s\nseed: %d\ntrials: %d\ncorrupt: %s\nattack: %s\nforged: %s\nmaxrounds: %d\ntranscript: %v\n",
		req.Protocol, req.Value, req.Engine, req.Schedule, req.Seed, req.Trials,
		nodeset.Of(req.Corrupt...).Key(), req.Attack, req.Forged, req.MaxRounds, req.Transcript)
	return b.String()
}

// runTrialWorkers bounds one request's internal fan-out so a large Trials
// value cannot monopolize the host on top of the pool's own parallelism.
const runTrialWorkers = 4

func (s *Server) runTrials(ctx context.Context, in *instance.Instance, req *RunRequest, eng network.Engine, corrupt nodeset.Set, strategy byzantine.Strategy) (*RunResponse, error) {
	xD := network.Value(req.Value)
	var firstErr error
	var errMu sync.Mutex
	workers := 1
	if req.Trials > 1 {
		workers = runTrialWorkers
	}
	trials := eval.ParallelMap(req.Trials, workers, func(i int) TrialResult {
		// Each trial is bounded by MaxRounds, so polling the deadline
		// between trials is enough to keep abandoned requests from holding
		// a worker through a long multi-trial sweep.
		if err := ctx.Err(); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return TrialResult{}
		}
		schedSeed := eval.TrialSeed(req.Seed, 0, i)
		opts := protocol.Options{Engine: eng, MaxRounds: req.MaxRounds}
		if eng == network.Async {
			sched, err := network.NewScheduler(req.Schedule, schedSeed)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return TrialResult{}
			}
			opts.Scheduler = sched
		}
		if !corrupt.IsEmpty() {
			opts.Corrupt = strategy.Build(in, corrupt, network.Value(req.Forged))
		}
		var transcript bytes.Buffer
		var jt *network.JSONLTracer
		if req.Transcript {
			jt = network.NewJSONLTracer(&transcript)
			opts.Tracers = []network.Tracer{jt}
		}
		res, err := protocol.RunByName(req.Protocol, in, xD, opts)
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return TrialResult{}
		}
		tr := TrialResult{Seed: schedSeed, Rounds: res.Rounds, Metrics: res.Metrics}
		if v, decided := res.DecisionOf(in.Receiver); decided {
			tr.Decided = true
			tr.Decision = string(v)
			tr.Correct = v == xD
		}
		if jt != nil && jt.Err() == nil {
			for _, line := range bytes.Split(bytes.TrimSpace(transcript.Bytes()), []byte("\n")) {
				if len(line) > 0 {
					tr.Transcript = append(tr.Transcript, json.RawMessage(line))
				}
			}
		}
		return tr
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return &RunResponse{
		Key:      in.CanonicalKey(),
		Protocol: req.Protocol,
		Engine:   req.Engine,
		Schedule: req.Schedule,
		Seed:     req.Seed,
		Trials:   trials,
	}, nil
}
