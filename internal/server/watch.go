package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

// WatchEvent is one line of the POST /v1/watch response stream: the
// feasibility verdicts for one revision of a churning instance.
type WatchEvent struct {
	// Rev is the revision index: 0 is the base instance, k the instance
	// after the k-th delta.
	Rev int `json:"rev"`
	// Key identifies the revision: the instance's canonical hash at rev 0,
	// the order-sensitive delta chain key (instance.ChainKey) afterwards.
	Key       string   `json:"key"`
	Knowledge string   `json:"knowledge"`
	PKA       Verdict  `json:"pka"`
	ZCPA      *Verdict `json:"zcpa,omitempty"`
}

// watchError is the terminal error line of a watch stream: once verdicts
// have been streamed the status code is spent, so errors travel in-band.
type watchError struct {
	Error string `json:"error"`
	Rev   int    `json:"rev"`
}

// handleWatch is POST /v1/watch — the long-lived feasibility subscription:
// the client sends a base instance followed by a stream of topology deltas,
// and the daemon streams back the verdict *changes*. Wire format, one JSON
// document per line (ndjson) in both directions:
//
//	request:  line 1    an InstanceRequest (the base instance)
//	          line 2... one instance.Delta each ({"add_edges": [[0,2]], ...})
//	response: one WatchEvent per verdict change (rev 0 always reports the
//	          base verdict), or a terminal {"error": ...} line
//
// Each revision is answered by the incremental checkers (witness repair
// first, full enumeration only on fallback) and cached in the result LRU
// under the revision's chain key — a domain-separated hash of (previous
// key, delta) that can never equal any base instance's canonical key, so
// chain revisions and base instances never shadow or evict one another. In
// a fleet the whole stream is routed by the *base* key and every revision's
// cache entry lives on the base owner's shard, preserving the peer-cache
// ownership semantics for the chain.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	// Full duplex lets the handler keep reading deltas from the request
	// body after the first verdict line is written — the interactive
	// subscription shape. When the transport can't (pre-1.21 HTTP/1.1),
	// clients that upload their whole delta stream up front still work.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64<<10), int(s.opts.MaxBodyBytes))

	first, err := nextLine(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "watch: missing instance line")
		return
	}
	var req InstanceRequest
	dec := json.NewDecoder(bytes.NewReader(first))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "instance line: %v", err)
		return
	}
	in, level, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "instance: %v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	base := in.CanonicalKey()
	key := base
	incR := core.NewIncrementalCut()
	var incZ *zcpa.IncrementalCut
	if level == gen.AdHoc {
		incZ = zcpa.NewIncrementalCut()
	}
	cur := in
	var prev *WatchEvent
	for rev := 0; ; rev++ {
		if rev > s.opts.MaxWatchDeltas {
			s.watchFail(w, rc, rev, "delta limit %d exceeded", s.opts.MaxWatchDeltas)
			return
		}
		ev, body, err := s.watchVerdict(r.Context(), cur, level, base, key, rev, incR, incZ)
		if err != nil {
			s.watchFail(w, rc, rev, "%v", err)
			return
		}
		if prev == nil || verdictChanged(prev, ev) {
			if _, err := w.Write(body); err != nil {
				return
			}
			rc.Flush()
			s.metrics.watchEvents.Add(1)
		}
		prev = ev

		line, err := nextLine(sc)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.watchFail(w, rc, rev+1, "read delta: %v", err)
			}
			return // end of subscription
		}
		var d instance.Delta
		ddec := json.NewDecoder(bytes.NewReader(line))
		ddec.DisallowUnknownFields()
		if err := ddec.Decode(&d); err != nil {
			s.watchFail(w, rc, rev+1, "delta %d: %v", rev+1, err)
			return
		}
		if err := d.Validate(cur); err != nil {
			s.watchFail(w, rc, rev+1, "delta %d: %v", rev+1, err)
			return
		}
		next, err := gen.ApplyDelta(cur, d, level)
		if err != nil {
			s.watchFail(w, rc, rev+1, "delta %d: %v", rev+1, err)
			return
		}
		cur = next
		key = instance.ChainKey(key, d)
	}
}

// watchVerdict produces one revision's verdict event, preferring the local
// LRU, then the base owner's peer cache, then computing on the worker pool
// under the per-step deadline. The returned body is exactly the bytes the
// cache holds (first body wins), so equal chains stream byte-identical
// events fleet-wide. Compute paths advance the incremental checkers as a
// side effect; cache and peer hits re-seed them from the decoded (and
// re-verified) witness so the next revision can still repair.
func (s *Server) watchVerdict(ctx context.Context, cur *instance.Instance, level gen.Knowledge, base, key string, rev int, incR *core.IncrementalCut, incZ *zcpa.IncrementalCut) (*WatchEvent, []byte, error) {
	cacheKey := "watch-v1\n" + level.String() + "\n" + key
	if body, ok := s.cache.get(cacheKey); ok {
		if ev, err := decodeWatchEvent(body); err == nil {
			s.metrics.cacheHits.Add(1)
			seedCheckers(cur, ev, incR, incZ)
			return ev, body, nil
		}
	}
	s.metrics.cacheMisses.Add(1)
	if body, ok := s.fetchFromPeer(ctx, cacheKey, base); ok {
		if ev, err := decodeWatchEvent(body); err == nil {
			s.cache.put(cacheKey, body)
			seedCheckers(cur, ev, incR, incZ)
			return ev, body, nil
		}
	}
	body, err := s.poolCompute(ctx, func(ctx context.Context) ([]byte, error) {
		ev := &WatchEvent{Rev: rev, Key: key, Knowledge: level.String()}
		cut, found, err := incR.CheckCtx(ctx, cur)
		if err != nil {
			return nil, err
		}
		if found {
			ev.PKA.Witness = witnessOf(cut.C1, cut.C2, cut.B)
		} else {
			ev.PKA.Solvable = true
		}
		if incZ != nil {
			v := &Verdict{}
			zcut, zfound, err := incZ.CheckCtx(ctx, cur)
			if err != nil {
				return nil, err
			}
			if zfound {
				v.Witness = witnessOf(zcut.C1, zcut.C2, zcut.B)
			} else {
				v.Solvable = true
			}
			ev.ZCPA = v
		}
		return marshalBody(ev)
	})
	if err != nil {
		return nil, nil, err
	}
	s.cache.put(cacheKey, body)
	if cached, ok := s.cache.get(cacheKey); ok {
		body = cached
	}
	ev, err := decodeWatchEvent(body)
	if err != nil {
		return nil, nil, err
	}
	return ev, body, nil
}

// poolCompute runs fn on the worker pool under the per-request deadline and
// returns its body. Unlike compute it writes no HTTP response — watch
// streams report errors in-band after the status line is spent.
func (s *Server) poolCompute(parent context.Context, fn func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	ctx, cancel := context.WithTimeout(parent, s.opts.RequestTimeout)
	defer cancel()
	type outcome struct {
		body []byte
		err  error
	}
	done := make(chan outcome, 1)
	job := func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{nil, fmt.Errorf("panic: %v", p)}
			}
		}()
		body, err := fn(ctx)
		done <- outcome{body, err}
	}
	if !s.pool.TrySubmit(job) {
		s.metrics.rejected.Add(1)
		return nil, fmt.Errorf("overloaded: %d requests in flight", s.pool.Depth())
	}
	select {
	case out := <-done:
		return out.body, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// seedCheckers primes the incremental checkers with a revision verdict that
// was served from a cache rather than computed, so the next delta can be
// answered by witness repair. Cached witnesses are re-verified before
// seeding — a body is cache-authentic but the checker contract trusts
// seeds, so the boundary verifies.
func seedCheckers(cur *instance.Instance, ev *WatchEvent, incR *core.IncrementalCut, incZ *zcpa.IncrementalCut) {
	if wv := ev.PKA.Witness; wv != nil {
		cut := core.RMTCut{C1: nodeset.Of(wv.C1...), C2: nodeset.Of(wv.C2...), B: nodeset.Of(wv.B...)}
		if core.VerifyRMTCut(cur, cut) == nil {
			incR.Seed(cut, true)
		}
	} else if ev.PKA.Solvable {
		incR.Seed(core.RMTCut{}, false)
	}
	if incZ == nil || ev.ZCPA == nil {
		return
	}
	if wv := ev.ZCPA.Witness; wv != nil {
		cut := zcpa.ZppCut{C1: nodeset.Of(wv.C1...), C2: nodeset.Of(wv.C2...), B: nodeset.Of(wv.B...)}
		if zcpa.VerifyZppCut(cur, cut) == nil {
			incZ.Seed(cut, true)
		}
	} else if ev.ZCPA.Solvable {
		incZ.Seed(zcpa.ZppCut{}, false)
	}
}

func decodeWatchEvent(body []byte) (*WatchEvent, error) {
	ev := &WatchEvent{}
	if err := json.Unmarshal(body, ev); err != nil {
		return nil, err
	}
	return ev, nil
}

// verdictChanged reports whether the solvability verdicts flipped between
// consecutive revisions. Witness sets are free to differ (repair produces
// different-but-valid cuts); only verdict flips are stream events.
func verdictChanged(prev, next *WatchEvent) bool {
	if prev.PKA.Solvable != next.PKA.Solvable {
		return true
	}
	if (prev.ZCPA == nil) != (next.ZCPA == nil) {
		return true
	}
	return prev.ZCPA != nil && prev.ZCPA.Solvable != next.ZCPA.Solvable
}

// watchFail emits the terminal in-band error line of a watch stream.
func (s *Server) watchFail(w http.ResponseWriter, rc *http.ResponseController, rev int, format string, args ...any) {
	b, err := json.Marshal(watchError{Error: fmt.Sprintf(format, args...), Rev: rev})
	if err != nil {
		return
	}
	w.Write(append(b, '\n'))
	rc.Flush()
}

// nextLine returns the next non-blank line of the stream, or io.EOF when
// the client half-closed.
func nextLine(sc *bufio.Scanner) ([]byte, error) {
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) > 0 {
			return line, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}
