package server

import (
	"hash/fnv"
	"sort"
)

// ringVnodes is the number of virtual points each shard contributes to the
// hash ring. 64 points per shard keeps the load split within a few percent
// of uniform for small fleets while keeping the ring tiny.
const ringVnodes = 64

// hashRing is a consistent-hash ring over shard base URLs, keyed by the
// instance's canonical content hash (instance.CanonicalKey). Both the router
// and every shard build the ring from the same shard list, so they agree on
// which shard owns which instance without any coordination; adding a shard
// moves only ~1/n of the keyspace.
type hashRing struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint32
	shard string
}

// newHashRing builds the ring. The shard list order does not matter: points
// are positioned by hash alone.
func newHashRing(shards []string) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(shards)*ringVnodes)}
	for _, s := range shards {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(s, byte(i)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare) break by name so every ring built from
		// the same shard set is identical.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

func ringHash(s string, vnode byte) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	h.Write([]byte{'#', vnode})
	return h.Sum32()
}

// owner returns the shard owning key: the first ring point at or clockwise
// of the key's hash.
func (r *hashRing) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	target := h.Sum32()
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
