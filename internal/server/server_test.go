package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// solvableButterfly is the paper's quick-start instance: three disjoint
// dealer→receiver paths against the structure {{1},{2},{3}} — solvable in
// both the partial-knowledge and ad hoc characterizations.
const solvableButterfly = `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.LogWriter == nil {
		opts.LogWriter = io.Discard
	}
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

func TestProtocolsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts, "/v1/protocols")
	if code != http.StatusOK {
		t.Fatalf("protocols: %d %s", code, body)
	}
	var resp ProtocolsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]ProtocolInfo)
	for _, p := range resp.Protocols {
		names[p.Name] = p
	}
	for _, want := range []string{"pka", "zcpa", "ppa", "broadcast"} {
		if _, ok := names[want]; !ok {
			t.Errorf("protocol %q missing from %v", want, resp.Protocols)
		}
	}
	if !names["ppa"].NeedsFullKnowledge {
		t.Error("ppa should declare needs_full_knowledge")
	}
	if !names["broadcast"].AllDecide {
		t.Error("broadcast should declare all_decide")
	}
	if len(resp.Engines) != 3 || len(resp.Schedules) == 0 || len(resp.Attacks) == 0 || len(resp.Knowledge) == 0 {
		t.Fatalf("incomplete inventory: %+v", resp)
	}
}

// TestFeasibilityMBRBVerdict pins the message-adversary surface of the
// endpoint: complete-graph instances carry the n > 3t + 2d verdict at the
// requested budget (the K6 pair flips exactly at d), sparse instances omit
// it, and distinct budgets must not share cache entries.
func TestFeasibilityMBRBVerdict(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// K6 with singleton corruptions: n=6, t=1, so d=1 is feasible
	// (6 > 3+2) and d=2 is not (6 > 3+4 fails).
	const k6 = `"graph":"0-1 0-2 0-3 0-4 0-5 1-2 1-3 1-4 1-5 2-3 2-4 2-5 3-4 3-5 4-5","structure":"1;2;3;4","dealer":0,"receiver":5`
	for _, c := range []struct {
		d        int
		feasible bool
	}{{0, true}, {1, true}, {2, false}} {
		code, body := post(t, ts, "/v1/feasibility", fmt.Sprintf(`{%s,"ma_budget":%d}`, k6, c.d))
		if code != http.StatusOK {
			t.Fatalf("feasibility d=%d: %d %s", c.d, code, body)
		}
		var resp FeasibilityResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.MBRB == nil {
			t.Fatalf("d=%d: complete instance has no mbrb verdict: %s", c.d, body)
		}
		if resp.MBRB.N != 6 || resp.MBRB.T != 1 || resp.MBRB.D != c.d || resp.MBRB.Feasible != c.feasible {
			t.Fatalf("d=%d: mbrb verdict %+v, want n=6 t=1 feasible=%v", c.d, resp.MBRB, c.feasible)
		}
	}

	// Sparse instances omit the verdict — the bound is only tight on
	// complete networks.
	code, body := post(t, ts, "/v1/feasibility", solvableButterfly)
	if code != http.StatusOK {
		t.Fatalf("feasibility: %d %s", code, body)
	}
	var resp FeasibilityResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.MBRB != nil {
		t.Fatalf("sparse instance grew an mbrb verdict: %+v", resp.MBRB)
	}

	if code, body := post(t, ts, "/v1/feasibility", `{"graph":"0-1","dealer":0,"receiver":1,"ma_budget":-1}`); code != http.StatusBadRequest {
		t.Fatalf("negative budget: %d %s", code, body)
	}
}

func TestFeasibilityVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	code, body := post(t, ts, "/v1/feasibility", solvableButterfly)
	if code != http.StatusOK {
		t.Fatalf("feasibility: %d %s", code, body)
	}
	var resp FeasibilityResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Key) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", resp.Key)
	}
	if !resp.PKA.Solvable || resp.PKA.Witness != nil {
		t.Fatalf("butterfly should be PKA-solvable: %+v", resp.PKA)
	}
	if resp.ZCPA == nil || !resp.ZCPA.Solvable {
		t.Fatalf("butterfly should be ZCPA-solvable: %+v", resp.ZCPA)
	}

	// A single path through one corruptible node is cut by {1} twice.
	code, body = post(t, ts, "/v1/feasibility", `{"graph":"0-1 1-2","structure":"1","dealer":0,"receiver":2}`)
	if code != http.StatusOK {
		t.Fatalf("feasibility: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PKA.Solvable || resp.PKA.Witness == nil {
		t.Fatalf("path instance should have an RMT-cut: %+v", resp.PKA)
	}
	if resp.ZCPA == nil || resp.ZCPA.Solvable || resp.ZCPA.Witness == nil {
		t.Fatalf("path instance should have a 𝒵-pp cut: %+v", resp.ZCPA)
	}

	// Full knowledge: no ZCPA verdict (the ad hoc condition doesn't apply).
	code, body = post(t, ts, "/v1/feasibility", `{"graph":"0-1 1-2","structure":"1","knowledge":"full","dealer":0,"receiver":2}`)
	if code != http.StatusOK {
		t.Fatalf("feasibility: %d %s", code, body)
	}
	resp = FeasibilityResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ZCPA != nil {
		t.Fatalf("full-knowledge verdict should omit zcpa: %+v", resp.ZCPA)
	}
	if resp.Knowledge != "full" {
		t.Fatalf("knowledge = %q", resp.Knowledge)
	}
}

// TestFeasibilityCanonicalCaching: permuted spellings of the same instance
// share one cache entry — the second spelling is a hit with an identical
// body, and the hit-ratio metric records it.
func TestFeasibilityCanonicalCaching(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	code, first := post(t, ts, "/v1/feasibility", solvableButterfly)
	if code != http.StatusOK {
		t.Fatalf("first: %d %s", code, first)
	}
	// Same instance: edges reordered and flipped, structure reordered.
	permuted := `{"graph":"4-3 2-0 1-0 3-0 4-1 2-4","structure":"3;2;1","dealer":0,"receiver":4}`
	code, second := post(t, ts, "/v1/feasibility", permuted)
	if code != http.StatusOK {
		t.Fatalf("second: %d %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("permuted spelling produced a different body:\n%s\nvs\n%s", first, second)
	}
	if ratio := s.CacheHitRatio(); ratio != 0.5 {
		t.Fatalf("hit ratio after 1 miss + 1 hit = %v, want 0.5", ratio)
	}
}

// TestFeasibilityCacheSeparatesKnowledgeLevels: on a triangle-free graph
// the radius-1 view coincides with the ad hoc one, so the two levels share
// one canonical instance hash — but their feasibility bodies differ (the
// "knowledge" label and the adhoc-only ZCPA verdict). A radius1 request
// priming the cache must not cause the adhoc request to be served the
// radius1 body.
func TestFeasibilityCacheSeparatesKnowledgeLevels(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// The 4-cycle 0-1-3-2-0 is triangle-free.
	const square = `"graph":"0-1 0-2 1-3 2-3","structure":"1;2","dealer":0,"receiver":3`
	code, radius1 := post(t, ts, "/v1/feasibility", fmt.Sprintf(`{%s,"knowledge":"radius1"}`, square))
	if code != http.StatusOK {
		t.Fatalf("radius1: %d %s", code, radius1)
	}
	code, adhoc := post(t, ts, "/v1/feasibility", fmt.Sprintf(`{%s}`, square))
	if code != http.StatusOK {
		t.Fatalf("adhoc: %d %s", code, adhoc)
	}
	var r1, ah FeasibilityResponse
	if err := json.Unmarshal(radius1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(adhoc, &ah); err != nil {
		t.Fatal(err)
	}
	if r1.Key != ah.Key {
		t.Fatalf("fixture no longer exercises the collision: canonical keys differ (%s vs %s)", r1.Key, ah.Key)
	}
	if r1.Knowledge != "radius1" || r1.ZCPA != nil {
		t.Fatalf("radius1 body mislabeled: %s", radius1)
	}
	if ah.Knowledge != "adhoc" {
		t.Fatalf("adhoc request served knowledge %q (cache key collision across levels)", ah.Knowledge)
	}
	if ah.ZCPA == nil {
		t.Fatalf("adhoc body is missing the ZCPA verdict: %s", adhoc)
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4,
		"protocol":"pka","value":"attack at dawn","corrupt":[2],"attack":"value-flip"}`
	code, body := post(t, ts, "/v1/run", req)
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	var resp RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trials) != 1 {
		t.Fatalf("trials = %d", len(resp.Trials))
	}
	tr := resp.Trials[0]
	if !tr.Decided || tr.Decision != "attack at dawn" || !tr.Correct {
		t.Fatalf("receiver outcome: %+v", tr)
	}
	if err := tr.Metrics.Reconcile(); err != nil {
		t.Fatalf("metrics do not reconcile: %v", err)
	}
}

func TestRunAsyncTrials(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4,
		"engine":"async","schedule":"random","seed":7,"trials":5}`
	code, body := post(t, ts, "/v1/run", req)
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	var resp RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trials) != 5 {
		t.Fatalf("trials = %d", len(resp.Trials))
	}
	seeds := make(map[int64]bool)
	for i, tr := range resp.Trials {
		if !tr.Decided || tr.Decision != "1" {
			t.Fatalf("trial %d undecided or wrong: %+v", i, tr)
		}
		if err := tr.Metrics.Reconcile(); err != nil {
			t.Fatalf("trial %d metrics: %v", i, err)
		}
		seeds[tr.Seed] = true
	}
	if len(seeds) != 5 {
		t.Fatalf("derived seeds collide: %v", seeds)
	}
}

func TestRunTranscript(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"graph":"0-1 1-2","dealer":0,"receiver":2,"protocol":"zcpa","transcript":true}`
	code, body := post(t, ts, "/v1/run", req)
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	var resp RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	events := resp.Trials[0].Transcript
	if len(events) == 0 {
		t.Fatal("transcript requested but empty")
	}
	for _, ev := range events {
		var e struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(ev, &e); err != nil || e.Ev == "" {
			t.Fatalf("malformed event %s: %v", ev, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxTrials: 8})
	base := `"graph":"0-1 0-2 1-3 2-3","structure":"1;2","dealer":0,"receiver":3`
	cases := []struct {
		name string
		body string
	}{
		{"empty graph", `{"structure":"1"}`},
		{"bad graph", `{"graph":"0--","dealer":0,"receiver":1}`},
		{"bad structure", `{"graph":"0-1","structure":"x","dealer":0,"receiver":1}`},
		{"bad knowledge", fmt.Sprintf(`{%s,"knowledge":"psychic"}`, base)},
		{"unknown protocol", fmt.Sprintf(`{%s,"protocol":"nope"}`, base)},
		{"unknown engine", fmt.Sprintf(`{%s,"engine":"nope"}`, base)},
		{"unknown schedule", fmt.Sprintf(`{%s,"engine":"async","schedule":"nope"}`, base)},
		{"schedule without async", fmt.Sprintf(`{%s,"schedule":"random"}`, base)},
		{"inadmissible corruption", fmt.Sprintf(`{%s,"corrupt":[1,2]}`, base)},
		{"unknown attack", fmt.Sprintf(`{%s,"corrupt":[1],"attack":"nope"}`, base)},
		{"too many trials", fmt.Sprintf(`{%s,"trials":9}`, base)},
		{"negative max_rounds", fmt.Sprintf(`{%s,"max_rounds":-1}`, base)},
		{"ppa without full knowledge", fmt.Sprintf(`{%s,"protocol":"ppa"}`, base)},
		{"unknown field", fmt.Sprintf(`{%s,"bogus":1}`, base)},
	}
	for _, tc := range cases {
		code, body := post(t, ts, "/v1/run", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got %d %s, want 400", tc.name, code, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s", tc.name, body)
		}
	}
}

// TestRunBytesIdenticalAcrossWorkerCounts: the same request served by a
// single-worker and a many-worker daemon produces byte-identical JSON — the
// determinism guarantee the cache's first-body-wins rule builds on.
func TestRunBytesIdenticalAcrossWorkerCounts(t *testing.T) {
	req := `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4,
		"engine":"async","schedule":"lifo","seed":3,"trials":6,"corrupt":[1],"attack":"silent"}`
	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		_, ts := newTestServer(t, Options{Workers: workers})
		code, body := post(t, ts, "/v1/run", req)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, code, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("bodies differ across worker counts:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestOverloadSheds: with the single worker blocked and the queue full, an
// uncached request is answered 429 instead of queuing unboundedly.
func TestOverloadSheds(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	blocked := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(blocked); <-release }) {
		t.Fatal("could not occupy the worker")
	}
	<-blocked
	if !s.pool.TrySubmit(func() {}) {
		t.Fatal("could not fill the queue slot")
	}
	code, body := post(t, ts, "/v1/feasibility", solvableButterfly)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated daemon answered %d %s, want 429", code, body)
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d", got)
	}
}

// TestDeadlineAnswers504: a request stuck behind a blocked worker is
// answered 504 when its deadline passes; the abandoned job sees its
// canceled context and aborts instead of occupying the freed worker, so
// the retry recomputes and succeeds.
func TestDeadlineAnswers504(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, RequestTimeout: 50 * time.Millisecond})
	release := make(chan struct{})
	blocked := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(blocked); <-release }) {
		t.Fatal("could not occupy the worker")
	}
	<-blocked
	code, body := post(t, ts, "/v1/feasibility", solvableButterfly)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("stuck request answered %d %s, want 504", code, body)
	}
	if got := s.metrics.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts counter = %d", got)
	}
	close(release)
	// The abandoned job aborts on its dead context; the retry recomputes.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if code, _ := post(t, ts, "/v1/feasibility", solvableButterfly); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retry after drain never succeeded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientCancelNotCountedAsTimeout: a client that disconnects while its
// request waits on the pool is recorded in rmtd_client_cancels_total (and
// logged as 499), not in rmtd_timeouts_total — the timeout metric must only
// count genuine compute-deadline expiries.
func TestClientCancelNotCountedAsTimeout(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	defer close(release)
	blocked := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(blocked); <-release }) {
		t.Fatal("could not occupy the worker")
	}
	<-blocked
	cctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, ts.URL+"/v1/feasibility", strings.NewReader(solvableButterfly))
		if err != nil {
			errc <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request queue behind the blocked worker
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request did not error on the client side")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.metrics.cancels.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client cancel was never recorded in rmtd_client_cancels_total")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.metrics.timeouts.Load(); got != 0 {
		t.Fatalf("timeouts counter = %d, want 0 — a client cancel is not a compute timeout", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post(t, ts, "/v1/feasibility", solvableButterfly)
	post(t, ts, "/v1/feasibility", solvableButterfly)
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		`rmtd_requests_total{endpoint="/v1/feasibility",code="200"} 2`,
		"rmtd_cache_hits_total 1",
		"rmtd_cache_misses_total 1",
		"rmtd_cache_hit_ratio 0.5",
		"rmtd_client_cancels_total 0",
		"rmtd_workers",
		"rmtd_queue_depth",
		`rmtd_request_seconds_count{endpoint="/v1/feasibility"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestRequestLog: each request produces one JSON log line with the cache
// disposition.
func TestRequestLog(t *testing.T) {
	var buf syncBuffer
	s := New(Options{LogWriter: &buf})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()
	post(t, ts, "/v1/feasibility", solvableButterfly)
	post(t, ts, "/v1/feasibility", solvableButterfly)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d:\n%s", len(lines), buf.String())
	}
	var entries []struct {
		Path   string `json:"path"`
		Status int    `json:"status"`
		Cache  string `json:"cache"`
	}
	for _, line := range lines {
		var e struct {
			Path   string `json:"path"`
			Status int    `json:"status"`
			Cache  string `json:"cache"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("log line %q: %v", line, err)
		}
		entries = append(entries, e)
	}
	if entries[0].Cache != "miss" || entries[1].Cache != "hit" {
		t.Fatalf("cache dispositions: %+v", entries)
	}
	if entries[0].Status != 200 || entries[0].Path != "/v1/feasibility" {
		t.Fatalf("log entry: %+v", entries[0])
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
