package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// ------------------------------------------------------------------- ring

func TestRingIsDeterministicAcrossShardOrder(t *testing.T) {
	a := newHashRing([]string{"http://a", "http://b", "http://c"})
	b := newHashRing([]string{"http://c", "http://a", "http://b"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("owner(%q) depends on shard list order: %q vs %q", key, a.owner(key), b.owner(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c"}
	r := newHashRing(shards)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, s := range shards {
		if counts[s] == 0 {
			t.Fatalf("shard %s owns nothing: %v", s, counts)
		}
	}
}

func TestRingRoutesCanonicalSpellingsTogether(t *testing.T) {
	// Two spellings of the same instance tuple — permuted edge list, explicit
	// vs defaulted knowledge — must share a canonical key and hence an owner.
	specs := []InstanceRequest{
		{Graph: "0-1 0-2 1-3 2-3", Structure: "1;2", Dealer: 0, Receiver: 3},
		{Graph: "2-3 1-3 0-2 0-1", Structure: "2;1", Knowledge: "adhoc", Dealer: 0, Receiver: 3},
	}
	r := newHashRing([]string{"http://a", "http://b", "http://c"})
	var owners []string
	for _, q := range specs {
		in, _, err := q.build()
		if err != nil {
			t.Fatal(err)
		}
		owners = append(owners, r.owner(in.CanonicalKey()))
	}
	if owners[0] != owners[1] {
		t.Fatalf("same instance, different owners: %v", owners)
	}
}

// ------------------------------------------------------ shard cache protocol

func TestInternalCacheEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	var q InstanceRequest
	if err := json.Unmarshal([]byte(solvableButterfly), &q); err != nil {
		t.Fatal(err)
	}
	in, level, err := q.build()
	if err != nil {
		t.Fatal(err)
	}
	key := "feasibility-v3\n" + level.String() + "\nd=0\nlisten=\n" + in.CanonicalKey()

	// A miss answers 404 and must not trigger any compute.
	code, _ := post(t, ts, "/internal/cache", key)
	if code != http.StatusNotFound {
		t.Fatalf("uncached key: %d, want 404", code)
	}

	code, want := post(t, ts, "/v1/feasibility", solvableButterfly)
	if code != http.StatusOK {
		t.Fatalf("feasibility: %d %s", code, want)
	}
	code, got := post(t, ts, "/internal/cache", key)
	if code != http.StatusOK {
		t.Fatalf("cached key: %d %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer protocol body differs from the client body:\n%s\nvs\n%s", got, want)
	}
}

// ------------------------------------------------------------------- fleet

// newFleet boots n shards (each knowing all peers) plus a router, all on
// ephemeral ports. The shard listeners are bound before the servers are
// built so every shard knows the full peer URL list up front.
func newFleet(t *testing.T, n int) (shards []*Server, urls []string, rt *Router) {
	t.Helper()
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls = append(urls, "http://"+ln.Addr().String())
	}
	for i, ln := range listeners {
		s := New(Options{LogWriter: io.Discard, Peers: urls, Self: urls[i]})
		hs := &http.Server{Handler: s}
		go hs.Serve(ln)
		t.Cleanup(func() {
			hs.Close()
			s.Close()
		})
		shards = append(shards, s)
	}
	rt, err := NewRouter(RouterOptions{Shards: urls, LogWriter: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	return shards, urls, rt
}

// fleetWorkload is a handful of distinct instances, enough for the ring to
// involve more than one shard.
var fleetWorkload = []string{
	solvableButterfly,
	`{"graph":"0-1 1-2","structure":"1","dealer":0,"receiver":2}`,
	`{"graph":"0-1 0-2 1-3 2-3","structure":"1;2","dealer":0,"receiver":3}`,
	`{"graph":"0-1 0-2 1-3 2-3","structure":"1,2","dealer":0,"receiver":3}`,
	`{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1,2;3","dealer":0,"receiver":4}`,
	`{"graph":"0-1 1-2 2-3 3-4","structure":"2","dealer":0,"receiver":4}`,
}

func TestRouterForwardsByCanonicalKey(t *testing.T) {
	_, _, rt := newFleet(t, 3)
	ts := httptest.NewServer(rt)
	defer ts.Close()

	for _, body := range fleetWorkload {
		code, resp := post(t, ts, "/v1/feasibility", body)
		if code != http.StatusOK {
			t.Fatalf("via router: %d %s", code, resp)
		}
	}
	busy := 0
	for _, n := range rt.Forwards() {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("6 distinct instances landed on %d shard(s): %v", busy, rt.Forwards())
	}

	// Same instance, different spelling → same shard: total forwards grow by
	// exactly one on the shard that already owns the butterfly.
	before := rt.Forwards()
	respelled := `{"graph":"3-4 2-4 1-4 0-3 0-2 0-1","structure":"3;2;1","knowledge":"adhoc","dealer":0,"receiver":4}`
	if code, resp := post(t, ts, "/v1/feasibility", respelled); code != http.StatusOK {
		t.Fatalf("respelled: %d %s", code, resp)
	}
	after := rt.Forwards()
	for shard, n := range after {
		if n != before[shard] && n != before[shard]+1 {
			t.Fatalf("respelled instance moved shards: before %v after %v", before, after)
		}
	}
}

func TestRouterRejectsBadBodies(t *testing.T) {
	_, _, rt := newFleet(t, 2)
	ts := httptest.NewServer(rt)
	defer ts.Close()
	for _, body := range []string{"{", `{"graph":""}`, `{"graph":"0-1","receiver":9}`} {
		if code, _ := post(t, ts, "/v1/feasibility", body); code != http.StatusBadRequest {
			t.Errorf("body %q: %d, want 400", body, code)
		}
	}
	if rt.badRequests.Load() != 3 {
		t.Fatalf("badRequests = %d, want 3", rt.badRequests.Load())
	}
}

func TestRouterServesInventoryAndHealth(t *testing.T) {
	_, _, rt := newFleet(t, 2)
	ts := httptest.NewServer(rt)
	defer ts.Close()
	if code, body := get(t, ts, "/healthz"); code != http.StatusOK || !bytes.Contains(body, []byte("router")) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := get(t, ts, "/v1/protocols"); code != http.StatusOK || !bytes.Contains(body, []byte("lockstep")) {
		t.Fatalf("protocols: %d %s", code, body)
	}
	if code, body := get(t, ts, "/metrics"); code != http.StatusOK || !bytes.Contains(body, []byte("rmtd_router_forwards_total")) {
		t.Fatalf("metrics: %d %s", code, body)
	}
}

func TestShardsFetchFromOwningPeer(t *testing.T) {
	shards, urls, rt := newFleet(t, 3)
	ts := httptest.NewServer(rt)
	defer ts.Close()

	// Prime the fleet through the router: each instance is cached on exactly
	// its owning shard.
	want := map[string][]byte{}
	for _, body := range fleetWorkload {
		code, resp := post(t, ts, "/v1/run", runBody(body))
		if code != http.StatusOK {
			t.Fatalf("prime: %d %s", code, resp)
		}
		want[body] = resp
	}

	// Now hit every shard directly with every instance. Non-owners miss
	// locally, fetch the owner's bytes, and serve them verbatim.
	client := &http.Client{}
	for _, url := range urls {
		for _, body := range fleetWorkload {
			resp, err := client.Post(url+"/v1/run", "application/json", strings.NewReader(runBody(body)))
			if err != nil {
				t.Fatal(err)
			}
			got := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("direct %s: %d %s", url, resp.StatusCode, got)
			}
			if !bytes.Equal(got, want[body]) {
				t.Fatalf("shard %s served different bytes than the fleet:\n%s\nvs\n%s", url, got, want[body])
			}
		}
	}
	var peerHits int64
	for _, s := range shards {
		peerHits += s.PeerCacheHits()
	}
	if peerHits == 0 {
		t.Fatal("no shard served a body out of a peer's cache")
	}
}

func TestShardComputesWhenOwnerHasNoEntry(t *testing.T) {
	shards, urls, _ := newFleet(t, 3)
	// A cold fleet: ask a shard that does NOT own this instance. The peer
	// answers 404 and the shard must compute locally.
	var q InstanceRequest
	if err := json.Unmarshal([]byte(solvableButterfly), &q); err != nil {
		t.Fatal(err)
	}
	in, _, err := q.build()
	if err != nil {
		t.Fatal(err)
	}
	ring := newHashRing(urls)
	owner := ring.owner(in.CanonicalKey())
	var nonOwner int
	for i, url := range urls {
		if url != owner {
			nonOwner = i
			break
		}
	}
	client := &http.Client{}
	resp, err := client.Post(urls[nonOwner]+"/v1/feasibility", "application/json", strings.NewReader(solvableButterfly))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold non-owner: %d %s", resp.StatusCode, body)
	}
	if got := shards[nonOwner].metrics.peerMisses.Load(); got == 0 {
		t.Fatal("non-owner never asked the owning peer")
	}
	if shards[nonOwner].PeerCacheHits() != 0 {
		t.Fatal("cold fleet cannot produce a peer hit")
	}
}

// runBody upgrades a feasibility body into a deterministic run request so
// the peer-fetch test exercises the /v1/run cache too.
func runBody(instanceJSON string) string {
	return strings.TrimSuffix(instanceJSON, "}") + `,"protocol":"zcpa","trials":2}`
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b := new(bytes.Buffer)
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}
