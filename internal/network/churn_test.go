package network

import (
	"bytes"
	"strings"
	"testing"

	"rmt/internal/graph"
)

// chatterProc sends one payload to a fixed peer every round (Init included)
// and never halts; it decides on the first message it receives. The engine
// is what accepts or rejects the sends, so a chatter across a churned edge
// probes exactly the accept/drop flip the topology edit must cause.
type chatterProc struct {
	peer    int
	payload textPayload
	value   Value
	decided bool
}

func (p *chatterProc) Init(out Outbox) { out(p.peer, p.payload) }
func (p *chatterProc) Round(_ int, inbox []Message, out Outbox) bool {
	if len(inbox) > 0 && !p.decided {
		p.value = Value(inbox[0].Payload.(textPayload))
		p.decided = true
	}
	out(p.peer, p.payload)
	return true
}
func (p *chatterProc) Decision() (Value, bool) { return p.value, p.decided }

// churnChatterConfig wires chatters at both ends of the 0-1 edge of a
// 3-node line (node 2 stays silent), with the given churn schedule.
func churnChatterConfig(churn []ChurnEvent, maxRounds int) Config {
	g := graph.New()
	g.AddPath(0, 1, 2)
	return Config{
		Graph: g,
		Processes: map[int]Process{
			0: &chatterProc{peer: 1, payload: "from0"},
			1: &chatterProc{peer: 0, payload: "from1"},
			2: silentProc{},
		},
		MaxRounds: maxRounds,
		Churn:     churn,
	}
}

// TestChurnRemovalLosesInFlight removes the 0-1 edge at round 3: the two
// messages sent in round 2 are in the calendar for round 3 and must be
// recorded as losses, later sends must be dropped at the outbox, and the
// accounting law must still reconcile.
func TestChurnRemovalLosesInFlight(t *testing.T) {
	for _, engine := range []Engine{Lockstep, Goroutine, Async} {
		t.Run(engine.Name(), func(t *testing.T) {
			cfg := churnChatterConfig([]ChurnEvent{{Round: 3, RemoveEdges: [][2]int{{0, 1}}}}, 6)
			cfg.Engine = engine
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Metrics.Reconcile(); err != nil {
				t.Fatal(err)
			}
			// Rounds 0..2 produce 2 accepted sends each; everything later is
			// rejected at the outbox.
			if got, want := res.Metrics.MessagesSent, 6; got != want {
				t.Errorf("MessagesSent = %d, want %d", got, want)
			}
			if got, want := res.Metrics.MessagesLost, 2; got != want {
				t.Errorf("MessagesLost = %d, want %d (the round-3 in-flight pair)", got, want)
			}
			if got, want := res.Metrics.MessagesDelivered, 4; got != want {
				t.Errorf("MessagesDelivered = %d, want %d", got, want)
			}
			if res.Metrics.MessagesDropped == 0 {
				t.Error("expected post-removal sends to be dropped at the outbox")
			}
		})
	}
}

// TestChurnAdditionRevivesSends starts nodes 0 and 2 non-adjacent — every
// send from 0 to 2 is dropped, so without the churn-aware quiescence guard
// the run would stop after round 1 — and adds the 0-2 edge at round 4.
// The chatter's next send must be accepted and decided on by node 2.
func TestChurnAdditionRevivesSends(t *testing.T) {
	for _, engine := range []Engine{Lockstep, Goroutine, Async} {
		t.Run(engine.Name(), func(t *testing.T) {
			g := graph.New()
			g.AddEdge(0, 1)
			g.AddNode(2)
			cfg := Config{
				Graph: g,
				Processes: map[int]Process{
					0: &chatterProc{peer: 2, payload: "hello"},
					1: silentProc{},
					2: &chatterProc{peer: 0, payload: "reply"},
				},
				MaxRounds: 8,
				Engine:    engine,
				Churn:     []ChurnEvent{{Round: 4, AddEdges: [][2]int{{0, 2}}}},
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Metrics.Reconcile(); err != nil {
				t.Fatal(err)
			}
			if v, ok := res.DecisionOf(2); !ok || v != "hello" {
				t.Fatalf("node 2 decision = %q, %v; want %q after the round-4 edge addition", v, ok, "hello")
			}
			if at := res.DecidedAtRound[2]; at < 5 {
				t.Errorf("node 2 decided at round %d, before the edge existed", at)
			}
		})
	}
}

// churnRecorder captures the Churn event stream.
type churnRecorder struct {
	NopTracer
	rounds  []int
	added   [][][2]int
	removed [][][2]int
}

func (c *churnRecorder) Churn(round int, added, removed [][2]int) {
	c.rounds = append(c.rounds, round)
	c.added = append(c.added, added)
	c.removed = append(c.removed, removed)
}

// TestChurnTracerEvents checks that each ChurnEvent is announced exactly
// once, in schedule order, to user tracers, and that JSONLTracer renders
// the event with its edge lists.
func TestChurnTracerEvents(t *testing.T) {
	rec := &churnRecorder{}
	var buf bytes.Buffer
	cfg := churnChatterConfig([]ChurnEvent{
		{Round: 2, RemoveEdges: [][2]int{{1, 2}}},
		{Round: 3, AddEdges: [][2]int{{0, 2}}, RemoveEdges: [][2]int{{0, 1}}},
	}, 5)
	cfg.Tracers = []Tracer{rec, NewJSONLTracer(&buf)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Metrics.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if len(rec.rounds) != 2 || rec.rounds[0] != 2 || rec.rounds[1] != 3 {
		t.Fatalf("churn event rounds = %v, want [2 3]", rec.rounds)
	}
	if len(rec.removed[0]) != 1 || rec.removed[0][0] != [2]int{1, 2} {
		t.Errorf("event 0 removed = %v, want [[1 2]]", rec.removed[0])
	}
	if len(rec.added[1]) != 1 || rec.added[1][0] != [2]int{0, 2} {
		t.Errorf("event 1 added = %v, want [[0 2]]", rec.added[1])
	}
	jsonl := buf.String()
	if !strings.Contains(jsonl, `"ev":"churn"`) {
		t.Error("JSONL stream has no churn event")
	}
	if !strings.Contains(jsonl, `"removed":[[0,1]]`) {
		t.Errorf("JSONL stream missing removed edge list:\n%s", jsonl)
	}
}

// TestChurnEnginesAgree pins the three in-process engines to identical
// observable behavior under a mixed churn schedule.
func TestChurnEnginesAgree(t *testing.T) {
	churn := []ChurnEvent{
		{Round: 2, RemoveEdges: [][2]int{{0, 1}}},
		{Round: 4, AddEdges: [][2]int{{0, 2}}},
	}
	type outcome struct {
		rounds    int
		metrics   Metrics
		decisions map[int]Value
	}
	results := map[string]outcome{}
	for _, engine := range []Engine{Lockstep, Goroutine, Async} {
		cfg := churnChatterConfig(churn, 6)
		cfg.Engine = engine
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Metrics.Reconcile(); err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		results[engine.Name()] = outcome{res.Rounds, res.Metrics, res.Decisions}
	}
	base := results[Lockstep.Name()]
	for name, got := range results {
		if got.rounds != base.rounds {
			t.Errorf("%s: rounds %d != lockstep %d", name, got.rounds, base.rounds)
		}
		if got.metrics.MessagesSent != base.metrics.MessagesSent ||
			got.metrics.MessagesDelivered != base.metrics.MessagesDelivered ||
			got.metrics.MessagesLost != base.metrics.MessagesLost ||
			got.metrics.MessagesDropped != base.metrics.MessagesDropped {
			t.Errorf("%s: metrics %+v != lockstep %+v", name, got.metrics, base.metrics)
		}
		if len(got.decisions) != len(base.decisions) {
			t.Errorf("%s: decisions %v != lockstep %v", name, got.decisions, base.decisions)
		}
	}
}

// TestChurnCallerGraphUntouched pins the clone-on-churn contract: the
// caller's graph must not change under a removal schedule.
func TestChurnCallerGraphUntouched(t *testing.T) {
	cfg := churnChatterConfig([]ChurnEvent{{Round: 2, RemoveEdges: [][2]int{{0, 1}}}}, 4)
	g := cfg.Graph
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("churn removal mutated the caller's graph")
	}
}

// TestChurnValidation exercises the up-front schedule validation.
func TestChurnValidation(t *testing.T) {
	cases := []struct {
		name  string
		churn []ChurnEvent
		want  string
	}{
		{"round zero", []ChurnEvent{{Round: 0, AddEdges: [][2]int{{0, 2}}}}, "rounds start at 1"},
		{"out of order", []ChurnEvent{{Round: 3, AddEdges: [][2]int{{0, 2}}}, {Round: 2, RemoveEdges: [][2]int{{0, 1}}}}, "round order"},
		{"self loop", []ChurnEvent{{Round: 1, AddEdges: [][2]int{{1, 1}}}}, "self-loop"},
		{"unknown node", []ChurnEvent{{Round: 1, AddEdges: [][2]int{{0, 9}}}}, "unknown endpoint"},
		{"existing edge", []ChurnEvent{{Round: 1, AddEdges: [][2]int{{0, 1}}}}, "existing edge"},
		{"absent edge", []ChurnEvent{{Round: 1, RemoveEdges: [][2]int{{0, 2}}}}, "absent edge"},
		{"stale cumulative state", []ChurnEvent{{Round: 1, RemoveEdges: [][2]int{{0, 1}}}, {Round: 2, RemoveEdges: [][2]int{{0, 1}}}}, "absent edge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := churnChatterConfig(tc.churn, 4)
			_, err := Run(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// A cumulative remove-then-re-add schedule is legal.
	ok := churnChatterConfig([]ChurnEvent{
		{Round: 1, RemoveEdges: [][2]int{{0, 1}}},
		{Round: 2, AddEdges: [][2]int{{0, 1}}},
	}, 4)
	if _, err := Run(ok); err != nil {
		t.Fatalf("remove-then-re-add schedule rejected: %v", err)
	}
}
