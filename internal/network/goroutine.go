package network

import "sync"

// runGoroutine executes the run with one goroutine per player per round and
// a barrier between rounds — the natural Go embedding of a synchronous
// distributed system. Each player writes sends into its own buffer, so the
// concurrent phase is data-race free; buffers are merged in player-ID order
// after the barrier, which makes results identical to the lockstep engine
// for deterministic protocols. All goroutines are joined before the
// function returns.
func runGoroutine(cfg Config) (*Result, error) {
	st := newRunState(cfg)

	// Round 0: Init, concurrently.
	bufs := make(map[int]*sendBuf, len(st.ids))
	var wg sync.WaitGroup
	for _, v := range st.ids {
		buf := &sendBuf{from: v}
		bufs[v] = buf
		out := st.newOutbox(v, buf)
		proc := cfg.Processes[v]
		wg.Add(1)
		go func() {
			defer wg.Done()
			proc.Init(out)
		}()
	}
	wg.Wait()
	for _, v := range st.ids {
		st.merge(0, bufs[v])
	}
	st.sealRound(0)
	st.refreshDecisions() // record Init-time decisions as round 0

	haltedNow := make(map[int]bool, len(st.ids))
	for round := 1; round <= st.maxRounds; round++ {
		pending := st.takePending(round)
		live := st.liveDeliveries(pending)
		if live == 0 && st.futureLive() == 0 && st.allHalted() {
			break
		}
		quiescent := live == 0 && st.futureLive() == 0

		var mu sync.Mutex // guards haltedNow
		for k := range haltedNow {
			delete(haltedNow, k)
		}
		for _, v := range st.ids {
			if st.halted[v] {
				continue
			}
			inbox := pending[v]
			sortInbox(inbox)
			st.noteInbox(v, round, inbox)
			buf := &sendBuf{from: v}
			bufs[v] = buf
			out := st.newOutbox(v, buf)
			proc := cfg.Processes[v]
			node := v
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !proc.Round(round, inbox, out) {
					mu.Lock()
					haltedNow[node] = true
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		for _, v := range st.ids {
			if st.halted[v] {
				continue
			}
			st.merge(round, bufs[v])
			if haltedNow[v] {
				st.halt(round, v)
			}
		}
		sent := st.sealRound(round)
		st.rounds = round
		if st.stopEarly() {
			break
		}
		if quiescent && sent == 0 {
			break
		}
	}
	return st.result(), nil
}
