package network

import "sync"

// goroutineEngine runs every player in its own goroutine with a round
// barrier — the natural Go embedding of a synchronous distributed node.
type goroutineEngine struct{}

// Name implements Engine.
func (goroutineEngine) Name() string { return EngineGoroutine }

// Run implements Engine. Delivery is strictly synchronous, so any Scheduler
// left in the config is cleared before the run state is built.
func (e goroutineEngine) Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Engine == nil {
		cfg.Engine = e
	}
	cfg.Scheduler = nil
	return runGoroutine(cfg)
}

// runGoroutine executes the run with one goroutine per player per round and
// a barrier between rounds — the natural Go embedding of a synchronous
// distributed system. Each player writes sends into its own buffer, so the
// concurrent phase is data-race free; buffers are merged in player-ID order
// after the barrier, which makes results identical to the lockstep engine
// for deterministic protocols. All goroutines are joined before the
// function returns.
func runGoroutine(cfg Config) (*Result, error) {
	st := newRunState(cfg)

	// Per-player buffers and outboxes live for the whole run (recs are
	// truncated, not reallocated, each round); each goroutine writes only
	// its own buffer, so the concurrent phases stay data-race free.
	bufs, outboxes := st.setupBufs()

	// Round 0: Init, concurrently.
	var wg sync.WaitGroup
	for i := range st.ids {
		proc, out := st.procs[i], outboxes[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			proc.Init(out)
		}()
	}
	wg.Wait()
	for i := range st.ids {
		st.merge(0, &bufs[i])
	}
	st.sealRound(0)
	st.refreshDecisions() // record Init-time decisions as round 0

	haltedNow := make(map[int]bool, len(st.ids))
	for round := 1; round <= st.maxRounds; round++ {
		st.applyChurn(round)
		live := st.takePending(round)
		if live == 0 && st.futureLive() == 0 && st.allHalted() {
			break
		}
		quiescent := live == 0 && st.futureLive() == 0

		var mu sync.Mutex // guards haltedNow
		for k := range haltedNow {
			delete(haltedNow, k)
		}
		for i, v := range st.ids {
			if st.isHalted(v) {
				continue
			}
			inbox := st.inboxOf(v)
			st.noteInbox(v, round, inbox)
			bufs[i].recs = bufs[i].recs[:0]
			out := outboxes[i]
			proc := st.procs[i]
			node := v
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !proc.Round(round, inbox, out) {
					mu.Lock()
					haltedNow[node] = true
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		for i, v := range st.ids {
			if st.isHalted(v) {
				continue
			}
			st.merge(round, &bufs[i])
			if haltedNow[v] {
				st.halt(round, v)
			}
		}
		sent := st.sealRound(round)
		st.rounds = round
		// The round is fully processed: inboxes handed out this round are
		// dead, so their buffer can back future deliveries.
		st.recycle()
		if st.stopEarly() {
			break
		}
		if quiescent && sent == 0 && !st.churnPending() {
			break
		}
	}
	res := st.result()
	st.release()
	return res, nil
}
