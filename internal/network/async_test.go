package network

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rmt/internal/graph"
)

// diamond builds the 4-node two-path graph 0-1-3, 0-2-3.
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}

// runFlood executes a flood from node 0 under the given engine/scheduler
// with a transcript and returns the result.
func runFlood(t *testing.T, g *graph.Graph, engine Engine, sched Scheduler, maxRounds int) *Result {
	t.Helper()
	cfg := floodConfig(t, g, 0, "x")
	cfg.Engine = engine
	cfg.Scheduler = sched
	cfg.MaxRounds = maxRounds
	cfg.RecordTranscript = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%v/%v): %v", engine, sched, err)
	}
	return res
}

func TestAsyncSyncScheduleMatchesLockstep(t *testing.T) {
	g := diamond(t)
	lock := runFlood(t, g, Lockstep, nil, 0)
	// Both a nil scheduler and an explicit SyncScheduler are the zero-fault
	// schedule.
	for name, sched := range map[string]Scheduler{"nil": nil, "sync": SyncScheduler{}} {
		async := runFlood(t, g, Async, sched, 0)
		if async.Transcript.Key() != lock.Transcript.Key() {
			t.Errorf("%s: async transcript differs from lockstep:\n%s\nvs\n%s",
				name, async.Transcript.Key(), lock.Transcript.Key())
		}
		if len(async.Decisions) != len(lock.Decisions) {
			t.Fatalf("%s: decision count %d vs %d", name, len(async.Decisions), len(lock.Decisions))
		}
		for v, want := range lock.Decisions {
			if got := async.Decisions[v]; got != want {
				t.Errorf("%s: node %d decided %q, lockstep %q", name, v, got, want)
			}
		}
		if async.Rounds != lock.Rounds {
			t.Errorf("%s: rounds %d vs %d", name, async.Rounds, lock.Rounds)
		}
		if async.Metrics.MessagesDelayed != 0 {
			t.Errorf("%s: zero-fault schedule delayed %d messages", name, async.Metrics.MessagesDelayed)
		}
		if async.Metrics.MessagesSent != lock.Metrics.MessagesSent {
			t.Errorf("%s: sent %d vs %d", name, async.Metrics.MessagesSent, lock.Metrics.MessagesSent)
		}
	}
}

func TestAsyncSeededSchedulesAreReproducible(t *testing.T) {
	g := diamond(t)
	for _, name := range SchedulerNames() {
		a := runFlood(t, g, Async, MustScheduler(name, 11), 40)
		b := runFlood(t, g, Async, MustScheduler(name, 11), 40)
		if a.Transcript.Key() != b.Transcript.Key() {
			t.Errorf("%s: same seed produced different transcripts", name)
		}
		if a.Rounds != b.Rounds || !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("%s: same seed produced different run shape", name)
		}
	}
}

func TestAsyncEventualDeliveryUnderEverySchedule(t *testing.T) {
	g := line(t, 6)
	lock := runFlood(t, g, Lockstep, nil, 0)
	for _, name := range SchedulerNames() {
		for seed := int64(0); seed < 4; seed++ {
			res := runFlood(t, g, Async, MustScheduler(name, seed), 100)
			if len(res.Decisions) != g.NumNodes() {
				t.Fatalf("%s seed %d: only %d/%d nodes decided", name, seed, len(res.Decisions), g.NumNodes())
			}
			// Decision agreement with the synchronous run: flooding carries a
			// single value, so every schedule must reach the same decisions.
			for v, want := range lock.Decisions {
				if got := res.Decisions[v]; got != want {
					t.Errorf("%s seed %d: node %d decided %q, lockstep %q", name, seed, v, got, want)
				}
			}
		}
	}
}

func TestAsyncRandomScheduleDelaysAndTraces(t *testing.T) {
	g := line(t, 6)
	cfg := floodConfig(t, g, 0, "x")
	cfg.Engine = Async
	cfg.Scheduler = MustScheduler(SchedRandom, 3)
	cfg.MaxRounds = 100
	cfg.RecordTranscript = true
	var buf bytes.Buffer
	jt := NewJSONLTracer(&buf)
	cfg.Tracers = []Tracer{jt}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Err() != nil {
		t.Fatalf("JSONL tracer error: %v", jt.Err())
	}
	if res.Metrics.MessagesDelayed == 0 {
		t.Fatal("random schedule on a 6-line delayed nothing")
	}
	out := buf.String()
	if !strings.Contains(out, `"ev":"delay"`) {
		t.Error("JSONL stream has no delay events")
	}
	if !strings.Contains(out, `"at":`) {
		t.Error("delay events carry no delivery round")
	}
	if !strings.Contains(out, `"engine":"async"`) {
		t.Error("run header does not name the async engine")
	}
	// The transcript records every accepted send at its actual delivery
	// round, so its total matches the send counter even under reordering.
	if n := res.Transcript.NumMessages(); n != res.Metrics.MessagesSent {
		t.Errorf("transcript holds %d messages, %d were sent", n, res.Metrics.MessagesSent)
	}
}

// constScheduler returns a fixed delivery round regardless of send round —
// deliberately violating the scheduler contract to exercise the engine's
// clamping.
type constScheduler struct{ at int }

func (constScheduler) Name() string                 { return "const" }
func (s constScheduler) DeliverAt(int, Message) int { return s.at }

// waitProc idles until its first message arrives, then decides on it and
// halts.
type waitProc struct {
	got     int
	val     Value
	decided bool
}

func (*waitProc) Init(Outbox) {}

func (p *waitProc) Round(_ int, inbox []Message, _ Outbox) bool {
	if len(inbox) == 0 {
		return true
	}
	p.got += len(inbox)
	p.val = Value(inbox[0].Payload.(textPayload))
	p.decided = true
	return false
}

func (p *waitProc) Decision() (Value, bool) { return p.val, p.decided }

// oneShotSender sends a single message to node 1 at Init and halts.
type oneShotSender struct{}

func (oneShotSender) Init(out Outbox) { out(1, textPayload("v")) }

func (oneShotSender) Round(int, []Message, Outbox) bool { return false }

func (oneShotSender) Decision() (Value, bool) { return "", false }

func TestAsyncClampsSchedulerOutput(t *testing.T) {
	for _, tc := range []struct {
		name      string
		at        int
		wantRound int // round the sink's message arrives (== run length here)
	}{
		{"past is clamped to next round", 0, 1},
		{"beyond-horizon is clamped to maxRounds", 1000, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sink := &waitProc{}
			cfg := Config{
				Graph:     line(t, 2),
				Processes: map[int]Process{0: oneShotSender{}, 1: sink},
				Engine:    Async,
				Scheduler: constScheduler{at: tc.at},
				MaxRounds: 8,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sink.got != 1 {
				t.Fatalf("sink received %d messages, want 1", sink.got)
			}
			if res.Rounds != tc.wantRound {
				t.Errorf("run length %d, want %d", res.Rounds, tc.wantRound)
			}
			if v, ok := res.DecisionOf(1); !ok || v != "v" {
				t.Errorf("sink decided (%q, %v), want (\"v\", true)", v, ok)
			}
		})
	}
}

func TestAsyncPartitionScheduleStillFloods(t *testing.T) {
	g := diamond(t)
	delayedSomewhere := false
	for seed := int64(0); seed < 8; seed++ {
		res := runFlood(t, g, Async, MustScheduler(SchedPartition, seed), 60)
		if len(res.Decisions) != g.NumNodes() {
			t.Fatalf("seed %d: only %d/%d nodes decided", seed, len(res.Decisions), g.NumNodes())
		}
		for v, val := range res.Decisions {
			if val != "x" {
				t.Errorf("seed %d: node %d decided %q", seed, v, val)
			}
		}
		if res.Metrics.MessagesDelayed > 0 {
			delayedSomewhere = true
		}
	}
	if !delayedSomewhere {
		t.Error("no partition seed delayed any flood message on the diamond")
	}
}
