package network

import (
	"reflect"
	"testing"
)

func msg(from, to int) Message {
	return Message{From: from, To: to, Payload: textPayload("m")}
}

func TestSchedulerNamesAndRegistry(t *testing.T) {
	names := SchedulerNames()
	want := []string{"fifo", "lifo", "partition", "random", "sync"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("SchedulerNames() = %v, want %v", names, want)
	}
	for _, name := range names {
		s, err := NewScheduler(name, 7)
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("scheduler %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewScheduler("bogus", 1); err == nil {
		t.Fatal("NewScheduler accepted unknown name")
	}
}

func TestMustSchedulerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustScheduler did not panic on unknown name")
		}
	}()
	MustScheduler("bogus", 1)
}

func TestSyncSchedulerIsNextRound(t *testing.T) {
	s := MustScheduler(SchedSync, 0)
	for sent := 0; sent < 5; sent++ {
		if at := s.DeliverAt(sent, msg(0, 1)); at != sent+1 {
			t.Fatalf("sync DeliverAt(%d) = %d", sent, at)
		}
	}
}

func TestRandomSchedulerBoundsAndDeterminism(t *testing.T) {
	a := MustScheduler(SchedRandom, 42)
	b := MustScheduler(SchedRandom, 42)
	c := MustScheduler(SchedRandom, 43)
	sawSkew, differs := false, false
	for i := 0; i < 200; i++ {
		sent := i % 7
		at := a.DeliverAt(sent, msg(0, 1))
		if at < sent+1 || at > sent+1+MaxSkew {
			t.Fatalf("random DeliverAt(%d) = %d outside [sent+1, sent+1+MaxSkew]", sent, at)
		}
		if at > sent+1 {
			sawSkew = true
		}
		if bt := b.DeliverAt(sent, msg(0, 1)); bt != at {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, at, bt)
		}
		if ct := c.DeliverAt(sent, msg(0, 1)); ct != at {
			differs = true
		}
	}
	if !sawSkew {
		t.Fatal("random scheduler never delayed anything")
	}
	if !differs {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFIFOSchedulerPreservesLinkOrder(t *testing.T) {
	s := MustScheduler(SchedFIFO, 5)
	last := map[[2]int]int{}
	for sent := 0; sent < 20; sent++ {
		for _, link := range [][2]int{{0, 1}, {1, 0}, {2, 3}} {
			at := s.DeliverAt(sent, msg(link[0], link[1]))
			if at < sent+1 {
				t.Fatalf("fifo delivered into the past: sent %d at %d", sent, at)
			}
			if prev, ok := last[link]; ok && at < prev {
				t.Fatalf("fifo reordered link %v: %d after %d", link, at, prev)
			}
			last[link] = at
		}
	}
}

func TestLIFOSchedulerReordersWindows(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := MustScheduler(SchedLIFO, seed)
		// Same-round sends on one link: within every aligned window of the
		// 3,2,1 cycle, later sends arrive strictly earlier, and delays stay
		// in [1, MaxSkew]. The seeded phase only shifts where the first
		// window boundary falls.
		sent := 4
		var ats []int
		for i := 0; i < 3*MaxSkew; i++ {
			at := s.DeliverAt(sent, msg(0, 1))
			if at < sent+1 || at > sent+MaxSkew {
				t.Fatalf("seed %d: lifo delay %d outside [1, MaxSkew]", seed, at-sent)
			}
			ats = append(ats, at)
		}
		for i := 1; i < len(ats); i++ {
			// A later send either arrives strictly earlier (inside a window)
			// or a new window starts at the full MaxSkew delay.
			if ats[i] >= ats[i-1] && ats[i] != sent+MaxSkew {
				t.Fatalf("seed %d: lifo not last-writer-first: %v", seed, ats)
			}
		}
	}
}

// TestLIFOSchedulerSeedDrivesPhase pins the seed contract NewScheduler
// documents: equal (name, seed) pairs reproduce the schedule exactly, and
// distinct seeds change at least one link's cycle phase — pre-fix, lifo
// ignored its seed entirely, so every per-trial seed of the schedule
// fuzzer ran the identical schedule.
func TestLIFOSchedulerSeedDrivesPhase(t *testing.T) {
	firstDelays := func(seed int64) []int {
		s := MustScheduler(SchedLIFO, seed)
		var out []int
		for _, link := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 7}, {5, 2}} {
			out = append(out, s.DeliverAt(0, msg(link[0], link[1])))
		}
		return out
	}
	base := firstDelays(1)
	if again := firstDelays(1); !reflect.DeepEqual(base, again) {
		t.Fatalf("same seed diverged: %v vs %v", base, again)
	}
	differs := false
	for seed := int64(2); seed <= 16 && !differs; seed++ {
		differs = !reflect.DeepEqual(firstDelays(seed), base)
	}
	if !differs {
		t.Fatal("seeds 2..16 all produced seed-1's lifo schedule — seed is ignored")
	}
}

func TestPartitionSchedulerHealsEventually(t *testing.T) {
	// Find a seed whose partition separates nodes 0 and 1; the block
	// assignment is seed-dependent, so probe a few.
	for seed := int64(0); seed < 32; seed++ {
		s := MustScheduler(SchedPartition, seed).(*partitionScheduler)
		if s.side(0) == s.side(1) {
			continue
		}
		// Cross messages before the heal all land right after it.
		for sent := 0; sent < s.heal; sent++ {
			if at := s.DeliverAt(sent, msg(0, 1)); at != s.heal+1 {
				t.Fatalf("seed %d: cross message sent %d delivered %d, want %d", seed, sent, at, s.heal+1)
			}
		}
		// After the heal the link is synchronous again.
		if at := s.DeliverAt(s.heal, msg(0, 1)); at != s.heal+1 {
			t.Fatalf("seed %d: post-heal delivery %d", seed, at)
		}
		if at := s.DeliverAt(s.heal+3, msg(1, 0)); at != s.heal+4 {
			t.Fatalf("seed %d: post-heal delivery %d", seed, at)
		}
		// Same-side messages are never held.
		same := -1
		for v := 2; v < 10; v++ {
			if s.side(v) == s.side(0) {
				same = v
				break
			}
		}
		if same >= 0 {
			if at := s.DeliverAt(0, msg(0, same)); at != 1 {
				t.Fatalf("seed %d: same-side message delayed to %d", seed, at)
			}
		}
		return
	}
	t.Fatal("no seed separated nodes 0 and 1 — side hash is degenerate")
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := newSplitMix(9), newSplitMix(9)
	for i := 0; i < 50; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix64 streams with equal seeds diverged")
		}
	}
	if newSplitMix(1).next() == newSplitMix(2).next() {
		t.Fatal("splitmix64 seeds 1 and 2 collide on first draw")
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]Engine{
		"lockstep": Lockstep, "goroutine": Goroutine, "async": Async,
	} {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseEngine("nope"); err == nil {
		t.Fatal("ParseEngine accepted unknown engine")
	}
}
