package network

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Engine executes one configured run. Engines register themselves by name
// (RegisterEngine) and are resolved with EngineByName — the same pattern the
// protocol registry uses — so CLIs, the daemon and the test harness list and
// select engines without a switch per call site. The three built-in engines
// (lockstep, goroutine, async) live in this package; out-of-package engines
// (e.g. the real-socket wire engine) register from their own init().
//
// Run must honor the full Config contract: validation, the Tracer event
// stream, metrics reconciliation (MessagesSent = MessagesDelivered +
// MessagesLost) and StopEarly. Engines that ignore Config.Scheduler must
// normalize it before building run state so delivery semantics never depend
// on stale fields.
type Engine interface {
	// Name returns the engine's registry name ("lockstep", "goroutine",
	// "async", "wire", ...).
	Name() string
	// Run executes the configured run.
	Run(cfg Config) (*Result, error)
}

// Canonical registry names of the built-in engines. These constants are the
// only place the built-in engine names are spelled; every other layer
// resolves through them.
const (
	EngineLockstep  = "lockstep"
	EngineGoroutine = "goroutine"
	EngineAsync     = "async"
)

// Built-in engines, usable directly as Config.Engine values.
var (
	// Lockstep steps players in ID order in a single goroutine.
	Lockstep Engine = lockstepEngine{}
	// Goroutine gives every player its own goroutine with a round barrier.
	Goroutine Engine = goroutineEngine{}
	// Async relaxes synchronous delivery to a pluggable Scheduler.
	Async Engine = asyncEngine{}
)

var engineRegistry = struct {
	sync.RWMutex
	m map[string]Engine
}{m: make(map[string]Engine)}

func init() {
	RegisterEngine(Lockstep)
	RegisterEngine(Goroutine)
	RegisterEngine(Async)
}

// RegisterEngine adds an engine under its Name. Engine packages call it from
// init(); registering an empty name or a duplicate panics, as with
// database/sql drivers.
func RegisterEngine(e Engine) {
	name := e.Name()
	if name == "" {
		panic("network: RegisterEngine with empty name")
	}
	engineRegistry.Lock()
	defer engineRegistry.Unlock()
	if _, dup := engineRegistry.m[name]; dup {
		panic("network: RegisterEngine called twice for " + name)
	}
	engineRegistry.m[name] = e
}

// EngineByName returns the engine registered under name; the error for an
// unknown name lists the registered engines.
func EngineByName(name string) (Engine, error) {
	engineRegistry.RLock()
	e, ok := engineRegistry.m[name]
	engineRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("network: unknown engine %q (registered: %s)",
			name, strings.Join(EngineNames(), ", "))
	}
	return e, nil
}

// ParseEngine parses an engine name against the registry. It is
// EngineByName under the historical name every CLI already uses.
func ParseEngine(name string) (Engine, error) { return EngineByName(name) }

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	engineRegistry.RLock()
	defer engineRegistry.RUnlock()
	names := make([]string, 0, len(engineRegistry.m))
	for name := range engineRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
