package network

// runState holds the bookkeeping shared by both engines. One engine round
// proceeds as: takePending (messages sent last round) → per-player Round
// calls writing into per-player send buffers → merge buffers in ID order →
// sealRound. Keeping merges in ID order makes the goroutine engine's
// observable behavior identical to lockstep for deterministic protocols.
type runState struct {
	cfg       Config
	ids       []int
	maxRounds int
	halted    map[int]bool
	next      map[int][]Message // messages to deliver next round
	metrics   Metrics
	trans     *Transcript
	rounds    int
	roundSend int
	decisions map[int]Value
	decidedAt map[int]int
}

func newRunState(cfg Config) *runState {
	st := &runState{
		cfg:       cfg,
		ids:       cfg.Graph.SortedIDs(),
		maxRounds: cfg.maxRounds(),
		halted:    make(map[int]bool),
		next:      make(map[int][]Message),
		decisions: make(map[int]Value),
		decidedAt: make(map[int]int),
	}
	if cfg.RecordTranscript {
		st.trans = newTranscript()
	}
	return st
}

// sendBuf collects one player's sends during one round.
type sendBuf struct {
	from int
	recs []sendRec
}

type sendRec struct {
	msg Message
	ok  bool
}

// newOutbox returns the Outbox for player v writing into buf. The edge
// check enforces authenticated channels: only existing links carry data.
func (st *runState) newOutbox(v int, buf *sendBuf) Outbox {
	return func(to int, p Payload) {
		ok := to != v && st.cfg.Graph.HasEdge(v, to)
		buf.recs = append(buf.recs, sendRec{msg: Message{From: v, To: to, Payload: p}, ok: ok})
	}
}

// merge folds one player's send buffer into the next-round queues and the
// metrics. Must be called serially, in player-ID order, with the round in
// which the sends happened.
func (st *runState) merge(round int, buf *sendBuf) {
	for _, r := range buf.recs {
		if !r.ok {
			st.metrics.MessagesDropped++
			continue
		}
		st.metrics.MessagesSent++
		st.roundSend++
		st.metrics.BitsSent += r.msg.Payload.BitSize()
		st.next[r.msg.To] = append(st.next[r.msg.To], r.msg)
		if st.trans != nil {
			st.trans.record(round+1, r.msg) // delivered next round
		}
	}
}

// collectSends runs fn with a fresh outbox for v and merges immediately.
// Lockstep-only convenience (merging inline is not goroutine-safe).
func (st *runState) collectSends(v, round int, fn func(out Outbox)) {
	buf := &sendBuf{from: v}
	fn(st.newOutbox(v, buf))
	st.merge(round, buf)
}

// takePending swaps out the messages due for delivery this round.
func (st *runState) takePending() map[int][]Message {
	pending := st.next
	st.next = make(map[int][]Message)
	return pending
}

// sealRound finalizes per-round counters.
func (st *runState) sealRound(round int) {
	for len(st.metrics.MessagesPerRound) <= round {
		st.metrics.MessagesPerRound = append(st.metrics.MessagesPerRound, 0)
	}
	st.metrics.MessagesPerRound[round] = st.roundSend
	st.roundSend = 0
}

func (st *runState) noteInbox(v, round int, inbox []Message) {
	if len(inbox) > st.metrics.MaxInboxPerPlayer {
		st.metrics.MaxInboxPerPlayer = len(inbox)
	}
}

func (st *runState) allHalted() bool {
	return len(st.halted) == len(st.ids)
}

// liveDeliveries counts pending messages addressed to players that have not
// halted. Mail to halted players can never influence the run.
func (st *runState) liveDeliveries(pending map[int][]Message) int {
	live := 0
	for to, msgs := range pending {
		if !st.halted[to] {
			live += len(msgs)
		}
	}
	return live
}

// stopEarly refreshes the decision map and evaluates the config predicate.
func (st *runState) stopEarly() bool {
	st.refreshDecisions()
	if st.cfg.StopEarly == nil {
		return false
	}
	return st.cfg.StopEarly(st.decisions)
}

func (st *runState) refreshDecisions() {
	for _, v := range st.ids {
		if _, have := st.decisions[v]; have {
			continue
		}
		if val, ok := st.cfg.Processes[v].Decision(); ok {
			st.decisions[v] = val
			st.decidedAt[v] = st.rounds
		}
	}
}

func (st *runState) result() *Result {
	st.refreshDecisions()
	return &Result{
		Rounds:         st.rounds,
		Decisions:      st.decisions,
		DecidedAtRound: st.decidedAt,
		Metrics:        st.metrics,
		Transcript:     st.trans,
	}
}
