package network

import (
	"sort"
	"sync"
)

// runState holds the bookkeeping shared by both engines. One engine round
// proceeds as: takePending (messages sent last round) → per-player Round
// calls writing into per-player send buffers → merge buffers in ID order →
// sealRound. Keeping merges in ID order makes the goroutine engine's
// observable behavior identical to lockstep for deterministic protocols.
//
// All instrumentation — complexity metrics, the transcript, and any
// user-installed observers — flows through the Tracer event stream: the
// engine itself only moves messages. Tracer calls all happen on the
// coordinating goroutine (merges and inbox hand-offs are serialized even
// under the goroutine engine), so tracers need no locking.
//
// The two stock tracers are dispatched through concrete fields rather than
// the extra-tracer slice: metrics accumulation sits on the engines' hot
// path, and the usual case (no transcript, no user tracers) must stay as
// cheap as the inline counters it replaced.
// statePool recycles runState values — buffers, outbox closures and
// bookkeeping included — across runs. A protocol run is short (tens of
// microseconds) and experiment drivers execute thousands of them over the
// same or similar topologies, so per-run engine scaffolding dominates the
// allocation profile unless it is amortized here. Everything that escapes
// into the caller's Result (decision maps, metrics slices, transcripts) is
// allocated fresh per run and detached before the state is pooled.
var statePool sync.Pool

type runState struct {
	cfg        Config
	ids        []int
	bufs       []sendBuf // per-player send buffers, reused across runs
	outs       []Outbox  // outboxes bound to bufs (see setupBufs)
	maxRounds  int
	procs      []Process         // procs[i] = cfg.Processes[ids[i]]
	haltedB    []bool            // dense-ID fast path: haltedB[v], nil when IDs are sparse
	halted     map[int]bool      // sparse fallback, nil when haltedB is in use
	haltedN    int               // number of halted players
	decidedB   []bool            // dense-ID fast path mirroring the decisions map
	future     map[int][]Message // delivery round → messages, in merge order
	freeFlat   [][]Message       // consumed round buffers, ready for reuse
	pending    map[int][]Message // sparse-ID inbox grouping (views into one round buffer)
	pendingArr [][]Message       // dense-ID inbox grouping, indexed by player ID
	counts     []int             // dense scatter offsets, reused every round
	pendFlat   []Message         // round buffer currently backing the inboxes
	keybuf     []string          // rendered payload keys, reused by sortDeliveries
	sorter     deliverySorter    // reusable sort.Stable adapter for large rounds
	inFlight   int               // undelivered scheduled messages
	sched      Scheduler         // nil = synchronous delivery at sent+1
	madv       MessageAdversary  // nil = no message suppression
	churn      []ChurnEvent      // validated topology edits, in round order
	churnIdx   int               // first churn event not yet applied
	extra      []Tracer          // user-installed observers (Config.Tracers)
	mt         MetricsTracer
	tt         *TranscriptTracer // nil unless Config.RecordTranscript
	rounds     int
	roundSend  int
	decisions  map[int]Value
	decidedAt  map[int]int
}

func newRunState(cfg Config) *runState {
	st, _ := statePool.Get().(*runState)
	if st == nil {
		st = &runState{
			future:   make(map[int][]Message, 2),
			pending:  make(map[int][]Message, 8),
			freeFlat: make([][]Message, 0, 2),
		}
	}
	st.cfg = cfg
	ids := st.ids[:0]
	cfg.Graph.Nodes().ForEach(func(v int) bool {
		ids = append(ids, v)
		return true
	})
	sort.Ints(ids)
	st.ids = ids
	n := len(ids)
	st.maxRounds = cfg.maxRounds()
	st.extra = cfg.Tracers
	st.sched = nil
	st.tt = nil
	st.haltedN = 0
	st.inFlight = 0
	st.churn, st.churnIdx = cfg.Churn, 0
	st.rounds, st.roundSend = 0, 0
	// The decision maps escape into the caller's Result, so they are the
	// one piece of bookkeeping allocated fresh every run.
	st.decisions = make(map[int]Value, n)
	st.decidedAt = make(map[int]int, n)
	if cap(st.procs) >= n {
		st.procs = st.procs[:n]
	} else {
		st.procs = make([]Process, n)
	}
	for i, v := range ids {
		st.procs[i] = cfg.Processes[v]
	}
	// The usual case — node IDs 0..n-1 (ids is sorted and distinct, so
	// checking the endpoints suffices) — gets array-indexed halted/decided
	// bookkeeping and inbox grouping; arbitrary IDs fall back to maps.
	if n > 0 && ids[0] == 0 && ids[n-1] == n-1 {
		st.halted = nil
		if cap(st.haltedB) >= n {
			st.haltedB = st.haltedB[:n]
			clear(st.haltedB)
			st.decidedB = st.decidedB[:n]
			clear(st.decidedB)
		} else {
			st.haltedB = make([]bool, n)
			st.decidedB = make([]bool, n)
		}
		if cap(st.pendingArr) >= n {
			st.pendingArr = st.pendingArr[:n]
			clear(st.pendingArr)
		} else {
			st.pendingArr = make([][]Message, n)
		}
	} else {
		st.haltedB, st.decidedB, st.pendingArr = nil, nil, nil
		st.halted = make(map[int]bool, n)
	}
	// MessagesPerRound escapes through Result.Metrics; the other counters
	// are plain values, so resetting the tracer wholesale is enough.
	st.mt = MetricsTracer{}
	st.mt.m.MessagesPerRound = make([]int, 0, st.maxRounds+1)
	// Engines normalize Config.Scheduler in their Run wrappers (synchronous
	// engines clear it, async defaults it to SyncScheduler), so delivery
	// policy is taken verbatim — run state never inspects the engine. The
	// message adversary, unlike the scheduler, applies to every in-process
	// engine: suppression is a property of the channels, not of timing.
	st.sched = cfg.Scheduler
	st.madv = cfg.MsgAdversary
	if cfg.RecordTranscript {
		st.tt = NewTranscriptTracer()
	}
	nodes, edges, engine := cfg.Graph.NumNodes(), cfg.Graph.NumEdges(), cfg.engine()
	st.mt.BeginRun(nodes, edges, engine)
	if st.tt != nil {
		st.tt.BeginRun(nodes, edges, engine)
	}
	for _, tr := range st.extra {
		tr.BeginRun(nodes, edges, engine)
	}
	return st
}

// sendBuf collects one player's sends during one round.
type sendBuf struct {
	from int
	recs []sendRec
}

type sendRec struct {
	msg Message
	ok  bool
}

// newOutbox returns the Outbox for player v writing into buf. The edge
// check enforces authenticated channels: only existing links carry data.
func (st *runState) newOutbox(v int, buf *sendBuf) Outbox {
	return func(to int, p Payload) {
		ok := to != v && st.cfg.Graph.HasEdge(v, to)
		buf.recs = append(buf.recs, sendRec{msg: Message{From: v, To: to, Payload: p}, ok: ok})
	}
}

// setupBufs builds the per-player send buffers and outboxes both engines
// use. Buffers live for the whole run (recs are truncated, not reallocated,
// each round) and their initial capacity is carved from one shared slab
// sized by the average degree; a player that outgrows its slice reallocates
// privately, so concurrent appends under the goroutine engine stay safe.
//
// A pooled runState that is re-run over a topology with the same player
// IDs reuses the previous buffers and closures outright: the closures read
// the graph through st.cfg, which newRunState has already repointed.
func (st *runState) setupBufs() ([]sendBuf, []Outbox) {
	n := len(st.ids)
	if len(st.bufs) == n {
		same := true
		for i, v := range st.ids {
			if st.bufs[i].from != v {
				same = false
				break
			}
		}
		if same {
			for i := range st.bufs {
				st.bufs[i].recs = st.bufs[i].recs[:0]
			}
			return st.bufs, st.outs
		}
	}
	per := 8
	if n > 0 {
		if d := 4 * st.cfg.Graph.NumEdges() / n; d > per {
			per = d
		}
	}
	slab := make([]sendRec, n*per)
	bufs := make([]sendBuf, n)
	outs := make([]Outbox, n)
	for i, v := range st.ids {
		bufs[i].from = v
		bufs[i].recs = slab[i*per : i*per : (i+1)*per]
		outs[i] = st.newOutbox(v, &bufs[i])
	}
	st.bufs, st.outs = bufs, outs
	return bufs, outs
}

// merge folds one player's send buffer into the delivery calendar, emitting
// Send/Drop (and, for scheduler-delayed messages, Delay) events. Must be
// called serially, in player-ID order, with the round in which the sends
// happened — that order is also the order in which the scheduler and the
// message adversary see the messages, which is what makes a seeded schedule
// (and a seeded suppression pattern) reproducible.
//
// Each calendar slot is one flat slice in merge order; recipient grouping
// and inbox ordering happen once, at delivery time (takePending), so the
// per-message path here is a bounds check and an append. Synchronous
// delivery lands every message of the batch in round+1, so the slot lookup
// is hoisted out of the loop; only a scheduler that scatters delivery
// rounds pays for repeated lookups.
func (st *runState) merge(round int, buf *sendBuf) {
	lastAt := -1
	var flat []Message
	for _, r := range buf.recs {
		if !r.ok {
			st.mt.Drop(round, r.msg)
			if st.tt != nil {
				st.tt.Drop(round, r.msg)
			}
			for _, tr := range st.extra {
				tr.Drop(round, r.msg)
			}
			continue
		}
		st.roundSend++
		st.mt.Send(round, r.msg)
		if st.tt != nil {
			st.tt.Send(round, r.msg)
		}
		for _, tr := range st.extra {
			tr.Send(round, r.msg)
		}
		// Message-adversary suppression: the copy counts as sent but is lost
		// immediately — its Lose event follows its Send, it never enters the
		// delivery calendar, and the scheduler never sees it.
		if st.madv != nil && st.madv.Suppress(round, r.msg) {
			st.lose(round+1, r.msg)
			continue
		}
		at := st.deliveryRound(round, r.msg)
		if at != lastAt {
			if lastAt >= 0 {
				st.future[lastAt] = flat
			}
			flat = st.future[at]
			if flat == nil {
				if n := len(st.freeFlat); n > 0 {
					flat = st.freeFlat[n-1]
					st.freeFlat = st.freeFlat[:n-1]
				}
			}
			lastAt = at
		}
		flat = append(flat, r.msg)
		st.inFlight++
		if at != round+1 {
			st.mt.Delay(round, at, r.msg)
			if st.tt != nil {
				st.tt.Delay(round, at, r.msg)
			}
			for _, tr := range st.extra {
				tr.Delay(round, at, r.msg)
			}
		}
	}
	if lastAt >= 0 {
		st.future[lastAt] = flat
	}
}

// deliveryRound asks the scheduler (when one is installed) for the delivery
// round of a message sent in round, clamped into [round+1, maxRounds] so a
// scheduler can neither deliver into the past nor starve a message past the
// end of a bounded run — the engine-enforced eventual-delivery guarantee.
// Sends in the final round land past maxRounds (the clamp cannot apply to
// them), as under synchronous delivery; they are swept out of the calendar
// and recorded as losses when the run ends (see result), so MessagesSent
// still reconciles with MessagesDelivered + MessagesLost.
func (st *runState) deliveryRound(round int, m Message) int {
	if st.sched == nil {
		return round + 1
	}
	at := st.sched.DeliverAt(round, m)
	if at < round+1 {
		at = round + 1
	}
	if at > st.maxRounds && round+1 <= st.maxRounds {
		at = st.maxRounds
	}
	return at
}

// applyChurn applies the churn events scheduled for round. Edits take
// effect at the start of the round, before takePending, so a message in
// flight over an edge removed this round is lost rather than delivered.
// The config graph is repointed at an edited clone — never mutated — so
// the outbox closures (which read st.cfg.Graph at send time) reject sends
// over removed edges from this round on, while the caller's graph stays
// untouched.
func (st *runState) applyChurn(round int) {
	if st.churnIdx >= len(st.churn) || st.churn[st.churnIdx].Round != round {
		return
	}
	g := st.cfg.Graph.Clone()
	removedAny := false
	for st.churnIdx < len(st.churn) && st.churn[st.churnIdx].Round == round {
		ev := st.churn[st.churnIdx]
		st.churnIdx++
		for _, e := range ev.AddEdges {
			g.AddEdge(e[0], e[1])
		}
		for _, e := range ev.RemoveEdges {
			g.RemoveEdge(e[0], e[1])
			removedAny = true
		}
		st.mt.Churn(round, ev.AddEdges, ev.RemoveEdges)
		if st.tt != nil {
			st.tt.Churn(round, ev.AddEdges, ev.RemoveEdges)
		}
		for _, tr := range st.extra {
			tr.Churn(round, ev.AddEdges, ev.RemoveEdges)
		}
	}
	st.cfg.Graph = g
	if removedAny {
		st.loseSevered()
	}
}

// churnPending reports whether churn events remain to be applied. While
// any are pending the engines must not quiescence-break: an edge addition
// can turn a player's rejected sends into accepted ones, so "nothing in
// flight and nothing sent" does not yet imply every later round is
// identical.
func (st *runState) churnPending() bool { return st.churnIdx < len(st.churn) }

// loseSevered sweeps the delivery calendar for messages whose carrying
// edge was just removed, recording each as a loss in the deterministic
// order drainCalendar uses: delivery rounds ascending, severed recipients
// ascending, merge order within a recipient. Survivors are compacted in
// place, keeping their merge order.
func (st *runState) loseSevered() {
	g := st.cfg.Graph
	rounds := make([]int, 0, len(st.future))
	for at, flat := range st.future {
		for _, m := range flat {
			if !g.HasEdge(m.From, m.To) {
				rounds = append(rounds, at)
				break
			}
		}
	}
	sort.Ints(rounds)
	for _, at := range rounds {
		flat := st.future[at]
		var tos []int
		for _, m := range flat {
			if !g.HasEdge(m.From, m.To) && !containsInt(tos, m.To) {
				tos = append(tos, m.To)
			}
		}
		sort.Ints(tos)
		for _, to := range tos {
			for _, m := range flat {
				if m.To == to && !g.HasEdge(m.From, m.To) {
					st.lose(at, m)
					st.inFlight--
				}
			}
		}
		kept := flat[:0]
		for _, m := range flat {
			if g.HasEdge(m.From, m.To) {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 {
			delete(st.future, at)
			st.freeFlat = append(st.freeFlat, kept)
		} else {
			st.future[at] = kept
		}
	}
}

// takePending removes the messages due for delivery in round and groups
// them into per-recipient inboxes sorted into the order the Process
// contract promises (sender ID, ties broken by payload key); engines fetch
// them with inboxOf. Messages addressed to players that have already halted
// can never be received; they are removed and recorded as losses so the
// send/delivery accounting reconciles. It returns the number of deliverable
// messages — all addressed to live players, so this is also the round's
// live-delivery count. The inboxes are views into one reusable round
// buffer; call recycle once the round is fully processed.
func (st *runState) takePending(round int) int {
	flat := st.future[round]
	delete(st.future, round)
	st.inFlight -= len(flat)
	flat = st.loseHalted(round, flat)
	if len(flat) == 0 {
		if flat != nil {
			st.freeFlat = append(st.freeFlat, flat[:0])
		}
		return 0
	}
	if st.pendingArr != nil {
		st.scatterDense(flat)
		return len(st.pendFlat)
	}
	st.sortDeliveries(flat)
	st.pendFlat = flat
	for start := 0; start < len(flat); {
		end := start + 1
		for end < len(flat) && flat[end].To == flat[start].To {
			end++
		}
		st.pending[flat[start].To] = flat[start:end:end]
		start = end
	}
	return len(flat)
}

// scatterDense distributes one round's messages into per-recipient inboxes
// in O(messages): merge order is already sender-ascending (buffers merge in
// player-ID order), so a stable counting scatter by recipient yields each
// inbox sorted by sender, and only runs of messages from a single sender
// still need their payload keys compared. The result is exactly the
// (recipient, sender, key) order the sparse sorting path produces.
func (st *runState) scatterDense(flat []Message) {
	n := len(st.ids)
	if cap(st.counts) >= n {
		st.counts = st.counts[:n]
		clear(st.counts)
	} else {
		st.counts = make([]int, n)
	}
	counts := st.counts
	for _, m := range flat {
		counts[m.To]++
	}
	var dist []Message
	if k := len(st.freeFlat); k > 0 {
		dist = st.freeFlat[k-1]
		st.freeFlat = st.freeFlat[:k-1]
	}
	if cap(dist) < len(flat) {
		dist = make([]Message, len(flat))
	} else {
		dist = dist[:len(flat)]
	}
	off := 0
	for to, c := range counts {
		counts[to] = off
		off += c
	}
	for _, m := range flat {
		dist[counts[m.To]] = m
		counts[m.To]++
	}
	start := 0
	for to := 0; to < n; to++ {
		end := counts[to] // now the end offset of to's group
		if end > start {
			inbox := dist[start:end:end]
			sortSameSender(inbox)
			st.pendingArr[to] = inbox
			start = end
		}
	}
	st.freeFlat = append(st.freeFlat, flat[:0])
	st.pendFlat = dist
}

// sortSameSender orders runs of messages from one sender by payload key;
// the scatter already grouped the inbox by sender. Runs are almost always
// short (one sender's payloads to one recipient in one round), so a stable
// insertion pass suffices. Key() is cached on sealed payloads.
func sortSameSender(inbox []Message) {
	for i := 1; i < len(inbox); i++ {
		if inbox[i].From != inbox[i-1].From {
			continue
		}
		m := inbox[i]
		k := m.Payload.Key()
		j := i
		for j > 0 && inbox[j-1].From == m.From && inbox[j-1].Payload.Key() > k {
			inbox[j] = inbox[j-1]
			j--
		}
		inbox[j] = m
	}
}

// inboxOf returns player v's inbox for the round prepared by takePending.
func (st *runState) inboxOf(v int) []Message {
	if st.pendingArr != nil {
		return st.pendingArr[v]
	}
	return st.pending[v]
}

// isHalted reports whether player v has halted.
func (st *runState) isHalted(v int) bool {
	if st.haltedB != nil {
		return st.haltedB[v]
	}
	return st.halted[v]
}

// loseHalted strips messages addressed to halted players from one round
// buffer, recording each as a loss: halted recipients in ascending ID
// order, each recipient's messages in merge order — the event order the
// per-recipient calendar this replaced emitted. The surviving messages are
// compacted in place.
func (st *runState) loseHalted(round int, flat []Message) []Message {
	if st.haltedN == 0 {
		return flat
	}
	lost := 0
	for _, m := range flat {
		if st.isHalted(m.To) {
			lost++
		}
	}
	if lost == 0 {
		return flat
	}
	tos := make([]int, 0, 8)
	for _, m := range flat {
		if st.isHalted(m.To) && !containsInt(tos, m.To) {
			tos = append(tos, m.To)
		}
	}
	sort.Ints(tos)
	for _, to := range tos {
		for _, m := range flat {
			if m.To == to {
				st.lose(round, m)
			}
		}
	}
	kept := flat[:0]
	for _, m := range flat {
		if !st.isHalted(m.To) {
			kept = append(kept, m)
		}
	}
	return kept
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// recycle returns the round buffer behind the current inboxes (from
// takePending) to the free list and clears the grouping for the next
// round. Callers must only recycle once the round is fully processed:
// inbox slices alias the buffer, and the Process contract lets players
// read them only during their Round call.
func (st *runState) recycle() {
	if st.pendFlat == nil {
		return
	}
	if st.pendingArr != nil {
		clear(st.pendingArr)
	} else {
		clear(st.pending)
	}
	st.freeFlat = append(st.freeFlat, st.pendFlat[:0])
	st.pendFlat = nil
}

// sortDeliveries orders one round's deliveries by recipient, then sender,
// then payload key — recipient grouping plus the deterministic inbox order
// the Process contract promises. Keys are rendered once per message up
// front: the comparator runs many times and Key() may be expensive for
// unsealed payloads (e.g. forged type-2 claims render their whole view
// graph). Small rounds use a stable insertion sort; large rounds go through
// sort.Stable via a reusable adapter, so neither path allocates per round
// in steady state.
func (st *runState) sortDeliveries(msgs []Message) {
	if len(msgs) < 2 {
		return
	}
	keys := st.keybuf[:0]
	for _, m := range msgs {
		keys = append(keys, m.Payload.Key())
	}
	st.keybuf = keys
	if len(msgs) <= 48 {
		for i := 1; i < len(msgs); i++ {
			m, k := msgs[i], keys[i]
			j := i
			for j > 0 && deliveryAfter(msgs[j-1], keys[j-1], m, k) {
				msgs[j], keys[j] = msgs[j-1], keys[j-1]
				j--
			}
			msgs[j], keys[j] = m, k
		}
		return
	}
	st.sorter.msgs, st.sorter.keys = msgs, keys
	sort.Stable(&st.sorter)
	st.sorter.msgs, st.sorter.keys = nil, nil
}

// deliveryAfter reports whether message a (key ak) sorts after b (key bk)
// in delivery order: recipient, then sender, then payload key.
func deliveryAfter(a Message, ak string, b Message, bk string) bool {
	if a.To != b.To {
		return a.To > b.To
	}
	if a.From != b.From {
		return a.From > b.From
	}
	return ak > bk
}

// deliverySorter adapts one round's messages and their pre-rendered keys to
// sort.Stable. It lives on runState so large rounds sort without allocating.
type deliverySorter struct {
	msgs []Message
	keys []string
}

func (s *deliverySorter) Len() int { return len(s.msgs) }
func (s *deliverySorter) Less(i, j int) bool {
	return deliveryAfter(s.msgs[j], s.keys[j], s.msgs[i], s.keys[i])
}
func (s *deliverySorter) Swap(i, j int) {
	s.msgs[i], s.msgs[j] = s.msgs[j], s.msgs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// lose reports one accepted send that will never reach a live player.
func (st *runState) lose(round int, m Message) {
	st.mt.Lose(round, m)
	if st.tt != nil {
		st.tt.Lose(round, m)
	}
	for _, tr := range st.extra {
		tr.Lose(round, m)
	}
}

// drainCalendar sweeps the undelivered remainder of the delivery calendar
// at run end — sends made in the final round (necessarily undeliverable,
// as under synchronous delivery) and sends scheduled past an early stop —
// recording each as a loss and zeroing the in-flight count. Without the
// sweep these messages stayed in st.future/inFlight forever: counted as
// MessagesSent but never delivered or dropped, so metrics did not
// reconcile.
func (st *runState) drainCalendar() {
	if st.inFlight == 0 {
		return
	}
	rounds := make([]int, 0, len(st.future))
	for at := range st.future {
		rounds = append(rounds, at)
	}
	sort.Ints(rounds)
	for _, at := range rounds {
		flat := st.future[at]
		var tos []int
		for _, m := range flat {
			if !containsInt(tos, m.To) {
				tos = append(tos, m.To)
			}
		}
		sort.Ints(tos)
		for _, to := range tos {
			for _, m := range flat {
				if m.To == to {
					st.lose(at, m)
					st.inFlight--
				}
			}
		}
		st.freeFlat = append(st.freeFlat, flat[:0])
	}
	clear(st.future)
	st.inFlight = 0
}

// release detaches everything that escaped into the Result, drops the
// references that would pin the caller's processes and graph, and returns
// the state — round buffers, outbox closures and all — to the pool.
func (st *runState) release() {
	st.recycle()
	clear(st.procs)
	st.cfg = Config{}
	st.extra = nil
	st.sched = nil
	st.madv = nil
	st.tt = nil
	st.halted = nil
	st.churn = nil
	st.decisions, st.decidedAt = nil, nil
	st.mt = MetricsTracer{}
	statePool.Put(st)
}

// futureLive counts the scheduled-but-undelivered messages addressed to
// players that have not halted. While it is non-zero the run cannot be
// quiescent: a later round will still see new input.
func (st *runState) futureLive() int {
	if st.inFlight == 0 {
		return 0
	}
	live := 0
	for _, flat := range st.future {
		for _, m := range flat {
			if !st.isHalted(m.To) {
				live++
			}
		}
	}
	return live
}

// sealRound closes the round's accounting and returns the number of sends
// the round produced (the engines' quiescence signal).
func (st *runState) sealRound(round int) int {
	sent := st.roundSend
	st.roundSend = 0
	st.mt.EndRound(round, sent)
	if st.tt != nil {
		st.tt.EndRound(round, sent)
	}
	for _, tr := range st.extra {
		tr.EndRound(round, sent)
	}
	return sent
}

// noteInbox announces the inbox handed to live player v this round.
func (st *runState) noteInbox(v, round int, inbox []Message) {
	st.mt.Deliver(round, v, inbox)
	if st.tt != nil {
		st.tt.Deliver(round, v, inbox)
	}
	for _, tr := range st.extra {
		tr.Deliver(round, v, inbox)
	}
}

// halt marks player v as halted in the given round.
func (st *runState) halt(round, v int) {
	if st.haltedB != nil {
		st.haltedB[v] = true
	} else {
		st.halted[v] = true
	}
	st.haltedN++
	st.mt.Halt(round, v)
	if st.tt != nil {
		st.tt.Halt(round, v)
	}
	for _, tr := range st.extra {
		tr.Halt(round, v)
	}
}

func (st *runState) allHalted() bool {
	return st.haltedN == len(st.ids)
}

// stopEarly refreshes the decision map and evaluates the config predicate.
func (st *runState) stopEarly() bool {
	st.refreshDecisions()
	if st.cfg.StopEarly == nil {
		return false
	}
	return st.cfg.StopEarly(st.decisions)
}

func (st *runState) refreshDecisions() {
	for i, v := range st.ids {
		if st.decidedB != nil {
			if st.decidedB[i] {
				continue
			}
		} else if _, have := st.decisions[v]; have {
			continue
		}
		if val, ok := st.procs[i].Decision(); ok {
			if st.decidedB != nil {
				st.decidedB[i] = true
			}
			st.decisions[v] = val
			st.decidedAt[v] = st.rounds
			st.mt.Decide(st.rounds, v, val)
			if st.tt != nil {
				st.tt.Decide(st.rounds, v, val)
			}
			for _, tr := range st.extra {
				tr.Decide(st.rounds, v, val)
			}
		}
	}
}

func (st *runState) result() *Result {
	st.refreshDecisions()
	st.drainCalendar()
	st.mt.EndRun(st.rounds)
	if st.tt != nil {
		st.tt.EndRun(st.rounds)
	}
	for _, tr := range st.extra {
		tr.EndRun(st.rounds)
	}
	res := &Result{
		Rounds:         st.rounds,
		Decisions:      st.decisions,
		DecidedAtRound: st.decidedAt,
		Metrics:        st.mt.Metrics(),
	}
	if st.tt != nil {
		res.Transcript = st.tt.Transcript()
	}
	return res
}
