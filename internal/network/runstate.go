package network

import "sort"

// runState holds the bookkeeping shared by both engines. One engine round
// proceeds as: takePending (messages sent last round) → per-player Round
// calls writing into per-player send buffers → merge buffers in ID order →
// sealRound. Keeping merges in ID order makes the goroutine engine's
// observable behavior identical to lockstep for deterministic protocols.
//
// All instrumentation — complexity metrics, the transcript, and any
// user-installed observers — flows through the Tracer event stream: the
// engine itself only moves messages. Tracer calls all happen on the
// coordinating goroutine (merges and inbox hand-offs are serialized even
// under the goroutine engine), so tracers need no locking.
//
// The two stock tracers are dispatched through concrete fields rather than
// the extra-tracer slice: metrics accumulation sits on the engines' hot
// path, and the usual case (no transcript, no user tracers) must stay as
// cheap as the inline counters it replaced.
type runState struct {
	cfg       Config
	ids       []int
	maxRounds int
	halted    map[int]bool
	future    map[int]map[int][]Message // delivery round → recipient → messages
	inFlight  int                       // undelivered scheduled messages
	sched     Scheduler                 // nil = synchronous delivery at sent+1
	extra     []Tracer                  // user-installed observers (Config.Tracers)
	mt        MetricsTracer
	tt        *TranscriptTracer // nil unless Config.RecordTranscript
	rounds    int
	roundSend int
	decisions map[int]Value
	decidedAt map[int]int
}

func newRunState(cfg Config) *runState {
	st := &runState{
		cfg:       cfg,
		ids:       cfg.Graph.SortedIDs(),
		maxRounds: cfg.maxRounds(),
		halted:    make(map[int]bool),
		future:    make(map[int]map[int][]Message),
		decisions: make(map[int]Value),
		decidedAt: make(map[int]int),
		extra:     cfg.Tracers,
	}
	if cfg.engine() == Async {
		st.sched = cfg.Scheduler
		if st.sched == nil {
			st.sched = SyncScheduler{}
		}
	}
	if cfg.RecordTranscript {
		st.tt = NewTranscriptTracer()
	}
	nodes, edges, engine := cfg.Graph.NumNodes(), cfg.Graph.NumEdges(), cfg.engine()
	st.mt.BeginRun(nodes, edges, engine)
	if st.tt != nil {
		st.tt.BeginRun(nodes, edges, engine)
	}
	for _, tr := range st.extra {
		tr.BeginRun(nodes, edges, engine)
	}
	return st
}

// sendBuf collects one player's sends during one round.
type sendBuf struct {
	from int
	recs []sendRec
}

type sendRec struct {
	msg Message
	ok  bool
}

// newOutbox returns the Outbox for player v writing into buf. The edge
// check enforces authenticated channels: only existing links carry data.
func (st *runState) newOutbox(v int, buf *sendBuf) Outbox {
	return func(to int, p Payload) {
		ok := to != v && st.cfg.Graph.HasEdge(v, to)
		buf.recs = append(buf.recs, sendRec{msg: Message{From: v, To: to, Payload: p}, ok: ok})
	}
}

// merge folds one player's send buffer into the delivery calendar, emitting
// Send/Drop (and, for scheduler-delayed messages, Delay) events. Must be
// called serially, in player-ID order, with the round in which the sends
// happened — that order is also the order in which the scheduler sees the
// messages, which is what makes a seeded schedule reproducible.
func (st *runState) merge(round int, buf *sendBuf) {
	for _, r := range buf.recs {
		if !r.ok {
			st.mt.Drop(round, r.msg)
			if st.tt != nil {
				st.tt.Drop(round, r.msg)
			}
			for _, tr := range st.extra {
				tr.Drop(round, r.msg)
			}
			continue
		}
		st.roundSend++
		at := st.deliveryRound(round, r.msg)
		byTo := st.future[at]
		if byTo == nil {
			byTo = make(map[int][]Message)
			st.future[at] = byTo
		}
		byTo[r.msg.To] = append(byTo[r.msg.To], r.msg)
		st.inFlight++
		st.mt.Send(round, r.msg)
		if st.tt != nil {
			st.tt.Send(round, r.msg)
		}
		for _, tr := range st.extra {
			tr.Send(round, r.msg)
		}
		if at != round+1 {
			st.mt.Delay(round, at, r.msg)
			if st.tt != nil {
				st.tt.Delay(round, at, r.msg)
			}
			for _, tr := range st.extra {
				tr.Delay(round, at, r.msg)
			}
		}
	}
}

// deliveryRound asks the scheduler (when one is installed) for the delivery
// round of a message sent in round, clamped into [round+1, maxRounds] so a
// scheduler can neither deliver into the past nor starve a message past the
// end of a bounded run — the engine-enforced eventual-delivery guarantee.
// Sends in the final round land past maxRounds (the clamp cannot apply to
// them), as under synchronous delivery; they are swept out of the calendar
// and recorded as losses when the run ends (see result), so MessagesSent
// still reconciles with MessagesDelivered + MessagesLost.
func (st *runState) deliveryRound(round int, m Message) int {
	if st.sched == nil {
		return round + 1
	}
	at := st.sched.DeliverAt(round, m)
	if at < round+1 {
		at = round + 1
	}
	if at > st.maxRounds && round+1 <= st.maxRounds {
		at = st.maxRounds
	}
	return at
}

// collectSends runs fn with a fresh outbox for v and merges immediately.
// Lockstep-only convenience (merging inline is not goroutine-safe).
func (st *runState) collectSends(v, round int, fn func(out Outbox)) {
	buf := &sendBuf{from: v}
	fn(st.newOutbox(v, buf))
	st.merge(round, buf)
}

// takePending removes and returns the messages due for delivery in round.
// Messages addressed to players that have already halted can never be
// received; they are removed and recorded as losses so the send/delivery
// accounting reconciles.
func (st *runState) takePending(round int) map[int][]Message {
	pending := st.future[round]
	delete(st.future, round)
	var halted []int
	for to, msgs := range pending {
		st.inFlight -= len(msgs)
		if st.halted[to] {
			halted = append(halted, to)
		}
	}
	sort.Ints(halted) // deterministic Lose event order
	for _, to := range halted {
		for _, m := range pending[to] {
			st.lose(round, m)
		}
		delete(pending, to)
	}
	return pending
}

// lose reports one accepted send that will never reach a live player.
func (st *runState) lose(round int, m Message) {
	st.mt.Lose(round, m)
	if st.tt != nil {
		st.tt.Lose(round, m)
	}
	for _, tr := range st.extra {
		tr.Lose(round, m)
	}
}

// drainCalendar sweeps the undelivered remainder of the delivery calendar
// at run end — sends made in the final round (necessarily undeliverable,
// as under synchronous delivery) and sends scheduled past an early stop —
// recording each as a loss and zeroing the in-flight count. Without the
// sweep these messages stayed in st.future/inFlight forever: counted as
// MessagesSent but never delivered or dropped, so metrics did not
// reconcile.
func (st *runState) drainCalendar() {
	if st.inFlight == 0 {
		st.future = nil
		return
	}
	rounds := make([]int, 0, len(st.future))
	for at := range st.future {
		rounds = append(rounds, at)
	}
	sort.Ints(rounds)
	for _, at := range rounds {
		byTo := st.future[at]
		tos := make([]int, 0, len(byTo))
		for to := range byTo {
			tos = append(tos, to)
		}
		sort.Ints(tos)
		for _, to := range tos {
			for _, m := range byTo[to] {
				st.lose(at, m)
				st.inFlight--
			}
		}
	}
	st.future = nil
	st.inFlight = 0
}

// futureLive counts the scheduled-but-undelivered messages addressed to
// players that have not halted. While it is non-zero the run cannot be
// quiescent: a later round will still see new input.
func (st *runState) futureLive() int {
	if st.inFlight == 0 {
		return 0
	}
	live := 0
	for _, byTo := range st.future {
		for to, msgs := range byTo {
			if !st.halted[to] {
				live += len(msgs)
			}
		}
	}
	return live
}

// sealRound closes the round's accounting and returns the number of sends
// the round produced (the engines' quiescence signal).
func (st *runState) sealRound(round int) int {
	sent := st.roundSend
	st.roundSend = 0
	st.mt.EndRound(round, sent)
	if st.tt != nil {
		st.tt.EndRound(round, sent)
	}
	for _, tr := range st.extra {
		tr.EndRound(round, sent)
	}
	return sent
}

// noteInbox announces the inbox handed to live player v this round.
func (st *runState) noteInbox(v, round int, inbox []Message) {
	st.mt.Deliver(round, v, inbox)
	if st.tt != nil {
		st.tt.Deliver(round, v, inbox)
	}
	for _, tr := range st.extra {
		tr.Deliver(round, v, inbox)
	}
}

// halt marks player v as halted in the given round.
func (st *runState) halt(round, v int) {
	st.halted[v] = true
	st.mt.Halt(round, v)
	if st.tt != nil {
		st.tt.Halt(round, v)
	}
	for _, tr := range st.extra {
		tr.Halt(round, v)
	}
}

func (st *runState) allHalted() bool {
	return len(st.halted) == len(st.ids)
}

// liveDeliveries counts pending messages addressed to players that have not
// halted. Mail to halted players can never influence the run.
func (st *runState) liveDeliveries(pending map[int][]Message) int {
	live := 0
	for to, msgs := range pending {
		if !st.halted[to] {
			live += len(msgs)
		}
	}
	return live
}

// stopEarly refreshes the decision map and evaluates the config predicate.
func (st *runState) stopEarly() bool {
	st.refreshDecisions()
	if st.cfg.StopEarly == nil {
		return false
	}
	return st.cfg.StopEarly(st.decisions)
}

func (st *runState) refreshDecisions() {
	for _, v := range st.ids {
		if _, have := st.decisions[v]; have {
			continue
		}
		if val, ok := st.cfg.Processes[v].Decision(); ok {
			st.decisions[v] = val
			st.decidedAt[v] = st.rounds
			st.mt.Decide(st.rounds, v, val)
			if st.tt != nil {
				st.tt.Decide(st.rounds, v, val)
			}
			for _, tr := range st.extra {
				tr.Decide(st.rounds, v, val)
			}
		}
	}
}

func (st *runState) result() *Result {
	st.refreshDecisions()
	st.drainCalendar()
	st.mt.EndRun(st.rounds)
	if st.tt != nil {
		st.tt.EndRun(st.rounds)
	}
	for _, tr := range st.extra {
		tr.EndRun(st.rounds)
	}
	res := &Result{
		Rounds:         st.rounds,
		Decisions:      st.decisions,
		DecidedAtRound: st.decidedAt,
		Metrics:        st.mt.Metrics(),
	}
	if st.tt != nil {
		res.Transcript = st.tt.Transcript()
	}
	return res
}
