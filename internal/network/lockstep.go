package network

// runLockstep executes the run in a single goroutine, stepping players in
// increasing ID order. It is fully deterministic.
func runLockstep(cfg Config) (*Result, error) {
	st := newRunState(cfg)

	// Round 0: Init.
	for _, v := range st.ids {
		st.collectSends(v, 0, func(out Outbox) {
			cfg.Processes[v].Init(out)
		})
	}
	st.sealRound(0)
	st.refreshDecisions() // record Init-time decisions as round 0

	// Per-player buffers and outboxes live for the whole run (recs are
	// truncated, not reallocated, each round): the round loop is the
	// simulator's hot path and must not allocate per player per round.
	bufs := make([]sendBuf, len(st.ids))
	haltedNow := make([]bool, len(st.ids))
	outboxes := make([]Outbox, len(st.ids))
	for i, v := range st.ids {
		bufs[i].from = v
		outboxes[i] = st.newOutbox(v, &bufs[i])
	}
	for round := 1; round <= st.maxRounds; round++ {
		pending := st.takePending(round)
		live := st.liveDeliveries(pending)
		if live == 0 && st.futureLive() == 0 && st.allHalted() {
			break
		}
		quiescent := live == 0 && st.futureLive() == 0

		// Compute phase: run every live player against its inbox, buffering
		// sends. Merging afterwards in ID order mirrors the goroutine engine
		// exactly, so the two emit identical tracer event sequences.
		for i, v := range st.ids {
			if st.halted[v] {
				continue
			}
			inbox := pending[v]
			sortInbox(inbox)
			st.noteInbox(v, round, inbox)
			bufs[i].recs = bufs[i].recs[:0]
			haltedNow[i] = !cfg.Processes[v].Round(round, inbox, outboxes[i])
		}
		for i, v := range st.ids {
			if st.halted[v] {
				continue
			}
			st.merge(round, &bufs[i])
			if haltedNow[i] {
				st.halt(round, v)
			}
		}
		sent := st.sealRound(round)
		st.rounds = round
		if st.stopEarly() {
			break
		}
		// Quiescence: nothing was in flight and nothing new was produced,
		// so every later round is identical — stop.
		if quiescent && sent == 0 {
			break
		}
	}
	return st.result(), nil
}
