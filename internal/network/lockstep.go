package network

// runLockstep executes the run in a single goroutine, stepping players in
// increasing ID order. It is fully deterministic.
func runLockstep(cfg Config) (*Result, error) {
	st := newRunState(cfg)

	// Round 0: Init.
	for _, v := range st.ids {
		st.collectSends(v, 0, func(out Outbox) {
			cfg.Processes[v].Init(out)
		})
	}
	st.sealRound(0)
	st.refreshDecisions() // record Init-time decisions as round 0

	for round := 1; round <= st.maxRounds; round++ {
		pending := st.takePending()
		live := st.liveDeliveries(pending)
		if live == 0 && st.allHalted() {
			break
		}
		quiescent := live == 0
		for _, v := range st.ids {
			if st.halted[v] {
				continue
			}
			inbox := pending[v]
			sortInbox(inbox)
			st.noteInbox(v, round, inbox)
			st.collectSends(v, round, func(out Outbox) {
				if !cfg.Processes[v].Round(round, inbox, out) {
					st.halted[v] = true
				}
			})
		}
		st.sealRound(round)
		st.rounds = round
		if st.stopEarly() {
			break
		}
		// Quiescence: nothing was in flight and nothing new was produced,
		// so every later round is identical — stop.
		if quiescent && st.metrics.MessagesPerRound[round] == 0 {
			break
		}
	}
	return st.result(), nil
}
