package network

// lockstepEngine is the deterministic single-goroutine engine: players step
// in increasing ID order with synchronous next-round delivery.
type lockstepEngine struct{}

// Name implements Engine.
func (lockstepEngine) Name() string { return EngineLockstep }

// Run implements Engine. Lockstep delivery is strictly synchronous, so any
// Scheduler left in the config is cleared before the run state is built.
func (e lockstepEngine) Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Engine == nil {
		cfg.Engine = e
	}
	cfg.Scheduler = nil
	return runLockstep(cfg)
}

// runLockstep executes the run in a single goroutine, stepping players in
// increasing ID order. It is fully deterministic. It is shared verbatim by
// the async engine (all asynchrony lives in the delivery calendar the
// Scheduler fills) and, through proxy processes, by the wire engine.
func runLockstep(cfg Config) (*Result, error) {
	st := newRunState(cfg)

	// Per-player buffers and outboxes live for the whole run, Init
	// included (recs are truncated, not reallocated, each round): the
	// round loop is the simulator's hot path and must not allocate per
	// player per round.
	bufs, outboxes := st.setupBufs()
	haltedNow := make([]bool, len(st.ids))

	// Round 0: Init. Each player's sends merge immediately, as one batch
	// per player in ID order — the same event order the round loop emits.
	for i := range st.ids {
		bufs[i].recs = bufs[i].recs[:0]
		st.procs[i].Init(outboxes[i])
		st.merge(0, &bufs[i])
	}
	st.sealRound(0)
	st.refreshDecisions() // record Init-time decisions as round 0

	for round := 1; round <= st.maxRounds; round++ {
		st.applyChurn(round)
		live := st.takePending(round)
		if live == 0 && st.futureLive() == 0 && st.allHalted() {
			break
		}
		quiescent := live == 0 && st.futureLive() == 0

		// Compute phase: run every live player against its inbox, buffering
		// sends. Merging afterwards in ID order mirrors the goroutine engine
		// exactly, so the two emit identical tracer event sequences.
		for i, v := range st.ids {
			if st.isHalted(v) {
				continue
			}
			inbox := st.inboxOf(v)
			st.noteInbox(v, round, inbox)
			bufs[i].recs = bufs[i].recs[:0]
			haltedNow[i] = !st.procs[i].Round(round, inbox, outboxes[i])
		}
		for i, v := range st.ids {
			if st.isHalted(v) {
				continue
			}
			st.merge(round, &bufs[i])
			if haltedNow[i] {
				st.halt(round, v)
			}
		}
		sent := st.sealRound(round)
		st.rounds = round
		// The round is fully processed: inboxes handed out this round are
		// dead, so their buffer can back future deliveries.
		st.recycle()
		if st.stopEarly() {
			break
		}
		// Quiescence: nothing was in flight and nothing new was produced,
		// so every later round is identical — stop. Pending churn blocks
		// the shortcut: a future edge addition can revive rejected sends.
		if quiescent && sent == 0 && !st.churnPending() {
			break
		}
	}
	res := st.result()
	st.release()
	return res, nil
}
