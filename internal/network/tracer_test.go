package network

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rmt/internal/graph"
)

// recordingTracer captures the full event stream for reconciliation tests.
type recordingTracer struct {
	NopTracer
	events       []string // canonical event log, for cross-engine comparison
	sendsPerRnd  map[int]int
	bitsPerRnd   map[int]int
	drops        int
	delivers     map[int]int // round → messages delivered
	decides      map[int]Value
	halts        map[int]int // player → round
	endRoundSent map[int]int
	rounds       int
	began        int
}

func newRecordingTracer() *recordingTracer {
	return &recordingTracer{
		sendsPerRnd:  map[int]int{},
		bitsPerRnd:   map[int]int{},
		delivers:     map[int]int{},
		decides:      map[int]Value{},
		halts:        map[int]int{},
		endRoundSent: map[int]int{},
	}
}

func (r *recordingTracer) BeginRun(nodes, edges int, e Engine) {
	r.began++
	r.events = append(r.events, fmt.Sprintf("begin %d %d", nodes, edges))
}

func (r *recordingTracer) Send(round int, m Message) {
	r.sendsPerRnd[round]++
	r.bitsPerRnd[round] += m.Payload.BitSize()
	r.events = append(r.events, fmt.Sprintf("send %d %s", round, m.Key()))
}

func (r *recordingTracer) Drop(round int, m Message) {
	r.drops++
	r.events = append(r.events, fmt.Sprintf("drop %d %d>%d", round, m.From, m.To))
}

func (r *recordingTracer) Deliver(round, player int, inbox []Message) {
	r.delivers[round] += len(inbox)
	r.events = append(r.events, fmt.Sprintf("deliver %d %d #%d", round, player, len(inbox)))
}

func (r *recordingTracer) Decide(round, player int, x Value) {
	r.decides[player] = x
	r.events = append(r.events, fmt.Sprintf("decide %d %d %s", round, player, x))
}

func (r *recordingTracer) Halt(round, player int) {
	r.halts[player] = round
	r.events = append(r.events, fmt.Sprintf("halt %d %d", round, player))
}

func (r *recordingTracer) EndRound(round, sent int) {
	r.endRoundSent[round] = sent
	r.events = append(r.events, fmt.Sprintf("end-round %d %d", round, sent))
}

func (r *recordingTracer) EndRun(rounds int) {
	r.rounds = rounds
	r.events = append(r.events, fmt.Sprintf("end-run %d", rounds))
}

// randomConnectedGraph builds a connected G(n, p)-style graph: a random
// spanning path plus independent extra edges.
func randomConnectedGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(perm[i], perm[i+1])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// TestTracerReconciliation is the tracer/transcript reconciliation property:
// on randomized instances, under both engines, the Tracer event stream must
// agree with the Transcript (per-round sends, deliveries at round+1, bits)
// and with Result.Metrics, and the event stream itself must be identical
// across engines.
func TestTracerReconciliation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		g := randomConnectedGraph(rng, n, 0.3)
		origin := rng.Intn(n)
		val := Value(fmt.Sprintf("v%d", trial))

		var streams [2][]string
		for i, eng := range []Engine{Lockstep, Goroutine} {
			rt := newRecordingTracer()
			cfg := floodConfig(t, g, origin, val)
			cfg.Engine = eng
			cfg.RecordTranscript = true
			cfg.Tracers = []Tracer{rt}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, eng, err)
			}
			reconcile(t, trial, eng, rt, res)
			streams[i] = rt.events
		}
		if strings.Join(streams[0], "\n") != strings.Join(streams[1], "\n") {
			t.Fatalf("trial %d: event streams differ between engines:\nlockstep:\n%s\ngoroutine:\n%s",
				trial, strings.Join(streams[0], "\n"), strings.Join(streams[1], "\n"))
		}
	}
}

func reconcile(t *testing.T, trial int, eng Engine, rt *recordingTracer, res *Result) {
	t.Helper()
	if rt.began != 1 {
		t.Fatalf("trial %d %v: BeginRun called %d times", trial, eng, rt.began)
	}
	if rt.rounds != res.Rounds {
		t.Fatalf("trial %d %v: EndRun rounds %d != Result.Rounds %d", trial, eng, rt.rounds, res.Rounds)
	}

	// Sends, bits and drops reconcile with Result.Metrics.
	totSends, totBits := 0, 0
	for r, c := range rt.sendsPerRnd {
		totSends += c
		totBits += rt.bitsPerRnd[r]
		if got := rt.endRoundSent[r]; got != c {
			t.Fatalf("trial %d %v: round %d EndRound sent %d != observed sends %d", trial, eng, r, got, c)
		}
		if r < len(res.Metrics.MessagesPerRound) && res.Metrics.MessagesPerRound[r] != c {
			t.Fatalf("trial %d %v: round %d MessagesPerRound %d != tracer sends %d",
				trial, eng, r, res.Metrics.MessagesPerRound[r], c)
		}
	}
	if totSends != res.Metrics.MessagesSent {
		t.Fatalf("trial %d %v: tracer sends %d != Metrics.MessagesSent %d", trial, eng, totSends, res.Metrics.MessagesSent)
	}
	if totBits != res.Metrics.BitsSent {
		t.Fatalf("trial %d %v: tracer bits %d != Metrics.BitsSent %d", trial, eng, totBits, res.Metrics.BitsSent)
	}
	if rt.drops != res.Metrics.MessagesDropped {
		t.Fatalf("trial %d %v: tracer drops %d != Metrics.MessagesDropped %d", trial, eng, rt.drops, res.Metrics.MessagesDropped)
	}

	// Sends reconcile with the Transcript: a send in round r is the
	// delivery set of round r+1.
	for r, c := range rt.sendsPerRnd {
		if got := len(res.Transcript.Deliveries(r + 1)); got != c {
			t.Fatalf("trial %d %v: transcript deliveries(%d)=%d != tracer sends in round %d = %d",
				trial, eng, r+1, got, r, c)
		}
	}
	if res.Transcript.NumMessages() != totSends {
		t.Fatalf("trial %d %v: transcript has %d messages, tracer saw %d sends",
			trial, eng, res.Transcript.NumMessages(), totSends)
	}

	// Deliveries never exceed the prior round's sends (halted players'
	// mail is not handed over), and only live players receive.
	for r, d := range rt.delivers {
		if sent := rt.sendsPerRnd[r-1]; d > sent {
			t.Fatalf("trial %d %v: round %d delivered %d > %d sent in round %d",
				trial, eng, r, d, sent, r-1)
		}
	}

	// Decisions reconcile with the Result.
	if len(rt.decides) != len(res.Decisions) {
		t.Fatalf("trial %d %v: tracer saw %d decisions, result has %d",
			trial, eng, len(rt.decides), len(res.Decisions))
	}
	for v, x := range rt.decides {
		if res.Decisions[v] != x {
			t.Fatalf("trial %d %v: player %d decision %q != result %q", trial, eng, v, x, res.Decisions[v])
		}
	}
}

// TestTracerSeesDrops asserts Drop events fire for non-edge sends.
func TestTracerSeesDrops(t *testing.T) {
	g := line(t, 3)
	rt := newRecordingTracer()
	procs := map[int]Process{
		0: &nonNeighborSender{n: 2}, // 0-2 is not an edge
		1: &sink{},
		2: &sink{},
	}
	if _, err := Run(Config{Graph: g, Processes: procs, Tracers: []Tracer{rt}}); err != nil {
		t.Fatal(err)
	}
	if rt.drops == 0 {
		t.Fatal("no Drop events for non-edge sends")
	}
}

// TestJSONLTracer checks the JSONL stream is well-formed and complete.
func TestJSONLTracer(t *testing.T) {
	g := line(t, 4)
	var buf bytes.Buffer
	jt := NewJSONLTracer(&buf)
	cfg := floodConfig(t, g, 0, "hello")
	cfg.Tracers = []Tracer{jt}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := jt.Err(); err != nil {
		t.Fatalf("JSONL tracer error: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	seen := map[string]bool{}
	for _, ln := range lines {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		seen[ev.Ev] = true
	}
	for _, want := range []string{"run", "send", "deliver", "decide", "halt", "round-end", "run-end"} {
		if !seen[want] {
			t.Fatalf("JSONL stream missing %q events; got %v", want, seen)
		}
	}
}

// TestMetricsTracerMatchesLegacyCounters pins the stock metrics tracer to
// the documented Metrics semantics on a deterministic run.
func TestMetricsTracerMatchesLegacyCounters(t *testing.T) {
	g := line(t, 5)
	rt := newRecordingTracer()
	cfg := floodConfig(t, g, 0, "m")
	cfg.Tracers = []Tracer{rt}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flood on a 5-line from one end: each player forwards once.
	if res.Metrics.MessagesSent == 0 || res.Metrics.BitsSent == 0 {
		t.Fatalf("empty metrics: %+v", res.Metrics)
	}
	if got := len(res.Metrics.MessagesPerRound); got != res.Rounds+1 {
		t.Fatalf("MessagesPerRound has %d entries for %d rounds", got, res.Rounds)
	}
}
