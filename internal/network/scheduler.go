package network

import (
	"fmt"
	"sort"
)

// Scheduler is the async engine's delivery policy: it assigns a delivery
// round to every accepted send. The engine calls DeliverAt exactly once per
// accepted send, in the deterministic merge order (player-ID order, then
// send order within a player), so a scheduler seeded from a fixed stream
// reproduces the same schedule byte-for-byte on every run — including
// across worker counts when the seed derives from eval.TrialSeed.
//
// Contract:
//
//   - DeliverAt must return a round ≥ sent+1 (the engine clamps upward,
//     counting the clamp as a normal delivery, so a buggy scheduler cannot
//     deliver into the past);
//   - the extra delay must be bounded by MaxSkew rounds, except for
//     partition-style schedulers, whose delay is bounded by their heal
//     round. Bounded delay is the eventual-delivery guarantee: every
//     accepted send is delivered while the run still has rounds to spend
//     (the engine additionally clamps delivery to Config.MaxRounds so a
//     finite run realizes it).
//
// Schedulers are single-use: they may keep per-link state (FIFO ordering,
// reorder cycles) and must not be shared between runs.
type Scheduler interface {
	// Name is the registry name of the scheduling policy.
	Name() string
	// DeliverAt returns the delivery round for a message accepted in round
	// sent.
	DeliverAt(sent int, m Message) int
}

// MaxSkew bounds the extra delay (beyond the synchronous sent+1) the stock
// delay/reorder schedulers ever add.
const MaxSkew = 3

// Stock scheduler names.
const (
	SchedSync      = "sync"      // synchronous: every send delivered next round (zero-fault schedule)
	SchedRandom    = "random"    // seeded per-message delay in [1, 1+MaxSkew)
	SchedFIFO      = "fifo"      // seeded per-message delay, but FIFO order per directed link
	SchedLIFO      = "lifo"      // last-writer-first: per-link delay cycle 3,2,1, seed-phased per link
	SchedPartition = "partition" // seed-chosen bipartition delays crossing messages until a heal round
)

// SchedulerNames returns the stock scheduler names, sorted.
func SchedulerNames() []string {
	names := []string{SchedSync, SchedRandom, SchedFIFO, SchedLIFO, SchedPartition}
	sort.Strings(names)
	return names
}

// NewScheduler builds the named stock scheduler. The seed drives every
// random choice through a private splitmix64 stream — message delays for
// random/fifo, per-link cycle phases for lifo, the bipartition and heal
// round for partition; sync has no random choices. Equal (name, seed)
// pairs yield identical schedules, and distinct seeds yield decorrelated
// ones, the property the sweep's per-trial seed derivation relies on.
func NewScheduler(name string, seed int64) (Scheduler, error) {
	switch name {
	case SchedSync:
		return SyncScheduler{}, nil
	case SchedRandom:
		return &randomScheduler{rng: newSplitMix(uint64(seed))}, nil
	case SchedFIFO:
		return &fifoScheduler{rng: newSplitMix(uint64(seed)), last: make(map[[2]int]int)}, nil
	case SchedLIFO:
		return &lifoScheduler{seed: uint64(seed), seq: make(map[[2]int]int)}, nil
	case SchedPartition:
		return newPartitionScheduler(uint64(seed)), nil
	default:
		return nil, fmt.Errorf("network: unknown scheduler %q (want one of %v)", name, SchedulerNames())
	}
}

// MustScheduler is NewScheduler for static names known at compile time.
func MustScheduler(name string, seed int64) Scheduler {
	s, err := NewScheduler(name, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// splitmix64 is the splitmix64 PRNG stream (the same finalizer that
// eval.TrialSeed decorrelates trial seeds with) — tiny, allocation-free,
// and fully determined by its seed.
type splitmix64 struct{ x uint64 }

func newSplitMix(seed uint64) *splitmix64 { return &splitmix64{x: seed} }

func (s *splitmix64) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is irrelevant for
// schedule sampling.
func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// SyncScheduler is the zero-fault schedule: every message is delivered in
// the round after it was sent, exactly as the lockstep and goroutine
// engines deliver. The async engine under SyncScheduler is transcript- and
// decision-identical to lockstep, which the conformance suite asserts.
type SyncScheduler struct{}

// Name implements Scheduler.
func (SyncScheduler) Name() string { return SchedSync }

// DeliverAt implements Scheduler.
func (SyncScheduler) DeliverAt(sent int, _ Message) int { return sent + 1 }

// randomScheduler delays each message independently by 1..1+MaxSkew rounds,
// permuting both per-link order and round membership.
type randomScheduler struct{ rng *splitmix64 }

func (*randomScheduler) Name() string { return SchedRandom }

func (s *randomScheduler) DeliverAt(sent int, _ Message) int {
	return sent + 1 + s.rng.intn(MaxSkew+1)
}

// fifoScheduler delays like randomScheduler but never lets a message
// overtake an earlier one on the same directed link — the classic
// reliable-FIFO-channel asynchrony model.
type fifoScheduler struct {
	rng  *splitmix64
	last map[[2]int]int
}

func (*fifoScheduler) Name() string { return SchedFIFO }

func (s *fifoScheduler) DeliverAt(sent int, m Message) int {
	link := [2]int{m.From, m.To}
	at := sent + 1 + s.rng.intn(MaxSkew+1)
	if prev := s.last[link]; at < prev {
		at = prev
	}
	s.last[link] = at
	return at
}

// lifoScheduler is the adversarial last-writer-first reordering: on each
// directed link the delay cycles 3, 2, 1, so within every window of three
// sends the latest arrives first. The seed chooses each link's starting
// phase within the cycle (so per-trial seeds explore different alignments
// of the reorder windows against the protocol's send pattern), but never
// the cycle itself — within every aligned window the reversal property is
// preserved exactly.
type lifoScheduler struct {
	seed uint64
	seq  map[[2]int]int
}

func (*lifoScheduler) Name() string { return SchedLIFO }

// phase derives the seed-chosen starting offset of a link's delay cycle.
func (s *lifoScheduler) phase(link [2]int) int {
	h := newSplitMix(s.seed ^
		(uint64(link[0])+1)*0xbf58476d1ce4e5b9 ^
		(uint64(link[1])+1)*0x94d049bb133111eb)
	return h.intn(MaxSkew)
}

func (s *lifoScheduler) DeliverAt(sent int, m Message) int {
	link := [2]int{m.From, m.To}
	n, seen := s.seq[link]
	if !seen {
		n = s.phase(link)
	}
	s.seq[link] = n + 1
	return sent + MaxSkew - n%MaxSkew // delays cycle 3, 2, 1, from the seeded phase
}

// partitionScheduler splits the players into two seed-chosen blocks and
// holds every cross-partition message back until a heal round, after which
// the network is synchronous again — the partition-then-heal schedule.
// Messages are delayed, never dropped, so eventual delivery holds.
type partitionScheduler struct {
	hash uint64
	heal int
}

func newPartitionScheduler(seed uint64) *partitionScheduler {
	rng := newSplitMix(seed)
	return &partitionScheduler{
		hash: rng.next(),
		heal: 2 + rng.intn(4), // heal in rounds 2..5
	}
}

func (*partitionScheduler) Name() string { return SchedPartition }

// side assigns node v to one of the two blocks by hashing it against the
// run's seed material.
func (s *partitionScheduler) side(v int) bool {
	h := newSplitMix(s.hash ^ (uint64(v)+1)*0xd1b54a32d192ed03)
	return h.next()&1 == 1
}

func (s *partitionScheduler) DeliverAt(sent int, m Message) int {
	if sent < s.heal && s.side(m.From) != s.side(m.To) {
		return s.heal + 1
	}
	return sent + 1
}
