package network

import (
	"sort"
	"strings"
	"testing"

	"rmt/internal/graph"
)

// textPayload is a trivial payload for engine tests.
type textPayload string

func (p textPayload) BitSize() int { return len(p) * 8 }
func (p textPayload) Key() string  { return string(p) }

// floodProc implements a minimal flooding protocol: the origin sends its
// value at Init; every player forwards the first value it hears to all
// neighbors and decides on it, then halts.
type floodProc struct {
	id        int
	neighbors []int
	origin    bool
	value     Value
	decided   bool
}

func (f *floodProc) Init(out Outbox) {
	if f.origin {
		f.decided = true
		for _, u := range f.neighbors {
			out(u, textPayload(f.value))
		}
	}
}

func (f *floodProc) Round(round int, inbox []Message, out Outbox) bool {
	if f.decided {
		return false
	}
	if len(inbox) == 0 {
		return true
	}
	f.value = Value(inbox[0].Payload.(textPayload))
	f.decided = true
	for _, u := range f.neighbors {
		out(u, inbox[0].Payload)
	}
	return false
}

func (f *floodProc) Decision() (Value, bool) { return f.value, f.decided }

func floodConfig(t *testing.T, g *graph.Graph, origin int, val Value) Config {
	t.Helper()
	procs := make(map[int]Process)
	g.Nodes().ForEach(func(v int) bool {
		procs[v] = &floodProc{id: v, neighbors: g.Neighbors(v).Members(), origin: v == origin, value: func() Value {
			if v == origin {
				return val
			}
			return ""
		}()}
		return true
	})
	return Config{Graph: g, Processes: procs}
}

func line(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run accepted nil graph")
	}
	g := line(t, 3)
	if _, err := Run(Config{Graph: g, Processes: map[int]Process{}}); err == nil {
		t.Fatal("Run accepted missing processes")
	}
	if _, err := Run(Config{Graph: g, Processes: map[int]Process{0: &floodProc{}, 1: &floodProc{}, 5: &floodProc{}}}); err == nil {
		t.Fatal("Run accepted process map with wrong keys")
	}
	if _, err := EngineByName("warp"); err == nil {
		t.Fatal("EngineByName accepted unknown engine")
	} else if !strings.Contains(err.Error(), "lockstep") {
		t.Fatalf("unknown-engine error does not list registered names: %v", err)
	}
}

func TestFloodLockstep(t *testing.T) {
	g := line(t, 5)
	res, err := Run(floodConfig(t, g, 0, "attack"))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if got, ok := res.Decisions[v]; !ok || got != "attack" {
			t.Errorf("node %d decision = %q, %v", v, got, ok)
		}
	}
	// Value reaches the far end in 4 rounds on a 5-line.
	if res.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
}

func TestFloodGoroutine(t *testing.T) {
	g := line(t, 5)
	cfg := floodConfig(t, g, 0, "attack")
	cfg.Engine = Goroutine
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if got := res.Decisions[v]; got != "attack" {
			t.Errorf("node %d decision = %q", v, got)
		}
	}
}

func TestEnginesProduceIdenticalTranscripts(t *testing.T) {
	g, err := graph.ParseEdgeList("0-1 0-2 1-3 2-3 3-4 1-2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(e Engine) *Result {
		cfg := floodConfig(t, g, 0, "m")
		cfg.Engine = e
		cfg.RecordTranscript = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(Lockstep), run(Goroutine)
	if a.Transcript.Key() != b.Transcript.Key() {
		t.Fatalf("transcripts differ:\n%s\nvs\n%s", a.Transcript.Key(), b.Transcript.Key())
	}
	if a.Rounds != b.Rounds || a.Metrics.MessagesSent != b.Metrics.MessagesSent {
		t.Fatal("metrics differ between engines")
	}
}

// nonNeighborSender tries to send everywhere, exercising the authenticated-
// channel drop rule.
type nonNeighborSender struct{ n int }

func (s *nonNeighborSender) Init(out Outbox) {
	for v := 0; v < s.n; v++ {
		out(v, textPayload("spam"))
	}
}
func (s *nonNeighborSender) Round(int, []Message, Outbox) bool { return false }
func (s *nonNeighborSender) Decision() (Value, bool)           { return "", false }

// sink receives and counts.
type sink struct{ got int }

func (s *sink) Init(Outbox) {}
func (s *sink) Round(_ int, inbox []Message, _ Outbox) bool {
	s.got += len(inbox)
	return true
}
func (s *sink) Decision() (Value, bool) { return "", false }

func TestNonNeighborSendsDropped(t *testing.T) {
	g := line(t, 4) // 0-1-2-3; node 0 adjacent only to 1
	sinks := map[int]*sink{1: {}, 2: {}, 3: {}}
	procs := map[int]Process{0: &nonNeighborSender{n: 4}, 1: sinks[1], 2: sinks[2], 3: sinks[3]}
	res, err := Run(Config{Graph: g, Processes: procs})
	if err != nil {
		t.Fatal(err)
	}
	if sinks[1].got != 1 || sinks[2].got != 0 || sinks[3].got != 0 {
		t.Fatalf("deliveries = %d/%d/%d, want 1/0/0", sinks[1].got, sinks[2].got, sinks[3].got)
	}
	// 4 sends: self + 3 others; only 0→1 accepted.
	if res.Metrics.MessagesSent != 1 || res.Metrics.MessagesDropped != 3 {
		t.Fatalf("sent/dropped = %d/%d, want 1/3", res.Metrics.MessagesSent, res.Metrics.MessagesDropped)
	}
}

func TestMetrics(t *testing.T) {
	g := line(t, 3)
	cfg := floodConfig(t, g, 0, "ab") // 2 bytes = 16 bits per message
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sends: 0→1 (init), then 1→{0,2}, then 2→1 = 4 messages.
	if res.Metrics.MessagesSent != 4 {
		t.Fatalf("MessagesSent = %d, want 4", res.Metrics.MessagesSent)
	}
	if res.Metrics.BitsSent != 4*16 {
		t.Fatalf("BitsSent = %d, want 64", res.Metrics.BitsSent)
	}
	if res.Metrics.MessagesPerRound[0] != 1 {
		t.Fatalf("round-0 sends = %d, want 1", res.Metrics.MessagesPerRound[0])
	}
	if res.Metrics.MaxInboxPerPlayer < 1 {
		t.Fatal("MaxInboxPerPlayer not tracked")
	}
}

// silentProc never sends and never halts.
type silentProc struct{}

func (silentProc) Init(Outbox) {}
func (silentProc) Round(int, []Message, Outbox) bool {
	return true
}
func (silentProc) Decision() (Value, bool) { return "", false }

func TestQuiescenceStopsRun(t *testing.T) {
	g := line(t, 3)
	procs := map[int]Process{0: silentProc{}, 1: silentProc{}, 2: silentProc{}}
	res, err := Run(Config{Graph: g, Processes: procs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 1 {
		t.Fatalf("silent network ran %d rounds", res.Rounds)
	}
}

func TestMaxRoundsBound(t *testing.T) {
	// A two-node ping-pong never quiesces; MaxRounds must stop it.
	g := line(t, 2)
	procs := map[int]Process{0: &pingPong{peer: 1}, 1: &pingPong{peer: 0}}
	res, err := Run(Config{Graph: g, Processes: procs, MaxRounds: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 {
		t.Fatalf("rounds = %d, want 7", res.Rounds)
	}
}

type pingPong struct{ peer int }

func (p *pingPong) Init(out Outbox) { out(p.peer, textPayload("ping")) }
func (p *pingPong) Round(_ int, inbox []Message, out Outbox) bool {
	for range inbox {
		out(p.peer, textPayload("ping"))
	}
	return true
}
func (p *pingPong) Decision() (Value, bool) { return "", false }

func TestStopEarly(t *testing.T) {
	g := line(t, 6)
	cfg := floodConfig(t, g, 0, "x")
	cfg.StopEarly = func(d map[int]Value) bool {
		_, ok := d[2]
		return ok
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (stop when node 2 decides)", res.Rounds)
	}
	if _, ok := res.Decisions[5]; ok {
		t.Fatal("node 5 decided before the value could reach it")
	}
}

func TestHaltedPlayersReceiveNothing(t *testing.T) {
	// Node 1 halts immediately; later messages to it vanish.
	g := line(t, 3)
	s := &sink{}
	procs := map[int]Process{
		0: &delayedSender{to: 1},
		1: &haltImmediately{},
		2: s,
	}
	if _, err := Run(Config{Graph: g, Processes: procs}); err != nil {
		t.Fatal(err)
	}
	if s.got != 0 {
		t.Fatal("sink got messages unexpectedly")
	}
}

type haltImmediately struct{}

func (haltImmediately) Init(Outbox) {}
func (haltImmediately) Round(int, []Message, Outbox) bool {
	return false
}
func (haltImmediately) Decision() (Value, bool) { return "", false }

type delayedSender struct{ to int }

func (d *delayedSender) Init(Outbox) {}
func (d *delayedSender) Round(round int, _ []Message, out Outbox) bool {
	if round == 2 {
		out(d.to, textPayload("late"))
		return false
	}
	return true
}
func (d *delayedSender) Decision() (Value, bool) { return "", false }

func TestTranscriptViews(t *testing.T) {
	g := line(t, 3)
	cfg := floodConfig(t, g, 0, "v")
	cfg.RecordTranscript = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Transcript
	if tr == nil {
		t.Fatal("transcript missing")
	}
	// Node 0's view: its init send 0→1 (delivered round 1) and 1→0 (round 2).
	v0 := tr.ViewOf(0, 0)
	if len(v0) != 2 {
		t.Fatalf("view(0) = %v", v0)
	}
	if v0[0].Key() != "0>1:v" || v0[1].Key() != "1>0:v" {
		t.Fatalf("view(0) keys = %q, %q", v0[0].Key(), v0[1].Key())
	}
	// Truncated views.
	if got := tr.ViewOf(0, 1); len(got) != 1 {
		t.Fatalf("view(0,1) = %v", got)
	}
	// ViewKey equality for identical reruns.
	res2, err := Run(func() Config {
		c := floodConfig(t, g, 0, "v")
		c.RecordTranscript = true
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if tr.ViewKey(1, 0) != res2.Transcript.ViewKey(1, 0) {
		t.Fatal("identical runs produced different view keys")
	}
	if tr.NumMessages() != res.Metrics.MessagesSent {
		t.Fatal("transcript message count != metric")
	}
	if tr.Rounds() == 0 || len(tr.Deliveries(1)) != 1 {
		t.Fatal("transcript rounds/deliveries wrong")
	}
}

func TestEngineRegistry(t *testing.T) {
	if Lockstep.Name() != "lockstep" || Goroutine.Name() != "goroutine" || Async.Name() != "async" {
		t.Fatal("Engine.Name wrong")
	}
	names := EngineNames()
	for _, want := range []string{"async", "goroutine", "lockstep"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("EngineNames() = %v, missing %q", names, want)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("EngineNames() not sorted: %v", names)
	}
	for _, name := range names {
		e, err := EngineByName(name)
		if err != nil || e.Name() != name {
			t.Fatalf("EngineByName(%q) = %v, %v", name, e, err)
		}
	}
}

func TestMessageKey(t *testing.T) {
	m := Message{From: 2, To: 7, Payload: textPayload("zz")}
	if m.Key() != "2>7:zz" {
		t.Fatalf("Message.Key = %q", m.Key())
	}
}

func TestDecidedAtRound(t *testing.T) {
	g := line(t, 5)
	res, err := Run(floodConfig(t, g, 0, "x"))
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range map[int]int{0: 0, 1: 1, 2: 2, 3: 3, 4: 4} {
		if got, ok := res.DecidedAtRound[v]; !ok || got != want {
			t.Errorf("node %d decided at round %d (%v), want %d", v, got, ok, want)
		}
	}
}

func TestDecidedAtRoundEnginesAgree(t *testing.T) {
	g := line(t, 4)
	cfgA := floodConfig(t, g, 0, "x")
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := floodConfig(t, g, 0, "x")
	cfgB.Engine = Goroutine
	b, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if a.DecidedAtRound[v] != b.DecidedAtRound[v] {
			t.Errorf("node %d: lockstep %d vs goroutine %d", v, a.DecidedAtRound[v], b.DecidedAtRound[v])
		}
	}
}
