package network

import (
	"sort"
	"strings"
)

// Transcript records every channel event (one accepted send = one delivery)
// of a run, indexed by delivery round. It supports the paper's view(v, e)
// notation: the messages exchanged by a player and its neighbors, which
// drives the indistinguishability constructions (Theorem 8's runs e and e',
// Theorem 9's simulated runs e_0^l / e_1^l).
type Transcript struct {
	byRound map[int][]Message
	maxRnd  int
}

func newTranscript() *Transcript {
	return &Transcript{byRound: make(map[int][]Message)}
}

func (t *Transcript) record(deliveryRound int, m Message) {
	t.byRound[deliveryRound] = append(t.byRound[deliveryRound], m)
	if deliveryRound > t.maxRnd {
		t.maxRnd = deliveryRound
	}
}

// relocateLast moves the most recently recorded message of round from to
// round to — the TranscriptTracer's reaction to a Delay event, which the
// engine emits immediately after the message's Send. Delays only ever push
// delivery later (to > from), so maxRnd never goes stale.
func (t *Transcript) relocateLast(from, to int) {
	ms := t.byRound[from]
	if len(ms) == 0 || from == to {
		return
	}
	m := ms[len(ms)-1]
	t.byRound[from] = ms[:len(ms)-1]
	t.record(to, m)
}

// Rounds returns the last delivery round recorded.
func (t *Transcript) Rounds() int { return t.maxRnd }

// Deliveries returns the messages delivered in the given round, in the
// deterministic engine order.
func (t *Transcript) Deliveries(round int) []Message {
	out := make([]Message, len(t.byRound[round]))
	copy(out, t.byRound[round])
	return out
}

// ViewOf returns view(v, e, k): every message sent or received by player v
// with delivery round ≤ upTo (0 means the whole run), in delivery order.
func (t *Transcript) ViewOf(v, upTo int) []Message {
	if upTo <= 0 {
		upTo = t.maxRnd
	}
	var out []Message
	for r := 1; r <= upTo; r++ {
		for _, m := range t.byRound[r] {
			if m.From == v || m.To == v {
				out = append(out, m)
			}
		}
	}
	return out
}

// ViewKey canonically encodes view(v, e, upTo) so that two views are equal
// iff their keys are equal. The per-round message order is canonicalized,
// so the key is engine-independent.
func (t *Transcript) ViewKey(v, upTo int) string {
	if upTo <= 0 {
		upTo = t.maxRnd
	}
	var b strings.Builder
	for r := 1; r <= upTo; r++ {
		var keys []string
		for _, m := range t.byRound[r] {
			if m.From == v || m.To == v {
				keys = append(keys, m.Key())
			}
		}
		sort.Strings(keys)
		b.WriteString("r")
		for _, k := range keys {
			b.WriteByte('|')
			b.WriteString(k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Key canonically encodes the entire transcript.
func (t *Transcript) Key() string {
	var b strings.Builder
	for r := 1; r <= t.maxRnd; r++ {
		var keys []string
		for _, m := range t.byRound[r] {
			keys = append(keys, m.Key())
		}
		sort.Strings(keys)
		b.WriteString("r")
		for _, k := range keys {
			b.WriteByte('|')
			b.WriteString(k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NumMessages returns the total number of recorded channel events.
func (t *Transcript) NumMessages() int {
	n := 0
	for _, ms := range t.byRound {
		n += len(ms)
	}
	return n
}
