package network

import (
	"fmt"
	"sort"
)

// MessageAdversary is the message-suppression counterpart of Scheduler: a
// fault dimension orthogonal to Byzantine corruption (internal/byzantine)
// and to delivery timing. Following the Albouy–Frey–Raynal–Taïani model, the
// adversary may remove up to d copies of each broadcast — one sender's
// copies of one payload key in one round — independently of which nodes are
// corrupted. Suppressed copies still count as accepted sends (they emit a
// Send event and are charged to MessagesSent) and are immediately recorded
// as Lose events, so the conservation law MessagesSent = MessagesDelivered +
// MessagesLost reconciles; they never enter the delivery calendar, and the
// Scheduler is not consulted for them.
//
// The engine calls Suppress exactly once per accepted send, in the
// deterministic merge order (player-ID order, then send order within a
// player) — the same order in which the Scheduler sees messages — so an
// adversary seeded from a fixed stream reproduces the same suppression
// pattern byte-for-byte on every engine and at every worker count.
//
// Contract:
//
//   - at most Budget copies of any one broadcast may be suppressed (the
//     stock adversaries enforce this with a per-broadcast ledger, and the
//     conformance battery cross-checks the accounting);
//   - Suppress must be deterministic: no clocks, no unseeded randomness.
//
// Like Schedulers, MessageAdversaries are single-use: they keep per-run
// state (budget ledgers, victim sets) and must not be shared between runs.
type MessageAdversary interface {
	// Name is the registry name of the suppression policy.
	Name() string
	// Suppress reports whether the adversary suppresses this copy of a
	// message accepted in round.
	Suppress(round int, m Message) bool
	// Budget is d, the per-broadcast suppression budget.
	Budget() int
	// Suppressed is the number of copies suppressed so far.
	Suppressed() int
}

// Stock message-adversary policy names.
const (
	// MATargeted suppresses the first d copies of every broadcast in merge
	// order — maximally disruptive against low-degree senders, seed-free.
	MATargeted = "targeted"
	// MARandom flips a seeded coin per copy, suppressing while the
	// broadcast's budget lasts.
	MARandom = "random"
	// MAEclipse picks up to d victim nodes (seeded, from the recipients it
	// observes) and suppresses every copy addressed to a victim — the
	// worst-case shape for the n > 3t + 2d bound, where the adversary
	// starves a fixed set of d processes.
	MAEclipse = "eclipse"
)

// MessageAdversaryNames returns the stock policy names, sorted.
func MessageAdversaryNames() []string {
	names := []string{MATargeted, MARandom, MAEclipse}
	sort.Strings(names)
	return names
}

// NewMessageAdversary builds the named stock policy with per-broadcast
// budget d. The seed drives every random choice through a private splitmix64
// stream (targeted has none), so equal (name, d, seed) triples yield
// identical suppression patterns and distinct seeds yield decorrelated ones
// — the property the mafuzz sweep's per-trial seed derivation relies on.
func NewMessageAdversary(name string, d int, seed int64) (MessageAdversary, error) {
	if d < 0 {
		return nil, fmt.Errorf("network: negative message-adversary budget %d", d)
	}
	switch name {
	case MATargeted:
		return &targetedAdversary{ledger: newBudgetLedger(d)}, nil
	case MARandom:
		return &randomAdversary{ledger: newBudgetLedger(d), rng: newSplitMix(uint64(seed))}, nil
	case MAEclipse:
		return &eclipseAdversary{
			ledger: newBudgetLedger(d),
			rng:    newSplitMix(uint64(seed)),
			seen:   make(map[int]bool),
			victim: make(map[int]bool),
		}, nil
	default:
		return nil, fmt.Errorf("network: unknown message adversary %q (want one of %v)",
			name, MessageAdversaryNames())
	}
}

// MustMessageAdversary is NewMessageAdversary for static names known at
// compile time.
func MustMessageAdversary(name string, d int, seed int64) MessageAdversary {
	a, err := NewMessageAdversary(name, d, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// NewEclipse builds the eclipse adversary with an explicit victim set
// instead of seeded selection: every copy addressed to a victim is
// suppressed, budget d = len(victims). This is the construction the
// feasibility boundary battery uses to realize the worst case of the
// n > 3t + 2d bound with named victims.
func NewEclipse(victims ...int) MessageAdversary {
	a := &eclipseAdversary{
		ledger: newBudgetLedger(len(victims)),
		seen:   make(map[int]bool),
		victim: make(map[int]bool, len(victims)),
	}
	for _, v := range victims {
		a.seen[v] = true
		a.victim[v] = true
	}
	return a
}

// broadcastKey identifies one broadcast: one sender's copies of one payload
// in one round (the round is tracked by the ledger itself).
type broadcastKey struct {
	from int
	key  string
}

// budgetLedger enforces the per-broadcast budget d: take succeeds at most d
// times per (sender, payload key) pair within a round. It is the single
// choke point every stock policy charges suppressions through, so the
// contract holds by construction.
type budgetLedger struct {
	d     int
	round int
	used  map[broadcastKey]int
	total int
}

func newBudgetLedger(d int) *budgetLedger {
	return &budgetLedger{d: d, round: -1, used: make(map[broadcastKey]int)}
}

// take charges one suppression against the message's broadcast, reporting
// whether budget remained.
func (l *budgetLedger) take(round int, m Message) bool {
	if l.d <= 0 {
		return false
	}
	if round != l.round {
		clear(l.used)
		l.round = round
	}
	k := broadcastKey{from: m.From, key: m.Payload.Key()}
	if l.used[k] >= l.d {
		return false
	}
	l.used[k]++
	l.total++
	return true
}

// targetedAdversary suppresses the first d copies of every broadcast.
type targetedAdversary struct{ ledger *budgetLedger }

func (*targetedAdversary) Name() string     { return MATargeted }
func (a *targetedAdversary) Budget() int    { return a.ledger.d }
func (a *targetedAdversary) Suppressed() int { return a.ledger.total }

func (a *targetedAdversary) Suppress(round int, m Message) bool {
	return a.ledger.take(round, m)
}

// randomAdversary suppresses each copy on a seeded coin flip, while the
// broadcast's budget lasts.
type randomAdversary struct {
	ledger *budgetLedger
	rng    *splitmix64
}

func (*randomAdversary) Name() string     { return MARandom }
func (a *randomAdversary) Budget() int    { return a.ledger.d }
func (a *randomAdversary) Suppressed() int { return a.ledger.total }

func (a *randomAdversary) Suppress(round int, m Message) bool {
	// The coin is consumed before the budget check so the stream position
	// depends only on the merge order, not on earlier suppression outcomes.
	heads := a.rng.next()&1 == 1
	return heads && a.ledger.take(round, m)
}

// eclipseAdversary starves a set of victim nodes: every copy addressed to a
// victim is suppressed (budget permitting). Seeded construction classifies
// each newly observed recipient as a victim on a coin flip until d victims
// are chosen; the merge order is deterministic, so the victim set is too.
type eclipseAdversary struct {
	ledger *budgetLedger
	rng    *splitmix64 // nil for the explicit-victims construction
	seen   map[int]bool
	victim map[int]bool
}

func (*eclipseAdversary) Name() string     { return MAEclipse }
func (a *eclipseAdversary) Budget() int    { return a.ledger.d }
func (a *eclipseAdversary) Suppressed() int { return a.ledger.total }

func (a *eclipseAdversary) Suppress(round int, m Message) bool {
	if !a.seen[m.To] {
		a.seen[m.To] = true
		if a.rng != nil && len(a.victim) < a.ledger.d && a.rng.next()&1 == 1 {
			a.victim[m.To] = true
		}
	}
	return a.victim[m.To] && a.ledger.take(round, m)
}
