package network

import (
	"encoding/json"
	"io"
)

// Tracer observes a run as it executes: every accepted send, every dropped
// send, every delivery, decision and halt, with round boundaries. The
// engine's own complexity metrics and the transcript recorder are two stock
// Tracers (MetricsTracer, TranscriptTracer); JSONLTracer streams the same
// events as structured JSONL for offline analysis. Install extra observers
// with Config.Tracers.
//
// Engines invoke all Tracer methods serially from the coordinating
// goroutine — including under the goroutine engine, where sends are merged
// behind the round barrier — so implementations need no locking. For
// deterministic protocols the event sequence is identical under both
// engines (the same guarantee the transcript equivalence tests rely on).
type Tracer interface {
	// BeginRun is called once before Init with the topology and engine.
	BeginRun(nodes, edges int, engine Engine)
	// Send is an accepted send made in round (0 = Init); the message is
	// delivered in round+1 unless a Delay event for it follows immediately.
	Send(round int, m Message)
	// Delay announces that the async engine's scheduler assigned the
	// message just reported by Send a delivery round other than sent+1.
	// It is emitted immediately after that Send, and only when the
	// delivery round differs; synchronous engines never emit it.
	Delay(sent, deliver int, m Message)
	// Drop is a rejected send (non-edge or self destination) in round.
	Drop(round int, m Message)
	// Lose is an accepted send that will never reach a live player: its
	// recipient halted before the delivery round, the carrying edge was
	// removed by churn, the message adversary suppressed the copy (that
	// Lose follows the copy's Send immediately), or the run ended (final
	// round, early stop, quiescence) with the message still in the delivery
	// calendar. round is the delivery round the message was scheduled for
	// (the synchronous sent+1 for suppressed copies). Every accepted send
	// is eventually reported by exactly one of Deliver (as part of an
	// inbox) or Lose, so MessagesSent == MessagesDelivered + MessagesLost
	// reconciles.
	Lose(round int, m Message)
	// Churn is a topology edit taking effect at the start of round, before
	// that round's deliveries: one event per Config.Churn entry, in order.
	// The Lose events for calendar messages severed by the removals follow
	// immediately after the round's Churn events. Tracers must not retain
	// or mutate the edge slices.
	Churn(round int, added, removed [][2]int)
	// Deliver is the inbox handed to a live player at the start of round.
	Deliver(round, player int, inbox []Message)
	// Decide is a player's first observed decision (round 0 = during Init).
	Decide(round, player int, x Value)
	// Halt is a player's Round returning false in round.
	Halt(round, player int)
	// EndRound closes round with the number of sends it produced.
	EndRound(round, sent int)
	// EndRun is called once after the last round, before Result assembly.
	EndRun(rounds int)
}

// NopTracer implements Tracer with no-ops; embed it to observe a subset of
// events.
type NopTracer struct{}

// BeginRun implements Tracer.
func (NopTracer) BeginRun(int, int, Engine) {}

// Send implements Tracer.
func (NopTracer) Send(int, Message) {}

// Delay implements Tracer.
func (NopTracer) Delay(int, int, Message) {}

// Drop implements Tracer.
func (NopTracer) Drop(int, Message) {}

// Lose implements Tracer.
func (NopTracer) Lose(int, Message) {}

// Churn implements Tracer.
func (NopTracer) Churn(int, [][2]int, [][2]int) {}

// Deliver implements Tracer.
func (NopTracer) Deliver(int, int, []Message) {}

// Decide implements Tracer.
func (NopTracer) Decide(int, int, Value) {}

// Halt implements Tracer.
func (NopTracer) Halt(int, int) {}

// EndRound implements Tracer.
func (NopTracer) EndRound(int, int) {}

// EndRun implements Tracer.
func (NopTracer) EndRun(int) {}

// MetricsTracer accumulates the paper's complexity measures from the event
// stream. The engine always installs one; Result.Metrics is its output.
type MetricsTracer struct {
	NopTracer
	m Metrics
}

// NewMetricsTracer returns an empty metrics accumulator.
func NewMetricsTracer() *MetricsTracer { return &MetricsTracer{} }

// Send implements Tracer.
func (t *MetricsTracer) Send(round int, m Message) {
	t.m.MessagesSent++
	t.m.BitsSent += m.Payload.BitSize()
}

// Delay implements Tracer.
func (t *MetricsTracer) Delay(int, int, Message) { t.m.MessagesDelayed++ }

// Drop implements Tracer.
func (t *MetricsTracer) Drop(int, Message) { t.m.MessagesDropped++ }

// Lose implements Tracer.
func (t *MetricsTracer) Lose(int, Message) { t.m.MessagesLost++ }

// Deliver implements Tracer.
func (t *MetricsTracer) Deliver(_, _ int, inbox []Message) {
	t.m.MessagesDelivered += len(inbox)
	if len(inbox) > t.m.MaxInboxPerPlayer {
		t.m.MaxInboxPerPlayer = len(inbox)
	}
}

// EndRound implements Tracer.
func (t *MetricsTracer) EndRound(round, sent int) {
	for len(t.m.MessagesPerRound) <= round {
		t.m.MessagesPerRound = append(t.m.MessagesPerRound, 0)
	}
	t.m.MessagesPerRound[round] = sent
}

// Metrics returns the accumulated counters.
func (t *MetricsTracer) Metrics() Metrics { return t.m }

// TranscriptTracer records every accepted send into a Transcript, indexed
// by delivery round. Config.RecordTranscript installs one; Result.Transcript
// is its output.
type TranscriptTracer struct {
	NopTracer
	t *Transcript
}

// NewTranscriptTracer returns an empty transcript recorder.
func NewTranscriptTracer() *TranscriptTracer {
	return &TranscriptTracer{t: newTranscript()}
}

// Send implements Tracer: a send in round is delivered in round+1.
func (t *TranscriptTracer) Send(round int, m Message) { t.t.record(round+1, m) }

// Delay implements Tracer: the engine emits Delay immediately after the
// delayed message's Send, so the recorder relocates the just-recorded
// message from the synchronous round sent+1 to its actual delivery round.
func (t *TranscriptTracer) Delay(sent, deliver int, _ Message) {
	t.t.relocateLast(sent+1, deliver)
}

// Transcript returns the recorded transcript.
func (t *TranscriptTracer) Transcript() *Transcript { return t.t }

// JSONLTracer streams every event as one JSON object per line, for offline
// analysis of large runs without holding a transcript in memory. Payloads
// are rendered via their canonical Key. Write errors are sticky: the first
// one is retained (see Err) and further events are discarded.
type JSONLTracer struct {
	w   io.Writer
	err error
}

// NewJSONLTracer writes events to w. The caller owns w (and any buffering
// or closing it needs).
func NewJSONLTracer(w io.Writer) *JSONLTracer { return &JSONLTracer{w: w} }

// jsonlEvent is the wire form of one event line. Node-ID fields (from, to,
// player) are pointers: 0 is a valid node ID, so presence must be distinct
// from absence.
type jsonlEvent struct {
	Ev      string `json:"ev"`
	Round   int    `json:"round"`
	At      int    `json:"at,omitempty"` // delivery round of a delayed send
	From    *int   `json:"from,omitempty"`
	To      *int   `json:"to,omitempty"`
	Player  *int   `json:"player,omitempty"`
	Bits    int    `json:"bits,omitempty"`
	Count   int    `json:"count,omitempty"`
	Payload string `json:"payload,omitempty"`
	Value   string `json:"value,omitempty"`
	Nodes   int    `json:"nodes,omitempty"`
	Edges   int    `json:"edges,omitempty"`
	Engine  string `json:"engine,omitempty"`

	Added   [][2]int `json:"added,omitempty"`
	Removed [][2]int `json:"removed,omitempty"`
}

func id(v int) *int { return &v }

func (t *JSONLTracer) emit(e jsonlEvent) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(data, '\n')); err != nil {
		t.err = err
	}
}

// BeginRun implements Tracer.
func (t *JSONLTracer) BeginRun(nodes, edges int, engine Engine) {
	t.emit(jsonlEvent{Ev: "run", Nodes: nodes, Edges: edges, Engine: engine.Name()})
}

// Send implements Tracer.
func (t *JSONLTracer) Send(round int, m Message) {
	t.emit(jsonlEvent{Ev: "send", Round: round, From: id(m.From), To: id(m.To),
		Bits: m.Payload.BitSize(), Payload: m.Payload.Key()})
}

// Delay implements Tracer.
func (t *JSONLTracer) Delay(sent, deliver int, m Message) {
	t.emit(jsonlEvent{Ev: "delay", Round: sent, At: deliver, From: id(m.From), To: id(m.To)})
}

// Drop implements Tracer.
func (t *JSONLTracer) Drop(round int, m Message) {
	t.emit(jsonlEvent{Ev: "drop", Round: round, From: id(m.From), To: id(m.To)})
}

// Lose implements Tracer.
func (t *JSONLTracer) Lose(round int, m Message) {
	t.emit(jsonlEvent{Ev: "lose", Round: round, From: id(m.From), To: id(m.To)})
}

// Churn implements Tracer.
func (t *JSONLTracer) Churn(round int, added, removed [][2]int) {
	t.emit(jsonlEvent{Ev: "churn", Round: round, Added: added, Removed: removed})
}

// Deliver implements Tracer.
func (t *JSONLTracer) Deliver(round, player int, inbox []Message) {
	t.emit(jsonlEvent{Ev: "deliver", Round: round, Player: id(player), Count: len(inbox)})
}

// Decide implements Tracer.
func (t *JSONLTracer) Decide(round, player int, x Value) {
	t.emit(jsonlEvent{Ev: "decide", Round: round, Player: id(player), Value: string(x)})
}

// Halt implements Tracer.
func (t *JSONLTracer) Halt(round, player int) {
	t.emit(jsonlEvent{Ev: "halt", Round: round, Player: id(player)})
}

// EndRound implements Tracer.
func (t *JSONLTracer) EndRound(round, sent int) {
	t.emit(jsonlEvent{Ev: "round-end", Round: round, Count: sent})
}

// EndRun implements Tracer.
func (t *JSONLTracer) EndRun(rounds int) {
	t.emit(jsonlEvent{Ev: "run-end", Round: rounds})
}

// Err returns the first write or marshal error, if any.
func (t *JSONLTracer) Err() error { return t.err }
