// Package network simulates a synchronous message-passing network of
// players connected by undirected authenticated channels — the execution
// substrate for every protocol in this repository.
//
// Semantics (the standard synchronous model used by the paper):
//
//   - Execution proceeds in rounds 1, 2, 3, ...
//   - A message sent in round k is delivered at the start of round k+1.
//     Init sends count as round-0 sends, delivered in round 1.
//   - Channels are authenticated: a delivered message carries the true
//     sender identity, and messages can only travel along edges of the
//     network graph. The engine silently drops sends along non-edges, so a
//     Byzantine process cannot forge either endpoint of a channel.
//   - Corrupted players are ordinary Process implementations with arbitrary
//     behavior; honesty is a property of the implementation, not the engine.
//
// Engines are named implementations of the Engine contract, resolved from a
// registry (EngineByName) exactly like protocols. The built-ins share one
// delivery substrate: the deterministic lockstep engine (the default) steps
// players in ID order in a single goroutine; the goroutine engine gives
// every player its own goroutine with a round barrier, exercising the
// natural Go embedding of a distributed node; the async engine relaxes
// "delivered at the start of round k+1" to a pluggable Scheduler that
// assigns each message its delivery round under an eventual-delivery clamp,
// simulating adversarial message timing while staying fully deterministic
// for a fixed seed. The wire engine (internal/wire) registers itself on
// import and runs every player as a real OS process speaking length-prefixed
// frames over TCP. For deterministic protocols lockstep, goroutine,
// async-under-SyncScheduler and wire produce identical transcripts, which
// property tests assert.
package network

import (
	"fmt"

	"rmt/internal/graph"
)

// Value is an element of the message space X: the payload the dealer wants
// to transmit. Values are opaque to the engine.
type Value string

// Payload is the content of one message. Implementations must be immutable
// after sending: engines deliver payloads by reference and may deliver one
// payload to several recipients.
type Payload interface {
	// BitSize returns the payload size in bits, for bit-complexity
	// accounting. It needs to be consistent, not exact.
	BitSize() int
	// Key returns a canonical string encoding of the payload: two payloads
	// are semantically identical iff their keys are equal. Used for
	// transcript comparison (indistinguishability arguments) and dedup.
	Key() string
}

// Message is one delivered message.
type Message struct {
	From    int
	To      int
	Payload Payload
}

// Key canonically encodes the full message (sender, receiver, payload).
func (m Message) Key() string {
	return fmt.Sprintf("%d>%d:%s", m.From, m.To, m.Payload.Key())
}

// Outbox lets a process send a message to a neighbor during Init or Round.
// Sends to non-neighbors are dropped by the engine.
type Outbox func(to int, p Payload)

// Process is one player's protocol state machine. Engines call Init once,
// then Round once per round until it returns false (the player halts) or
// the run ends. Implementations need no internal locking: engines
// serialize all calls to a single process.
type Process interface {
	// Init is called before round 1. Sends are delivered in round 1.
	Init(out Outbox)
	// Round is called with the messages delivered this round, sorted by
	// sender ID (ties broken by payload key). The inbox slice is only
	// valid for the duration of the call — engines reuse its backing
	// storage across rounds — so implementations must retain copies of
	// messages, never the slice itself. Returning false halts the player:
	// it neither sends nor receives afterwards.
	Round(round int, inbox []Message, out Outbox) bool
	// Decision returns the player's decided value, if it has decided.
	// Decisions are write-once: once decided, a process must keep
	// returning the same value.
	Decision() (Value, bool)
}

// Blueprint describes a run as pure data — instance spec text, registry
// names and node IDs only, no live Go values — so an engine that executes
// players outside this process (the wire engine) can rebuild the full
// process map deterministically on the far side. Engines that run in-process
// ignore it. Process implementations themselves can never cross a process
// boundary (they are closures over live state); the Blueprint is the
// name-based recipe that reconstructs them instead.
type Blueprint struct {
	// Instance is the cliutil instance-spec text ("# rmt instance v1"
	// format: graph, adversary structure, knowledge level, dealer,
	// receiver). Required.
	Instance string
	// Protocol is the protocol registry name ("pka", "zcpa", ...). Required.
	Protocol string
	// Value is the dealer's input value.
	Value string
	// Corrupt lists the corrupted node IDs, overlaid with the named
	// byzantine Attack strategy ("" with a non-empty Corrupt means the
	// silent strategy).
	Corrupt []int
	Attack  string
	// Forged is the attacker's preferred wrong value (ignored by
	// strategies that never inject values).
	Forged string
	// Listen is the adversary's listening structure in cliutil
	// ParseStructure syntax ("1,2;3"); "" means no listening. Privacy-aware
	// protocols (smt) derive their share routing from it, so wire children
	// must rebuild with the same family the coordinator planned with.
	Listen string
	// Seed keys deterministic share/pad generation for privacy-aware
	// protocols; wire children must use the coordinator's seed or their
	// shares would disagree.
	Seed int64
}

// ChurnEvent is one batch of topology edits taking effect at the start of
// Round, before that round's deliveries: edges are added, then removed, and
// any delivery-calendar message whose carrying edge no longer exists is
// recorded as a loss (the synchronous-model reading of a link failing with
// a message in flight). Events edit edges only — a node appearing mid-run
// would need a Process that does not exist, and the engine cannot invent
// one, so node churn is a property of the instance layer (instance.Delta),
// not of a running network.
type ChurnEvent struct {
	// Round is the round at whose start the edits apply (≥ 1).
	Round int
	// AddEdges lists edges to add, each between existing, distinct nodes.
	AddEdges [][2]int
	// RemoveEdges lists edges to remove; they must exist when the event
	// fires (validated against the cumulative edit sequence up front).
	RemoveEdges [][2]int
}

// Config describes one run.
type Config struct {
	// Graph is the communication topology. Required.
	Graph *graph.Graph
	// Processes maps every node of Graph to its protocol state machine.
	// Required, with exactly the graph's nodes as keys.
	Processes map[int]Process
	// MaxRounds bounds the execution; 0 means 2·|V|+2, enough for every
	// protocol in this repository (Z-CPA needs ≤ n rounds, RMT-PKA floods
	// paths of length ≤ n).
	MaxRounds int
	// Engine selects the execution engine (nil = Lockstep); see
	// EngineByName for resolving one from the registry.
	Engine Engine
	// Scheduler is the async engine's delivery policy (nil = SyncScheduler).
	// Ignored by the synchronous engines.
	Scheduler Scheduler
	// MsgAdversary is the message-suppression policy (nil = none): it may
	// remove up to its budget d copies of each broadcast, independently of
	// node corruption (see MessageAdversary). Suppressed copies count as
	// sent and are recorded as Lose events, so metrics still reconcile.
	// Honored by every in-process engine (suppression is a channel fault,
	// not a timing policy); the wire engine rejects it.
	MsgAdversary MessageAdversary
	// Churn schedules mid-run topology edits, in non-decreasing round
	// order (see ChurnEvent). Supported by the in-process engines
	// (lockstep, goroutine, async); the wire engine rejects it — children
	// hold a private copy of the graph fixed at handshake.
	Churn []ChurnEvent
	// Blueprint is the pure-data run recipe engines running players in
	// other processes need (see Blueprint); in-process engines ignore it.
	Blueprint *Blueprint
	// RecordTranscript enables full message recording (memory-heavy).
	RecordTranscript bool
	// StopEarly, if non-nil, is evaluated after every round with the
	// current decisions; returning true ends the run.
	StopEarly func(decisions map[int]Value) bool
	// Tracers are additional run observers, invoked serially from the
	// coordinating goroutine (see Tracer). The engine's metrics and the
	// optional transcript recorder are installed automatically.
	Tracers []Tracer
}

// engine returns the effective engine (Lockstep when unset).
func (c *Config) engine() Engine {
	if c.Engine == nil {
		return Lockstep
	}
	return c.Engine
}

func (c *Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("network: nil graph")
	}
	n := c.Graph.NumNodes()
	if len(c.Processes) != n {
		return fmt.Errorf("network: %d processes for %d nodes", len(c.Processes), n)
	}
	ok := true
	c.Graph.Nodes().ForEach(func(v int) bool {
		if c.Processes[v] == nil {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return fmt.Errorf("network: missing or nil process for some node")
	}
	return c.validateChurn()
}

// validateChurn replays the churn schedule against a copy of the graph so
// every edit is known to be legal before the run starts: a mid-run
// validation failure would leave the accounting half-applied.
func (c *Config) validateChurn() error {
	if len(c.Churn) == 0 {
		return nil
	}
	g := c.Graph.Clone()
	last := 1
	for i, ev := range c.Churn {
		if ev.Round < 1 {
			return fmt.Errorf("network: churn event %d at round %d (rounds start at 1)", i, ev.Round)
		}
		if ev.Round < last {
			return fmt.Errorf("network: churn event %d at round %d after an event at round %d (events must be in round order)", i, ev.Round, last)
		}
		last = ev.Round
		for _, e := range ev.AddEdges {
			u, v := e[0], e[1]
			switch {
			case u == v:
				return fmt.Errorf("network: churn event %d adds self-loop %d-%d", i, u, v)
			case !g.HasNode(u) || !g.HasNode(v):
				return fmt.Errorf("network: churn event %d adds edge %d-%d with an unknown endpoint (node churn is not supported)", i, u, v)
			case g.HasEdge(u, v):
				return fmt.Errorf("network: churn event %d adds existing edge %d-%d", i, u, v)
			}
			g.AddEdge(u, v)
		}
		for _, e := range ev.RemoveEdges {
			if !g.HasEdge(e[0], e[1]) {
				return fmt.Errorf("network: churn event %d removes absent edge %d-%d", i, e[0], e[1])
			}
			g.RemoveEdge(e[0], e[1])
		}
	}
	return nil
}

func (c *Config) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 2*c.Graph.NumNodes() + 2
}

// Result summarizes a run.
type Result struct {
	// Rounds is the number of executed rounds.
	Rounds int
	// Decisions maps each node that decided to its value.
	Decisions map[int]Value
	// DecidedAtRound maps each decided node to the round in which the
	// engine first observed its decision (0 = during Init).
	DecidedAtRound map[int]int
	// Metrics holds message/bit complexity counters.
	Metrics Metrics
	// Transcript is non-nil iff Config.RecordTranscript was set.
	Transcript *Transcript
}

// DecisionOf returns node v's decision.
func (r *Result) DecisionOf(v int) (Value, bool) {
	val, ok := r.Decisions[v]
	return val, ok
}

// Metrics counts the complexity measures the paper discusses: round,
// message and bit complexity.
type Metrics struct {
	MessagesSent      int   // accepted sends (along edges)
	MessagesDelivered int   // messages handed to a live player's inbox
	MessagesDropped   int   // sends along non-edges or to self (Byzantine noise)
	MessagesDelayed   int   // sends the scheduler held past the synchronous round (async engine)
	MessagesLost      int   // accepted sends never delivered: recipient halted, or the run ended first
	BitsSent          int   // Σ payload BitSize over accepted sends
	MessagesPerRound  []int // accepted sends indexed by round (0 = Init)
	MaxInboxPerPlayer int   // largest single-round inbox observed
}

// Reconcile checks the conservation law every run obeys: each accepted
// send is eventually delivered to a live player or lost (recipient halted,
// or the run ended with the message still in the delivery calendar).
// Rejected sends (Drop events) are counted separately and never enter
// MessagesSent. It returns an error describing the first violated identity.
func (m Metrics) Reconcile() error {
	if m.MessagesSent != m.MessagesDelivered+m.MessagesLost {
		return fmt.Errorf("network: sent %d != delivered %d + lost %d",
			m.MessagesSent, m.MessagesDelivered, m.MessagesLost)
	}
	perRound := 0
	for _, n := range m.MessagesPerRound {
		perRound += n
	}
	if perRound != m.MessagesSent {
		return fmt.Errorf("network: per-round sends %d != sent %d", perRound, m.MessagesSent)
	}
	return nil
}

// Run executes the configured protocol on the configured engine (Lockstep
// when unset) and returns the result.
func Run(cfg Config) (*Result, error) {
	return cfg.engine().Run(cfg)
}
