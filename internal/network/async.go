package network

// asyncEngine executes the run under the configured Scheduler (SyncScheduler
// when nil): a deterministic event-driven simulation in which the scheduler
// assigns every accepted send a delivery round, permuting per-message
// delivery order and round membership under the engine-enforced
// eventual-delivery clamp (see runState.deliveryRound).
//
// The engine reuses the lockstep round loop verbatim: all asynchrony lives
// in the delivery calendar that runState.merge fills by consulting the
// scheduler, so the async engine is single-goroutine and exactly as
// deterministic as lockstep — a seeded scheduler reproduces a run
// byte-identically, FoundationDB-style. Under SyncScheduler the calendar
// degenerates to next-round delivery and the engine is transcript-identical
// to lockstep, which the conformance suite asserts.
type asyncEngine struct{}

// Name implements Engine.
func (asyncEngine) Name() string { return EngineAsync }

// Run implements Engine.
func (e asyncEngine) Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Engine == nil {
		cfg.Engine = e
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = SyncScheduler{}
	}
	return runLockstep(cfg)
}
