package network

import (
	"testing"

	"rmt/internal/graph"
)

// flood is a minimal test process: the root broadcasts one payload at Init;
// every player re-broadcasts the first payload it receives, decides on it,
// and halts.
type flood struct {
	id        int
	neighbors []int
	start     Value
	decided   bool
	value     Value
}

type floodPayload struct{ X Value }

func (p floodPayload) BitSize() int { return 8 * len(p.X) }
func (p floodPayload) Key() string  { return "f:" + string(p.X) }

func (f *flood) Init(out Outbox) {
	if f.start == "" {
		return
	}
	f.decided, f.value = true, f.start
	for _, u := range f.neighbors {
		out(u, floodPayload{X: f.start})
	}
}

func (f *flood) Round(_ int, inbox []Message, out Outbox) bool {
	if f.decided {
		return false
	}
	if len(inbox) == 0 {
		return true
	}
	x := inbox[0].Payload.(floodPayload).X
	f.decided, f.value = true, x
	for _, u := range f.neighbors {
		out(u, floodPayload{X: x})
	}
	return false
}

func (f *flood) Decision() (Value, bool) { return f.value, f.decided }

// star builds a hub-and-spokes topology with the hub flooding "x".
func starConfig(n int, madv MessageAdversary) Config {
	g := graph.New()
	spokes := make([]int, 0, n-1)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
		spokes = append(spokes, v)
	}
	procs := map[int]Process{0: &flood{id: 0, neighbors: spokes, start: "x"}}
	for _, v := range spokes {
		procs[v] = &flood{id: v, neighbors: []int{0}}
	}
	return Config{Graph: g, Processes: procs, MsgAdversary: madv, RecordTranscript: true}
}

// TestTargetedAdversarySuppressesBudget pins the per-broadcast budget: the
// hub's Init broadcast of 5 copies loses exactly d of them, the starved
// spokes never decide, and the accounting reconciles with the suppressions
// showing up as losses.
func TestTargetedAdversarySuppressesBudget(t *testing.T) {
	for _, d := range []int{0, 1, 2, 3} {
		madv := MustMessageAdversary(MATargeted, d, 0)
		res, err := Run(starConfig(6, madv))
		if err != nil {
			t.Fatal(err)
		}
		// Init broadcast: 5 copies, d suppressed. Each surviving spoke
		// echoes back one copy to the hub (one-copy broadcasts, so targeted
		// suppresses every one of them when d > 0).
		wantInit := d
		wantEcho := 0
		if d > 0 {
			wantEcho = 5 - d
		}
		if got := madv.Suppressed(); got != wantInit+wantEcho {
			t.Errorf("d=%d: suppressed %d copies, want %d", d, got, wantInit+wantEcho)
		}
		if res.Metrics.MessagesLost < madv.Suppressed() {
			t.Errorf("d=%d: lost %d < suppressed %d", d, res.Metrics.MessagesLost, madv.Suppressed())
		}
		if err := res.Metrics.Reconcile(); err != nil {
			t.Errorf("d=%d: %v", d, err)
		}
		decided := len(res.Decisions)
		if want := 6 - d; decided != want {
			t.Errorf("d=%d: %d players decided, want %d", d, decided, want)
		}
	}
}

// TestEclipseAdversaryStarvesVictims pins the explicit-victim construction:
// the victims receive nothing, everyone else is untouched.
func TestEclipseAdversaryStarvesVictims(t *testing.T) {
	madv := NewEclipse(2, 4)
	res, err := Run(starConfig(6, madv))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{2, 4} {
		if _, ok := res.DecisionOf(v); ok {
			t.Errorf("victim %d decided despite eclipse", v)
		}
	}
	for _, v := range []int{0, 1, 3, 5} {
		if got, ok := res.DecisionOf(v); !ok || got != "x" {
			t.Errorf("non-victim %d: decision %q, %v", v, got, ok)
		}
	}
	if got := madv.Suppressed(); got != 2 {
		t.Errorf("suppressed %d copies, want 2 (one per victim)", got)
	}
	if err := res.Metrics.Reconcile(); err != nil {
		t.Error(err)
	}
}

// TestSeededAdversariesReproduce pins seeded determinism: equal seeds yield
// identical transcripts and suppression counts, and the engines agree.
func TestSeededAdversariesReproduce(t *testing.T) {
	for _, name := range MessageAdversaryNames() {
		run := func(engine Engine, seed int64) (*Result, MessageAdversary) {
			madv := MustMessageAdversary(name, 2, seed)
			cfg := starConfig(8, madv)
			cfg.Engine = engine
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res, madv
		}
		a, am := run(Lockstep, 42)
		b, bm := run(Lockstep, 42)
		if a.Transcript.Key() != b.Transcript.Key() {
			t.Errorf("%s: equal seeds, different transcripts", name)
		}
		if am.Suppressed() != bm.Suppressed() {
			t.Errorf("%s: equal seeds, different suppression counts (%d vs %d)",
				name, am.Suppressed(), bm.Suppressed())
		}
		for _, eng := range []Engine{Goroutine, Async} {
			c, cm := run(eng, 42)
			if a.Transcript.Key() != c.Transcript.Key() {
				t.Errorf("%s: %s transcript differs from lockstep", name, eng.Name())
			}
			if am.Suppressed() != cm.Suppressed() {
				t.Errorf("%s: %s suppressed %d, lockstep %d", name, eng.Name(), cm.Suppressed(), am.Suppressed())
			}
		}
	}
}

// TestMessageAdversaryErrors covers constructor validation.
func TestMessageAdversaryErrors(t *testing.T) {
	if _, err := NewMessageAdversary("nope", 1, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewMessageAdversary(MARandom, -1, 0); err == nil {
		t.Error("negative budget accepted")
	}
}
