package protocol

import (
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// Build assembles the standard protocol process map: honest(v) for every
// node of g, then the corrupt overlay — except on protected nodes, which
// always run their honest process. This is the one corruption-wiring path
// shared by every registered protocol.
func Build(g *graph.Graph, protected nodeset.Set, corrupt map[int]network.Process, honest func(v int) network.Process) map[int]network.Process {
	procs := make(map[int]network.Process, g.NumNodes())
	g.Nodes().ForEach(func(v int) bool {
		procs[v] = honest(v)
		return true
	})
	for v, proc := range corrupt {
		if protected.Contains(v) {
			continue
		}
		procs[v] = proc
	}
	return procs
}

// Run assembles and executes p on the instance with dealer value xD. For
// receiver-decides protocols the run stops as soon as the receiver decides;
// AllDecide protocols run until quiescence so every player can decide.
func Run(p Protocol, in *instance.Instance, xD network.Value, opts Options) (*network.Result, error) {
	procs, err := p.Assemble(in, xD, opts)
	if err != nil {
		return nil, err
	}
	cfg := network.Config{
		Graph:            in.G,
		Processes:        procs,
		Engine:           opts.Engine,
		Scheduler:        opts.Scheduler,
		MsgAdversary:     opts.MsgAdversary,
		RecordTranscript: opts.RecordTranscript,
		MaxRounds:        opts.MaxRounds,
		Tracers:          opts.Tracers,
		Churn:            opts.Churn,
	}
	if opts.Blueprint != nil {
		bp := *opts.Blueprint
		if bp.Protocol == "" {
			bp.Protocol = p.Name()
		}
		if bp.Value == "" {
			bp.Value = string(xD)
		}
		if bp.Seed == 0 {
			bp.Seed = opts.Seed
		}
		cfg.Blueprint = &bp
	}
	if !p.Caps().AllDecide {
		cfg.StopEarly = func(d map[int]network.Value) bool {
			_, ok := d[in.Receiver]
			return ok
		}
	}
	return network.Run(cfg)
}

// RunByName resolves name in the registry and runs it.
func RunByName(name string, in *instance.Instance, xD network.Value, opts Options) (*network.Result, error) {
	p, ok := Get(name)
	if !ok {
		return nil, unknownError(name)
	}
	return Run(p, in, xD, opts)
}
