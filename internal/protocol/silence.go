package protocol

import (
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// silentProcess blocks everything: it never sends, never relays and never
// decides, but keeps consuming traffic so the engine never observes an
// artificial early halt from its side.
type silentProcess struct{}

// Init implements network.Process.
func (silentProcess) Init(network.Outbox) {}

// Round implements network.Process.
func (silentProcess) Round(int, []network.Message, network.Outbox) bool { return true }

// Decision implements network.Process.
func (silentProcess) Decision() (network.Value, bool) { return "", false }

// Silence builds the corrupt overlay that silences every node of t — the
// liveness-worst-case adversary for safe protocols (DESIGN.md §5), which the
// protocol packages' Resilient checkers simulate on every admissible
// corruption set. It lives in this package rather than internal/byzantine so
// that protocol packages need not depend on the attack library, which itself
// builds on the protocols' message vocabularies.
func Silence(t nodeset.Set) map[int]network.Process {
	m := make(map[int]network.Process, t.Len())
	t.ForEach(func(v int) bool {
		m[v] = silentProcess{}
		return true
	})
	return m
}
