// Package protocol is the unified protocol runtime: a registry of the
// repository's executable protocols (RMT-PKA, 𝒵-CPA, PPA, 𝒵-CPA broadcast)
// behind one Protocol interface, one Options struct, and one Run path.
//
// Protocol packages register themselves at init time (like database/sql
// drivers), so importing a protocol package makes it resolvable by name;
// every consumer — the rmt.go wrappers, rmtsim, rmtbench, internal/eval,
// the conformance battery — resolves protocols through the registry instead
// of carrying its own switch. Adding a protocol variant is a registry entry,
// not a new wiring path.
//
// The layering is deliberate: this package imports only the instance and
// network substrates, and the protocol packages import it — never the other
// way around — so registration can never form an import cycle.
package protocol

import (
	"rmt/internal/adversary"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// MembershipOracle answers 𝒵-CPA's membership check: whether a set of
// same-value reporting neighbors of v is an admissible corruption set in
// Z_v. This is the protocol-scheme subroutine of Definition 8 — abstracted
// so the Section 5 self-reduction can answer it by simulating Π runs
// (internal/selfred) while normal runs use the direct antichain check.
type MembershipOracle interface {
	Member(v int, reporters nodeset.Set) bool
}

// Decider generalizes the decision subroutine of certified-propagation
// protocols: given the partition of a player's same-value reporter classes,
// it returns the certified value, if any. It is the fully general form of
// the Definition 8 hook; internal/zcpa's WrapOracle adapts a
// MembershipOracle into the textbook rule.
type Decider interface {
	Decide(v int, classes map[network.Value]nodeset.Set) (network.Value, bool)
}

// Options is the unified run-option set shared by every registered
// protocol. Each protocol reads the fields it understands and ignores the
// rest; the per-protocol aliases (core.Options, zcpa.Options) are aliases
// of this type, so option values flow unchanged through every layer.
type Options struct {
	// Engine selects the execution engine (nil = lockstep); resolve one
	// from the registry with network.EngineByName.
	Engine network.Engine
	// Scheduler is the async engine's delivery policy (nil = the zero-fault
	// SyncScheduler). Ignored by the synchronous engines.
	Scheduler network.Scheduler
	// MsgAdversary is the message-suppression policy (nil = none); see
	// network.MessageAdversary. Honored by every in-process engine; the
	// wire engine rejects it. Adversaries are single-use, like schedulers.
	MsgAdversary network.MessageAdversary
	// MABudget is d, the per-broadcast suppression budget the protocol
	// should provision its quorums for. It parameterizes the n > 3t + 2d
	// protocol family: MBRB reads it to size its delivery quorum; protocols
	// predating the message-adversary model ignore it. It is a promise
	// about MsgAdversary, not enforced against it — running with a budget
	// larger than provisioned costs liveness, never safety.
	// Read by: mbrb.
	MABudget int
	// RecordTranscript enables full message recording (memory-heavy).
	RecordTranscript bool
	// MaxRounds bounds the execution; 0 uses the engine default.
	MaxRounds int
	// Corrupt replaces the listed nodes' processes with the supplied
	// Byzantine implementations. Protocols never let their protected nodes
	// (dealer, receiver) be replaced.
	Corrupt map[int]network.Process
	// Tracers are extra run observers (see network.Tracer).
	Tracers []network.Tracer
	// Churn schedules mid-run topology edits (see network.ChurnEvent).
	// Supported by the in-process engines; the wire engine rejects it.
	Churn []network.ChurnEvent
	// Blueprint is the pure-data run recipe required by engines that
	// execute players in other processes (the wire engine); Run fills in
	// the protocol name and dealer value when left empty. In-process
	// engines ignore it.
	Blueprint *network.Blueprint

	// Horizon, when positive, runs the Horizon-PKA ablation: relays drop
	// trails that cannot complete into a D–R path of at most Horizon
	// nodes, and the receiver evaluates the full-set rule on the subgraph
	// of G_M spanned by such bounded paths. Safety is preserved (the
	// Theorem 4 argument is parametric in the decision graph); liveness
	// shrinks to instances whose bounded-path subgraph has no RMT-cut and
	// no longer combination paths. Experiment E10 quantifies the
	// message-complexity savings against the solvability loss.
	// Read by: pka.
	Horizon int
	// DisableMemo turns off RMT-PKA's receiver decision-subroutine
	// memoization (claim-graph, path-set and cover-verdict caches).
	// Decisions are identical either way — the flag exists for equivalence
	// tests and as an escape hatch if memory is tighter than CPU.
	// Read by: pka.
	DisableMemo bool
	// Listen is the adversary's listening structure ℒ: the monotone family
	// of node sets it may eavesdrop on (Dowden's fully generalised
	// adversary; see internal/adversary). The zero value means "no
	// listening" ({∅}). Privacy-aware protocols provision their share
	// routing so every admissible listening set misses at least one share;
	// wire-engine runs carry the same family in Blueprint.Listen.
	// Read by: smt.
	Listen adversary.Structure
	// Seed keys deterministic share/pad generation for privacy-aware
	// protocols: equal (instance, value, Listen, Seed) runs produce
	// byte-identical transcripts, per the repo's seeded-determinism
	// contract. Read by: smt.
	Seed int64
	// Oracle overrides the membership-check subroutine (nil = the direct
	// check against the instance's local structures). Read by: zcpa,
	// broadcast.
	Oracle MembershipOracle
	// Decider overrides the full decision subroutine; takes precedence
	// over Oracle when non-nil. Read by: zcpa, broadcast.
	Decider Decider
}

// Caps declares a protocol's capabilities and requirements to generic
// consumers (the conformance battery, the CLI, the runner).
type Caps struct {
	// NeedsFullKnowledge is set by protocols designed for the
	// full-topology-knowledge model (PPA); generic harnesses then build
	// full-knowledge instances for it.
	NeedsFullKnowledge bool
	// AllDecide is set by broadcast-style protocols in which every honest
	// player must decide, not just the designated receiver; the runner
	// then does not stop early on the receiver's decision.
	AllDecide bool
	// CompleteGraph is set by protocols designed for fully connected
	// networks (MBRB): their quorum arithmetic counts processes, not paths,
	// so generic harnesses draw complete-graph instances for them instead
	// of the sparse path fixtures.
	CompleteGraph bool
	// HonestPaths is set by protocols that route exclusively over
	// corruption-free D–R paths (SMT): they reject instances whose
	// corruptible ground separates dealer from receiver, so generic
	// harnesses draw fixtures that keep part of the interior honest instead
	// of the fully-corruptible path fixtures.
	HonestPaths bool
}

// Protocol is one registered executable protocol.
type Protocol interface {
	// Name is the registry key ("pka", "zcpa", ...).
	Name() string
	// Caps declares capabilities and requirements.
	Caps() Caps
	// Assemble builds the full process map for a run on the instance with
	// dealer value xD, honoring the options (including the Corrupt
	// overlay).
	Assemble(in *instance.Instance, xD network.Value, opts Options) (map[int]network.Process, error)
}

// Feasibility is optionally implemented by protocols with a tight
// solvability characterization; the conformance battery then asserts
// Solvable ⇔ operational resilience.
type Feasibility interface {
	Solvable(in *instance.Instance) bool
}
