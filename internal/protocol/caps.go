package protocol

import (
	"errors"
	"fmt"
)

// CapsError reports that an instance (or option set) falls outside a
// protocol's declared capabilities: mbrb handed a sparse network, smt
// handed an instance whose corruptible ground severs every dealer–receiver
// path. It is a usage problem with the pairing of protocol and instance,
// not a failure of a valid run, so generic consumers treat it specially:
// the CLIs map it to their exit-2 usage error, and the sweeping harnesses
// skip the (protocol, instance) pair instead of aborting the sweep.
type CapsError struct {
	// Protocol is the registry name of the rejecting protocol.
	Protocol string
	// Reason says what the instance is missing.
	Reason string
}

// Error implements error.
func (e *CapsError) Error() string { return e.Protocol + ": " + e.Reason }

// Capsf builds a CapsError with a formatted reason.
func Capsf(protocol, format string, args ...any) error {
	return &CapsError{Protocol: protocol, Reason: fmt.Sprintf(format, args...)}
}

// IsCapsError reports whether err is (or wraps) a CapsError.
func IsCapsError(err error) bool {
	var ce *CapsError
	return errors.As(err, &ce)
}
