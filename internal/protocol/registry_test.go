package protocol_test

import (
	"strings"
	"sync"
	"testing"

	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/protocol"

	_ "rmt/internal/broadcast" // register the broadcast protocol
	_ "rmt/internal/core"      // register RMT-PKA
	_ "rmt/internal/ppa"       // register PPA
	_ "rmt/internal/zcpa"      // register 𝒵-CPA
)

// TestRegistryHasAllFourProtocols pins the registry contents: the four
// protocol packages self-register at init time and resolve by name.
func TestRegistryHasAllFourProtocols(t *testing.T) {
	want := []string{protocol.Broadcast, protocol.PKA, protocol.PPA, protocol.ZCPA}
	got := protocol.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Names() = %v, want %v (sorted)", got, want)
		}
		p, ok := protocol.Get(name)
		if !ok {
			t.Fatalf("Get(%q) not found", name)
		}
		if p.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, p.Name())
		}
		if protocol.MustGet(name) != p {
			t.Errorf("MustGet(%q) disagrees with Get", name)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, ok := protocol.Get("no-such-protocol"); ok {
		t.Fatal("Get of unknown name succeeded")
	}
	err := func() (err error) {
		_, err = protocol.RunByName("no-such-protocol", nil, "x", protocol.Options{})
		return
	}()
	if err == nil {
		t.Fatal("RunByName of unknown name succeeded")
	}
	// The error should name the candidates so CLI users can self-serve.
	if !strings.Contains(err.Error(), protocol.PKA) {
		t.Errorf("error %q does not list registered protocols", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	for _, bad := range []string{protocol.PKA, ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", bad)
				}
			}()
			protocol.Register(badProto(bad))
		}()
	}
}

type badProto string

func (b badProto) Name() string        { return string(b) }
func (b badProto) Caps() protocol.Caps { return protocol.Caps{} }
func (b badProto) Assemble(*instance.Instance, network.Value, protocol.Options) (map[int]network.Process, error) {
	return nil, nil
}

// TestRegistryConcurrentReads exercises the lock under -race: lookups from
// many goroutines while the table is live.
func TestRegistryConcurrentReads(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				for _, name := range protocol.Names() {
					protocol.MustGet(name)
				}
				protocol.All()
			}
		}()
	}
	wg.Wait()
}
