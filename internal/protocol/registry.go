package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Canonical registry names of the built-in protocols. These constants are
// the only place protocol names are spelled; every other layer resolves
// through them.
const (
	PKA       = "pka"
	ZCPA      = "zcpa"
	PPA       = "ppa"
	Broadcast = "broadcast"
	MBRB      = "mbrb"
	SMT       = "smt"
)

var registry = struct {
	sync.RWMutex
	m map[string]Protocol
}{m: make(map[string]Protocol)}

// Register adds a protocol under its Name. Protocol packages call it from
// init(); registering an empty name or a duplicate panics, as with
// database/sql drivers.
func Register(p Protocol) {
	name := p.Name()
	if name == "" {
		panic("protocol: Register with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic("protocol: Register called twice for " + name)
	}
	registry.m[name] = p
}

// Get returns the protocol registered under name.
func Get(name string) (Protocol, bool) {
	registry.RLock()
	defer registry.RUnlock()
	p, ok := registry.m[name]
	return p, ok
}

// MustGet returns the protocol registered under name, panicking when
// absent. For static names known at compile time.
func MustGet(name string) Protocol {
	p, ok := Get(name)
	if !ok {
		panic("protocol: no protocol registered as " + name)
	}
	return p
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered protocols in name order.
func All() []Protocol {
	names := Names()
	out := make([]Protocol, len(names))
	for i, name := range names {
		out[i] = MustGet(name)
	}
	return out
}

// unknownError builds the not-registered error with the available names.
func unknownError(name string) error {
	return fmt.Errorf("protocol: unknown protocol %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}
