package discovery

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

func mustGraph(t *testing.T, edges string) *graph.Graph {
	t.Helper()
	g, err := graph.ParseEdgeList(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHonestDiscoveryRecoversGraph(t *testing.T) {
	g := mustGraph(t, "0-1 1-2 2-3 3-0 1-3")
	res, err := Run(g, adversary.Trivial(), view.AdHoc(g), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed.Equal(g) {
		t.Fatalf("confirmed = %v, want %v", res.Confirmed, g)
	}
	if !res.Contested.IsEmpty() {
		t.Fatalf("contested = %v on an honest run", res.Contested)
	}
	if !res.Known.Equal(g.Nodes()) {
		t.Fatalf("known = %v", res.Known)
	}
}

func TestDiscoveryOnDisconnectedPart(t *testing.T) {
	g := mustGraph(t, "0-1 2-3")
	res, err := Run(g, adversary.Trivial(), view.AdHoc(g), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Known.Contains(2) || res.Known.Contains(3) {
		t.Fatal("learned about an unreachable component")
	}
	if !res.Confirmed.HasEdge(0, 1) {
		t.Fatal("own edge missing")
	}
}

func TestSilentCorruptionHidesOnlyItself(t *testing.T) {
	// Ring 0-1-2-3-4-0; node 2 silent. The observer still learns the rest
	// via the other arc, and edges adjacent to 2 are confirmed only if
	// both endpoints claim them — 2 claims nothing, so 1-2 and 2-3 stay
	// unconfirmed, but are present in the honest claims (Claimed).
	g := gen.Ring(5)
	res, err := Run(g, adversary.FromSlices([]int{2}), view.AdHoc(g), 0,
		byzantine.SilentProcesses(nodeset.Of(2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {3, 4}, {4, 0}} {
		if !res.Confirmed.HasEdge(e[0], e[1]) {
			t.Errorf("edge %v not confirmed", e)
		}
	}
	if res.Confirmed.HasEdge(1, 2) || res.Confirmed.HasEdge(2, 3) {
		t.Error("silent node's edges got bilateral confirmation")
	}
	if !res.Claimed.HasEdge(1, 2) || !res.Claimed.HasEdge(2, 3) {
		t.Error("honest unilateral claims missing from Claimed")
	}
}

// forger claims a fabricated edge between two honest nodes (1-3) plus a
// real view, and relays honestly.
func fakeEdgeForger(g *graph.Graph, gamma view.Function, z adversary.Structure, id int, fakeU, fakeV int) network.Process {
	fakeView := gamma.Of(id).Clone()
	fakeView.AddEdge(fakeU, fakeV)
	info := core.NodeInfo{Node: id, View: fakeView, Z: gamma.LocalStructure(z, id)}
	return core.NewRelayAt(id, g.Neighbors(id), info)
}

func TestForgedEdgeBetweenHonestNodesRejected(t *testing.T) {
	// 0-1-2-3-0 square; corrupted node 1 claims a fake chord 0-2... a fake
	// edge between honest 3 and honest... pick fake edge 2-0? 0 is the
	// observer (trusts only its own channels) — use fake edge 2-3' where
	// both endpoints are honest non-observers: fake 3-2? 2-3 is real.
	// Take the path graph and forge a shortcut between its honest ends.
	g := mustGraph(t, "0-1 1-2 2-3 3-4")
	z := adversary.FromSlices([]int{1})
	gamma := view.AdHoc(g)
	corrupt := map[int]network.Process{1: fakeEdgeForger(g, gamma, z, 1, 2, 4)}
	res, err := Run(g, z, gamma, 0, corrupt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed.HasEdge(2, 4) {
		t.Fatal("fabricated edge between honest nodes was confirmed")
	}
	// The forger's fabrication shows up in Claimed only via its own claim.
	if !res.Confirmed.HasEdge(2, 3) || !res.Confirmed.HasEdge(3, 4) {
		t.Fatal("real edges lost")
	}
}

func TestForgedEdgeAdjacentToForgerSurvivesOnlyWithCounterpart(t *testing.T) {
	// The forger claims a fake edge 1-3 (it is an endpoint). Honest 3 does
	// not claim it, so bilateral confirmation still rejects it.
	g := mustGraph(t, "0-1 1-2 2-3")
	z := adversary.FromSlices([]int{1})
	gamma := view.AdHoc(g)
	corrupt := map[int]network.Process{1: fakeEdgeForger(g, gamma, z, 1, 1, 3)}
	res, err := Run(g, z, gamma, 0, corrupt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed.HasEdge(1, 3) {
		t.Fatal("unilateral fake edge confirmed")
	}
}

// splitClaimer sends two different self-claims to different neighbors.
func splitClaimer(g *graph.Graph, gamma view.Function, z adversary.Structure, id int) network.Process {
	honest := core.NodeInfo{Node: id, View: gamma.Of(id), Z: gamma.LocalStructure(z, id)}
	fakeView := gamma.Of(id).Clone()
	fakeView.AddEdge(id, id+100)
	lying := core.NodeInfo{Node: id, View: fakeView, Z: gamma.LocalStructure(z, id)}
	per := map[int][]network.Payload{}
	i := 0
	g.Neighbors(id).ForEach(func(u int) bool {
		ni := honest
		if i%2 == 1 {
			ni = lying
		}
		per[u] = []network.Payload{core.InfoMsg{Info: ni, P: graph.Path{id}}}
		i++
		return true
	})
	return &core.Forger{ID: id, Neighbors: g.Neighbors(id), InitPer: per}
}

func TestConflictingClaimsAreContested(t *testing.T) {
	// Node 2 gives different stories to its two neighbors on a cycle; both
	// reach the observer, so node 2 is flagged contested and excluded from
	// confirmation.
	g := gen.Ring(4)
	z := adversary.FromSlices([]int{2})
	gamma := view.AdHoc(g)
	res, err := Run(g, z, gamma, 0, map[int]network.Process{2: splitClaimer(g, gamma, z, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contested.Contains(2) {
		t.Fatal("split-brain claimer not contested")
	}
	if res.Confirmed.HasEdge(1, 2) || res.Confirmed.HasEdge(2, 3) {
		t.Fatal("contested node's edges confirmed")
	}
}

func TestJointContainsTruth(t *testing.T) {
	// Corollary 2 carried to discovery: the reconstructed joint structure
	// contains the real structure restricted to the joint domain.
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(4)
		g := gen.RandomGNP(r, n, 0.5)
		if !g.ComponentOf(0).Equal(g.Nodes()) {
			continue // keep it connected for simplicity
		}
		z := adversary.Random(r, g.Nodes().Remove(0), 2, 0.35)
		res, err := Run(g, z, view.AdHoc(g), 0, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !z.Restrict(res.Joint.Domain).SubfamilyOf(res.Joint.Structure) {
			t.Fatalf("trial %d: joint misses real structure\nZ=%v joint=%v", trial, z, res.Joint)
		}
	}
}

func TestDiscoveryCompletenessRandom(t *testing.T) {
	// Guarantee 1: honest nodes reachable via honest paths are discovered
	// with their true neighborhoods confirmed when both endpoints are
	// honest and reachable.
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(3)
		g := gen.RandomGNP(r, n, 0.5)
		corrupted := nodeset.Of(1 + r.Intn(n-1))
		z := adversary.FromSets(corrupted)
		res, err := Run(g, z, view.AdHoc(g), 0, byzantine.SilentProcesses(corrupted), nil)
		if err != nil {
			t.Fatal(err)
		}
		reachable := g.RemoveNodes(corrupted).ComponentOf(0)
		for _, e := range g.Edges() {
			u, v := e[0], e[1]
			if reachable.Contains(u) && reachable.Contains(v) &&
				!corrupted.Contains(u) && !corrupted.Contains(v) {
				if !res.Confirmed.HasEdge(u, v) {
					t.Fatalf("trial %d: honest-reachable edge %d-%d unconfirmed\nG=%v T=%v",
						trial, u, v, g, corrupted)
				}
			}
		}
	}
}

func TestGoroutineEngineDiscovery(t *testing.T) {
	g := gen.Ring(5)
	a, err := Run(g, adversary.Trivial(), view.AdHoc(g), 0, nil, network.Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, adversary.Trivial(), view.AdHoc(g), 0, nil, network.Goroutine)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Confirmed.Equal(b.Confirmed) || !a.Known.Equal(b.Known) {
		t.Fatal("engines disagree on discovery")
	}
}

func TestObserverOwnEdgesTrusted(t *testing.T) {
	// The observer's own channels are confirmed even when the other
	// endpoint is silent.
	g := mustGraph(t, "0-1 1-2")
	res, err := Run(g, adversary.FromSlices([]int{1}), view.AdHoc(g), 0,
		byzantine.SilentProcesses(nodeset.Of(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed.HasEdge(0, 1) {
		t.Fatal("observer's own channel unconfirmed")
	}
	if res.Known.Contains(2) {
		t.Fatal("learned about node 2 through a silent cut")
	}
}
