// Package discovery implements Byzantine-resilient topology discovery — the
// application direction the paper's conclusions point at ([12], [4]): "the
// techniques used here (e.g. the ⊕ operation) may be applicable to that
// problem under a Byzantine adversary".
//
// Every node floods its initial knowledge ((v, γ(v), Z_v), trail) with
// RMT-PKA's type-2 messages and admission rules (trails pinned to
// authenticated channels). An observer reconstructs:
//
//   - the confirmed graph: an edge is accepted iff both endpoints claim it
//     (bilateral confirmation) or the observer is an endpoint — so a forged
//     edge between two honest nodes is never accepted;
//   - the contested set: nodes for which conflicting claim versions
//     arrived, which can only happen under corruption;
//   - the joint adversary structure: the ⊕-fold of the uncontested claims,
//     i.e. the worst-case adversary consistent with everything learned.
//
// Guarantees validated by the tests:
//
//  1. completeness — honest nodes reachable from the observer through
//     honest nodes are discovered with their true views;
//  2. bilateral soundness — every confirmed edge between honest nodes is a
//     real edge of G;
//  3. forgery containment — fabricated edges survive only when a corrupted
//     node is an endpoint of the forgery (where they are inherently
//     undetectable without further assumptions);
//  4. the joint structure always contains the real structure's restriction
//     (Corollary 2 carried over to discovery).
package discovery

import (
	"rmt/internal/adversary"
	"rmt/internal/core"
	"rmt/internal/graph"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

// Observer collects type-2 claims and reconstructs the topology.
type Observer struct {
	id     int
	own    core.NodeInfo
	claims map[int]map[string]core.NodeInfo
}

// NewObserver builds the observing process for node id with its own
// initial knowledge.
func NewObserver(id int, ownView *graph.Graph, ownZ adversary.Restricted) *Observer {
	return &Observer{
		id:     id,
		own:    core.NodeInfo{Node: id, View: ownView, Z: ownZ},
		claims: make(map[int]map[string]core.NodeInfo),
	}
}

// Init implements network.Process.
func (o *Observer) Init(network.Outbox) {}

// Round implements network.Process: ingest claims forever (the engine's
// quiescence detection ends the run).
func (o *Observer) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	for _, m := range inbox {
		im, ok := m.Payload.(core.InfoMsg)
		if !ok {
			continue
		}
		trail := im.P
		if len(trail) == 0 || trail.Contains(o.id) || trail.Tail() != m.From {
			continue // forged trail
		}
		byVersion, ok := o.claims[im.Info.Node]
		if !ok {
			byVersion = make(map[string]core.NodeInfo)
			o.claims[im.Info.Node] = byVersion
		}
		byVersion[im.Info.VersionKey()] = im.Info
	}
	return true
}

// Decision implements network.Process: discovery has no value decision.
func (o *Observer) Decision() (network.Value, bool) { return "", false }

// Result is the reconstruction output.
type Result struct {
	// Known lists every node some claim mentions (including the observer).
	Known nodeset.Set
	// Contested lists nodes with conflicting claim versions — proof of
	// corruption somewhere on their delivery paths.
	Contested nodeset.Set
	// Confirmed contains the bilateral-confirmed topology.
	Confirmed *graph.Graph
	// Claimed is the union of all (first-version) claims: the optimistic
	// picture, sound only for honest claimants.
	Claimed *graph.Graph
	// Joint is the ⊕-fold of the uncontested claims' local structures.
	Joint adversary.Restricted
}

// Reconstruct builds the discovery result from the observer's state.
func (o *Observer) Reconstruct() *Result {
	res := &Result{
		Known:     nodeset.Of(o.id),
		Contested: nodeset.Empty(),
		Confirmed: graph.New(),
		Claimed:   graph.New(),
	}
	res.Confirmed.AddNode(o.id)

	// One representative claim per node; contested nodes flagged.
	chosen := map[int]core.NodeInfo{o.id: o.own}
	for node, versions := range o.claims {
		if node == o.id {
			continue
		}
		res.Known = res.Known.Add(node)
		if len(versions) > 1 {
			res.Contested = res.Contested.Add(node)
			continue
		}
		for _, ni := range versions {
			chosen[node] = ni
		}
	}
	for _, ni := range chosen {
		res.Claimed = res.Claimed.Union(ni.View)
		ni.View.Nodes().ForEach(func(v int) bool {
			res.Known = res.Known.Add(v)
			return true
		})
	}
	// Bilateral confirmation: keep {a, b} iff both endpoints' chosen
	// claims contain it, or the observer is an endpoint (it trusts its
	// own channels).
	for _, e := range res.Claimed.Edges() {
		a, b := e[0], e[1]
		if a == o.id || b == o.id {
			if o.own.View.HasEdge(a, b) {
				res.Confirmed.AddEdge(a, b)
			}
			continue
		}
		ca, okA := chosen[a]
		cb, okB := chosen[b]
		if okA && okB && ca.View.HasEdge(a, b) && cb.View.HasEdge(a, b) {
			res.Confirmed.AddEdge(a, b)
		}
	}
	// Joint adversary knowledge from uncontested claims.
	restricted := make([]adversary.Restricted, 0, len(chosen))
	ids := make([]int, 0, len(chosen))
	for id := range chosen {
		ids = append(ids, id)
	}
	nodeset.FromSlice(ids).ForEach(func(id int) bool {
		restricted = append(restricted, chosen[id].Z)
		return true
	})
	res.Joint = adversary.JoinAll(restricted...)
	return res
}

// Run floods every node's knowledge through the network and returns the
// observer's reconstruction. Corrupted nodes run the supplied processes
// (the observer itself cannot be corrupted).
func Run(g *graph.Graph, z adversary.Structure, gamma view.Function, observer int, corrupt map[int]network.Process, engine network.Engine) (*Result, error) {
	obs := NewObserver(observer, gamma.Of(observer), gamma.LocalStructure(z, observer))
	procs := make(map[int]network.Process, g.NumNodes())
	g.Nodes().ForEach(func(v int) bool {
		if v == observer {
			procs[v] = obs
			return true
		}
		info := core.NodeInfo{Node: v, View: gamma.Of(v), Z: gamma.LocalStructure(z, v)}
		procs[v] = core.NewRelayAt(v, g.Neighbors(v), info)
		return true
	})
	for v, proc := range corrupt {
		if v == observer {
			continue
		}
		procs[v] = proc
	}
	if _, err := network.Run(network.Config{Graph: g, Processes: procs, Engine: engine}); err != nil {
		return nil, err
	}
	return obs.Reconstruct(), nil
}
