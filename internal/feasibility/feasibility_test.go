package feasibility_test

import (
	"testing"

	"rmt/internal/core"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/zcpa"
)

func TestFixturesBuildAtEveryLevel(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range feasibility.All() {
		if seen[f.Name] {
			t.Fatalf("duplicate fixture name %q", f.Name)
		}
		seen[f.Name] = true
		if f.Doc == "" {
			t.Errorf("%s: missing Doc", f.Name)
		}
		for _, level := range gen.Levels() {
			in, err := f.Build(level)
			if err != nil {
				t.Fatalf("%s at %v: %v", f.Name, level, err)
			}
			if in.Dealer != f.Dealer || in.Receiver != f.Receiver {
				t.Fatalf("%s at %v: terminals = (%d, %d), want (%d, %d)",
					f.Name, level, in.Dealer, in.Receiver, f.Dealer, f.Receiver)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, f := range feasibility.All() {
		got, ok := feasibility.ByName(f.Name)
		if !ok || got.Edges != f.Edges {
			t.Fatalf("ByName(%q) = %+v, %v", f.Name, got, ok)
		}
	}
	if _, ok := feasibility.ByName("nonesuch"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName did not panic on an unknown name")
		}
	}()
	feasibility.MustByName("nonesuch")
}

// TestRMTCutCharacterization pins Definition 3 against Theorems 3 and 5 on
// every fixture: the recorded solvability verdict, the cut finder's
// existence answer, and the cut verifier must all agree at every documented
// knowledge level.
func TestRMTCutCharacterization(t *testing.T) {
	for _, f := range feasibility.All() {
		for level, want := range f.PKASolvable {
			t.Run(f.Name+"/"+level.String(), func(t *testing.T) {
				in := f.MustBuild(level)
				if got := core.Solvable(in); got != want {
					t.Fatalf("Solvable = %v, want %v\n%s", got, want, f.Doc)
				}
				cut, found := core.FindRMTCut(in)
				if found == want {
					t.Fatalf("FindRMTCut found=%v contradicts solvable=%v (cut %v)", found, want, cut)
				}
				if found {
					if err := core.VerifyRMTCut(in, cut); err != nil {
						t.Fatalf("finder returned an unverifiable cut %v: %v", cut, err)
					}
					if !in.Z.Contains(cut.C1) {
						t.Fatalf("witness C1 = %v is not admissible", cut.C1)
					}
				}
			})
		}
	}
}

// TestZppCutCharacterization pins Definition 7 against Theorems 7 and 8 on
// the ad hoc build of every fixture.
func TestZppCutCharacterization(t *testing.T) {
	for _, f := range feasibility.All() {
		t.Run(f.Name, func(t *testing.T) {
			in := f.MustBuild(gen.AdHoc)
			want := f.ZCPASolvable
			if got := zcpa.Solvable(in); got != want {
				t.Fatalf("Solvable = %v, want %v\n%s", got, want, f.Doc)
			}
			cut, found := zcpa.FindRMTZppCut(in)
			if found == want {
				t.Fatalf("FindRMTZppCut found=%v contradicts solvable=%v (cut %v)", found, want, cut)
			}
			if found {
				if err := zcpa.VerifyZppCut(in, cut); err != nil {
					t.Fatalf("finder returned an unverifiable cut %v: %v", cut, err)
				}
			}
		})
	}
}

// TestKnowledgeMonotonicity: more topology knowledge never makes a solvable
// instance unsolvable — the verdicts along gen.Levels() are monotone. This
// is what makes recording only the documented endpoint levels sound.
func TestKnowledgeMonotonicity(t *testing.T) {
	for _, f := range feasibility.All() {
		t.Run(f.Name, func(t *testing.T) {
			prev := false
			for _, level := range gen.Levels() {
				got := core.Solvable(f.MustBuild(level))
				if prev && !got {
					t.Fatalf("solvable at the previous level but not at %v", level)
				}
				prev = got
			}
		})
	}
}

// TestOperationalAgreement replays the characterizations operationally: on
// each ad hoc fixture the protocols must actually withstand (or fail under)
// every maximal corruption exactly as the cut condition predicts — the
// tightness direction of Theorems 5 and 8 on the worked examples.
func TestOperationalAgreement(t *testing.T) {
	for _, f := range feasibility.All() {
		t.Run(f.Name+"/zcpa", func(t *testing.T) {
			in := f.MustBuild(gen.AdHoc)
			ok, err := zcpa.Resilient(in)
			if err != nil {
				t.Fatal(err)
			}
			if ok != f.ZCPASolvable {
				t.Fatalf("Z-CPA resilient = %v, cut condition says %v", ok, f.ZCPASolvable)
			}
		})
		if f.Name == feasibility.Layered {
			// The receiver's full-set search on the two-layer instance is the
			// suite's one exponential cell; PKA's operational behavior there
			// is pinned by the golden transcripts instead.
			continue
		}
		for level, want := range f.PKASolvable {
			t.Run(f.Name+"/pka/"+level.String(), func(t *testing.T) {
				ok, err := core.Resilient(f.MustBuild(level))
				if err != nil {
					t.Fatal(err)
				}
				if ok != want {
					t.Fatalf("RMT-PKA resilient = %v, cut condition says %v", ok, want)
				}
			})
		}
	}
}
