package feasibility

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/smt"
)

// TestSMTBoundaryAgreement walks every boundary pair and asserts, on both
// sides, that the predicate, the verdict, the protocol's planner, and an
// actual protocol run all agree: the feasible side plans and delivers the
// secret, the infeasible side is rejected with a CapsError everywhere.
func TestSMTBoundaryAgreement(t *testing.T) {
	for _, b := range SMTBoundaries() {
		sides := []struct {
			name  string
			point SMTBoundaryPoint
			want  bool
		}{
			{"feasible", b.Feasible, true},
			{"infeasible", b.Infeasible, false},
		}
		for _, s := range sides {
			in, err := s.point.Build()
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, s.name, err)
			}
			if got := SMTFeasible(in, s.point.Listen); got != s.want {
				t.Errorf("%s/%s: SMTFeasible = %v, want %v", b.Name, s.name, got, s.want)
			}
			v := SMTVerdictFor(in, s.point.Listen)
			if v.Feasible != s.want {
				t.Errorf("%s/%s: verdict.Feasible = %v, want %v", b.Name, s.name, v.Feasible, s.want)
			}
			if s.want && len(v.Paths) == 0 {
				t.Errorf("%s/%s: feasible verdict carries no witness paths", b.Name, s.name)
			}
			if !s.want && !v.DisruptionFound && !v.SecrecyFound {
				t.Errorf("%s/%s: infeasible verdict carries no cut witness", b.Name, s.name)
			}

			_, planErr := smt.NewPlan(in, s.point.Listen)
			if got := planErr == nil; got != s.want {
				t.Errorf("%s/%s: smt.NewPlan feasible = %v, want %v (err: %v)", b.Name, s.name, got, s.want, planErr)
			}

			secret := network.Value("boundary-secret")
			res, runErr := smt.Run(in, secret, nil, smt.Options{Listen: s.point.Listen, Seed: 7})
			if s.want {
				if runErr != nil {
					t.Errorf("%s/%s: run failed: %v", b.Name, s.name, runErr)
					continue
				}
				if got := res.Decisions[in.Receiver]; got != secret {
					t.Errorf("%s/%s: receiver decided %q, want %q", b.Name, s.name, got, secret)
				}
			} else {
				if runErr == nil {
					t.Errorf("%s/%s: run succeeded on the infeasible side", b.Name, s.name)
				} else if !protocol.IsCapsError(runErr) {
					t.Errorf("%s/%s: infeasible run error is not a CapsError: %v", b.Name, s.name, runErr)
				}
			}
		}
	}
}

// TestSMTBoundariesAreOneSetWide pins the battery's construction contract:
// each pair's two sides differ by exactly one maximal adversary set.
func TestSMTBoundariesAreOneSetWide(t *testing.T) {
	for _, b := range SMTBoundaries() {
		fin, err := b.Feasible.Build()
		if err != nil {
			t.Fatal(err)
		}
		iin, err := b.Infeasible.Build()
		if err != nil {
			t.Fatal(err)
		}
		newSets := func(narrow, wide adversary.Structure) (int, bool) {
			fresh := 0
			for _, s := range wide.Maximal() {
				if !narrow.Contains(s) {
					fresh++
				}
			}
			return fresh, narrow.SubfamilyOf(wide)
		}
		widerL, subL := newSets(b.Feasible.Listen, b.Infeasible.Listen)
		widerZ, subZ := newSets(fin.Z, iin.Z)
		if !subL || !subZ {
			t.Errorf("%s: infeasible side does not extend the feasible side", b.Name)
		}
		if widerL+widerZ != 1 {
			t.Errorf("%s: infeasible side adds %d listening sets and %d corruption sets, want exactly 1 total",
				b.Name, widerL, widerZ)
		}
	}
}

// TestSMTVerdictWitnesses spot-checks the witness content on the extra-ear
// pair: feasible paths avoid the ground, and the infeasible cut names the
// wide ear.
func TestSMTVerdictWitnesses(t *testing.T) {
	b, ok := SMTBoundaryByName(SMTExtraEar)
	if !ok {
		t.Fatal("extra-ear boundary missing")
	}
	in, err := b.Feasible.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := SMTVerdictFor(in, b.Feasible.Listen)
	ground := in.Z.Ground()
	for _, p := range v.Paths {
		if ground.Intersects(p.Set()) {
			t.Errorf("witness path %v touches the corruption ground %v", p, ground)
		}
	}
	iv := SMTVerdictFor(in, b.Infeasible.Listen)
	if !iv.SecrecyFound {
		t.Fatal("infeasible extra-ear verdict has no secrecy cut")
	}
	if want := nodeset.Of(2, 3); !iv.SecrecyListen.Equal(want) {
		t.Errorf("secrecy cut blames listening set %v, want %v", iv.SecrecyListen, want)
	}
}

// TestSMTFeasibleChimera exercises the predicate off the battery: the
// Chimera worked example is corruption-feasible, and listening on either of
// its two halves alone is fine while a structure covering both is not.
func TestSMTFeasibleChimera(t *testing.T) {
	g, z, d, r := gen.Chimera()
	in, err := instance.AdHoc(g, z, d, r)
	if err != nil {
		t.Fatal(err)
	}
	if !SMTFeasible(in, adversary.Trivial()) {
		t.Skip("chimera is not even disruption-feasible; fixture changed")
	}
	all := in.G.Nodes().Remove(d).Remove(r)
	if SMTFeasible(in, adversary.FromSets(all)) {
		t.Error("listening on the whole interior should always fail secrecy")
	}
}
