package feasibility

import (
	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/smt"
)

// SMTFeasible is Dowden's characterization of perfectly secure message
// transmission under the fully generalised adversary (𝒵, ℒ): SMT is solvable
// iff the disruption condition holds — the corruption ground ∪𝒵 does not
// separate D from R — and the secrecy condition holds — for every admissible
// listening set L ∈ ℒ, ∪𝒵 ∪ L does not separate D from R either. The L = ∅
// member every structure contains makes disruption the degenerate case of
// secrecy, so the predicate is a single quantified cut condition.
func SMTFeasible(in *instance.Instance, listen adversary.Structure) bool {
	return adversary.NewGeneralised(in.Z, listen).Feasible(in.G, in.Dealer, in.Receiver)
}

// SMTVerdict is the instance-level evaluation of the SMT cut conditions,
// with witnesses for whichever side holds: the share-routing path family
// when feasible, the violated cut when not.
type SMTVerdict struct {
	// Feasible is SMTFeasible(in, listen).
	Feasible bool
	// Paths is the canonical witness family smt would route shares over —
	// present exactly when Feasible.
	Paths []graph.Path
	// DisruptionCut is the corruption ground when it alone separates D from
	// R (or contains one of them); DisruptionFound guards it.
	DisruptionCut   nodeset.Set
	DisruptionFound bool
	// SecrecyCut and SecrecyListen witness a failed secrecy condition: the
	// first maximal listening set whose union with the ground separates D
	// from R, and that union. SecrecyFound guards both. A pure disruption
	// failure reports both cuts (∅ is an admissible listening set).
	SecrecyCut    nodeset.Set
	SecrecyListen nodeset.Set
	SecrecyFound  bool
}

// SMTVerdictFor evaluates the Dowden cut conditions on an instance under the
// given listening structure. The feasible-side witness family is computed by
// the protocol's own planner, so the verdict and an smt run can never
// disagree about solvability.
func SMTVerdictFor(in *instance.Instance, listen adversary.Structure) SMTVerdict {
	v := SMTVerdict{}
	a := adversary.NewGeneralised(in.Z, listen)
	v.DisruptionCut, v.DisruptionFound = a.DisruptionCut(in.G, in.Dealer, in.Receiver)
	v.SecrecyCut, v.SecrecyListen, v.SecrecyFound = a.SecrecyCut(in.G, in.Dealer, in.Receiver)
	if v.DisruptionFound || v.SecrecyFound {
		return v
	}
	plan, err := smt.NewPlan(in, listen)
	if err != nil {
		// The cut conditions passed, so the planner must succeed; reaching
		// here would mean predicate and protocol have drifted apart.
		panic("feasibility: cut conditions hold but smt.NewPlan failed: " + err.Error())
	}
	v.Feasible = true
	v.Paths = plan.Paths
	return v
}

// SMTBoundaryPoint is one side of an SMT boundary pair: an instance builder
// and the listening structure to evaluate it under.
type SMTBoundaryPoint struct {
	// Listen is the listening structure ℒ of this side.
	Listen adversary.Structure
	// Build constructs the instance.
	Build func() (*instance.Instance, error)
}

// SMTBoundary is one point of the SMT feasibility boundary: two
// (instance, ℒ) pairs exactly one adversary set apart that straddle the cut
// conditions. SMTFeasible accepts the Feasible side and rejects the
// Infeasible side, and smt.NewPlan agrees with it on both (asserted by this
// package's tests).
type SMTBoundary struct {
	// Name is the pair's registry key.
	Name string
	// Doc says which cut flips and why the single extra set flips it.
	Doc string
	// Feasible and Infeasible are the two sides of the pair.
	Feasible, Infeasible SMTBoundaryPoint
}

// SMT boundary pair names.
const (
	SMTExtraEar    = "smt-extra-ear"
	SMTFirstEar    = "smt-first-ear"
	SMTWiderGround = "smt-wider-ground"
)

// SMTBoundaries returns the SMT boundary battery. Every pair is one set
// wide: the infeasible side differs from the feasible side by a single
// maximal set added to the listening structure (or, for the disruption pair,
// to the corruption structure).
func SMTBoundaries() []SMTBoundary {
	triple := func(z adversary.Structure) func() (*instance.Instance, error) {
		return func() (*instance.Instance, error) {
			g, d, r := gen.DisjointPaths(3, 1)
			return instance.AdHoc(g, z, d, r)
		}
	}
	line := func() (*instance.Instance, error) {
		return instance.AdHoc(gen.Line(5), adversary.Trivial(), 0, 4)
	}
	return []SMTBoundary{
		{
			Name: SMTExtraEar,
			Doc: "triple path, relay 1 corruptible: ears on {2} and {3} each miss " +
				"the other honest relay's path, but the one wider ear {2, 3} hears " +
				"every path escaping the ground — the secrecy cut flips.",
			Feasible: SMTBoundaryPoint{
				Listen: adversary.FromSlices([]int{2}, []int{3}),
				Build:  triple(gen.Singletons(nodeset.Of(1))),
			},
			Infeasible: SMTBoundaryPoint{
				Listen: adversary.FromSlices([]int{2}, []int{3}, []int{2, 3}),
				Build:  triple(gen.Singletons(nodeset.Of(1))),
			},
		},
		{
			Name: SMTFirstEar,
			Doc: "a bare line has exactly one D–R path; the first non-empty " +
				"listening set on its interior hears every share family there is.",
			Feasible: SMTBoundaryPoint{
				Listen: adversary.Trivial(),
				Build:  line,
			},
			Infeasible: SMTBoundaryPoint{
				Listen: adversary.FromSlices([]int{2}),
				Build:  line,
			},
		},
		{
			Name: SMTWiderGround,
			Doc: "the disruption side of the boundary: with relays 1 and 2 " +
				"corruptible the family routes over relay 3; adding {3} to the " +
				"corruption structure closes the last honest path.",
			Feasible: SMTBoundaryPoint{
				Listen: adversary.Trivial(),
				Build:  triple(gen.Singletons(nodeset.Of(1, 2))),
			},
			Infeasible: SMTBoundaryPoint{
				Listen: adversary.Trivial(),
				Build:  triple(gen.Singletons(nodeset.Of(1, 2, 3))),
			},
		},
	}
}

// SMTBoundaryByName returns the named boundary pair.
func SMTBoundaryByName(name string) (SMTBoundary, bool) {
	for _, b := range SMTBoundaries() {
		if b.Name == name {
			return b, true
		}
	}
	return SMTBoundary{}, false
}
