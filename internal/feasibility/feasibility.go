// Package feasibility collects the paper's worked example instances as
// named fixtures with their expected feasibility verdicts — the RMT-cut
// condition of Definition 3 (tight by Theorems 3 and 5) and the RMT 𝒵-pp
// cut condition of Definition 7 (tight by Theorems 7 and 8).
//
// The fixtures are the shared vocabulary of the test suite: protocol tests
// (internal/core, internal/zcpa), the conformance battery and the docs all
// reference the same instances by name instead of re-deriving inline edge
// lists, and the feasibility tests assert that the cut finders, the cut
// verifiers and operational protocol resilience all agree with the recorded
// verdicts at every knowledge level.
//
// The package sits below the protocol layer on purpose: it imports only the
// instance substrate (graph, adversary, instance, gen), so any test — core,
// zcpa, or higher — can import it without a cycle.
package feasibility

import (
	"fmt"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// Fixture is one worked instance with its expected verdicts.
type Fixture struct {
	// Name is the fixture's registry key ("triple-path", "weak-diamond",
	// "chimera", ...).
	Name string
	// Doc says which construction of the paper the fixture realizes and why
	// the verdicts hold.
	Doc string
	// Edges is the topology as an edge list ("0-1 0-2 ...").
	Edges string
	// Z is the adversary structure.
	Z adversary.Structure
	// Dealer and Receiver are the terminals.
	Dealer, Receiver int

	// PKASolvable maps knowledge levels to the expected RMT solvability
	// verdict (Definition 3: solvable ⇔ no RMT-cut). Only levels with a
	// documented expectation are present; the radius interpolation between
	// them is exercised by the randomized tightness sweeps instead.
	PKASolvable map[gen.Knowledge]bool
	// ZCPASolvable is the expected ad hoc verdict of Definition 7
	// (solvable ⇔ no RMT 𝒵-pp cut).
	ZCPASolvable bool
}

// Graph parses the fixture topology.
func (f Fixture) Graph() (*graph.Graph, error) { return graph.ParseEdgeList(f.Edges) }

// Build assembles the fixture instance at the given knowledge level.
func (f Fixture) Build(level gen.Knowledge) (*instance.Instance, error) {
	g, err := f.Graph()
	if err != nil {
		return nil, fmt.Errorf("feasibility: %s: %w", f.Name, err)
	}
	return gen.Build(g, f.Z, level, f.Dealer, f.Receiver)
}

// MustBuild is Build for fixtures known at compile time.
func (f Fixture) MustBuild(level gen.Knowledge) *instance.Instance {
	in, err := f.Build(level)
	if err != nil {
		panic(err)
	}
	return in
}

// Fixture names.
const (
	TriplePath  = "triple-path"
	WeakDiamond = "weak-diamond"
	Chimera     = "chimera"
	Layered     = "layered-threshold"
	HonestLine  = "honest-line"
	DealerEdge  = "dealer-edge"
)

// All returns the worked-example fixtures, in a stable order.
func All() []Fixture {
	return []Fixture{
		{
			Name: TriplePath,
			Doc: "Three node-disjoint relay paths D={0} → {1},{2},{3} → R={4} under " +
				"singleton corruption ⟨{1},{2},{3}⟩: any one relay may lie, the other two " +
				"out-vote it. No RMT-cut at any knowledge level (Theorem 5) and no 𝒵-pp " +
				"cut (Theorem 7) — the canonical solvable instance.",
			Edges:  "0-1 0-2 0-3 1-4 2-4 3-4",
			Z:      adversary.FromSlices([]int{1}, []int{2}, []int{3}),
			Dealer: 0, Receiver: 4,
			PKASolvable: map[gen.Knowledge]bool{
				gen.AdHoc: true, gen.Radius2: true, gen.FullKnowledge: true,
			},
			ZCPASolvable: true,
		},
		{
			Name: WeakDiamond,
			Doc: "Two disjoint relays 0→{1,2}→3 with either relay corruptible " +
				"(𝒵 = ⟨{1},{2}⟩): C1={1}, C2={2} is an RMT-cut (Definition 3) and a 𝒵-pp " +
				"cut (Definition 7) — even full topology knowledge cannot tell which path " +
				"lied, so RMT is impossible at every level (Theorems 3 and 8).",
			Edges:  "0-1 0-2 1-3 2-3",
			Z:      adversary.FromSlices([]int{1}, []int{2}),
			Dealer: 0, Receiver: 3,
			PKASolvable: map[gen.Knowledge]bool{
				gen.AdHoc: false, gen.Radius2: false, gen.FullKnowledge: false,
			},
			ZCPASolvable: false,
		},
		{
			Name: Chimera,
			Doc: "The knowledge-separation instance: D=0 → cut layer {1,2,3}, node 4 " +
				"behind {1,2}, node 5 behind {1,3}, R=6 behind {4,5}, 𝒵 = ⟨{1},{2},{3}⟩. " +
				"In the ad hoc model the receiver side's joint view Z_B admits the " +
				"chimera set {2,3} (no member of B={4,5,6} sees both 2 and 3), so " +
				"C1={1}, C2={2,3} is an RMT-cut; with radius-2 views the ⊕ operation " +
				"kills the chimera and RMT becomes solvable — solvability genuinely " +
				"depends on γ, not just on (G, 𝒵).",
			Edges:  "0-1 0-2 0-3 1-4 2-4 1-5 3-5 4-6 5-6",
			Z:      adversary.FromSlices([]int{1}, []int{2}, []int{3}),
			Dealer: 0, Receiver: 6,
			PKASolvable: map[gen.Knowledge]bool{
				gen.AdHoc: false, gen.Radius2: true, gen.FullKnowledge: true,
			},
			ZCPASolvable: false,
		},
		{
			Name: Layered,
			Doc: "Two complete relay layers 0→{1,2,3}→{4,5,6}→7 under the global " +
				"threshold-1 adversary on the relays: each layer 2-covers every " +
				"admissible set, so certified propagation crosses both layers " +
				"(Theorem 7) and RMT-PKA finds honest combination paths at every level.",
			Edges: "0-1 0-2 0-3 1-4 1-5 1-6 2-4 2-5 2-6 3-4 3-5 3-6 4-7 5-7 6-7",
			Z: adversary.GlobalThreshold(
				nodeset.Of(1, 2, 3, 4, 5, 6), 1),
			Dealer: 0, Receiver: 7,
			PKASolvable: map[gen.Knowledge]bool{
				gen.AdHoc: true, gen.Radius2: true, gen.FullKnowledge: true,
			},
			ZCPASolvable: true,
		},
		{
			Name: HonestLine,
			Doc: "A 5-node line with the trivial structure {∅}: nothing can be " +
				"corrupted, so flooding along the single path is already reliable — " +
				"the degenerate boundary of both characterizations.",
			Edges:  "0-1 1-2 2-3 3-4",
			Z:      adversary.Trivial(),
			Dealer: 0, Receiver: 4,
			PKASolvable: map[gen.Knowledge]bool{
				gen.AdHoc: true, gen.Radius2: true, gen.FullKnowledge: true,
			},
			ZCPASolvable: true,
		},
		{
			Name: DealerEdge,
			Doc: "Dealer and receiver share a channel while the only relay is " +
				"corruptible: the dealer propagation rule alone delivers (an honest " +
				"dealer's direct message is always believed), so no cut can separate " +
				"the terminals — D ∈ C1 ∪ C2 ∪ {R}'s neighborhood is impossible.",
			Edges:  "0-1 0-2 1-2",
			Z:      adversary.FromSlices([]int{2}),
			Dealer: 0, Receiver: 1,
			PKASolvable: map[gen.Knowledge]bool{
				gen.AdHoc: true, gen.Radius2: true, gen.FullKnowledge: true,
			},
			ZCPASolvable: true,
		},
	}
}

// ByName returns the named fixture.
func ByName(name string) (Fixture, bool) {
	for _, f := range All() {
		if f.Name == name {
			return f, true
		}
	}
	return Fixture{}, false
}

// MustByName is ByName for names known at compile time.
func MustByName(name string) Fixture {
	f, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("feasibility: unknown fixture %q", name))
	}
	return f
}
