package feasibility_test

import (
	"testing"

	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/mbrb"
	"rmt/internal/network"
	"rmt/internal/protocol"
)

// TestMBRBPredicateFlipsAtBound pins the arithmetic side of the battery:
// for every boundary pair the predicate accepts n = 3t+2d+1, rejects
// n = 3t+2d, and the instance-level verdict agrees — with the t extracted
// from the adversary structure matching mbrb's quorum arithmetic.
func TestMBRBPredicateFlipsAtBound(t *testing.T) {
	for _, b := range feasibility.MBRBBoundaries() {
		if b.Doc == "" {
			t.Errorf("%s: missing Doc", b.Name)
		}
		if !feasibility.MBRBFeasible(b.FeasibleN(), b.T, b.D) {
			t.Errorf("%s: predicate rejects the just-feasible n=%d", b.Name, b.FeasibleN())
		}
		if feasibility.MBRBFeasible(b.InfeasibleN(), b.T, b.D) {
			t.Errorf("%s: predicate accepts the just-infeasible n=%d", b.Name, b.InfeasibleN())
		}
		feas, err := b.Feasible()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		infeas, err := b.Infeasible()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, c := range []struct {
			in       *instance.Instance
			feasible bool
		}{{feas, true}, {infeas, false}} {
			v, err := feasibility.MBRBVerdictFor(c.in, b.D)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if v.Feasible != c.feasible {
				t.Errorf("%s: verdict on n=%d is %v, want %v", b.Name, v.N, v.Feasible, c.feasible)
			}
			if v.T != b.T {
				t.Errorf("%s: verdict extracted t=%d, want %d", b.Name, v.T, b.T)
			}
			if got := mbrb.Threshold(c.in); got != b.T {
				t.Errorf("%s: mbrb.Threshold=%d disagrees with the battery's t=%d", b.Name, got, b.T)
			}
		}
	}
}

// TestMBRBBoundaryOperational pins the operational side: under the pair's
// worst-case adversary (t silent Byzantine players plus a d-victim eclipse)
// the just-feasible instance delivers x_D at every correct non-victim, and
// the just-infeasible instance delivers nowhere. The flip is exactly one
// node wide.
func TestMBRBBoundaryOperational(t *testing.T) {
	for _, b := range feasibility.MBRBBoundaries() {
		run := func(in *instance.Instance) map[int]network.Value {
			opts := mbrb.Options{MABudget: b.D}
			if len(b.Victims) > 0 {
				opts.MsgAdversary = network.NewEclipse(b.Victims...)
			}
			res, err := mbrb.Run(in, "x", protocol.Silence(b.Corrupt), opts)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if err := res.Metrics.Reconcile(); err != nil {
				t.Errorf("%s: %v", b.Name, err)
			}
			return res.Decisions
		}

		feas, err := b.Feasible()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		decisions := run(feas)
		victims := map[int]bool{}
		for _, v := range b.Victims {
			victims[v] = true
		}
		want := 0
		for v := 0; v < b.FeasibleN(); v++ {
			if b.Corrupt.Contains(v) || victims[v] {
				continue
			}
			want++
			if got, ok := decisions[v]; !ok || got != "x" {
				t.Errorf("%s feasible: correct non-victim %d delivered %q, %v; want \"x\"",
					b.Name, v, got, ok)
			}
		}
		if len(decisions) != want {
			t.Errorf("%s feasible: %d deliveries, want %d", b.Name, len(decisions), want)
		}

		infeas, err := b.Infeasible()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if decisions := run(infeas); len(decisions) != 0 {
			t.Errorf("%s infeasible: %d players delivered one node under the bound, want none: %v",
				b.Name, len(decisions), decisions)
		}
	}
}

// TestMBRBVerdictErrors covers the predicate's operating assumptions.
func TestMBRBVerdictErrors(t *testing.T) {
	sparse := feasibility.MustByName(feasibility.TriplePath).MustBuild(gen.AdHoc)
	if _, err := feasibility.MBRBVerdictFor(sparse, 0); err == nil {
		t.Error("sparse instance accepted")
	}
	complete, err := feasibility.MBRBBoundaries()[0].Feasible()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := feasibility.MBRBVerdictFor(complete, -1); err == nil {
		t.Error("negative budget accepted")
	}
}
