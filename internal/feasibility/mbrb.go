package feasibility

import (
	"fmt"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// MBRBFeasible is the message-adversary solvability bound for Byzantine
// Reliable Broadcast on a complete n-player network with at most t Byzantine
// players and a per-broadcast suppression budget of d: MBRB is solvable iff
// n > 3t + 2d (Albouy–Frey–Raynal–Taïani; see PAPERS.md). At d = 0 it
// degenerates to Bracha's classical n > 3t.
func MBRBFeasible(n, t, d int) bool { return n > 3*t+2*d }

// MBRBVerdict is the instance-level evaluation of the bound.
type MBRBVerdict struct {
	// N, T, D are the parameters the verdict was computed from: the player
	// count, the adversary structure's largest corruption set, and the
	// suppression budget under evaluation.
	N, T, D int
	// Feasible is MBRBFeasible(N, T, D).
	Feasible bool
}

// MBRBVerdictFor evaluates the n > 3t + 2d bound on an instance. The bound
// counts processes, not paths, so it is only meaningful — and only tight —
// on complete networks; sparser instances are rejected. General adversary
// structures are conservatively rounded up to the size of their largest
// corruption set, matching the quorum arithmetic of internal/mbrb.
func MBRBVerdictFor(in *instance.Instance, d int) (MBRBVerdict, error) {
	if d < 0 {
		return MBRBVerdict{}, fmt.Errorf("feasibility: negative suppression budget %d", d)
	}
	n := in.N()
	incomplete := false
	in.G.Nodes().ForEach(func(v int) bool {
		if in.G.Neighbors(v).Len() != n-1 {
			incomplete = true
			return false
		}
		return true
	})
	if incomplete {
		return MBRBVerdict{}, fmt.Errorf("feasibility: the n > 3t + 2d bound needs a complete network (n=%d)", n)
	}
	t := 0
	for _, m := range in.MaximalCorruptions() {
		if s := m.Len(); s > t {
			t = s
		}
	}
	return MBRBVerdict{N: n, T: t, D: d, Feasible: MBRBFeasible(n, t, d)}, nil
}

// MBRBBoundary is one point of the n = 3t + 2d boundary battery: a pair of
// complete-network instances one node apart that straddle the bound. The
// just-feasible side has n = 3t + 2d + 1 players (the smallest n the
// predicate accepts); the just-infeasible side removes one player. The
// operational worst case the pair is checked against is Corrupt (t silent
// Byzantine players) plus Victims (d eclipse-suppressed correct players):
// on the feasible side every correct non-victim delivers, one player fewer
// and nobody does.
type MBRBBoundary struct {
	// Name is the pair's registry key.
	Name string
	// Doc says why the flip happens at this (t, d) point.
	Doc string
	// T and D are the adversary parameters.
	T, D int
	// Corrupt is the corruption set for the operational check: {1, …, T}.
	Corrupt nodeset.Set
	// Victims are the eclipse victims: the D interior nodes after Corrupt.
	Victims []int
}

// FeasibleN and InfeasibleN are the two player counts of the pair.
func (b MBRBBoundary) FeasibleN() int   { return 3*b.T + 2*b.D + 1 }
func (b MBRBBoundary) InfeasibleN() int { return 3*b.T + 2*b.D }

// Feasible builds the just-feasible instance: K_n with n = 3t + 2d + 1,
// dealer 0, receiver n−1, and the global t-threshold structure over the
// interior.
func (b MBRBBoundary) Feasible() (*instance.Instance, error) {
	return b.build(b.FeasibleN())
}

// Infeasible builds the just-infeasible instance: one player fewer.
func (b MBRBBoundary) Infeasible() (*instance.Instance, error) {
	return b.build(b.InfeasibleN())
}

func (b MBRBBoundary) build(n int) (*instance.Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("feasibility: %s: K_%d has no dealer–receiver pair", b.Name, n)
	}
	g := gen.Complete(n)
	interior := g.Nodes().Remove(0).Remove(n - 1)
	return instance.AdHoc(g, adversary.GlobalThreshold(interior, b.T), 0, n-1)
}

// MBRB boundary pair names.
const (
	MBRBByzantineOnly   = "mbrb-byzantine-only"
	MBRBSuppressionOnly = "mbrb-suppression-only"
	MBRBMixed           = "mbrb-mixed"
	MBRBDoubleByzantine = "mbrb-double-byzantine"
	MBRBDoubleBudget    = "mbrb-double-budget"
)

// MBRBBoundaries returns the boundary battery: for each pair, the predicate
// flips between FeasibleN and InfeasibleN, and the operational MBRB runs
// agree on both sides (asserted by this package's tests).
func MBRBBoundaries() []MBRBBoundary {
	mk := func(name, doc string, t, d int) MBRBBoundary {
		corrupt := nodeset.Empty()
		for c := 1; c <= t; c++ {
			corrupt = corrupt.Add(c)
		}
		victims := make([]int, 0, d)
		for v := t + 1; v <= t+d; v++ {
			victims = append(victims, v)
		}
		return MBRBBoundary{Name: name, Doc: doc, T: t, D: d, Corrupt: corrupt, Victims: victims}
	}
	return []MBRBBoundary{
		mk(MBRBByzantineOnly, "d=0 degenerates to Bracha's n > 3t: K4 tolerates one "+
			"silent player, K3 starves the echo quorum 2t+1.", 1, 0),
		mk(MBRBSuppressionOnly, "t=0 isolates the message adversary: K3 survives one "+
			"eclipsed player, in K2 the suppressed copy is the whole channel.", 0, 1),
		mk(MBRBMixed, "the canonical mixed point: K6 gives the 4 correct non-victims "+
			"exactly qE = qD = 2t+d+1 = 4 votes; K5 leaves 3 < 4.", 1, 1),
		mk(MBRBDoubleByzantine, "t=2, d=1: the echo quorum ⌊(n+t)/2⌋+1 = 6 is met by "+
			"the 6 correct non-victims of K9 and missed by the 5 of K8.", 2, 1),
		mk(MBRBDoubleBudget, "t=1, d=2: two eclipsed players cost two quorum votes "+
			"each round; K8 still seats 5 = qE voters, K7 only 4.", 1, 2),
	}
}

// MBRBBoundaryByName returns the named boundary pair.
func MBRBBoundaryByName(name string) (MBRBBoundary, bool) {
	for _, b := range MBRBBoundaries() {
		if b.Name == name {
			return b, true
		}
	}
	return MBRBBoundary{}, false
}
