package feasibility_test

import (
	"os"
	"strconv"
	"testing"

	"rmt/internal/core"
	"rmt/internal/eval"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/zcpa"
)

// TestIncrementalMatchesFreshAcrossChurn is the churn differential: over
// every feasibility fixture, CHURN_CHAINS (default 100) seeded random
// delta chains are applied step by step, and at every revision the
// incremental RMT-cut and 𝒵-pp-cut checkers must return exactly the fresh
// enumeration's verdict; incremental witnesses must independently verify.
// Chain seeds come from the eval.TrialSeed splitmix64 streams (stream =
// fixture index), so a failure replays from (fixture, chain) alone.
//
// `make churnfuzz` scales the sweep up via CHURN_CHAINS / CHURN_STEPS.
func TestIncrementalMatchesFreshAcrossChurn(t *testing.T) {
	chains := envInt(t, "CHURN_CHAINS", 100)
	steps := envInt(t, "CHURN_STEPS", 6)
	levels := gen.Levels()
	for fi, f := range feasibility.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for chain := 0; chain < chains; chain++ {
				level := levels[chain%len(levels)]
				seed := eval.TrialSeed(2016, fi, chain)
				base, err := f.Build(level)
				if err != nil {
					t.Fatalf("chain %d: %v", chain, err)
				}
				deltas, err := gen.RandomDeltaChain(base, level, steps, seed)
				if err != nil {
					t.Fatalf("chain %d (seed %d): %v", chain, seed, err)
				}
				incRMT := core.NewIncrementalCut()
				incZpp := zcpa.NewIncrementalCut()
				cur := base
				for rev := 0; rev <= len(deltas); rev++ {
					if rev > 0 {
						cur, err = gen.ApplyDelta(cur, deltas[rev-1], level)
						if err != nil {
							t.Fatalf("chain %d rev %d (seed %d): %v", chain, rev, seed, err)
						}
					}
					freshRMT, freshFoundRMT := core.FindRMTCut(cur)
					incW, incFound := incRMT.Check(cur)
					if incFound != freshFoundRMT {
						t.Fatalf("chain %d rev %d (seed %d, level %s): incremental RMT-cut verdict %v != fresh %v",
							chain, rev, seed, level, incFound, freshFoundRMT)
					}
					if incFound {
						if err := core.VerifyRMTCut(cur, incW); err != nil {
							t.Fatalf("chain %d rev %d (seed %d): incremental RMT witness invalid: %v", chain, rev, seed, err)
						}
						if err := core.VerifyRMTCut(cur, freshRMT); err != nil {
							t.Fatalf("chain %d rev %d (seed %d): fresh RMT witness invalid: %v", chain, rev, seed, err)
						}
					}
					freshZpp, freshFoundZpp := zcpa.FindRMTZppCut(cur)
					incZ, incFoundZ := incZpp.Check(cur)
					if incFoundZ != freshFoundZpp {
						t.Fatalf("chain %d rev %d (seed %d, level %s): incremental 𝒵-pp verdict %v != fresh %v",
							chain, rev, seed, level, incFoundZ, freshFoundZpp)
					}
					if incFoundZ {
						if err := zcpa.VerifyZppCut(cur, incZ); err != nil {
							t.Fatalf("chain %d rev %d (seed %d): incremental 𝒵-pp witness invalid: %v", chain, rev, seed, err)
						}
						if err := zcpa.VerifyZppCut(cur, freshZpp); err != nil {
							t.Fatalf("chain %d rev %d (seed %d): fresh 𝒵-pp witness invalid: %v", chain, rev, seed, err)
						}
					}
				}
				// The chain's key sequence must never collide with the base
				// key: cached step verdicts can't evict or shadow the base.
				for i, k := range instance.ChainKeys(base, deltas) {
					if k == base.CanonicalKey() {
						t.Fatalf("chain %d: chain key %d equals the base canonical key", chain, i)
					}
				}
			}
		})
	}
}

func envInt(t *testing.T, name string, def int) int {
	t.Helper()
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		t.Fatalf("%s=%q: want a positive integer", name, s)
	}
	return n
}
