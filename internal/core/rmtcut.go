package core

import (
	"context"
	"fmt"

	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// RMTCut is a witness for Definition 3: a cut C = C1 ∪ C2 separating D
// from R with C1 ∈ 𝒵 and C2 ∩ V(γ(B)) ∈ Z_B, where B is the connected
// component of R in G − C and Z_B = ⊕_{v∈B} Z_v. Its existence is the tight
// impossibility condition for RMT in the partial knowledge model
// (Theorems 3 and 5).
type RMTCut struct {
	C1, C2 nodeset.Set
	B      nodeset.Set
}

// Cut returns C1 ∪ C2.
func (c RMTCut) Cut() nodeset.Set { return c.C1.Union(c.C2) }

func (c RMTCut) String() string {
	return fmt.Sprintf("RMTCut(C1=%v, C2=%v, B=%v)", c.C1, c.C2, c.B)
}

// FindRMTCut searches the instance for an RMT-cut, returning a witness if
// one exists.
//
// Completeness of the search (DESIGN.md §4): for any RMT-cut C with
// receiver component B, the boundary N(B) is itself an RMT-cut witness for
// the same B — C1 may be replaced by N(B) ∩ M for the maximal M ∈ 𝒵
// covering it (monotone), and shrinking C2 only shrinks C2 ∩ V(γ(B))
// (monotone again). So enumerating connected receiver-side candidates B
// with C = N(B), against every maximal M, is exhaustive.
func FindRMTCut(in *instance.Instance) (RMTCut, bool) {
	cut, found, _ := FindRMTCutBounded(in, 0)
	return cut, found
}

// FindRMTCutBounded is FindRMTCut with a search budget: at most
// maxCandidates receiver-side candidates are inspected (0 = unlimited).
// complete reports whether the search space was fully covered; when it is
// false and found is false, the instance's status is unknown — larger
// graphs can use this as an anytime check. A found witness is always
// genuine regardless of completeness (VerifyRMTCut accepts it).
func FindRMTCutBounded(in *instance.Instance, maxCandidates int) (witness RMTCut, found, complete bool) {
	witness, found, complete, _ = findRMTCut(context.Background(), in, maxCandidates)
	return witness, found, complete
}

// FindRMTCutCtx is FindRMTCut under a context: the enumeration polls
// ctx.Err() once per receiver-side candidate and aborts with the context's
// error, so a caller-imposed deadline or cancellation stops the
// (worst-case exponential) search promptly instead of letting it run to
// completion. A found witness is always genuine.
func FindRMTCutCtx(ctx context.Context, in *instance.Instance) (RMTCut, bool, error) {
	witness, found, _, err := findRMTCut(ctx, in, 0)
	return witness, found, err
}

func findRMTCut(ctx context.Context, in *instance.Instance, maxCandidates int) (witness RMTCut, found, complete bool, err error) {
	if !in.G.Connected(in.Dealer, in.Receiver) {
		return RMTCut{
			C1: nodeset.Empty(),
			C2: nodeset.Empty(),
			B:  in.G.ComponentOf(in.Receiver),
		}, true, true, nil
	}
	inspected := 0
	complete = true
	in.G.ReceiverSideCandidates(in.Dealer, in.Receiver, func(b, cut nodeset.Set) bool {
		if err = ctx.Err(); err != nil {
			complete = false
			return false
		}
		if maxCandidates > 0 && inspected >= maxCandidates {
			complete = false
			return false
		}
		inspected++
		vgb := in.JointViewNodes(b)
		zb := in.JointStructure(b)
		for _, m := range in.Z.Maximal() {
			c2 := cut.Minus(m)
			if zb.Contains(c2.Intersect(vgb)) {
				witness = RMTCut{C1: cut.Intersect(m), C2: c2, B: b}
				found = true
				return false
			}
		}
		return true
	})
	return witness, found, complete, err
}

// Solvable reports whether RMT is solvable on the instance, by the tight
// condition of Theorems 3 and 5 (no RMT-cut). By Theorem 5 this is exactly
// when RMT-PKA succeeds, which Resilient verifies operationally; the two
// must always agree, and the test suite and experiment E2 assert they do.
func Solvable(in *instance.Instance) bool {
	_, found := FindRMTCut(in)
	return !found
}
