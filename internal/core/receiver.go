package core

import (
	"sort"
	"strconv"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// maxSearchIDs bounds the receiver's full-set subset search. Beyond this
// many known node IDs the receiver only attempts the canonical
// all-information candidate (which is the one that fires in honest and
// silent-adversary runs); the exhaustive fallback would be intractable
// anyway, matching the protocol's inherently super-polynomial local
// computation (Section 5 of the paper).
const maxSearchIDs = 22

// Memoization bounds for the receiver's decision subroutine. Entries are
// keyed by the exact claim versions of a candidate message set, so they
// never need invalidation (a new claim version is a new key); the caps only
// bound memory against adversaries that spray versions.
const (
	// maxMemoEntries caps the number of memoized candidate message sets.
	maxMemoEntries = 1 << 14
	// maxMemoPaths caps the stored D–R path keys per candidate; candidates
	// with more paths keep their decision graph but re-stream enumeration.
	maxMemoPaths = 2048
)

// candidateMemo caches the claim-version-determined parts of the full
// message set rule for one candidate M: the decision graph G_M, its D–R
// path set, and the adversary-cover verdict. Only fullness — membership of
// each path in the growing type-1 store — depends on later messages, so it
// is the only part re-evaluated per call.
type candidateMemo struct {
	gm       *graph.Graph // decision graph; nil if D or R missing from G_M
	pathKeys []string     // keys of all D–R paths, unless overflowed
	hasPath  bool
	overflow bool // more than maxMemoPaths paths: re-stream instead
	cover    int8 // 0 = not yet checked, 1 = has cover, 2 = no cover
}

// Receiver is RMT-PKA's receiver process. It accumulates both message
// types and evaluates the decision subroutine after every round:
//
//	(* dealer propagation rule *)    decide x_D received directly from D;
//	(* full message set rule *)      decide x if some valid, full message
//	                                 set M with value(M) = x has no
//	                                 adversary cover.
type Receiver struct {
	id     int
	dealer int

	// type1[x][pathKey] records a received type-1 message (x, p).
	type1 map[network.Value]map[string]graph.Path
	// type2[node][versionKey] records a received type-2 claim about node.
	type2 map[int]map[string]NodeInfo
	// own is R's own initial knowledge, implicitly part of every M.
	own NodeInfo

	decided bool
	value   network.Value
	dirty   bool // new messages since the last search
	horizon int  // Horizon-PKA bound on D–R path length in nodes; 0 = off

	// Incrementally maintained search inputs (hoisted out of searchDecision).
	values   []network.Value // distinct type-1 values, sorted
	knownIDs []int           // claimed nodes plus r.id, sorted

	// Decision-subroutine memoization (see candidateMemo).
	verIdx     map[string]int // claim version key → dense intern index
	memo       map[string]*candidateMemo
	scratchIDs []int
	nomemo     bool // Options.DisableMemo
}

// NewReceiver builds the receiver process for the instance.
func NewReceiver(in *instance.Instance) *Receiver {
	r := &Receiver{
		id:       in.Receiver,
		dealer:   in.Dealer,
		type1:    make(map[network.Value]map[string]graph.Path),
		type2:    make(map[int]map[string]NodeInfo),
		own:      trueInfo(in, in.Receiver),
		knownIDs: []int{in.Receiver},
		verIdx:   make(map[string]int),
		memo:     make(map[string]*candidateMemo),
	}
	r.internVersion(r.own.VersionKey())
	return r
}

// internVersion assigns a dense index to a claim version key, for compact
// candidate memo keys.
func (r *Receiver) internVersion(k string) int {
	if idx, ok := r.verIdx[k]; ok {
		return idx
	}
	idx := len(r.verIdx)
	r.verIdx[k] = idx
	return idx
}

// Init implements network.Process: R announces nothing (Protocol 1 gives R
// no send code).
func (r *Receiver) Init(network.Outbox) {}

// Round implements network.Process.
func (r *Receiver) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	if r.decided {
		return false
	}
	for _, m := range inbox {
		r.ingest(m)
	}
	if r.decided { // dealer rule fired during ingestion
		return false
	}
	if r.dirty {
		r.dirty = false
		if x, ok := r.searchDecision(); ok {
			r.decided, r.value = true, x
			return false
		}
	}
	return true
}

// Decision implements network.Process.
func (r *Receiver) Decision() (network.Value, bool) { return r.value, r.decided }

// ingest validates a message's trail against the authenticated channel and
// records it. Trails that already contain R, or whose tail is not the
// actual sender, are forged (R relays nothing) and are discarded — the same
// admission rule the relays apply, which Theorem 4's safety argument needs.
func (r *Receiver) ingest(m network.Message) {
	trail, _, ok := relayable(m.Payload)
	if !ok {
		return // erroneous message
	}
	if len(trail) == 0 || trail.Contains(r.id) || trail.Tail() != m.From {
		return
	}
	switch msg := m.Payload.(type) {
	case ValueMsg:
		// Dealer propagation rule: a direct (x_D, {D}) from D itself.
		if m.From == r.dealer && len(msg.P) == 1 && msg.P[0] == r.dealer {
			r.decided, r.value = true, msg.X
			return
		}
		byPath, ok := r.type1[msg.X]
		if !ok {
			byPath = make(map[string]graph.Path)
			r.type1[msg.X] = byPath
			r.values = insertSortedValue(r.values, msg.X)
		}
		// The trail ends at the sender; the D–R path it witnesses is the
		// trail extended by R itself, which is what fullness matches on.
		full := msg.P.Append(r.id)
		k := pathKey(full)
		if _, dup := byPath[k]; !dup {
			byPath[k] = full
			r.dirty = true
		}
	case InfoMsg:
		byVersion, ok := r.type2[msg.Info.Node]
		if !ok {
			byVersion = make(map[string]NodeInfo)
			r.type2[msg.Info.Node] = byVersion
			if msg.Info.Node != r.id {
				r.knownIDs = insertSortedInt(r.knownIDs, msg.Info.Node)
			}
		}
		k := msg.Info.VersionKey()
		if _, dup := byVersion[k]; !dup {
			// Seal the stored copy so every later VersionKey call — claim
			// combos, candidate memo keys — reuses the rendered string.
			ni := msg.Info
			ni.key = k
			byVersion[k] = ni
			r.internVersion(k)
			r.dirty = true
		}
	}
}

// searchDecision implements the full message set propagation rule: it
// searches for a valid M = (claims, x) that is full and has no adversary
// cover. It first tries the canonical candidate that includes every known
// node (the one that fires against silent adversaries, per the Theorem 5
// sufficiency proof), then falls back to an exhaustive search over node
// subsets and claim versions.
func (r *Receiver) searchDecision() (network.Value, bool) {
	if _, haveDealer := r.type2[r.dealer]; !haveDealer {
		return "", false // G_M cannot contain D–R paths without D's info
	}
	values := r.values
	if len(values) == 0 {
		return "", false
	}

	ids := r.knownIDs
	// Canonical candidate: all known nodes, when every claim is
	// uncontested (one version per node).
	if claims, ok := r.uncontestedClaims(ids); ok {
		for _, x := range values {
			if r.fullAndUncovered(claims, x) {
				return x, true
			}
		}
	}
	if len(ids) > maxSearchIDs {
		return "", false
	}

	// Exhaustive fallback: subsets S ∋ D, R of the known IDs, larger sets
	// first, with every combination of claim versions for contested nodes.
	optional := make([]int, 0, len(ids))
	for _, id := range ids {
		if id != r.dealer && id != r.id {
			optional = append(optional, id)
		}
	}
	for size := len(optional); size >= 0; size-- {
		var found network.Value
		ok := false
		forEachSubsetOfSize(optional, size, func(subset []int) bool {
			members := append([]int{r.dealer, r.id}, subset...)
			claimsSet := r.claimVersions(members)
			forEachClaimCombo(members, claimsSet, func(claims map[int]NodeInfo) bool {
				for _, x := range values {
					if r.fullAndUncovered(claims, x) {
						found, ok = x, true
						return false
					}
				}
				return true
			})
			return !ok
		})
		if ok {
			return found, true
		}
	}
	return "", false
}

// insertSortedValue inserts x into sorted vals if absent (callers only call
// it for new values, but the guard keeps it idempotent).
func insertSortedValue(vals []network.Value, x network.Value) []network.Value {
	i := sort.Search(len(vals), func(i int) bool { return vals[i] >= x })
	if i < len(vals) && vals[i] == x {
		return vals
	}
	vals = append(vals, "")
	copy(vals[i+1:], vals[i:])
	vals[i] = x
	return vals
}

// insertSortedInt inserts id into sorted ids if absent.
func insertSortedInt(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// uncontestedClaims assembles one claim per node if no node is contested.
func (r *Receiver) uncontestedClaims(ids []int) (map[int]NodeInfo, bool) {
	claims := make(map[int]NodeInfo, len(ids))
	for _, id := range ids {
		if id == r.id {
			claims[id] = r.own
			continue
		}
		versions := r.type2[id]
		if len(versions) != 1 {
			return nil, false
		}
		for _, ni := range versions {
			claims[id] = ni
		}
	}
	return claims, true
}

// claimVersions lists the available versions per member, in a canonical
// order.
func (r *Receiver) claimVersions(members []int) map[int][]NodeInfo {
	out := make(map[int][]NodeInfo, len(members))
	for _, id := range members {
		if id == r.id {
			out[id] = []NodeInfo{r.own}
			continue
		}
		versions := r.type2[id]
		keys := make([]string, 0, len(versions))
		for k := range versions {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		list := make([]NodeInfo, 0, len(keys))
		for _, k := range keys {
			list = append(list, versions[k])
		}
		out[id] = list
	}
	return out
}

// fullAndUncovered checks Definitions 5 and 6 for the candidate M given by
// the claims and the value x: every D–R path of G_M must have been received
// as a type-1 message carrying x, and no adversary cover may exist.
//
// G_M, its D–R path set, and the cover verdict are functions of the exact
// claim versions alone, so they are memoized per candidate (candidateMemo)
// and shared across rounds and values of x; only fullness — a membership
// test against the growing type-1 store — is re-evaluated each call.
func (r *Receiver) fullAndUncovered(claims map[int]NodeInfo, x network.Value) bool {
	if r.nomemo {
		return r.fullAndUncoveredFresh(claims, x)
	}
	e := r.candidate(claims)
	if e == nil { // memo at capacity: compute without caching
		return r.fullAndUncoveredFresh(claims, x)
	}
	if e.gm == nil || !e.hasPath {
		// With no D–R path the empty set is an adversary cover, so a
		// pathless M never certifies.
		return false
	}
	received := r.type1[x]
	if e.overflow {
		full := true
		e.gm.AllPaths(r.dealer, r.id, nodeset.Empty(), func(p graph.Path) bool {
			if _, ok := received[pathKey(p)]; !ok {
				full = false
				return false
			}
			return true
		})
		if !full {
			return false
		}
	} else {
		for _, k := range e.pathKeys {
			if _, ok := received[k]; !ok {
				return false
			}
		}
	}
	if e.cover == 0 {
		if hasAdversaryCover(e.gm, claims, r.dealer, r.id) {
			e.cover = 1
		} else {
			e.cover = 2
		}
	}
	return e.cover == 2
}

// fullAndUncoveredFresh is the memo-free evaluation (DisableMemo, or memo
// at capacity).
func (r *Receiver) fullAndUncoveredFresh(claims map[int]NodeInfo, x network.Value) bool {
	gm := r.decisionGraph(claims)
	if gm == nil {
		return false
	}
	received := r.type1[x]
	full := true
	hasPath := false
	gm.AllPaths(r.dealer, r.id, nodeset.Empty(), func(p graph.Path) bool {
		hasPath = true
		if _, ok := received[pathKey(p)]; !ok {
			full = false
			return false
		}
		return true
	})
	if !full || !hasPath {
		return false
	}
	return !hasAdversaryCover(gm, claims, r.dealer, r.id)
}

// decisionGraph builds the graph the full-set rule is evaluated on: G_M,
// restricted to the horizon span under Horizon-PKA. It returns nil when D
// or R is missing (no candidate can certify).
func (r *Receiver) decisionGraph(claims map[int]NodeInfo) *graph.Graph {
	gm := graphOfClaims(claims)
	if !gm.HasNode(r.dealer) || !gm.HasNode(r.id) {
		return nil
	}
	if r.horizon > 0 {
		// Horizon-PKA: evaluate the rule on the subgraph of G_M spanned by
		// D–R paths of at most Horizon nodes. The Theorem 4 safety
		// argument is parametric in this graph; fullness still quantifies
		// over ALL its D–R paths, so combination paths longer than the
		// horizon (which relays never deliver) block decisions rather than
		// weaken safety.
		span := gm.BoundedPathSpan(r.dealer, r.id, r.horizon)
		gm = gm.InducedSubgraph(span)
		if !gm.HasNode(r.dealer) || !gm.HasNode(r.id) {
			return nil
		}
	}
	return gm
}

// claimsKey canonically encodes a candidate's exact claim versions using the
// interned version indices: "node:version;" per member in increasing node
// order.
func (r *Receiver) claimsKey(claims map[int]NodeInfo) string {
	ids := r.scratchIDs[:0]
	for id := range claims {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	r.scratchIDs = ids
	var b strings.Builder
	b.Grow(len(ids) * 8)
	for _, id := range ids {
		b.WriteString(strconv.Itoa(id))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(r.internVersion(claims[id].VersionKey())))
		b.WriteByte(';')
	}
	return b.String()
}

// candidate returns the memo entry for the claims, building it on first
// encounter. It returns nil when the memo is at capacity and the candidate
// is unknown.
func (r *Receiver) candidate(claims map[int]NodeInfo) *candidateMemo {
	k := r.claimsKey(claims)
	if e, ok := r.memo[k]; ok {
		return e
	}
	if len(r.memo) >= maxMemoEntries {
		return nil
	}
	e := &candidateMemo{gm: r.decisionGraph(claims)}
	if e.gm != nil {
		e.gm.AllPaths(r.dealer, r.id, nodeset.Empty(), func(p graph.Path) bool {
			e.hasPath = true
			if len(e.pathKeys) >= maxMemoPaths {
				e.overflow = true
				e.pathKeys = nil
				return false
			}
			e.pathKeys = append(e.pathKeys, pathKey(p))
			return true
		})
	}
	r.memo[k] = e
	return e
}

// graphOfClaims builds G_M: the union of the claimed views γ(V_M), induced
// on the claimed node set V_M.
func graphOfClaims(claims map[int]NodeInfo) *graph.Graph {
	vm := nodeset.Empty()
	for id := range claims {
		vm = vm.Add(id)
	}
	joint := graph.New()
	// Deterministic union order.
	ids := vm.Members()
	for _, id := range ids {
		joint = joint.Union(claims[id].View)
	}
	return joint.InducedSubgraph(vm)
}

// hasAdversaryCover checks Definition 6: some cut C of G_M between D and R
// with C ∩ V(γ(B)) ∈ Z_B, where B is the receiver-side component and both
// γ(B) and Z_B are computed from the claims in M. Minimal cuts C = N(B)
// per receiver-side candidate B are sufficient (the membership condition is
// monotone-decreasing in C).
//
// The enumeration grows candidates B one node at a time, so both ⊕-folds
// Z_B and view-node unions V(γ(B)) are computed through semilattice caches:
// each candidate pays one ⊕ and one union on top of its parent's fold.
func hasAdversaryCover(gm *graph.Graph, claims map[int]NodeInfo, dealer, receiver int) bool {
	joints := adversary.NewJoinCacheFunc(func(v int) (adversary.Restricted, bool) {
		ni, ok := claims[v]
		return ni.Z, ok
	})
	views := nodeset.NewUnionCache(func(v int) nodeset.Set {
		if ni, ok := claims[v]; ok {
			return ni.View.Nodes()
		}
		return nodeset.Empty()
	})
	covered := false
	gm.ReceiverSideCandidates(dealer, receiver, func(b, cut nodeset.Set) bool {
		zb := joints.JointOf(b)
		if zb.Contains(cut.Intersect(views.Of(b))) {
			covered = true
			return false
		}
		return true
	})
	return covered
}

// forEachSubsetOfSize enumerates size-k subsets of items in a stable order.
func forEachSubsetOfSize(items []int, k int, fn func(subset []int) bool) {
	n := len(items)
	if k > n {
		return
	}
	subset := make([]int, 0, k)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(subset) == k {
			return fn(subset)
		}
		// Not enough items left to finish the subset.
		for i := start; i <= n-(k-len(subset)); i++ {
			subset = append(subset, items[i])
			cont := rec(i + 1)
			subset = subset[:len(subset)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
}

// forEachClaimCombo enumerates every combination of claim versions for the
// given members.
func forEachClaimCombo(members []int, versions map[int][]NodeInfo, fn func(claims map[int]NodeInfo) bool) {
	claims := make(map[int]NodeInfo, len(members))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(members) {
			return fn(claims)
		}
		id := members[i]
		for _, ni := range versions[id] {
			claims[id] = ni
			if !rec(i + 1) {
				return false
			}
		}
		delete(claims, id)
		return true
	}
	rec(0)
}
