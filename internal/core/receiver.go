package core

import (
	"encoding/binary"
	"sort"
	"strconv"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// maxSearchIDs bounds the receiver's full-set subset search. Beyond this
// many known node IDs the receiver only attempts the canonical
// all-information candidate (which is the one that fires in honest and
// silent-adversary runs); the exhaustive fallback would be intractable
// anyway, matching the protocol's inherently super-polynomial local
// computation (Section 5 of the paper).
const maxSearchIDs = 22

// Memoization bounds for the receiver's decision subroutine. Entries are
// keyed by the exact claim versions of a candidate message set, so they
// never need invalidation (a new claim version is a new key); the caps only
// bound memory against adversaries that spray versions.
const (
	// maxMemoEntries caps the number of memoized candidate message sets.
	maxMemoEntries = 1 << 14
	// maxMemoPaths caps the interned D–R paths per candidate; candidates
	// with more paths keep their decision graph but re-stream enumeration.
	maxMemoPaths = 2048
)

// claimVer is one stored version of a type-2 claim: the sealed claim plus
// its interned version ID (-1 when the intern table was full, in which case
// candidates naming this version are evaluated fresh, uncached).
type claimVer struct {
	info NodeInfo
	vid  int32
}

// valState is the packed type-1 store for one claimed value x: the set of
// interned IDs of received D–R paths, plus an unpacked overflow list for
// paths that could not be interned (table at capacity, or node IDs outside
// the dense range).
type valState struct {
	x    network.Value
	recv nodeset.Set
	over []overPath
}

// overPath is one un-interned received path. fits records whether nodes is
// meaningful (false for paths naming IDs outside the dense range, which the
// candidate pre-filter must then pass conservatively).
type overPath struct {
	key   string
	nodes nodeset.Set
	fits  bool
}

// vpair is a (node, version) pair of a candidate memo key.
type vpair struct {
	id  int
	vid int32
}

// Receiver is RMT-PKA's receiver process. It accumulates both message
// types and evaluates the decision subroutine after every round:
//
//	(* dealer propagation rule *)    decide x_D received directly from D;
//	(* full message set rule *)      decide x if some valid, full message
//	                                 set M with value(M) = x has no
//	                                 adversary cover.
//
// All hot-path state is packed: received D–R paths and claim versions are
// interned into small ints at ingest, so per-round fullness checks are
// bitset subset tests and candidate memo probes are byte-key map lookups
// instead of rendered-string comparisons. When built through NewProcesses
// without Options.DisableMemo, the intern tables and candidate records live
// on the instance (pkaShared) and stay warm across runs.
type Receiver struct {
	id     int
	dealer int

	// own is R's own initial knowledge, implicitly part of every M.
	own      NodeInfo
	ownClaim claimVer

	decided bool
	value   network.Value
	dirty   bool // new messages since the last search
	horizon int  // Horizon-PKA bound on D–R path length in nodes; 0 = off
	nomemo  bool // Options.DisableMemo: evaluate everything fresh

	// Interners and the candidate-record store. Instance-scoped when the
	// receiver was built with a pkaShared, run-scoped otherwise; store is
	// nil under DisableMemo (every candidate evaluated fresh).
	paths *pathInterner
	vers  *verInterner
	store *candStore

	// vals[i] packs the received type-1 messages for one value, ascending.
	vals []*valState
	// claims maps a claimed node to its received versions, sorted by
	// version key — the canonical enumeration order of the claim-combo
	// search. Claims about R itself are dropped at ingest: every candidate
	// substitutes R's own knowledge for its member slot, so they can never
	// influence a decision.
	claims map[int][]claimVer

	// Incrementally maintained search inputs.
	knownIDs    []int       // claimed nodes plus r.id, sorted
	knownSet    nodeset.Set // same, as a bitset (dense IDs only)
	knownSparse bool        // some claimed node fell outside the dense range
	contested   int         // claimed nodes with ≥ 2 versions

	// verSlab backs the single-version common case of claims: first
	// versions are appended here and each node's slice points into it, so a
	// run allocates one arena instead of one slice per claimed node.
	// Contested nodes grow past their capacity-1 sub-slice and migrate to
	// their own backing automatically.
	verSlab []claimVer

	// Run-level cover-search caches, valid for candidates whose members all
	// have a single claim version (then Z_v and γ(v) per member are stable
	// for the rest of the run: a second version would make the node
	// contested and exclude it from every all-unique candidate, so stale
	// folds are never re-queried). Contested combos get fresh caches.
	joints *adversary.JoinCache
	views  *nodeset.UnionCache

	// Reused scratch buffers (per-run; grown once, then allocation-free).
	keyBuf         []byte
	candKey        []byte
	memberSet      nodeset.Set
	membersScratch []int
	optScratch     []int
	comboScratch   []claimVer
	pairScratch    []vpair
	passVals       []*valState
	pnodes         []nodeset.Set // interner node-set snapshot per search
}

// NewReceiver builds a cold receiver process for the instance: run-scoped
// intern tables, default options. NewProcesses builds warm receivers that
// share state across runs via the instance.
func NewReceiver(in *instance.Instance) *Receiver {
	return newReceiver(in, nil, Options{})
}

func newReceiver(in *instance.Instance, sh *pkaShared, opts Options) *Receiver {
	n := in.N()
	r := &Receiver{
		id:       in.Receiver,
		dealer:   in.Dealer,
		claims:   make(map[int][]claimVer, n),
		knownIDs: make([]int, 1, n+1),
		verSlab:  make([]claimVer, 0, n),
		horizon:  opts.Horizon,
		nomemo:   opts.DisableMemo,
	}
	r.knownIDs[0] = in.Receiver
	if sh != nil {
		r.own = sh.infos[in.Receiver]
		r.paths = &sh.paths
		r.vers = &sh.vers
		r.store = sh.storeFor(opts.Horizon)
	} else {
		r.own = trueInfo(in, in.Receiver)
		r.paths = &pathInterner{}
		if !r.nomemo {
			r.vers = &verInterner{}
			r.store = &candStore{}
		}
	}
	ownVid := int32(-1)
	if r.vers != nil {
		if v, ok := r.vers.intern(r.own.VersionKey()); ok {
			ownVid = v
		}
	}
	r.ownClaim = claimVer{info: r.own, vid: ownVid}
	r.knownSet.MutateAdd(r.id)
	return r
}

// Init implements network.Process: R announces nothing (Protocol 1 gives R
// no send code).
func (r *Receiver) Init(network.Outbox) {}

// Round implements network.Process.
func (r *Receiver) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	if r.decided {
		return false
	}
	for _, m := range inbox {
		r.ingest(m)
	}
	if r.decided { // dealer rule fired during ingestion
		return false
	}
	if r.dirty {
		r.dirty = false
		if x, ok := r.searchDecision(); ok {
			r.decided, r.value = true, x
			return false
		}
	}
	return true
}

// Decision implements network.Process.
func (r *Receiver) Decision() (network.Value, bool) { return r.value, r.decided }

// ingest validates a message's trail against the authenticated channel and
// records it. Trails that already contain R, or whose tail is not the
// actual sender, are forged (R relays nothing) and are discarded — the same
// admission rule the relays apply, which Theorem 4's safety argument needs.
func (r *Receiver) ingest(m network.Message) {
	trail, _, ok := relayable(m.Payload)
	if !ok {
		return // erroneous message
	}
	if len(trail) == 0 || trail.Contains(r.id) || trail.Tail() != m.From {
		return
	}
	switch msg := m.Payload.(type) {
	case ValueMsg:
		// Dealer propagation rule: a direct (x_D, {D}) from D itself.
		if m.From == r.dealer && len(msg.P) == 1 && msg.P[0] == r.dealer {
			r.decided, r.value = true, msg.X
			return
		}
		r.ingestValue(msg)
	case InfoMsg:
		r.ingestInfo(msg.Info)
	}
}

// ingestValue records a type-1 message. The D–R path it witnesses is the
// trail extended by R itself, which is what fullness matches on; the path
// is interned so the hot store is a bitset of path IDs. The full path is
// only materialized on an intern-table miss.
func (r *Receiver) ingestValue(msg ValueMsg) {
	vs := r.valOf(msg.X)
	r.keyBuf = appendPathKey(r.keyBuf[:0], msg.P)
	r.keyBuf = append(r.keyBuf, ',')
	r.keyBuf = strconv.AppendInt(r.keyBuf, int64(r.id), 10)
	if pid, ok := r.paths.lookup(r.keyBuf); ok {
		if !vs.recv.Contains(int(pid)) {
			vs.recv.MutateAdd(int(pid))
			r.dirty = true
		}
		return
	}
	full := msg.P.Append(r.id)
	if pid, ok := r.paths.intern(r.keyBuf, full); ok {
		// Not a duplicate: the key was absent from the intern table, and a
		// path this run already received would be either interned or on the
		// overflow list — and the table never loses entries once full.
		vs.recv.MutateAdd(int(pid))
		r.dirty = true
		return
	}
	// Interner at capacity, or the path names IDs outside the dense range:
	// unpacked fallback keyed by the rendered path.
	if overHas(vs.over, r.keyBuf) {
		return
	}
	ns, fits := pathNodeSet(full)
	vs.over = append(vs.over, overPath{key: string(r.keyBuf), nodes: ns, fits: fits})
	r.dirty = true
}

// ingestInfo records a type-2 claim version and maintains the incremental
// search inputs: the known-ID set and the contested count.
func (r *Receiver) ingestInfo(info NodeInfo) {
	node := info.Node
	if node == r.id {
		// Every candidate substitutes R's own knowledge for its member
		// slot, so claims about R are inert; drop them instead of storing.
		return
	}
	vers, seen := r.claims[node]
	if !seen {
		r.knownIDs = insertSortedInt(r.knownIDs, node)
		if node >= 0 && node < maxDenseID {
			r.knownSet.MutateAdd(node)
		} else {
			r.knownSparse = true
		}
	}
	k := info.VersionKey()
	i := sort.Search(len(vers), func(i int) bool { return vers[i].info.VersionKey() >= k })
	if i < len(vers) && vers[i].info.VersionKey() == k {
		return // duplicate version
	}
	// Seal the stored copy so every later VersionKey call — claim combos,
	// candidate memo keys — reuses the rendered string.
	ni := info
	ni.key = k
	vid := int32(-1)
	if r.vers != nil {
		if v, ok := r.vers.intern(k); ok {
			vid = v
		}
	}
	cv := claimVer{info: ni, vid: vid}
	if !seen && len(r.verSlab) < cap(r.verSlab) {
		// Common case: first (and usually only) version of a node goes into
		// the shared arena; the capped sub-slice keeps later appends for
		// other nodes from clobbering it.
		r.verSlab = append(r.verSlab, cv)
		vers = r.verSlab[len(r.verSlab)-1 : len(r.verSlab) : len(r.verSlab)]
	} else {
		vers = append(vers, claimVer{})
		copy(vers[i+1:], vers[i:])
		vers[i] = cv
	}
	r.claims[node] = vers
	if len(vers) == 2 {
		r.contested++
	}
	r.dirty = true
}

// valOf returns the packed store for value x, inserting it in sorted
// position on first sight.
func (r *Receiver) valOf(x network.Value) *valState {
	i := sort.Search(len(r.vals), func(i int) bool { return r.vals[i].x >= x })
	if i < len(r.vals) && r.vals[i].x == x {
		return r.vals[i]
	}
	vs := &valState{x: x}
	r.vals = append(r.vals, nil)
	copy(r.vals[i+1:], r.vals[i:])
	r.vals[i] = vs
	return vs
}

// claimOf returns the claim version the canonical candidate uses for id.
// Only valid while no claim is contested.
func (r *Receiver) claimOf(id int) claimVer {
	if id == r.id {
		return r.ownClaim
	}
	return r.claims[id][0]
}

// searchDecision implements the full message set propagation rule: it
// searches for a valid M = (claims, x) that is full and has no adversary
// cover. It first tries the canonical candidate that includes every known
// node (the one that fires against silent adversaries, per the Theorem 5
// sufficiency proof), then falls back to an exhaustive search over node
// subsets and claim versions.
func (r *Receiver) searchDecision() (network.Value, bool) {
	if r.claims[r.dealer] == nil {
		return "", false // G_M cannot contain D–R paths without D's info
	}
	if len(r.vals) == 0 {
		return "", false
	}
	_, r.pnodes = r.paths.snapshot()

	ids := r.knownIDs
	// Canonical candidate: all known nodes, when every claim is
	// uncontested (one version per node).
	if r.contested == 0 {
		combo := r.comboScratch[:0]
		for _, id := range ids {
			combo = append(combo, r.claimOf(id))
		}
		r.comboScratch = combo
		if pass := r.passingValues(ids); len(pass) > 0 {
			if x, ok := r.evalCandidate(ids, combo, pass, true); ok {
				return x, true
			}
		}
	}
	if len(ids) > maxSearchIDs {
		return "", false
	}

	// Exhaustive fallback: subsets S ∋ D, R of the known IDs, larger sets
	// first, with every combination of claim versions for contested nodes.
	optional := r.optScratch[:0]
	for _, id := range ids {
		if id != r.dealer && id != r.id {
			optional = append(optional, id)
		}
	}
	r.optScratch = optional
	for size := len(optional); size >= 0; size-- {
		var found network.Value
		ok := false
		forEachSubsetOfSize(optional, size, func(subset []int) bool {
			members := append(r.membersScratch[:0], r.dealer, r.id)
			members = append(members, subset...)
			r.membersScratch = members
			pass := r.passingValues(members)
			if len(pass) == 0 {
				return true // no value can be full on these members
			}
			allUnique := len(r.claims[r.dealer]) == 1
			for _, id := range subset {
				if len(r.claims[id]) != 1 {
					allUnique = false
					break
				}
			}
			r.forEachCombo(members, func(combo []claimVer) bool {
				if x, got := r.evalCandidate(members, combo, pass, allUnique); got {
					found, ok = x, true
					return false
				}
				return true
			})
			return !ok
		})
		if ok {
			return found, true
		}
	}
	return "", false
}

// passingValues returns the type-1 values that could still certify a
// candidate on the given members, ascending. A candidate (M, x) is full
// only if every D–R path of G_M was received with x, and those paths run
// inside V(G_M) ⊆ members — so at least one received-x path must fit
// within the member set. Values with no fitting received path are filtered
// exactly (a candidate the unpacked search would have accepted is never
// skipped); when the member set cannot be packed (sparse IDs) or a received
// path is unpacked, the filter passes conservatively.
func (r *Receiver) passingValues(members []int) []*valState {
	pass := r.passVals[:0]
	dense := true
	r.memberSet.MutateClear()
	for _, id := range members {
		if id < 0 || id >= maxDenseID {
			dense = false
			break
		}
		r.memberSet.MutateAdd(id)
	}
	if !dense {
		pass = append(pass, r.vals...)
		r.passVals = pass
		return pass
	}
	for _, vs := range r.vals {
		fits := false
		vs.recv.ForEach(func(pid int) bool {
			if r.pnodes[pid].SubsetOf(r.memberSet) {
				fits = true
				return false
			}
			return true
		})
		if !fits {
			for i := range vs.over {
				if !vs.over[i].fits || vs.over[i].nodes.SubsetOf(r.memberSet) {
					fits = true
					break
				}
			}
		}
		if fits {
			pass = append(pass, vs)
		}
	}
	r.passVals = pass
	return pass
}

// forEachCombo enumerates every combination of claim versions for the
// members, in the canonical order: versions ascending by key, the last
// member varying fastest. The combo slice is reused across calls; fn must
// not retain it.
func (r *Receiver) forEachCombo(members []int, fn func(combo []claimVer) bool) {
	combo := r.comboScratch[:0]
	for range members {
		combo = append(combo, claimVer{})
	}
	r.comboScratch = combo
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(members) {
			return fn(combo)
		}
		if members[i] == r.id {
			combo[i] = r.ownClaim
			return rec(i + 1)
		}
		for _, cv := range r.claims[members[i]] {
			combo[i] = cv
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// evalCandidate checks Definitions 5 and 6 for the candidate M given by
// (members, combo) against each value in pass: every D–R path of G_M must
// have been received as a type-1 message carrying x, and no adversary cover
// may exist.
//
// G_M, its interned D–R path set, and the cover verdict are functions of
// the exact claim versions alone, so they live in a content-keyed candidate
// record shared across rounds — and, through pkaShared, across runs; only
// fullness (a bitset subset test against the growing type-1 store) is
// re-evaluated per call.
func (r *Receiver) evalCandidate(members []int, combo []claimVer, pass []*valState, allUnique bool) (network.Value, bool) {
	if r.nomemo || r.store == nil {
		return r.freshEval(members, combo, pass)
	}
	key, keyable := r.encodeCandKey(members, combo)
	if !keyable {
		return r.freshEval(members, combo, pass)
	}
	rec := r.store.get(key)
	if rec == nil {
		rec = r.buildRecord(members, combo)
		if stored := r.store.put(key, rec); stored != nil {
			rec = stored
		}
	}
	if rec.gm == nil || !rec.hasPath {
		// With no D–R path the empty set is an adversary cover, so a
		// pathless M never certifies.
		return "", false
	}
	for _, vs := range pass {
		if !r.recFull(rec, vs) {
			continue
		}
		c := rec.cover.Load()
		if c == 0 {
			if r.coverFor(rec.gm, members, combo, allUnique) {
				c = 1
			} else {
				c = 2
			}
			rec.cover.Store(c)
		}
		if c == 2 {
			return vs.x, true
		}
		break // covered: no value can certify this candidate
	}
	return "", false
}

// encodeCandKey packs the candidate's exact claim versions as
// (node, version) varint pairs in ascending node order. It reports false
// when any version is uninterned (table at capacity): such candidates are
// evaluated fresh, uncached.
func (r *Receiver) encodeCandKey(members []int, combo []claimVer) ([]byte, bool) {
	pairs := r.pairScratch[:0]
	for i, id := range members {
		if combo[i].vid < 0 {
			r.pairScratch = pairs
			return nil, false
		}
		pairs = append(pairs, vpair{id: id, vid: combo[i].vid})
	}
	for i := 1; i < len(pairs); i++ {
		p := pairs[i]
		j := i
		for j > 0 && pairs[j-1].id > p.id {
			pairs[j] = pairs[j-1]
			j--
		}
		pairs[j] = p
	}
	r.pairScratch = pairs
	k := r.candKey[:0]
	for _, p := range pairs {
		k = binary.AppendVarint(k, int64(p.id))
		k = binary.AppendUvarint(k, uint64(p.vid))
	}
	r.candKey = k
	return k, true
}

// buildRecord computes the claim-version-determined parts of the full-set
// rule for one candidate: G_M (restricted to the horizon span under
// Horizon-PKA), and its D–R paths interned into a bitset. Records are
// content-keyed and instance-scoped, so each distinct candidate is built
// once per instance, not per run or per round.
func (r *Receiver) buildRecord(members []int, combo []claimVer) *candRec {
	rec := &candRec{}
	gm := r.graphOfCombo(members, combo)
	if !gm.HasNode(r.dealer) || !gm.HasNode(r.id) {
		return rec
	}
	if r.horizon > 0 {
		// Horizon-PKA: evaluate the rule on the subgraph of G_M spanned by
		// D–R paths of at most Horizon nodes. The Theorem 4 safety
		// argument is parametric in this graph; fullness still quantifies
		// over ALL its D–R paths, so combination paths longer than the
		// horizon (which relays never deliver) block decisions rather than
		// weaken safety.
		span := gm.BoundedPathSpan(r.dealer, r.id, r.horizon)
		gm = gm.InducedSubgraph(span)
		if !gm.HasNode(r.dealer) || !gm.HasNode(r.id) {
			return rec
		}
	}
	rec.gm = gm
	count := 0
	gm.AllPaths(r.dealer, r.id, nodeset.Empty(), func(p graph.Path) bool {
		rec.hasPath = true
		count++
		if count > maxMemoPaths {
			rec.overflow = true
			return false
		}
		r.keyBuf = appendPathKey(r.keyBuf[:0], p)
		pid, ok := r.paths.lookup(r.keyBuf)
		if !ok {
			pid, ok = r.paths.intern(r.keyBuf, p)
		}
		if !ok {
			rec.overflow = true
			return false
		}
		rec.pathSet.MutateAdd(int(pid))
		return true
	})
	if rec.overflow {
		rec.pathSet = nodeset.Set{}
	}
	return rec
}

// graphOfCombo builds G_M: the union of the claimed views γ(V_M), induced
// on the claimed node set V_M.
func (r *Receiver) graphOfCombo(members []int, combo []claimVer) *graph.Graph {
	var vm nodeset.Set
	for _, id := range members {
		vm.MutateAdd(id)
	}
	joint := graph.New()
	// Deterministic union order (ascending by node ID).
	vm.ForEach(func(id int) bool {
		joint.UnionInPlace(r.comboView(members, combo, id))
		return true
	})
	return joint.InducedSubgraph(vm)
}

func (r *Receiver) comboView(members []int, combo []claimVer, id int) *graph.Graph {
	for i, m := range members {
		if m == id {
			return combo[i].info.View
		}
	}
	return graph.New()
}

// recFull checks fullness against the packed type-1 store: every D–R path
// of the candidate's decision graph must have been received with this
// value. The hot path is one bitset subset test; un-interned paths on
// either side fall back to key comparisons.
func (r *Receiver) recFull(rec *candRec, vs *valState) bool {
	if rec.overflow {
		full := true
		rec.gm.AllPaths(r.dealer, r.id, nodeset.Empty(), func(p graph.Path) bool {
			if !r.pathReceived(vs, p) {
				full = false
				return false
			}
			return true
		})
		return full
	}
	if rec.pathSet.SubsetOf(vs.recv) {
		return true
	}
	if len(vs.over) == 0 {
		return false
	}
	// Rare: a required interned path is missing from the packed store, but
	// may have been received while the intern table was already full and be
	// sitting on the overflow list under its rendered key.
	keys, _ := r.paths.snapshot()
	full := true
	rec.pathSet.ForEach(func(pid int) bool {
		if vs.recv.Contains(pid) {
			return true
		}
		if !overHasStr(vs.over, keys[pid]) {
			full = false
			return false
		}
		return true
	})
	return full
}

// pathReceived reports whether the exact path p was received with vs's
// value, checking both the interned store and the overflow list (a path may
// predate its interning, or never intern at all).
func (r *Receiver) pathReceived(vs *valState, p graph.Path) bool {
	r.keyBuf = appendPathKey(r.keyBuf[:0], p)
	if pid, ok := r.paths.lookup(r.keyBuf); ok && vs.recv.Contains(int(pid)) {
		return true
	}
	return overHas(vs.over, r.keyBuf)
}

func overHas(over []overPath, key []byte) bool {
	for i := range over {
		if over[i].key == string(key) {
			return true
		}
	}
	return false
}

func overHasStr(over []overPath, key string) bool {
	for i := range over {
		if over[i].key == key {
			return true
		}
	}
	return false
}

// coverFor checks Definition 6: some cut C of G_M between D and R with
// C ∩ V(γ(B)) ∈ Z_B, where B is the receiver-side component and both γ(B)
// and Z_B are computed from the claims in M. Minimal cuts C = N(B) per
// receiver-side candidate B are sufficient (the membership condition is
// monotone-decreasing in C).
//
// All-unique candidates share one JoinCache/UnionCache pair for the whole
// run (see the Receiver field docs for why that is sound); contested combos
// build fresh caches per call, like the unpacked search did.
func (r *Receiver) coverFor(gm *graph.Graph, members []int, combo []claimVer, allUnique bool) bool {
	if !allUnique {
		return coverFresh(gm, r.dealer, r.id, members, combo)
	}
	if r.joints == nil {
		r.joints = adversary.NewJoinCacheFunc(r.uniqueZ)
		r.views = nodeset.NewUnionCache(r.uniqueViewNodes)
	}
	covered := false
	gm.ReceiverSideCandidates(r.dealer, r.id, func(b, cut nodeset.Set) bool {
		zb := r.joints.JointOf(b)
		if zb.Contains(cut.Intersect(r.views.Of(b))) {
			covered = true
			return false
		}
		return true
	})
	return covered
}

// uniqueZ is the run-level cover cache's claim lookup: defined exactly for
// R itself and nodes with a single claim version. Cover candidates B are
// subsets of V(G_M) ⊆ members, which for all-unique candidates are exactly
// such nodes.
func (r *Receiver) uniqueZ(v int) (adversary.Restricted, bool) {
	if v == r.id {
		return r.own.Z, true
	}
	if vers := r.claims[v]; len(vers) == 1 {
		return vers[0].info.Z, true
	}
	return adversary.Restricted{}, false
}

func (r *Receiver) uniqueViewNodes(v int) nodeset.Set {
	if v == r.id {
		return r.own.View.Nodes()
	}
	if vers := r.claims[v]; len(vers) == 1 {
		return vers[0].info.View.Nodes()
	}
	return nodeset.Empty()
}

// coverFresh is the cache-free cover check, used for contested combos and
// under DisableMemo. The semilattice caches are per-call: the enumeration
// grows candidates B one node at a time, so each candidate still pays one
// ⊕ and one union on top of its parent's fold.
func coverFresh(gm *graph.Graph, dealer, receiver int, members []int, combo []claimVer) bool {
	claimAt := func(v int) (claimVer, bool) {
		for i, id := range members {
			if id == v {
				return combo[i], true
			}
		}
		return claimVer{}, false
	}
	joints := adversary.NewJoinCacheFunc(func(v int) (adversary.Restricted, bool) {
		cv, ok := claimAt(v)
		return cv.info.Z, ok
	})
	views := nodeset.NewUnionCache(func(v int) nodeset.Set {
		if cv, ok := claimAt(v); ok {
			return cv.info.View.Nodes()
		}
		return nodeset.Empty()
	})
	covered := false
	gm.ReceiverSideCandidates(dealer, receiver, func(b, cut nodeset.Set) bool {
		zb := joints.JointOf(b)
		if zb.Contains(cut.Intersect(views.Of(b))) {
			covered = true
			return false
		}
		return true
	})
	return covered
}

// freshEval is the record-free candidate evaluation (DisableMemo, record
// store at capacity, or uninterned claim versions): G_M is rebuilt, its
// paths re-streamed, and the cover re-checked, with nothing retained.
func (r *Receiver) freshEval(members []int, combo []claimVer, pass []*valState) (network.Value, bool) {
	gm := r.graphOfCombo(members, combo)
	if !gm.HasNode(r.dealer) || !gm.HasNode(r.id) {
		return "", false
	}
	if r.horizon > 0 {
		span := gm.BoundedPathSpan(r.dealer, r.id, r.horizon)
		gm = gm.InducedSubgraph(span)
		if !gm.HasNode(r.dealer) || !gm.HasNode(r.id) {
			return "", false
		}
	}
	for _, vs := range pass {
		full, hasPath := r.streamFull(gm, vs)
		if !hasPath {
			return "", false // pathless for every value
		}
		if !full {
			continue
		}
		if !coverFresh(gm, r.dealer, r.id, members, combo) {
			return vs.x, true
		}
		break // covered: no value can certify this candidate
	}
	return "", false
}

func (r *Receiver) streamFull(gm *graph.Graph, vs *valState) (full, hasPath bool) {
	full = true
	gm.AllPaths(r.dealer, r.id, nodeset.Empty(), func(p graph.Path) bool {
		hasPath = true
		if !r.pathReceived(vs, p) {
			full = false
			return false
		}
		return true
	})
	return full && hasPath, hasPath
}

// insertSortedInt inserts id into sorted ids if absent.
func insertSortedInt(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// forEachSubsetOfSize enumerates size-k subsets of items in a stable order.
func forEachSubsetOfSize(items []int, k int, fn func(subset []int) bool) {
	n := len(items)
	if k > n {
		return
	}
	subset := make([]int, 0, k)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(subset) == k {
			return fn(subset)
		}
		// Not enough items left to finish the subset.
		for i := start; i <= n-(k-len(subset)); i++ {
			subset = append(subset, items[i])
			cont := rec(i + 1)
			subset = subset[:len(subset)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
}
