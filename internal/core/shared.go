package core

import (
	"sync"
	"sync/atomic"

	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// Capacity caps for the per-instance warm stores. All of them only bound
// memory against adversaries that spray fresh claim versions or trails;
// overflow never changes decisions, it only degrades to uncached (fresh)
// evaluation, which the differential tests pin.
const (
	// maxInternPaths caps the path intern table (received trails plus
	// enumerated G_M paths). Paths beyond the cap fall back to per-run
	// string-keyed overflow lists.
	maxInternPaths = 1 << 15
	// maxInternVers caps the claim-version intern table. Candidates naming
	// uninterned versions are evaluated fresh, uncached.
	maxInternVers = 1 << 12
	// maxRelayCache caps each relay's rebuilt-payload cache.
	maxRelayCache = 1 << 14
	// maxDealerVals caps the dealer's prebuilt Init payloads (one per
	// distinct dealer value the instance has been run with).
	maxDealerVals = 64
	// maxDenseID bounds the node IDs eligible for bitset-packed bookkeeping;
	// forged claims or trails naming IDs at or beyond it (or negative ones)
	// take the unpacked fallback paths so a single hostile message cannot
	// force a gigantic bitset allocation.
	maxDenseID = 1 << 16
)

// pathInterner assigns dense int32 IDs to D–R path keys, so fullness checks
// compare bitsets instead of probing string maps. It is instance-scoped and
// append-only: an ID, once assigned, always denotes the same path, which is
// what lets candidate records carry interned path sets across runs.
type pathInterner struct {
	mu    sync.RWMutex
	ids   map[string]int32
	keys  []string      // ID → rendered path key
	nodes []nodeset.Set // ID → node set of the path
}

// lookup resolves a rendered path key without interning it. The byte-slice
// key makes hit probes allocation-free.
func (pi *pathInterner) lookup(k []byte) (int32, bool) {
	pi.mu.RLock()
	id, ok := pi.ids[string(k)]
	pi.mu.RUnlock()
	return id, ok
}

// intern assigns an ID to the path with rendered key k, or reports false
// when the table is at capacity or the path names IDs outside the dense
// range.
func (pi *pathInterner) intern(k []byte, p graph.Path) (int32, bool) {
	ns, ok := pathNodeSet(p)
	if !ok {
		return 0, false
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if id, ok := pi.ids[string(k)]; ok {
		return id, true
	}
	if len(pi.keys) >= maxInternPaths {
		return 0, false
	}
	if pi.ids == nil {
		pi.ids = make(map[string]int32)
	}
	key := string(k)
	id := int32(len(pi.keys))
	pi.ids[key] = id
	pi.keys = append(pi.keys, key)
	pi.nodes = append(pi.nodes, ns)
	return id, true
}

// snapshot returns stable views of the keys and node-set tables. Existing
// entries are never rewritten, so reads through a snapshot are safe while
// other runs keep interning.
func (pi *pathInterner) snapshot() (keys []string, nodes []nodeset.Set) {
	pi.mu.RLock()
	keys, nodes = pi.keys, pi.nodes
	pi.mu.RUnlock()
	return keys, nodes
}

// pathNodeSet returns the node set of p, or false when p names IDs outside
// the dense range (see maxDenseID).
func pathNodeSet(p graph.Path) (nodeset.Set, bool) {
	var s nodeset.Set
	for _, v := range p {
		if v < 0 || v >= maxDenseID {
			return nodeset.Set{}, false
		}
	}
	for _, v := range p {
		s.MutateAdd(v)
	}
	return s, true
}

// verInterner assigns stable int32 IDs to claim version keys. IDs are
// instance-scoped, so candidate memo keys built from them mean the same
// claim content in every run.
type verInterner struct {
	mu  sync.RWMutex
	ids map[string]int32
}

// intern returns the ID for version key k, assigning one if the table has
// room; ok=false means the table is at capacity and candidates naming this
// version must be evaluated uncached.
func (vi *verInterner) intern(k string) (int32, bool) {
	vi.mu.RLock()
	id, ok := vi.ids[k]
	vi.mu.RUnlock()
	if ok {
		return id, true
	}
	vi.mu.Lock()
	defer vi.mu.Unlock()
	if id, ok := vi.ids[k]; ok {
		return id, true
	}
	if len(vi.ids) >= maxInternVers {
		return 0, false
	}
	if vi.ids == nil {
		vi.ids = make(map[string]int32)
	}
	id = int32(len(vi.ids))
	vi.ids[k] = id
	return id, true
}

// candRec is one memoized candidate message set: the parts of the full-set
// rule determined by the exact claim versions alone. Fullness — membership
// of each G_M path in the growing type-1 store — is the only per-call part.
// Records live on the instance and are shared across runs; the claim-version
// memo key guarantees any run probing the record evaluated the same G_M.
type candRec struct {
	gm       *graph.Graph // decision graph; nil if D or R missing
	pathSet  nodeset.Set  // interned IDs of all D–R paths of gm
	hasPath  bool
	overflow bool         // paths exceeded caps: re-stream enumeration
	cover    atomic.Int32 // 0 = unknown, 1 = has cover, 2 = no cover
}

// candStore maps packed claim-version keys to candidate records.
type candStore struct {
	mu   sync.RWMutex
	recs map[string]*candRec
}

func (cs *candStore) get(k []byte) *candRec {
	cs.mu.RLock()
	rec := cs.recs[string(k)]
	cs.mu.RUnlock()
	return rec
}

// put inserts rec under k and returns the record now stored there (an
// earlier concurrent insert wins, so all runs share one record). It returns
// nil when the store is at capacity and the key is new.
func (cs *candStore) put(k []byte, rec *candRec) *candRec {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if old, ok := cs.recs[string(k)]; ok {
		return old
	}
	if len(cs.recs) >= maxMemoEntries {
		return nil
	}
	if cs.recs == nil {
		cs.recs = make(map[string]*candRec)
	}
	cs.recs[string(k)] = rec
	return rec
}

func (cs *candStore) len() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return len(cs.recs)
}

// pkaShared is the per-instance warm store for RMT-PKA runs: every quantity
// that is a pure function of the instance — sealed claims, prebuilt Init
// payloads, relay processes with their rebuild caches, the receiver's intern
// tables and candidate records — is built once here and shared by all runs
// on the instance (including concurrent ones; everything is lock-protected
// or append-only). Options.DisableMemo bypasses the store entirely, keeping
// the cold path alive as the differential-testing reference.
type pkaShared struct {
	infos []NodeInfo // sealed honest claims, indexed by node ID

	dealerInfoMsg network.Payload // dealer's sealed Init type-2 payload
	dealerMu      sync.RWMutex
	dealerVals    map[network.Value]network.Payload // Init type-1 payload per x_D

	relayMu sync.Mutex
	relays  map[int]map[int]*Relay // horizon → node → shared relay process

	paths pathInterner
	vers  verInterner

	storeMu sync.Mutex
	stores  map[int]*candStore // horizon → candidate records
}

// sharedKeyT keys the pkaShared singleton in instance.Derived.
type sharedKeyT struct{}

// sharedOf returns the instance's warm store, building it on first use.
func sharedOf(in *instance.Instance) *pkaShared {
	return in.Derived(sharedKeyT{}, func() any { return newPKAShared(in) }).(*pkaShared)
}

func newPKAShared(in *instance.Instance) *pkaShared {
	sh := &pkaShared{infos: make([]NodeInfo, in.G.MaxID()+1)}
	in.G.Nodes().ForEach(func(v int) bool {
		sh.infos[v] = NodeInfo{Node: v, View: in.Gamma.Of(v), Z: in.LocalStructure(v)}.Sealed()
		return true
	})
	sh.dealerInfoMsg = NewInfoMsg(sh.infos[in.Dealer], graph.Path{in.Dealer})
	return sh
}

// dealerValueMsg returns the dealer's prebuilt Init type-1 payload for xD.
func (sh *pkaShared) dealerValueMsg(dealer int, xD network.Value) network.Payload {
	sh.dealerMu.RLock()
	p, ok := sh.dealerVals[xD]
	sh.dealerMu.RUnlock()
	if ok {
		return p
	}
	sh.dealerMu.Lock()
	defer sh.dealerMu.Unlock()
	if p, ok := sh.dealerVals[xD]; ok {
		return p
	}
	p = NewValueMsg(xD, graph.Path{dealer})
	if sh.dealerVals == nil {
		sh.dealerVals = make(map[network.Value]network.Payload)
	}
	if len(sh.dealerVals) < maxDealerVals {
		sh.dealerVals[xD] = p
	}
	return p
}

// relay returns the shared relay process for node v under the given
// horizon. Relays are stateless per round (their rebuild cache is locked),
// so one process instance serves every run on the instance.
func (sh *pkaShared) relay(in *instance.Instance, v, horizon int) *Relay {
	sh.relayMu.Lock()
	defer sh.relayMu.Unlock()
	byNode := sh.relays[horizon]
	if byNode == nil {
		byNode = make(map[int]*Relay)
		if sh.relays == nil {
			sh.relays = make(map[int]map[int]*Relay)
		}
		sh.relays[horizon] = byNode
	}
	if rel, ok := byNode[v]; ok {
		return rel
	}
	rel := NewRelayAt(v, in.G.Neighbors(v), sh.infos[v])
	rel.horizon = horizon
	rel.cache = &relayCache{}
	byNode[v] = rel
	return rel
}

// storeFor returns the candidate-record store for the given horizon. The
// horizon changes G_M (the decision graph is sliced to the bounded path
// span), so records are segregated per horizon value.
func (sh *pkaShared) storeFor(horizon int) *candStore {
	sh.storeMu.Lock()
	defer sh.storeMu.Unlock()
	if cs, ok := sh.stores[horizon]; ok {
		return cs
	}
	if sh.stores == nil {
		sh.stores = make(map[int]*candStore)
	}
	cs := &candStore{}
	sh.stores[horizon] = cs
	return cs
}

// relayCache memoizes a relay's rebuilt payloads, keyed by the incoming
// payload's key. The rebuilt message is a pure function of (relay, incoming
// payload) — the trail extension and key surgery are deterministic — so a
// cache hit replays the exact payload the cold path would construct.
type relayCache struct {
	mu sync.RWMutex
	m  map[string]network.Payload
}

func (rc *relayCache) get(k string) network.Payload {
	rc.mu.RLock()
	p := rc.m[k]
	rc.mu.RUnlock()
	return p
}

func (rc *relayCache) put(k string, p network.Payload) {
	rc.mu.Lock()
	if rc.m == nil {
		rc.m = make(map[string]network.Payload)
	}
	if len(rc.m) < maxRelayCache {
		rc.m[k] = p
	}
	rc.mu.Unlock()
}
