package core

import (
	"fmt"

	"rmt/internal/instance"
)

// VerifyRMTCut checks that a claimed RMT-cut witness actually satisfies
// Definition 3 on the instance. The existence search (FindRMTCut) is an
// exponential enumeration; this verifier is the cheap, independent check
// that its output — or a witness produced by any other tool — is genuine:
//
//  1. C1 and C2 are disjoint from each other and from {D, R};
//  2. C = C1 ∪ C2 separates D from R;
//  3. B is exactly the connected component of R in G − C;
//  4. C1 ∈ 𝒵;
//  5. C2 ∩ V(γ(B)) ∈ Z_B, with Z_B the ⊕-joint structure of B.
func VerifyRMTCut(in *instance.Instance, cut RMTCut) error {
	c := cut.Cut()
	if cut.C1.Intersects(cut.C2) {
		return fmt.Errorf("core: C1 %v and C2 %v overlap", cut.C1, cut.C2)
	}
	if c.Contains(in.Dealer) || c.Contains(in.Receiver) {
		return fmt.Errorf("core: cut %v contains a terminal", c)
	}
	if !c.SubsetOf(in.G.Nodes()) {
		return fmt.Errorf("core: cut %v contains non-nodes", c)
	}
	// Disconnected terminals admit the empty cut.
	if !in.G.Separates(c, in.Dealer, in.Receiver) &&
		in.G.Connected(in.Dealer, in.Receiver) {
		return fmt.Errorf("core: %v does not separate %d from %d", c, in.Dealer, in.Receiver)
	}
	comp := in.G.RemoveNodes(c).ComponentOf(in.Receiver)
	if !comp.Equal(cut.B) {
		return fmt.Errorf("core: B %v is not the receiver component %v", cut.B, comp)
	}
	if !in.Z.Contains(cut.C1) {
		return fmt.Errorf("core: C1 %v is not admissible", cut.C1)
	}
	vgb := in.JointViewNodes(cut.B)
	zb := in.JointStructure(cut.B)
	if part := cut.C2.Intersect(vgb); !zb.Contains(part) {
		return fmt.Errorf("core: C2 ∩ V(γ(B)) = %v is not in Z_B", part)
	}
	return nil
}
