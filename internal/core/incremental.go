package core

import (
	"context"

	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// IncrementalCut maintains an RMT-cut verdict across a sequence of
// instance revisions (e.g. a base instance followed by topology deltas).
// The exponential enumeration only runs when it must: while the instance
// stays infeasible, each revision is answered by re-verifying the previous
// revision's witness against the new graph — one BFS plus one candidate
// evaluation — and only a repair failure (or a previously feasible
// instance, which carries no certificate) falls back to FindRMTCut.
//
// Soundness: a repaired witness is constructed in the searcher's own shape
// (B the receiver component of G − N(B), C = N(B)) and passes the same
// predicate, so VerifyRMTCut accepts it. Completeness is inherited from
// the fallback: when repair fails the full enumeration decides, so the
// *verdict* (solvable or not) is always identical to a fresh FindRMTCut —
// the differential tests pin this — though the witness sets may differ.
//
// The zero value is ready to use. Not safe for concurrent use.
type IncrementalCut struct {
	witness RMTCut
	found   bool
	primed  bool

	repaired, fresh int
}

// NewIncrementalCut returns an empty checker; the first Check runs fresh.
func NewIncrementalCut() *IncrementalCut { return &IncrementalCut{} }

// Seed primes the checker with a known verdict for the *current* revision,
// e.g. one decoded from a cache. A seeded witness is trusted; callers
// holding untrusted bytes should VerifyRMTCut first.
func (ic *IncrementalCut) Seed(witness RMTCut, found bool) {
	ic.witness, ic.found, ic.primed = witness, found, true
}

// Check evaluates the next revision, preferring witness repair over fresh
// enumeration, and remembers the result for the revision after.
func (ic *IncrementalCut) Check(in *instance.Instance) (RMTCut, bool) {
	w, f, _ := ic.CheckCtx(context.Background(), in)
	return w, f
}

// CheckCtx is Check under a context. On a context error the checker's
// state is left untouched (the revision was not decided), and the caller
// may retry.
func (ic *IncrementalCut) CheckCtx(ctx context.Context, in *instance.Instance) (RMTCut, bool, error) {
	if ic.primed && ic.found {
		if w, ok := repairRMTCut(in, ic.witness); ok {
			ic.repaired++
			ic.witness = w
			return w, true, nil
		}
	}
	w, f, err := FindRMTCutCtx(ctx, in)
	if err != nil {
		return RMTCut{}, false, err
	}
	ic.fresh++
	ic.witness, ic.found, ic.primed = w, f, true
	return w, f, nil
}

// Stats returns how many revisions were answered by witness repair and how
// many needed the full enumeration.
func (ic *IncrementalCut) Stats() (repaired, fresh int) { return ic.repaired, ic.fresh }

// repairRMTCut tries to turn a witness for the previous revision into one
// for in. The old cut (restricted to surviving nodes) still separates D
// from R or it doesn't: if it does, B' = comp_R(G − C_old) with the tight
// cut N(B') is a candidate in exactly the searcher's shape, and one pass
// over the maximal sets decides it. Cost: one BFS + one candidate
// evaluation, versus the enumeration's worst-case exponential.
func repairRMTCut(in *instance.Instance, old RMTCut) (RMTCut, bool) {
	if !in.G.Connected(in.Dealer, in.Receiver) {
		return RMTCut{
			C1: nodeset.Empty(),
			C2: nodeset.Empty(),
			B:  in.G.ComponentOf(in.Receiver),
		}, true
	}
	c := old.Cut().Intersect(in.G.Nodes())
	if c.Contains(in.Dealer) || c.Contains(in.Receiver) {
		return RMTCut{}, false
	}
	b := in.G.ComponentAvoiding(in.Receiver, c)
	if b.Contains(in.Dealer) {
		return RMTCut{}, false // the old cut no longer separates
	}
	cut := in.G.Boundary(b) // ⊆ c, the tight cut realizing this side
	vgb := in.JointViewNodes(b)
	zb := in.JointStructure(b)
	for _, m := range in.Z.Maximal() {
		c2 := cut.Minus(m)
		if zb.Contains(c2.Intersect(vgb)) {
			return RMTCut{C1: cut.Intersect(m), C2: c2, B: b}, true
		}
	}
	return RMTCut{}, false
}
