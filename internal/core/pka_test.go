package core

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

func mustGraph(t *testing.T, edges string) *graph.Graph {
	t.Helper()
	g, err := graph.ParseEdgeList(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func adhocInstance(t *testing.T, edges string, z adversary.Structure, d, r int) *instance.Instance {
	t.Helper()
	in, err := instance.AdHoc(mustGraph(t, edges), z, d, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// triplePath: three disjoint relays, singleton corruptions — solvable.
// The topology and verdicts live in internal/feasibility.
func triplePath(t *testing.T) *instance.Instance {
	t.Helper()
	return feasibility.MustByName(feasibility.TriplePath).MustBuild(gen.AdHoc)
}

// weakDiamond: two disjoint relays, either corruptible — unsolvable.
func weakDiamond(t *testing.T) *instance.Instance {
	t.Helper()
	return feasibility.MustByName(feasibility.WeakDiamond).MustBuild(gen.AdHoc)
}

func TestDealerRule(t *testing.T) {
	in := adhocInstance(t, "0-1", adversary.Trivial(), 0, 1)
	res, err := Run(in, "attack at dawn", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(1); !ok || got != "attack at dawn" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestHonestLineDelivery(t *testing.T) {
	in := adhocInstance(t, "0-1 1-2", adversary.Trivial(), 0, 2)
	res, err := Run(in, "m", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(2); !ok || got != "m" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestHonestLongerLine(t *testing.T) {
	in := adhocInstance(t, "0-1 1-2 2-3 3-4", adversary.Trivial(), 0, 4)
	res, err := Run(in, "deep", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "deep" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestTriplePathResilient(t *testing.T) {
	in := triplePath(t)
	for _, c := range []int{1, 2, 3} {
		res, err := Run(in, "x", protocol.Silence(nodeset.Of(c)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(4); !ok || got != "x" {
			t.Fatalf("corrupt=%d: decision = %q, %v", c, got, ok)
		}
	}
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Resilient = false")
	}
}

func TestWeakDiamondUnsolvable(t *testing.T) {
	in := weakDiamond(t)
	cut, found := FindRMTCut(in)
	if !found {
		t.Fatal("no RMT-cut on the weak diamond")
	}
	if !in.Z.Contains(cut.C1) {
		t.Fatalf("C1 = %v not admissible", cut.C1)
	}
	if Solvable(in) {
		t.Fatal("Solvable despite cut")
	}
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Resilient despite cut")
	}
}

func TestDisconnectedTrivialCut(t *testing.T) {
	in := adhocInstance(t, "0-1 2-3", adversary.Trivial(), 0, 3)
	cut, found := FindRMTCut(in)
	if !found || !cut.Cut().IsEmpty() {
		t.Fatalf("cut = %v found=%v, want empty cut", cut, found)
	}
}

func TestChimeraKnowledgeSeparation(t *testing.T) {
	// The knowledge-separation fixture (DESIGN.md / E5, E6); topology,
	// structure and the per-level verdicts live in internal/feasibility.
	chimera := feasibility.MustByName(feasibility.Chimera)

	adhoc := chimera.MustBuild(gen.AdHoc)
	if Solvable(adhoc) {
		t.Fatal("chimera instance solvable in the ad hoc model")
	}
	cut, found := FindRMTCut(adhoc)
	if !found {
		t.Fatal("no cut found in ad hoc model")
	}
	if !in2(cut.C2, 2, 3) {
		t.Logf("note: witness cut was %v (chimera {2,3} expected but any witness is valid)", cut)
	}

	r2 := chimera.MustBuild(gen.Radius2)
	if !Solvable(r2) {
		cut, _ := FindRMTCut(r2)
		t.Fatalf("chimera instance unsolvable at radius 2; cut = %v", cut)
	}

	full := chimera.MustBuild(gen.FullKnowledge)
	if !Solvable(full) {
		t.Fatal("chimera instance unsolvable at full knowledge")
	}

	// Operational agreement: PKA fails somewhere in ad hoc, succeeds
	// everywhere at radius 2.
	okAdhoc, err := Resilient(adhoc)
	if err != nil {
		t.Fatal(err)
	}
	if okAdhoc {
		t.Fatal("PKA resilient in ad hoc model despite RMT-cut")
	}
	okR2, err := Resilient(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !okR2 {
		t.Fatal("PKA not resilient at radius 2 despite no RMT-cut")
	}
}

func in2(s nodeset.Set, a, b int) bool { return s.Contains(a) && s.Contains(b) }

func TestSafetyAgainstFullStrategyZoo(t *testing.T) {
	fixtures := []struct {
		name string
		in   *instance.Instance
	}{
		{"triple-path", triplePath(t)},
		{"weak-diamond", weakDiamond(t)},
	}
	for _, fx := range fixtures {
		for _, m := range fx.in.MaximalCorruptions() {
			zoo := Strategies(fx.in, m, "forged")
			for name, corrupt := range zoo {
				res, err := Run(fx.in, "real", corrupt, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if got, ok := res.DecisionOf(fx.in.Receiver); ok && got != "real" {
					t.Errorf("%s/%s corrupt=%v: receiver decided %q — SAFETY VIOLATION",
						fx.name, name, m, got)
				}
			}
		}
	}
}

func TestPathForgeryDoesNotBlockLiveness(t *testing.T) {
	// On the solvable triple path, a path forger must neither trick nor
	// stall the receiver.
	in := triplePath(t)
	for _, c := range []int{1, 2, 3} {
		res, err := Run(in, "real", map[int]network.Process{c: NewPathForger(in, c, "forged")}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, ok := res.DecisionOf(4)
		if !ok {
			t.Fatalf("corrupt=%d: receiver stalled by path forgery", c)
		}
		if got != "real" {
			t.Fatalf("corrupt=%d: decided %q", c, got)
		}
	}
}

func TestGhostForgerySafety(t *testing.T) {
	in := weakDiamond(t)
	for _, c := range []int{1, 2} {
		res, err := Run(in, "real", map[int]network.Process{c: NewGhostForger(in, c, 9, "forged")}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(3); ok && got != "real" {
			t.Fatalf("corrupt=%d: ghost forgery yielded %q — SAFETY VIOLATION", c, got)
		}
	}
}

func TestSplitBrainSafety(t *testing.T) {
	in := triplePath(t)
	res, err := Run(in, "real", map[int]network.Process{2: NewSplitBrain(in, 2, "forged")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "real" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestStructureLiarCannotStallSolvable(t *testing.T) {
	// A corrupted node claiming "everyone may be corrupted" must not stop
	// the receiver on a solvable instance: the valid-set search can simply
	// exclude the liar.
	in := triplePath(t)
	res, err := Run(in, "real", map[int]network.Process{1: NewStructureLiar(in, 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "real" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestGoroutineEngineAgrees(t *testing.T) {
	in := triplePath(t)
	for _, c := range []int{1, 2, 3} {
		a, err := Run(in, "x", protocol.Silence(nodeset.Of(c)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(in, "x", protocol.Silence(nodeset.Of(c)), Options{Engine: network.Goroutine})
		if err != nil {
			t.Fatal(err)
		}
		av, aok := a.DecisionOf(4)
		bv, bok := b.DecisionOf(4)
		if av != bv || aok != bok {
			t.Fatalf("engines disagree: %q/%v vs %q/%v", av, aok, bv, bok)
		}
	}
}

func TestDealerRuleBeatsForgery(t *testing.T) {
	// R adjacent to D plus a corrupt alternative path: the dealer rule must
	// fire with the true value regardless.
	in := adhocInstance(t, "0-1 0-2 2-1", adversary.FromSlices([]int{2}), 0, 1)
	res, err := Run(in, "real", map[int]network.Process{2: NewValueFlipper(in, 2, "forged")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(1); !ok || got != "real" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestMessagesHaveCanonicalKeys(t *testing.T) {
	v1 := ValueMsg{X: "a", P: graph.Path{0, 1}}
	v2 := ValueMsg{X: "a", P: graph.Path{0, 1}}
	if v1.Key() != v2.Key() {
		t.Fatal("equal ValueMsgs have different keys")
	}
	if v1.Key() == (ValueMsg{X: "a", P: graph.Path{0, 2}}).Key() {
		t.Fatal("different paths share a key")
	}
	if v1.BitSize() <= 0 {
		t.Fatal("BitSize not positive")
	}
	g := graph.New()
	g.AddEdge(0, 1)
	ni := NodeInfo{Node: 0, View: g, Z: adversary.Identity()}
	i1 := InfoMsg{Info: ni, P: graph.Path{0}}
	if i1.BitSize() <= 0 || i1.Key() == "" {
		t.Fatal("InfoMsg size/key wrong")
	}
	ni2 := NodeInfo{Node: 1, View: g, Z: adversary.Identity()}
	if ni.VersionKey() == ni2.VersionKey() {
		t.Fatal("different nodes share a version key")
	}
}

func TestRelayAdmissionRules(t *testing.T) {
	// A relay must drop messages whose trail contains itself or whose tail
	// is not the sender.
	in := adhocInstance(t, "0-1 1-2", adversary.Trivial(), 0, 2)
	relay := NewRelay(in, 1)
	var sent []network.Message
	out := func(to int, p network.Payload) {
		sent = append(sent, network.Message{From: 1, To: to, Payload: p})
	}
	relay.Round(1, []network.Message{
		{From: 0, To: 1, Payload: ValueMsg{X: "x", P: graph.Path{5, 1}}}, // contains self
		{From: 0, To: 1, Payload: ValueMsg{X: "x", P: graph.Path{5, 9}}}, // tail != sender
		{From: 0, To: 1, Payload: ValueMsg{X: "x", P: graph.Path{}}},     // empty trail
	}, out)
	if len(sent) != 0 {
		t.Fatalf("relay forwarded %d inadmissible messages", len(sent))
	}
	relay.Round(2, []network.Message{
		{From: 0, To: 1, Payload: ValueMsg{X: "x", P: graph.Path{0}}},
	}, out)
	if len(sent) != 2 { // neighbors 0 and 2
		t.Fatalf("relay sent %d messages, want 2", len(sent))
	}
	vm, ok := sent[0].Payload.(ValueMsg)
	if !ok || !vm.P.Equal(graph.Path{0, 1}) {
		t.Fatalf("relayed trail = %v", sent[0].Payload)
	}
}

func TestReceiverDiscardsForgedTails(t *testing.T) {
	in := adhocInstance(t, "0-1 1-2", adversary.Trivial(), 0, 2)
	r := NewReceiver(in)
	// Type-1 claiming a direct dealer send, but delivered by node 1.
	r.Round(1, []network.Message{
		{From: 1, To: 2, Payload: ValueMsg{X: "forged", P: graph.Path{0}}},
	}, nil)
	if _, ok := r.Decision(); ok {
		t.Fatal("receiver accepted a forged dealer-rule message")
	}
	if len(r.vals) != 0 {
		t.Fatal("forged trail was ingested")
	}
}

func TestRMTCutAgreesWithZppIntuition(t *testing.T) {
	// On ad hoc instances the RMT-cut and Z-pp-cut conditions coincide in
	// practice for these fixtures: both say triple-path solvable, weak
	// diamond not. (The formal equivalence for the ad hoc slice is
	// exercised statistically in the eval package.)
	if !Solvable(triplePath(t)) {
		t.Fatal("triple path unsolvable")
	}
	if Solvable(weakDiamond(t)) {
		t.Fatal("weak diamond solvable")
	}
}
