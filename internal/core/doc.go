// Package core implements the paper's primary contribution: the RMT
// Partial Knowledge Algorithm (RMT-PKA, Protocol 1) and the RMT-cut
// characterization (Definition 3, Theorems 3–5) of when reliable message
// transmission is achievable under partial topology knowledge and a general
// adversary.
//
// # Protocol 1 (RMT-PKA)
//
// Two message types flood the network, each carrying its propagation trail:
//
//	type 1: (x, p)                — a claimed dealer value x over path p
//	type 2: ((u, γ(u), Z_u), p)   — node u's initial knowledge over path p
//
// The dealer sends (x_D, {D}) and ((D, γ(D), Z_D), {D}) to its neighbors
// and terminates. Every other non-receiver node v announces its own
// ((v, γ(v), Z_v), {v}) and relays any received (a, p) as (a, p‖v) to all
// neighbors — unless v ∈ p or tail(p) is not the actual sender, which
// guarantees that a forged trail must contain at least one corrupted node.
//
// The receiver R decides by one of two rules:
//
//	dealer rule:   R ∈ N(D) and R received (x_D, {D}) from D itself;
//	full-set rule: R holds a valid message set M (Definition 4: a single
//	               value, a single info version per node) that is full
//	               (Definition 5: every D–R path of the graph G_M appears
//	               among M's type-1 messages) and has no adversary cover
//	               (Definition 6: no cut C of G_M with C ∩ V(γ(B)) ∈ Z_B,
//	               with B the receiver-side component and Z_B the ⊕-joint
//	               structure computed from M's own claims).
//
// RMT-PKA is safe — it never decides a wrong value, even against
// adversaries that invent fictitious nodes, edges and local structures
// (Theorem 4) — and it decides whenever no RMT-cut exists (Theorem 5),
// making it a unique algorithm (Corollary 6).
//
// # Complexity
//
// RMT-PKA floods one message per simple path prefix, and the receiver's
// full-set rule searches over candidate message subsets; both are
// exponential in the worst case. This is inherent to the problem (Section 5
// of the paper studies exactly this gap) and the implementation documents
// and bounds it rather than hiding it: the decision search enumerates
// subsets only of the ≤ 24 known node IDs, and experiment E8 measures the
// growth against Z-CPA's polynomial footprint.
package core
