package core

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

// TestTightnessRandomized is the package-local slice of experiment E2: on
// random small instances across knowledge levels, the RMT-cut condition
// (Theorems 3 & 5) must coincide exactly with RMT-PKA's operational success
// against every maximal silent corruption.
func TestTightnessRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized tightness sweep")
	}
	r := rand.New(rand.NewSource(1606))
	checked := 0
	for trial := 0; trial < 80; trial++ {
		n := 4 + r.Intn(3)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 1+r.Intn(2), 0.4)

		gammas := map[string]view.Function{
			"adhoc":   view.AdHoc(g),
			"radius2": view.Radius(g, 2),
			"full":    view.Full(g),
		}
		for name, gamma := range gammas {
			in, err := instance.New(g, z, gamma, d, rcv)
			if err != nil {
				continue
			}
			solvable := Solvable(in)
			resilient, err := Resilient(in)
			if err != nil {
				t.Fatal(err)
			}
			if solvable != resilient {
				cut, _ := FindRMTCut(in)
				t.Fatalf("trial %d (%s): cut condition solvable=%v, simulation=%v\nG=%v\nZ=%v\ncut=%v",
					trial, name, solvable, resilient, g, z, cut)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d instance/γ pairs checked", checked)
	}
}

// TestMonotoneInKnowledge validates the paper's partial order on view
// functions: refining knowledge can only help (if RMT is solvable under γ'
// and γ refines γ', it stays solvable under γ).
func TestMonotoneInKnowledge(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized monotonicity sweep")
	}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(3)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 2, 0.35)
		prev := false
		for radius := 0; radius <= 3; radius++ {
			in, err := instance.New(g, z, view.Radius(g, radius), d, rcv)
			if err != nil {
				t.Fatal(err)
			}
			cur := Solvable(in)
			if prev && !cur {
				t.Fatalf("trial %d: solvable at radius %d but not at %d\nG=%v\nZ=%v",
					trial, radius-1, radius, g, z)
			}
			prev = cur
		}
	}
}
