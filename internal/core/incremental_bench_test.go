package core_test

import (
	"fmt"
	"testing"

	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/zcpa"
)

// churnRevisions builds the bench workload: the corruptible-middle line
// (always infeasible) followed by revs dealer-side chord additions. Every
// revision leaves the middle-relay witness repairable, so the incremental
// checker answers each with one BFS + one candidate evaluation while the
// fresh enumeration walks ~n/2 receiver-side candidates.
func churnRevisions(b *testing.B, n, revs int) []*instance.Instance {
	b.Helper()
	out := make([]*instance.Instance, 0, revs+1)
	cur := incrLine(b, n)
	out = append(out, cur)
	for i := 0; i < revs; i++ {
		next, err := gen.ApplyDelta(cur, instance.Delta{AddEdges: [][2]int{{i, i + 2}}}, gen.AdHoc)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, next)
		cur = next
	}
	return out
}

// BenchmarkRMTCutIncremental is the churn bench family: fresh re-runs the
// full enumeration on every revision, reverify answers each revision by
// repairing the previous witness. The ≥200-node sizes are where the gap is
// structural (linear BFS vs ~n/2 candidate evaluations), not constant-factor.
func BenchmarkRMTCutIncremental(b *testing.B) {
	for _, n := range []int{60, 240} {
		revisions := churnRevisions(b, n, 16)
		b.Run(fmt.Sprintf("fresh/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, found := core.FindRMTCut(revisions[i%len(revisions)]); !found {
					b.Fatal("bench instance must be infeasible")
				}
			}
		})
		b.Run(fmt.Sprintf("reverify/n=%d", n), func(b *testing.B) {
			ic := core.NewIncrementalCut()
			if _, found := ic.Check(revisions[0]); !found {
				b.Fatal("bench instance must be infeasible")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, found := ic.Check(revisions[i%len(revisions)]); !found {
					b.Fatal("bench instance must be infeasible")
				}
			}
			b.StopTimer()
			if repaired, fresh := ic.Stats(); fresh > 1 || repaired == 0 {
				b.Fatalf("reverify side fell back to enumeration: %d repaired, %d fresh", repaired, fresh)
			}
		})
	}
}

// BenchmarkZppCutIncremental is the ad hoc twin of BenchmarkRMTCutIncremental.
func BenchmarkZppCutIncremental(b *testing.B) {
	for _, n := range []int{60, 240} {
		revisions := churnRevisions(b, n, 16)
		b.Run(fmt.Sprintf("fresh/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, found := zcpa.FindRMTZppCut(revisions[i%len(revisions)]); !found {
					b.Fatal("bench instance must be infeasible")
				}
			}
		})
		b.Run(fmt.Sprintf("reverify/n=%d", n), func(b *testing.B) {
			ic := zcpa.NewIncrementalCut()
			if _, found := ic.Check(revisions[0]); !found {
				b.Fatal("bench instance must be infeasible")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, found := ic.Check(revisions[i%len(revisions)]); !found {
					b.Fatal("bench instance must be infeasible")
				}
			}
		})
	}
}
