package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/view"
)

// requireSameRun asserts two results are observably identical at the
// receiver: same decision, same decidedness, same round count.
func requireSameRun(t *testing.T, label string, in *instance.Instance, memo, fresh *network.Result) {
	t.Helper()
	mv, mok := memo.DecisionOf(in.Receiver)
	fv, fok := fresh.DecisionOf(in.Receiver)
	if mv != fv || mok != fok || memo.Rounds != fresh.Rounds {
		t.Fatalf("%s: memoized run (decision %q/%v, %d rounds) != fresh run (decision %q/%v, %d rounds)",
			label, mv, mok, memo.Rounds, fv, fok, fresh.Rounds)
	}
}

// memoEngines is the engine axis of the differential sweep. Async runs
// under the zero-fault SyncScheduler, which must be round-identical to
// lockstep; goroutine must be identical by the merge-in-ID-order argument.
var memoEngines = []struct {
	name   string
	engine network.Engine
}{
	{"lockstep", network.Lockstep},
	{"goroutine", network.Goroutine},
	{"async", network.Async},
}

// TestReceiverMemoNeverChangesDecisions is the receiver-memoization
// equivalence property, run as a differential sweep: for every feasibility
// fixture (solvable and unsolvable alike), every maximal corruption, every
// strategy of the Byzantine zoo and every execution engine, RMT-PKA with
// the packed/interned warm store must be observably identical to a fresh
// run with Options.DisableMemo — and every engine must agree with
// lockstep, memoized or not.
func TestReceiverMemoNeverChangesDecisions(t *testing.T) {
	type fix struct {
		name string
		in   *instance.Instance
	}
	fixtures := make([]fix, 0, len(feasibility.All())+1)
	for _, f := range feasibility.All() {
		in, err := f.Build(gen.AdHoc)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fix{f.Name, in})
	}
	// Chimera is the knowledge-separation instance: unsolvable ad hoc but
	// solvable at radius 2, so the radius-2 build exercises the memo on a
	// deciding run the ad hoc build cannot produce.
	chimera, err := feasibility.MustByName(feasibility.Chimera).Build(gen.Radius2)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fix{"chimera@radius2", chimera})

	for _, fx := range fixtures {
		for _, m := range fx.in.MaximalCorruptions() {
			for name := range Strategies(fx.in, m, "forged") {
				var ref *network.Result
				for _, eng := range memoEngines {
					label := fmt.Sprintf("%s/%s/%s", fx.name, name, eng.name)
					// Strategy processes are stateful: build a fresh zoo per run.
					memo, err := Run(fx.in, "real", Strategies(fx.in, m, "forged")[name],
						Options{Engine: eng.engine})
					if err != nil {
						t.Fatal(err)
					}
					fresh, err := Run(fx.in, "real", Strategies(fx.in, m, "forged")[name],
						Options{Engine: eng.engine, DisableMemo: true})
					if err != nil {
						t.Fatal(err)
					}
					requireSameRun(t, label, fx.in, memo, fresh)
					if ref == nil {
						ref = fresh
					} else {
						requireSameRun(t, label+" vs lockstep", fx.in, ref, fresh)
					}
				}
			}
		}
	}
}

func TestReceiverMemoEquivalenceRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized memo-equivalence sweep")
	}
	r := rand.New(rand.NewSource(1606))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(3)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 1+r.Intn(2), 0.4)
		in, err := instance.New(g, z, view.AdHoc(g), d, rcv)
		if err != nil {
			continue
		}
		corruptions := append([]nodeset.Set{nodeset.Empty()}, in.MaximalCorruptions()...)
		for _, m := range corruptions {
			memo, err := Run(in, "real", protocol.Silence(m), Options{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(in, "real", protocol.Silence(m), Options{DisableMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, "random", in, memo, fresh)
			checked++
		}
	}
	if checked < 40 {
		t.Fatalf("only %d runs compared", checked)
	}
}

// newVersionSprayer corrupts node c to announce fresh, never-seen-before
// claims: a fake self-view with an edge to a fictitious node whose ID
// varies per run, plus a fabricated claim from that fictitious node. Every
// run therefore pushes two new claim versions and new trails into the
// instance's shared interners — the worst case for the warm store's
// memory, since nothing is ever reusable.
func newVersionSprayer(in *instance.Instance, c, ghost int, forged network.Value) *Forger {
	ghostView := graph.New()
	ghostView.AddEdge(in.Dealer, ghost)
	ghostView.AddEdge(ghost, c)
	ghostInfo := NodeInfo{
		Node: ghost,
		View: ghostView,
		Z:    adversary.Restricted{Domain: ghostView.Nodes(), Structure: adversary.Trivial()},
	}
	fakeView := in.Gamma.Of(c).Clone()
	fakeView.AddEdge(ghost, c)
	selfInfo := NodeInfo{
		Node: c,
		View: fakeView,
		Z:    adversary.Restricted{Domain: fakeView.Nodes(), Structure: adversary.Trivial()},
	}
	return &Forger{
		ID:        c,
		Neighbors: in.G.Neighbors(c),
		InitAll: []network.Payload{
			InfoMsg{Info: selfInfo, P: graph.Path{c}},
			InfoMsg{Info: ghostInfo, P: graph.Path{ghost, c}},
			ValueMsg{X: forged, P: graph.Path{in.Dealer, ghost, c}},
		},
	}
}

// TestVersionSprayStaysWithinMemoryCaps runs a version-spraying adversary
// for thousands of runs against one instance and asserts the shared warm
// store saturates at its documented caps instead of growing without bound
// — and that saturation is harmless: every run still decides the honest
// value via the two untouched relays, including with memoization off.
func TestVersionSprayStaysWithinMemoryCaps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-run spray")
	}
	in := feasibility.MustByName(feasibility.TriplePath).MustBuild(gen.AdHoc)
	sh := sharedOf(in)
	const corruptNode = 1
	ghostBase := in.G.MaxID() + 1

	// Enough runs that the two fresh versions per run overflow the
	// claim-version interner (maxInternVers) with room to spare.
	sprayRuns := maxInternVers/2 + 256
	for i := 0; i < sprayRuns; i++ {
		// A handful of fresh dealer values sprays the prebuilt-payload cache
		// past maxDealerVals too; keeping most runs on one value keeps the
		// spray focused on the claim interners.
		xD := network.Value("real")
		if i < 4*maxDealerVals {
			xD = network.Value(fmt.Sprintf("real-%d", i))
		}
		corrupt := map[int]network.Process{
			corruptNode: newVersionSprayer(in, corruptNode, ghostBase+i, "forged"),
		}
		res, err := Run(in, xD, corrupt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(in.Receiver); !ok || got != xD {
			t.Fatalf("spray run %d: decision = %q, %v; want %q", i, got, ok, xD)
		}
		// Spot-check packed ≡ fresh under the spray as well: the memoized
		// path must stay equivalent even while its caches are saturating.
		if i%512 == 0 {
			fresh, err := Run(in, xD,
				map[int]network.Process{corruptNode: newVersionSprayer(in, corruptNode, ghostBase+i, "forged")},
				Options{DisableMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, fmt.Sprintf("spray run %d", i), in, res, fresh)
		}
	}

	if n := len(sh.vers.ids); n > maxInternVers {
		t.Errorf("claim-version interner grew to %d entries, cap %d", n, maxInternVers)
	} else if n < maxInternVers {
		t.Errorf("claim-version interner holds %d entries after %d spray runs — cap %d never exercised",
			n, sprayRuns, maxInternVers)
	}
	if n := len(sh.paths.keys); n > maxInternPaths {
		t.Errorf("path interner grew to %d entries, cap %d", n, maxInternPaths)
	}
	if n := len(sh.dealerVals); n > maxDealerVals {
		t.Errorf("dealer payload cache grew to %d entries, cap %d", n, maxDealerVals)
	}
	for horizon, cs := range sh.stores {
		if n := cs.len(); n > maxMemoEntries {
			t.Errorf("candidate store (horizon %d) grew to %d records, cap %d", horizon, n, maxMemoEntries)
		}
	}
	for horizon, byNode := range sh.relays {
		for v, rel := range byNode {
			if rel.cache == nil {
				continue
			}
			if n := len(rel.cache.m); n > maxRelayCache {
				t.Errorf("relay %d cache (horizon %d) grew to %d payloads, cap %d", v, horizon, n, maxRelayCache)
			}
		}
	}
}
