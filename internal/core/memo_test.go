package core

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/view"
)

// requireSameRun asserts two results are observably identical at the
// receiver: same decision, same decidedness, same round count.
func requireSameRun(t *testing.T, label string, in *instance.Instance, memo, fresh *network.Result) {
	t.Helper()
	mv, mok := memo.DecisionOf(in.Receiver)
	fv, fok := fresh.DecisionOf(in.Receiver)
	if mv != fv || mok != fok || memo.Rounds != fresh.Rounds {
		t.Fatalf("%s: memoized run (decision %q/%v, %d rounds) != fresh run (decision %q/%v, %d rounds)",
			label, mv, mok, memo.Rounds, fv, fok, fresh.Rounds)
	}
}

// TestReceiverMemoNeverChangesDecisions is the receiver-memoization
// equivalence property: with Options.DisableMemo toggled, RMT-PKA must
// produce identical decisions and round counts — across the full strategy
// zoo on the protocol fixtures and across random instances under every
// maximal silent corruption.
func TestReceiverMemoNeverChangesDecisions(t *testing.T) {
	fixtures := []struct {
		name string
		in   *instance.Instance
	}{
		{"triple-path", triplePath(t)},
		{"weak-diamond", weakDiamond(t)},
	}
	for _, fx := range fixtures {
		for _, m := range fx.in.MaximalCorruptions() {
			for name := range Strategies(fx.in, m, "forged") {
				// Strategies processes are stateful: build a fresh zoo per run.
				memo, err := Run(fx.in, "real", Strategies(fx.in, m, "forged")[name], Options{})
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := Run(fx.in, "real", Strategies(fx.in, m, "forged")[name], Options{DisableMemo: true})
				if err != nil {
					t.Fatal(err)
				}
				requireSameRun(t, fx.name+"/"+name, fx.in, memo, fresh)
			}
		}
	}
}

func TestReceiverMemoEquivalenceRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized memo-equivalence sweep")
	}
	r := rand.New(rand.NewSource(1606))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(3)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 1+r.Intn(2), 0.4)
		in, err := instance.New(g, z, view.AdHoc(g), d, rcv)
		if err != nil {
			continue
		}
		corruptions := append([]nodeset.Set{nodeset.Empty()}, in.MaximalCorruptions()...)
		for _, m := range corruptions {
			memo, err := Run(in, "real", protocol.Silence(m), Options{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(in, "real", protocol.Silence(m), Options{DisableMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, "random", in, memo, fresh)
			checked++
		}
	}
	if checked < 40 {
		t.Fatalf("only %d runs compared", checked)
	}
}
