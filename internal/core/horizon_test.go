package core

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/view"
)

// Horizon-PKA ablation tests: the bounded-path variant trades solvable
// instances for message complexity while preserving safety.

func TestHorizonDeliversOnShortPaths(t *testing.T) {
	// Triple path: all D–R paths have 3 nodes; horizon 3 changes nothing.
	in := triplePath(t)
	res, err := Run(in, "x", protocol.Silence(nodeset.Of(1)), Options{Horizon: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestHorizonSavesMessages(t *testing.T) {
	// On a layered network most simple paths are long detours; a tight
	// horizon prunes them.
	g, d, r := gen.Layered(2, 3)
	in, err := instance.New(g, adversary.Trivial(), view.AdHoc(g), d, r)
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := Run(in, "x", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(in, "x", nil, Options{Horizon: 4}) // direct layer paths only
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bounded.DecisionOf(r); ok {
		// Horizon-4 keeps only D→l0→l1→R paths, but G_M's bounded span
		// still contains longer combination paths, so the receiver may
		// legitimately abstain. Either outcome is fine; what matters is
		// safety and savings.
		if got, _ := bounded.DecisionOf(r); got != "x" {
			t.Fatalf("bounded run decided wrong value %q", got)
		}
	}
	if bounded.Metrics.MessagesSent >= unbounded.Metrics.MessagesSent {
		t.Fatalf("horizon saved nothing: %d vs %d",
			bounded.Metrics.MessagesSent, unbounded.Metrics.MessagesSent)
	}
}

func TestHorizonDeliversOnLine(t *testing.T) {
	// A line has exactly one path; horizon = its length keeps liveness,
	// horizon below it abstains.
	g := gen.Line(5)
	in, err := instance.New(g, adversary.Trivial(), view.AdHoc(g), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(in, "x", nil, Options{Horizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := exact.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("horizon=5 on 5-line: decision %q, %v", got, ok)
	}
	tooShort, err := Run(in, "x", nil, Options{Horizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tooShort.DecisionOf(4); ok {
		t.Fatal("horizon=4 on 5-line decided — impossible, the only path has 5 nodes")
	}
}

func TestHorizonSafetyUnderAttack(t *testing.T) {
	// Safety must survive the full strategy zoo with a horizon active.
	in := triplePath(t)
	for _, m := range in.MaximalCorruptions() {
		for name, corrupt := range Strategies(in, m, "forged") {
			res, err := Run(in, "real", corrupt, Options{Horizon: 3})
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := res.DecisionOf(in.Receiver); ok && got != "real" {
				t.Fatalf("%s corrupt=%v: horizon run decided %q — SAFETY VIOLATION",
					name, m, got)
			}
		}
	}
}

func TestHorizonNeverBeatsUnbounded(t *testing.T) {
	// Horizon-PKA decides only if unbounded PKA decides (it sees a
	// subgraph of the evidence).
	fixtures := []*instance.Instance{triplePath(t), weakDiamond(t)}
	for _, in := range fixtures {
		for _, m := range in.MaximalCorruptions() {
			for _, h := range []int{3, 4, 5} {
				bounded, err := Run(in, "x", protocol.Silence(m), Options{Horizon: h})
				if err != nil {
					t.Fatal(err)
				}
				unbounded, err := Run(in, "x", protocol.Silence(m), Options{})
				if err != nil {
					t.Fatal(err)
				}
				_, bOK := bounded.DecisionOf(in.Receiver)
				_, uOK := unbounded.DecisionOf(in.Receiver)
				if bOK && !uOK {
					t.Fatalf("horizon=%d decided where unbounded PKA did not", h)
				}
			}
		}
	}
}
