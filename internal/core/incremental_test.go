package core_test

import (
	"context"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
)

// incrLine builds the line 0—1—…—n-1 with a singleton corruption at the
// middle relay: infeasible at every knowledge level (the middle node is a
// one-node cut in 𝒵), and every chord added strictly on one side keeps the
// old witness repairable.
func incrLine(t testing.TB, n int) *instance.Instance {
	t.Helper()
	in, err := gen.Build(gen.Line(n), adversary.FromSlices([]int{n / 2}), gen.AdHoc, 0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestIncrementalCutRepairsInsteadOfEnumerating(t *testing.T) {
	in := incrLine(t, 12)
	ic := core.NewIncrementalCut()
	w, found := ic.Check(in)
	if !found {
		t.Fatal("line with corruptible middle relay should be infeasible")
	}
	if err := core.VerifyRMTCut(in, w); err != nil {
		t.Fatal(err)
	}
	// Dealer-side chords keep the witness valid: every revision must be
	// answered by repair, not fresh enumeration.
	cur := in
	for _, chord := range [][2]int{{0, 2}, {1, 3}, {0, 4}} {
		next, err := gen.ApplyDelta(cur, instance.Delta{AddEdges: [][2]int{chord}}, gen.AdHoc)
		if err != nil {
			t.Fatal(err)
		}
		w, found = ic.Check(next)
		if !found {
			t.Fatalf("chord %v flipped the verdict", chord)
		}
		if err := core.VerifyRMTCut(next, w); err != nil {
			t.Fatalf("repaired witness invalid after chord %v: %v", chord, err)
		}
		cur = next
	}
	if repaired, fresh := ic.Stats(); repaired != 3 || fresh != 1 {
		t.Fatalf("Stats() = (%d repaired, %d fresh), want (3, 1)", repaired, fresh)
	}
}

func TestIncrementalCutFallsBackWhenWitnessDies(t *testing.T) {
	in := incrLine(t, 6) // middle relay 3... n/2 = 3
	ic := core.NewIncrementalCut()
	if _, found := ic.Check(in); !found {
		t.Fatal("expected infeasible base")
	}
	// Bypass the corruptible relay: 2—4 detours around node 3, making the
	// instance solvable. Repair must fail and the fresh search must agree.
	next, err := gen.ApplyDelta(in, instance.Delta{AddEdges: [][2]int{{2, 4}}}, gen.AdHoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := ic.Check(next); found {
		t.Fatal("detour should make the instance solvable")
	}
	if _, fresh := ic.Stats(); fresh != 2 {
		t.Fatalf("expected 2 fresh searches, got %d", fresh)
	}
	// And once solvable there is no certificate: the next revision is a
	// fresh search again, whose verdict matches FindRMTCut.
	back, err := gen.ApplyDelta(next, instance.Delta{RemoveEdges: [][2]int{{2, 4}}}, gen.AdHoc)
	if err != nil {
		t.Fatal(err)
	}
	w, found := ic.Check(back)
	if !found {
		t.Fatal("removing the detour should restore infeasibility")
	}
	if err := core.VerifyRMTCut(back, w); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalCutSeed(t *testing.T) {
	in := incrLine(t, 12)
	w, found := core.FindRMTCut(in)
	if !found {
		t.Fatal("expected infeasible base")
	}
	ic := core.NewIncrementalCut()
	ic.Seed(w, true)
	next, err := gen.ApplyDelta(in, instance.Delta{AddEdges: [][2]int{{0, 2}}}, gen.AdHoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := ic.Check(next); !found {
		t.Fatal("seeded checker lost the verdict")
	}
	if repaired, fresh := ic.Stats(); repaired != 1 || fresh != 0 {
		t.Fatalf("seeded checker should repair, not enumerate: (%d, %d)", repaired, fresh)
	}
}

func TestIncrementalCutCtxCancelLeavesStateRetryable(t *testing.T) {
	in := incrLine(t, 12)
	ic := core.NewIncrementalCut()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ic.CheckCtx(ctx, in); err == nil {
		t.Fatal("cancelled context should abort the search")
	}
	// Retry with a live context succeeds and is the checker's first result.
	w, found, err := ic.CheckCtx(context.Background(), in)
	if err != nil || !found {
		t.Fatalf("retry failed: %v found=%v", err, found)
	}
	if err := core.VerifyRMTCut(in, w); err != nil {
		t.Fatal(err)
	}
}
