package core

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

func TestVerifyRMTCutAcceptsFound(t *testing.T) {
	in := weakDiamond(t)
	cut, found := FindRMTCut(in)
	if !found {
		t.Fatal("no cut")
	}
	if err := VerifyRMTCut(in, cut); err != nil {
		t.Fatalf("found witness rejected: %v", err)
	}
}

func TestVerifyRMTCutRejectsForgeries(t *testing.T) {
	in := weakDiamond(t)
	good, _ := FindRMTCut(in)
	forgeries := []struct {
		name string
		cut  RMTCut
	}{
		{"overlapping parts", RMTCut{C1: nodeset.Of(1), C2: nodeset.Of(1), B: good.B}},
		{"contains dealer", RMTCut{C1: nodeset.Of(0), C2: nodeset.Of(1, 2), B: good.B}},
		{"not a separator", RMTCut{C1: nodeset.Of(1), C2: nodeset.Empty(), B: nodeset.Of(2, 3)}},
		{"wrong component", RMTCut{C1: good.C1, C2: good.C2, B: nodeset.Of(3, 9)}},
		{"inadmissible C1", RMTCut{C1: nodeset.Of(1, 2), C2: nodeset.Empty(), B: good.B}},
		{"non-nodes", RMTCut{C1: nodeset.Of(42), C2: good.C2, B: good.B}},
	}
	for _, f := range forgeries {
		if err := VerifyRMTCut(in, f.cut); err == nil {
			t.Errorf("forgery %q accepted", f.name)
		}
	}
}

func TestVerifyRMTCutC2Condition(t *testing.T) {
	// Swap the parts of a genuine witness: C2 = the admissible singleton,
	// C1 = the other. On the weak diamond both orientations are genuine
	// (symmetric), so force a failure with a structure where only one
	// orientation works.
	in := adhocInstance(t, "0-1 0-2 1-3 2-3", adversary.FromSlices([]int{1}), 0, 3)
	// C = {1,2}: C1={1}∈Z, C2={2}: N(3)∩{2}={2} ∈ Z_3? Z_3 = Z^{{1,2,3}} =
	// ⟨{1}⟩ → {2} ∉ → condition fails → this is NOT an RMT-cut.
	bad := RMTCut{C1: nodeset.Of(1), C2: nodeset.Of(2), B: nodeset.Of(3)}
	if err := VerifyRMTCut(in, bad); err == nil {
		t.Fatal("verifier accepted a cut violating the Z_B condition")
	}
	// And indeed the instance is solvable.
	if !Solvable(in) {
		t.Fatal("instance should be solvable")
	}
}

func TestVerifyAllFoundWitnessesRandom(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	verified := 0
	for trial := 0; trial < 80; trial++ {
		n := 4 + r.Intn(3)
		g := gen.RandomGNP(r, n, 0.5)
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(0, n-1)), 1+r.Intn(2), 0.4)
		in, err := instance.AdHoc(g, z, 0, n-1)
		if err != nil {
			continue
		}
		cut, found := FindRMTCut(in)
		if !found {
			continue
		}
		if err := VerifyRMTCut(in, cut); err != nil {
			t.Fatalf("trial %d: found witness %v rejected: %v\nG=%v Z=%v", trial, cut, err, g, z)
		}
		verified++
	}
	if verified < 10 {
		t.Fatalf("only %d witnesses verified", verified)
	}
}

func TestVerifyEmptyCutOnDisconnected(t *testing.T) {
	in := adhocInstance(t, "0-1 2-3", adversary.Trivial(), 0, 3)
	cut, found := FindRMTCut(in)
	if !found {
		t.Fatal("no cut on disconnected instance")
	}
	if err := VerifyRMTCut(in, cut); err != nil {
		t.Fatalf("empty cut rejected: %v", err)
	}
}

func TestFindRMTCutBounded(t *testing.T) {
	in := weakDiamond(t)
	// Unlimited budget matches the plain search.
	cut, found, complete := FindRMTCutBounded(in, 0)
	if !found || !complete {
		t.Fatalf("unbounded: found=%v complete=%v", found, complete)
	}
	if err := VerifyRMTCut(in, cut); err != nil {
		t.Fatal(err)
	}
	// A budget of 1 may or may not find the witness, but must say so.
	_, found1, complete1 := FindRMTCutBounded(in, 1)
	if !found1 && complete1 {
		t.Fatal("budget exhausted but reported complete")
	}
	// On a solvable multi-candidate instance (a line has one candidate per
	// prefix of the receiver side), a tiny budget must report incomplete
	// rather than falsely conclude solvability.
	solvable := adhocInstance(t, "0-1 1-2 2-3 3-4", adversary.Trivial(), 0, 4)
	if _, found, complete := FindRMTCutBounded(solvable, 1); found || complete {
		t.Fatalf("solvable with budget 1: found=%v complete=%v (want false, false)", found, complete)
	}
	if _, found, complete := FindRMTCutBounded(solvable, 0); found || !complete {
		t.Fatalf("solvable unbounded: found=%v complete=%v", found, complete)
	}
	// The triple path has exactly ONE candidate (every larger receiver
	// side touches the dealer), so budget 1 covers the space completely.
	if _, found, complete := FindRMTCutBounded(triplePath(t), 1); found || !complete {
		t.Fatalf("triple path budget 1: found=%v complete=%v (want false, true)", found, complete)
	}
}
