package core

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// TestMixedStrategySafetyFuzz corrupts multi-node sets with HETEROGENEOUS
// strategies — every corrupted node draws its own behavior — across random
// instances. The homogeneous zoo (E3) leaves coordinated-but-different
// attacks untested; this fuzzer closes that gap. Safety must hold in every
// run.
func TestMixedStrategySafetyFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized safety fuzz")
	}
	r := rand.New(rand.NewSource(4242))
	kinds := []string{"silent", "value-flip", "path-forgery", "ghost-node", "split-brain", "structure-liar"}
	runs := 0
	for trial := 0; trial < 60; trial++ {
		n := 5 + r.Intn(3)
		g := gen.RandomGNP(r, n, 0.5)
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 2, 0.45)
		in, err := instance.AdHoc(g, z, d, rcv)
		if err != nil {
			continue
		}
		for _, tset := range in.MaximalCorruptions() {
			if tset.IsEmpty() {
				continue
			}
			// Assemble a per-node mixed strategy map.
			corrupt := make(map[int]network.Process, tset.Len())
			ghostBase := g.MaxID() + 1
			i := 0
			tset.ForEach(func(c int) bool {
				switch kinds[r.Intn(len(kinds))] {
				case "silent":
					corrupt[c] = &Forger{ID: c, Neighbors: in.G.Neighbors(c), DropRelays: true}
				case "value-flip":
					corrupt[c] = NewValueFlipper(in, c, "forged")
				case "path-forgery":
					corrupt[c] = NewPathForger(in, c, "forged")
				case "ghost-node":
					corrupt[c] = NewGhostForger(in, c, ghostBase+i, "forged")
				case "split-brain":
					corrupt[c] = NewSplitBrain(in, c, "forged")
				default:
					corrupt[c] = NewStructureLiar(in, c)
				}
				i++
				return true
			})
			res, err := Run(in, "real", corrupt, Options{})
			if err != nil {
				t.Fatal(err)
			}
			runs++
			if got, ok := res.DecisionOf(rcv); ok && got != "real" {
				t.Fatalf("trial %d T=%v: receiver decided %q — SAFETY VIOLATION\nG=%v Z=%v",
					trial, tset, got, g, z)
			}
		}
	}
	if runs < 30 {
		t.Fatalf("only %d adversarial runs executed", runs)
	}
}

// TestMixedStrategyLivenessOnSolvable: on a solvable fixture the receiver
// must still decide correctly whatever mix the (admissible) adversary runs.
func TestMixedStrategyLivenessOnSolvable(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	in := triplePath(t)
	for trial := 0; trial < 30; trial++ {
		c := 1 + r.Intn(3)
		var corrupt map[int]network.Process
		switch trial % 5 {
		case 0:
			corrupt = map[int]network.Process{c: &Forger{ID: c, Neighbors: in.G.Neighbors(c), DropRelays: true}}
		case 1:
			corrupt = map[int]network.Process{c: NewValueFlipper(in, c, "forged")}
		case 2:
			corrupt = map[int]network.Process{c: NewPathForger(in, c, "forged")}
		case 3:
			corrupt = map[int]network.Process{c: NewGhostForger(in, c, 50+trial, "forged")}
		default:
			corrupt = map[int]network.Process{c: NewSplitBrain(in, c, "forged")}
		}
		res, err := Run(in, "real", corrupt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(4); !ok || got != "real" {
			t.Fatalf("trial %d corrupt=%d: decision = %q, %v", trial, c, got, ok)
		}
	}
}
