package core

import (
	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// Forger is a Byzantine RMT-PKA player with full control over its claims:
// it can inject fabricated messages, transform the type-1 values it relays,
// and send different claims to different neighbors. The engine's
// authenticated channels still apply — it can only talk to real neighbors —
// so every forged trail necessarily ends at the forger, exactly the
// capability Theorem 4's safety proof grants the adversary.
type Forger struct {
	ID        int
	Neighbors nodeset.Set
	// InitAll is sent to every neighbor at Init.
	InitAll []network.Payload
	// InitPer adds per-neighbor payloads at Init (split-brain claims).
	InitPer map[int][]network.Payload
	// FlipValue, if non-nil, replaces the value of every relayed type-1
	// message.
	FlipValue func(network.Value) network.Value
	// DropRelays disables relaying entirely when true.
	DropRelays bool
}

// Init implements network.Process.
func (f *Forger) Init(out network.Outbox) {
	f.Neighbors.ForEach(func(u int) bool {
		for _, p := range f.InitAll {
			out(u, p)
		}
		for _, p := range f.InitPer[u] {
			out(u, p)
		}
		return true
	})
}

// Round implements network.Process: the forger relays like an honest node
// (so its presence is plausible) but may rewrite type-1 values.
func (f *Forger) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	if f.DropRelays {
		return true
	}
	for _, m := range inbox {
		trail, rebuild, ok := relayable(m.Payload)
		if !ok || len(trail) == 0 || trail.Contains(f.ID) {
			continue
		}
		payload := rebuild(trail.Append(f.ID))
		if vm, isValue := payload.(ValueMsg); isValue && f.FlipValue != nil {
			payload = ValueMsg{X: f.FlipValue(vm.X), P: vm.P}
		}
		f.Neighbors.ForEach(func(u int) bool {
			out(u, payload)
			return true
		})
	}
	return true
}

// Decision implements network.Process.
func (*Forger) Decision() (network.Value, bool) { return "", false }

// NewValueFlipper corrupts node c so that it relays every type-1 message
// with the forged value substituted, and announces its own info honestly —
// the classic message-alteration attack.
func NewValueFlipper(in *instance.Instance, c int, forged network.Value) *Forger {
	return &Forger{
		ID:        c,
		Neighbors: in.G.Neighbors(c),
		InitAll:   []network.Payload{InfoMsg{Info: trueInfo(in, c), P: graph.Path{c}}},
		FlipValue: func(network.Value) network.Value { return forged },
	}
}

// NewPathForger corrupts node c to claim a direct channel to the dealer
// that never existed: it fabricates a view γ'(c) containing the edge c–D,
// reports an understated local structure, and injects the type-1 message
// (forged, {D, c}) as if the dealer had sent the forged value along it.
// This is the "reporting fictitious topology and false local knowledge"
// adversary of Theorem 4.
func NewPathForger(in *instance.Instance, c int, forged network.Value) *Forger {
	fakeView := in.Gamma.Of(c).Clone()
	fakeView.AddEdge(c, in.Dealer)
	fakeInfo := NodeInfo{
		Node: c,
		View: fakeView,
		// The forger claims nobody in its view can be corrupted, making
		// its forged path look maximally trustworthy.
		Z: adversary.Restricted{Domain: fakeView.Nodes(), Structure: adversary.Trivial()},
	}
	return &Forger{
		ID:        c,
		Neighbors: in.G.Neighbors(c),
		InitAll: []network.Payload{
			InfoMsg{Info: fakeInfo, P: graph.Path{c}},
			ValueMsg{X: forged, P: graph.Path{in.Dealer, c}},
		},
	}
}

// NewGhostForger corrupts node c to invent a fictitious node (ghost) that
// claims to connect the dealer to c, complete with a fabricated view and
// local structure for the ghost and a forged value that "traveled" through
// it. The ghost's ID must not collide with a real node.
func NewGhostForger(in *instance.Instance, c, ghost int, forged network.Value) *Forger {
	ghostView := graph.New()
	ghostView.AddEdge(in.Dealer, ghost)
	ghostView.AddEdge(ghost, c)
	ghostInfo := NodeInfo{
		Node: ghost,
		View: ghostView,
		Z:    adversary.Restricted{Domain: ghostView.Nodes(), Structure: adversary.Trivial()},
	}
	// c's own fake view includes the ghost edge so G_M contains the path.
	fakeView := in.Gamma.Of(c).Clone()
	fakeView.AddEdge(ghost, c)
	selfInfo := NodeInfo{
		Node: c,
		View: fakeView,
		Z:    adversary.Restricted{Domain: fakeView.Nodes(), Structure: adversary.Trivial()},
	}
	return &Forger{
		ID:        c,
		Neighbors: in.G.Neighbors(c),
		InitAll: []network.Payload{
			InfoMsg{Info: selfInfo, P: graph.Path{c}},
			InfoMsg{Info: ghostInfo, P: graph.Path{ghost, c}},
			ValueMsg{X: forged, P: graph.Path{in.Dealer, ghost, c}},
		},
	}
}

// NewSplitBrain corrupts node c to present two different versions of its
// own knowledge to two halves of its neighborhood, violating Definition 4's
// consistency requirement in a way only the receiver's valid-set grouping
// can untangle.
func NewSplitBrain(in *instance.Instance, c int, forged network.Value) *Forger {
	honest := trueInfo(in, c)
	fakeView := in.Gamma.Of(c).Clone()
	fakeView.AddEdge(c, in.Dealer)
	lying := NodeInfo{
		Node: c,
		View: fakeView,
		Z:    adversary.Restricted{Domain: fakeView.Nodes(), Structure: adversary.Trivial()},
	}
	per := make(map[int][]network.Payload)
	i := 0
	in.G.Neighbors(c).ForEach(func(u int) bool {
		if i%2 == 0 {
			per[u] = []network.Payload{InfoMsg{Info: honest, P: graph.Path{c}}}
		} else {
			per[u] = []network.Payload{
				InfoMsg{Info: lying, P: graph.Path{c}},
				ValueMsg{X: forged, P: graph.Path{in.Dealer, c}},
			}
		}
		i++
		return true
	})
	return &Forger{ID: c, Neighbors: in.G.Neighbors(c), InitPer: per}
}

// NewStructureLiar corrupts node c to relay faithfully but report a wildly
// false local adversary structure: it claims every subset of its view may
// be corrupted, maximizing the receiver's perceived uncertainty (a
// denial-of-decision attempt).
func NewStructureLiar(in *instance.Instance, c int) *Forger {
	dom := in.Gamma.NodesOf(c)
	lying := NodeInfo{
		Node: c,
		View: in.Gamma.Of(c),
		Z:    adversary.Restricted{Domain: dom, Structure: adversary.FromSets(dom.Remove(in.Dealer).Remove(in.Receiver))},
	}
	return &Forger{
		ID:        c,
		Neighbors: in.G.Neighbors(c),
		InitAll:   []network.Payload{InfoMsg{Info: lying, P: graph.Path{c}}},
	}
}

// Strategies enumerates the full attack zoo against an instance for a given
// corruption set: every node of t is corrupted with the same strategy kind.
// Used by experiment E3 (safety) and the attack example.
func Strategies(in *instance.Instance, t nodeset.Set, forged network.Value) map[string]map[int]network.Process {
	ghostBase := in.G.MaxID() + 1
	zoo := map[string]map[int]network.Process{
		"silent":         {},
		"value-flip":     {},
		"path-forgery":   {},
		"ghost-node":     {},
		"split-brain":    {},
		"structure-liar": {},
	}
	i := 0
	t.ForEach(func(c int) bool {
		zoo["silent"][c] = &Forger{ID: c, Neighbors: in.G.Neighbors(c), DropRelays: true}
		zoo["value-flip"][c] = NewValueFlipper(in, c, forged)
		zoo["path-forgery"][c] = NewPathForger(in, c, forged)
		zoo["ghost-node"][c] = NewGhostForger(in, c, ghostBase+i, forged)
		zoo["split-brain"][c] = NewSplitBrain(in, c, forged)
		zoo["structure-liar"][c] = NewStructureLiar(in, c)
		i++
		return true
	})
	return zoo
}
