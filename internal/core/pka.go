package core

import (
	"rmt/internal/byzantine"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
)

// Dealer is RMT-PKA's dealer process: it sends (x_D, {D}) and
// ((D, γ(D), Z_D), {D}) to all neighbors and terminates.
type Dealer struct {
	Value     network.Value
	id        int
	neighbors nodeset.Set
	info      NodeInfo
}

// NewDealer builds the dealer process for the instance.
func NewDealer(in *instance.Instance, xD network.Value) *Dealer {
	d := in.Dealer
	return &Dealer{
		Value:     xD,
		id:        d,
		neighbors: in.G.Neighbors(d),
		info:      NodeInfo{Node: d, View: in.Gamma.Of(d), Z: in.LocalStructure(d)}.Sealed(),
	}
}

// Init implements network.Process.
func (d *Dealer) Init(out network.Outbox) {
	trail := graph.Path{d.id}
	d.neighbors.ForEach(func(u int) bool {
		out(u, ValueMsg{X: d.Value, P: trail})
		out(u, InfoMsg{Info: d.info, P: trail})
		return true
	})
}

// Round implements network.Process: the dealer terminates after Init.
func (d *Dealer) Round(int, []network.Message, network.Outbox) bool { return false }

// Decision implements network.Process.
func (d *Dealer) Decision() (network.Value, bool) { return d.Value, true }

// Relay is an honest non-dealer, non-receiver player: it announces its own
// knowledge once and relays every admissible message with its trail
// extended, exactly as in Protocol 1. With a non-zero horizon it
// additionally drops trails that could no longer reach the receiver within
// the horizon (the Horizon-PKA ablation, experiment E10).
type Relay struct {
	id        int
	neighbors nodeset.Set
	info      NodeInfo
	horizon   int // max D–R path length in nodes; 0 = unlimited
}

// NewRelay builds the relay process for node id.
func NewRelay(in *instance.Instance, id int) *Relay {
	return NewRelayAt(id, in.G.Neighbors(id),
		NodeInfo{Node: id, View: in.Gamma.Of(id), Z: in.LocalStructure(id)})
}

// NewRelayAt builds a relay from explicit parameters, for reuse outside
// full RMT instances (e.g. Byzantine topology discovery).
func NewRelayAt(id int, neighbors nodeset.Set, info NodeInfo) *Relay {
	return &Relay{id: id, neighbors: neighbors, info: info.Sealed()}
}

// Init implements network.Process.
func (r *Relay) Init(out network.Outbox) {
	r.broadcast(out, InfoMsg{Info: r.info, P: graph.Path{r.id}})
}

// Round implements network.Process.
func (r *Relay) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		trail, rebuild, ok := relayable(m.Payload)
		if !ok {
			continue // erroneous message; discard
		}
		// Protocol 1's admission check: discard if v ∈ p or tail(p) ≠ u.
		// The tail check pins the trail to the authenticated channel, so a
		// forged trail necessarily contains a corrupted node.
		if len(trail) == 0 || trail.Contains(r.id) || trail.Tail() != m.From {
			continue
		}
		if r.horizon > 0 && len(trail)+1 > r.horizon-1 {
			continue // the extended trail plus the receiver would exceed the horizon
		}
		r.broadcast(out, rebuild(trail.Append(r.id)))
	}
	return true
}

func (r *Relay) broadcast(out network.Outbox, p network.Payload) {
	r.neighbors.ForEach(func(u int) bool {
		out(u, p)
		return true
	})
}

// Decision implements network.Process: relays do not decide in RMT.
func (r *Relay) Decision() (network.Value, bool) { return "", false }

// NewProcesses assembles the full process map for an RMT-PKA run, replacing
// the nodes of corrupt with the supplied Byzantine processes (the dealer
// and receiver cannot be corrupted).
func NewProcesses(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, opts Options) map[int]network.Process {
	procs := make(map[int]network.Process, in.N())
	in.G.Nodes().ForEach(func(v int) bool {
		switch v {
		case in.Dealer:
			procs[v] = NewDealer(in, xD)
		case in.Receiver:
			rcv := NewReceiver(in)
			rcv.horizon = opts.Horizon
			rcv.nomemo = opts.DisableMemo
			procs[v] = rcv
		default:
			rel := NewRelay(in, v)
			rel.horizon = opts.Horizon
			procs[v] = rel
		}
		return true
	})
	for v, proc := range corrupt {
		if v == in.Dealer || v == in.Receiver {
			continue
		}
		procs[v] = proc
	}
	return procs
}

// Options tweaks an RMT-PKA run.
type Options struct {
	Engine           network.Engine
	RecordTranscript bool
	MaxRounds        int
	// Horizon, when positive, runs the Horizon-PKA ablation: relays drop
	// trails that cannot complete into a D–R path of at most Horizon
	// nodes, and the receiver evaluates the full-set rule on the subgraph
	// of G_M spanned by such bounded paths. Safety is preserved (the
	// Theorem 4 argument is parametric in the decision graph); liveness
	// shrinks to instances whose bounded-path subgraph has no RMT-cut and
	// no longer combination paths. Experiment E10 quantifies the
	// message-complexity savings against the solvability loss.
	Horizon int
	// DisableMemo turns off the receiver's decision-subroutine memoization
	// (claim-graph, path-set and cover-verdict caches). Decisions are
	// identical either way — the flag exists for equivalence tests and as an
	// escape hatch if memory is tighter than CPU.
	DisableMemo bool
}

// Run executes RMT-PKA on the instance with dealer value xD and the given
// corrupted players, stopping as soon as the receiver decides.
func Run(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, opts Options) (*network.Result, error) {
	cfg := network.Config{
		Graph:            in.G,
		Processes:        NewProcesses(in, xD, corrupt, opts),
		Engine:           opts.Engine,
		RecordTranscript: opts.RecordTranscript,
		MaxRounds:        opts.MaxRounds,
		StopEarly: func(d map[int]network.Value) bool {
			_, ok := d[in.Receiver]
			return ok
		},
	}
	return network.Run(cfg)
}

// Resilient reports whether RMT-PKA achieves RMT on the instance for every
// admissible corruption: it simulates the silent adversary on each maximal
// corruption set (the liveness-worst behavior, DESIGN.md §5).
func Resilient(in *instance.Instance) (bool, error) {
	for _, t := range in.MaximalCorruptions() {
		res, err := Run(in, "1", byzantine.SilentProcesses(t), Options{})
		if err != nil {
			return false, err
		}
		if _, ok := res.DecisionOf(in.Receiver); !ok {
			return false, nil
		}
	}
	return true, nil
}

// trueInfo returns the honest NodeInfo of a node, used by the receiver for
// its own knowledge.
func trueInfo(in *instance.Instance, v int) NodeInfo {
	return NodeInfo{Node: v, View: in.Gamma.Of(v), Z: in.LocalStructure(v)}.Sealed()
}
