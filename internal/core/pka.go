package core

import (
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// Dealer is RMT-PKA's dealer process: it sends (x_D, {D}) and
// ((D, γ(D), Z_D), {D}) to all neighbors and terminates. Its two Init
// payloads are prebuilt with sealed keys — per run on the cold path, once
// per instance through pkaShared.
type Dealer struct {
	Value     network.Value
	id        int
	neighbors nodeset.Set
	info      NodeInfo
	valueMsg  network.Payload
	infoMsg   network.Payload
}

// NewDealer builds the dealer process for the instance.
func NewDealer(in *instance.Instance, xD network.Value) *Dealer {
	d := in.Dealer
	info := trueInfo(in, d)
	return &Dealer{
		Value:     xD,
		id:        d,
		neighbors: in.G.Neighbors(d),
		info:      info,
		valueMsg:  NewValueMsg(xD, graph.Path{d}),
		infoMsg:   NewInfoMsg(info, graph.Path{d}),
	}
}

// newDealerShared is NewDealer against the instance's warm store.
func newDealerShared(in *instance.Instance, xD network.Value, sh *pkaShared) *Dealer {
	d := in.Dealer
	return &Dealer{
		Value:     xD,
		id:        d,
		neighbors: in.G.Neighbors(d),
		info:      sh.infos[d],
		valueMsg:  sh.dealerValueMsg(d, xD),
		infoMsg:   sh.dealerInfoMsg,
	}
}

// Init implements network.Process.
func (d *Dealer) Init(out network.Outbox) {
	d.neighbors.ForEach(func(u int) bool {
		out(u, d.valueMsg)
		out(u, d.infoMsg)
		return true
	})
}

// Round implements network.Process: the dealer terminates after Init.
func (d *Dealer) Round(int, []network.Message, network.Outbox) bool { return false }

// Decision implements network.Process.
func (d *Dealer) Decision() (network.Value, bool) { return d.Value, true }

// Relay is an honest non-dealer, non-receiver player: it announces its own
// knowledge once and relays every admissible message with its trail
// extended, exactly as in Protocol 1. With a non-zero horizon it
// additionally drops trails that could no longer reach the receiver within
// the horizon (the Horizon-PKA ablation, experiment E10).
//
// A relay holds no per-run state — its only fields are the instance-derived
// identity and an optional locked rebuild cache — so pkaShared hands one
// relay instance to every run on the instance, including concurrent ones.
type Relay struct {
	id        int
	neighbors nodeset.Set
	info      NodeInfo
	horizon   int             // max D–R path length in nodes; 0 = unlimited
	initMsg   network.Payload // prebuilt Init announcement
	cache     *relayCache     // rebuilt payloads by incoming key; nil = cold
}

// NewRelay builds the relay process for node id.
func NewRelay(in *instance.Instance, id int) *Relay {
	return NewRelayAt(id, in.G.Neighbors(id),
		NodeInfo{Node: id, View: in.Gamma.Of(id), Z: in.LocalStructure(id)})
}

// NewRelayAt builds a relay from explicit parameters, for reuse outside
// full RMT instances (e.g. Byzantine topology discovery).
func NewRelayAt(id int, neighbors nodeset.Set, info NodeInfo) *Relay {
	sealed := info.Sealed()
	return &Relay{
		id:        id,
		neighbors: neighbors,
		info:      sealed,
		initMsg:   NewInfoMsg(sealed, graph.Path{id}),
	}
}

// Init implements network.Process.
func (r *Relay) Init(out network.Outbox) {
	r.broadcast(out, r.initMsg)
}

// Round implements network.Process.
func (r *Relay) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		trail, rebuild, ok := relayable(m.Payload)
		if !ok {
			continue // erroneous message; discard
		}
		// Protocol 1's admission check: discard if v ∈ p or tail(p) ≠ u.
		// The tail check pins the trail to the authenticated channel, so a
		// forged trail necessarily contains a corrupted node.
		if len(trail) == 0 || trail.Contains(r.id) || trail.Tail() != m.From {
			continue
		}
		if r.horizon > 0 && len(trail)+1 > r.horizon-1 {
			continue // the extended trail plus the receiver would exceed the horizon
		}
		var np network.Payload
		if r.cache != nil {
			// The rebuilt message is a pure function of the incoming
			// payload (whose key is canonical per the Payload contract) and
			// this relay's identity, so the cache replays the exact payload
			// the cold path would construct.
			k := m.Payload.Key()
			if np = r.cache.get(k); np == nil {
				np = rebuild(trail.Append(r.id))
				r.cache.put(k, np)
			}
		} else {
			np = rebuild(trail.Append(r.id))
		}
		r.broadcast(out, np)
	}
	return true
}

func (r *Relay) broadcast(out network.Outbox, p network.Payload) {
	r.neighbors.ForEach(func(u int) bool {
		out(u, p)
		return true
	})
}

// Decision implements network.Process: relays do not decide in RMT.
func (r *Relay) Decision() (network.Value, bool) { return "", false }

// NewProcesses assembles the full process map for an RMT-PKA run, replacing
// the nodes of corrupt with the supplied Byzantine processes (the dealer
// and receiver cannot be corrupted). Unless opts.DisableMemo is set, the
// honest processes draw on the instance's warm store (pkaShared): sealed
// claims, prebuilt payloads, shared relays, and the receiver's interned
// candidate records all persist across runs.
func NewProcesses(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, opts Options) map[int]network.Process {
	var sh *pkaShared
	if !opts.DisableMemo {
		sh = sharedOf(in)
	}
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), corrupt, func(v int) network.Process {
		switch v {
		case in.Dealer:
			if sh != nil {
				return newDealerShared(in, xD, sh)
			}
			return NewDealer(in, xD)
		case in.Receiver:
			return newReceiver(in, sh, opts)
		default:
			if sh != nil {
				return sh.relay(in, v, opts.Horizon)
			}
			rel := NewRelay(in, v)
			rel.horizon = opts.Horizon
			return rel
		}
	})
}

// Options tweaks an RMT-PKA run. It is the unified option set of the
// protocol runtime; RMT-PKA reads Horizon and DisableMemo in addition to
// the engine fields (see protocol.Options for field docs).
type Options = protocol.Options

// Proto is RMT-PKA's registry entry; the package registers it under
// protocol.PKA at init.
type Proto struct{}

// Name implements protocol.Protocol.
func (Proto) Name() string { return protocol.PKA }

// Caps implements protocol.Protocol: RMT-PKA works at any knowledge level
// and only the receiver decides.
func (Proto) Caps() protocol.Caps { return protocol.Caps{} }

// Assemble implements protocol.Protocol.
func (Proto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	return NewProcesses(in, xD, opts.Corrupt, opts), nil
}

// Solvable implements protocol.Feasibility: RMT-PKA is tight against the
// RMT-cut condition (Theorems 3 & 5).
func (Proto) Solvable(in *instance.Instance) bool { return Solvable(in) }

func init() { protocol.Register(Proto{}) }

// Run executes RMT-PKA on the instance with dealer value xD and the given
// corrupted players, stopping as soon as the receiver decides. A non-nil
// corrupt map takes precedence over opts.Corrupt.
func Run(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, opts Options) (*network.Result, error) {
	if corrupt != nil {
		opts.Corrupt = corrupt
	}
	return protocol.Run(Proto{}, in, xD, opts)
}

// Resilient reports whether RMT-PKA achieves RMT on the instance for every
// admissible corruption: it simulates the silent adversary on each maximal
// corruption set (the liveness-worst behavior, DESIGN.md §5).
func Resilient(in *instance.Instance) (bool, error) {
	for _, t := range in.MaximalCorruptions() {
		res, err := Run(in, "1", protocol.Silence(t), Options{})
		if err != nil {
			return false, err
		}
		if _, ok := res.DecisionOf(in.Receiver); !ok {
			return false, nil
		}
	}
	return true, nil
}

// trueInfo returns the honest NodeInfo of a node, used by the receiver for
// its own knowledge.
func trueInfo(in *instance.Instance, v int) NodeInfo {
	return NodeInfo{Node: v, View: in.Gamma.Of(v), Z: in.LocalStructure(v)}.Sealed()
}
