package core

import (
	"strconv"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/network"
)

// NodeInfo is the first component of a type-2 message: node u's claimed
// identity and initial knowledge (γ(u), Z_u). For honest nodes the claim is
// the truth; corrupted nodes may claim anything, including information
// about fictitious nodes.
type NodeInfo struct {
	Node int
	View *graph.Graph
	Z    adversary.Restricted

	// key memoizes VersionKey. NodeInfo travels by value through relays, so
	// sealing the key once at construction (Sealed) removes the rendering
	// from every later VersionKey call along the message's whole journey.
	// Unsealed literals (e.g. forged claims in tests) fall back to rendering.
	key string
	// bits memoizes bitSize alongside the key (0 = not yet computed); the
	// metrics tracer calls BitSize once per send of the same sealed claim.
	bits int
}

// VersionKey canonically encodes the claim's content, so that two claims
// about the same node are "the same first component" (Definition 4) iff
// their keys match.
func (ni NodeInfo) VersionKey() string {
	if ni.key != "" {
		return ni.key
	}
	return ni.renderVersionKey()
}

func (ni NodeInfo) renderVersionKey() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(ni.Node))
	b.WriteByte('|')
	b.WriteString(ni.View.String())
	b.WriteByte('|')
	b.WriteString(ni.Z.String())
	return b.String()
}

// Sealed returns a copy of ni with its VersionKey and bit size precomputed.
func (ni NodeInfo) Sealed() NodeInfo {
	if ni.key == "" {
		ni.key = ni.renderVersionKey()
	}
	if ni.bits == 0 {
		ni.bits = ni.renderBitSize()
	}
	return ni
}

// bitSize estimates the encoded size: node IDs at 16 bits, edges at 32,
// antichain entries at 16 bits per element.
func (ni NodeInfo) bitSize() int {
	if ni.bits != 0 {
		return ni.bits
	}
	return ni.renderBitSize()
}

func (ni NodeInfo) renderBitSize() int {
	bits := 16
	bits += 16*ni.View.NumNodes() + 32*ni.View.NumEdges()
	bits += 16 * ni.Z.Domain.Len()
	for _, m := range ni.Z.Structure.Maximal() {
		bits += 16 * (m.Len() + 1)
	}
	return bits
}

func pathKey(p graph.Path) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// appendPathKey is pathKey into a reused byte buffer, for allocation-free
// intern-table probes.
func appendPathKey(dst []byte, p graph.Path) []byte {
	for i, v := range p {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return dst
}

// ValueMsg is a type-1 message: a claimed dealer value with its trail.
type ValueMsg struct {
	X network.Value
	P graph.Path

	// key memoizes Key. Honest processes seal it at construction and extend
	// it incrementally when relaying; unsealed literals (forged payloads in
	// tests and attack strategies) fall back to rendering per call.
	key string
}

// NewValueMsg builds a type-1 message with its payload key sealed.
func NewValueMsg(x network.Value, p graph.Path) ValueMsg {
	m := ValueMsg{X: x, P: p}
	m.key = m.render()
	return m
}

// BitSize implements network.Payload.
func (m ValueMsg) BitSize() int { return 8*len(m.X) + 16*len(m.P) }

// Key implements network.Payload.
func (m ValueMsg) Key() string {
	if m.key != "" {
		return m.key
	}
	return m.render()
}

func (m ValueMsg) render() string {
	var b strings.Builder
	b.Grow(8 + len(m.X) + 4*len(m.P))
	b.WriteString("t1[")
	b.WriteString(string(m.X))
	b.WriteString("](")
	writePathKey(&b, m.P)
	b.WriteByte(')')
	return b.String()
}

// InfoMsg is a type-2 message: a node's initial knowledge with its trail.
type InfoMsg struct {
	Info NodeInfo
	P    graph.Path

	key string // memoized Key; see ValueMsg.key
}

// NewInfoMsg builds a type-2 message with its payload key sealed.
func NewInfoMsg(info NodeInfo, p graph.Path) InfoMsg {
	m := InfoMsg{Info: info, P: p}
	m.key = m.render()
	return m
}

// BitSize implements network.Payload.
func (m InfoMsg) BitSize() int { return m.Info.bitSize() + 16*len(m.P) }

// Key implements network.Payload.
func (m InfoMsg) Key() string {
	if m.key != "" {
		return m.key
	}
	return m.render()
}

func (m InfoMsg) render() string {
	vk := m.Info.VersionKey()
	var b strings.Builder
	b.Grow(8 + len(vk) + 4*len(m.P))
	b.WriteString("t2[")
	b.WriteString(vk)
	b.WriteString("](")
	writePathKey(&b, m.P)
	b.WriteByte(')')
	return b.String()
}

func writePathKey(b *strings.Builder, p graph.Path) {
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
}

// extendKey derives the payload key of a one-hop trail extension from the
// parent's sealed key by rewriting the trailing "(…)" trail segment in
// place of a full re-render — the claim/value portion of the key is
// unchanged by relaying. It returns "" (render required) when the parent
// key is absent or np is not old extended by exactly one node.
func extendKey(parent string, old, np graph.Path) string {
	if parent == "" || len(old) == 0 || len(np) != len(old)+1 {
		return ""
	}
	for i, v := range old {
		if np[i] != v {
			return ""
		}
	}
	var b strings.Builder
	b.Grow(len(parent) + 8)
	b.WriteString(parent[:len(parent)-1])
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(np[len(np)-1]))
	b.WriteByte(')')
	return b.String()
}

// relayable extracts the trail of either message type and rebuilds the
// message with an extended trail. It returns false for foreign payloads.
func relayable(p network.Payload) (graph.Path, func(newPath graph.Path) network.Payload, bool) {
	switch m := p.(type) {
	case ValueMsg:
		return m.P, func(np graph.Path) network.Payload {
			nm := ValueMsg{X: m.X, P: np, key: extendKey(m.key, m.P, np)}
			if nm.key == "" {
				nm.key = nm.render()
			}
			return nm
		}, true
	case InfoMsg:
		return m.P, func(np graph.Path) network.Payload {
			nm := InfoMsg{Info: m.Info, P: np, key: extendKey(m.key, m.P, np)}
			if nm.key == "" {
				nm.key = nm.render()
			}
			return nm
		}, true
	default:
		return nil, nil, false
	}
}
