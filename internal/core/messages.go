package core

import (
	"fmt"
	"strconv"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/network"
)

// NodeInfo is the first component of a type-2 message: node u's claimed
// identity and initial knowledge (γ(u), Z_u). For honest nodes the claim is
// the truth; corrupted nodes may claim anything, including information
// about fictitious nodes.
type NodeInfo struct {
	Node int
	View *graph.Graph
	Z    adversary.Restricted

	// key memoizes VersionKey. NodeInfo travels by value through relays, so
	// sealing the key once at construction (Sealed) removes the rendering
	// from every later VersionKey call along the message's whole journey.
	// Unsealed literals (e.g. forged claims in tests) fall back to rendering.
	key string
}

// VersionKey canonically encodes the claim's content, so that two claims
// about the same node are "the same first component" (Definition 4) iff
// their keys match.
func (ni NodeInfo) VersionKey() string {
	if ni.key != "" {
		return ni.key
	}
	return ni.renderVersionKey()
}

func (ni NodeInfo) renderVersionKey() string {
	return fmt.Sprintf("%d|%s|%s", ni.Node, ni.View.String(), ni.Z.String())
}

// Sealed returns a copy of ni with its VersionKey precomputed.
func (ni NodeInfo) Sealed() NodeInfo {
	if ni.key == "" {
		ni.key = ni.renderVersionKey()
	}
	return ni
}

// bitSize estimates the encoded size: node IDs at 16 bits, edges at 32,
// antichain entries at 16 bits per element.
func (ni NodeInfo) bitSize() int {
	bits := 16
	bits += 16*ni.View.NumNodes() + 32*ni.View.NumEdges()
	bits += 16 * ni.Z.Domain.Len()
	for _, m := range ni.Z.Structure.Maximal() {
		bits += 16 * (m.Len() + 1)
	}
	return bits
}

func pathKey(p graph.Path) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// ValueMsg is a type-1 message: a claimed dealer value with its trail.
type ValueMsg struct {
	X network.Value
	P graph.Path
}

// BitSize implements network.Payload.
func (m ValueMsg) BitSize() int { return 8*len(m.X) + 16*len(m.P) }

// Key implements network.Payload.
func (m ValueMsg) Key() string { return fmt.Sprintf("t1[%s](%s)", m.X, pathKey(m.P)) }

// InfoMsg is a type-2 message: a node's initial knowledge with its trail.
type InfoMsg struct {
	Info NodeInfo
	P    graph.Path
}

// BitSize implements network.Payload.
func (m InfoMsg) BitSize() int { return m.Info.bitSize() + 16*len(m.P) }

// Key implements network.Payload.
func (m InfoMsg) Key() string { return fmt.Sprintf("t2[%s](%s)", m.Info.VersionKey(), pathKey(m.P)) }

// relayable extracts the trail of either message type and rebuilds the
// message with an extended trail. It returns false for foreign payloads.
func relayable(p network.Payload) (graph.Path, func(newPath graph.Path) network.Payload, bool) {
	switch m := p.(type) {
	case ValueMsg:
		return m.P, func(np graph.Path) network.Payload { return ValueMsg{X: m.X, P: np} }, true
	case InfoMsg:
		return m.P, func(np graph.Path) network.Payload { return InfoMsg{Info: m.Info, P: np} }, true
	default:
		return nil, nil, false
	}
}
