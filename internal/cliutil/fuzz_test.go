package cliutil

import "testing"

// FuzzParseStructure checks the structure parser never panics and accepted
// inputs round-trip through FormatStructure.
func FuzzParseStructure(f *testing.F) {
	for _, seed := range []string{
		"1,2;3",
		"",
		";;",
		"1",
		"0,0,0",
		" 4 , 5 ; 6 ",
		"-1",
		"1,x",
		"9999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		z, err := ParseStructure(s)
		if err != nil {
			return
		}
		back, err := ParseStructure(FormatStructure(z))
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if !back.Equal(z) {
			t.Fatalf("round trip changed the structure: %v vs %v", z, back)
		}
	})
}

// FuzzParseInstanceSpec checks the instance-spec parser never panics and
// that accepted specs survive a parse → Format → parse round trip with
// every field intact.
func FuzzParseInstanceSpec(f *testing.F) {
	for _, seed := range []string{
		"# rmt instance v1\ngraph: 0-1 0-2 1-2\nstructure: 1\nknowledge: adhoc\ndealer: 0\nreceiver: 2\n",
		"graph: 0-1\nreceiver: 1",
		"graph: 0-1 1-2 2-3\nstructure: 1;2\nknowledge: full\nreceiver: 3\ndealer: 0",
		"receiver: 4",
		"graph: 0-1\nreceiver: 1\nbogus: 7",
		"graph 0-1\nreceiver: 1",
		"graph: 0-1\nknowledge: radius2\nreceiver: 1\n# trailing comment",
		"graph: 0-0\nreceiver: 0",
		"graph: 0-1\nreceiver: -5",
		"GRAPH: 0-1\nRECEIVER: 1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseInstanceSpec(s)
		if err != nil {
			return
		}
		back, err := ParseInstanceSpec(spec.Format())
		if err != nil {
			t.Fatalf("round trip parse failed: %v\nrendered:\n%s", err, spec.Format())
		}
		if !back.Graph.Equal(spec.Graph) {
			t.Fatalf("round trip changed the graph: %v vs %v", spec.Graph, back.Graph)
		}
		if !back.Z.Equal(spec.Z) {
			t.Fatalf("round trip changed the structure: %v vs %v", spec.Z, back.Z)
		}
		if back.Knowledge != spec.Knowledge {
			t.Fatalf("round trip changed knowledge: %v vs %v", spec.Knowledge, back.Knowledge)
		}
		if back.Dealer != spec.Dealer || back.Receiver != spec.Receiver {
			t.Fatalf("round trip changed endpoints: %d/%d vs %d/%d",
				spec.Dealer, spec.Receiver, back.Dealer, back.Receiver)
		}
	})
}

// FuzzParseNodeSet checks the node-set parser.
func FuzzParseNodeSet(f *testing.F) {
	for _, seed := range []string{"1,2,3", "", " 7 ", "0", "1,,2", "x"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseNodeSet(s)
		if err != nil {
			return
		}
		if set.Len() < 0 {
			t.Fatal("negative length")
		}
		set.ForEach(func(id int) bool {
			if id < 0 {
				t.Fatalf("negative member %d", id)
			}
			return true
		})
	})
}
