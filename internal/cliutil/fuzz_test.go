package cliutil

import "testing"

// FuzzParseStructure checks the structure parser never panics and accepted
// inputs round-trip through FormatStructure.
func FuzzParseStructure(f *testing.F) {
	for _, seed := range []string{
		"1,2;3",
		"",
		";;",
		"1",
		"0,0,0",
		" 4 , 5 ; 6 ",
		"-1",
		"1,x",
		"9999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		z, err := ParseStructure(s)
		if err != nil {
			return
		}
		back, err := ParseStructure(FormatStructure(z))
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if !back.Equal(z) {
			t.Fatalf("round trip changed the structure: %v vs %v", z, back)
		}
	})
}

// FuzzParseNodeSet checks the node-set parser.
func FuzzParseNodeSet(f *testing.F) {
	for _, seed := range []string{"1,2,3", "", " 7 ", "0", "1,,2", "x"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseNodeSet(s)
		if err != nil {
			return
		}
		if set.Len() < 0 {
			t.Fatal("negative length")
		}
		set.ForEach(func(id int) bool {
			if id < 0 {
				t.Fatalf("negative member %d", id)
			}
			return true
		})
	})
}
