package cliutil

import (
	"strings"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
)

const sampleSpec = `# rmt instance v1
graph: 0-1 0-2 0-3 1-4 2-4 3-4
structure: 1;2;3
knowledge: adhoc
dealer: 0
receiver: 4
`

func TestParseInstanceSpec(t *testing.T) {
	spec, err := ParseInstanceSpec(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Graph.NumNodes() != 5 || spec.Graph.NumEdges() != 6 {
		t.Fatalf("graph = %v", spec.Graph)
	}
	if !spec.Z.Equal(adversary.FromSlices([]int{1}, []int{2}, []int{3})) {
		t.Fatalf("structure = %v", spec.Z)
	}
	if spec.Knowledge != gen.AdHoc || spec.Dealer != 0 || spec.Receiver != 4 {
		t.Fatalf("fields = %+v", spec)
	}
	in, err := spec.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 5 {
		t.Fatalf("instance n = %d", in.N())
	}
}

func TestParseInstanceSpecDefaults(t *testing.T) {
	spec, err := ParseInstanceSpec("graph: 0-1\nreceiver: 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dealer != 0 || spec.Knowledge != gen.AdHoc {
		t.Fatalf("defaults wrong: %+v", spec)
	}
	if !spec.Z.Equal(adversary.Trivial()) {
		t.Fatal("default structure not trivial")
	}
}

func TestParseInstanceSpecErrors(t *testing.T) {
	cases := map[string]string{
		"no graph":     "receiver: 1\n",
		"no receiver":  "graph: 0-1\n",
		"bad key":      "graph: 0-1\nreceiver: 1\nwhat: 3\n",
		"no colon":     "graph 0-1\n",
		"bad graph":    "graph: x\nreceiver: 1\n",
		"bad struct":   "graph: 0-1\nreceiver: 1\nstructure: a\n",
		"bad know":     "graph: 0-1\nreceiver: 1\nknowledge: psychic\n",
		"bad dealer":   "graph: 0-1\nreceiver: 1\ndealer: x\n",
		"bad receiver": "graph: 0-1\nreceiver: x\n",
	}
	for name, text := range cases {
		if _, err := ParseInstanceSpec(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestInstanceSpecRoundTrip(t *testing.T) {
	g, err := graph.ParseEdgeList("0-1 1-2 5")
	if err != nil {
		t.Fatal(err)
	}
	spec := InstanceSpec{
		Graph:     g,
		Z:         adversary.FromSlices([]int{1}),
		Knowledge: gen.Radius2,
		Dealer:    0,
		Receiver:  2,
	}
	back, err := ParseInstanceSpec(spec.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Graph.Equal(spec.Graph) || !back.Z.Equal(spec.Z) ||
		back.Knowledge != spec.Knowledge || back.Dealer != spec.Dealer || back.Receiver != spec.Receiver {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", spec, back)
	}
}

func TestParseInstanceSpecIgnoresCommentsAndBlank(t *testing.T) {
	text := "\n\n# hi\n  # indented comment\ngraph: 0-1\n\nreceiver: 1\n"
	if _, err := ParseInstanceSpec(text); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseInstanceSpec lives in fuzz_test.go with the other fuzz targets.

func TestSpecFormatContainsAllKeys(t *testing.T) {
	spec, _ := ParseInstanceSpec(sampleSpec)
	out := spec.Format()
	for _, key := range []string{"graph:", "structure:", "knowledge:", "dealer:", "receiver:"} {
		if !strings.Contains(out, key) {
			t.Errorf("Format missing %s", key)
		}
	}
}
