package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
)

// InstanceSpec is the parsed form of the textual instance format shared by
// the CLI tools:
//
//	# rmt instance v1
//	graph: 0-1 0-2 0-3 1-4 2-4 3-4
//	structure: 1;2;3
//	knowledge: adhoc
//	dealer: 0
//	receiver: 4
//
// Lines starting with '#' are comments; keys may appear in any order;
// structure defaults to no corruption, knowledge to adhoc, dealer to 0.
type InstanceSpec struct {
	Graph     *graph.Graph
	Z         adversary.Structure
	Knowledge gen.Knowledge
	Dealer    int
	Receiver  int
}

// ParseInstanceSpec parses the textual instance format.
func ParseInstanceSpec(text string) (InstanceSpec, error) {
	spec := InstanceSpec{
		Z:         adversary.Trivial(),
		Knowledge: gen.AdHoc,
		Dealer:    0,
		Receiver:  -1,
	}
	seenGraph := false
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, found := strings.Cut(line, ":")
		if !found {
			return InstanceSpec{}, fmt.Errorf("cliutil: line %d: missing ':' in %q", lineNo+1, line)
		}
		key = strings.TrimSpace(strings.ToLower(key))
		value = strings.TrimSpace(value)
		var err error
		switch key {
		case "graph":
			spec.Graph, err = graph.ParseEdgeList(value)
			seenGraph = true
		case "structure":
			spec.Z, err = ParseStructure(value)
		case "knowledge":
			spec.Knowledge, err = ParseKnowledge(value)
		case "dealer":
			spec.Dealer, err = strconv.Atoi(value)
		case "receiver":
			spec.Receiver, err = strconv.Atoi(value)
		default:
			return InstanceSpec{}, fmt.Errorf("cliutil: line %d: unknown key %q", lineNo+1, key)
		}
		if err != nil {
			return InstanceSpec{}, fmt.Errorf("cliutil: line %d: %w", lineNo+1, err)
		}
	}
	if !seenGraph {
		return InstanceSpec{}, fmt.Errorf("cliutil: spec has no graph")
	}
	if spec.Receiver < 0 {
		return InstanceSpec{}, fmt.Errorf("cliutil: spec has no receiver")
	}
	return spec, nil
}

// Format renders the spec in the textual instance format; ParseInstanceSpec
// round-trips it.
func (s InstanceSpec) Format() string {
	var b strings.Builder
	b.WriteString("# rmt instance v1\n")
	fmt.Fprintf(&b, "graph: %s\n", FormatEdgeList(s.Graph))
	fmt.Fprintf(&b, "structure: %s\n", FormatStructure(s.Z))
	fmt.Fprintf(&b, "knowledge: %s\n", s.Knowledge)
	fmt.Fprintf(&b, "dealer: %d\n", s.Dealer)
	fmt.Fprintf(&b, "receiver: %d\n", s.Receiver)
	return b.String()
}

// Instance validates and builds the RMT instance the spec describes.
func (s InstanceSpec) Instance() (*instance.Instance, error) {
	return gen.Build(s.Graph, s.Z, s.Knowledge, s.Dealer, s.Receiver)
}
