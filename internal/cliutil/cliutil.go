// Package cliutil holds the small parsing and formatting helpers shared by
// the command-line tools in cmd/.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/nodeset"
)

// MaxNodeID bounds node IDs accepted from external input: node sets are
// dense bitsets, so an absurd ID would allocate proportional memory.
const MaxNodeID = 1 << 20

func parseBoundedID(s string) (int, error) {
	id, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if id < 0 {
		return 0, fmt.Errorf("negative node %d", id)
	}
	if id > MaxNodeID {
		return 0, fmt.Errorf("node %d exceeds the %d ID limit", id, MaxNodeID)
	}
	return id, nil
}

// ParseStructure parses an adversary structure written as semicolon-
// separated corruption sets of comma-separated node IDs, e.g. "1,2;3;4,5".
// An empty string yields the no-corruption structure.
func ParseStructure(s string) (adversary.Structure, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return adversary.Trivial(), nil
	}
	var sets []nodeset.Set
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		set := nodeset.Empty()
		for _, f := range strings.Split(part, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			id, err := parseBoundedID(f)
			if err != nil {
				return adversary.Structure{}, fmt.Errorf("cliutil: bad node %q in structure: %w", f, err)
			}
			set = set.Add(id)
		}
		sets = append(sets, set)
	}
	return adversary.FromSets(sets...), nil
}

// ParseKnowledge parses a knowledge level name.
func ParseKnowledge(s string) (gen.Knowledge, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "adhoc", "ad-hoc":
		return gen.AdHoc, nil
	case "radius1", "r1":
		return gen.Radius1, nil
	case "radius2", "r2":
		return gen.Radius2, nil
	case "radius3", "r3":
		return gen.Radius3, nil
	case "full":
		return gen.FullKnowledge, nil
	default:
		return 0, fmt.Errorf("cliutil: unknown knowledge level %q (want adhoc|radius1|radius2|radius3|full)", s)
	}
}

// ParseNodeSet parses a comma-separated list of node IDs.
func ParseNodeSet(s string) (nodeset.Set, error) {
	s = strings.TrimSpace(s)
	set := nodeset.Empty()
	if s == "" {
		return set, nil
	}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := parseBoundedID(f)
		if err != nil {
			return nodeset.Set{}, fmt.Errorf("cliutil: bad node %q: %w", f, err)
		}
		set = set.Add(id)
	}
	return set, nil
}

// FormatStructure renders a structure in ParseStructure's syntax.
func FormatStructure(z adversary.Structure) string {
	var parts []string
	for _, m := range z.Maximal() {
		ids := make([]string, 0, m.Len())
		m.ForEach(func(v int) bool {
			ids = append(ids, strconv.Itoa(v))
			return true
		})
		parts = append(parts, strings.Join(ids, ","))
	}
	return strings.Join(parts, ";")
}

// FormatEdgeList renders a graph in graph.ParseEdgeList syntax.
type EdgeLister interface {
	Edges() [][2]int
	Nodes() nodeset.Set
	Degree(v int) int
}

// FormatEdgeList renders edges as "u-v ..." plus isolated nodes.
func FormatEdgeList(g EdgeLister) string {
	var parts []string
	for _, e := range g.Edges() {
		parts = append(parts, fmt.Sprintf("%d-%d", e[0], e[1]))
	}
	g.Nodes().ForEach(func(v int) bool {
		if g.Degree(v) == 0 {
			parts = append(parts, strconv.Itoa(v))
		}
		return true
	})
	return strings.Join(parts, " ")
}
