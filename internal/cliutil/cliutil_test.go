package cliutil

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/nodeset"
)

func TestParseStructure(t *testing.T) {
	z, err := ParseStructure("1,2; 3 ;4,5")
	if err != nil {
		t.Fatal(err)
	}
	want := adversary.FromSlices([]int{1, 2}, []int{3}, []int{4, 5})
	if !z.Equal(want) {
		t.Fatalf("got %v, want %v", z, want)
	}
}

func TestParseStructureEmpty(t *testing.T) {
	z, err := ParseStructure("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !z.Equal(adversary.Trivial()) {
		t.Fatalf("got %v", z)
	}
}

func TestParseStructureErrors(t *testing.T) {
	for _, bad := range []string{"a", "1,x", "-3"} {
		if _, err := ParseStructure(bad); err == nil {
			t.Errorf("ParseStructure(%q) succeeded", bad)
		}
	}
}

func TestParseStructureRoundTrip(t *testing.T) {
	z := adversary.FromSlices([]int{1, 2}, []int{7})
	back, err := ParseStructure(FormatStructure(z))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(z) {
		t.Fatalf("round trip: %v != %v", back, z)
	}
}

func TestParseKnowledge(t *testing.T) {
	tests := map[string]gen.Knowledge{
		"adhoc": gen.AdHoc, "AD-HOC": gen.AdHoc,
		"r1": gen.Radius1, "radius2": gen.Radius2, "R3": gen.Radius3,
		"full": gen.FullKnowledge,
	}
	for in, want := range tests {
		got, err := ParseKnowledge(in)
		if err != nil || got != want {
			t.Errorf("ParseKnowledge(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseKnowledge("psychic"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestParseNodeSet(t *testing.T) {
	s, err := ParseNodeSet("3, 1 ,2")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(nodeset.Of(1, 2, 3)) {
		t.Fatalf("got %v", s)
	}
	empty, err := ParseNodeSet("")
	if err != nil || !empty.IsEmpty() {
		t.Fatal("empty parse wrong")
	}
	if _, err := ParseNodeSet("1,b"); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestFormatEdgeListRoundTrip(t *testing.T) {
	g, err := graph.ParseEdgeList("0-1 1-2 5")
	if err != nil {
		t.Fatal(err)
	}
	back, err := graph.ParseEdgeList(FormatEdgeList(g))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatalf("round trip: %v != %v", back, g)
	}
}
