package nodeset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() not empty")
	}
	if e.Len() != 0 {
		t.Fatalf("Empty().Len() = %d, want 0", e.Len())
	}
	if e.Contains(0) || e.Contains(63) || e.Contains(64) {
		t.Fatal("Empty() contains an element")
	}
	if e.Min() != -1 || e.Max() != -1 {
		t.Fatalf("Empty() Min/Max = %d/%d, want -1/-1", e.Min(), e.Max())
	}
	if got := e.String(); got != "{}" {
		t.Fatalf("Empty().String() = %q, want {}", got)
	}
}

func TestZeroValueIsEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero-value Set is not the empty set")
	}
	if !s.Equal(Empty()) {
		t.Fatal("zero-value Set != Empty()")
	}
}

func TestOfAndContains(t *testing.T) {
	tests := []struct {
		name string
		ids  []int
		in   []int
		out  []int
	}{
		{"single", []int{3}, []int{3}, []int{0, 2, 4, 64}},
		{"word boundary", []int{63, 64, 65}, []int{63, 64, 65}, []int{62, 66, 127, 128}},
		{"duplicates collapse", []int{5, 5, 5}, []int{5}, []int{4, 6}},
		{"sparse", []int{0, 200}, []int{0, 200}, []int{1, 199, 201}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := Of(tt.ids...)
			for _, id := range tt.in {
				if !s.Contains(id) {
					t.Errorf("Contains(%d) = false, want true", id)
				}
			}
			for _, id := range tt.out {
				if s.Contains(id) {
					t.Errorf("Contains(%d) = true, want false", id)
				}
			}
		})
	}
}

func TestContainsNegative(t *testing.T) {
	if Of(1, 2).Contains(-1) {
		t.Fatal("Contains(-1) = true")
	}
}

func TestAddRemove(t *testing.T) {
	s := Of(1, 2, 3)
	s2 := s.Add(100)
	if s.Contains(100) {
		t.Fatal("Add mutated receiver")
	}
	if !s2.Contains(100) || s2.Len() != 4 {
		t.Fatal("Add did not add")
	}
	s3 := s2.Remove(100)
	if !s3.Equal(s) {
		t.Fatalf("remove after add: got %v, want %v", s3, s)
	}
	if !s.Remove(99).Equal(s) {
		t.Fatal("removing a non-member changed the set")
	}
	// Removing the top element must renormalize so Equal still works.
	top := Of(500)
	if !top.Remove(500).Equal(Empty()) {
		t.Fatal("Remove(top) != Empty")
	}
}

func TestRange(t *testing.T) {
	tests := []struct {
		lo, hi int
		want   []int
	}{
		{0, 0, nil},
		{5, 3, nil},
		{0, 3, []int{0, 1, 2}},
		{62, 66, []int{62, 63, 64, 65}},
	}
	for _, tt := range tests {
		got := Range(tt.lo, tt.hi).Members()
		want := tt.want
		if want == nil {
			want = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Range(%d,%d) = %v, want %v", tt.lo, tt.hi, got, want)
		}
	}
}

func TestUniverse(t *testing.T) {
	u := Universe(10)
	if u.Len() != 10 || u.Min() != 0 || u.Max() != 9 {
		t.Fatalf("Universe(10) wrong: %v", u)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3, 64)
	b := Of(3, 4, 64, 100)
	if got := a.Union(b).Members(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 64, 100}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Members(); !reflect.DeepEqual(got, []int{3, 64}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b).Members(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.SymmetricDiff(b).Members(); !reflect.DeepEqual(got, []int{1, 2, 4, 100}) {
		t.Errorf("SymmetricDiff = %v", got)
	}
}

func TestSubsetRelations(t *testing.T) {
	a := Of(1, 2)
	b := Of(1, 2, 3)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a not subset of itself")
	}
	if !a.ProperSubsetOf(b) || a.ProperSubsetOf(a) {
		t.Fatal("ProperSubsetOf wrong")
	}
	if !Empty().SubsetOf(a) {
		t.Fatal("empty not subset")
	}
	// Subset comparison across different word lengths.
	if Of(100).SubsetOf(Of(1)) {
		t.Fatal("{100} ⊆ {1}")
	}
}

func TestIntersectsDisjoint(t *testing.T) {
	if !Of(1, 64).Intersects(Of(64)) {
		t.Fatal("Intersects false negative")
	}
	if Of(1).Intersects(Of(2)) {
		t.Fatal("Intersects false positive")
	}
	if !Of(1).Disjoint(Of(2)) {
		t.Fatal("Disjoint false negative")
	}
	if !Empty().Disjoint(Empty()) {
		t.Fatal("empty sets not disjoint")
	}
}

func TestMinMaxMembers(t *testing.T) {
	s := Of(7, 3, 200, 64)
	if s.Min() != 3 {
		t.Errorf("Min = %d", s.Min())
	}
	if s.Max() != 200 {
		t.Errorf("Max = %d", s.Max())
	}
	if got := s.Members(); !reflect.DeepEqual(got, []int{3, 7, 64, 200}) {
		t.Errorf("Members = %v", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := Of(1, 2, 3, 4, 5)
	var seen []int
	s.ForEach(func(id int) bool {
		seen = append(seen, id)
		return len(seen) < 3
	})
	if !reflect.DeepEqual(seen, []int{1, 2, 3}) {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Set
		want int
	}{
		{Empty(), Empty(), 0},
		{Of(1), Of(1), 0},
		{Of(1), Of(1, 2), -1},    // smaller cardinality first
		{Of(1, 2), Of(1), 1},     //
		{Of(1, 3), Of(2, 3), -1}, // lexicographic on members
		{Of(2, 3), Of(1, 4), 1},  //
		{Of(64), Of(65), -1},     // across word boundaries
		{Of(0, 100), Of(1, 99), -1} /* min member 0 < 1 */}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Compare(tt.a); got != -tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.b, tt.a, got, -tt.want)
		}
	}
}

func TestKeyUniqueness(t *testing.T) {
	sets := []Set{Empty(), Of(0), Of(1), Of(0, 1), Of(64), Of(0, 64), Of(63), Of(63, 64)}
	keys := map[string]Set{}
	for _, s := range sets {
		k := s.Key()
		if prev, ok := keys[k]; ok {
			t.Fatalf("Key collision between %v and %v", prev, s)
		}
		keys[k] = s
	}
	// Key must be stable under normal-form round trips.
	if Of(500).Remove(500).Key() != Empty().Key() {
		t.Fatal("Key not normalized")
	}
}

func TestString(t *testing.T) {
	if got := Of(3, 1, 2).String(); got != "{1, 2, 3}" {
		t.Fatalf("String = %q", got)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	s := Of(0, 63, 64, 130)
	if !FromWords(s.Words()).Equal(s) {
		t.Fatal("FromWords(Words()) round trip failed")
	}
	// FromWords must normalize trailing zeros.
	if !FromWords([]uint64{1, 0, 0}).Equal(Of(0)) {
		t.Fatal("FromWords did not normalize")
	}
	// FromWords must copy its input.
	w := []uint64{1}
	s2 := FromWords(w)
	w[0] = 2
	if !s2.Equal(Of(0)) {
		t.Fatal("FromWords aliased its input")
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := Of(2, 5, 9)
	var got []string
	s.Subsets(func(sub Set) bool {
		if !sub.SubsetOf(s) {
			t.Errorf("enumerated non-subset %v", sub)
		}
		got = append(got, sub.String())
		return true
	})
	if len(got) != 8 {
		t.Fatalf("enumerated %d subsets, want 8", len(got))
	}
	sort.Strings(got)
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("duplicate subset %s", got[i])
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	n := 0
	Of(1, 2, 3, 4).Subsets(func(Set) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop after %d, want 5", n)
	}
}

func TestSubsetsGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subsets on 31 members did not panic")
		}
	}()
	Universe(31).Subsets(func(Set) bool { return true })
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	Empty().Add(-1)
}

// randomSet draws a set over {0..n-1} with density p.
func randomSet(r *rand.Rand, n int, p float64) Set {
	var s Set
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			s = s.Add(i)
		}
	}
	return s
}

// genSet adapts randomSet to testing/quick's generator protocol.
type genSet struct{ S Set }

func (genSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(130)
	return reflect.ValueOf(genSet{S: randomSet(r, n, r.Float64())})
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(a, b genSet) bool { return a.S.Union(b.S).Equal(b.S.Union(a.S)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b genSet) bool { return a.S.Intersect(b.S).Equal(b.S.Intersect(a.S)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// a \ (b ∪ c) == (a \ b) ∩ (a \ c)
	f := func(a, b, c genSet) bool {
		lhs := a.S.Minus(b.S.Union(c.S))
		rhs := a.S.Minus(b.S).Intersect(a.S.Minus(c.S))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionAssociative(t *testing.T) {
	f := func(a, b, c genSet) bool {
		return a.S.Union(b.S).Union(c.S).Equal(a.S.Union(b.S.Union(c.S)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLenUnionInclusionExclusion(t *testing.T) {
	f := func(a, b genSet) bool {
		return a.S.Union(b.S).Len() == a.S.Len()+b.S.Len()-a.S.Intersect(b.S).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSymmetricDiffViaMinus(t *testing.T) {
	f := func(a, b genSet) bool {
		want := a.S.Minus(b.S).Union(b.S.Minus(a.S))
		return a.S.SymmetricDiff(b.S).Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetIffMinusEmpty(t *testing.T) {
	f := func(a, b genSet) bool {
		return a.S.SubsetOf(b.S) == a.S.Minus(b.S).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(a, b genSet) bool {
		ab, ba := a.S.Compare(b.S), b.S.Compare(a.S)
		if ab != -ba {
			return false
		}
		return (ab == 0) == a.S.Equal(b.S)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(a, b genSet) bool {
		return (a.S.Key() == b.S.Key()) == a.S.Equal(b.S)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMembersRoundTrip(t *testing.T) {
	f := func(a genSet) bool {
		return FromSlice(a.S.Members()).Equal(a.S)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnion(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 256, 0.3)
	y := randomSet(r, 256, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkMembers(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randomSet(r, 256, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Members()
	}
}
