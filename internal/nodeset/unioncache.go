package nodeset

import "sync"

// UnionCache memoizes a monotone set-valued fold F(B) = ∪_{v ∈ B} f(v),
// keyed by Set.Key(). Because set union is commutative, associative and
// idempotent, F(B) can be computed incrementally as F(B \ {max B}) ∪ f(max B)
// and every sub-fold shared between overlapping arguments — exactly the
// access pattern of candidate enumerations that grow components one node at
// a time.
//
// The per-node function f must be pure: it is called at most once per node
// and its result is retained. A UnionCache is safe for concurrent use.
type UnionCache struct {
	mu      sync.Mutex
	f       func(v int) Set
	memo    map[string]Set
	perNode map[int]Set
	kbuf    []byte // scratch for allocation-free memo probes (guarded by mu)
}

// NewUnionCache returns a cache over the per-node function f.
func NewUnionCache(f func(v int) Set) *UnionCache {
	return &UnionCache{f: f, memo: make(map[string]Set), perNode: make(map[int]Set)}
}

// Of returns ∪_{v ∈ b} f(v), reusing every previously computed sub-fold.
// The returned Set is shared with the cache and must not be mutated.
func (c *UnionCache) Of(b Set) Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.of(b)
}

func (c *UnionCache) of(b Set) Set {
	if b.IsEmpty() {
		return Set{}
	}
	// Allocation-free probe via a reused key buffer (see JoinCache.jointOf
	// for the idiom); the key string is only materialized on insert.
	c.kbuf = b.AppendKey(c.kbuf[:0])
	if s, ok := c.memo[string(c.kbuf)]; ok {
		return s
	}
	v := b.Max()
	fv, ok := c.perNode[v]
	if !ok {
		fv = c.f(v)
		c.perNode[v] = fv
	}
	u := c.of(b.Remove(v)).Union(fv)
	c.memo[b.Key()] = u
	return u
}
