// Package nodeset provides a compact bitset representation for sets of node
// identifiers. It is the substrate under every graph, adversary-structure and
// view operation in this repository: adversary structures are antichains of
// Sets, graph separators are Sets, and the joint-view operation is a loop of
// Set algebra.
//
// Node identifiers are small non-negative integers (dense IDs assigned by
// internal/graph). A Set is an immutable-by-convention value: all methods
// with set results allocate a fresh Set and never mutate their receiver,
// except those whose names start with "Mutate" which are provided for hot
// loops. Sets compare equal with Equal, hash with Key, and order canonically
// with Compare, which makes them usable as map keys (via Key) and sortable.
package nodeset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of non-negative node IDs backed by a []uint64 bitset.
// The zero value is the empty set and is ready to use.
//
// Invariant: the last word, if any, is non-zero (no trailing zero words).
// All constructors and operations maintain this normal form so that Equal
// and Key can operate word-wise.
type Set struct {
	words []uint64
}

// Empty returns the empty set.
func Empty() Set { return Set{} }

// Of returns the set containing exactly the given IDs.
func Of(ids ...int) Set {
	var s Set
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// FromSlice returns the set containing exactly the IDs in the slice.
func FromSlice(ids []int) Set { return Of(ids...) }

// Range returns the set {lo, lo+1, ..., hi-1}.
func Range(lo, hi int) Set {
	if lo < 0 {
		panic("nodeset: negative ID in Range")
	}
	if hi <= lo {
		return Set{}
	}
	words := make([]uint64, (hi+wordBits-1)/wordBits)
	for i := lo; i < hi; i++ {
		words[i/wordBits] |= 1 << uint(i%wordBits)
	}
	return normalize(words)
}

// Universe returns the set {0, 1, ..., n-1}.
func Universe(n int) Set { return Range(0, n) }

func normalize(words []uint64) Set {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	if n == 0 {
		return Set{}
	}
	return Set{words: words[:n]}
}

// clone returns a copy of s's words with capacity for at least n words.
func (s Set) clone(n int) []uint64 {
	if n < len(s.words) {
		n = len(s.words)
	}
	words := make([]uint64, n)
	copy(words, s.words)
	return words
}

// Contains reports whether id is a member of s.
func (s Set) Contains(id int) bool {
	if id < 0 {
		return false
	}
	w := id / wordBits
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<uint(id%wordBits)) != 0
}

// Add returns s ∪ {id}.
func (s Set) Add(id int) Set {
	if id < 0 {
		panic("nodeset: negative ID")
	}
	w := id / wordBits
	words := s.clone(w + 1)
	words[w] |= 1 << uint(id%wordBits)
	return Set{words: words}
}

// Remove returns s \ {id}.
func (s Set) Remove(id int) Set {
	if !s.Contains(id) {
		return s
	}
	words := s.clone(len(s.words))
	words[id/wordBits] &^= 1 << uint(id%wordBits)
	return normalize(words)
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if len(s.words) < len(t.words) {
		s, t = t, s
	}
	words := s.clone(len(s.words))
	for i, w := range t.words {
		words[i] |= w
	}
	return Set{words: words}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	words := make([]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = s.words[i] & t.words[i]
	}
	return normalize(words)
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	words := s.clone(len(s.words))
	n := len(t.words)
	if len(words) < n {
		n = len(words)
	}
	for i := 0; i < n; i++ {
		words[i] &^= t.words[i]
	}
	return normalize(words)
}

// trim re-establishes the no-trailing-zero-words invariant in place.
func (s *Set) trim() {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	s.words = s.words[:n]
}

// MutateAdd sets s to s ∪ {id} in place. Like all Mutate methods it must
// only be called on a set the caller exclusively owns (e.g. freshly
// returned by a non-mutating operation): Sets copied by assignment share
// their backing words.
func (s *Set) MutateAdd(id int) {
	if id < 0 {
		panic("nodeset: negative ID")
	}
	w := id / wordBits
	if w >= len(s.words) {
		if w < cap(s.words) {
			// Reuse spare capacity (scratch sets cleared with MutateClear or
			// shrunk by trim leave stale words behind the length).
			old := len(s.words)
			s.words = s.words[:w+1]
			for i := old; i <= w; i++ {
				s.words[i] = 0
			}
		} else {
			words := make([]uint64, w+1)
			copy(words, s.words)
			s.words = words
		}
	}
	s.words[w] |= 1 << uint(id%wordBits)
}

// MutateClear empties s in place, retaining the backing capacity so the set
// can be refilled with MutateAdd/MutateUnion without reallocating. For
// exclusively owned scratch sets only, like every Mutate method.
func (s *Set) MutateClear() {
	s.words = s.words[:0]
}

// MutateRemove sets s to s \ {id} in place.
func (s *Set) MutateRemove(id int) {
	if !s.Contains(id) {
		return
	}
	s.words[id/wordBits] &^= 1 << uint(id%wordBits)
	s.trim()
}

// MutateUnion sets s to s ∪ t in place. t is never retained or modified:
// growing allocates a fresh word slice rather than aliasing t.
func (s *Set) MutateUnion(t Set) {
	if len(t.words) > len(s.words) {
		words := make([]uint64, len(t.words))
		copy(words, s.words)
		s.words = words
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// MutateMinus sets s to s \ t in place.
func (s *Set) MutateMinus(t Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
	s.trim()
}

// SymmetricDiff returns (s \ t) ∪ (t \ s).
func (s Set) SymmetricDiff(t Set) Set {
	if len(s.words) < len(t.words) {
		s, t = t, s
	}
	words := s.clone(len(s.words))
	for i, w := range t.words {
		words[i] ^= w
	}
	return normalize(words)
}

// IsEmpty reports whether s has no members.
func (s Set) IsEmpty() bool { return len(s.words) == 0 }

// Len returns the number of members of s.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether s and t have exactly the same members.
func (s Set) Equal(t Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i, w := range s.words {
		if t.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is a member of t.
func (s Set) SubsetOf(t Set) bool {
	if len(s.words) > len(t.words) {
		return false
	}
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Disjoint reports whether s ∩ t is empty.
func (s Set) Disjoint(t Set) bool { return !s.Intersects(t) }

// Min returns the smallest member of s, or -1 if s is empty.
func (s Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest member of s, or -1 if s is empty.
func (s Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Members returns the members of s in increasing order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// ForEach calls fn on each member in increasing order. Iteration stops early
// if fn returns false.
func (s Set) ForEach(fn func(id int) bool) {
	for i, w := range s.words {
		for w != 0 {
			id := i*wordBits + bits.TrailingZeros64(w)
			if !fn(id) {
				return
			}
			w &= w - 1
		}
	}
}

// Compare orders sets first by cardinality, then lexicographically by their
// sorted member lists. It returns -1, 0, or +1. The ordering is total and is
// used to canonicalize antichains.
func (s Set) Compare(t Set) int {
	if a, b := s.Len(), t.Len(); a != b {
		if a < b {
			return -1
		}
		return 1
	}
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			// The set whose lowest differing bit is set has the smaller
			// minimum differing element, hence sorts first.
			diff := a ^ b
			low := diff & -diff
			if a&low != 0 {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Key returns a string that uniquely identifies the membership of s, for use
// as a map key. It is not human readable; use String for display.
func (s Set) Key() string {
	if len(s.words) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> (8 * i)))
		}
	}
	return b.String()
}

// AppendKey appends the Key bytes of s to dst and returns the extended
// slice. It is the allocation-free form of Key for callers assembling
// compound map keys in a reused buffer.
func (s Set) AppendKey(dst []byte) []byte {
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(w>>(8*i)))
		}
	}
	return dst
}

// String renders s as "{a, b, c}" with members in increasing order.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(id))
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Words returns a copy of the underlying bitset words (normal form).
func (s Set) Words() []uint64 {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return out
}

// FromWords builds a Set from raw bitset words.
func FromWords(words []uint64) Set {
	cp := make([]uint64, len(words))
	copy(cp, words)
	return normalize(cp)
}

// Subsets calls fn on every subset of s, including the empty set and s
// itself, in an unspecified order. Iteration stops early if fn returns
// false. It panics if s has more than 30 members, as a guard against
// accidental exponential blowups.
func (s Set) Subsets(fn func(sub Set) bool) {
	members := s.Members()
	if len(members) > 30 {
		panic("nodeset: Subsets on a set with more than 30 members")
	}
	n := uint(len(members))
	for mask := uint64(0); mask < 1<<n; mask++ {
		var sub Set
		for i := uint(0); i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = sub.Add(members[i])
			}
		}
		if !fn(sub) {
			return
		}
	}
}
