package nodeset

import (
	"math/rand"
	"sync"
	"testing"
)

// copyOf returns an exclusively-owned copy safe to hand to Mutate* methods.
func copyOf(s Set) Set {
	var c Set
	c.MutateUnion(s)
	return c
}

// TestMutateOpsMatchPureOps: each in-place operation must produce a set that
// is Equal to — and shares the canonical Key of — its allocating counterpart,
// across random operand pairs of mismatched word lengths.
func TestMutateOpsMatchPureOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := randomSet(r, 1+r.Intn(130), 0.5) // spans 1–3 words
		b := randomSet(r, 1+r.Intn(130), 0.5)
		v := r.Intn(130)

		m := copyOf(a)
		m.MutateAdd(v)
		if want := a.Add(v); !m.Equal(want) || m.Key() != want.Key() {
			t.Fatalf("MutateAdd(%d): %v (key %q), want %v (key %q)", v, m, m.Key(), want, want.Key())
		}

		m = copyOf(a)
		m.MutateRemove(v)
		if want := a.Remove(v); !m.Equal(want) || m.Key() != want.Key() {
			t.Fatalf("MutateRemove(%d): %v (key %q), want %v (key %q)", v, m, m.Key(), want, want.Key())
		}

		m = copyOf(a)
		m.MutateUnion(b)
		if want := a.Union(b); !m.Equal(want) || m.Key() != want.Key() {
			t.Fatalf("MutateUnion: %v (key %q), want %v (key %q)", m, m.Key(), want, want.Key())
		}

		m = copyOf(a)
		m.MutateMinus(b)
		if want := a.Minus(b); !m.Equal(want) || m.Key() != want.Key() {
			t.Fatalf("MutateMinus: %v (key %q), want %v (key %q)", m, m.Key(), want, want.Key())
		}
	}
}

// TestMutateUnionNeverAliasesArgument: after s.MutateUnion(t), mutating s
// further must not disturb t — the grow path must allocate fresh words
// rather than adopting t's slice.
func TestMutateUnionNeverAliasesArgument(t *testing.T) {
	big := Of(1, 70, 130)
	snapshot := big.Key()
	var s Set
	s.MutateUnion(big) // s was empty: the grow path runs
	s.MutateRemove(70)
	s.MutateAdd(200)
	if big.Key() != snapshot {
		t.Fatalf("argument mutated through aliasing: %v (key %q), want key %q", big, big.Key(), snapshot)
	}
}

// TestUnionCacheMatchesDirectUnion: the memoized incremental union must
// agree with the direct fold for arbitrary (including repeated) queries.
func TestUnionCacheMatchesDirectUnion(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(9)
		vals := make([]Set, n)
		for v := range vals {
			vals[v] = randomSet(r, 70, 0.5)
		}
		calls := 0
		c := NewUnionCache(func(v int) Set { calls++; return vals[v] })
		for q := 0; q < 30; q++ {
			b := randomSet(r, n, 0.5)
			want := Empty()
			b.ForEach(func(v int) bool { want = want.Union(vals[v]); return true })
			if got := c.Of(b); !got.Equal(want) {
				t.Fatalf("trial %d: Of(%v) = %v, want %v", trial, b, got, want)
			}
		}
		if calls > n {
			t.Fatalf("per-node function called %d times for %d nodes — memoization broken", calls, n)
		}
	}
}

// TestUnionCacheConcurrent is the -race smoke test for the shared memo.
func TestUnionCacheConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vals := make([]Set, 12)
	for v := range vals {
		vals[v] = randomSet(r, 70, 0.5)
	}
	c := NewUnionCache(func(v int) Set { return vals[v] })
	queries := make([]Set, 24)
	for i := range queries {
		queries[i] = randomSet(r, len(vals), 0.5)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range queries {
				want := Empty()
				b.ForEach(func(v int) bool { want = want.Union(vals[v]); return true })
				if got := c.Of(b); !got.Equal(want) {
					panic("concurrent UnionCache mismatch")
				}
			}
		}()
	}
	wg.Wait()
}
