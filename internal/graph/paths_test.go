package graph

import (
	"reflect"
	"testing"

	"rmt/internal/nodeset"
)

func collectPaths(g *Graph, src, dst int, avoid nodeset.Set) []Path {
	var out []Path
	g.AllPaths(src, dst, avoid, func(p Path) bool {
		out = append(out, p.Clone())
		return true
	})
	return out
}

func TestPathBasics(t *testing.T) {
	p := Path{0, 1, 2}
	if p.Head() != 0 || p.Tail() != 2 {
		t.Fatal("Head/Tail wrong")
	}
	if !p.Contains(1) || p.Contains(3) {
		t.Fatal("Contains wrong")
	}
	q := p.Append(3)
	if !q.Equal(Path{0, 1, 2, 3}) {
		t.Fatalf("Append = %v", q)
	}
	if !p.Equal(Path{0, 1, 2}) {
		t.Fatal("Append mutated the path")
	}
	if !p.Set().Equal(nodeset.Of(0, 1, 2)) {
		t.Fatal("Set wrong")
	}
	if !p.Interior().Equal(nodeset.Of(1)) {
		t.Fatal("Interior wrong")
	}
	if !(Path{5}).Interior().IsEmpty() {
		t.Fatal("singleton Interior not empty")
	}
	cp := p.Clone()
	cp[0] = 9
	if p[0] != 0 {
		t.Fatal("Clone aliases")
	}
}

func TestPathValidIn(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3 0-3")
	tests := []struct {
		p    Path
		want bool
	}{
		{Path{0, 1, 2, 3}, true},
		{Path{0}, true},
		{Path{}, false},
		{Path{0, 2}, false},      // not adjacent
		{Path{0, 1, 0}, false},   // repeats
		{Path{0, 1, 9}, false},   // non-node
		{Path{3, 0, 1, 2}, true}, //
		{Path{0, 3, 2, 1}, true}} //
	for _, tt := range tests {
		if got := tt.p.ValidIn(g); got != tt.want {
			t.Errorf("ValidIn(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestAllPathsDiamond(t *testing.T) {
	// 0-1-3 and 0-2-3 plus chord 1-2.
	g := mustParse(t, "0-1 0-2 1-3 2-3 1-2")
	paths := collectPaths(g, 0, 3, nodeset.Empty())
	want := []Path{{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 1, 3}, {0, 2, 3}}
	if len(paths) != len(want) {
		t.Fatalf("got %d paths %v, want %d", len(paths), paths, len(want))
	}
	for i := range want {
		if !paths[i].Equal(want[i]) {
			t.Errorf("path[%d] = %v, want %v", i, paths[i], want[i])
		}
	}
}

func TestAllPathsAvoid(t *testing.T) {
	g := mustParse(t, "0-1 0-2 1-3 2-3")
	paths := collectPaths(g, 0, 3, nodeset.Of(1))
	if len(paths) != 1 || !paths[0].Equal(Path{0, 2, 3}) {
		t.Fatalf("avoid paths = %v", paths)
	}
	// Avoiding an endpoint yields nothing.
	if got := collectPaths(g, 0, 3, nodeset.Of(0)); got != nil {
		t.Fatalf("paths avoiding src = %v", got)
	}
}

func TestAllPathsSrcEqualsDst(t *testing.T) {
	g := mustParse(t, "0-1")
	paths := collectPaths(g, 0, 0, nodeset.Empty())
	if len(paths) != 1 || !paths[0].Equal(Path{0}) {
		t.Fatalf("self paths = %v", paths)
	}
}

func TestAllPathsEarlyStop(t *testing.T) {
	g := mustParse(t, "0-1 0-2 1-3 2-3 1-2")
	n := 0
	g.AllPaths(0, 3, nodeset.Empty(), func(Path) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop after %d", n)
	}
}

func TestCountPaths(t *testing.T) {
	g := mustParse(t, "0-1 0-2 1-3 2-3 1-2")
	if got := g.CountPaths(0, 3, nodeset.Empty(), 0); got != 4 {
		t.Fatalf("CountPaths = %d, want 4", got)
	}
	if got := g.CountPaths(0, 3, nodeset.Empty(), 2); got != 2 {
		t.Fatalf("CountPaths limited = %d, want 2", got)
	}
	if got := g.CountPaths(0, 3, nodeset.Of(1, 2), 0); got != 0 {
		t.Fatalf("CountPaths all blocked = %d, want 0", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3 0-4 4-3")
	p := g.ShortestPath(0, 3, nodeset.Empty())
	if len(p) != 3 || p.Head() != 0 || p.Tail() != 3 {
		t.Fatalf("ShortestPath = %v", p)
	}
	if !p.ValidIn(g) {
		t.Fatalf("ShortestPath invalid: %v", p)
	}
	p2 := g.ShortestPath(0, 3, nodeset.Of(4))
	if !p2.Equal(Path{0, 1, 2, 3}) {
		t.Fatalf("ShortestPath avoiding 4 = %v", p2)
	}
	if g.ShortestPath(0, 3, nodeset.Of(1, 4)) != nil {
		t.Fatal("ShortestPath found through blocked cut")
	}
	if !g.ShortestPath(2, 2, nodeset.Empty()).Equal(Path{2}) {
		t.Fatal("ShortestPath self wrong")
	}
	if g.ShortestPath(0, 99, nodeset.Empty()) != nil {
		t.Fatal("ShortestPath to non-node")
	}
}

func TestHasHonestPath(t *testing.T) {
	g := mustParse(t, "0-1 1-2 0-3 3-2")
	if !g.HasHonestPath(0, 2, nodeset.Of(1)) {
		t.Fatal("honest path via 3 missed")
	}
	if g.HasHonestPath(0, 2, nodeset.Of(1, 3)) {
		t.Fatal("phantom honest path")
	}
}

func TestAllPathsMatchBruteForceCount(t *testing.T) {
	// Complete graph K5: paths from 0 to 4 = sum over k of P(3,k) = 1 + 3 + 6 + 6 = 16.
	g := New()
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	if got := g.CountPaths(0, 4, nodeset.Empty(), 0); got != 16 {
		t.Fatalf("K5 path count = %d, want 16", got)
	}
	// All enumerated paths are valid simple paths and pairwise distinct.
	seen := map[string]bool{}
	g.AllPaths(0, 4, nodeset.Empty(), func(p Path) bool {
		if !p.ValidIn(g) {
			t.Errorf("invalid path %v", p)
		}
		k := ""
		for _, v := range p {
			k += string(rune('a' + v))
		}
		if seen[k] {
			t.Errorf("duplicate path %v", p)
		}
		seen[k] = true
		return true
	})
}

func TestPathsReflectDealerReceiverConvention(t *testing.T) {
	// A path graph: exactly one D-R path; removing the middle kills it.
	g := mustParse(t, "0-1 1-2")
	paths := collectPaths(g, 0, 2, nodeset.Empty())
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	if reflect.DeepEqual(paths[0], Path{0, 2}) {
		t.Fatal("nonexistent shortcut")
	}
}
