package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rmt/internal/nodeset"
)

func mustParse(t *testing.T, s string) *Graph {
	t.Helper()
	g, err := ParseEdgeList(s)
	if err != nil {
		t.Fatalf("ParseEdgeList(%q): %v", s, err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("New() not empty")
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
	if g.MaxID() != -1 {
		t.Fatalf("MaxID = %d", g.MaxID())
	}
}

func TestAddNodeEdge(t *testing.T) {
	g := New()
	g.AddEdge(0, 5)
	if !g.HasNode(0) || !g.HasNode(5) || g.HasNode(3) {
		t.Fatal("nodes wrong after AddEdge")
	}
	if !g.HasEdge(0, 5) || !g.HasEdge(5, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(0, 3) || g.HasEdge(9, 9) {
		t.Fatal("phantom edge")
	}
	g.AddEdge(0, 5) // idempotent
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	g.AddNode(5) // idempotent
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(1,1) did not panic")
		}
	}()
	New().AddEdge(1, 1)
}

func TestAddPath(t *testing.T) {
	g := New()
	g.AddPath(0, 1, 2, 3)
	if g.NumEdges() != 3 || !g.HasEdge(1, 2) {
		t.Fatal("AddPath wrong")
	}
}

func TestLabels(t *testing.T) {
	g := New()
	g.SetLabel(3, "D")
	if g.Label(3) != "D" {
		t.Fatalf("Label(3) = %q", g.Label(3))
	}
	if g.Label(7) != "7" {
		t.Fatalf("Label(7) = %q", g.Label(7))
	}
	if !g.HasNode(3) {
		t.Fatal("SetLabel did not add the node")
	}
}

func TestNeighborsDegree(t *testing.T) {
	g := mustParse(t, "0-1 0-2 0-3 2-3")
	if got := g.Neighbors(0).Members(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Fatal("Degree wrong")
	}
	if !g.Neighbors(99).IsEmpty() {
		t.Fatal("Neighbors of non-node not empty")
	}
	if got := g.ClosedNeighborhood(1).Members(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("ClosedNeighborhood(1) = %v", got)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := mustParse(t, "2-1 0-2 0-1")
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mustParse(t, "0-1")
	g.SetLabel(0, "D")
	cp := g.Clone()
	cp.AddEdge(1, 2)
	cp.SetLabel(0, "X")
	if g.HasNode(2) || g.HasEdge(1, 2) {
		t.Fatal("Clone shares structure")
	}
	if g.Label(0) != "D" {
		t.Fatal("Clone shares labels")
	}
	if !cp.HasEdge(0, 1) {
		t.Fatal("Clone lost an edge")
	}
}

func TestEqual(t *testing.T) {
	a := mustParse(t, "0-1 1-2")
	b := mustParse(t, "1-2 0-1")
	if !a.Equal(b) {
		t.Fatal("equal graphs not Equal")
	}
	c := mustParse(t, "0-1 1-2 0-2")
	if a.Equal(c) {
		t.Fatal("different edges Equal")
	}
	d := mustParse(t, "0-1 1-2 3")
	if a.Equal(d) {
		t.Fatal("different nodes Equal")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3 3-0")
	sub := g.InducedSubgraph(nodeset.Of(0, 1, 2, 9))
	if sub.HasNode(9) || sub.HasNode(3) {
		t.Fatal("InducedSubgraph kept wrong nodes")
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(2, 3) || sub.HasEdge(0, 3) {
		t.Fatal("InducedSubgraph edges wrong")
	}
}

func TestRemoveNodes(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3")
	h := g.RemoveNodes(nodeset.Of(1))
	if h.HasNode(1) || h.HasEdge(0, 1) {
		t.Fatal("RemoveNodes kept node 1")
	}
	if !h.HasEdge(2, 3) {
		t.Fatal("RemoveNodes dropped unrelated edge")
	}
	if h.Connected(0, 2) {
		t.Fatal("0 and 2 should be disconnected")
	}
}

func TestUnion(t *testing.T) {
	a := mustParse(t, "0-1 1-2")
	b := mustParse(t, "2-3 4")
	u := a.Union(b)
	if u.NumNodes() != 5 || u.NumEdges() != 3 {
		t.Fatalf("Union size wrong: %v", u)
	}
	if !u.HasEdge(0, 1) || !u.HasEdge(2, 3) || !u.HasNode(4) {
		t.Fatal("Union content wrong")
	}
	// Union must not mutate operands.
	if a.HasNode(3) || b.HasNode(0) {
		t.Fatal("Union mutated an operand")
	}
}

func TestComponents(t *testing.T) {
	g := mustParse(t, "0-1 1-2 3-4 5")
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if !comps[0].Equal(nodeset.Of(0, 1, 2)) || !comps[1].Equal(nodeset.Of(3, 4)) || !comps[2].Equal(nodeset.Of(5)) {
		t.Fatalf("components = %v", comps)
	}
	if !g.Connected(0, 2) || g.Connected(0, 3) || g.Connected(0, 99) {
		t.Fatal("Connected wrong")
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestDistancesBallDiameter(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3 3-4")
	d := g.Distances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if got := g.Ball(2, 1).Members(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Ball(2,1) = %v", got)
	}
	if got := g.Ball(0, 0).Members(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Ball(0,0) = %v", got)
	}
	if g.Diameter() != 4 {
		t.Errorf("Diameter = %d, want 4", g.Diameter())
	}
	// Unreachable nodes have distance -1.
	g2 := mustParse(t, "0-1 2-3")
	if g2.Distances(0)[2] != -1 {
		t.Error("unreachable distance not -1")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"a-b", "1-", "-1", "1-1", "x"} {
		if _, err := ParseEdgeList(bad); err == nil {
			t.Errorf("ParseEdgeList(%q) succeeded", bad)
		}
	}
	g, err := ParseEdgeList("0-1, 1-2; 5\n6-7")
	if err != nil {
		t.Fatalf("mixed separators: %v", err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 3 {
		t.Fatalf("parsed wrong graph: %v", g)
	}
}

func TestSortedIDs(t *testing.T) {
	g := mustParse(t, "5-2 9")
	if got := g.SortedIDs(); !reflect.DeepEqual(got, []int{2, 5, 9}) {
		t.Fatalf("SortedIDs = %v", got)
	}
}

// randomGraph draws a connected-ish random graph for property tests.
func randomGraph(r *rand.Rand, n int, p float64) *Graph {
	g := NewWithNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

type genGraph struct{ G *Graph }

func (genGraph) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(9)
	return reflect.ValueOf(genGraph{G: randomGraph(r, n, 0.2+r.Float64()*0.5)})
}

func TestQuickUnionIdempotent(t *testing.T) {
	f := func(a genGraph) bool { return a.G.Union(a.G).Equal(a.G) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(a, b genGraph) bool { return a.G.Union(b.G).Equal(b.G.Union(a.G)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(a genGraph) bool {
		union := nodeset.Empty()
		total := 0
		for _, c := range a.G.Components() {
			total += c.Len()
			union = union.Union(c)
		}
		return union.Equal(a.G.Nodes()) && total == a.G.NumNodes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInducedSubgraphIsSubgraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(a genGraph) bool {
		keep := nodeset.Empty()
		a.G.Nodes().ForEach(func(id int) bool {
			if r.Intn(2) == 0 {
				keep = keep.Add(id)
			}
			return true
		})
		sub := a.G.InducedSubgraph(keep)
		ok := sub.Nodes().SubsetOf(a.G.Nodes())
		for _, e := range sub.Edges() {
			if !a.G.HasEdge(e[0], e[1]) {
				return false
			}
		}
		// Every g-edge inside keep must survive.
		for _, e := range a.G.Edges() {
			if keep.Contains(e[0]) && keep.Contains(e[1]) && !sub.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
