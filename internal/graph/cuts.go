package graph

import "rmt/internal/nodeset"

// This file implements vertex-separator machinery. All three cut notions of
// the paper (RMT-cut, adversary cover, RMT Z-pp cut) quantify over cuts C
// separating the dealer D from the receiver R, with a side condition on the
// connected component B of R in G − C. For all three, the side condition is
// monotone in the "uncovered" part of the cut, so the existential check
// reduces to enumerating connected candidate sets B containing R and taking
// C = N(B) (see DESIGN.md §4). The enumeration below visits every connected
// induced subgraph containing a start node exactly once.

// Separates reports whether removing cut disconnects src from dst in g.
// A valid separator contains neither endpoint; if cut contains src or dst
// the function returns false.
func (g *Graph) Separates(cut nodeset.Set, src, dst int) bool {
	if cut.Contains(src) || cut.Contains(dst) {
		return false
	}
	if !g.HasNode(src) || !g.HasNode(dst) {
		return false
	}
	return !g.RemoveNodes(cut).Connected(src, dst)
}

// Boundary returns N(B) = the set of nodes outside B adjacent to some node
// of B.
func (g *Graph) Boundary(b nodeset.Set) nodeset.Set {
	var out nodeset.Set
	b.ForEach(func(v int) bool {
		out.MutateUnion(g.Neighbors(v))
		return true
	})
	out.MutateMinus(b)
	return out
}

// ConnectedSets enumerates every connected node set B of g with start ∈ B
// and B ∩ banned = ∅, calling fn exactly once per set. Enumeration stops
// early if fn returns false. The start node must exist and not be banned,
// else nothing is enumerated.
//
// The algorithm is the classic fix-and-extend enumeration: each recursive
// call emits its current set, then extends it by each boundary candidate in
// turn, banning the candidate for later siblings so no set is produced
// twice.
func (g *Graph) ConnectedSets(start int, banned nodeset.Set, fn func(b nodeset.Set) bool) {
	g.connectedSetsBnd(start, banned, func(b, _ nodeset.Set) bool { return fn(b) })
}

// connectedSetsBnd is the enumeration core shared by ConnectedSets and
// ReceiverSideCandidates. It maintains the boundary N(B) incrementally —
// N(B ∪ {v}) = (N(B) ∪ N(v)) \ (B ∪ {v}), since N(B) already excludes B —
// and hands it to fn alongside each set, saving a full Boundary recomputation
// per candidate. fn must not mutate its arguments but may retain them: the
// recursion only reads them after the call.
func (g *Graph) connectedSetsBnd(start int, banned nodeset.Set, fn func(b, bnd nodeset.Set) bool) {
	if !g.HasNode(start) || banned.Contains(start) {
		return
	}
	var rec func(b, bnd, excluded nodeset.Set) bool
	rec = func(b, bnd, excluded nodeset.Set) bool {
		if !fn(b, bnd) {
			return false
		}
		cand := bnd.Minus(excluded)
		cont := true
		cand.ForEach(func(v int) bool {
			nb := b.Add(v)
			nbnd := bnd.Union(g.Neighbors(v))
			nbnd.MutateMinus(nb)
			cont = rec(nb, nbnd, excluded)
			excluded = excluded.Add(v)
			return cont
		})
		return cont
	}
	rec(nodeset.Of(start), g.Neighbors(start).Remove(start), banned.Add(start))
}

// ReceiverSideCandidates enumerates, for a dealer D and receiver R, every
// connected set B with R ∈ B, D ∉ B and D ∉ N(B), i.e. every candidate
// "receiver side" of a D–R cut C = N(B) that excludes the dealer. For each
// candidate it calls fn(B, N(B)); fn returning false stops the enumeration.
//
// Every D–R separator C' (with comp_R(G−C') = B) satisfies N(B) ⊆ C', so
// checking a cut predicate that is monotone-decreasing in the cut on all
// (B, N(B)) pairs is exhaustive over all cuts.
func (g *Graph) ReceiverSideCandidates(dealer, receiver int, fn func(b, cut nodeset.Set) bool) {
	if dealer == receiver {
		return
	}
	g.connectedSetsBnd(receiver, nodeset.Of(dealer), func(b, cut nodeset.Set) bool {
		if cut.Contains(dealer) {
			// B touches the dealer; supersets of B may still avoid it
			// (they can absorb other neighbors first), so keep going.
			return true
		}
		return fn(b, cut)
	})
}

// MinimalSeparators returns all minimal vertex separators between src and
// dst (sets C with src,dst ∉ C such that C disconnects them and no proper
// subset does). Sorted canonically. For adjacent src/dst there are none.
func (g *Graph) MinimalSeparators(src, dst int) []nodeset.Set {
	if g.HasEdge(src, dst) || !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	seen := map[string]nodeset.Set{}
	g.ReceiverSideCandidates(src, dst, func(b, cut nodeset.Set) bool {
		if cut.IsEmpty() {
			return true // dst's whole component excludes src: not a cut
		}
		// cut = N(B) separates src from dst iff src is not reachable from
		// dst without it, which holds by construction when comp(dst) = B;
		// N(B) of a non-closed B still separates (every dst-side path
		// leaves B through N(B)), but may not be minimal. Minimalize it.
		min := g.minimalizeSeparator(cut, src, dst)
		seen[min.Key()] = min
		return true
	})
	out := make([]nodeset.Set, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	sortSets(out)
	return out
}

// minimalizeSeparator removes redundant nodes from a separator while
// preserving the separation property.
func (g *Graph) minimalizeSeparator(cut nodeset.Set, src, dst int) nodeset.Set {
	for _, v := range cut.Members() {
		smaller := cut.Remove(v)
		if g.Separates(smaller, src, dst) {
			cut = smaller
		}
	}
	return cut
}

// VertexConnectivity returns the size of a minimum src–dst vertex separator,
// or -1 if src and dst are adjacent or equal (no separator exists).
func (g *Graph) VertexConnectivity(src, dst int) int {
	if src == dst || g.HasEdge(src, dst) {
		return -1
	}
	// Menger via max vertex-disjoint paths: unit-capacity node splitting,
	// implemented as repeated augmenting DFS on the split digraph.
	n := len(g.adj)
	// Node v splits into in-node 2v and out-node 2v+1 with capacity edge
	// 2v -> 2v+1 (capacity 1, except src/dst: infinite, modeled by never
	// saturating). Edges u-v become 2u+1 -> 2v and 2v+1 -> 2u.
	type edge struct {
		to  int
		cap int
		rev int
	}
	adj := make([][]edge, 2*n)
	addEdge := func(a, b, cap int) {
		adj[a] = append(adj[a], edge{to: b, cap: cap, rev: len(adj[b])})
		adj[b] = append(adj[b], edge{to: a, cap: 0, rev: len(adj[a]) - 1})
	}
	const inf = 1 << 30
	g.nodes.ForEach(func(v int) bool {
		cap := 1
		if v == src || v == dst {
			cap = inf
		}
		addEdge(2*v, 2*v+1, cap)
		return true
	})
	for _, e := range g.Edges() {
		addEdge(2*e[0]+1, 2*e[1], inf)
		addEdge(2*e[1]+1, 2*e[0], inf)
	}
	source, sink := 2*src+1, 2*dst
	flow := 0
	for {
		visited := make([]bool, 2*n)
		var dfs func(v int) bool
		dfs = func(v int) bool {
			if v == sink {
				return true
			}
			visited[v] = true
			for i := range adj[v] {
				e := &adj[v][i]
				if e.cap > 0 && !visited[e.to] && dfs(e.to) {
					e.cap--
					adj[e.to][e.rev].cap++
					return true
				}
			}
			return false
		}
		if !dfs(source) {
			break
		}
		flow++
		if flow > n {
			break
		}
	}
	return flow
}

func sortSets(sets []nodeset.Set) {
	for i := 1; i < len(sets); i++ {
		for j := i; j > 0 && sets[j].Compare(sets[j-1]) < 0; j-- {
			sets[j], sets[j-1] = sets[j-1], sets[j]
		}
	}
}
