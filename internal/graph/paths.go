package graph

import "rmt/internal/nodeset"

// Path is a simple path represented as the sequence of node IDs it visits.
type Path []int

// Clone returns a copy of p.
func (p Path) Clone() Path {
	cp := make(Path, len(p))
	copy(cp, p)
	return cp
}

// Head returns the first node of p. It panics on an empty path.
func (p Path) Head() int { return p[0] }

// Tail returns the last node of p, as in the paper's tail(p). It panics on
// an empty path.
func (p Path) Tail() int { return p[len(p)-1] }

// Contains reports whether node v appears on p.
func (p Path) Contains(v int) bool {
	for _, u := range p {
		if u == v {
			return true
		}
	}
	return false
}

// Append returns the concatenation p || v from the paper, as a fresh path.
func (p Path) Append(v int) Path {
	cp := make(Path, len(p), len(p)+1)
	copy(cp, p)
	return append(cp, v)
}

// Set returns the set of nodes on p.
func (p Path) Set() nodeset.Set { return nodeset.FromSlice([]int(p)) }

// Equal reports whether p and q visit the same nodes in the same order.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Interior returns the set of nodes on p excluding its two endpoints.
// Paths with fewer than three nodes have an empty interior.
func (p Path) Interior() nodeset.Set {
	s := nodeset.Empty()
	for i := 1; i < len(p)-1; i++ {
		s = s.Add(p[i])
	}
	return s
}

// ValidIn reports whether p is a simple path of g: at least one node, all
// nodes present in g, consecutive nodes adjacent, and no repeats.
func (p Path) ValidIn(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	seen := nodeset.Empty()
	for i, v := range p {
		if !g.HasNode(v) || seen.Contains(v) {
			return false
		}
		seen = seen.Add(v)
		if i > 0 && !g.HasEdge(p[i-1], v) {
			return false
		}
	}
	return true
}

// AllPaths enumerates every simple path from src to dst in g, in a
// deterministic order, calling fn on each. The path slice passed to fn is
// reused between calls; fn must Clone it to retain it. Enumeration stops
// early if fn returns false. Paths through nodes in the avoid set are
// skipped (src and dst must not be in avoid).
func (g *Graph) AllPaths(src, dst int, avoid nodeset.Set, fn func(p Path) bool) {
	if !g.HasNode(src) || !g.HasNode(dst) || avoid.Contains(src) || avoid.Contains(dst) {
		return
	}
	cur := Path{src}
	onPath := nodeset.Of(src) // exclusively owned: mutated in place below
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == dst {
			return fn(cur)
		}
		cont := true
		g.Neighbors(v).ForEach(func(w int) bool {
			if onPath.Contains(w) || avoid.Contains(w) {
				return true
			}
			cur = append(cur, w)
			onPath.MutateAdd(w)
			cont = rec(w)
			onPath.MutateRemove(w)
			cur = cur[:len(cur)-1]
			return cont
		})
		return cont
	}
	rec(src)
}

// AllPathsBounded is AllPaths restricted to paths of at most maxNodes
// nodes (0 means unbounded). The depth bound prunes the search itself, so
// the cost is that of the bounded path space, not the full one.
func (g *Graph) AllPathsBounded(src, dst int, avoid nodeset.Set, maxNodes int, fn func(p Path) bool) {
	if maxNodes <= 0 {
		g.AllPaths(src, dst, avoid, fn)
		return
	}
	if !g.HasNode(src) || !g.HasNode(dst) || avoid.Contains(src) || avoid.Contains(dst) {
		return
	}
	cur := Path{src}
	onPath := nodeset.Of(src) // exclusively owned: mutated in place below
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == dst {
			return fn(cur)
		}
		if len(cur) >= maxNodes {
			return true // no room left to reach dst
		}
		cont := true
		g.Neighbors(v).ForEach(func(w int) bool {
			if onPath.Contains(w) || avoid.Contains(w) {
				return true
			}
			cur = append(cur, w)
			onPath.MutateAdd(w)
			cont = rec(w)
			onPath.MutateRemove(w)
			cur = cur[:len(cur)-1]
			return cont
		})
		return cont
	}
	rec(src)
}

// BoundedPathSpan returns the union of the nodes of all src→dst simple
// paths with at most maxNodes nodes (0 = unbounded: all paths).
func (g *Graph) BoundedPathSpan(src, dst int, maxNodes int) nodeset.Set {
	span := nodeset.Empty()
	g.AllPathsBounded(src, dst, nodeset.Empty(), maxNodes, func(p Path) bool {
		span = span.Union(p.Set())
		return true
	})
	return span
}

// CountPaths returns the number of simple src→dst paths avoiding the given
// set, up to the limit (0 means no limit). Counting stops at the limit.
func (g *Graph) CountPaths(src, dst int, avoid nodeset.Set, limit int) int {
	n := 0
	g.AllPaths(src, dst, avoid, func(Path) bool {
		n++
		return limit == 0 || n < limit
	})
	return n
}

// ShortestPath returns a shortest src→dst path avoiding the given node set,
// or nil if none exists.
func (g *Graph) ShortestPath(src, dst int, avoid nodeset.Set) Path {
	if !g.HasNode(src) || !g.HasNode(dst) || avoid.Contains(src) || avoid.Contains(dst) {
		return nil
	}
	if src == dst {
		return Path{src}
	}
	prev := make([]int, len(g.adj))
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		found := false
		g.Neighbors(u).ForEach(func(w int) bool {
			if avoid.Contains(w) || prev[w] != -1 {
				return true
			}
			prev[w] = u
			if w == dst {
				found = true
				return false
			}
			queue = append(queue, w)
			return true
		})
		if found {
			break
		}
	}
	if prev[dst] == -1 {
		return nil
	}
	var rev Path
	for v := dst; v != src; v = prev[v] {
		rev = append(rev, v)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// HasHonestPath reports whether some src→dst path avoids the corrupted set.
func (g *Graph) HasHonestPath(src, dst int, corrupted nodeset.Set) bool {
	return g.ShortestPath(src, dst, corrupted) != nil
}
