// Package graph implements the undirected-graph substrate for the RMT
// library: adjacency over dense node IDs, induced subgraphs, graph unions
// (the joint-view operation γ(S) on topologies), connectivity queries,
// simple-path enumeration between the dealer and the receiver, and
// vertex-separator (cut) queries and enumeration.
//
// Graphs are mutable while being assembled (AddNode/AddEdge) and treated as
// immutable afterwards; all derived-graph operations (InducedSubgraph,
// RemoveNodes, Union, ...) return fresh graphs. Node identifiers are small
// non-negative integers; a graph may have "holes" in its ID space (a node
// set that is not a prefix range), which arises naturally for subgraphs and
// views.
package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rmt/internal/nodeset"
)

// Graph is an undirected graph over integer node IDs.
type Graph struct {
	nodes  nodeset.Set
	adj    []nodeset.Set // indexed by node ID; entries for non-nodes are empty
	labels map[int]string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// NewWithNodes returns a graph with nodes {0..n-1} and no edges.
func NewWithNodes(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	return g
}

func (g *Graph) ensure(id int) {
	if id < 0 {
		panic("graph: negative node ID")
	}
	for len(g.adj) <= id {
		g.adj = append(g.adj, nodeset.Empty())
	}
}

// AddNode adds a node with the given ID. Adding an existing node is a no-op.
func (g *Graph) AddNode(id int) {
	g.ensure(id)
	g.nodes = g.nodes.Add(id)
}

// AddEdge adds the undirected edge {u, v}, adding the endpoints as needed.
// Self-loops are rejected because channels connect distinct parties.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic("graph: self-loop")
	}
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u] = g.adj[u].Add(v)
	g.adj[v] = g.adj[v].Add(u)
}

// RemoveEdge deletes the undirected edge {u, v}. The endpoints remain
// nodes of the graph; removing an absent edge is a no-op. Like AddEdge,
// this is an assembly-time mutation: derived graphs built from g earlier
// are unaffected (Sets are immutable values), but callers sharing g itself
// must clone first.
func (g *Graph) RemoveEdge(u, v int) {
	if !g.HasEdge(u, v) {
		return
	}
	g.adj[u] = g.adj[u].Remove(v)
	g.adj[v] = g.adj[v].Remove(u)
}

// RemoveNode deletes the node and every edge incident to it, in place.
// Removing an absent node is a no-op. See RemoveEdge for sharing caveats;
// RemoveNodes is the non-mutating form.
func (g *Graph) RemoveNode(id int) {
	if !g.HasNode(id) {
		return
	}
	g.adj[id].ForEach(func(v int) bool {
		g.adj[v] = g.adj[v].Remove(id)
		return true
	})
	g.adj[id] = nodeset.Empty()
	g.nodes = g.nodes.Remove(id)
	delete(g.labels, id)
}

// ComponentAvoiding returns the connected component of v in G − blocked
// without materializing the subgraph: a BFS from v that never enters
// blocked. It returns the empty set when v is not a node or is itself
// blocked. Incremental cut re-verification uses it to recompute one
// receiver-side component per topology delta instead of one induced
// subgraph per delta.
func (g *Graph) ComponentAvoiding(v int, blocked nodeset.Set) nodeset.Set {
	if !g.HasNode(v) || blocked.Contains(v) {
		return nodeset.Empty()
	}
	visited := nodeset.Of(v)
	frontier := []int{v}
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		g.adj[u].ForEach(func(w int) bool {
			if !visited.Contains(w) && !blocked.Contains(w) {
				visited = visited.Add(w)
				frontier = append(frontier, w)
			}
			return true
		})
	}
	return visited
}

// AddPath adds edges forming the path ids[0] - ids[1] - ... - ids[k-1].
func (g *Graph) AddPath(ids ...int) {
	for i := 1; i < len(ids); i++ {
		g.AddEdge(ids[i-1], ids[i])
	}
}

// SetLabel attaches a display label to a node.
func (g *Graph) SetLabel(id int, label string) {
	g.AddNode(id)
	if g.labels == nil {
		g.labels = make(map[int]string)
	}
	g.labels[id] = label
}

// Label returns the node's display label, defaulting to its numeric ID.
func (g *Graph) Label(id int) string {
	if l, ok := g.labels[id]; ok {
		return l
	}
	return strconv.Itoa(id)
}

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id int) bool { return g.nodes.Contains(id) }

// HasEdge reports whether {u, v} is an edge of g.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	return g.adj[u].Contains(v)
}

// Nodes returns the node set of g.
func (g *Graph) Nodes() nodeset.Set { return g.nodes }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.nodes.Len() }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	g.nodes.ForEach(func(id int) bool {
		total += g.adj[id].Len()
		return true
	})
	return total / 2
}

// MaxID returns the largest node ID, or -1 for the empty graph.
func (g *Graph) MaxID() int { return g.nodes.Max() }

// Neighbors returns N(v), the neighborhood of v (not including v).
func (g *Graph) Neighbors(v int) nodeset.Set {
	if v < 0 || v >= len(g.adj) {
		return nodeset.Empty()
	}
	return g.adj[v]
}

// ClosedNeighborhood returns N(v) ∪ {v}.
func (g *Graph) ClosedNeighborhood(v int) nodeset.Set {
	return g.Neighbors(v).Add(v)
}

// Degree returns |N(v)|.
func (g *Graph) Degree(v int) int { return g.Neighbors(v).Len() }

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	g.nodes.ForEach(func(u int) bool {
		g.adj[u].ForEach(func(v int) bool {
			if u < v {
				out = append(out, [2]int{u, v})
			}
			return true
		})
		return true
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	cp := &Graph{nodes: g.nodes, adj: make([]nodeset.Set, len(g.adj))}
	copy(cp.adj, g.adj) // Sets are immutable values; shallow copy is safe
	if g.labels != nil {
		cp.labels = make(map[int]string, len(g.labels))
		for k, v := range g.labels {
			cp.labels[k] = v
		}
	}
	return cp
}

// Equal reports whether g and h have identical node and edge sets.
// Labels are ignored.
func (g *Graph) Equal(h *Graph) bool {
	if !g.nodes.Equal(h.nodes) {
		return false
	}
	eq := true
	g.nodes.ForEach(func(id int) bool {
		if !g.adj[id].Equal(h.Neighbors(id)) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// InducedSubgraph returns the subgraph induced by keep ∩ V(g): the nodes in
// keep that exist in g, and every edge of g with both endpoints kept.
func (g *Graph) InducedSubgraph(keep nodeset.Set) *Graph {
	kept := g.nodes.Intersect(keep)
	sub := New()
	kept.ForEach(func(id int) bool {
		sub.AddNode(id)
		return true
	})
	kept.ForEach(func(id int) bool {
		sub.adj[id] = g.adj[id].Intersect(kept)
		return true
	})
	sub.copyLabels(g, kept)
	return sub
}

// RemoveNodes returns the subgraph induced by V(g) \ drop.
func (g *Graph) RemoveNodes(drop nodeset.Set) *Graph {
	return g.InducedSubgraph(g.nodes.Minus(drop))
}

func (g *Graph) copyLabels(from *Graph, keep nodeset.Set) {
	for id, l := range from.labels {
		if keep.Contains(id) {
			g.SetLabel(id, l)
		}
	}
}

// Union returns the graph (V(g) ∪ V(h), E(g) ∪ E(h)). This is the topology
// half of the joint-view operation γ(S) from the paper.
func (g *Graph) Union(h *Graph) *Graph {
	u := g.Clone()
	h.nodes.ForEach(func(id int) bool {
		u.AddNode(id)
		return true
	})
	h.nodes.ForEach(func(id int) bool {
		u.adj[id] = u.adj[id].Union(h.adj[id])
		return true
	})
	for id, l := range h.labels {
		if _, taken := u.labels[id]; !taken {
			u.SetLabel(id, l)
		}
	}
	return u
}

// UnionInPlace adds h's nodes and edges to g in place and returns g. It is
// the accumulator form of Union for incrementally maintained joint views:
// folding k views into one graph costs O(Σ|view|) instead of the O(k²)
// node-set cloning of repeated Union calls. g must be exclusively owned by
// the caller; h is never retained or modified.
func (g *Graph) UnionInPlace(h *Graph) *Graph {
	if m := h.nodes.Max(); m >= 0 {
		g.ensure(m)
	}
	g.nodes = g.nodes.Union(h.nodes)
	h.nodes.ForEach(func(id int) bool {
		g.adj[id] = g.adj[id].Union(h.adj[id])
		return true
	})
	for id, l := range h.labels {
		if _, taken := g.labels[id]; !taken {
			g.SetLabel(id, l)
		}
	}
	return g
}

// ComponentOf returns the node set of the connected component containing v,
// or the empty set if v is not a node of g.
func (g *Graph) ComponentOf(v int) nodeset.Set {
	if !g.HasNode(v) {
		return nodeset.Empty()
	}
	visited := nodeset.Of(v)
	frontier := []int{v}
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		g.adj[u].ForEach(func(w int) bool {
			if !visited.Contains(w) {
				visited = visited.Add(w)
				frontier = append(frontier, w)
			}
			return true
		})
	}
	return visited
}

// Components returns the connected components of g, each as a node set,
// ordered by their minimum node ID.
func (g *Graph) Components() []nodeset.Set {
	var out []nodeset.Set
	remaining := g.nodes
	for !remaining.IsEmpty() {
		c := g.ComponentOf(remaining.Min())
		out = append(out, c)
		remaining = remaining.Minus(c)
	}
	return out
}

// Connected reports whether u and v lie in the same component.
func (g *Graph) Connected(u, v int) bool {
	if !g.HasNode(u) || !g.HasNode(v) {
		return false
	}
	return g.ComponentOf(u).Contains(v)
}

// IsConnected reports whether g is connected (the empty graph is connected).
func (g *Graph) IsConnected() bool {
	if g.nodes.IsEmpty() {
		return true
	}
	return g.ComponentOf(g.nodes.Min()).Equal(g.nodes)
}

// Distances returns BFS hop distances from src; unreachable nodes (and
// non-nodes) map to -1. The result slice is indexed by node ID and has
// length MaxID()+1.
func (g *Graph) Distances(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if !g.HasNode(src) {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.adj[u].ForEach(func(w int) bool {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
			return true
		})
	}
	return dist
}

// Ball returns the set of nodes within the given hop radius of v,
// including v itself.
func (g *Graph) Ball(v, radius int) nodeset.Set {
	if !g.HasNode(v) {
		return nodeset.Empty()
	}
	dist := g.Distances(v)
	out := nodeset.Empty()
	g.nodes.ForEach(func(id int) bool {
		if dist[id] >= 0 && dist[id] <= radius {
			out = out.Add(id)
		}
		return true
	})
	return out
}

// Diameter returns the maximum finite BFS distance over all node pairs,
// or 0 for graphs with fewer than two nodes.
func (g *Graph) Diameter() int {
	max := 0
	g.nodes.ForEach(func(u int) bool {
		for _, d := range g.Distances(u) {
			if d > max {
				max = d
			}
		}
		return true
	})
	return max
}

// String renders the graph as "nodes; u-v, u-w, ..." for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "G(V=%s, E={", g.nodes)
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d-%d", e[0], e[1])
	}
	b.WriteString("})")
	return b.String()
}

// ParseEdgeList builds a graph from a string like "0-1, 1-2, 2-3; 7" where
// edges are "u-v" pairs and bare integers add isolated nodes. Separators may
// be commas, semicolons, whitespace or newlines.
func ParseEdgeList(s string) (*Graph, error) {
	g := New()
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ';' || r == ' ' || r == '\n' || r == '\t' || r == '\r'
	})
	// Adjacency is dense (indexed by ID), so external input must not name
	// absurd IDs: that would allocate memory proportional to the largest
	// ID rather than to the graph.
	const maxParsedID = 1 << 20
	parseID := func(s, context string) (int, error) {
		id, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("graph: bad %s %q: %w", context, s, err)
		}
		if id < 0 {
			return 0, fmt.Errorf("graph: negative node %d in %s", id, context)
		}
		if id > maxParsedID {
			return 0, fmt.Errorf("graph: node %d in %s exceeds the %d ID limit", id, context, maxParsedID)
		}
		return id, nil
	}
	for _, f := range fields {
		if dash := strings.IndexByte(f, '-'); dash >= 0 {
			u, err := parseID(f[:dash], "edge")
			if err != nil {
				return nil, err
			}
			v, err := parseID(f[dash+1:], "edge")
			if err != nil {
				return nil, err
			}
			if u == v {
				return nil, fmt.Errorf("graph: self-loop %q", f)
			}
			g.AddEdge(u, v)
			continue
		}
		id, err := parseID(f, "node")
		if err != nil {
			return nil, err
		}
		g.AddNode(id)
	}
	return g, nil
}

// SortedIDs returns the graph's node IDs in increasing order.
func (g *Graph) SortedIDs() []int {
	ids := g.nodes.Members()
	sort.Ints(ids)
	return ids
}
