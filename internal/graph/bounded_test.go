package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rmt/internal/nodeset"
)

func TestAllPathsBounded(t *testing.T) {
	g := mustParse(t, "0-1 0-2 1-3 2-3 1-2")
	count := func(maxNodes int) int {
		n := 0
		g.AllPathsBounded(0, 3, nodeset.Empty(), maxNodes, func(Path) bool {
			n++
			return true
		})
		return n
	}
	if got := count(0); got != 4 { // unbounded = all 4 paths
		t.Fatalf("unbounded = %d", got)
	}
	if got := count(3); got != 2 { // 0-1-3 and 0-2-3
		t.Fatalf("≤3 nodes = %d", got)
	}
	if got := count(2); got != 0 { // no direct edge 0-3
		t.Fatalf("≤2 nodes = %d", got)
	}
	if got := count(4); got != 4 {
		t.Fatalf("≤4 nodes = %d", got)
	}
}

func TestAllPathsBoundedRespectsBound(t *testing.T) {
	g := mustParse(t, "0-1 0-2 1-3 2-3 1-2 0-3")
	g.AllPathsBounded(0, 3, nodeset.Empty(), 3, func(p Path) bool {
		if len(p) > 3 {
			t.Fatalf("path %v exceeds bound", p)
		}
		if !p.ValidIn(g) {
			t.Fatalf("invalid path %v", p)
		}
		return true
	})
}

func TestAllPathsBoundedEarlyStop(t *testing.T) {
	g := mustParse(t, "0-1 0-2 1-3 2-3")
	n := 0
	g.AllPathsBounded(0, 3, nodeset.Empty(), 3, func(Path) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop after %d", n)
	}
}

func TestBoundedPathSpan(t *testing.T) {
	// Line with a long detour: 0-1-4 direct (3 nodes), 0-2-3-4 detour.
	g := mustParse(t, "0-1 1-4 0-2 2-3 3-4")
	if got := g.BoundedPathSpan(0, 4, 3); !got.Equal(nodeset.Of(0, 1, 4)) {
		t.Fatalf("span(3) = %v", got)
	}
	if got := g.BoundedPathSpan(0, 4, 0); !got.Equal(g.Nodes()) {
		t.Fatalf("span(∞) = %v", got)
	}
	if got := g.BoundedPathSpan(0, 4, 2); !got.IsEmpty() {
		t.Fatalf("span(2) = %v", got)
	}
}

func TestQuickBoundedSubsetOfAll(t *testing.T) {
	// Every bounded path appears in the unbounded enumeration; the bounded
	// count equals the number of unbounded paths within the limit.
	r := rand.New(rand.NewSource(33))
	f := func(a genGraph) bool {
		g := a.G
		src, dst := 0, g.NumNodes()-1
		limit := 2 + r.Intn(4)
		wantCount := 0
		all := map[string]bool{}
		g.AllPaths(src, dst, nodeset.Empty(), func(p Path) bool {
			all[pathString(p)] = true
			if len(p) <= limit {
				wantCount++
			}
			return true
		})
		got := 0
		ok := true
		g.AllPathsBounded(src, dst, nodeset.Empty(), limit, func(p Path) bool {
			got++
			if len(p) > limit || !all[pathString(p)] {
				ok = false
			}
			return true
		})
		return ok && got == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func pathString(p Path) string {
	s := ""
	for _, v := range p {
		s += string(rune('A' + v))
	}
	return s
}
