package graph

import "testing"

// FuzzParseEdgeList checks that the parser never panics and that accepted
// inputs round-trip through the canonical edge-list rendering.
func FuzzParseEdgeList(f *testing.F) {
	for _, seed := range []string{
		"0-1 1-2",
		"0-1, 1-2; 7",
		"5",
		"",
		"10-11\n12-13",
		"0-1 0-1 1-0",
		"999-1000",
		"1-",
		"a-b",
		"-",
		"0--1",
		"1-1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseEdgeList(s)
		if err != nil {
			return
		}
		// Accepted graphs must be well-formed and re-parseable.
		if g.NumNodes() < 0 || g.NumEdges() < 0 {
			t.Fatal("negative sizes")
		}
		for _, e := range g.Edges() {
			if e[0] == e[1] {
				t.Fatalf("self-loop %v survived", e)
			}
			if !g.HasEdge(e[1], e[0]) {
				t.Fatalf("asymmetric edge %v", e)
			}
		}
		rendered := renderEdgeList(g)
		back, err := ParseEdgeList(rendered)
		if err != nil {
			t.Fatalf("round trip parse failed on %q: %v", rendered, err)
		}
		if !back.Equal(g) {
			t.Fatalf("round trip changed the graph: %v vs %v", g, back)
		}
	})
}

func renderEdgeList(g *Graph) string {
	out := ""
	for _, e := range g.Edges() {
		out += itoa(e[0]) + "-" + itoa(e[1]) + " "
	}
	g.Nodes().ForEach(func(v int) bool {
		if g.Degree(v) == 0 {
			out += itoa(v) + " "
		}
		return true
	})
	if out == "" {
		return ""
	}
	return out[:len(out)-1]
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

// FuzzParseEdgeListEmpty ensures the empty-ish rendering path handles
// graphs with no content.
func TestRenderEdgeListEmpty(t *testing.T) {
	g, err := ParseEdgeList("")
	if err != nil {
		t.Fatal(err)
	}
	if renderEdgeList(g) != "" {
		t.Fatal("empty graph rendered non-empty")
	}
}
