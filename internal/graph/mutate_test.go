package graph

import (
	"testing"

	"rmt/internal/nodeset"
)

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddPath(0, 1, 2, 3)
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge survives removal")
	}
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatal("endpoints removed with the edge")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	g.RemoveEdge(0, 3) // absent: no-op
	g.RemoveEdge(7, 9) // unknown nodes: no-op
	if g.NumEdges() != 2 {
		t.Fatal("no-op removal changed the graph")
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	g.AddPath(0, 1, 2, 3)
	g.AddEdge(1, 3)
	g.SetLabel(1, "relay")
	clone := g.Clone()
	g.RemoveNode(1)
	if g.HasNode(1) {
		t.Fatal("node survives removal")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 2) || g.HasEdge(1, 3) {
		t.Fatal("incident edge survives removal")
	}
	if g.Neighbors(0).Contains(1) || g.Neighbors(2).Contains(1) {
		t.Fatal("neighbor sets still mention removed node")
	}
	if !g.Equal(clone.RemoveNodes(nodeset.Of(1))) {
		t.Fatal("RemoveNode disagrees with RemoveNodes")
	}
	// The pre-removal clone is unaffected (Sets are immutable values).
	if !clone.HasEdge(1, 2) {
		t.Fatal("clone mutated by RemoveNode on the original")
	}
	g.RemoveNode(1) // absent: no-op
}

func TestComponentAvoiding(t *testing.T) {
	g := New()
	g.AddPath(0, 1, 2, 3, 4)
	g.AddEdge(1, 5)
	got := g.ComponentAvoiding(4, nodeset.Of(2))
	if !got.Equal(nodeset.Of(3, 4)) {
		t.Fatalf("ComponentAvoiding(4, {2}) = %v, want {3, 4}", got)
	}
	// Agrees with the subgraph formulation.
	want := g.RemoveNodes(nodeset.Of(2)).ComponentOf(4)
	if !got.Equal(want) {
		t.Fatalf("disagrees with RemoveNodes+ComponentOf: %v vs %v", got, want)
	}
	if !g.ComponentAvoiding(4, nodeset.Empty()).Equal(g.ComponentOf(4)) {
		t.Fatal("empty blocked set should give the full component")
	}
	if !g.ComponentAvoiding(4, nodeset.Of(4)).IsEmpty() {
		t.Fatal("blocked start should give the empty set")
	}
	if !g.ComponentAvoiding(99, nodeset.Empty()).IsEmpty() {
		t.Fatal("non-node start should give the empty set")
	}
}
