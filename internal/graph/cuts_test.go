package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rmt/internal/nodeset"
)

func TestSeparates(t *testing.T) {
	g := mustParse(t, "0-1 1-2 0-3 3-2")
	tests := []struct {
		cut  nodeset.Set
		want bool
	}{
		{nodeset.Of(1), false},      // path via 3 remains
		{nodeset.Of(1, 3), true},    //
		{nodeset.Of(0), false},      // cut contains an endpoint
		{nodeset.Of(2), false},      //
		{nodeset.Empty(), false},    //
		{nodeset.Of(1, 3, 9), true}} // extra non-node is harmless
	for _, tt := range tests {
		if got := g.Separates(tt.cut, 0, 2); got != tt.want {
			t.Errorf("Separates(%v, 0, 2) = %v, want %v", tt.cut, got, tt.want)
		}
	}
}

func TestBoundary(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3 1-4")
	if got := g.Boundary(nodeset.Of(1)).Members(); !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Fatalf("Boundary({1}) = %v", got)
	}
	if got := g.Boundary(nodeset.Of(2, 3)).Members(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Boundary({2,3}) = %v", got)
	}
	if !g.Boundary(g.Nodes()).IsEmpty() {
		t.Fatal("Boundary(V) not empty")
	}
}

func TestConnectedSetsPathGraph(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3")
	var got []string
	g.ConnectedSets(1, nodeset.Empty(), func(b nodeset.Set) bool {
		got = append(got, b.String())
		return true
	})
	// Connected sets containing 1: {1},{0,1},{1,2},{0,1,2},{1,2,3},{0,1,2,3}.
	if len(got) != 6 {
		t.Fatalf("enumerated %d sets: %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate set %s", s)
		}
		seen[s] = true
	}
}

func TestConnectedSetsBanned(t *testing.T) {
	g := mustParse(t, "0-1 1-2 2-3")
	count := 0
	g.ConnectedSets(0, nodeset.Of(2), func(b nodeset.Set) bool {
		if b.Contains(2) || b.Contains(3) {
			t.Errorf("set %v crosses ban", b)
		}
		count++
		return true
	})
	if count != 2 { // {0}, {0,1}
		t.Fatalf("count = %d, want 2", count)
	}
	// Banned start yields nothing.
	n := 0
	g.ConnectedSets(0, nodeset.Of(0), func(nodeset.Set) bool { n++; return true })
	if n != 0 {
		t.Fatal("banned start enumerated sets")
	}
}

func TestConnectedSetsCompleteness(t *testing.T) {
	// On a random graph, compare against brute force over all subsets.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(5)
		g := randomGraph(r, n, 0.4)
		start := r.Intn(n)
		want := map[string]bool{}
		nodeset.Universe(n).Subsets(func(sub nodeset.Set) bool {
			if sub.Contains(start) && g.InducedSubgraph(sub).IsConnected() {
				want[sub.Key()] = true
			}
			return true
		})
		got := map[string]bool{}
		g.ConnectedSets(start, nodeset.Empty(), func(b nodeset.Set) bool {
			if got[b.Key()] {
				t.Fatalf("duplicate %v", b)
			}
			got[b.Key()] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: enumerated %d connected sets, want %d (graph %v)", trial, len(got), len(want), g)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing a connected set", trial)
			}
		}
	}
}

func TestReceiverSideCandidates(t *testing.T) {
	// 0=D, 3=R, two disjoint relay paths through 1 and 2.
	g := mustParse(t, "0-1 1-3 0-2 2-3")
	type pair struct{ b, c string }
	var got []pair
	g.ReceiverSideCandidates(0, 3, func(b, cut nodeset.Set) bool {
		if b.Contains(0) || cut.Contains(0) {
			t.Errorf("candidate touches dealer: B=%v C=%v", b, cut)
		}
		if !b.Contains(3) {
			t.Errorf("candidate misses receiver: B=%v", b)
		}
		if !g.Separates(cut, 0, 3) && !cut.IsEmpty() {
			t.Errorf("N(B)=%v does not separate for B=%v", cut, b)
		}
		got = append(got, pair{b.String(), cut.String()})
		return true
	})
	// Valid B: {3} (cut {1,2}), {1,3} (cut {0,2}→contains dealer? N({1,3})={0,2}
	// contains 0, skipped), {2,3} skipped, {1,2,3} skipped (N={0}).
	if len(got) != 1 || got[0].b != "{3}" || got[0].c != "{1, 2}" {
		t.Fatalf("candidates = %v", got)
	}
}

func TestReceiverSideCandidatesDealerEqualsReceiver(t *testing.T) {
	g := mustParse(t, "0-1")
	n := 0
	g.ReceiverSideCandidates(0, 0, func(b, c nodeset.Set) bool { n++; return true })
	if n != 0 {
		t.Fatal("D == R should enumerate nothing")
	}
}

func TestMinimalSeparators(t *testing.T) {
	// Diamond: minimal 0-3 separators are {1,2}.
	g := mustParse(t, "0-1 0-2 1-3 2-3")
	seps := g.MinimalSeparators(0, 3)
	if len(seps) != 1 || !seps[0].Equal(nodeset.Of(1, 2)) {
		t.Fatalf("seps = %v", seps)
	}
	// Path 0-1-2-3: minimal separators {1} and {2}.
	g2 := mustParse(t, "0-1 1-2 2-3")
	seps2 := g2.MinimalSeparators(0, 3)
	if len(seps2) != 2 || !seps2[0].Equal(nodeset.Of(1)) || !seps2[1].Equal(nodeset.Of(2)) {
		t.Fatalf("path seps = %v", seps2)
	}
	// Adjacent nodes have no separator.
	if got := g2.MinimalSeparators(0, 1); got != nil {
		t.Fatalf("adjacent seps = %v", got)
	}
}

func TestMinimalSeparatorsAreMinimalAndSeparate(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(4)
		g := randomGraph(r, n, 0.35)
		src, dst := 0, n-1
		if g.HasEdge(src, dst) {
			continue
		}
		for _, c := range g.MinimalSeparators(src, dst) {
			if !g.Separates(c, src, dst) {
				t.Fatalf("trial %d: %v does not separate in %v", trial, c, g)
			}
			c.ForEach(func(v int) bool {
				if g.Separates(c.Remove(v), src, dst) {
					t.Fatalf("trial %d: %v not minimal (drop %d) in %v", trial, c, v, g)
				}
				return true
			})
		}
	}
}

func TestVertexConnectivity(t *testing.T) {
	tests := []struct {
		name  string
		edges string
		s, d  int
		want  int
	}{
		{"diamond", "0-1 0-2 1-3 2-3", 0, 3, 2},
		{"path", "0-1 1-2 2-3", 0, 3, 1},
		{"disconnected", "0-1 2-3", 0, 3, 0},
		{"adjacent", "0-1", 0, 1, -1},
		{"three disjoint", "0-1 1-4 0-2 2-4 0-3 3-4", 0, 4, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := mustParse(t, tt.edges)
			if got := g.VertexConnectivity(tt.s, tt.d); got != tt.want {
				t.Errorf("VertexConnectivity = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestQuickMengersTheorem(t *testing.T) {
	// Min separator size == vertex connectivity (Menger).
	f := func(a genGraph) bool {
		g := a.G
		n := g.NumNodes()
		src, dst := 0, n-1
		if g.HasEdge(src, dst) {
			return true
		}
		seps := g.MinimalSeparators(src, dst)
		k := g.VertexConnectivity(src, dst)
		if len(seps) == 0 {
			// No separator at all (e.g. src==dst neighbors case excluded):
			// only possible when disconnected: k == 0 and some boundary empty.
			return k == 0
		}
		min := seps[0].Len()
		for _, s := range seps {
			if s.Len() < min {
				min = s.Len()
			}
		}
		return min == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickBoundarySeparates(t *testing.T) {
	// For any connected B containing dst with src ∉ B ∪ N(B) and N(B) ≠ ∅,
	// N(B) separates src from dst.
	r := rand.New(rand.NewSource(5))
	f := func(a genGraph) bool {
		g := a.G
		n := g.NumNodes()
		src, dst := 0, n-1
		if src == dst {
			return true
		}
		ok := true
		g.ReceiverSideCandidates(src, dst, func(b, cut nodeset.Set) bool {
			if cut.IsEmpty() {
				// dst's component excludes src entirely: disconnected.
				if g.Connected(src, dst) && b.Equal(g.ComponentOf(dst)) {
					ok = false
				}
				return ok
			}
			if !g.Separates(cut, src, dst) {
				ok = false
			}
			return ok
		})
		_ = r
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
