package selfred

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

func TestBasicSolvable(t *testing.T) {
	tests := []struct {
		name   string
		middle nodeset.Set
		z      adversary.Structure
		want   bool
	}{
		{"no corruption", nodeset.Of(1, 2), adversary.Trivial(), true},
		{"pair partition", nodeset.Of(1, 2), adversary.FromSlices([]int{1}, []int{2}), false},
		// Two singletons cannot cover three middles — solvable.
		{"three vs singletons", nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1}, []int{2}, []int{3}), true},
		// {1,2} and {3} partition A — unsolvable; but only {1,2}: solvable
		// ({3} side cannot be covered).
		{"single big set", nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1, 2}), true},
		{"big plus singleton", nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1, 2}, []int{3}), false},
		{"overlap not enough", nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1, 2}, []int{2, 3}), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBasic(tt.middle, tt.z)
			if got := b.Solvable(); got != tt.want {
				t.Errorf("Solvable = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBasicSolvableMatchesZppCut(t *testing.T) {
	// The star-degenerate form must agree with the general RMT Z-pp cut
	// checker on the materialized instance.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		k := 2 + r.Intn(4)
		middle := nodeset.Range(1, 1+k)
		z := adversary.Random(r, middle, 1+r.Intn(3), 0.5)
		b := NewBasic(middle, z)
		in, err := b.Instance(0, 1+k)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := b.Solvable(), zcpa.Solvable(in); got != want {
			t.Fatalf("trial %d: Basic.Solvable=%v but Z-pp checker says %v (middle=%v z=%v)",
				trial, got, want, middle, z)
		}
	}
}

func TestBasicGraphShape(t *testing.T) {
	b := NewBasic(nodeset.Of(1, 2), adversary.Trivial())
	g := b.Graph(0, 3)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("star shape wrong: %v", g)
	}
	if g.HasEdge(0, 3) || g.HasEdge(1, 2) {
		t.Fatal("star has forbidden edges")
	}
}

func TestPiDecidesTruth(t *testing.T) {
	b := NewBasic(nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1}))
	// Middles 2,3 honest report "x"; middle 1 corrupted reports "y".
	x, ok := Pi(b, map[network.Value]nodeset.Set{
		"x": nodeset.Of(2, 3),
		"y": nodeset.Of(1),
	})
	if !ok || x != "x" {
		t.Fatalf("Pi = %q, %v", x, ok)
	}
}

func TestPiAbstainsOffPromise(t *testing.T) {
	// Pair partition: both values' complements are admissible → ambiguity →
	// abstain.
	b := NewBasic(nodeset.Of(1, 2), adversary.FromSlices([]int{1}, []int{2}))
	if x, ok := Pi(b, map[network.Value]nodeset.Set{
		"x": nodeset.Of(1),
		"y": nodeset.Of(2),
	}); ok {
		t.Fatalf("Pi decided %q off promise", x)
	}
}

func TestPiAbstainsWhenNothingCertifies(t *testing.T) {
	b := NewBasic(nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1}))
	if _, ok := Pi(b, map[network.Value]nodeset.Set{"x": nodeset.Of(1)}); ok {
		t.Fatal("Pi decided with complement {2,3} not admissible")
	}
}

func TestRunPairIndistinguishability(t *testing.T) {
	// Figure 2: the two runs produce the same view, and on a solvable
	// instance exactly the run whose corruption is admissible decides its
	// own dealer value.
	b := NewBasic(nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1}))
	al := nodeset.Of(2, 3) // A_l ∉ Z, complement {1} ∈ Z
	e0, e1, key := RunPair(b, al)
	if key == "" {
		t.Fatal("empty view key")
	}
	_, _, key2 := RunPair(b, al)
	if key != key2 {
		t.Fatal("view keys differ across identical pairs")
	}
	// Both runs see the same wire view, so their decisions coincide as
	// functions of the view (the crux of the ⇐ direction).
	if e0.Decision != e1.Decision || e0.Decided != e1.Decided {
		t.Fatalf("decisions differ on identical views: %+v vs %+v", e0, e1)
	}
	if !e0.Decided || e0.Decision != "0" {
		t.Fatalf("e0 = %+v, want decision 0", e0)
	}
	if !e0.Corrupted.Equal(nodeset.Of(1)) || !e1.Corrupted.Equal(al) {
		t.Fatal("corruption sets mislabeled")
	}
}

func TestRunPairEquationOne(t *testing.T) {
	// decision_{e_0^l}(v) = 0  ⟺  A∖A_l ∈ Z_v ∧ A_l ∉ Z_v  (equation (1)
	// with the abstaining Π).
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		k := 2 + r.Intn(4)
		middle := nodeset.Range(1, 1+k)
		z := adversary.Random(r, middle, 1+r.Intn(3), 0.45)
		b := NewBasic(middle, z)
		var al nodeset.Set
		middle.ForEach(func(v int) bool {
			if r.Intn(2) == 0 {
				al = al.Add(v)
			}
			return true
		})
		e0, _, _ := RunPair(b, al)
		want := b.Z.Contains(middle.Minus(al)) && !b.Z.Contains(al)
		got := e0.Decided && e0.Decision == "0"
		if got != want {
			t.Fatalf("trial %d: e0 decides 0 = %v, equation (1) = %v (middle=%v al=%v z=%v)",
				trial, got, want, middle, al, z)
		}
	}
}

// TestDecisionProtocolEquivalence is the package-local slice of experiment
// E7: Z-CPA with the Π-simulation decider must produce exactly the same
// decisions and round counts as Z-CPA with the direct membership oracle, in
// every run — honest, silent-corrupted, and wrong-value-corrupted.
func TestDecisionProtocolEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	compared := 0
	for trial := 0; trial < 80; trial++ {
		n := 4 + r.Intn(4)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 1+r.Intn(3), 0.4)
		in, err := instance.AdHoc(g, z, d, rcv)
		if err != nil {
			continue
		}
		corruptions := append([]nodeset.Set{nodeset.Empty()}, in.MaximalCorruptions()...)
		for _, tset := range corruptions {
			for _, attack := range []string{"silent", "wrong-value"} {
				var corrupt map[int]network.Process
				if attack == "silent" {
					corrupt = byzantine.SilentProcesses(tset)
				} else {
					corrupt = zcpa.WrongValueProcesses(in, tset, "forged")
				}
				direct, err := zcpa.Run(in, "real", corrupt, zcpa.Options{})
				if err != nil {
					t.Fatal(err)
				}
				pi := &PiDecider{LK: in.LocalKnowledge()}
				// Fresh corrupt processes: they are stateful.
				if attack == "silent" {
					corrupt = byzantine.SilentProcesses(tset)
				} else {
					corrupt = zcpa.WrongValueProcesses(in, tset, "forged")
				}
				sim, err := zcpa.Run(in, "real", corrupt, zcpa.Options{Decider: pi})
				if err != nil {
					t.Fatal(err)
				}
				dv, dok := direct.DecisionOf(rcv)
				sv, sok := sim.DecisionOf(rcv)
				if dv != sv || dok != sok {
					t.Fatalf("trial %d T=%v attack=%s: direct=%q/%v sim=%q/%v\nG=%v Z=%v",
						trial, tset, attack, dv, dok, sv, sok, g, z)
				}
				if direct.Rounds != sim.Rounds {
					t.Fatalf("trial %d T=%v attack=%s: rounds differ %d vs %d",
						trial, tset, attack, direct.Rounds, sim.Rounds)
				}
				compared++
			}
		}
	}
	if compared < 100 {
		t.Fatalf("only %d runs compared", compared)
	}
}

func TestPiDeciderCountsRuns(t *testing.T) {
	z := adversary.FromSlices([]int{1})
	g := graph.New()
	g.AddPath(0, 1, 2)
	g.AddPath(0, 3, 2)
	in, err := instance.AdHoc(g, z, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	pi := &PiDecider{LK: in.LocalKnowledge()}
	if _, err := zcpa.Run(in, "x", nil, zcpa.Options{Decider: pi}); err != nil {
		t.Fatal(err)
	}
	if pi.SimulatedRuns == 0 {
		t.Fatal("no simulated runs counted")
	}
	if pi.SimulatedRuns%2 != 0 {
		t.Fatal("runs must come in e0/e1 pairs")
	}
}

func TestPiDeciderUnknownNodeAbstains(t *testing.T) {
	pi := &PiDecider{LK: adversary.LocalKnowledge{}}
	if _, ok := pi.Decide(7, map[network.Value]nodeset.Set{"x": nodeset.Of(1)}); ok {
		t.Fatal("decided without local knowledge")
	}
}
