// Package selfred implements Section 5 of the paper: the self-reducibility
// of RMT through the 𝒵-CPA protocol scheme, establishing poly-time
// uniqueness (Theorem 9, Corollary 10).
//
// # Basic instances (Figure 1)
//
// The family 𝒢′ contains star-like instances: a dealer D, a receiver R, and
// a middle set A(G) where every middle node is adjacent to exactly D and R.
// RMT on such an instance is solvable iff A(G) is not the union of two
// admissible corruption sets (no "pair partition") — the degenerate form of
// the RMT 𝒵-pp cut.
//
// # The protocol Π
//
// Pi is a fully polynomial protocol for RMT restricted to solvable basic
// instances: after the middles relay, the receiver decides x iff x is the
// unique value whose non-reporters A \ A_x form an admissible corruption
// set. On the promise family the certifying value is unique and equals
// x_D; off the promise Π abstains rather than guess, which is what makes
// the composed protocol below safe in every run.
//
// # The Decision Protocol (Theorem 9)
//
// A 𝒵-CPA player v partitions its reporters by value into classes
// A_1, ..., A_m and must answer the membership check A_l ∉ Z_v. Following
// the proof of Theorem 9, v simulates, for each l, the pair of runs
//
//	e_0^l: dealer value 0, corruption A \ A_l (which replays its honest
//	       behavior from e_1^l, i.e. reports 1);
//	e_1^l: dealer value 1, corruption A_l (which replays its honest
//	       behavior from e_0^l, i.e. reports 0).
//
// The two runs generate byte-identical views at v (Figure 2's
// indistinguishability — RunPair exposes both runs so tests can assert it),
// and v decides a_l iff Π decides 0 in e_0^l. With the abstaining Π this
// fires exactly when A \ A_l ∈ Z_v and A_l ∉ Z_v — equation (1) of the
// proof — which at any genuine decision moment of a real run coincides
// with the direct membership check, because the non-x_D reporters are all
// corrupted. Experiment E7 verifies the two deciders produce identical
// decisions and round counts across random instances and adversaries.
package selfred

import (
	"fmt"
	"sort"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

// Basic is a basic instance of family 𝒢′ (Figure 1): the middle set and the
// adversary structure restricted to it. Dealer and receiver are implicit.
type Basic struct {
	Middle nodeset.Set
	Z      adversary.Structure
}

// NewBasic restricts the structure to the middle set and builds the
// instance.
func NewBasic(middle nodeset.Set, z adversary.Structure) Basic {
	return Basic{Middle: middle, Z: z.Restrict(middle)}
}

// Solvable reports whether RMT is solvable on the basic instance: no pair
// partition A = Z1 ∪ Z2 with Z1, Z2 ∈ 𝒵 (the RMT 𝒵-pp cut condition
// degenerates to this on stars) — i.e. the structure satisfies Q2 on the
// middle set.
func (b Basic) Solvable() bool { return b.Z.Q2(b.Middle) }

// Graph materializes the star topology of the basic instance with the given
// dealer and receiver IDs (which must not collide with middle IDs).
func (b Basic) Graph(dealer, receiver int) *graph.Graph {
	g := graph.New()
	b.Middle.ForEach(func(a int) bool {
		g.AddEdge(dealer, a)
		g.AddEdge(a, receiver)
		return true
	})
	return g
}

// Instance materializes the full ad hoc RMT instance for the basic
// instance.
func (b Basic) Instance(dealer, receiver int) (*instance.Instance, error) {
	g := b.Graph(dealer, receiver)
	return instance.New(g, b.Z, view.AdHoc(g), dealer, receiver)
}

// Pi is the receiver's decision function of protocol Π on a basic instance:
// given the reports (value → reporting middles), it decides the unique
// value whose non-reporters form an admissible corruption set, abstaining
// if no value or more than one value certifies. It is fully polynomial in
// the size of the reports and of the structure's antichain.
func Pi(b Basic, reports map[network.Value]nodeset.Set) (network.Value, bool) {
	var certified []network.Value
	for x, ax := range reports {
		if b.Z.Contains(b.Middle.Minus(ax)) {
			certified = append(certified, x)
		}
	}
	if len(certified) != 1 {
		return "", false
	}
	return certified[0], true
}

// PairRun is one of the two simulated runs of Theorem 9's Decision
// Protocol.
type PairRun struct {
	DealerValue network.Value // the value x_D of this run
	Corrupted   nodeset.Set   // the corruption set of this run
	Decision    network.Value // Π's decision at v in this run ("" = none)
	Decided     bool
}

// RunPair simulates the paired runs e_0^l and e_1^l for the class al ⊆ A of
// a basic instance, returning both runs and the canonical key of the common
// view at the receiver. In e_0^l the dealer value is "0", the honest
// middles are al and report "0", and the corrupted middles A \ al replay
// their honest behavior from e_1^l, reporting "1" — and symmetrically for
// e_1^l. The views coincide by construction; the returned key lets tests
// assert the byte-level indistinguishability that drives the proof.
func RunPair(b Basic, al nodeset.Set) (e0, e1 PairRun, viewKey string) {
	rest := b.Middle.Minus(al)
	// The common wire view at v: al report "0", A \ al report "1".
	reports := map[network.Value]nodeset.Set{"0": al, "1": rest}
	viewKey = canonicalReports(reports)

	d0, ok0 := Pi(b, reports)
	e0 = PairRun{DealerValue: "0", Corrupted: rest, Decision: d0, Decided: ok0}
	d1, ok1 := Pi(b, reports)
	e1 = PairRun{DealerValue: "1", Corrupted: al, Decision: d1, Decided: ok1}
	return e0, e1, viewKey
}

func canonicalReports(reports map[network.Value]nodeset.Set) string {
	vals := make([]network.Value, 0, len(reports))
	for x := range reports {
		vals = append(vals, x)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := ""
	for _, x := range vals {
		s += fmt.Sprintf("%s<-%s;", x, reports[x])
	}
	return s
}

// PiDecider is the 𝒵-CPA decision subroutine built from Π simulations — the
// protocol member 𝒜_Π of the 𝒵-CPA scheme in Definition 8. It answers the
// membership check by the Decision Protocol instead of consulting Z_v's
// antichain directly. Stats counts the simulated runs for experiment E7.
type PiDecider struct {
	LK adversary.LocalKnowledge
	// SimulatedRuns counts every e_0^l/e_1^l pair simulated, across all
	// players sharing this decider.
	SimulatedRuns int
}

// Decide implements zcpa.Decider: player v simulates, in parallel, the 2m
// runs (e_0^l, e_1^l) for its m reporter classes and decides a_l iff e_0^l
// terminates with decision 0.
func (d *PiDecider) Decide(v int, classes map[network.Value]nodeset.Set) (network.Value, bool) {
	a := nodeset.Empty()
	for _, c := range classes {
		a = a.Union(c)
	}
	zv, ok := d.LK[v]
	if !ok {
		return "", false
	}
	b := NewBasic(a, zv.Structure)

	vals := make([]network.Value, 0, len(classes))
	for x := range classes {
		vals = append(vals, x)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, al := range vals {
		e0, _, _ := RunPair(b, classes[al])
		d.SimulatedRuns += 2
		if e0.Decided && e0.Decision == "0" {
			return al, true
		}
	}
	return "", false
}
