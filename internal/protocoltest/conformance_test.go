package protocoltest

import (
	"testing"

	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/ppa"
	"rmt/internal/selfred"
	"rmt/internal/zcpa"
)

func newPi(in *instance.Instance) zcpa.Decider {
	return &selfred.PiDecider{LK: in.LocalKnowledge()}
}

func TestConformancePKA(t *testing.T) {
	Run(t, Factory{
		Name: "RMT-PKA",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return core.NewProcesses(in, xD, corrupt, core.Options{})
		},
		Solvable:  core.Solvable,
		Knowledge: gen.AdHoc,
	}, Config{})
}

func TestConformancePKAFullKnowledge(t *testing.T) {
	Run(t, Factory{
		Name: "RMT-PKA-full",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return core.NewProcesses(in, xD, corrupt, core.Options{})
		},
		Solvable:  core.Solvable,
		Knowledge: gen.FullKnowledge,
	}, Config{Trials: 25})
}

func TestConformanceZCPA(t *testing.T) {
	Run(t, Factory{
		Name: "Z-CPA",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return zcpa.NewProcesses(in, xD, corrupt, nil)
		},
		Solvable:  zcpa.Solvable,
		Knowledge: gen.AdHoc,
	}, Config{})
}

func TestConformanceZCPAWithPiDecider(t *testing.T) {
	Run(t, Factory{
		Name: "Z-CPA+Pi",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return zcpa.NewProcessesWithDecider(in, xD, corrupt, newPi(in))
		},
		Solvable:  zcpa.Solvable,
		Knowledge: gen.AdHoc,
	}, Config{Trials: 25})
}

func TestConformancePPA(t *testing.T) {
	Run(t, Factory{
		Name:         "PPA",
		NewProcesses: ppa.NewProcesses,
		Solvable: func(in *instance.Instance) bool {
			_, _, cut := ppa.PairCut(in)
			return !cut
		},
		Knowledge: gen.FullKnowledge,
	}, Config{})
}

func TestConformanceHorizonPKASafetyOnly(t *testing.T) {
	// Horizon-PKA is deliberately not tight (it trades liveness), so no
	// Solvable condition is given; a horizon of 5 covers both standard
	// fixtures (the 5-line's single path has exactly 5 nodes), letting the
	// honest-delivery, safety and engine slices all apply.
	Run(t, Factory{
		Name: "Horizon-PKA",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return core.NewProcesses(in, xD, corrupt, core.Options{Horizon: 5})
		},
		Knowledge: gen.AdHoc,
	}, Config{})
}
