package protocoltest

import (
	"os"
	"testing"

	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/selfred"
	"rmt/internal/wire"
	"rmt/internal/zcpa"

	_ "rmt/internal/broadcast" // register the broadcast protocol
	_ "rmt/internal/ppa"       // register the PPA protocol
)

// TestMain diverts wire-engine node-child re-execs of this test binary into
// the node main loop; required by the wire-equivalence slice.
func TestMain(m *testing.M) {
	if wire.IsNode() {
		os.Exit(wire.NodeMain())
	}
	os.Exit(m.Run())
}

func newPi(in *instance.Instance) zcpa.Decider {
	return &selfred.PiDecider{LK: in.LocalKnowledge()}
}

// TestConformanceRegistry runs the full battery against every protocol in
// the registry — PKA, 𝒵-CPA, PPA and broadcast — with no per-protocol
// wiring. A protocol added to the registry is picked up automatically,
// including the four-engine wire-equivalence slice over real sockets.
func TestConformanceRegistry(t *testing.T) {
	RunRegistry(t, Config{WireEngine: wire.Engine})
}

// The variants below exercise configurations the registry entries don't
// express on their own: alternate knowledge levels, a custom decider and a
// bounded horizon.

func TestConformancePKAFullKnowledge(t *testing.T) {
	Run(t, Factory{
		Name: "RMT-PKA-full",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return core.NewProcesses(in, xD, corrupt, core.Options{})
		},
		Solvable:  core.Solvable,
		Knowledge: gen.FullKnowledge,
	}, Config{Trials: 25})
}

func TestConformanceZCPAWithPiDecider(t *testing.T) {
	Run(t, Factory{
		Name: "Z-CPA+Pi",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return zcpa.NewProcessesWithDecider(in, xD, corrupt, newPi(in))
		},
		Solvable:  zcpa.Solvable,
		Knowledge: gen.AdHoc,
	}, Config{Trials: 25})
}

func TestConformanceHorizonPKASafetyOnly(t *testing.T) {
	// Horizon-PKA is deliberately not tight (it trades liveness), so no
	// Solvable condition is given; a horizon of 5 covers both standard
	// fixtures (the 5-line's single path has exactly 5 nodes), letting the
	// honest-delivery, safety and engine slices all apply.
	Run(t, Factory{
		Name: "Horizon-PKA",
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return core.NewProcesses(in, xD, corrupt, core.Options{Horizon: 5})
		},
		Knowledge: gen.AdHoc,
	}, Config{})
}
