// Package protocoltest is a reusable conformance battery for RMT protocol
// implementations. Given a factory that builds a protocol's process map,
// it checks the properties every correct RMT protocol must have — honest
// delivery, safety under the Byzantine strategy zoo, engine independence —
// and, for protocols that declare a tight feasibility condition, the
// cut-versus-simulation agreement that backs the paper's theorems.
//
// The repository's three protocols (RMT-PKA, 𝒵-CPA, PPA) all pass the
// battery (see conformance_test.go); a downstream user adding a protocol
// can run the same battery against it with a few lines of glue.
package protocoltest

import (
	"fmt"
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/cliutil"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// Factory describes a protocol under test.
type Factory struct {
	// Name labels test output.
	Name string
	// NewProcesses builds the protocol's process map; corrupted nodes are
	// replaced by the given processes.
	NewProcesses func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process
	// Solvable, if non-nil, is the protocol's tight feasibility condition;
	// the battery then asserts Solvable ⇔ operational resilience.
	Solvable func(in *instance.Instance) bool
	// NewProcessesBudget, if non-nil, builds the process map provisioned
	// for a per-broadcast suppression budget of d (protocol.Options.MABudget);
	// the message-adversary slice prefers it so quorum-based protocols are
	// tested with quorums matching the adversary they face. FactoryFor wires
	// it for every registry protocol (protocols that predate the
	// message-adversary model simply ignore the budget).
	NewProcessesBudget func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, d int) map[int]network.Process
	// Knowledge is the knowledge level the protocol is designed for.
	Knowledge gen.Knowledge
	// Complete marks protocols whose quorum arithmetic needs a fully
	// connected network (protocol.Caps.CompleteGraph): the battery then
	// draws complete-graph fixtures instead of the sparse path fixtures,
	// skips sparse feasibility fixtures in the wire slice, and adds the
	// eclipse-liveness assertion to the message-adversary slice.
	Complete bool
	// HonestPaths marks protocols that route exclusively over
	// corruption-free D–R paths (protocol.Caps.HonestPaths): the battery
	// then draws path fixtures whose corruptible ground does not separate
	// dealer from receiver, and skips the worked-example feasibility
	// fixtures in the wire slice (their structures cover every path, which
	// such protocols reject by design).
	HonestPaths bool
	// AllDecide marks broadcast-style protocols in which every honest
	// player must decide (protocol.Caps.AllDecide).
	AllDecide bool
	// Protocol is the registry name when the factory's configuration is
	// expressible as a pure-data Blueprint — i.e. it is exactly the
	// registered protocol with default options. Only then can the battery
	// run the wire engine (which rebuilds the run from registry names in
	// child processes). FactoryFor sets it; variant factories with custom
	// deciders, horizons or knowledge levels leave it empty.
	Protocol string
}

// FactoryFor adapts a registered protocol into a Factory, so the battery
// can iterate the registry with no per-protocol wiring: the knowledge level
// comes from the protocol's capabilities and the tightness condition from
// its optional Feasibility implementation.
func FactoryFor(p protocol.Protocol) Factory {
	assemble := func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, d int) map[int]network.Process {
		procs, err := p.Assemble(in, xD, protocol.Options{Corrupt: corrupt, MABudget: d})
		if err != nil {
			panic(fmt.Sprintf("protocoltest: %s.Assemble: %v", p.Name(), err))
		}
		return procs
	}
	f := Factory{
		Name:     p.Name(),
		Protocol: p.Name(),
		NewProcesses: func(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
			return assemble(in, xD, corrupt, 0)
		},
		NewProcessesBudget: assemble,
		Knowledge:          gen.AdHoc,
		Complete:           p.Caps().CompleteGraph,
		HonestPaths:        p.Caps().HonestPaths,
		AllDecide:          p.Caps().AllDecide,
	}
	if p.Caps().NeedsFullKnowledge {
		f.Knowledge = gen.FullKnowledge
	}
	if s, ok := p.(protocol.Feasibility); ok {
		f.Solvable = s.Solvable
	}
	return f
}

// RunRegistry executes the full battery against every registered protocol.
func RunRegistry(t *testing.T, cfg Config) {
	t.Helper()
	for _, p := range protocol.All() {
		Run(t, FactoryFor(p), cfg)
	}
}

// Config tunes the battery.
type Config struct {
	Seed          int64
	Trials        int // random instances for the tightness sweep
	MaxRounds     int
	SkipEngine    bool // skip the goroutine/async engine equivalence check
	SkipSchedules bool // skip the async schedule-safety slice
	// WireEngine, when non-nil, enables the real-socket equivalence slice
	// for factories with a registry Protocol name: every fixture run is
	// repeated on all four engines (lockstep, goroutine, async, wire) and
	// must be transcript-identical. Callers pass wire.Engine; the battery
	// cannot import internal/wire itself (the host test binary must also
	// install the wire TestMain re-exec hook, which is the caller's choice).
	WireEngine network.Engine
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Trials == 0 {
		c.Trials = 40
	}
	return c
}

// Run executes the full battery.
func Run(t *testing.T, f Factory, cfg Config) {
	t.Helper()
	cfg = cfg.withDefaults()
	t.Run(f.Name+"/honest-delivery", func(t *testing.T) { honestDelivery(t, f, cfg) })
	t.Run(f.Name+"/safety-zoo", func(t *testing.T) { safetyZoo(t, f, cfg) })
	if !cfg.SkipEngine {
		t.Run(f.Name+"/engine-equivalence", func(t *testing.T) { engineEquivalence(t, f, cfg) })
		t.Run(f.Name+"/churn-equivalence", func(t *testing.T) { churnEquivalence(t, f, cfg) })
	}
	if !cfg.SkipSchedules {
		t.Run(f.Name+"/schedule-safety", func(t *testing.T) { scheduleSafety(t, f, cfg) })
	}
	t.Run(f.Name+"/message-adversary", func(t *testing.T) { messageAdversary(t, f, cfg) })
	if cfg.WireEngine != nil && f.Protocol != "" {
		t.Run(f.Name+"/wire-equivalence", func(t *testing.T) { wireEquivalence(t, f, cfg) })
	}
	if f.Solvable != nil {
		t.Run(f.Name+"/tightness", func(t *testing.T) { tightness(t, f, cfg) })
	}
}

func run(f Factory, in *instance.Instance, xD network.Value, corrupt map[int]network.Process, engine network.Engine, maxRounds int) (*network.Result, error) {
	res, _, err := runTraced(f, in, xD, corrupt, engine, maxRounds, false)
	return res, err
}

// runTraced additionally records a transcript and a tracer event count when
// record is set, for the engine-equivalence and reconciliation slices.
func runTraced(f Factory, in *instance.Instance, xD network.Value, corrupt map[int]network.Process, engine network.Engine, maxRounds int, record bool) (*network.Result, *countTracer, error) {
	return runScheduled(f, in, xD, corrupt, engine, nil, maxRounds, record)
}

// runScheduled is runTraced with an async delivery schedule installed.
func runScheduled(f Factory, in *instance.Instance, xD network.Value, corrupt map[int]network.Process, engine network.Engine, sched network.Scheduler, maxRounds int, record bool) (*network.Result, *countTracer, error) {
	return runChurned(f, in, xD, corrupt, engine, sched, nil, maxRounds, record)
}

// runChurned is runScheduled with a mid-run churn schedule installed.
func runChurned(f Factory, in *instance.Instance, xD network.Value, corrupt map[int]network.Process, engine network.Engine, sched network.Scheduler, churn []network.ChurnEvent, maxRounds int, record bool) (*network.Result, *countTracer, error) {
	cfg := network.Config{
		Graph:     in.G,
		Processes: f.NewProcesses(in, xD, corrupt),
		Engine:    engine,
		Scheduler: sched,
		Churn:     churn,
		MaxRounds: maxRounds,
		StopEarly: func(d map[int]network.Value) bool {
			_, ok := d[in.Receiver]
			return ok
		},
	}
	var ct *countTracer
	if record {
		cfg.RecordTranscript = true
		ct = &countTracer{sends: map[int]int{}, bits: map[int]int{}}
		cfg.Tracers = []network.Tracer{ct}
	}
	res, err := network.Run(cfg)
	return res, ct, err
}

// countTracer accumulates per-round send/bit counts from the event stream,
// to reconcile against the transcript and metrics.
type countTracer struct {
	network.NopTracer
	sends map[int]int
	bits  map[int]int
	loses int
}

func (c *countTracer) Send(round int, m network.Message) {
	c.sends[round]++
	c.bits[round] += m.Payload.BitSize()
}

func (c *countTracer) Lose(int, network.Message) { c.loses++ }

// reconcile cross-checks the tracer's counts against the recorded
// transcript (a send in round r is a delivery of round r+1) and the
// engine's metrics — the observer and the two stock instrumentations must
// tell the same story.
func (c *countTracer) reconcile(t *testing.T, label string, res *network.Result) {
	t.Helper()
	if err := res.Metrics.Reconcile(); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	totalSends, totalBits := 0, 0
	for r, n := range c.sends {
		totalSends += n
		totalBits += c.bits[r]
		if got := len(res.Transcript.Deliveries(r + 1)); got != n {
			t.Errorf("%s: round %d: tracer saw %d sends, transcript has %d deliveries at %d",
				label, r, n, got, r+1)
		}
	}
	if totalSends != res.Metrics.MessagesSent {
		t.Errorf("%s: tracer sends %d != Metrics.MessagesSent %d", label, totalSends, res.Metrics.MessagesSent)
	}
	if totalBits != res.Metrics.BitsSent {
		t.Errorf("%s: tracer bits %d != Metrics.BitsSent %d", label, totalBits, res.Metrics.BitsSent)
	}
}

// fixtures returns the standard solvable fixtures at the factory's
// knowledge level. Complete-graph protocols get complete instances sized so
// their quorums survive both the fixtures' corruptions and the
// message-adversary slice's budget (K6 under singleton corruption is one
// node above the n = 3t + 2d bound at t = d = 1); everyone else gets the
// sparse path fixtures.
func fixtures(t *testing.T, f Factory) []*instance.Instance {
	t.Helper()
	var out []*instance.Instance
	if f.Complete {
		// K6 with singleton corruption of the interior.
		g1 := gen.Complete(6)
		in1, err := gen.Build(g1, gen.Singletons(g1.Nodes().Minus(nodeset.Of(0, 5))), f.Knowledge, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in1)
		// An honest K4: trivially solvable.
		g2 := gen.Complete(4)
		in2, err := gen.Build(g2, adversary.Trivial(), f.Knowledge, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		return append(out, in2)
	}
	if f.HonestPaths {
		// Four disjoint relays, two of them corruptible: the ground {1, 2}
		// never separates dealer 0 from receiver 5, so honest-path routing
		// always has relays 3 and 4 to work with, while the zoo still gets
		// real maximal corruptions to overlay.
		g1, d1, r1 := gen.DisjointPaths(4, 1)
		in1, err := gen.Build(g1, gen.Singletons(nodeset.Of(1, 2)), f.Knowledge, d1, r1)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in1)
		// An honest line: trivially solvable.
		g2 := gen.Line(5)
		in2, err := gen.Build(g2, adversary.Trivial(), f.Knowledge, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		return append(out, in2)
	}
	// Triple relays with singleton corruption: solvable at every level.
	g1, d1, r1 := gen.DisjointPaths(3, 1)
	in1, err := gen.Build(g1, gen.Singletons(g1.Nodes().Minus(nodeset.Of(d1, r1))), f.Knowledge, d1, r1)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, in1)
	// An honest line: trivially solvable.
	g2 := gen.Line(5)
	in2, err := gen.Build(g2, adversary.Trivial(), f.Knowledge, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, in2)
	return out
}

func honestDelivery(t *testing.T, f Factory, cfg Config) {
	for i, in := range fixtures(t, f) {
		res, err := run(f, in, "x", nil, network.Lockstep, cfg.MaxRounds)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(in.Receiver); !ok || got != "x" {
			t.Errorf("fixture %d: honest decision = %q, %v", i, got, ok)
		}
	}
}

func safetyZoo(t *testing.T, f Factory, cfg Config) {
	for i, in := range fixtures(t, f) {
		for _, m := range in.MaximalCorruptions() {
			if m.IsEmpty() {
				continue
			}
			for _, strat := range byzantine.All() {
				name := strat.Name()
				res, err := run(f, in, "real", strat.Build(in, m, "forged"), network.Lockstep, cfg.MaxRounds)
				if err != nil {
					t.Fatal(err)
				}
				if got, ok := res.DecisionOf(in.Receiver); ok && got != "real" {
					t.Errorf("fixture %d, strategy %s, corrupt %v: decided %q — SAFETY VIOLATION",
						i, name, m, got)
				}
			}
		}
	}
}

func engineEquivalence(t *testing.T, f Factory, cfg Config) {
	for i, in := range fixtures(t, f) {
		for _, m := range in.MaximalCorruptions() {
			mk := func() map[int]network.Process {
				if m.IsEmpty() {
					return nil
				}
				return protocol.Silence(m)
			}
			a, act, err := runTraced(f, in, "x", mk(), network.Lockstep, cfg.MaxRounds, true)
			if err != nil {
				t.Fatal(err)
			}
			b, bct, err := runTraced(f, in, "x", mk(), network.Goroutine, cfg.MaxRounds, true)
			if err != nil {
				t.Fatal(err)
			}
			// The async engine under the zero-fault schedule must be
			// indistinguishable from the synchronous engines.
			c, cct, err := runTraced(f, in, "x", mk(), network.Async, cfg.MaxRounds, true)
			if err != nil {
				t.Fatal(err)
			}
			av, aok := a.DecisionOf(in.Receiver)
			for eng, res := range map[string]*network.Result{"goroutine": b, "async": c} {
				v, ok := res.DecisionOf(in.Receiver)
				if av != v || aok != ok {
					t.Errorf("fixture %d, corrupt %v: %s disagrees with lockstep (%q/%v vs %q/%v)",
						i, m, eng, v, ok, av, aok)
				}
				// Deterministic protocols must be transcript-identical, not
				// just decision-identical, across engines.
				if ak, k := a.Transcript.Key(), res.Transcript.Key(); ak != k {
					t.Errorf("fixture %d, corrupt %v: %s transcript differs from lockstep:\nlockstep: %s\n%s: %s",
						i, m, eng, ak, eng, k)
				}
			}
			act.reconcile(t, fmt.Sprintf("fixture %d corrupt %v lockstep", i, m), a)
			bct.reconcile(t, fmt.Sprintf("fixture %d corrupt %v goroutine", i, m), b)
			cct.reconcile(t, fmt.Sprintf("fixture %d corrupt %v async", i, m), c)
		}
	}
}

// churnEquivalence re-runs the honest engine-equivalence slice under a
// mid-run churn schedule — a dealer-side edge removed at round 2 and
// restored at round 4 — pinning that topology churn preserves the
// cross-engine determinism guarantee (identical decisions and transcripts
// on lockstep, goroutine and async) and the send/delivery accounting.
// Liveness is deliberately not asserted: severing a dealer edge can make
// the remaining instance unsolvable, and that verdict is the feasibility
// layer's business, not the engines'.
func churnEquivalence(t *testing.T, f Factory, cfg Config) {
	for i, in := range fixtures(t, f) {
		rel := -1
		in.G.Neighbors(in.Dealer).ForEach(func(v int) bool {
			if v != in.Receiver {
				rel = v
				return false
			}
			return true
		})
		if rel < 0 {
			continue
		}
		churn := []network.ChurnEvent{
			{Round: 2, RemoveEdges: [][2]int{{in.Dealer, rel}}},
			{Round: 4, AddEdges: [][2]int{{in.Dealer, rel}}},
		}
		a, act, err := runChurned(f, in, "x", nil, network.Lockstep, nil, churn, cfg.MaxRounds, true)
		if err != nil {
			t.Fatal(err)
		}
		b, bct, err := runChurned(f, in, "x", nil, network.Goroutine, nil, churn, cfg.MaxRounds, true)
		if err != nil {
			t.Fatal(err)
		}
		c, cct, err := runChurned(f, in, "x", nil, network.Async, nil, churn, cfg.MaxRounds, true)
		if err != nil {
			t.Fatal(err)
		}
		av, aok := a.DecisionOf(in.Receiver)
		for eng, res := range map[string]*network.Result{"goroutine": b, "async": c} {
			v, ok := res.DecisionOf(in.Receiver)
			if av != v || aok != ok {
				t.Errorf("fixture %d: %s under churn disagrees with lockstep (%q/%v vs %q/%v)",
					i, eng, v, ok, av, aok)
			}
			if ak, k := a.Transcript.Key(), res.Transcript.Key(); ak != k {
				t.Errorf("fixture %d: %s transcript under churn differs from lockstep:\nlockstep: %s\n%s: %s",
					i, eng, ak, eng, k)
			}
		}
		act.reconcile(t, fmt.Sprintf("fixture %d churn lockstep", i), a)
		bct.reconcile(t, fmt.Sprintf("fixture %d churn goroutine", i), b)
		cct.reconcile(t, fmt.Sprintf("fixture %d churn async", i), c)
	}
}

// runSuppressed executes a run under a message adversary, built with the
// budget-aware assembly when the factory provides one. StopEarly is never
// installed: the accounting checks need the full run, and the liveness
// assertion needs every player's decision.
func runSuppressed(f Factory, in *instance.Instance, xD network.Value, corrupt map[int]network.Process, engine network.Engine, madv network.MessageAdversary, d, maxRounds int) (*network.Result, *countTracer, error) {
	procs := f.NewProcesses(in, xD, corrupt)
	if f.NewProcessesBudget != nil {
		procs = f.NewProcessesBudget(in, xD, corrupt, d)
	}
	ct := &countTracer{sends: map[int]int{}, bits: map[int]int{}}
	res, err := network.Run(network.Config{
		Graph:            in.G,
		Processes:        procs,
		Engine:           engine,
		MsgAdversary:     madv,
		MaxRounds:        maxRounds,
		RecordTranscript: true,
		Tracers:          []network.Tracer{ct},
	})
	return res, ct, err
}

// messageAdversary is the suppression slice: honest runs under every stock
// message-adversary policy must stay deterministic across the in-process
// engines (identical transcripts and suppression counts), keep the
// Sent = Delivered + Lost books balanced with every suppressed copy showing
// up as a tracer Lose, and never decide anything but x_D — suppression can
// starve players, never corrupt them. Complete-graph protocols additionally
// prove budget-provisioned liveness: with quorums sized for d = 1, a
// one-victim eclipse plus a silenced admissible corruption still delivers at
// every correct non-victim.
func messageAdversary(t *testing.T, f Factory, cfg Config) {
	const d = 1
	for i, in := range fixtures(t, f) {
		for _, name := range network.MessageAdversaryNames() {
			type outcome struct {
				res *network.Result
				ct  *countTracer
				mad network.MessageAdversary
			}
			runs := map[string]outcome{}
			for _, eng := range []network.Engine{network.Lockstep, network.Goroutine, network.Async} {
				madv := network.MustMessageAdversary(name, d, 11)
				res, ct, err := runSuppressed(f, in, "x", nil, eng, madv, d, cfg.MaxRounds)
				if err != nil {
					t.Fatal(err)
				}
				runs[eng.Name()] = outcome{res, ct, madv}
			}
			a := runs[network.Lockstep.Name()]
			for engName, o := range runs {
				label := fmt.Sprintf("fixture %d, policy %s, %s", i, name, engName)
				if k, ak := o.res.Transcript.Key(), a.res.Transcript.Key(); k != ak {
					t.Errorf("%s: transcript differs from lockstep:\nlockstep: %s\n%s: %s",
						label, ak, engName, k)
				}
				if o.mad.Suppressed() != a.mad.Suppressed() {
					t.Errorf("%s: suppressed %d copies, lockstep %d",
						label, o.mad.Suppressed(), a.mad.Suppressed())
				}
				o.ct.reconcile(t, label, o.res)
				if o.ct.loses != o.res.Metrics.MessagesLost {
					t.Errorf("%s: tracer saw %d loses, Metrics.MessagesLost %d",
						label, o.ct.loses, o.res.Metrics.MessagesLost)
				}
				if o.mad.Suppressed() > o.ct.loses {
					t.Errorf("%s: %d suppressions but only %d Lose events",
						label, o.mad.Suppressed(), o.ct.loses)
				}
				for v, got := range o.res.Decisions {
					if got != "x" {
						t.Errorf("%s: player %d decided %q under suppression — SAFETY VIOLATION",
							label, v, got)
					}
				}
			}
		}
		if !f.Complete {
			continue
		}
		// Budget-provisioned liveness at the bound: eclipse one correct
		// interior player and silence each admissible corruption in turn.
		for _, m := range in.MaximalCorruptions() {
			victim := -1
			in.G.Nodes().ForEach(func(v int) bool {
				if v != in.Dealer && v != in.Receiver && !m.Contains(v) {
					victim = v
					return false
				}
				return true
			})
			if victim < 0 {
				continue
			}
			var corrupt map[int]network.Process
			if !m.IsEmpty() {
				corrupt = protocol.Silence(m)
			}
			res, _, err := runSuppressed(f, in, "x", corrupt, network.Lockstep, network.NewEclipse(victim), d, cfg.MaxRounds)
			if err != nil {
				t.Fatal(err)
			}
			in.G.Nodes().ForEach(func(v int) bool {
				if v == victim || m.Contains(v) {
					return true
				}
				if got, ok := res.DecisionOf(v); !ok || got != "x" {
					t.Errorf("fixture %d, corrupt %v, victim %d: correct non-victim %d decided %q, %v; want \"x\"",
						i, m, victim, v, got, ok)
				}
				return true
			})
		}
	}
}

// wireEquivalence is the four-engine slice: on the standard fixtures plus
// every feasibility fixture buildable at the factory's knowledge level, the
// lockstep, goroutine, async and wire engines must produce identical
// receiver decisions and byte-identical transcripts. The wire engine
// re-execs the test binary once per player and rebuilds the run from the
// Blueprint, so this slice proves the blueprint/codec path preserves the
// exact event stream of an in-process run — transcript equivalence needs no
// solvability, so unsolvable fixtures participate too.
func wireEquivalence(t *testing.T, f Factory, cfg Config) {
	ins := fixtures(t, f)
	// The worked-example fixtures are sparse (complete-graph protocols
	// reject them) and their structures cover every D–R path (honest-path
	// protocols reject those), so both classes only run their own fixtures
	// here.
	if !f.Complete && !f.HonestPaths {
		for _, fx := range feasibility.All() {
			in, err := fx.Build(f.Knowledge)
			if err != nil {
				continue // fixture not expressible at this knowledge level
			}
			ins = append(ins, in)
		}
	}
	engines := map[string]network.Engine{
		"goroutine": network.Goroutine,
		"async":     network.Async,
		"wire":      cfg.WireEngine,
	}
	for i, in := range ins {
		spec := cliutil.InstanceSpec{
			Graph:     in.G,
			Z:         in.Z,
			Knowledge: f.Knowledge,
			Dealer:    in.Dealer,
			Receiver:  in.Receiver,
		}.Format()
		// The honest run plus at most two silenced maximal corruptions
		// bound the per-fixture child-process spawn cost.
		corruptions := []nodeset.Set{{}}
		for _, m := range in.MaximalCorruptions() {
			if !m.IsEmpty() {
				corruptions = append(corruptions, m)
			}
			if len(corruptions) > 2 {
				break
			}
		}
		for _, m := range corruptions {
			runOn := func(eng network.Engine) (*network.Result, error) {
				bp := &network.Blueprint{Instance: spec, Protocol: f.Protocol}
				opts := protocol.Options{
					Engine:           eng,
					RecordTranscript: true,
					MaxRounds:        cfg.MaxRounds,
					Blueprint:        bp,
				}
				if !m.IsEmpty() {
					bp.Corrupt = m.Members()
					bp.Attack = byzantine.SilentName
					opts.Corrupt = byzantine.MustGet(byzantine.SilentName).Build(in, m, "")
				}
				return protocol.RunByName(f.Protocol, in, "x", opts)
			}
			a, err := runOn(network.Lockstep)
			if err != nil {
				t.Fatal(err)
			}
			av, aok := a.DecisionOf(in.Receiver)
			for name, eng := range engines {
				b, err := runOn(eng)
				if err != nil {
					t.Fatalf("fixture %d, corrupt %v, %s: %v", i, m, name, err)
				}
				if v, ok := b.DecisionOf(in.Receiver); av != v || aok != ok {
					t.Errorf("fixture %d, corrupt %v: %s disagrees with lockstep (%q/%v vs %q/%v)",
						i, m, name, v, ok, av, aok)
				}
				if ak, bk := a.Transcript.Key(), b.Transcript.Key(); ak != bk {
					t.Errorf("fixture %d, corrupt %v: %s transcript differs from lockstep:\nlockstep: %s\n%s: %s",
						i, m, name, ak, name, bk)
				}
				if err := b.Metrics.Reconcile(); err != nil {
					t.Errorf("fixture %d, corrupt %v, %s: %v", i, m, name, err)
				}
			}
		}
	}
}

// scheduleSafety runs every stock async schedule against the fixtures:
// honest runs must still deliver x_D to the receiver (eventual delivery
// preserves liveness, just later), and silenced admissible corruptions must
// never induce a wrong receiver decision under any delivery order.
func scheduleSafety(t *testing.T, f Factory, cfg Config) {
	// Delays stretch a path of h hops to at most h·(1+MaxSkew) rounds, and
	// the partition schedule holds cross messages for at most its heal
	// round; 64 rounds dominate both on the small fixtures.
	const maxRounds = 64
	for i, in := range fixtures(t, f) {
		for _, name := range network.SchedulerNames() {
			for seed := int64(1); seed <= 2; seed++ {
				sched := network.MustScheduler(name, seed)
				res, _, err := runScheduled(f, in, "x", nil, network.Async, sched, maxRounds, false)
				if err != nil {
					t.Fatal(err)
				}
				if got, ok := res.DecisionOf(in.Receiver); !ok || got != "x" {
					t.Errorf("fixture %d, schedule %s seed %d: honest decision = %q, %v",
						i, name, seed, got, ok)
				}
				for _, m := range in.MaximalCorruptions() {
					if m.IsEmpty() {
						continue
					}
					sched := network.MustScheduler(name, seed)
					res, _, err := runScheduled(f, in, "real", protocol.Silence(m), network.Async, sched, maxRounds, false)
					if err != nil {
						t.Fatal(err)
					}
					if got, ok := res.DecisionOf(in.Receiver); ok && got != "real" {
						t.Errorf("fixture %d, schedule %s seed %d, corrupt %v: decided %q — SAFETY VIOLATION",
							i, name, seed, m, got)
					}
				}
			}
		}
	}
}

func tightness(t *testing.T, f Factory, cfg Config) {
	r := rand.New(rand.NewSource(cfg.Seed))
	checked := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 4 + r.Intn(3)
		g := gen.RandomGNP(r, n, 0.5)
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(0, n-1)), 1+r.Intn(2), 0.4)
		in, err := gen.Build(g, z, f.Knowledge, 0, n-1)
		if err != nil {
			continue
		}
		checked++
		want := f.Solvable(in)
		got := true
		for _, tset := range in.MaximalCorruptions() {
			res, err := run(f, in, "1", protocol.Silence(tset), network.Lockstep, cfg.MaxRounds)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := res.DecisionOf(in.Receiver); !ok {
				got = false
				break
			}
		}
		if got != want {
			t.Fatalf(fmtMismatch(f.Name, trial, want, got, in))
		}
	}
	if checked < cfg.Trials/2 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func fmtMismatch(name string, trial int, want, got bool, in *instance.Instance) string {
	return fmt.Sprintf("%s trial %d: feasibility condition says %v but simulation says %v on %v",
		name, trial, want, got, in)
}
