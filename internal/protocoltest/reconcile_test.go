package protocoltest

import (
	"fmt"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/feasibility"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// TestMetricsReconcileEverywhere sweeps every registered protocol over the
// worked feasibility fixtures on all three engines and, for the async
// engine, all stock delivery schedules, asserting the message-accounting
// identity MessagesSent = MessagesDelivered + MessagesLost (plus the
// per-round sum) on every run — honest and under a silenced admissible
// corruption, solvable fixture or not.
//
// This is the regression test for the delivery-calendar leak: runs that
// stopped early (receiver decided) with sends still scheduled for future
// rounds used to leave those messages out of both the delivered and lost
// counts, so sent > delivered + lost. The async × delayed-schedule cells of
// this sweep fail on that bug; the engines now drain the calendar into
// MessagesLost when a run ends.
func TestMetricsReconcileEverywhere(t *testing.T) {
	// Partition heal rounds plus MaxSkew delays stretch the small fixtures
	// well past their synchronous round counts; 64 dominates (see
	// scheduleSafety).
	const maxRounds = 64
	type cell struct {
		engine network.Engine
		sched  string // "" = synchronous engines, no schedule
		seed   int64
	}
	cells := []cell{
		{network.Lockstep, "", 0},
		{network.Goroutine, "", 0},
	}
	for _, name := range network.SchedulerNames() {
		for seed := int64(1); seed <= 2; seed++ {
			cells = append(cells, cell{network.Async, name, seed})
		}
	}

	for _, p := range protocol.All() {
		level := gen.AdHoc
		if p.Caps().NeedsFullKnowledge {
			level = gen.FullKnowledge
		}
		// The worked fixtures are sparse; complete-graph protocols sweep
		// the just-feasible sides of the MBRB boundary battery instead.
		type namedInstance struct {
			name  string
			build func() (*instance.Instance, error)
		}
		var fixtures []namedInstance
		switch {
		case p.Caps().CompleteGraph:
			for _, b := range feasibility.MBRBBoundaries() {
				fixtures = append(fixtures, namedInstance{b.Name, b.Feasible})
			}
		case p.Caps().HonestPaths:
			// The worked fixtures' structures cover every D–R path, which
			// honest-path protocols reject; sweep path fixtures whose
			// corruptible ground leaves honest routes instead.
			fixtures = append(fixtures,
				namedInstance{"honest-quad-path", func() (*instance.Instance, error) {
					g, d, r := gen.DisjointPaths(4, 1)
					return gen.Build(g, gen.Singletons(nodeset.Of(1, 2)), level, d, r)
				}},
				namedInstance{"honest-line", func() (*instance.Instance, error) {
					return gen.Build(gen.Line(5), adversary.Trivial(), level, 0, 4)
				}},
			)
		default:
			for _, fx := range feasibility.All() {
				fx := fx
				fixtures = append(fixtures, namedInstance{fx.Name, func() (*instance.Instance, error) {
					return fx.Build(level)
				}})
			}
		}
		for _, fx := range fixtures {
			in, err := fx.build()
			if err != nil {
				t.Fatalf("%s: %s: %v", p.Name(), fx.name, err)
			}
			// Honest run plus the first non-trivial admissible corruption,
			// silenced: a halted recipient is the other source of losses.
			corruptions := []map[int]network.Process{nil}
			for _, m := range in.MaximalCorruptions() {
				if !m.IsEmpty() {
					corruptions = append(corruptions, protocol.Silence(m))
					break
				}
			}
			for _, c := range cells {
				for ci, corrupt := range corruptions {
					var sched network.Scheduler
					if c.sched != "" {
						sched = network.MustScheduler(c.sched, c.seed)
					}
					res, err := protocol.Run(p, in, "x", protocol.Options{
						Engine:    c.engine,
						Scheduler: sched,
						MaxRounds: maxRounds,
						Corrupt:   corrupt,
					})
					if err != nil {
						t.Fatalf("%s/%s/%v: %v", p.Name(), fx.name, c, err)
					}
					label := fmt.Sprintf("%s %s engine=%v sched=%q seed=%d corrupt=%d",
						p.Name(), fx.name, c.engine, c.sched, c.seed, ci)
					if err := res.Metrics.Reconcile(); err != nil {
						t.Errorf("%s: %v", label, err)
					}
					if got := res.Metrics.MessagesDelivered + res.Metrics.MessagesLost; got != res.Metrics.MessagesSent {
						t.Errorf("%s: delivered %d + lost %d = %d, want sent %d", label,
							res.Metrics.MessagesDelivered, res.Metrics.MessagesLost, got, res.Metrics.MessagesSent)
					}
				}
			}
		}
	}
}
