package broadcast

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

func mustInstance(t *testing.T, edges string, z adversary.Structure, dealer int) *Instance {
	t.Helper()
	g, err := graph.ParseEdgeList(edges)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(g, z, dealer)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestValidation(t *testing.T) {
	g, _ := graph.ParseEdgeList("0-1")
	if _, err := New(g, adversary.Trivial(), 9); err == nil {
		t.Fatal("accepted non-node dealer")
	}
	if _, err := New(g, adversary.FromSlices([]int{0}), 0); err == nil {
		t.Fatal("accepted corruptible dealer")
	}
	g2, _ := graph.ParseEdgeList("0-1")
	if _, err := New(g2, adversary.FromSlices([]int{7}), 0); err == nil {
		t.Fatal("accepted structure over non-nodes")
	}
}

func TestHonestBroadcastLine(t *testing.T) {
	in := mustInstance(t, "0-1 1-2 2-3", adversary.Trivial(), 0)
	res, err := Run(in, "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if got, ok := res.DecisionOf(v); !ok || got != "m" {
			t.Fatalf("node %d decision = %q, %v", v, got, ok)
		}
	}
}

func TestBroadcastUnderCorruption(t *testing.T) {
	// K4 on {0..3} plus the structure corrupting any single non-dealer:
	// every honest player certifies via the other two.
	in := mustInstance(t, "0-1 0-2 0-3 1-2 1-3 2-3",
		adversary.FromSlices([]int{1}, []int{2}, []int{3}), 0)
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("K4 broadcast not resilient")
	}
	if !Solvable(in) {
		t.Fatal("K4 broadcast has a cut?")
	}
}

func TestBroadcastImpossibleOnThinGraph(t *testing.T) {
	// A path: any single corruptible middle node cuts the far side.
	in := mustInstance(t, "0-1 1-2", adversary.FromSlices([]int{1}), 0)
	cut, found := FindZppCut(in)
	if !found {
		t.Fatal("no cut on the path")
	}
	if !cut.C1.Equal(nodeset.Of(1)) || !cut.B.Equal(nodeset.Of(2)) {
		t.Fatalf("cut = %v", cut)
	}
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("resilient despite cut")
	}
}

func TestBroadcastSafetyUnderLies(t *testing.T) {
	in := mustInstance(t, "0-1 0-2 0-3 1-2 1-3 2-3",
		adversary.FromSlices([]int{1}, []int{2}, []int{3}), 0)
	for _, c := range []int{1, 2, 3} {
		lie := &zcpa.WrongValue{Neighbors: in.G.Neighbors(c), Value: "forged"}
		res, err := Run(in, "real", map[int]network.Process{c: lie}, nil)
		if err != nil {
			t.Fatal(err)
		}
		in.G.Nodes().Remove(0).Remove(c).ForEach(func(v int) bool {
			if got, ok := res.DecisionOf(v); ok && got != "real" {
				t.Fatalf("corrupt=%d: node %d decided %q", c, v, got)
			}
			return true
		})
	}
}

// TestTightness cross-validates the Definition-10 cut against operational
// resilience on random instances — the [13] theorems as assertions.
func TestTightness(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	checked := 0
	for trial := 0; trial < 100; trial++ {
		n := 4 + r.Intn(4)
		g := gen.RandomGNP(r, n, 0.5)
		z := adversary.Random(r, g.Nodes().Remove(0), 1+r.Intn(3), 0.35)
		in, err := New(g, z, 0)
		if err != nil {
			continue
		}
		solvable := Solvable(in)
		resilient, err := Resilient(in)
		if err != nil {
			t.Fatal(err)
		}
		if solvable != resilient {
			cut, _ := FindZppCut(in)
			t.Fatalf("trial %d: cut-solvable=%v resilient=%v\nG=%v Z=%v cut=%v",
				trial, solvable, resilient, g, z, cut)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestBroadcastEqualsAllReceiversRMT: broadcast solvable ⟺ RMT solvable to
// every honest candidate receiver (the trivial adaptation the paper
// mentions), on random instances where all candidates are valid receivers.
func TestBroadcastEqualsAllReceiversRMT(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(3)
		g := gen.RandomGNP(r, n, 0.55)
		// Structure over non-terminal candidates only, so every node
		// outside the ground can serve as an RMT receiver.
		z := adversary.Random(r, g.Nodes().Remove(0), 2, 0.3)
		in, err := New(g, z, 0)
		if err != nil {
			continue
		}
		bcast := Solvable(in)
		allRMT := true
		ground := z.Ground()
		candidates := 0
		g.Nodes().Remove(0).Minus(ground).ForEach(func(rcv int) bool {
			rin, err := instance.AdHoc(g, z, 0, rcv)
			if err != nil {
				return true
			}
			candidates++
			if !zcpa.Solvable(rin) {
				allRMT = false
			}
			return true
		})
		if candidates == 0 {
			continue
		}
		// Broadcast ⟹ RMT everywhere. (The converse can fail: broadcast
		// also requires corruptible-but-honest nodes to decide.)
		if bcast && !allRMT {
			t.Fatalf("trial %d: broadcast solvable but some RMT receiver is not\nG=%v Z=%v", trial, g, z)
		}
	}
}

func TestGoroutineEngineBroadcast(t *testing.T) {
	in := mustInstance(t, "0-1 0-2 1-2 1-3 2-3", adversary.FromSlices([]int{1}), 0)
	a, err := Run(in, "x", byzantine.SilentProcesses(nodeset.Of(1)), network.Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, "x", byzantine.SilentProcesses(nodeset.Of(1)), network.Goroutine)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{2, 3} {
		av, aok := a.DecisionOf(v)
		bv, bok := b.DecisionOf(v)
		if av != bv || aok != bok {
			t.Fatalf("node %d: engines disagree", v)
		}
	}
}

func TestKooCPASpecialCase(t *testing.T) {
	// Koo's t-locally bounded model: CPA is Z-CPA with the t-local
	// structure. On a 2-connected ring with t=0 everything is decided; a
	// 1-local structure on a 4-ring admits a cut.
	g := gen.Ring(5)
	zt := adversary.TLocal(g.Nodes().Remove(0), func(v int) nodeset.Set { return g.Neighbors(v) }, 1)
	in, err := New(g, zt, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1-locally bounded on a ring: each node has 2 neighbors; certifying
	// requires 2 same-value reporters but nodes have only one "upstream"
	// neighbor — broadcast must be unsolvable.
	if Solvable(in) {
		t.Fatal("1-local ring broadcast should be unsolvable")
	}
	// t = 0 (no corruption anywhere): trivially solvable.
	in0, err := New(g, adversary.Trivial(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Solvable(in0) {
		t.Fatal("0-local ring broadcast should be solvable")
	}
}
