package broadcast

import (
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/zcpa"
)

// Proto is 𝒵-CPA-as-broadcast's registry entry: the broadcast protocol run
// on an RMT instance (G, 𝒵, γ, D, R), where every player — the designated
// receiver included — relays its decided value once. Registered under
// protocol.Broadcast at init.
//
// The RMT instance's local structures Z_v coincide with the broadcast
// instance's for the same view function, so the adapter assembles players
// directly from the RMT instance; only the corruption protection differs
// (the RMT machinery additionally protects the receiver).
type Proto struct{}

// Name implements protocol.Protocol.
func (Proto) Name() string { return protocol.Broadcast }

// Caps implements protocol.Protocol: every honest player must decide, so
// the runner must not stop early on the receiver.
func (Proto) Caps() protocol.Caps { return protocol.Caps{AllDecide: true} }

// Assemble implements protocol.Protocol.
func (Proto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	decider := opts.Decider
	if decider == nil {
		oracle := opts.Oracle
		if oracle == nil {
			oracle = zcpa.DirectOracle{In: in}
		}
		decider = zcpa.WrapOracle(oracle)
	}
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), opts.Corrupt, func(v int) network.Process {
		if v == in.Dealer {
			return zcpa.NewDealer(in.G.Neighbors(v), xD)
		}
		return zcpa.NewRelayPlayer(v, in.Dealer, in.G.Neighbors(v), decider)
	}), nil
}

// Solvable implements protocol.Feasibility for the designated receiver's
// decision: until the receiver decides, a broadcast run is observationally
// identical to the 𝒵-CPA run on the same instance (the receiver only
// relays after deciding, and no other player behaves differently), so the
// receiver decides under broadcast exactly when it does under 𝒵-CPA —
// the RMT 𝒵-pp cut condition. Deciding at every honest player is the
// stronger Definition-10 condition checked by the package's native
// Solvable on broadcast.Instance.
func (Proto) Solvable(in *instance.Instance) bool { return zcpa.Solvable(in) }

func init() { protocol.Register(Proto{}) }
