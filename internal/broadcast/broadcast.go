// Package broadcast implements Reliable Broadcast with an honest dealer —
// the setting the paper's RMT results descend from ([13]; CPA goes back to
// Koo). Every player, not just a designated receiver, must decide on the
// dealer's value.
//
// The protocol is 𝒵-CPA in its original broadcast role: every non-dealer
// player relays its decided value once. The tight feasibility condition is
// the 𝒵-partial-pair cut of [13] (reproduced as Definition 10 in the
// paper's appendix): a cut C = C1 ∪ C2 with D outside, C1 ∈ 𝒵, and every
// node u on the far side satisfying N(u) ∩ C2 ∈ Z_u. The package provides
// the protocol runner, the cut checker, and operational resilience checks,
// which the tests cross-validate against each other — and against the RMT
// machinery: broadcast is solvable iff RMT is solvable to every honest
// candidate receiver.
package broadcast

import (
	"fmt"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/view"
	"rmt/internal/zcpa"
)

// Instance is a broadcast instance (G, 𝒵, D) with a view function for the
// players' local structures (ad hoc in the classical setting).
type Instance struct {
	G      *graph.Graph
	Z      adversary.Structure
	Gamma  view.Function
	Dealer int

	local adversary.LocalKnowledge
}

// New validates and assembles a broadcast instance with ad hoc views.
func New(g *graph.Graph, z adversary.Structure, dealer int) (*Instance, error) {
	return NewWithViews(g, z, view.AdHoc(g), dealer)
}

// NewWithViews assembles a broadcast instance with explicit views.
func NewWithViews(g *graph.Graph, z adversary.Structure, gamma view.Function, dealer int) (*Instance, error) {
	if !g.HasNode(dealer) {
		return nil, fmt.Errorf("broadcast: dealer %d is not a node", dealer)
	}
	if z.Ground().Contains(dealer) {
		return nil, fmt.Errorf("broadcast: structure can corrupt the dealer")
	}
	if !z.Ground().SubsetOf(g.Nodes()) {
		return nil, fmt.Errorf("broadcast: structure mentions non-nodes")
	}
	if err := gamma.ConsistentWith(g); err != nil {
		return nil, fmt.Errorf("broadcast: %w", err)
	}
	return &Instance{
		G:      g,
		Z:      z,
		Gamma:  gamma,
		Dealer: dealer,
		local:  gamma.AllLocalStructures(z),
	}, nil
}

// LocalStructure returns Z_u.
func (in *Instance) LocalStructure(u int) adversary.Restricted {
	if r, ok := in.local[u]; ok {
		return r
	}
	return adversary.Identity()
}

type localOracle struct{ in *Instance }

func (o localOracle) Member(v int, reporters nodeset.Set) bool {
	return o.in.LocalStructure(v).Contains(reporters)
}

// NewProcesses assembles the 𝒵-CPA broadcast process map: the dealer plus
// relay-and-decide players everywhere, with the given corrupted overrides
// (the dealer cannot be corrupted).
func NewProcesses(in *Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
	decider := zcpa.WrapOracle(localOracle{in: in})
	return protocol.Build(in.G, nodeset.Of(in.Dealer), corrupt, func(v int) network.Process {
		if v == in.Dealer {
			return zcpa.NewDealer(in.G.Neighbors(v), xD)
		}
		return zcpa.NewRelayPlayer(v, in.Dealer, in.G.Neighbors(v), decider)
	})
}

// Run executes 𝒵-CPA broadcast and returns the run result; decisions of
// all players are in Result.Decisions.
func Run(in *Instance, xD network.Value, corrupt map[int]network.Process, engine network.Engine) (*network.Result, error) {
	return network.Run(network.Config{
		Graph:     in.G,
		Processes: NewProcesses(in, xD, corrupt),
		Engine:    engine,
	})
}

// Resilient reports whether broadcast succeeds for EVERY admissible
// corruption set: every honest player decides the dealer's value against
// the silent adversary (the liveness-worst behavior for this safe
// protocol).
//
// Unlike RMT, broadcast resilience is not monotone in the corruption set:
// corrupting fewer nodes leaves more honest players that must decide, so a
// strict subset of a maximal set can be the hard case (e.g. the stranded
// honest node whose only link is corrupted). The check therefore
// enumerates all members of 𝒵, which is exponential in the maximal-set
// sizes — fine at the instance scales of this repository.
func Resilient(in *Instance) (bool, error) {
	resilient := true
	var runErr error
	in.Z.Members(func(t nodeset.Set) bool {
		res, err := Run(in, "1", protocol.Silence(t), nil)
		if err != nil {
			runErr = err
			return false
		}
		in.G.Nodes().Minus(t).ForEach(func(v int) bool {
			if got, decided := res.DecisionOf(v); !decided || got != "1" {
				resilient = false
				return false
			}
			return true
		})
		return resilient
	})
	if runErr != nil {
		return false, runErr
	}
	return resilient, nil
}

// ZppCut witnesses Definition 10: a 𝒵-partial-pair cut for broadcast.
type ZppCut struct {
	C1, C2 nodeset.Set
	B      nodeset.Set
}

func (c ZppCut) String() string {
	return fmt.Sprintf("BroadcastZppCut(C1=%v, C2=%v, B=%v)", c.C1, c.C2, c.B)
}

// FindZppCut searches for a Definition-10 cut. Candidate far sides B are
// connected sets avoiding the dealer and its boundary; each connected set
// is enumerated exactly once by requiring its minimum element to be the
// enumeration's start node. C = N(B) is the least cut realizing B, which
// suffices because the per-node condition is monotone-decreasing in C2.
func FindZppCut(in *Instance) (ZppCut, bool) {
	var (
		witness ZppCut
		found   bool
	)
	in.G.Nodes().ForEach(func(start int) bool {
		if start == in.Dealer {
			return true
		}
		banned := nodeset.Of(in.Dealer)
		// Canonical enumeration: B's minimum member must be start.
		in.G.Nodes().ForEach(func(v int) bool {
			if v < start {
				banned = banned.Add(v)
			}
			return true
		})
		in.G.ConnectedSets(start, banned, func(b nodeset.Set) bool {
			cut := in.G.Boundary(b)
			if cut.Contains(in.Dealer) {
				return true
			}
			for _, m := range in.Z.Maximal() {
				c2 := cut.Minus(m)
				if in.holdsForAll(b, c2) {
					witness = ZppCut{C1: cut.Intersect(m), C2: c2, B: b}
					found = true
					return false
				}
			}
			return true
		})
		return !found
	})
	return witness, found
}

func (in *Instance) holdsForAll(b, c2 nodeset.Set) bool {
	ok := true
	b.ForEach(func(u int) bool {
		if !in.LocalStructure(u).Contains(in.G.Neighbors(u).Intersect(c2)) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Solvable reports whether broadcast is achievable: no Definition-10 cut.
func Solvable(in *Instance) bool {
	_, found := FindZppCut(in)
	return !found
}
