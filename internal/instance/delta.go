package instance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"rmt/internal/graph"
	"rmt/internal/view"
)

// This file defines topology deltas — batched edge/node edits to an
// instance's communication graph — and the versioned key chain that gives
// every (base instance, delta sequence) pair its own cache identity.
//
// An Instance is immutable; applying a Delta produces a fresh Instance over
// the edited graph, with the adversary structure restricted to the
// surviving nodes and the view function rebuilt from the new topology (a
// node's view is derived from the graph, so a topology edit changes what
// its neighbors see — views cannot be patched independently).
//
// Identity is deliberately path-dependent: ChainKey hashes the base
// instance's CanonicalKey with each delta's canonical rendering in order,
// so "base" and "base plus a delta that happens to round-trip to the same
// graph" occupy distinct cache lines. The rmtd watch API relies on this:
// a subscription's step results are cached under its chain keys and can
// never collide with — or evict — the base instance's entry.

// Delta is one batch of topology edits. The zero value is the empty delta.
// Fields use the JSON names the rmtd watch API accepts on the wire.
//
// Application order within one delta: nodes are added, then edges added,
// then edges removed, then nodes removed (with their incident edges). A
// single delta can therefore rewire a region in one step — e.g. add a
// replacement relay and drop the old one — without intermediate instances
// existing.
type Delta struct {
	AddNodes    []int    `json:"add_nodes,omitempty"`
	AddEdges    [][2]int `json:"add_edges,omitempty"`
	RemoveEdges [][2]int `json:"remove_edges,omitempty"`
	RemoveNodes []int    `json:"remove_nodes,omitempty"`
}

// IsZero reports whether the delta carries no edits.
func (d Delta) IsZero() bool {
	return len(d.AddNodes) == 0 && len(d.AddEdges) == 0 &&
		len(d.RemoveEdges) == 0 && len(d.RemoveNodes) == 0
}

// CanonicalString renders the delta in a canonical textual form: each edit
// class deduplicated and sorted, edges normalized to (min, max). Two deltas
// render equal strings iff they describe the same edit batch, which makes
// the rendering a sound ChainKey ingredient.
func (d Delta) CanonicalString() string {
	var b strings.Builder
	b.WriteString("rmt-delta-v1\n")
	fmt.Fprintf(&b, "+V{%s} +E{%s} -E{%s} -V{%s}",
		canonicalIDs(d.AddNodes), canonicalEdges(d.AddEdges),
		canonicalEdges(d.RemoveEdges), canonicalIDs(d.RemoveNodes))
	return b.String()
}

func canonicalIDs(ids []int) string {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	var b strings.Builder
	last := -1
	for _, id := range sorted {
		if id == last {
			continue
		}
		if last >= 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", id)
		last = id
	}
	return b.String()
}

func canonicalEdges(edges [][2]int) string {
	sorted := make([][2]int, len(edges))
	for i, e := range edges {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		sorted[i] = e
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	var b strings.Builder
	last := [2]int{-1, -1}
	for _, e := range sorted {
		if e == last {
			continue
		}
		if last[0] >= 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", e[0], e[1])
		last = e
	}
	return b.String()
}

// ChainKey extends a version-chain key by one delta:
//
//	k_0 = base.CanonicalKey()
//	k_i = hex(SHA-256("rmt-delta-chain-v1\n" + k_{i-1} + "\n" + delta_i.CanonicalString()))
//
// The chain is what keys server caches for evolving topologies: it is
// injective on (base, delta sequence) up to hash collision, never equal to
// any base instance's CanonicalKey (the chain hashes a domain-separated
// preimage), and order-sensitive — applying the same edits in a different
// order is a different subscription history and gets different keys.
func ChainKey(prev string, d Delta) string {
	sum := sha256.Sum256([]byte("rmt-delta-chain-v1\n" + prev + "\n" + d.CanonicalString()))
	return hex.EncodeToString(sum[:])
}

// ChainKeys returns the full key chain k_1..k_n for a delta sequence
// applied to the instance: ChainKeys(in, ds)[i] keys the revision after
// ds[0..i] have been applied.
func ChainKeys(in *Instance, deltas []Delta) []string {
	keys := make([]string, len(deltas))
	prev := in.CanonicalKey()
	for i, d := range deltas {
		prev = ChainKey(prev, d)
		keys[i] = prev
	}
	return keys
}

// Validate checks a delta against the instance it is to be applied to,
// without applying it: every referenced ID is non-negative, added edges are
// not self-loops, removed edges/nodes exist (after this delta's additions),
// and the terminals survive. Apply calls it; the watch API calls it to
// reject a bad subscription step with a useful error instead of a failed
// instance rebuild.
func (d Delta) Validate(in *Instance) error {
	const maxDeltaID = 1 << 20 // same bound as graph.ParseEdgeList, same reason
	present := func(id int) bool {
		if in.G.HasNode(id) {
			return true
		}
		for _, n := range d.AddNodes {
			if n == id {
				return true
			}
		}
		for _, e := range d.AddEdges {
			if e[0] == id || e[1] == id {
				return true
			}
		}
		return false
	}
	checkID := func(id int, what string) error {
		if id < 0 {
			return fmt.Errorf("instance: delta %s references negative node %d", what, id)
		}
		if id > maxDeltaID {
			return fmt.Errorf("instance: delta %s node %d exceeds the %d ID limit", what, id, maxDeltaID)
		}
		return nil
	}
	for _, n := range d.AddNodes {
		if err := checkID(n, "add_nodes"); err != nil {
			return err
		}
	}
	for _, e := range d.AddEdges {
		if err := checkID(e[0], "add_edges"); err != nil {
			return err
		}
		if err := checkID(e[1], "add_edges"); err != nil {
			return err
		}
		if e[0] == e[1] {
			return fmt.Errorf("instance: delta adds self-loop %d-%d", e[0], e[1])
		}
	}
	for _, e := range d.RemoveEdges {
		if err := checkID(e[0], "remove_edges"); err != nil {
			return err
		}
		if err := checkID(e[1], "remove_edges"); err != nil {
			return err
		}
		if !in.G.HasEdge(e[0], e[1]) && !edgeAdded(d.AddEdges, e) {
			return fmt.Errorf("instance: delta removes absent edge %d-%d", e[0], e[1])
		}
	}
	for _, n := range d.RemoveNodes {
		if err := checkID(n, "remove_nodes"); err != nil {
			return err
		}
		if !present(n) {
			return fmt.Errorf("instance: delta removes absent node %d", n)
		}
		if n == in.Dealer {
			return fmt.Errorf("instance: delta removes the dealer %d", n)
		}
		if n == in.Receiver {
			return fmt.Errorf("instance: delta removes the receiver %d", n)
		}
	}
	return nil
}

func edgeAdded(added [][2]int, e [2]int) bool {
	for _, a := range added {
		if (a == e) || (a[0] == e[1] && a[1] == e[0]) {
			return true
		}
	}
	return false
}

// Apply produces the instance after the delta: the graph is cloned and
// edited, the adversary structure is restricted to the surviving nodes,
// and rebuildView derives the new view function γ from the edited graph
// (callers with a gen.Knowledge level pass level.View; see gen.ApplyDelta).
// The receiver and dealer must survive; the returned instance is validated
// by New, so e.g. a delta that grows the graph under a view function whose
// domain no longer matches fails loudly.
func Apply(in *Instance, d Delta, rebuildView func(*graph.Graph) view.Function) (*Instance, error) {
	if err := d.Validate(in); err != nil {
		return nil, err
	}
	g := in.G.Clone()
	for _, n := range d.AddNodes {
		g.AddNode(n)
	}
	for _, e := range d.AddEdges {
		g.AddEdge(e[0], e[1])
	}
	for _, e := range d.RemoveEdges {
		g.RemoveEdge(e[0], e[1])
	}
	for _, n := range d.RemoveNodes {
		g.RemoveNode(n)
	}
	z := in.Z
	if len(d.RemoveNodes) > 0 {
		z = z.Restrict(g.Nodes())
	}
	return New(g, z, rebuildView(g), in.Dealer, in.Receiver)
}

// ApplyChain folds Apply over a delta sequence, returning the final
// instance. It fails on the first delta that does not apply.
func ApplyChain(in *Instance, deltas []Delta, rebuildView func(*graph.Graph) view.Function) (*Instance, error) {
	cur := in
	for i, d := range deltas {
		next, err := Apply(cur, d, rebuildView)
		if err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}
