package instance

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

// TestJointCachesMatchFreshComputation: the instance-level memoized
// JointStructure and JointViewNodes must agree with the uncached fold over
// local knowledge / views, on random instances under random repeated query
// streams (repeats exercise cache hits, prefixes exercise partial reuse).
func TestJointCachesMatchFreshComputation(t *testing.T) {
	r := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(4)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.6 {
					g.AddEdge(u, v)
				}
			}
		}
		d, rcv := 0, n-1
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(d, rcv)), 1+r.Intn(2), 0.4)
		gamma := view.AdHoc(g)
		if r.Intn(2) == 0 {
			gamma = view.Radius(g, 2)
		}
		in, err := New(g, z, gamma, d, rcv)
		if err != nil {
			continue
		}
		lk := in.LocalKnowledge()
		var queries []nodeset.Set
		for q := 0; q < 30; q++ {
			var b nodeset.Set
			if len(queries) > 0 && r.Intn(3) == 0 {
				b = queries[r.Intn(len(queries))]
			} else {
				for v := 0; v < n; v++ {
					if r.Intn(2) == 0 {
						b = b.Add(v)
					}
				}
			}
			queries = append(queries, b)
			if got, want := in.JointStructure(b), lk.JointOf(b); !got.Equal(want) {
				t.Fatalf("trial %d: JointStructure(%v) = %v, want %v", trial, b, got, want)
			}
			if got, want := in.JointViewNodes(b), in.Gamma.Joint(b).Nodes(); !got.Equal(want) {
				t.Fatalf("trial %d: JointViewNodes(%v) = %v, want %v", trial, b, got, want)
			}
		}
	}
}
