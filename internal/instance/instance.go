// Package instance defines the RMT problem instance tuple
// 𝓘 = (G, 𝒵, γ, D, R) from the paper, with validation and the derived
// quantities protocols consume: local structures Z_v, joint structures Z_B,
// and admissible corruption sets.
package instance

import (
	"errors"
	"fmt"
	"sync"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

// Instance is one RMT problem instance. Immutable after New; the internal
// caches are safe for concurrent use.
type Instance struct {
	G        *graph.Graph
	Z        adversary.Structure
	Gamma    view.Function
	Dealer   int
	Receiver int

	local     adversary.LocalKnowledge // memoized Z_v per node
	joints    *adversary.JoinCache     // memoized Z_B = ⊕_{v∈B} Z_v
	viewNodes *nodeset.UnionCache      // memoized V(γ(B)) = ∪_{v∈B} V(γ(v))
	canon     *canonical               // memoized canonical identity (see canonical.go)

	derivedMu sync.Mutex
	derived   map[any]any // protocol-attached derived caches (see Derived)
}

// Validation errors returned by New.
var (
	ErrDealerMissing    = errors.New("instance: dealer is not a node of G")
	ErrReceiverMissing  = errors.New("instance: receiver is not a node of G")
	ErrDealerIsReceiver = errors.New("instance: dealer equals receiver")
	ErrDealerCorruptib  = errors.New("instance: adversary structure can corrupt the dealer")
	ErrReceiverCorrupt  = errors.New("instance: adversary structure can corrupt the receiver")
)

// New validates the tuple and builds an Instance. Following the paper, the
// dealer and the receiver are presumed honest, so structures that allow
// corrupting either are rejected; views must be consistent subgraphs of G.
func New(g *graph.Graph, z adversary.Structure, gamma view.Function, dealer, receiver int) (*Instance, error) {
	if !g.HasNode(dealer) {
		return nil, ErrDealerMissing
	}
	if !g.HasNode(receiver) {
		return nil, ErrReceiverMissing
	}
	if dealer == receiver {
		return nil, ErrDealerIsReceiver
	}
	if z.Ground().Contains(dealer) {
		return nil, ErrDealerCorruptib
	}
	if z.Ground().Contains(receiver) {
		return nil, ErrReceiverCorrupt
	}
	if !z.Ground().SubsetOf(g.Nodes()) {
		return nil, fmt.Errorf("instance: adversary structure mentions non-nodes %v", z.Ground().Minus(g.Nodes()))
	}
	if err := gamma.ConsistentWith(g); err != nil {
		return nil, fmt.Errorf("instance: %w", err)
	}
	if !gamma.Domain().Equal(g.Nodes()) {
		return nil, fmt.Errorf("instance: view function domain %v != V(G) %v", gamma.Domain(), g.Nodes())
	}
	in := &Instance{
		G:        g,
		Z:        z,
		Gamma:    gamma,
		Dealer:   dealer,
		Receiver: receiver,
		local:    gamma.AllLocalStructures(z),
	}
	in.joints = adversary.NewJoinCache(in.local)
	in.viewNodes = nodeset.NewUnionCache(gamma.NodesOf)
	in.canon = &canonical{}
	return in, nil
}

// MustNew is New for tests and examples; it panics on invalid tuples.
func MustNew(g *graph.Graph, z adversary.Structure, gamma view.Function, dealer, receiver int) *Instance {
	in, err := New(g, z, gamma, dealer, receiver)
	if err != nil {
		panic(err)
	}
	return in
}

// AdHoc builds an instance in the ad hoc model (γ = neighborhood stars).
func AdHoc(g *graph.Graph, z adversary.Structure, dealer, receiver int) (*Instance, error) {
	return New(g, z, view.AdHoc(g), dealer, receiver)
}

// LocalStructure returns the memoized Z_v for node v.
func (in *Instance) LocalStructure(v int) adversary.Restricted {
	if r, ok := in.local[v]; ok {
		return r
	}
	return adversary.Identity()
}

// LocalKnowledge returns the full node → Z_v map. Callers must not modify it.
func (in *Instance) LocalKnowledge() adversary.LocalKnowledge { return in.local }

// JointStructure returns Z_B = ⊕_{v∈B} Z_v for a node set B. Results are
// memoized per sub-fold (semilattice laws make the sharing sound), so
// candidate enumerations that grow B one node at a time pay one ⊕ per call.
func (in *Instance) JointStructure(b nodeset.Set) adversary.Restricted {
	return in.joints.JointOf(b)
}

// JointViewNodes returns V(γ(B)) = ∪_{v∈B} V(γ(v)) without materializing
// the joint view graph, memoized the same way as JointStructure.
func (in *Instance) JointViewNodes(b nodeset.Set) nodeset.Set {
	return in.viewNodes.Of(b)
}

// Derived returns the instance-scoped singleton registered under key,
// building it on first use. It lets protocol packages attach derived warm
// state — sealed claims, prebuilt payloads, decision-subroutine memos — to
// the instance they are derived from, without this package importing them.
// build runs at most once per key; the result is retained for the lifetime
// of the instance and must therefore be safe for concurrent use, like the
// built-in caches.
func (in *Instance) Derived(key any, build func() any) any {
	in.derivedMu.Lock()
	defer in.derivedMu.Unlock()
	if v, ok := in.derived[key]; ok {
		return v
	}
	if in.derived == nil {
		in.derived = make(map[any]any)
	}
	v := build()
	in.derived[key] = v
	return v
}

// Admissible reports whether t is a corruption set the adversary may choose.
func (in *Instance) Admissible(t nodeset.Set) bool { return in.Z.Contains(t) }

// MaximalCorruptions returns the maximal admissible corruption sets. For
// resilience checks it suffices to consider these (monotonicity: a protocol
// resilient against T is resilient against every T' ⊆ T only needs the
// direction that checking all maximal T covers all T — which the checkers
// rely on because a smaller corruption set gives the adversary strictly
// fewer nodes to silence or subvert).
func (in *Instance) MaximalCorruptions() []nodeset.Set { return in.Z.Maximal() }

// HonestNodes returns V(G) \ t.
func (in *Instance) HonestNodes(t nodeset.Set) nodeset.Set {
	return in.G.Nodes().Minus(t)
}

// N returns the number of players.
func (in *Instance) N() int { return in.G.NumNodes() }

// String gives a compact description for logs and errors.
func (in *Instance) String() string {
	return fmt.Sprintf("Instance(n=%d, m=%d, |Zmax|=%d, D=%d, R=%d)",
		in.G.NumNodes(), in.G.NumEdges(), in.Z.NumMaximal(), in.Dealer, in.Receiver)
}
