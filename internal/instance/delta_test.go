package instance_test

import (
	"strings"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

func lineInstance(t *testing.T, n int, zSets ...[]int) *instance.Instance {
	t.Helper()
	in, err := gen.Build(gen.Line(n), adversary.FromSlices(zSets...), gen.AdHoc, 0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func adhocView(g *graph.Graph) view.Function { return view.AdHoc(g) }

func TestDeltaCanonicalStringNormalizes(t *testing.T) {
	a := instance.Delta{
		AddEdges:    [][2]int{{5, 2}, {1, 3}, {2, 5}},
		RemoveEdges: [][2]int{{9, 8}},
		AddNodes:    []int{7, 4, 7},
		RemoveNodes: []int{6},
	}
	b := instance.Delta{
		AddEdges:    [][2]int{{1, 3}, {2, 5}},
		RemoveEdges: [][2]int{{8, 9}},
		AddNodes:    []int{4, 7},
		RemoveNodes: []int{6},
	}
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatalf("canonical strings differ:\n%q\n%q", a.CanonicalString(), b.CanonicalString())
	}
	if !strings.HasPrefix(a.CanonicalString(), "rmt-delta-v1\n") {
		t.Fatalf("missing version prefix: %q", a.CanonicalString())
	}
	c := instance.Delta{AddEdges: [][2]int{{1, 3}}}
	if a.CanonicalString() == c.CanonicalString() {
		t.Fatal("distinct deltas render identically")
	}
}

func TestChainKeyDistinctAndOrderSensitive(t *testing.T) {
	in := lineInstance(t, 5, []int{2})
	d1 := instance.Delta{AddEdges: [][2]int{{0, 2}}}
	d2 := instance.Delta{RemoveEdges: [][2]int{{1, 2}}}

	k1 := instance.ChainKey(in.CanonicalKey(), d1)
	if k1 == in.CanonicalKey() {
		t.Fatal("chain key equals the base key")
	}
	if instance.ChainKey(in.CanonicalKey(), d1) != k1 {
		t.Fatal("chain key is not deterministic")
	}
	// Even the empty delta moves the key: the chain identifies the edit
	// history, not the resulting graph.
	if instance.ChainKey(in.CanonicalKey(), instance.Delta{}) == in.CanonicalKey() {
		t.Fatal("empty delta left the chain key unchanged")
	}

	ab := instance.ChainKeys(in, []instance.Delta{d1, d2})
	ba := instance.ChainKeys(in, []instance.Delta{d2, d1})
	if ab[1] == ba[1] {
		t.Fatal("chain key ignores delta order")
	}
	if ab[0] != k1 {
		t.Fatal("ChainKeys disagrees with ChainKey")
	}
}

func TestDeltaValidateRejections(t *testing.T) {
	in := lineInstance(t, 5, []int{2})
	cases := []struct {
		name string
		d    instance.Delta
	}{
		{"self-loop", instance.Delta{AddEdges: [][2]int{{3, 3}}}},
		{"negative node", instance.Delta{AddNodes: []int{-1}}},
		{"absent edge", instance.Delta{RemoveEdges: [][2]int{{0, 3}}}},
		{"absent node", instance.Delta{RemoveNodes: []int{17}}},
		{"remove dealer", instance.Delta{RemoveNodes: []int{0}}},
		{"remove receiver", instance.Delta{RemoveNodes: []int{4}}},
		{"huge id", instance.Delta{AddNodes: []int{1 << 21}}},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(in); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.d)
		}
		if _, err := instance.Apply(in, tc.d, adhocView); err == nil {
			t.Errorf("%s: Apply accepted %+v", tc.name, tc.d)
		}
	}
	// A remove may consume an edge/node added by the same delta.
	ok := instance.Delta{AddNodes: []int{9}, AddEdges: [][2]int{{2, 9}}, RemoveNodes: []int{9}}
	if err := ok.Validate(in); err != nil {
		t.Errorf("same-delta add+remove rejected: %v", err)
	}
}

func TestApplyRebuildsViewsAndRestrictsStructure(t *testing.T) {
	in := lineInstance(t, 5, []int{1}, []int{2, 3})
	out, err := instance.Apply(in, instance.Delta{
		AddEdges:    [][2]int{{0, 2}},
		RemoveNodes: []int{3},
	}, adhocView)
	if err != nil {
		t.Fatal(err)
	}
	if out.G.HasNode(3) || !out.G.HasEdge(0, 2) || out.G.HasEdge(2, 3) {
		t.Fatalf("graph not edited: %v", out.G)
	}
	// Base instance untouched.
	if !in.G.HasNode(3) || in.G.HasEdge(0, 2) {
		t.Fatalf("base instance mutated: %v", in.G)
	}
	// Structure restricted to survivors: {2,3} shrinks to {2}.
	if out.Z.Ground().Contains(3) {
		t.Fatalf("structure still mentions removed node: %v", out.Z)
	}
	if !out.Z.Contains(nodeset.Of(2)) {
		t.Fatalf("restriction lost the surviving part of {2,3}: %v", out.Z)
	}
	// Views rebuilt from the new topology: node 0's ad hoc star now sees 2.
	if !out.Gamma.Of(0).HasEdge(0, 2) {
		t.Fatal("view of node 0 not rebuilt after edge addition")
	}
	if out.Gamma.Domain().Contains(3) {
		t.Fatal("view domain still contains removed node")
	}
}

func TestApplyChainMatchesStepwise(t *testing.T) {
	in := lineInstance(t, 6, []int{2}, []int{4})
	deltas := []instance.Delta{
		{AddEdges: [][2]int{{1, 3}}},
		{RemoveEdges: [][2]int{{2, 3}}},
		{AddNodes: []int{9}, AddEdges: [][2]int{{9, 4}}},
	}
	chained, err := instance.ApplyChain(in, deltas, adhocView)
	if err != nil {
		t.Fatal(err)
	}
	step := in
	for _, d := range deltas {
		step, err = instance.Apply(step, d, adhocView)
		if err != nil {
			t.Fatal(err)
		}
	}
	if chained.CanonicalKey() != step.CanonicalKey() {
		t.Fatal("ApplyChain disagrees with stepwise Apply")
	}
}
