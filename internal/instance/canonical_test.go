package instance

import (
	"math/rand"
	"strings"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/view"
)

// buildFrom assembles an ad hoc instance from an edge list and structure
// sets given in the supplied order — the orders are what the stability
// tests permute.
func buildFrom(t *testing.T, edges [][2]int, sets [][]int, dealer, receiver int) *Instance {
	t.Helper()
	g := graph.New()
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	z := adversary.FromSlices(sets...)
	in, err := New(g, z, view.AdHoc(g), dealer, receiver)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestCanonicalKeyStableUnderInputPermutation: the same instance assembled
// from permuted edge and structure-set input orders must produce the same
// canonical string and key — the property the rmtd result cache relies on.
func TestCanonicalKeyStableUnderInputPermutation(t *testing.T) {
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {3, 4}}
	sets := [][]int{{1}, {2}, {3}}
	ref := buildFrom(t, edges, sets, 0, 4)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		pe := make([][2]int, len(edges))
		copy(pe, edges)
		r.Shuffle(len(pe), func(i, j int) { pe[i], pe[j] = pe[j], pe[i] })
		// Also flip some edge endpoints: 1-4 and 4-1 are the same channel.
		for i := range pe {
			if r.Intn(2) == 0 {
				pe[i][0], pe[i][1] = pe[i][1], pe[i][0]
			}
		}
		ps := make([][]int, len(sets))
		copy(ps, sets)
		r.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
		in := buildFrom(t, pe, ps, 0, 4)
		if in.CanonicalString() != ref.CanonicalString() {
			t.Fatalf("trial %d: canonical string depends on input order:\n%s\nvs\n%s",
				trial, in.CanonicalString(), ref.CanonicalString())
		}
		if in.CanonicalKey() != ref.CanonicalKey() {
			t.Fatalf("trial %d: canonical key depends on input order", trial)
		}
	}
}

// TestCanonicalKeySeparatesTuples: any change to a component of the tuple
// (topology, structure, knowledge level, terminals) must change the key.
func TestCanonicalKeySeparatesTuples(t *testing.T) {
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	base := buildFrom(t, edges, [][]int{{1}, {2}}, 0, 3)
	seen := map[string]string{base.CanonicalKey(): "base"}
	record := func(name string, in *Instance) {
		key := in.CanonicalKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}
	record("extra-edge", buildFrom(t, append([][2]int{{1, 2}}, edges...), [][]int{{1}, {2}}, 0, 3))
	record("smaller-structure", buildFrom(t, edges, [][]int{{1}}, 0, 3))
	record("joint-structure", buildFrom(t, edges, [][]int{{1, 2}}, 0, 3))
	record("swapped-terminals", buildFrom(t, edges, [][]int{{1}, {2}}, 3, 0))

	// Same (G, 𝒵, D, R), different γ: knowledge is part of the identity.
	g := graph.New()
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	full, err := New(g, adversary.FromSlices([]int{1}, []int{2}), view.Full(g), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	record("full-knowledge", full)
}

// TestCanonicalKeyConcurrent: the lazily memoized key must be safe for
// concurrent first use — the daemon hashes shared instances from many
// request goroutines.
func TestCanonicalKeyConcurrent(t *testing.T) {
	in := buildFrom(t, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, [][]int{{1}, {2}}, 0, 3)
	done := make(chan string, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- in.CanonicalKey() }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if k := <-done; k != first {
			t.Fatal("concurrent CanonicalKey calls disagreed")
		}
	}
	if len(first) != 64 || strings.Trim(first, "0123456789abcdef") != "" {
		t.Fatalf("key %q is not hex sha256", first)
	}
}

// TestCanonicalStringMentionsIsolatedNodes: a node with no channels still
// changes the identity (it is part of V and of the view domain).
func TestCanonicalStringMentionsIsolatedNodes(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	base, err := New(g, adversary.Trivial(), view.AdHoc(g), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.New()
	h.AddEdge(0, 1)
	h.AddNode(2)
	bigger, err := New(h, adversary.Trivial(), view.AdHoc(h), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.CanonicalKey() == bigger.CanonicalKey() {
		t.Fatal("isolated node did not change the canonical key")
	}
}
